// Distributed FFT (six-step algorithm): the alltoall-bound workload.
//
// The third classic accelerator-cluster pattern after stencils (nearest
// neighbour) and Krylov solvers (allreduce): a 1-D FFT of N = n1*n2 points
// computed as local column FFTs + twiddle + a *distributed transpose* +
// local row FFTs. The transpose is a dense MPI_Alltoall, the communication
// pattern that stresses every link at once — bandwidth-bound, so the
// offloading send buffer is the difference between the ~1 GB/s Phi-read
// path and the ~2.8 GB/s staged path on every exchange.
//
// Runs the same real data through DCFA-MPI (with and without the offload
// buffer) and 'Intel MPI on Xeon Phi', verifies all results against a
// direct O(N^2) DFT, and reports the transpose time.
//
//   $ ./examples/fft_transpose [log2_n] [procs]

#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "mpi/runtime.hpp"

using namespace dcfa;
using namespace dcfa::mpi;

namespace {

using cd = std::complex<double>;
constexpr double kPi = 3.14159265358979323846;

/// In-place radix-2 Cooley-Tukey on `n` points (n a power of two).
void fft_local(cd* a, std::size_t n) {
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const cd w = std::polar(1.0, -2 * kPi / static_cast<double>(len));
    for (std::size_t i = 0; i < n; i += len) {
      cd cur(1);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cd u = a[i + k], v = a[i + k + len / 2] * cur;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        cur *= w;
      }
    }
  }
}

struct FftResult {
  sim::Time total = 0;
  sim::Time transpose = 0;
  double max_error = 0.0;
};

/// Six-step FFT of N = n1*n2 points, n1 = P*rows per rank.
FftResult run_fft(RunConfig cfg, std::size_t log2_n, int nprocs) {
  cfg.nprocs = nprocs;
  const std::size_t N = 1ull << log2_n;
  const std::size_t n1 = 1ull << (log2_n / 2);
  const std::size_t n2 = N / n1;
  FftResult result;

  run_mpi(cfg, [&](RankCtx& ctx) {
    auto& comm = ctx.world;
    const int P = comm.size(), rank = comm.rank();
    const std::size_t rows = n1 / P;       // my rows of the n1 x n2 matrix
    const std::size_t cols_out = n2 / P;   // my columns after transpose

    mem::Buffer work = comm.alloc(rows * n2 * sizeof(cd), 4096);
    mem::Buffer send = comm.alloc(rows * n2 * sizeof(cd), 4096);
    mem::Buffer recv = comm.alloc(n1 * cols_out * sizeof(cd), 4096);
    auto* a = reinterpret_cast<cd*>(work.data());
    auto* s = reinterpret_cast<cd*>(send.data());
    auto* r = reinterpret_cast<cd*>(recv.data());

    // Input x[i] = deterministic pseudo-random signal; row-major layout:
    // global index = (rank*rows + row)*n2 + col ... viewed as matrix (n1,n2)
    // with the decimated ordering x[c*n1 + r'] for the six-step algorithm.
    auto input = [&](std::size_t r1, std::size_t c2) {
      const std::size_t idx = c2 * n1 + r1;  // decimation-in-time layout
      return cd(std::cos(0.3 * idx), std::sin(0.17 * idx));
    };
    for (std::size_t row = 0; row < rows; ++row) {
      for (std::size_t c = 0; c < n2; ++c) {
        a[row * n2 + c] = input(rank * rows + row, c);
      }
    }

    comm.barrier();
    const sim::Time t0 = ctx.proc.now();

    // Step 1: FFT along each of my rows' n2 direction? No — six-step:
    // columns first. Our rows each hold a full length-n2 line of one r1:
    // step 1 of the transposed formulation: FFT each row (length n2).
    for (std::size_t row = 0; row < rows; ++row) fft_local(a + row * n2, n2);

    // Step 2: twiddle W_N^(r1*c2).
    for (std::size_t row = 0; row < rows; ++row) {
      const std::size_t r1 = rank * rows + row;
      for (std::size_t c = 0; c < n2; ++c) {
        a[row * n2 + c] *=
            std::polar(1.0, -2 * kPi * static_cast<double>(r1 * c) / N);
      }
    }

    // Step 3: distributed transpose (n1 x n2 -> n2 x n1) via alltoall.
    // Block for destination d: my rows x its columns.
    const sim::Time tt0 = ctx.proc.now();
    for (int d = 0; d < P; ++d) {
      for (std::size_t row = 0; row < rows; ++row) {
        for (std::size_t c = 0; c < cols_out; ++c) {
          s[(d * rows + row) * cols_out + c] =
              a[row * n2 + d * cols_out + c];
        }
      }
    }
    comm.alltoall(send, 0, rows * cols_out * sizeof(cd), type_byte(), recv,
                  0);
    const sim::Time tt1 = ctx.proc.now();

    // recv holds, from each source d: its rows x my columns. Rearrange into
    // column-major lines of length n1.
    std::vector<cd> lines(n1 * cols_out);
    for (int d = 0; d < P; ++d) {
      for (std::size_t row = 0; row < rows; ++row) {
        for (std::size_t c = 0; c < cols_out; ++c) {
          lines[c * n1 + d * rows + row] =
              r[(d * rows + row) * cols_out + c];
        }
      }
    }

    // Step 4: FFT each of my n1-length lines (one per owned column c2).
    for (std::size_t c = 0; c < cols_out; ++c) fft_local(&lines[c * n1], n1);

    comm.barrier();
    if (rank == 0) {
      result.total = ctx.proc.now() - t0;
      result.transpose = tt1 - tt0;
    }

    // Verify my outputs against the direct DFT: the six-step output at
    // (c2, r1) is X[r1*n2 + c2].
    double err = 0;
    const std::size_t check_stride = std::max<std::size_t>(n1 / 16, 1);
    for (std::size_t c = 0; c < cols_out; c += std::max<std::size_t>(
             cols_out / 4, 1)) {
      const std::size_t c2 = rank * cols_out + c;
      for (std::size_t r1 = 0; r1 < n1; r1 += check_stride) {
        const std::size_t k = r1 * n2 + c2;
        cd direct(0);
        for (std::size_t i = 0; i < N; ++i) {
          direct += input(i % n1, i / n1) *
                    std::polar(1.0, -2 * kPi *
                                        static_cast<double>((k * i) % N) /
                                        N);
        }
        err = std::max(err, std::abs(direct - lines[c * n1 + r1]));
      }
    }
    mem::Buffer ein = comm.alloc(sizeof(double));
    mem::Buffer eout = comm.alloc(sizeof(double));
    std::memcpy(ein.data(), &err, sizeof err);
    comm.allreduce(ein, 0, eout, 0, 1, type_double(), Op::Max);
    if (rank == 0) std::memcpy(&result.max_error, eout.data(), sizeof err);

    comm.free(work);
    comm.free(send);
    comm.free(recv);
    comm.free(ein);
    comm.free(eout);
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t log2_n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 14;
  const int procs = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::size_t N = 1ull << log2_n;
  std::printf("distributed six-step FFT, N = 2^%zu = %zu complex points, "
              "%d ranks (transpose = alltoall of %zu KB per rank)\n\n",
              log2_n, N, procs,
              N / procs * sizeof(std::complex<double>) / 1024);

  struct Row {
    const char* name;
    RunConfig cfg;
  };
  RunConfig dcfa, nooff, intel;
  dcfa.mode = MpiMode::DcfaPhi;
  nooff.mode = MpiMode::DcfaPhiNoOffload;
  intel.mode = MpiMode::IntelPhi;
  for (const Row& row : {Row{"DCFA-MPI", dcfa},
                         Row{"DCFA-MPI (no offload buf)", nooff},
                         Row{"Intel MPI on Xeon Phi", intel}}) {
    const FftResult res = run_fft(row.cfg, log2_n, procs);
    std::printf("%-28s total %9.2f ms   transpose %9.2f ms   "
                "max |err| %.2e%s\n",
                row.name, sim::to_ms(res.total), sim::to_ms(res.transpose),
                res.max_error, res.max_error < 1e-6 ? " (ok)" : " (BAD)");
  }
  return 0;
}
