// Conjugate-gradient solver: a second domain application on DCFA-MPI.
//
// The paper's motivation is the stand-alone execution model — computation
// *and* communication both living on the co-processor. A Krylov solver is
// the classic such workload: every iteration needs halo exchanges (sparse
// mat-vec) and two global allreduces (dot products), so communication
// latency sits squarely on the critical path and the co-processor's direct
// InfiniBand access pays off every iteration.
//
// Solves the 1-D Poisson problem (tridiagonal [-1, 2, -1]) distributed
// block-wise over the ranks, with real arithmetic, and reports convergence
// plus the time spent under each MPI stack.
//
//   $ ./examples/cg_solver [n] [procs]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "compute/compute.hpp"
#include "mpi/runtime.hpp"

using namespace dcfa;
using namespace dcfa::mpi;

namespace {

struct CgResult {
  int iterations = 0;
  double residual = 0.0;
  sim::Time elapsed = 0;
};

CgResult run_cg(MpiMode mode, int n, int nprocs) {
  RunConfig cfg;
  cfg.mode = mode;
  cfg.nprocs = nprocs;
  CgResult result;

  run_mpi(cfg, [&](RankCtx& ctx) {
    auto& comm = ctx.world;
    const int P = comm.size(), rank = comm.rank();
    const int base = n / P, extra = n % P;
    const int local = base + (rank < extra ? 1 : 0);

    // Vectors with one ghost element on each side for the halo.
    auto vec = [&] { return comm.alloc((local + 2) * sizeof(double)); };
    mem::Buffer x = vec(), r = vec(), p = vec(), ap = vec();
    mem::Buffer dot_in = comm.alloc(2 * sizeof(double));
    mem::Buffer dot_out = comm.alloc(2 * sizeof(double));
    auto D = [](mem::Buffer& b) {
      return reinterpret_cast<double*>(b.data());
    };

    // b = 1 everywhere; x0 = 0; r = b; p = r.
    for (int i = 1; i <= local; ++i) {
      D(x)[i] = 0.0;
      D(r)[i] = 1.0;
      D(p)[i] = 1.0;
    }

    const int up = rank > 0 ? rank - 1 : -1;
    const int down = rank < P - 1 ? rank + 1 : -1;
    auto exchange_halo = [&](mem::Buffer& v) {
      std::vector<Request> reqs;
      if (up >= 0) {
        reqs.push_back(comm.irecv(v, 0, 1, type_double(), up, 7));
        reqs.push_back(
            comm.isend(v, sizeof(double), 1, type_double(), up, 8));
      } else {
        D(v)[0] = 0.0;  // Dirichlet boundary
      }
      if (down >= 0) {
        reqs.push_back(
            comm.irecv(v, (local + 1) * sizeof(double), 1, type_double(),
                       down, 8));
        reqs.push_back(
            comm.isend(v, local * sizeof(double), 1, type_double(), down, 7));
      } else {
        D(v)[local + 1] = 0.0;
      }
      comm.waitall(reqs);
    };
    auto allreduce2 = [&](double a, double b, double* oa, double* ob) {
      D(dot_in)[0] = a;
      D(dot_in)[1] = b;
      comm.allreduce(dot_in, 0, dot_out, 0, 2, type_double(), Op::Sum);
      *oa = D(dot_out)[0];
      *ob = D(dot_out)[1];
    };

    double rr = 0;
    for (int i = 1; i <= local; ++i) rr += D(r)[i] * D(r)[i];
    double dummy, rr_g;
    allreduce2(rr, 0, &rr_g, &dummy);
    const double rr0 = rr_g;

    comm.barrier();
    const sim::Time t0 = ctx.proc.now();
    int it = 0;
    const int max_it = n;  // unpreconditioned CG needs O(n) sweeps here
    while (it < max_it && rr_g > 1e-12 * rr0) {
      // ap = A p (tridiagonal stencil; needs p's halo).
      exchange_halo(p);
      double pap = 0;
      for (int i = 1; i <= local; ++i) {
        D(ap)[i] = 2.0 * D(p)[i] - D(p)[i - 1] - D(p)[i + 1];
        pap += D(p)[i] * D(ap)[i];
      }
      // Model the flops on the co-processor clock (56-thread team).
      compute::parallel_for(ctx.proc, ctx.platform, compute::Cpu::Phi,
                            static_cast<std::uint64_t>(local), 56);
      double pap_g;
      allreduce2(pap, 0, &pap_g, &dummy);

      const double alpha = rr_g / pap_g;
      double rr_new = 0;
      for (int i = 1; i <= local; ++i) {
        D(x)[i] += alpha * D(p)[i];
        D(r)[i] -= alpha * D(ap)[i];
        rr_new += D(r)[i] * D(r)[i];
      }
      compute::parallel_for(ctx.proc, ctx.platform, compute::Cpu::Phi,
                            static_cast<std::uint64_t>(local), 56);
      double rr_new_g;
      allreduce2(rr_new, 0, &rr_new_g, &dummy);

      const double beta = rr_new_g / rr_g;
      for (int i = 1; i <= local; ++i) {
        D(p)[i] = D(r)[i] + beta * D(p)[i];
      }
      rr_g = rr_new_g;
      ++it;
    }
    comm.barrier();
    if (rank == 0) {
      result.iterations = it;
      result.residual = std::sqrt(rr_g / rr0);
      result.elapsed = ctx.proc.now() - t0;
    }
    for (auto* b : {&x, &r, &p, &ap, &dot_in, &dot_out}) comm.free(*b);
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 1024;
  const int procs = argc > 2 ? std::atoi(argv[2]) : 4;
  std::printf("conjugate gradient, 1-D Poisson, n=%d, %d ranks, "
              "2 allreduces + 1 halo exchange per iteration\n\n",
              n, procs);
  for (MpiMode mode : {MpiMode::DcfaPhi, MpiMode::IntelPhi}) {
    const CgResult res = run_cg(mode, n, procs);
    std::printf("%-24s converged in %3d iterations (rel. residual %.2e) "
                "in %8.2f ms\n",
                mode_name(mode), res.iterations, res.residual,
                sim::to_ms(res.elapsed));
  }
  std::printf("\nLatency-bound Krylov iterations are where the direct "
              "co-processor InfiniBand path (15us vs 28us round trips) "
              "shows up at application level.\n");
  return 0;
}
