// dcfa-lint: allow-file(raw-post) -- the example demonstrates the raw verbs flow
// Raw DCFA example: programming the co-processor's InfiniBand verbs
// directly, without the MPI layer — the level of abstraction the DCFA
// library itself provides (Section IV-A). Shows the full flow the paper
// describes: delegated resource creation through the CMD channel, direct
// doorbell data path, and the offloading send buffer triple
// (reg_offload_mr / sync_offload_mr / dereg_offload_mr).
//
//   $ ./examples/raw_dcfa_verbs

#include <cstdio>
#include <cstring>

#include "dcfa/phi_verbs.hpp"

using namespace dcfa;

int main() {
  sim::Engine engine;
  sim::Platform platform;
  ib::Fabric fabric(engine, platform);

  // Two nodes, each: memory, PCIe port, HCA, SCIF channel, host delegate.
  mem::NodeMemory mem0(0), mem1(1);
  pcie::PciePort pcie0(engine, mem0, platform), pcie1(engine, mem1, platform);
  ib::Hca& hca0 = fabric.add_hca(mem0, pcie0);
  ib::Hca& hca1 = fabric.add_hca(mem1, pcie1);
  scif::Channel chan0(engine, pcie0, platform), chan1(engine, pcie1, platform);
  core::HostDelegate delegate0(chan0, hca0, mem0);
  core::HostDelegate delegate1(chan1, hca1, mem1);

  struct Exchange {
    verbs::QpAddress qp{};
    mem::SimAddr buf = 0;
    ib::MKey rkey = 0;
    bool ready = false;
  } xchg;
  sim::Condition published(engine, "published");
  const std::size_t kBytes = 1 << 20;

  // Receiver co-processor: expose a GDDR buffer for RDMA.
  engine.spawn("phi-receiver", [&](sim::Process& proc) {
    core::PhiVerbs verbs(proc, fabric, mem1, chan1);
    auto* pd = verbs.alloc_pd();                 // CMD round trip
    auto* cq = verbs.create_cq(16);              // CMD round trip
    auto* qp = verbs.create_qp(pd, cq, cq);      // CMD round trip
    mem::Buffer dst = verbs.alloc_buffer(kBytes, 4096);
    auto* mr = verbs.reg_mr(pd, dst, ib::kLocalWrite | ib::kRemoteWrite);
    xchg.qp = verbs.address(qp);
    xchg.buf = dst.addr();
    xchg.rkey = mr->rkey();
    xchg.ready = true;
    published.notify_all();
    while (dst.data()[kBytes - 1] != std::byte{0x77}) {
      proc.wait(sim::microseconds(10));  // tail-poll for the payload
    }
    std::printf("[phi-receiver] %zu KiB landed in GDDR at t=%s\n",
                kBytes / 1024, sim::format_time(proc.now()).c_str());
  });

  // Sender co-processor: compare the direct path with the offloading
  // send buffer path.
  engine.spawn("phi-sender", [&](sim::Process& proc) {
    core::PhiVerbs verbs(proc, fabric, mem0, chan0);
    auto* pd = verbs.alloc_pd();
    auto* cq = verbs.create_cq(16);
    auto* qp = verbs.create_qp(pd, cq, cq);
    while (!xchg.ready) proc.wait_on(published);
    verbs.connect(qp, xchg.qp);

    mem::Buffer src = verbs.alloc_buffer(kBytes, 4096);
    std::memset(src.data(), 0x66, kBytes);
    auto* mr = verbs.reg_mr(pd, src, 0);

    auto timed_write = [&](mem::SimAddr addr, ib::MKey lkey,
                           const char* label) {
      const sim::Time t0 = proc.now();
      ib::SendWr wr;
      wr.opcode = ib::Opcode::RdmaWrite;
      wr.sg_list = {{addr, kBytes, lkey}};
      wr.remote_addr = xchg.buf;
      wr.rkey = xchg.rkey;
      verbs.post_send(qp, wr);
      ib::Wc wc;
      while (verbs.poll_cq(cq, 1, &wc) == 0) verbs.wait_cq(cq);
      const sim::Time dt = proc.now() - t0;
      std::printf("[phi-sender] %-34s %8.1f us  (%.2f GB/s)\n", label,
                  sim::to_us(dt), static_cast<double>(kBytes) / dt);
      return dt;
    };

    // 1. Straight from GDDR: the HCA's slow read path (Figure 5).
    timed_write(src.addr(), mr->lkey(), "RDMA write from Phi GDDR:");

    // 2. Through the offloading send buffer (Figure 6): DMA-sync the data
    //    into a host shadow, post from host memory.
    core::OffloadRegion shadow = verbs.reg_offload_mr(pd, kBytes);
    const sim::Time t0 = proc.now();
    verbs.sync_offload_mr(shadow, src, 0, kBytes);
    std::printf("[phi-sender] %-34s %8.1f us\n",
                "sync_offload_mr (Phi DMA engine):",
                sim::to_us(proc.now() - t0));
    std::memset(src.data() + kBytes - 1, 0x77, 1);  // final byte marker
    verbs.sync_offload_mr(shadow, src, kBytes - 4096, 4096);
    timed_write(shadow.host_addr, shadow.lkey,
                "RDMA write from host shadow:");
    verbs.dereg_offload_mr(shadow);
  });

  engine.run();
  std::printf("done; host delegate served %llu + %llu offloaded requests\n",
              static_cast<unsigned long long>(delegate0.requests_served()),
              static_cast<unsigned long long>(delegate1.requests_served()));
  return 0;
}
