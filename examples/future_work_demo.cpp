// Future-work demo: the paper's Section VI plans, implemented and measured.
//
// "For future research, some heavy functions, such as collective
// communication and communication using user defined data types are
// planned to be offloaded to the host CPU."
//
// This demo runs a large allreduce and a strided-datatype halo send twice —
// once with the Phi core doing the heavy lifting, once with the work
// delegated through the DCFA-MPI CMD channel to the host CPU — and writes a
// Chrome trace of the delegated run (open trace_future_work.json in
// chrome://tracing or ui.perfetto.dev to watch the Phi DMA engine, the HCA
// and the delegation interleave).
//
//   $ ./examples/future_work_demo

#include <cstdio>
#include <cstring>

#include "mpi/runtime.hpp"

using namespace dcfa;
using namespace dcfa::mpi;

namespace {

sim::Time run_allreduce(bool delegate, std::size_t doubles,
                        const char* trace = nullptr) {
  RunConfig cfg;
  cfg.mode = MpiMode::DcfaPhi;
  cfg.nprocs = 4;
  cfg.engine_options.offload_reductions = delegate;
  if (trace) cfg.trace_path = trace;
  sim::Time elapsed = 0;
  run_mpi(cfg, [&](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer in = comm.alloc(doubles * sizeof(double));
    mem::Buffer out = comm.alloc(doubles * sizeof(double));
    auto* v = reinterpret_cast<double*>(in.data());
    for (std::size_t i = 0; i < doubles; ++i) v[i] = ctx.rank + 1.0;
    comm.barrier();
    const sim::Time t0 = ctx.proc.now();
    comm.allreduce(in, 0, out, 0, doubles, type_double(), Op::Sum);
    if (ctx.rank == 0) {
      elapsed = ctx.proc.now() - t0;
      auto* r = reinterpret_cast<double*>(out.data());
      if (r[doubles / 2] != 1.0 + 2 + 3 + 4) {
        std::fprintf(stderr, "BUG: wrong allreduce result\n");
      }
    }
    comm.free(in);
    comm.free(out);
  });
  return elapsed;
}

sim::Time run_strided_send(bool delegate, std::size_t blocks) {
  const Datatype vec = Datatype::vector(blocks, 16, 32, type_double());
  RunConfig cfg;
  cfg.mode = MpiMode::DcfaPhi;
  cfg.nprocs = 2;
  cfg.engine_options.offload_datatypes = delegate;
  sim::Time elapsed = 0;
  run_mpi(cfg, [&](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer buf = comm.alloc(vec.extent() + 64);
    comm.barrier();
    const sim::Time t0 = ctx.proc.now();
    if (ctx.rank == 0) {
      comm.send(buf, 0, 1, vec, 1, 1);
    } else {
      comm.recv(buf, 0, 1, vec, 0, 1);
    }
    comm.barrier();
    if (ctx.rank == 0) elapsed = ctx.proc.now() - t0;
    comm.free(buf);
  });
  return elapsed;
}

}  // namespace

int main() {
  std::printf("=== Section VI future work, implemented ===\n\n");

  const std::size_t doubles = 512 * 1024;  // 4 MB vectors
  const sim::Time local = run_allreduce(false, doubles);
  const sim::Time delegated =
      run_allreduce(true, doubles, "trace_future_work.json");
  std::printf("allreduce of %zu doubles across 4 co-processors:\n", doubles);
  std::printf("  combine on the Phi core:      %8.1f us\n",
              sim::to_us(local));
  std::printf("  combine on the host (CMD):    %8.1f us   (%.1fx)\n",
              sim::to_us(delegated),
              static_cast<double>(local) / delegated);

  const std::size_t blocks = 16 * 1024;  // 2 MB strided payload
  const sim::Time pack_local = run_strided_send(false, blocks);
  const sim::Time pack_host = run_strided_send(true, blocks);
  std::printf("\nstrided vector send (%zu blocks of 16 doubles, stride 32):\n",
              blocks);
  std::printf("  pack on the Phi core:         %8.1f us\n",
              sim::to_us(pack_local));
  std::printf("  pack on the host (CMD):       %8.1f us   (%.1fx)\n",
              sim::to_us(pack_host),
              static_cast<double>(pack_local) / pack_host);

  std::printf("\nChrome trace of the delegated allreduce written to "
              "trace_future_work.json\n");
  return 0;
}
