// Stencil demo: the paper's third experiment as a runnable application.
//
// Runs the five-point Jacobi stencil (1282x1282 doubles, 10 KB halos) on
// all three systems the paper compares — DCFA-MPI, 'Intel MPI on Xeon Phi'
// and 'Intel MPI on Xeon + offload' — verifies they produce the same
// numerical answer, and prints per-system timing and speed-ups.
//
//   $ ./examples/stencil_demo [procs] [threads]

#include <cstdio>
#include <cstdlib>

#include "apps/stencil.hpp"

using namespace dcfa;
using namespace dcfa::apps;

int main(int argc, char** argv) {
  const int procs = argc > 1 ? std::atoi(argv[1]) : 4;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 14;

  StencilConfig cfg;
  cfg.n = 322;          // demo-sized grid so real arithmetic stays snappy
  cfg.iterations = 50;
  cfg.nprocs = procs;
  cfg.threads = threads;
  cfg.real_compute = true;  // actually run the arithmetic and checksum it

  std::printf("five-point stencil: %dx%d doubles, %d iterations, "
              "%d MPI processes x %d OpenMP threads\n",
              cfg.n, cfg.n, cfg.iterations, procs, threads);
  std::printf("halo per neighbour: %zu bytes per iteration\n\n",
              static_cast<std::size_t>(cfg.n) * sizeof(double));

  const StencilResult serial = run_stencil_serial(cfg);
  std::printf("%-32s %10.2f ms   checksum %.10e\n", "serial (1 proc, 1 thr)",
              sim::to_ms(serial.total), serial.checksum);

  struct Row {
    StencilSystem sys;
  };
  for (StencilSystem sys : {StencilSystem::DcfaPhi, StencilSystem::IntelPhi,
                            StencilSystem::HostOffload}) {
    const StencilResult r = run_stencil(sys, cfg);
    const double speedup =
        static_cast<double>(serial.total) / static_cast<double>(r.total);
    const double drift = std::abs(r.checksum - serial.checksum) /
                         std::abs(serial.checksum);
    std::printf("%-32s %10.2f ms   speed-up %6.1fx   checksum drift %.1e%s\n",
                stencil_system_name(sys), sim::to_ms(r.total), speedup,
                drift, drift < 1e-9 ? " (ok)" : " (MISMATCH!)");
  }

  std::printf("\nAll three systems run the same kernel on the co-processor; "
              "they differ only in where MPI ranks live and how halos reach "
              "the network — which is exactly the paper's point.\n");
  return 0;
}
