// A classic MPI C program, ported verbatim.
//
// The paper's promise: "Since the interface of DCFA is uniform with the
// original host's InfiniBand Verbs library ... The MPI applications running
// on the host could be easily moved to co-processors." This file is what
// that porting story looks like: a textbook MPI program (rank 0 scatters
// work, everyone computes and reduces, neighbours exchange halos) written
// against the familiar MPI_* API — the only additions are MPI_Alloc_mem for
// buffers and the dcfa::capi::run() launcher standing in for mpirun.
//
//   $ ./examples/classic_mpi_port

#include <cstdio>

#include "capi/mpi_compat.hpp"

using namespace dcfa::capi;

namespace {

int rank_main(int, char**) {
  MPI_Init(nullptr, nullptr);

  int rank, size;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);

  const int kPerRank = 1000;
  double *chunk, *all, *partial;
  MPI_Alloc_mem(kPerRank * sizeof(double), nullptr, &chunk);
  MPI_Alloc_mem(size * kPerRank * sizeof(double), nullptr, &all);
  MPI_Alloc_mem(sizeof(double), nullptr, &partial);

  // Root builds the dataset and scatters it.
  if (rank == 0) {
    for (int i = 0; i < size * kPerRank; ++i) {
      all[i] = 1.0 / (1.0 + i);
    }
  }
  MPI_Scatter(all, kPerRank, MPI_DOUBLE, chunk, kPerRank, MPI_DOUBLE, 0,
              MPI_COMM_WORLD);

  // Local work + global reduction.
  double local = 0;
  for (int i = 0; i < kPerRank; ++i) local += chunk[i];
  partial[0] = local;
  double* total;
  MPI_Alloc_mem(sizeof(double), nullptr, &total);
  MPI_Allreduce(partial, total, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);

  // Neighbour exchange (periodic ring) with Sendrecv.
  double *left_val, *my_val;
  MPI_Alloc_mem(sizeof(double), nullptr, &left_val);
  MPI_Alloc_mem(sizeof(double), nullptr, &my_val);
  my_val[0] = local;
  MPI_Status st;
  MPI_Sendrecv(my_val, 1, MPI_DOUBLE, (rank + 1) % size, 0, left_val, 1,
               MPI_DOUBLE, (rank + size - 1) % size, 0, MPI_COMM_WORLD, &st);

  MPI_Barrier(MPI_COMM_WORLD);
  if (rank == 0) {
    std::printf("[classic MPI] %d ranks, global sum %.6f (t=%.1f us); "
                "rank 0 heard %.6f from rank %d\n",
                size, total[0], MPI_Wtime() * 1e6, left_val[0],
                st.MPI_SOURCE);
  }

  MPI_Free_mem(chunk);
  MPI_Free_mem(all);
  MPI_Free_mem(partial);
  MPI_Free_mem(total);
  MPI_Free_mem(left_val);
  MPI_Free_mem(my_val);
  MPI_Finalize();
  return 0;
}

}  // namespace

int main() {
  dcfa::mpi::RunConfig config;
  config.mode = dcfa::mpi::MpiMode::DcfaPhi;
  config.nprocs = 4;
  const auto elapsed = run(config, rank_main);
  std::printf("job finished in %s of virtual time\n",
              dcfa::sim::format_time(elapsed).c_str());
  return 0;
}
