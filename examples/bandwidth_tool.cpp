// Bandwidth/latency probing tool (an osu_bw/osu_latency analogue for the
// simulated cluster). Sweeps message sizes on any of the four MPI stacks
// and prints RTT + bandwidth, plus the protocol each size used.
//
//   $ ./examples/bandwidth_tool [mode] [max_size]
//     mode: dcfa | dcfa-nooff | intelphi | host   (default dcfa)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/pingpong.hpp"

using namespace dcfa;

int main(int argc, char** argv) {
  mpi::MpiMode mode = mpi::MpiMode::DcfaPhi;
  if (argc > 1) {
    const std::string m = argv[1];
    if (m == "dcfa-nooff") mode = mpi::MpiMode::DcfaPhiNoOffload;
    else if (m == "intelphi") mode = mpi::MpiMode::IntelPhi;
    else if (m == "host") mode = mpi::MpiMode::HostMpi;
    else if (m != "dcfa") {
      std::fprintf(stderr, "unknown mode '%s'\n", m.c_str());
      return 1;
    }
  }
  const std::size_t max_size =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : (4u << 20);

  sim::Platform platform;
  std::printf("# mode: %s, eager threshold %zu, offload threshold %zu\n",
              mpi::mode_name(mode),
              static_cast<std::size_t>(platform.eager_threshold),
              static_cast<std::size_t>(platform.offload_send_threshold));
  std::printf("%-10s %14s %14s  %s\n", "bytes", "RTT(us)", "BW(GB/s)",
              "protocol");
  for (std::size_t bytes = 4; bytes <= max_size; bytes *= 2) {
    mpi::RunConfig cfg;
    cfg.mode = mode;
    auto r = apps::pingpong_blocking(cfg, bytes, 10, 2);
    const char* protocol =
        bytes < platform.eager_threshold
            ? "eager (one-copy)"
            : (mode == mpi::MpiMode::DcfaPhi &&
                       bytes >= platform.offload_send_threshold
                   ? "rendezvous + offload send buffer"
                   : "rendezvous (zero-copy)");
    std::printf("%-10zu %14.2f %14.3f  %s\n", bytes, sim::to_us(r.round_trip),
                r.bandwidth_gbps, protocol);
  }
  return 0;
}
