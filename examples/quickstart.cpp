// Quickstart: the smallest complete DCFA-MPI program.
//
// Builds a 4-node simulated Xeon Phi cluster, runs one MPI rank per
// co-processor, and walks through the basic API: point-to-point send/recv,
// a non-blocking exchange, and an allreduce — all communicating directly
// between co-processors over the simulated InfiniBand fabric.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <cstring>

#include "mpi/runtime.hpp"

using namespace dcfa;
using namespace dcfa::mpi;

int main() {
  RunConfig config;
  config.mode = MpiMode::DcfaPhi;  // ranks live on the co-processors
  config.nprocs = 4;

  Runtime runtime(config);
  runtime.run([](RankCtx& ctx) {
    Communicator& comm = ctx.world;
    const int rank = comm.rank();
    const int size = comm.size();

    // --- 1. Ring: pass a counter around, each rank increments it. --------
    mem::Buffer token = comm.alloc(sizeof(int));
    if (rank == 0) {
      int value = 1;
      std::memcpy(token.data(), &value, sizeof value);
      comm.send(token, 0, 1, type_int(), 1, /*tag=*/0);
      comm.recv(token, 0, 1, type_int(), size - 1, 0);
      std::memcpy(&value, token.data(), sizeof value);
      std::printf("[rank 0] token came home with value %d (expected %d)\n",
                  value, size);
    } else {
      Status st = comm.recv(token, 0, 1, type_int(), rank - 1, 0);
      int value = 0;
      std::memcpy(&value, token.data(), sizeof value);
      ++value;
      std::memcpy(token.data(), &value, sizeof value);
      comm.send(token, 0, 1, type_int(), (rank + 1) % size, 0);
      std::printf("[rank %d] forwarded token=%d (from rank %d, %zu bytes)\n",
                  rank, value, st.source, st.bytes);
    }

    // --- 2. Non-blocking neighbour exchange (large: rendezvous path). ----
    const std::size_t kBytes = 64 * 1024;  // crosses the offload threshold
    mem::Buffer sbuf = comm.alloc(kBytes);
    mem::Buffer rbuf = comm.alloc(kBytes);
    std::memset(sbuf.data(), rank, kBytes);
    const int right = (rank + 1) % size;
    const int left = (rank - 1 + size) % size;
    Request reqs[2];
    reqs[0] = comm.irecv(rbuf, 0, kBytes, type_byte(), left, 1);
    reqs[1] = comm.isend(sbuf, 0, kBytes, type_byte(), right, 1);
    comm.waitall(reqs);
    std::printf("[rank %d] got %d KiB from rank %d via zero-copy rendezvous\n",
                rank, static_cast<int>(kBytes / 1024),
                static_cast<int>(rbuf.data()[0]));

    // --- 3. Collective: sum of squares across the cluster. ----------------
    mem::Buffer in = comm.alloc(sizeof(double));
    mem::Buffer out = comm.alloc(sizeof(double));
    const double mine = static_cast<double>(rank * rank);
    std::memcpy(in.data(), &mine, sizeof mine);
    comm.allreduce(in, 0, out, 0, 1, type_double(), Op::Sum);
    double total = 0;
    std::memcpy(&total, out.data(), sizeof total);
    if (rank == 0) {
      std::printf("[rank 0] allreduce(sum of rank^2) = %.0f at t=%.1f us\n",
                  total, comm.wtime() * 1e6);
    }

    comm.free(token);
    comm.free(sbuf);
    comm.free(rbuf);
    comm.free(in);
    comm.free(out);
  });

  std::printf("simulated run finished at %s; rank-0 protocol stats: "
              "%llu eager, %llu rendezvous, %llu offload syncs\n",
              sim::format_time(runtime.elapsed()).c_str(),
              static_cast<unsigned long long>(
                  runtime.rank_stats()[0].eager_sends),
              static_cast<unsigned long long>(
                  runtime.rank_stats()[0].rndv_sends),
              static_cast<unsigned long long>(
                  runtime.rank_stats()[0].offload_syncs));
  return 0;
}
