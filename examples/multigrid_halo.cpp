// Multigrid with persistent-channel halos, DD-alphaAMG style.
//
// Multigrid is the communication stress test for one-sided halo machinery:
// every V-cycle exchanges halos on *every* level, and the coarse levels are
// so small that per-message setup (rendezvous handshakes, MR negotiation)
// dominates the wire time. DD-alphaAMG's answer — and ours — is persistent
// communication channels: negotiate the buffers, MRs and rkeys once at
// solver setup, then every smoothing sweep posts a bare RDMA write plus a
// doorbell. This example builds a full V-cycle hierarchy for the 1-D
// Poisson problem (tridiagonal [-1, 2, -1]) with weighted-Jacobi smoothing,
// wires every halo on every level — solution and residual both — through
// Channels, and proves both claims at once:
//
//   numerics:  the residual norm drops ~20x per V-cycle
//   structure: zero MR negotiations inside the solve (Stats counters)
//
// Grid layout: vertex-centred coarsening needs the Dirichlet boundaries to
// sit on coarse points, so the global interior is n = P*q - 1 points with
// q a power of two: ranks 0..P-2 own q points, the last rank owns q-1.
// Every rank's block then starts at an even global index and the local
// coarse->fine map is simply i_fine = 2*j on every rank at every level;
// the last rank just interpolates one extra odd tail point.
//
//   $ ./examples/multigrid_halo [n] [procs] [cycles]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <vector>

#include "compute/compute.hpp"
#include "mpi/channel.hpp"
#include "mpi/runtime.hpp"

using namespace dcfa;
using namespace dcfa::mpi;

namespace {

constexpr double kOmega = 2.0 / 3.0;  // weighted-Jacobi damping

struct MgResult {
  std::vector<double> residuals;  // norm after each V-cycle (entry 0 = rhs)
  int levels = 0;
  int channels = 0;               // rank 0's channel count
  std::uint64_t hot_negotiations = 0;
  std::uint64_t channel_posts = 0;
  sim::Time elapsed = 0;
};

MgResult run_mg(int n, int nprocs, int cycles) {
  MgResult result;
  RunConfig cfg;
  cfg.mode = MpiMode::DcfaPhi;
  cfg.nprocs = nprocs;

  Runtime rt(cfg);
  rt.run([&](RankCtx& ctx) {
    auto& comm = ctx.world;
    const int P = comm.size(), rank = comm.rank();
    const int up = rank > 0 ? rank - 1 : -1;
    const int down = rank < P - 1 ? rank + 1 : -1;

    // --- The level hierarchy: halve the block until 2 points per rank ----
    std::vector<int> q{(n + 1) / P};
    while (q.back() % 2 == 0 && q.back() > 2) q.push_back(q.back() / 2);
    const int L = static_cast<int>(q.size());
    std::vector<int> m(L);  // this rank's interior points per level
    for (int l = 0; l < L; ++l) m[l] = rank == P - 1 ? q[l] - 1 : q[l];

    // Per level: solution u and residual r with one ghost element each
    // side (ghosts start, and at the domain boundary stay, zero —
    // homogeneous Dirichlet), plus a plain rhs array.
    auto vec = [&](int mm) {
      mem::Buffer b = comm.alloc((mm + 2) * sizeof(double));
      std::memset(b.data(), 0, (mm + 2) * sizeof(double));
      return b;
    };
    std::vector<mem::Buffer> u(L), r(L);
    std::vector<std::vector<double>> f(L);
    for (int l = 0; l < L; ++l) {
      u[l] = vec(m[l]);
      r[l] = vec(m[l]);
      f[l].assign(m[l] + 1, 0.0);
    }
    mem::Buffer red_in = comm.alloc(sizeof(double));
    mem::Buffer red_out = comm.alloc(sizeof(double));
    auto D = [](mem::Buffer& b) {
      return reinterpret_cast<double*>(b.data());
    };

    // --- Solver setup: the one-time channel negotiation ------------------
    // One pairwise channel per (level, buffer, neighbour): my first
    // interior element lands in the up-neighbour's upper ghost and vice
    // versa. Rank k's up-channels pair with rank k-1's down-channels, so
    // every rank opens its whole up side first (same level/buffer order on
    // both sides) and the pairwise setup resolves as a chain from rank 0
    // without deadlock.
    std::vector<std::optional<Channel>> u_up(L), u_down(L), r_up(L),
        r_down(L);
    if (up >= 0) {
      for (int l = 0; l < L; ++l) {
        u_up[l].emplace(comm, up, u[l], sizeof(double), u[l], 0,
                        sizeof(double));
        r_up[l].emplace(comm, up, r[l], sizeof(double), r[l], 0,
                        sizeof(double));
      }
    }
    if (down >= 0) {
      for (int l = 0; l < L; ++l) {
        u_down[l].emplace(comm, down, u[l], m[l] * sizeof(double), u[l],
                          (m[l] + 1) * sizeof(double), sizeof(double));
        r_down[l].emplace(comm, down, r[l], m[l] * sizeof(double), r[l],
                          (m[l] + 1) * sizeof(double), sizeof(double));
      }
    }
    if (rank == 0) {
      result.levels = L;
      result.channels = (up >= 0 ? 2 * L : 0) + (down >= 0 ? 2 * L : 0);
    }

    // One halo exchange: both neighbours, payload + doorbell each.
    auto exchange = [](std::optional<Channel>& cu,
                       std::optional<Channel>& cd) {
      if (cu) cu->post();
      if (cd) cd->post();
      if (cu) cu->wait_arrival();
      if (cd) cd->wait_arrival();
      if (cu) cu->wait_local();
      if (cd) cd->wait_local();
    };

    // rhs f = 1 on the fine grid; initial guess u = 0.
    f[0].assign(m[0] + 1, 1.0);
    std::vector<double> tmp(m[0] + 1, 0.0);

    auto norm = [&](const double* v, int mm) {
      double s = 0;
      for (int i = 1; i <= mm; ++i) s += v[i] * v[i];
      std::memcpy(red_in.data(), &s, sizeof s);
      comm.allreduce(red_in, 0, red_out, 0, 1, type_double(), Op::Sum);
      double g;
      std::memcpy(&g, red_out.data(), sizeof g);
      return std::sqrt(g);
    };

    // Damped-Jacobi sweeps of (2u[i] - u[i-1] - u[i+1]) = rhs[i] on level
    // l, each with a halo-fresh u; flops charged to the Phi clock.
    auto jacobi = [&](int l, int sweeps) {
      for (int s = 0; s < sweeps; ++s) {
        exchange(u_up[l], u_down[l]);
        double* x = D(u[l]);
        const double* rhs = f[l].data();
        for (int i = 1; i <= m[l]; ++i) {
          tmp[i] = x[i] + kOmega * 0.5 *
                              (rhs[i] - (2.0 * x[i] - x[i - 1] - x[i + 1]));
        }
        for (int i = 1; i <= m[l]; ++i) x[i] = tmp[i];
        compute::parallel_for(ctx.proc, ctx.platform, compute::Cpu::Phi,
                              static_cast<std::uint64_t>(m[l]), 56);
      }
    };
    auto residual = [&](int l) {
      exchange(u_up[l], u_down[l]);
      double* x = D(u[l]);
      double* res = D(r[l]);
      for (int i = 1; i <= m[l]; ++i) {
        res[i] = f[l][i] - (2.0 * x[i] - x[i - 1] - x[i + 1]);
      }
    };

    // The V-cycle. Full-weighting restriction and linear interpolation
    // give the Galerkin coarse operator R*T*P = T/4 for our unscaled
    // stencil T = [-1, 2, -1], so the coarse equation is T u_c = 4*R*r —
    // which is exactly (r[2j-1] + 2 r[2j] + r[2j+1]).
    auto vcycle = [&](auto&& self, int l) -> void {
      if (l == L - 1) {
        jacobi(l, 60);  // coarsest grid is tiny: Jacobi *is* the solver
        return;
      }
      jacobi(l, 3);
      residual(l);
      exchange(r_up[l], r_down[l]);  // restriction reads r's upper ghost
      const double* res = D(r[l]);
      for (int j = 1; j <= m[l + 1]; ++j) {
        f[l + 1][j] = res[2 * j - 1] + 2.0 * res[2 * j] + res[2 * j + 1];
      }
      std::memset(u[l + 1].data(), 0, (m[l + 1] + 2) * sizeof(double));
      self(self, l + 1);
      // Prolong + correct: odd fine points interpolate, so they read the
      // coarse lower ghost; the last rank's odd tail point sits next to
      // the Dirichlet boundary (coarse ghost there is zero).
      exchange(u_up[l + 1], u_down[l + 1]);
      const double* cu = D(u[l + 1]);
      double* x = D(u[l]);
      for (int j = 1; j <= m[l + 1]; ++j) {
        x[2 * j] += cu[j];
        x[2 * j - 1] += 0.5 * (cu[j - 1] + cu[j]);
      }
      if (m[l] % 2 == 1) x[m[l]] += 0.5 * cu[m[l + 1]];
      jacobi(l, 3);
    };

    comm.barrier();
    const std::uint64_t neg0 = comm.engine().coll_stats().rma_mr_negotiations;
    const sim::Time t0 = ctx.proc.now();

    residual(0);
    double res_norm = norm(D(r[0]), m[0]);
    if (rank == 0) result.residuals.push_back(res_norm);

    for (int c = 0; c < cycles; ++c) {
      vcycle(vcycle, 0);
      residual(0);
      res_norm = norm(D(r[0]), m[0]);
      if (rank == 0) result.residuals.push_back(res_norm);
    }

    comm.barrier();
    if (rank == 0) {
      result.elapsed = ctx.proc.now() - t0;
      result.hot_negotiations =
          comm.engine().coll_stats().rma_mr_negotiations - neg0;
    }
    for (auto* chans : {&u_up, &u_down, &r_up, &r_down}) {
      for (auto& ch : *chans) {
        if (ch) ch->close();
      }
    }
    for (int l = 0; l < L; ++l) {
      comm.free(u[l]);
      comm.free(r[l]);
    }
    comm.free(red_in);
    comm.free(red_out);
  });

  for (const auto& s : rt.rank_stats()) {
    result.channel_posts += s.channel_posts;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 511;
  const int procs = argc > 2 ? std::atoi(argv[2]) : 4;
  const int cycles = argc > 3 ? std::atoi(argv[3]) : 8;
  const int q = (n + 1) / procs;
  if ((n + 1) % procs != 0 || q % 2 != 0) {
    std::fprintf(stderr,
                 "need n = procs*q - 1 with q even (e.g. n=511, procs=4)\n");
    return 2;
  }
  std::printf("multigrid V-cycles, 1-D Poisson, n=%d, %d ranks, %d cycles\n"
              "halos on every level ride persistent channels (negotiated "
              "once at setup)\n\n",
              n, procs, cycles);

  const MgResult res = run_mg(n, procs, cycles);
  std::printf("%d levels, %d channels per interior rank\n\n", res.levels,
              res.channels);

  std::printf("%-8s %-14s %s\n", "cycle", "||r||", "reduction");
  bool converging = true;
  for (std::size_t c = 0; c < res.residuals.size(); ++c) {
    if (c == 0) {
      std::printf("%-8zu %-14.3e -\n", c, res.residuals[c]);
      continue;
    }
    const double factor = res.residuals[c] / res.residuals[c - 1];
    // Monotone decrease, cycle after cycle — until the residual hits the
    // double-precision floor, where roundoff may wiggle it.
    if (res.residuals[c] > res.residuals[c - 1] &&
        res.residuals[c] > 1e-10 * res.residuals[0]) {
      converging = false;
    }
    std::printf("%-8zu %-14.3e x%.4f\n", c, res.residuals[c], factor);
  }
  const double drop = res.residuals.back() / res.residuals.front();
  std::printf("\nchannel posts: %llu   MR negotiations inside the solve: "
              "%llu   solve time: %.2f ms\n",
              static_cast<unsigned long long>(res.channel_posts),
              static_cast<unsigned long long>(res.hot_negotiations),
              sim::to_ms(res.elapsed));

  const bool ok = converging && drop < 1e-6 && res.hot_negotiations == 0;
  std::printf("check (monotone residual, >1e6 total reduction, zero hot "
              "negotiations): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
