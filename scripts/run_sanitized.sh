#!/usr/bin/env bash
# Build and run the whole test suite under AddressSanitizer + UBSan.
#
#   scripts/run_sanitized.sh [sanitizers] [build-dir]
#
# Defaults: sanitizers=address,undefined, build-dir=build-asan. The normal
# `build/` tree is left untouched so a sanitized run never forces a full
# rebuild of the day-to-day configuration.
set -euo pipefail

SANITIZERS="${1:-address,undefined}"
BUILD_DIR="${2:-build-asan}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$ROOT/$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDCFA_SANITIZE="$SANITIZERS"
cmake --build "$ROOT/$BUILD_DIR" -j "$(nproc)"

# halt_on_error so a sanitizer report fails the suite instead of scrolling by.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  ctest --test-dir "$ROOT/$BUILD_DIR" --output-on-failure -j "$(nproc)"
