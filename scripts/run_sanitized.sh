#!/usr/bin/env bash
# Build and run the whole test suite under a sanitizer configuration.
#
#   scripts/run_sanitized.sh [sanitizers] [build-dir]
#
# Defaults: sanitizers=address,undefined, build-dir=build-asan — except that
# `thread` defaults its build dir to build-tsan so ASan and TSan trees never
# share object files (they are link-incompatible). The normal `build/` tree
# is left untouched so a sanitized run never forces a full rebuild of the
# day-to-day configuration.
#
#   scripts/run_sanitized.sh thread        # ThreadSanitizer over the suite
#
# TSan races are suppressed only via scripts/tsan.supp, which documents each
# entry; a new race must be fixed, not suppressed.
set -euo pipefail

SANITIZERS="${1:-address,undefined}"
if [ "$SANITIZERS" = "thread" ]; then
  DEFAULT_DIR=build-tsan
else
  DEFAULT_DIR=build-asan
fi
BUILD_DIR="${2:-$DEFAULT_DIR}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# ccache, when installed, makes repeat sanitizer builds near-free (CI caches
# ~/.cache/ccache across runs); a machine without it builds exactly as before.
LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER_ARGS=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$ROOT/$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDCFA_SANITIZE="$SANITIZERS" \
  ${LAUNCHER_ARGS[@]+"${LAUNCHER_ARGS[@]}"}
cmake --build "$ROOT/$BUILD_DIR" -j "$(nproc)"

# halt_on_error so a sanitizer report fails the suite instead of scrolling by.
# The traffic soak stretches to 13 ranks here: more rank threads means more
# genuine interleavings for the sanitizers to chew on than the default 9.
# The hang watchdog (tests/watchdog.cpp) gets a doubled deadline: sanitizer
# instrumentation slows everything down, and a false watchdog abort would
# read as a hang that never happened.
export DCFA_TEST_DEADLINE_MS="${DCFA_TEST_DEADLINE_MS:-480000}"
DCFA_SOAK_RANKS="${DCFA_SOAK_RANKS:-13}" \
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1:suppressions=$ROOT/scripts/tsan.supp}" \
  ctest --test-dir "$ROOT/$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Rank-failure recovery is the most teardown-heavy path in the repo (mid-
# flight schedule cancellation, revoked comms, shrink agreement), so drive
# the survivor_soak scenario under the same sanitizer build with DcfaCheck
# at full paranoia — races and leaks in the death path show up here first.
DCFA_CHECK=full \
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1:suppressions=$ROOT/scripts/tsan.supp}" \
  "$ROOT/$BUILD_DIR/bench/traffic_gen" --quick --scenario survivor_soak

# The RMA torture test is the one-sided counterpart: every rank runs
# randomized lock/put/accumulate/flush epochs against every other rank
# concurrently (plus a rank-kill mid-epoch scenario), so the passive-target
# ledgers, doorbell channels and window teardown all get sanitizer + full-
# checker coverage in one go — same explicit treatment as survivor_soak.
DCFA_CHECK=full \
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1:suppressions=$ROOT/scripts/tsan.supp}" \
  "$ROOT/$BUILD_DIR/tests/test_rma_random"
