#!/usr/bin/env python3
"""Compare BENCH_*.json emissions against committed baselines.

The benches run on a deterministic virtual-time simulator, so their numbers
are exact and machine-independent: a committed baseline reproduces bit-for-
bit until someone changes the code. This script diffs a directory of fresh
emissions (bench_util.hpp JsonReport, schema dcfa-bench-v1) against
bench/baselines/ and fails when any metric drifts outside its tolerance
band — the perf-trajectory gate wired into CI (docs/benchmarks.md).

Usage:
  bench_trajectory.py --check  [--emit-dir DIR] [--baseline-dir DIR]
                               [--tolerance FRAC] [--strict]
  bench_trajectory.py --update [--emit-dir DIR] [--baseline-dir DIR]

--check exits with the number of out-of-band metrics (0 = pass).
--update copies the emissions over the baselines (review the diff!).

A baseline file may carry a top-level "tolerance": 0.15 to override the
global band for every metric in that file. Latency/throughput metrics
compare as relative error; a baseline value of exactly 0 requires 0.
"""

import argparse
import json
import os
import shutil
import sys

SCHEMA = "dcfa-bench-v1"
REQUIRED_TOP = ("schema", "bench", "git_rev", "quick", "config", "metrics")
REQUIRED_ROW = ("scenario", "metric", "value", "unit")


def load(path):
    """Parse + schema-check one emission; raises ValueError on bad shape."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    for key in REQUIRED_TOP:
        if key not in doc:
            raise ValueError(f"{path}: missing top-level key '{key}'")
    if doc["schema"] != SCHEMA:
        raise ValueError(f"{path}: schema '{doc['schema']}' != '{SCHEMA}'")
    if not isinstance(doc["metrics"], list):
        raise ValueError(f"{path}: 'metrics' is not a list")
    rows = {}
    for row in doc["metrics"]:
        for key in REQUIRED_ROW:
            if key not in row:
                raise ValueError(f"{path}: metric row missing '{key}': {row}")
        if not isinstance(row["value"], (int, float)) or isinstance(
            row["value"], bool
        ):
            raise ValueError(f"{path}: non-numeric value in {row}")
        key = (row["scenario"], row["metric"])
        if key in rows:
            raise ValueError(f"{path}: duplicate metric {key}")
        rows[key] = row
    return doc, rows


def bench_files(directory):
    try:
        names = sorted(os.listdir(directory))
    except FileNotFoundError:
        return []
    return [
        os.path.join(directory, n)
        for n in names
        if n.startswith("BENCH_") and n.endswith(".json")
    ]


def check(args):
    emitted = bench_files(args.emit_dir)
    baselines = bench_files(args.baseline_dir)
    if not baselines:
        print(f"bench_trajectory: no baselines in {args.baseline_dir}",
              file=sys.stderr)
        return 1
    emitted_by_name = {os.path.basename(p): p for p in emitted}

    violations = 0
    compared = 0
    for base_path in baselines:
        name = os.path.basename(base_path)
        base_doc, base_rows = load(base_path)
        tol = float(base_doc.get("tolerance", args.tolerance))
        emit_path = emitted_by_name.get(name)
        if emit_path is None:
            msg = f"{name}: no fresh emission in {args.emit_dir}"
            if args.strict:
                print(f"FAIL {msg}")
                violations += 1
            else:
                print(f"skip {msg}")
            continue
        _, emit_rows = load(emit_path)
        for key, base_row in sorted(base_rows.items()):
            emit_row = emit_rows.get(key)
            scenario, metric = key
            label = f"{name}:{scenario}:{metric}"
            if emit_row is None:
                if args.strict:
                    print(f"FAIL {label}: metric disappeared")
                    violations += 1
                continue
            if emit_row["unit"] != base_row["unit"]:
                print(
                    f"FAIL {label}: unit changed "
                    f"'{base_row['unit']}' -> '{emit_row['unit']}'"
                )
                violations += 1
                continue
            want, got = float(base_row["value"]), float(emit_row["value"])
            if want == 0.0:
                ok, drift = got == 0.0, float("inf") if got else 0.0
            else:
                drift = (got - want) / abs(want)
                ok = abs(drift) <= tol
            compared += 1
            if not ok:
                print(
                    f"FAIL {label}: {got:g} vs baseline {want:g} "
                    f"({drift:+.1%}, band ±{tol:.0%})"
                )
                violations += 1
        # New metrics (in emission, not baseline) are fine: they start
        # gating on the next --update.
    print(
        f"bench_trajectory: {compared} metrics compared, "
        f"{violations} out of band"
    )
    return violations


def update(args):
    emitted = bench_files(args.emit_dir)
    if not emitted:
        print(f"bench_trajectory: nothing to update from {args.emit_dir}",
              file=sys.stderr)
        return 1
    os.makedirs(args.baseline_dir, exist_ok=True)
    for path in emitted:
        load(path)  # schema-check before blessing
        dest = os.path.join(args.baseline_dir, os.path.basename(path))
        shutil.copyfile(path, dest)
        print(f"baseline <- {dest}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="diff emissions against baselines")
    mode.add_argument("--update", action="store_true",
                      help="bless current emissions as the new baselines")
    ap.add_argument("--emit-dir", default=".",
                    help="directory holding fresh BENCH_*.json")
    ap.add_argument("--baseline-dir", default="bench/baselines",
                    help="directory holding committed baselines")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="relative drift band (default 0.25 = ±25%%)")
    ap.add_argument("--strict", action="store_true",
                    help="missing emissions/metrics are failures too")
    args = ap.parse_args()
    try:
        rc = check(args) if args.check else update(args)
    except ValueError as e:
        print(f"bench_trajectory: {e}", file=sys.stderr)
        return 2
    return min(rc, 125)


if __name__ == "__main__":
    sys.exit(main())
