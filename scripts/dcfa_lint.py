#!/usr/bin/env python3
"""dcfa_lint: repo-specific protocol-hygiene lint for the DCFA-MPI tree.

Four rule families, each encoding an invariant the generic toolchain cannot
see (docs/checking.md has the rationale and the paper references):

  raw-post        ib::Hca::post_send/post_recv may only be called from the
                  transport layers (src/ib, src/verbs, src/dcfa,
                  src/baselines) and the two mpi files that own the data
                  path (engine.cpp, rma.cpp). Everything else must go
                  through mpi::Engine so DcfaCheck sees every packet.
  unchecked-result  resource-creating verbs (reg_mr, create_cq, create_qp,
                  alloc_pd, alloc_buffer) must not have their result
                  discarded; a dropped handle is a leak the sim never
                  reclaims. ([[nodiscard]] backs this at compile time; the
                  lint catches pre-C++17 idioms like `(void)` casts too.)
  wire-struct     structs that cross the simulated wire (PacketHeader,
                  PacketTail, CmdHeader, RespHeader, OffloadMrInfo) must
                  use fixed-width field types and carry a
                  trivially-copyable static_assert; `int`/`size_t` fields
                  change layout between host and co-processor ABIs.
  naked-memcpy    src/mpi/engine.cpp must not memcpy into registered ring
                  or staging MRs directly; mpi/wire.hpp's bounds-checked
                  put/get helpers are the only sanctioned path. (ib/hca.cpp
                  is exempt: it *is* the simulated DMA engine.)
  rma-epoch       work requests with Opcode::RdmaWrite/RdmaRead may only be
                  built in the files whose entry points run the window
                  epoch hooks (engine.cpp, rma.cpp, protocol.cpp). A raw
                  RDMA post anywhere else in src/mpi bypasses
                  chk().rma_remote_access and the passive-target epoch
                  ledgers — DcfaCheck would be blind to the access.

A file can waive one rule with a justified marker comment:

    // dcfa-lint: allow-file(raw-post) -- benchmarks the raw verbs path

The justification after `--` is mandatory; a bare waiver is itself a
finding. Exit status is the number of findings (0 == clean).

If clang-tidy and build/compile_commands.json are present, the configured
.clang-tidy checks run over the same file set; when either is missing the
step is skipped with a note (the CI lint job installs clang-tidy, dev
containers need not).
"""

from __future__ import annotations

import re
import shutil
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Directories scanned for C++ sources.
SCAN_DIRS = ["src", "tests", "bench", "examples"]
CPP_SUFFIXES = {".cpp", ".hpp"}

# raw-post: layers that legitimately speak to the HCA model directly.
RAW_POST_ALLOWED = [
    "src/ib/",
    "src/verbs/",
    "src/dcfa/",
    "src/baselines/",
    "src/mpi/engine.cpp",
    "src/mpi/rma.cpp",
]

# wire-struct: file -> structs that cross the simulated wire in that file.
# (PacketTail is a bare using-alias of std::uint32_t, not a struct.)
WIRE_STRUCTS = {
    "src/mpi/packet.hpp": ["PacketHeader"],
    "src/dcfa/cmd.hpp": ["CmdHeader", "RespHeader", "OffloadMrInfo"],
}
# Field types allowed in wire structs: fixed-width ints and repo typedefs
# that are themselves fixed-width (see their definitions).
WIRE_TYPE_OK = re.compile(
    r"^(?:std::)?u?int(?:8|16|32|64)_t$"
    r"|^(?:mem::)?SimAddr$|^(?:ib::)?MKey$|^(?:ib::)?Qpn$|^(?:ib::)?Lid$"
    r"|^Handle$|^CmdOp$|^CmdStatus$|^PacketType$|^std::byte$"
)

# naked-memcpy: files where raw memcpy is banned outright (wire.hpp covers
# every legitimate copy), plus destination substrings that indicate a
# registered-MR target anywhere in src/mpi.
MEMCPY_BANNED_FILES = ["src/mpi/engine.cpp"]
MEMCPY_MR_DESTS = re.compile(
    r"memcpy\s*\(\s*(?:ep\.)?(?:ring|staging|credit_src|credit_cell|hb_src|hb_cell)\b"
)

UNCHECKED_CALL = re.compile(
    r"^\s*(?:\(void\)\s*)?[A-Za-z_]\w*(?:\.|->)"
    r"(?:reg_mr|create_cq|create_qp|alloc_pd|alloc_buffer)\s*\("
)

RAW_POST_CALL = re.compile(r"(?:\.|->)post_(?:send|recv)\s*\(")

# rma-epoch: the only src/mpi files allowed to build RDMA work requests —
# their entry points are the ones that run the checker's epoch hooks.
RMA_EPOCH_ALLOWED = [
    "src/mpi/engine.cpp",
    "src/mpi/rma.cpp",
    "src/mpi/protocol.cpp",
]
RMA_OPCODE = re.compile(r"Opcode::Rdma(?:Write|Read)\b")
WAIVER = re.compile(r"//\s*dcfa-lint:\s*allow-file\((?P<rule>[\w-]+)\)(?P<just>.*)")

findings: list[str] = []


def finding(path: Path, lineno: int, rule: str, msg: str) -> None:
    findings.append(f"{path.relative_to(ROOT)}:{lineno}: [{rule}] {msg}")


def strip_comments(line: str) -> str:
    # Good enough for lint: drop // comments (waivers are parsed separately)
    # and string literals so quoted code can't trip call regexes.
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//", 1)[0]


def file_waivers(text: str, path: Path) -> set[str]:
    waived: set[str] = set()
    for i, line in enumerate(text.splitlines(), 1):
        m = WAIVER.search(line)
        if not m:
            continue
        just = m.group("just").strip()
        if not just.startswith("--") or len(just.lstrip("- ").strip()) < 8:
            finding(path, i, "waiver",
                    "allow-file waiver without a justification (`-- reason`)")
            continue
        waived.add(m.group("rule"))
    return waived


def check_raw_post(path: Path, rel: str, lines: list[str], waived: set[str]) -> None:
    if any(rel.startswith(a) or rel == a for a in RAW_POST_ALLOWED):
        return
    if "raw-post" in waived:
        return
    for i, line in enumerate(lines, 1):
        if RAW_POST_CALL.search(strip_comments(line)):
            finding(path, i, "raw-post",
                    "direct post_send/post_recv outside the transport layers; "
                    "route through mpi::Engine (or add a justified waiver)")


def check_unchecked_result(path: Path, rel: str, lines: list[str],
                           waived: set[str]) -> None:
    if "unchecked-result" in waived:
        return
    prev = ""
    for i, line in enumerate(lines, 1):
        code = strip_comments(line)
        # A line that merely continues an assignment / argument list from the
        # previous line is not a discarded result.
        continuation = prev.rstrip().endswith(("=", "(", ",", "+", "?", ":",
                                               "return", "&&", "||"))
        if not continuation and UNCHECKED_CALL.match(code):
            finding(path, i, "unchecked-result",
                    "result of a resource-creating verb is discarded; the "
                    "handle leaks and can never be deregistered")
        if code.strip():
            prev = code


def check_wire_structs(path: Path, rel: str, text: str, waived: set[str]) -> None:
    if rel not in WIRE_STRUCTS or "wire-struct" in waived:
        return
    for struct in WIRE_STRUCTS[rel]:
        m = re.search(r"struct\s+" + struct + r"\s*\{", text)
        if not m:
            finding(path, 1, "wire-struct",
                    f"expected wire struct {struct} not found")
            continue
        body_start = m.end()
        lineno = text.count("\n", 0, body_start) + 1
        depth = 1
        pos = body_start
        while pos < len(text) and depth:
            if text[pos] == "{":
                depth += 1
            elif text[pos] == "}":
                depth -= 1
            pos += 1
        body = text[body_start:pos - 1]
        for off, line in enumerate(body.splitlines()):
            code = strip_comments(line).strip()
            fm = re.match(
                r"(?P<type>[A-Za-z_][\w:]*(?:\s*<[^>]*>)?)\s+"
                r"(?P<name>[A-Za-z_]\w*)(?:\s*\[[^\]]*\])?\s*(?:=[^;]*)?;",
                code)
            if not fm:
                continue
            t = fm.group("type")
            if t in ("struct", "enum", "using", "static", "constexpr", "return"):
                continue
            if not WIRE_TYPE_OK.match(t):
                finding(path, lineno + off, "wire-struct",
                        f"{struct}.{fm.group('name')} has non-fixed-width "
                        f"type `{t}`; wire layouts must not depend on the "
                        "host ABI")
        if not re.search(
                r"static_assert\(\s*std::is_trivially_copyable_v<\s*" +
                struct + r"\s*>", text):
            finding(path, lineno, "wire-struct",
                    f"missing static_assert(std::is_trivially_copyable_v<"
                    f"{struct}>) — wire structs are moved with byte copies")


def check_naked_memcpy(path: Path, rel: str, lines: list[str],
                       waived: set[str]) -> None:
    if "naked-memcpy" in waived or rel.startswith("src/ib/"):
        return
    banned = rel in MEMCPY_BANNED_FILES
    for i, line in enumerate(lines, 1):
        code = strip_comments(line)
        if banned and re.search(r"\bmemcpy\s*\(", code):
            finding(path, i, "naked-memcpy",
                    "raw memcpy in the eager-ring engine; use the "
                    "bounds-checked mpi/wire.hpp helpers")
        elif rel.startswith("src/mpi/") and MEMCPY_MR_DESTS.search(code):
            finding(path, i, "naked-memcpy",
                    "memcpy directly into a registered MR buffer; use "
                    "mpi/wire.hpp so DcfaCheck sees the copy bounds")


def check_rma_epoch(path: Path, rel: str, lines: list[str],
                    waived: set[str]) -> None:
    if not rel.startswith("src/mpi/") or rel in RMA_EPOCH_ALLOWED:
        return
    if "rma-epoch" in waived:
        return
    for i, line in enumerate(lines, 1):
        if RMA_OPCODE.search(strip_comments(line)):
            finding(path, i, "rma-epoch",
                    "raw RDMA work request outside engine/rma/protocol; "
                    "this bypasses the window epoch hooks and the checker's "
                    "remote-access ledger — go through Engine::rma_* (or "
                    "add a justified waiver)")


def run_clang_tidy(files: list[Path]) -> None:
    tidy = shutil.which("clang-tidy")
    compdb = ROOT / "build" / "compile_commands.json"
    if not tidy or not compdb.exists():
        missing = "clang-tidy" if not tidy else "build/compile_commands.json"
        print(f"dcfa_lint: note: {missing} not available; "
              "skipping clang-tidy pass (CI runs it)")
        return
    sources = [str(f) for f in files if f.suffix == ".cpp"
               and str(f.relative_to(ROOT)).startswith("src/")]
    r = subprocess.run([tidy, "-p", str(compdb.parent), "--quiet", *sources],
                       cwd=ROOT, capture_output=True, text=True)
    out = (r.stdout or "") + (r.stderr or "")
    for line in out.splitlines():
        if re.search(r"(warning|error):", line) and "clang-diagnostic" not in line:
            findings.append(line.strip())


def main() -> int:
    files: list[Path] = []
    for d in SCAN_DIRS:
        for suf in CPP_SUFFIXES:
            files.extend(sorted((ROOT / d).rglob(f"*{suf}")))

    for path in files:
        text = path.read_text(encoding="utf-8", errors="replace")
        rel = str(path.relative_to(ROOT))
        lines = text.splitlines()
        waived = file_waivers(text, path)
        check_raw_post(path, rel, lines, waived)
        check_unchecked_result(path, rel, lines, waived)
        check_wire_structs(path, rel, text, waived)
        check_naked_memcpy(path, rel, lines, waived)
        check_rma_epoch(path, rel, lines, waived)

    if "--no-tidy" not in sys.argv:
        run_clang_tidy(files)

    for f in findings:
        print(f)
    n = len(findings)
    print(f"dcfa_lint: {n} finding(s) across {len(files)} files")
    return min(n, 125)


if __name__ == "__main__":
    sys.exit(main())
