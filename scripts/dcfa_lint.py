#!/usr/bin/env python3
"""dcfa_lint: repo-specific protocol-hygiene lint for the DCFA-MPI tree.

Six rule families, each encoding an invariant the generic toolchain cannot
see (docs/checking.md has the rationale and the paper references):

  raw-post        ib::Hca::post_send/post_recv may only be called from the
                  transport layers (src/ib, src/verbs, src/dcfa,
                  src/baselines) and the two mpi files that own the data
                  path (engine.cpp, rma.cpp). Everything else must go
                  through mpi::Engine so DcfaCheck sees every packet.
  unchecked-result  resource-creating verbs (reg_mr, create_cq, create_qp,
                  alloc_pd, alloc_buffer) must not have their result
                  discarded; a dropped handle is a leak the sim never
                  reclaims. ([[nodiscard]] backs this at compile time; the
                  lint catches pre-C++17 idioms like `(void)` casts too.)
  wire-struct     structs that cross the simulated wire (PacketHeader,
                  PacketTail, CmdHeader, RespHeader, OffloadMrInfo) must
                  use fixed-width field types and carry a
                  trivially-copyable static_assert; `int`/`size_t` fields
                  change layout between host and co-processor ABIs.
  naked-memcpy    src/mpi/engine.cpp must not memcpy into registered ring
                  or staging MRs directly; mpi/wire.hpp's bounds-checked
                  put/get helpers are the only sanctioned path. (ib/hca.cpp
                  is exempt: it *is* the simulated DMA engine.)
  rma-epoch       work requests with Opcode::RdmaWrite/RdmaRead may only be
                  built in the files whose entry points run the window
                  epoch hooks (engine.cpp, rma.cpp, protocol.cpp). A raw
                  RDMA post anywhere else in src/mpi bypasses
                  chk().rma_remote_access and the passive-target epoch
                  ledgers — DcfaCheck would be blind to the access.
  raw-swapcontext swapcontext() may only appear in src/sim/fiber.cpp
                  (Fiber::resume/yield). A context switch anywhere else
                  escapes the engine's event queue, which breaks both the
                  determinism contract and schedule exploration
                  (DCFA_SIM_SCHED=explore can only permute decisions that
                  flow through Engine::schedule_at).

A file can waive one rule with a justified marker comment:

    // dcfa-lint: allow-file(raw-post) -- benchmarks the raw verbs path

The justification after `--` is mandatory; a bare waiver is itself a
finding. A waiver whose rule would report nothing in that file is *stale*
and is itself a finding — run with --prune to delete stale waivers in
place. Exit status is the number of findings (0 == clean).

If clang-tidy and build/compile_commands.json are present, the configured
.clang-tidy checks run over the same file set; when either is missing the
step is skipped with a note (the CI lint job installs clang-tidy, dev
containers need not).
"""

from __future__ import annotations

import re
import shutil
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Directories scanned for C++ sources.
SCAN_DIRS = ["src", "tests", "bench", "examples"]
CPP_SUFFIXES = {".cpp", ".hpp"}

# raw-post: layers that legitimately speak to the HCA model directly.
RAW_POST_ALLOWED = [
    "src/ib/",
    "src/verbs/",
    "src/dcfa/",
    "src/baselines/",
    "src/mpi/engine.cpp",
    "src/mpi/rma.cpp",
]

# wire-struct: file -> structs that cross the simulated wire in that file.
# (PacketTail is a bare using-alias of std::uint32_t, not a struct.)
WIRE_STRUCTS = {
    "src/mpi/packet.hpp": ["PacketHeader"],
    "src/dcfa/cmd.hpp": ["CmdHeader", "RespHeader", "OffloadMrInfo"],
}
# Field types allowed in wire structs: fixed-width ints and repo typedefs
# that are themselves fixed-width (see their definitions).
WIRE_TYPE_OK = re.compile(
    r"^(?:std::)?u?int(?:8|16|32|64)_t$"
    r"|^(?:mem::)?SimAddr$|^(?:ib::)?MKey$|^(?:ib::)?Qpn$|^(?:ib::)?Lid$"
    r"|^Handle$|^CmdOp$|^CmdStatus$|^PacketType$|^std::byte$"
)

# naked-memcpy: files where raw memcpy is banned outright (wire.hpp covers
# every legitimate copy), plus destination substrings that indicate a
# registered-MR target anywhere in src/mpi.
MEMCPY_BANNED_FILES = ["src/mpi/engine.cpp"]
MEMCPY_MR_DESTS = re.compile(
    r"memcpy\s*\(\s*(?:ep\.)?(?:ring|staging|credit_src|credit_cell|hb_src|hb_cell)\b"
)

UNCHECKED_CALL = re.compile(
    r"^\s*(?:\(void\)\s*)?[A-Za-z_]\w*(?:\.|->)"
    r"(?:reg_mr|create_cq|create_qp|alloc_pd|alloc_buffer)\s*\("
)

RAW_POST_CALL = re.compile(r"(?:\.|->)post_(?:send|recv)\s*\(")

# rma-epoch: the only src/mpi files allowed to build RDMA work requests —
# their entry points are the ones that run the checker's epoch hooks.
RMA_EPOCH_ALLOWED = [
    "src/mpi/engine.cpp",
    "src/mpi/rma.cpp",
    "src/mpi/protocol.cpp",
]
RMA_OPCODE = re.compile(r"Opcode::Rdma(?:Write|Read)\b")

# raw-swapcontext: the one file that owns context switching. Everything the
# simulator runs must block/resume through Engine::schedule_at so that
# schedule exploration (and its replay tokens) covers every interleaving
# decision; a stray swapcontext would be an invisible scheduling choice.
SWAPCONTEXT_ALLOWED = ["src/sim/fiber.cpp"]
SWAPCONTEXT_CALL = re.compile(r"\bswapcontext\s*\(")

WAIVER = re.compile(r"//\s*dcfa-lint:\s*allow-file\((?P<rule>[\w-]+)\)(?P<just>.*)")

findings: list[str] = []
# Potential findings for the file currently being scanned, with waivers
# ignored. main() applies the file's waivers afterwards — which is what lets
# it notice *stale* waivers (a waived rule that reports nothing).
file_findings: list[tuple[Path, int, str, str]] = []


def finding(path: Path, lineno: int, rule: str, msg: str) -> None:
    file_findings.append((path, lineno, rule, msg))


def emit(path: Path, lineno: int, rule: str, msg: str) -> None:
    findings.append(f"{path.relative_to(ROOT)}:{lineno}: [{rule}] {msg}")


def strip_comments(line: str) -> str:
    # Good enough for lint: drop // comments (waivers are parsed separately)
    # and string literals so quoted code can't trip call regexes.
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//", 1)[0]


def file_waivers(text: str, path: Path) -> dict[str, int]:
    """Justified waivers in `text` as {rule: first line number}. Unjustified
    waivers are reported immediately (they are never valid)."""
    waived: dict[str, int] = {}
    for i, line in enumerate(text.splitlines(), 1):
        m = WAIVER.search(line)
        if not m:
            continue
        just = m.group("just").strip()
        if not just.startswith("--") or len(just.lstrip("- ").strip()) < 8:
            emit(path, i, "waiver",
                 "allow-file waiver without a justification (`-- reason`)")
            continue
        waived.setdefault(m.group("rule"), i)
    return waived


def prune_stale_waivers(path: Path, linenos: list[int]) -> None:
    """Delete the waiver comment at each 1-based line number; drop the whole
    line when nothing but the waiver (and whitespace) lives on it."""
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    doomed = set(linenos)
    out: list[str] = []
    for i, line in enumerate(lines, 1):
        if i not in doomed:
            out.append(line)
            continue
        kept = WAIVER.sub("", line)
        if kept.strip():
            out.append(kept.rstrip() + ("\n" if line.endswith("\n") else ""))
    path.write_text("".join(out), encoding="utf-8")


def check_raw_post(path: Path, rel: str, lines: list[str]) -> None:
    if any(rel.startswith(a) or rel == a for a in RAW_POST_ALLOWED):
        return
    for i, line in enumerate(lines, 1):
        if RAW_POST_CALL.search(strip_comments(line)):
            finding(path, i, "raw-post",
                    "direct post_send/post_recv outside the transport layers; "
                    "route through mpi::Engine (or add a justified waiver)")


def check_unchecked_result(path: Path, rel: str, lines: list[str]) -> None:
    prev = ""
    for i, line in enumerate(lines, 1):
        code = strip_comments(line)
        # A line that merely continues an assignment / argument list from the
        # previous line is not a discarded result.
        continuation = prev.rstrip().endswith(("=", "(", ",", "+", "?", ":",
                                               "return", "&&", "||"))
        if not continuation and UNCHECKED_CALL.match(code):
            finding(path, i, "unchecked-result",
                    "result of a resource-creating verb is discarded; the "
                    "handle leaks and can never be deregistered")
        if code.strip():
            prev = code


def check_wire_structs(path: Path, rel: str, text: str) -> None:
    if rel not in WIRE_STRUCTS:
        return
    for struct in WIRE_STRUCTS[rel]:
        m = re.search(r"struct\s+" + struct + r"\s*\{", text)
        if not m:
            finding(path, 1, "wire-struct",
                    f"expected wire struct {struct} not found")
            continue
        body_start = m.end()
        lineno = text.count("\n", 0, body_start) + 1
        depth = 1
        pos = body_start
        while pos < len(text) and depth:
            if text[pos] == "{":
                depth += 1
            elif text[pos] == "}":
                depth -= 1
            pos += 1
        body = text[body_start:pos - 1]
        for off, line in enumerate(body.splitlines()):
            code = strip_comments(line).strip()
            fm = re.match(
                r"(?P<type>[A-Za-z_][\w:]*(?:\s*<[^>]*>)?)\s+"
                r"(?P<name>[A-Za-z_]\w*)(?:\s*\[[^\]]*\])?\s*(?:=[^;]*)?;",
                code)
            if not fm:
                continue
            t = fm.group("type")
            if t in ("struct", "enum", "using", "static", "constexpr", "return"):
                continue
            if not WIRE_TYPE_OK.match(t):
                finding(path, lineno + off, "wire-struct",
                        f"{struct}.{fm.group('name')} has non-fixed-width "
                        f"type `{t}`; wire layouts must not depend on the "
                        "host ABI")
        if not re.search(
                r"static_assert\(\s*std::is_trivially_copyable_v<\s*" +
                struct + r"\s*>", text):
            finding(path, lineno, "wire-struct",
                    f"missing static_assert(std::is_trivially_copyable_v<"
                    f"{struct}>) — wire structs are moved with byte copies")


def check_naked_memcpy(path: Path, rel: str, lines: list[str]) -> None:
    if rel.startswith("src/ib/"):
        return
    banned = rel in MEMCPY_BANNED_FILES
    for i, line in enumerate(lines, 1):
        code = strip_comments(line)
        if banned and re.search(r"\bmemcpy\s*\(", code):
            finding(path, i, "naked-memcpy",
                    "raw memcpy in the eager-ring engine; use the "
                    "bounds-checked mpi/wire.hpp helpers")
        elif rel.startswith("src/mpi/") and MEMCPY_MR_DESTS.search(code):
            finding(path, i, "naked-memcpy",
                    "memcpy directly into a registered MR buffer; use "
                    "mpi/wire.hpp so DcfaCheck sees the copy bounds")


def check_rma_epoch(path: Path, rel: str, lines: list[str]) -> None:
    if not rel.startswith("src/mpi/") or rel in RMA_EPOCH_ALLOWED:
        return
    for i, line in enumerate(lines, 1):
        if RMA_OPCODE.search(strip_comments(line)):
            finding(path, i, "rma-epoch",
                    "raw RDMA work request outside engine/rma/protocol; "
                    "this bypasses the window epoch hooks and the checker's "
                    "remote-access ledger — go through Engine::rma_* (or "
                    "add a justified waiver)")


def check_swapcontext(path: Path, rel: str, lines: list[str]) -> None:
    if rel in SWAPCONTEXT_ALLOWED:
        return
    for i, line in enumerate(lines, 1):
        if SWAPCONTEXT_CALL.search(strip_comments(line)):
            finding(path, i, "raw-swapcontext",
                    "swapcontext outside src/sim/fiber.cpp: a context switch "
                    "that does not flow through Engine::schedule_at is an "
                    "interleaving decision the explore scheduler can neither "
                    "permute nor replay")


def run_clang_tidy(files: list[Path]) -> None:
    tidy = shutil.which("clang-tidy")
    compdb = ROOT / "build" / "compile_commands.json"
    if not tidy or not compdb.exists():
        missing = "clang-tidy" if not tidy else "build/compile_commands.json"
        print(f"dcfa_lint: note: {missing} not available; "
              "skipping clang-tidy pass (CI runs it)")
        return
    sources = [str(f) for f in files if f.suffix == ".cpp"
               and str(f.relative_to(ROOT)).startswith("src/")]
    r = subprocess.run([tidy, "-p", str(compdb.parent), "--quiet", *sources],
                       cwd=ROOT, capture_output=True, text=True)
    out = (r.stdout or "") + (r.stderr or "")
    for line in out.splitlines():
        if re.search(r"(warning|error):", line) and "clang-diagnostic" not in line:
            findings.append(line.strip())


def main() -> int:
    prune = "--prune" in sys.argv
    files: list[Path] = []
    for d in SCAN_DIRS:
        for suf in CPP_SUFFIXES:
            files.extend(sorted((ROOT / d).rglob(f"*{suf}")))

    for path in files:
        text = path.read_text(encoding="utf-8", errors="replace")
        rel = str(path.relative_to(ROOT))
        lines = text.splitlines()
        waivers = file_waivers(text, path)
        file_findings.clear()
        check_raw_post(path, rel, lines)
        check_unchecked_result(path, rel, lines)
        check_wire_structs(path, rel, text)
        check_naked_memcpy(path, rel, lines)
        check_rma_epoch(path, rel, lines)
        check_swapcontext(path, rel, lines)

        rules_hit = {rule for (_, _, rule, _) in file_findings}
        for (p, ln, rule, msg) in file_findings:
            if rule not in waivers:
                emit(p, ln, rule, msg)
        stale = sorted((ln, rule) for rule, ln in waivers.items()
                       if rule not in rules_hit)
        if stale and prune:
            prune_stale_waivers(path, [ln for ln, _ in stale])
            for ln, rule in stale:
                print(f"dcfa_lint: pruned stale allow-file({rule}) "
                      f"waiver at {rel}:{ln}")
        else:
            for ln, rule in stale:
                emit(path, ln, "stale-waiver",
                     f"allow-file({rule}) waiver but the rule reports "
                     "nothing in this file; remove it (or run --prune)")

    if "--no-tidy" not in sys.argv:
        run_clang_tidy(files)

    for f in findings:
        print(f)
    n = len(findings)
    print(f"dcfa_lint: {n} finding(s) across {len(files)} files")
    return min(n, 125)


if __name__ == "__main__":
    sys.exit(main())
