#!/usr/bin/env python3
"""Seed-sweep driver for DcfaRace schedule exploration.

Runs the protocol test suites under DCFA_SIM_SCHED=explore with DCFA_CHECK=full
across a range of seeds, one ctest invocation per (suite, seed). Each seed is
one reproducible interleaving of the logically-concurrent event set (see
docs/simulator.md); a violation report carries its replay token
("[schedule=x1:<hex>]"), which this driver extracts and prints so the failure
can be replayed exactly with:

    DCFA_SIM_SCHEDULE=x1:<hex> ctest -R <test> ...

Exit status: 0 if every suite passed on every seed, 1 if any violation or
test failure was seen, 2 on usage/setup errors.
"""

import argparse
import os
import re
import subprocess
import sys
import time

# Suites: ctest -R regexes over the tiers most exposed to reordering.
# Keyed names let CI and developers pick subsets (--suites rma,nbc).
SUITES = {
    "p2p": r"^(test_p2p|test_protocols|test_wildcard_semantics|test_probe_ssend)$",
    "nbc": r"^(test_collectives|test_nbc_random|test_collective_storm)$",
    "rma": r"^(test_window|test_rma_random|test_persistent)$",
    "traffic": r"^(test_traffic_gen)$",
}

TOKEN_RE = re.compile(r"\[schedule=(x1:[0-9a-f]+)\]")


def run_one(build_dir, suite, regex, seed, timeout):
    env = dict(os.environ)
    env["DCFA_SIM_SCHED"] = "explore"
    env["DCFA_SIM_SEED"] = str(seed)
    env["DCFA_CHECK"] = "full"
    # A replay token in the environment would override the sweep seed.
    env.pop("DCFA_SIM_SCHEDULE", None)
    cmd = ["ctest", "--test-dir", build_dir, "-R", regex,
           "--output-on-failure"]
    try:
        proc = subprocess.run(cmd, env=env, capture_output=True, text=True,
                              timeout=timeout)
    except subprocess.TimeoutExpired as e:
        out = (e.stdout or "") + (e.stderr or "")
        return False, out + "\n[race_explore] TIMEOUT after %ds" % timeout
    return proc.returncode == 0, proc.stdout + proc.stderr


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory containing CTestTestfile")
    ap.add_argument("--seeds", type=int, default=16,
                    help="number of seeds to sweep (default 16)")
    ap.add_argument("--start-seed", type=int, default=1,
                    help="first seed (default 1; seed 0 is the Fifo-like "
                         "baseline many tests already run)")
    ap.add_argument("--suites", default=",".join(SUITES),
                    help="comma-separated subset of: " + ", ".join(SUITES))
    ap.add_argument("--budget", type=float, default=0.0,
                    help="wall-clock budget in seconds; the sweep stops "
                         "cleanly (still exit 0) once exceeded")
    ap.add_argument("--timeout", type=float, default=600.0,
                    help="per-ctest-invocation timeout in seconds")
    args = ap.parse_args()

    suites = []
    for name in args.suites.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in SUITES:
            print("race_explore: unknown suite '%s' (know: %s)"
                  % (name, ", ".join(SUITES)), file=sys.stderr)
            return 2
        suites.append(name)
    if not suites:
        print("race_explore: no suites selected", file=sys.stderr)
        return 2
    if not os.path.isdir(args.build_dir):
        print("race_explore: build dir '%s' not found" % args.build_dir,
              file=sys.stderr)
        return 2

    started = time.monotonic()
    failures = []
    ran = 0
    stopped_early = False
    for seed in range(args.start_seed, args.start_seed + args.seeds):
        for suite in suites:
            if args.budget > 0 and time.monotonic() - started > args.budget:
                stopped_early = True
                break
            ok, output = run_one(args.build_dir, suite, SUITES[suite], seed,
                                 args.timeout)
            ran += 1
            tokens = sorted(set(TOKEN_RE.findall(output)))
            status = "ok" if ok else "FAIL"
            print("[race_explore] suite=%-7s seed=%-4d %s" %
                  (suite, seed, status), flush=True)
            if not ok:
                failures.append((suite, seed, tokens, output))
                for tok in tokens:
                    print("[race_explore]   replay: DCFA_SIM_SCHEDULE=%s "
                          "DCFA_CHECK=full ctest --test-dir %s -R '%s'"
                          % (tok, args.build_dir, SUITES[suite]), flush=True)
        if stopped_early:
            break

    elapsed = time.monotonic() - started
    print("[race_explore] %d run(s), %d failure(s), %.1fs%s"
          % (ran, len(failures), elapsed,
             " (budget reached)" if stopped_early else ""))
    if failures:
        print("\n=== first failure output ===\n")
        print(failures[0][3][-8000:])
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
