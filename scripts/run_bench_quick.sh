#!/usr/bin/env bash
# Run every bench in --quick mode and collect their BENCH_*.json emissions.
#
#   scripts/run_bench_quick.sh [build-dir] [out-dir]
#
# The simulator is deterministic, so the emitted numbers are exact: this is
# both the CI perf-trajectory tier (compared by bench_trajectory.py --check)
# and the way baselines are regenerated (--update). See docs/benchmarks.md.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_out}"

BENCHES=(
  fig05_ib_directions fig07_offload_rtt fig08_offload_bw
  fig09_vs_intelphi_bw fig10_commonly fig11_stencil_time
  fig12_stencil_speedup fig_platform
  abl_offload_threshold abl_mr_cache abl_eager_threshold abl_collectives
  abl_future_offload abl_intranode abl_rdma_vs_sendrecv abl_rma_halo
  abl_rma_passive abl_persistent_halo
  abl_nbc_overlap traffic_gen
)

mkdir -p "$OUT_DIR"
export DCFA_BENCH_DIR="$(cd "$OUT_DIR" && pwd)"
export DCFA_GIT_REV="${DCFA_GIT_REV:-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)}"

for b in "${BENCHES[@]}"; do
  echo "== $b --quick"
  "$BUILD_DIR/bench/$b" --quick > "$DCFA_BENCH_DIR/$b.log"
done

echo "emitted $(ls "$DCFA_BENCH_DIR"/BENCH_*.json | wc -l) BENCH_*.json into $OUT_DIR"
