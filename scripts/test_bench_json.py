#!/usr/bin/env python3
"""Golden test for the bench JSON emission + trajectory gate.

Run under ctest as:  test_bench_json.py <traffic_gen binary> <repo root>

1. Runs `traffic_gen --quick` with DCFA_BENCH_DIR pointing at a tmpdir and
   checks the emitted BENCH_traffic_gen.json against the dcfa-bench-v1
   schema (required keys, numeric values, expected units, non-empty).
2. Re-runs bench_trajectory.py --check with the emission doubling as its
   own baseline: must pass with zero violations (determinism: the baseline
   reproduces exactly).
3. Perturbs one metric by +20% in a copied baseline and re-checks with a
   ±5% band: must now fail — the regression gate actually gates.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile


def run(cmd, **kw):
    return subprocess.run(cmd, capture_output=True, text=True, **kw)


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <traffic_gen> <repo_root>")
    traffic_gen, repo = sys.argv[1], sys.argv[2]
    trajectory = os.path.join(repo, "scripts", "bench_trajectory.py")

    with tempfile.TemporaryDirectory() as tmp:
        emit = os.path.join(tmp, "emit")
        os.makedirs(emit)
        env = dict(os.environ, DCFA_BENCH_DIR=emit)
        r = run([traffic_gen, "--quick"], env=env)
        if r.returncode != 0:
            fail(f"traffic_gen --quick exited {r.returncode}:\n{r.stdout}"
                 f"\n{r.stderr}")

        path = os.path.join(emit, "BENCH_traffic_gen.json")
        if not os.path.exists(path):
            fail(f"no {path} emitted")
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)

        for key in ("schema", "bench", "git_rev", "quick", "config",
                    "metrics"):
            if key not in doc:
                fail(f"missing top-level key '{key}'")
        if doc["schema"] != "dcfa-bench-v1":
            fail(f"bad schema '{doc['schema']}'")
        if doc["bench"] != "traffic_gen":
            fail(f"bad bench name '{doc['bench']}'")
        if doc["quick"] is not True:
            fail("quick flag not recorded")
        if not doc["metrics"]:
            fail("metrics list is empty")
        units = set()
        for row in doc["metrics"]:
            for key in ("scenario", "metric", "value", "unit"):
                if key not in row:
                    fail(f"metric row missing '{key}': {row}")
            if not isinstance(row["value"], (int, float)):
                fail(f"non-numeric value: {row}")
            units.add(row["unit"])
        for want in ("msg/s", "GB/s", "us", "ms"):
            if want not in units:
                fail(f"expected a metric with unit '{want}'")
        scenarios = {row["scenario"] for row in doc["metrics"]}
        for want in ("steady_p2p", "bursty_a2a", "mixed_comms",
                     "straggler_allreduce", "faulty_soak"):
            if want not in scenarios:
                fail(f"scenario '{want}' missing from metrics")

        # Self-baseline must pass: determinism makes the band trivial.
        base = os.path.join(tmp, "base")
        shutil.copytree(emit, base)
        r = run([sys.executable, trajectory, "--check", "--strict",
                 "--emit-dir", emit, "--baseline-dir", base,
                 "--tolerance", "0.0001"])
        if r.returncode != 0:
            fail(f"in-band check failed (rc={r.returncode}):\n{r.stdout}"
                 f"\n{r.stderr}")

        # A +20% regression on one metric must trip a ±5% band.
        with open(path, encoding="utf-8") as f:
            perturbed = json.load(f)
        bumped = None
        for row in perturbed["metrics"]:
            if row["value"] > 0:
                row["value"] *= 1.20
                bumped = row
                break
        if bumped is None:
            fail("no positive metric to perturb")
        with open(os.path.join(base, "BENCH_traffic_gen.json"), "w",
                  encoding="utf-8") as f:
            json.dump(perturbed, f)
        r = run([sys.executable, trajectory, "--check",
                 "--emit-dir", emit, "--baseline-dir", base,
                 "--tolerance", "0.05"])
        if r.returncode == 0:
            fail("synthetic 20% regression was not flagged:\n" + r.stdout)
        if "FAIL" not in r.stdout:
            fail("regression exit code set but no FAIL line:\n" + r.stdout)

        # Malformed JSON must be a schema error (exit 2), not a pass.
        with open(os.path.join(base, "BENCH_traffic_gen.json"), "w",
                  encoding="utf-8") as f:
            f.write('{"schema": "dcfa-bench-v1", "bench": "traffic_gen"}')
        r = run([sys.executable, trajectory, "--check",
                 "--emit-dir", emit, "--baseline-dir", base])
        if r.returncode != 2:
            fail(f"schema violation not detected (rc={r.returncode})")

    print("PASS: bench json schema + trajectory gate")


if __name__ == "__main__":
    main()
