file(REMOVE_RECURSE
  "CMakeFiles/fig_platform.dir/fig_platform.cpp.o"
  "CMakeFiles/fig_platform.dir/fig_platform.cpp.o.d"
  "fig_platform"
  "fig_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
