# Empty dependencies file for fig_platform.
# This may be replaced when dependencies are built.
