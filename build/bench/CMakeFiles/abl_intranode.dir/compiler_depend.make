# Empty compiler generated dependencies file for abl_intranode.
# This may be replaced when dependencies are built.
