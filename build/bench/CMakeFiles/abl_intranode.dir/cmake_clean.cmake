file(REMOVE_RECURSE
  "CMakeFiles/abl_intranode.dir/abl_intranode.cpp.o"
  "CMakeFiles/abl_intranode.dir/abl_intranode.cpp.o.d"
  "abl_intranode"
  "abl_intranode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_intranode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
