file(REMOVE_RECURSE
  "CMakeFiles/abl_future_offload.dir/abl_future_offload.cpp.o"
  "CMakeFiles/abl_future_offload.dir/abl_future_offload.cpp.o.d"
  "abl_future_offload"
  "abl_future_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_future_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
