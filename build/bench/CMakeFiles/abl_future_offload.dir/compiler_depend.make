# Empty compiler generated dependencies file for abl_future_offload.
# This may be replaced when dependencies are built.
