# Empty compiler generated dependencies file for abl_mr_cache.
# This may be replaced when dependencies are built.
