file(REMOVE_RECURSE
  "CMakeFiles/abl_mr_cache.dir/abl_mr_cache.cpp.o"
  "CMakeFiles/abl_mr_cache.dir/abl_mr_cache.cpp.o.d"
  "abl_mr_cache"
  "abl_mr_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mr_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
