# Empty dependencies file for fig05_ib_directions.
# This may be replaced when dependencies are built.
