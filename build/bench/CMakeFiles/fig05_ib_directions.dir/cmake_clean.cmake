file(REMOVE_RECURSE
  "CMakeFiles/fig05_ib_directions.dir/fig05_ib_directions.cpp.o"
  "CMakeFiles/fig05_ib_directions.dir/fig05_ib_directions.cpp.o.d"
  "fig05_ib_directions"
  "fig05_ib_directions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ib_directions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
