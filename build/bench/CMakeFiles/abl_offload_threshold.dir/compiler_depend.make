# Empty compiler generated dependencies file for abl_offload_threshold.
# This may be replaced when dependencies are built.
