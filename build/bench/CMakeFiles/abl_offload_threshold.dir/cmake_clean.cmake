file(REMOVE_RECURSE
  "CMakeFiles/abl_offload_threshold.dir/abl_offload_threshold.cpp.o"
  "CMakeFiles/abl_offload_threshold.dir/abl_offload_threshold.cpp.o.d"
  "abl_offload_threshold"
  "abl_offload_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_offload_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
