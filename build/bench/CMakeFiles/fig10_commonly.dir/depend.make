# Empty dependencies file for fig10_commonly.
# This may be replaced when dependencies are built.
