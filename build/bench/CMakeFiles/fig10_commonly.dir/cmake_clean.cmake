file(REMOVE_RECURSE
  "CMakeFiles/fig10_commonly.dir/fig10_commonly.cpp.o"
  "CMakeFiles/fig10_commonly.dir/fig10_commonly.cpp.o.d"
  "fig10_commonly"
  "fig10_commonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_commonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
