file(REMOVE_RECURSE
  "CMakeFiles/fig12_stencil_speedup.dir/fig12_stencil_speedup.cpp.o"
  "CMakeFiles/fig12_stencil_speedup.dir/fig12_stencil_speedup.cpp.o.d"
  "fig12_stencil_speedup"
  "fig12_stencil_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_stencil_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
