file(REMOVE_RECURSE
  "CMakeFiles/fig07_offload_rtt.dir/fig07_offload_rtt.cpp.o"
  "CMakeFiles/fig07_offload_rtt.dir/fig07_offload_rtt.cpp.o.d"
  "fig07_offload_rtt"
  "fig07_offload_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_offload_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
