# Empty dependencies file for fig07_offload_rtt.
# This may be replaced when dependencies are built.
