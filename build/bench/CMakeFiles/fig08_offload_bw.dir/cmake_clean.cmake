file(REMOVE_RECURSE
  "CMakeFiles/fig08_offload_bw.dir/fig08_offload_bw.cpp.o"
  "CMakeFiles/fig08_offload_bw.dir/fig08_offload_bw.cpp.o.d"
  "fig08_offload_bw"
  "fig08_offload_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_offload_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
