# Empty compiler generated dependencies file for fig08_offload_bw.
# This may be replaced when dependencies are built.
