file(REMOVE_RECURSE
  "CMakeFiles/fig09_vs_intelphi_bw.dir/fig09_vs_intelphi_bw.cpp.o"
  "CMakeFiles/fig09_vs_intelphi_bw.dir/fig09_vs_intelphi_bw.cpp.o.d"
  "fig09_vs_intelphi_bw"
  "fig09_vs_intelphi_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_vs_intelphi_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
