# Empty dependencies file for fig09_vs_intelphi_bw.
# This may be replaced when dependencies are built.
