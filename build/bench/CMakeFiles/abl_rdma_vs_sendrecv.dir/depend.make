# Empty dependencies file for abl_rdma_vs_sendrecv.
# This may be replaced when dependencies are built.
