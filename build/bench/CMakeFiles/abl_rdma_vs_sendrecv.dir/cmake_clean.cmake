file(REMOVE_RECURSE
  "CMakeFiles/abl_rdma_vs_sendrecv.dir/abl_rdma_vs_sendrecv.cpp.o"
  "CMakeFiles/abl_rdma_vs_sendrecv.dir/abl_rdma_vs_sendrecv.cpp.o.d"
  "abl_rdma_vs_sendrecv"
  "abl_rdma_vs_sendrecv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rdma_vs_sendrecv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
