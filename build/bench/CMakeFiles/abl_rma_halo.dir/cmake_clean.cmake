file(REMOVE_RECURSE
  "CMakeFiles/abl_rma_halo.dir/abl_rma_halo.cpp.o"
  "CMakeFiles/abl_rma_halo.dir/abl_rma_halo.cpp.o.d"
  "abl_rma_halo"
  "abl_rma_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rma_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
