# Empty compiler generated dependencies file for abl_rma_halo.
# This may be replaced when dependencies are built.
