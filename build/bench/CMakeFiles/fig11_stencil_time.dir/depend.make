# Empty dependencies file for fig11_stencil_time.
# This may be replaced when dependencies are built.
