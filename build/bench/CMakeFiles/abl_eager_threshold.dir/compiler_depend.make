# Empty compiler generated dependencies file for abl_eager_threshold.
# This may be replaced when dependencies are built.
