file(REMOVE_RECURSE
  "CMakeFiles/test_collective_storm.dir/test_collective_storm.cpp.o"
  "CMakeFiles/test_collective_storm.dir/test_collective_storm.cpp.o.d"
  "test_collective_storm"
  "test_collective_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collective_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
