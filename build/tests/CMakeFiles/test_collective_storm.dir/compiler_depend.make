# Empty compiler generated dependencies file for test_collective_storm.
# This may be replaced when dependencies are built.
