file(REMOVE_RECURSE
  "CMakeFiles/test_capi_more.dir/test_capi_more.cpp.o"
  "CMakeFiles/test_capi_more.dir/test_capi_more.cpp.o.d"
  "test_capi_more"
  "test_capi_more.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capi_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
