# Empty compiler generated dependencies file for test_capi_more.
# This may be replaced when dependencies are built.
