file(REMOVE_RECURSE
  "CMakeFiles/test_intranode.dir/test_intranode.cpp.o"
  "CMakeFiles/test_intranode.dir/test_intranode.cpp.o.d"
  "test_intranode"
  "test_intranode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intranode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
