# Empty compiler generated dependencies file for test_intranode.
# This may be replaced when dependencies are built.
