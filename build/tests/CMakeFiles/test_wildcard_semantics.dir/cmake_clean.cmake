file(REMOVE_RECURSE
  "CMakeFiles/test_wildcard_semantics.dir/test_wildcard_semantics.cpp.o"
  "CMakeFiles/test_wildcard_semantics.dir/test_wildcard_semantics.cpp.o.d"
  "test_wildcard_semantics"
  "test_wildcard_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wildcard_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
