# Empty dependencies file for test_wildcard_semantics.
# This may be replaced when dependencies are built.
