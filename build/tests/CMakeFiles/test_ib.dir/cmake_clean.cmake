file(REMOVE_RECURSE
  "CMakeFiles/test_ib.dir/test_ib.cpp.o"
  "CMakeFiles/test_ib.dir/test_ib.cpp.o.d"
  "test_ib"
  "test_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
