file(REMOVE_RECURSE
  "CMakeFiles/test_scif.dir/test_scif.cpp.o"
  "CMakeFiles/test_scif.dir/test_scif.cpp.o.d"
  "test_scif"
  "test_scif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
