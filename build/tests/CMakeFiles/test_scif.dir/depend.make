# Empty dependencies file for test_scif.
# This may be replaced when dependencies are built.
