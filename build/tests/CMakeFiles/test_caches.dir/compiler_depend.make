# Empty compiler generated dependencies file for test_caches.
# This may be replaced when dependencies are built.
