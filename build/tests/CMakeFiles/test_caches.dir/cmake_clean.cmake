file(REMOVE_RECURSE
  "CMakeFiles/test_caches.dir/test_caches.cpp.o"
  "CMakeFiles/test_caches.dir/test_caches.cpp.o.d"
  "test_caches"
  "test_caches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
