file(REMOVE_RECURSE
  "CMakeFiles/test_dcfa.dir/test_dcfa.cpp.o"
  "CMakeFiles/test_dcfa.dir/test_dcfa.cpp.o.d"
  "test_dcfa"
  "test_dcfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
