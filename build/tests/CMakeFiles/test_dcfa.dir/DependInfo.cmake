
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dcfa.cpp" "tests/CMakeFiles/test_dcfa.dir/test_dcfa.cpp.o" "gcc" "tests/CMakeFiles/test_dcfa.dir/test_dcfa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/dcfa_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/capi/CMakeFiles/dcfa_capi.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/dcfa_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/dcfa_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/dcfa_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/dcfa/CMakeFiles/dcfa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/dcfa_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/dcfa_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/scif/CMakeFiles/dcfa_scif.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/dcfa_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dcfa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcfa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
