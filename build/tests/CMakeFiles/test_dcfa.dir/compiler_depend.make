# Empty compiler generated dependencies file for test_dcfa.
# This may be replaced when dependencies are built.
