# Empty compiler generated dependencies file for test_engine_units.
# This may be replaced when dependencies are built.
