file(REMOVE_RECURSE
  "CMakeFiles/test_engine_units.dir/test_engine_units.cpp.o"
  "CMakeFiles/test_engine_units.dir/test_engine_units.cpp.o.d"
  "test_engine_units"
  "test_engine_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
