# Empty compiler generated dependencies file for test_probe_ssend.
# This may be replaced when dependencies are built.
