file(REMOVE_RECURSE
  "CMakeFiles/test_probe_ssend.dir/test_probe_ssend.cpp.o"
  "CMakeFiles/test_probe_ssend.dir/test_probe_ssend.cpp.o.d"
  "test_probe_ssend"
  "test_probe_ssend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probe_ssend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
