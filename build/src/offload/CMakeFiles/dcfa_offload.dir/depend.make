# Empty dependencies file for dcfa_offload.
# This may be replaced when dependencies are built.
