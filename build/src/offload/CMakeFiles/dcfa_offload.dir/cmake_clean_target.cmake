file(REMOVE_RECURSE
  "libdcfa_offload.a"
)
