file(REMOVE_RECURSE
  "CMakeFiles/dcfa_offload.dir/offload.cpp.o"
  "CMakeFiles/dcfa_offload.dir/offload.cpp.o.d"
  "libdcfa_offload.a"
  "libdcfa_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcfa_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
