# Empty compiler generated dependencies file for dcfa_mpi.
# This may be replaced when dependencies are built.
