file(REMOVE_RECURSE
  "CMakeFiles/dcfa_mpi.dir/collectives.cpp.o"
  "CMakeFiles/dcfa_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/dcfa_mpi.dir/communicator.cpp.o"
  "CMakeFiles/dcfa_mpi.dir/communicator.cpp.o.d"
  "CMakeFiles/dcfa_mpi.dir/datatype.cpp.o"
  "CMakeFiles/dcfa_mpi.dir/datatype.cpp.o.d"
  "CMakeFiles/dcfa_mpi.dir/engine.cpp.o"
  "CMakeFiles/dcfa_mpi.dir/engine.cpp.o.d"
  "CMakeFiles/dcfa_mpi.dir/mr_cache.cpp.o"
  "CMakeFiles/dcfa_mpi.dir/mr_cache.cpp.o.d"
  "CMakeFiles/dcfa_mpi.dir/offload_cache.cpp.o"
  "CMakeFiles/dcfa_mpi.dir/offload_cache.cpp.o.d"
  "CMakeFiles/dcfa_mpi.dir/protocol.cpp.o"
  "CMakeFiles/dcfa_mpi.dir/protocol.cpp.o.d"
  "CMakeFiles/dcfa_mpi.dir/rma.cpp.o"
  "CMakeFiles/dcfa_mpi.dir/rma.cpp.o.d"
  "CMakeFiles/dcfa_mpi.dir/runtime.cpp.o"
  "CMakeFiles/dcfa_mpi.dir/runtime.cpp.o.d"
  "CMakeFiles/dcfa_mpi.dir/window.cpp.o"
  "CMakeFiles/dcfa_mpi.dir/window.cpp.o.d"
  "libdcfa_mpi.a"
  "libdcfa_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcfa_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
