file(REMOVE_RECURSE
  "libdcfa_mpi.a"
)
