
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/collectives.cpp" "src/mpi/CMakeFiles/dcfa_mpi.dir/collectives.cpp.o" "gcc" "src/mpi/CMakeFiles/dcfa_mpi.dir/collectives.cpp.o.d"
  "/root/repo/src/mpi/communicator.cpp" "src/mpi/CMakeFiles/dcfa_mpi.dir/communicator.cpp.o" "gcc" "src/mpi/CMakeFiles/dcfa_mpi.dir/communicator.cpp.o.d"
  "/root/repo/src/mpi/datatype.cpp" "src/mpi/CMakeFiles/dcfa_mpi.dir/datatype.cpp.o" "gcc" "src/mpi/CMakeFiles/dcfa_mpi.dir/datatype.cpp.o.d"
  "/root/repo/src/mpi/engine.cpp" "src/mpi/CMakeFiles/dcfa_mpi.dir/engine.cpp.o" "gcc" "src/mpi/CMakeFiles/dcfa_mpi.dir/engine.cpp.o.d"
  "/root/repo/src/mpi/mr_cache.cpp" "src/mpi/CMakeFiles/dcfa_mpi.dir/mr_cache.cpp.o" "gcc" "src/mpi/CMakeFiles/dcfa_mpi.dir/mr_cache.cpp.o.d"
  "/root/repo/src/mpi/offload_cache.cpp" "src/mpi/CMakeFiles/dcfa_mpi.dir/offload_cache.cpp.o" "gcc" "src/mpi/CMakeFiles/dcfa_mpi.dir/offload_cache.cpp.o.d"
  "/root/repo/src/mpi/protocol.cpp" "src/mpi/CMakeFiles/dcfa_mpi.dir/protocol.cpp.o" "gcc" "src/mpi/CMakeFiles/dcfa_mpi.dir/protocol.cpp.o.d"
  "/root/repo/src/mpi/rma.cpp" "src/mpi/CMakeFiles/dcfa_mpi.dir/rma.cpp.o" "gcc" "src/mpi/CMakeFiles/dcfa_mpi.dir/rma.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "src/mpi/CMakeFiles/dcfa_mpi.dir/runtime.cpp.o" "gcc" "src/mpi/CMakeFiles/dcfa_mpi.dir/runtime.cpp.o.d"
  "/root/repo/src/mpi/window.cpp" "src/mpi/CMakeFiles/dcfa_mpi.dir/window.cpp.o" "gcc" "src/mpi/CMakeFiles/dcfa_mpi.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dcfa/CMakeFiles/dcfa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/dcfa_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/dcfa_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/dcfa_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/scif/CMakeFiles/dcfa_scif.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/dcfa_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dcfa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcfa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
