# Empty compiler generated dependencies file for dcfa_pcie.
# This may be replaced when dependencies are built.
