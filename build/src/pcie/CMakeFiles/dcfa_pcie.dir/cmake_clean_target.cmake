file(REMOVE_RECURSE
  "libdcfa_pcie.a"
)
