file(REMOVE_RECURSE
  "CMakeFiles/dcfa_pcie.dir/pcie.cpp.o"
  "CMakeFiles/dcfa_pcie.dir/pcie.cpp.o.d"
  "libdcfa_pcie.a"
  "libdcfa_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcfa_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
