file(REMOVE_RECURSE
  "libdcfa_core.a"
)
