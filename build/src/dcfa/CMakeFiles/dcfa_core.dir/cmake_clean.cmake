file(REMOVE_RECURSE
  "CMakeFiles/dcfa_core.dir/cmd.cpp.o"
  "CMakeFiles/dcfa_core.dir/cmd.cpp.o.d"
  "CMakeFiles/dcfa_core.dir/phi_verbs.cpp.o"
  "CMakeFiles/dcfa_core.dir/phi_verbs.cpp.o.d"
  "libdcfa_core.a"
  "libdcfa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcfa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
