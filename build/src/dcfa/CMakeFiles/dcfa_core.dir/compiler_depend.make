# Empty compiler generated dependencies file for dcfa_core.
# This may be replaced when dependencies are built.
