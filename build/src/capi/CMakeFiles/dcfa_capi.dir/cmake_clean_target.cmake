file(REMOVE_RECURSE
  "libdcfa_capi.a"
)
