file(REMOVE_RECURSE
  "CMakeFiles/dcfa_capi.dir/mpi_compat.cpp.o"
  "CMakeFiles/dcfa_capi.dir/mpi_compat.cpp.o.d"
  "libdcfa_capi.a"
  "libdcfa_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcfa_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
