# Empty dependencies file for dcfa_capi.
# This may be replaced when dependencies are built.
