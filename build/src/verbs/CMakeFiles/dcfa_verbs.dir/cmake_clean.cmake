file(REMOVE_RECURSE
  "CMakeFiles/dcfa_verbs.dir/verbs.cpp.o"
  "CMakeFiles/dcfa_verbs.dir/verbs.cpp.o.d"
  "libdcfa_verbs.a"
  "libdcfa_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcfa_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
