file(REMOVE_RECURSE
  "libdcfa_verbs.a"
)
