# Empty dependencies file for dcfa_verbs.
# This may be replaced when dependencies are built.
