file(REMOVE_RECURSE
  "libdcfa_sim.a"
)
