# Empty compiler generated dependencies file for dcfa_sim.
# This may be replaced when dependencies are built.
