file(REMOVE_RECURSE
  "CMakeFiles/dcfa_sim.dir/engine.cpp.o"
  "CMakeFiles/dcfa_sim.dir/engine.cpp.o.d"
  "CMakeFiles/dcfa_sim.dir/log.cpp.o"
  "CMakeFiles/dcfa_sim.dir/log.cpp.o.d"
  "CMakeFiles/dcfa_sim.dir/process.cpp.o"
  "CMakeFiles/dcfa_sim.dir/process.cpp.o.d"
  "CMakeFiles/dcfa_sim.dir/time.cpp.o"
  "CMakeFiles/dcfa_sim.dir/time.cpp.o.d"
  "CMakeFiles/dcfa_sim.dir/trace.cpp.o"
  "CMakeFiles/dcfa_sim.dir/trace.cpp.o.d"
  "libdcfa_sim.a"
  "libdcfa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcfa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
