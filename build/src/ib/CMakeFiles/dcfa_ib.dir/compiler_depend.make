# Empty compiler generated dependencies file for dcfa_ib.
# This may be replaced when dependencies are built.
