file(REMOVE_RECURSE
  "CMakeFiles/dcfa_ib.dir/fabric.cpp.o"
  "CMakeFiles/dcfa_ib.dir/fabric.cpp.o.d"
  "CMakeFiles/dcfa_ib.dir/hca.cpp.o"
  "CMakeFiles/dcfa_ib.dir/hca.cpp.o.d"
  "libdcfa_ib.a"
  "libdcfa_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcfa_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
