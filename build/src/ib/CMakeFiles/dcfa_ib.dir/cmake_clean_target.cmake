file(REMOVE_RECURSE
  "libdcfa_ib.a"
)
