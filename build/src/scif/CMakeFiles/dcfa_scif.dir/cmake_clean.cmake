file(REMOVE_RECURSE
  "CMakeFiles/dcfa_scif.dir/scif.cpp.o"
  "CMakeFiles/dcfa_scif.dir/scif.cpp.o.d"
  "libdcfa_scif.a"
  "libdcfa_scif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcfa_scif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
