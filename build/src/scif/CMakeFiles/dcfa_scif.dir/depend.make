# Empty dependencies file for dcfa_scif.
# This may be replaced when dependencies are built.
