file(REMOVE_RECURSE
  "libdcfa_scif.a"
)
