file(REMOVE_RECURSE
  "libdcfa_mem.a"
)
