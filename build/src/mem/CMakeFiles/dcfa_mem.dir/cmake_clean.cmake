file(REMOVE_RECURSE
  "CMakeFiles/dcfa_mem.dir/memory.cpp.o"
  "CMakeFiles/dcfa_mem.dir/memory.cpp.o.d"
  "libdcfa_mem.a"
  "libdcfa_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcfa_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
