# Empty dependencies file for dcfa_mem.
# This may be replaced when dependencies are built.
