# Empty compiler generated dependencies file for dcfa_compute.
# This may be replaced when dependencies are built.
