file(REMOVE_RECURSE
  "libdcfa_compute.a"
)
