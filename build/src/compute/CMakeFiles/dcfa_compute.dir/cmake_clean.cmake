file(REMOVE_RECURSE
  "CMakeFiles/dcfa_compute.dir/compute.cpp.o"
  "CMakeFiles/dcfa_compute.dir/compute.cpp.o.d"
  "libdcfa_compute.a"
  "libdcfa_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcfa_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
