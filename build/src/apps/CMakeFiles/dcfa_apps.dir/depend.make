# Empty dependencies file for dcfa_apps.
# This may be replaced when dependencies are built.
