file(REMOVE_RECURSE
  "libdcfa_apps.a"
)
