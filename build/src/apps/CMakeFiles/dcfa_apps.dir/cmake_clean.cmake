file(REMOVE_RECURSE
  "CMakeFiles/dcfa_apps.dir/commonly.cpp.o"
  "CMakeFiles/dcfa_apps.dir/commonly.cpp.o.d"
  "CMakeFiles/dcfa_apps.dir/pingpong.cpp.o"
  "CMakeFiles/dcfa_apps.dir/pingpong.cpp.o.d"
  "CMakeFiles/dcfa_apps.dir/stencil.cpp.o"
  "CMakeFiles/dcfa_apps.dir/stencil.cpp.o.d"
  "libdcfa_apps.a"
  "libdcfa_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcfa_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
