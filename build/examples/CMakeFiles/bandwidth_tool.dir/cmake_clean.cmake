file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_tool.dir/bandwidth_tool.cpp.o"
  "CMakeFiles/bandwidth_tool.dir/bandwidth_tool.cpp.o.d"
  "bandwidth_tool"
  "bandwidth_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
