# Empty dependencies file for bandwidth_tool.
# This may be replaced when dependencies are built.
