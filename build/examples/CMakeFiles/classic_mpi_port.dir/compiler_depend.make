# Empty compiler generated dependencies file for classic_mpi_port.
# This may be replaced when dependencies are built.
