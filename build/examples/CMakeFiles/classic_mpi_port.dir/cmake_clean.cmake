file(REMOVE_RECURSE
  "CMakeFiles/classic_mpi_port.dir/classic_mpi_port.cpp.o"
  "CMakeFiles/classic_mpi_port.dir/classic_mpi_port.cpp.o.d"
  "classic_mpi_port"
  "classic_mpi_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classic_mpi_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
