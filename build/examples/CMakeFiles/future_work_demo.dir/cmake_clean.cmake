file(REMOVE_RECURSE
  "CMakeFiles/future_work_demo.dir/future_work_demo.cpp.o"
  "CMakeFiles/future_work_demo.dir/future_work_demo.cpp.o.d"
  "future_work_demo"
  "future_work_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_work_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
