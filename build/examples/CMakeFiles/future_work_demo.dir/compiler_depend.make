# Empty compiler generated dependencies file for future_work_demo.
# This may be replaced when dependencies are built.
