# Empty dependencies file for raw_dcfa_verbs.
# This may be replaced when dependencies are built.
