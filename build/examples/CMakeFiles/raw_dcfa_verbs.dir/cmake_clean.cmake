file(REMOVE_RECURSE
  "CMakeFiles/raw_dcfa_verbs.dir/raw_dcfa_verbs.cpp.o"
  "CMakeFiles/raw_dcfa_verbs.dir/raw_dcfa_verbs.cpp.o.d"
  "raw_dcfa_verbs"
  "raw_dcfa_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_dcfa_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
