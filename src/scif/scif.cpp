#include "scif/scif.hpp"

#include "sim/log.hpp"

namespace dcfa::scif {

void Channel::send(sim::Process& proc, Side from,
                   std::span<const std::byte> msg) {
  const Side to = from == Side::Host ? Side::Phi : Side::Host;
  // Submitting costs one post on the caller's core; the doorbell + ring
  // traversal is the SCIF message latency. Payload bytes ride the ring at a
  // modest rate (control messages are small).
  proc.wait(from == Side::Host ? platform_.host_post_overhead
                               : platform_.phi_post_overhead);
  std::vector<std::byte> copy(msg.begin(), msg.end());
  const sim::Time deliver_at = engine_.now() + platform_.scif_msg_latency +
                               sim::transfer_time(msg.size(), 2.0);
  engine_.schedule_at(deliver_at, [this, to, copy = std::move(copy)]() mutable {
    queue_for(to).push_back(std::move(copy));
    arrival(to).notify_all();
    auto& cb = to == Side::Phi ? on_phi_deliver_ : on_host_deliver_;
    if (cb) cb();
  });
}

std::vector<std::byte> Channel::recv(sim::Process& proc, Side side) {
  auto& q = queue_for(side);
  while (q.empty()) proc.wait_on(arrival(side));
  std::vector<std::byte> msg = std::move(q.front());
  q.pop_front();
  return msg;
}

void Channel::deliver_raw(Side side, std::vector<std::byte> msg) {
  queue_for(side).push_back(std::move(msg));
  arrival(side).notify_all();
  auto& cb = side == Side::Phi ? on_phi_deliver_ : on_host_deliver_;
  if (cb) cb();
}

bool Channel::try_recv(Side side, std::vector<std::byte>& out) {
  auto& q = queue_for(side);
  if (q.empty()) return false;
  out = std::move(q.front());
  q.pop_front();
  return true;
}

std::size_t Channel::pending(Side side) const {
  return queue_for(side).size();
}

}  // namespace dcfa::scif
