#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "pcie/pcie.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace dcfa::scif {

/// A SCIF-like bidirectional message channel between the host processor and
/// the Xeon Phi card of one node (Intel's Symmetric Communication
/// Interface). Used as the transport of the DCFA command protocol, the
/// offload runtime's control plane, and the 'Intel MPI on Xeon Phi' IB-proxy
/// path.
///
/// Message semantics mirror scif_send/scif_recv: reliable, ordered, message
/// oriented. Bulk data moves with dma() (scif_vwriteto-style), which rides
/// the Phi DMA engine of the node's PCIe port.
class Channel {
 public:
  enum class Side { Host, Phi };

  Channel(sim::Engine& engine, pcie::PciePort& pcie,
          const sim::Platform& platform)
      : engine_(engine),
        pcie_(pcie),
        platform_(platform),
        to_phi_(engine, "scif.to_phi"),
        to_host_(engine, "scif.to_host") {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Send a message from `from` to the opposite side. The calling process
  /// pays the submit cost; delivery happens one SCIF latency later.
  void send(sim::Process& proc, Side from, std::span<const std::byte> msg);

  /// Blocking receive on `side`; returns the next message in order.
  std::vector<std::byte> recv(sim::Process& proc, Side side);

  /// Non-blocking receive; returns false when no message is pending.
  bool try_recv(Side side, std::vector<std::byte>& out);

  /// Immediate in-queue delivery to `side`, bypassing submit cost and
  /// latency. Used by event-driven kernel components (the DCFA delegation
  /// reply path) that model their timing explicitly before injecting.
  void deliver_raw(Side side, std::vector<std::byte> msg);

  /// Number of delivered-but-unread messages on `side`.
  std::size_t pending(Side side) const;

  /// Condition notified whenever a message is delivered to `side` (for
  /// servers multiplexing several channels).
  sim::Condition& arrival(Side side) {
    return side == Side::Phi ? to_phi_ : to_host_;
  }

  /// Event-driven receivers (the DCFA host delegation process) register a
  /// callback instead of blocking a process; it fires on each delivery.
  void set_on_deliver(Side side, std::function<void()> cb) {
    (side == Side::Phi ? on_phi_deliver_ : on_host_deliver_) = std::move(cb);
  }

  /// Bulk DMA between the two memory domains of this node, blocking the
  /// calling process (scif_vwriteto / scif_vreadfrom equivalent).
  void dma(sim::Process& proc, mem::Domain src_domain, mem::SimAddr src,
           mem::Domain dst_domain, mem::SimAddr dst, std::size_t len) {
    pcie_.dma(proc, src_domain, src, dst_domain, dst, len);
  }

  pcie::PciePort& pcie() { return pcie_; }
  const sim::Platform& platform() const { return platform_; }
  sim::Engine& engine() { return engine_; }

 private:
  std::deque<std::vector<std::byte>>& queue_for(Side side) {
    return side == Side::Phi ? phi_inbox_ : host_inbox_;
  }
  const std::deque<std::vector<std::byte>>& queue_for(Side side) const {
    return side == Side::Phi ? phi_inbox_ : host_inbox_;
  }

  sim::Engine& engine_;
  pcie::PciePort& pcie_;
  const sim::Platform& platform_;
  std::deque<std::vector<std::byte>> phi_inbox_;
  std::deque<std::vector<std::byte>> host_inbox_;
  sim::Condition to_phi_;
  sim::Condition to_host_;
  std::function<void()> on_phi_deliver_;
  std::function<void()> on_host_deliver_;
};

/// Little-endian POD serialiser for the command protocol. Keeps message
/// encoding explicit and testable without pulling in a real wire format.
class Writer {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Writer& put(const T& v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
    return *this;
  }
  std::span<const std::byte> bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> buf) : buf_(buf) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    if (pos_ + sizeof(T) > buf_.size()) {
      throw std::runtime_error("scif::Reader: message truncated");
    }
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace dcfa::scif
