#pragma once

#include <cstdint>
#include <functional>

#include "sim/platform.hpp"
#include "sim/process.hpp"

namespace dcfa::compute {

/// Where a kernel executes — picks the per-point cost and thread-scaling
/// curve from the Platform.
enum class Cpu { Host, Phi };

/// Modelled wall time for `points` units of stencil-like work on an OpenMP
/// team of `threads`:
///   t = fork(T) + points * t_point / (T * e(T)),   e(T) = 1/(1+alpha(T-1)).
/// The efficiency roll-off stands in for shared memory bandwidth on the
/// card; alpha is calibrated so the paper's 8 procs x 56 threads stencil
/// reaches its reported 117x overall speed-up.
sim::Time parallel_time(const sim::Platform& p, Cpu cpu, std::uint64_t points,
                        int threads);

/// Serial time (no fork cost): `points * t_point`.
sim::Time serial_time(const sim::Platform& p, Cpu cpu, std::uint64_t points);

/// OpenMP-team facade: charges the modelled parallel time on `proc`, then
/// executes `body(begin, end)` over [0, n) for real (serially — the sim is
/// cooperative; virtual time already accounts for the parallelism). Pass an
/// empty body to model compute without touching data (fast bench mode).
void parallel_for(sim::Process& proc, const sim::Platform& p, Cpu cpu,
                  std::uint64_t n, int threads,
                  const std::function<void(std::uint64_t, std::uint64_t)>&
                      body = {});

}  // namespace dcfa::compute
