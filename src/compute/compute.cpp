#include "compute/compute.hpp"

#include <stdexcept>

namespace dcfa::compute {

namespace {
double efficiency(double alpha, int threads) {
  return 1.0 / (1.0 + alpha * (threads - 1));
}
}  // namespace

sim::Time serial_time(const sim::Platform& p, Cpu cpu, std::uint64_t points) {
  const sim::Time per_point =
      cpu == Cpu::Phi ? p.phi_point_time : p.host_point_time;
  return per_point * static_cast<sim::Time>(points);
}

sim::Time parallel_time(const sim::Platform& p, Cpu cpu, std::uint64_t points,
                        int threads) {
  if (threads <= 0) throw std::invalid_argument("parallel_time: threads <= 0");
  if (threads == 1) return serial_time(p, cpu, points);
  const double alpha =
      cpu == Cpu::Phi ? p.phi_thread_alpha : p.host_thread_alpha;
  const double speedup = threads * efficiency(alpha, threads);
  const sim::Time fork =
      p.omp_fork_base + p.omp_fork_per_thread * static_cast<sim::Time>(threads);
  const auto work = static_cast<sim::Time>(
      static_cast<double>(serial_time(p, cpu, points)) / speedup);
  return fork + work;
}

void parallel_for(sim::Process& proc, const sim::Platform& p, Cpu cpu,
                  std::uint64_t n, int threads,
                  const std::function<void(std::uint64_t, std::uint64_t)>&
                      body) {
  proc.wait(parallel_time(p, cpu, n, threads));
  if (body) body(0, n);
}

}  // namespace dcfa::compute
