#include "capi/mpi_compat.hpp"

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "mpi/window.hpp"

namespace dcfa::capi {

namespace {

/// Per-rank ambient state. Each rank is one sim::Process — with the fiber
/// scheduler many ranks share an OS thread, so "process globals" hang off
/// the process's ambient slot (set by run() below), not off thread_local.
struct RankEnv {
  mpi::RankCtx* ctx = nullptr;
  bool initialized = false;
  bool finalized = false;
  MPI_Errhandler errhandler = MPI_ERRORS_ARE_FATAL;

  /// Slot 0 = MPI_COMM_WORLD (borrowed from the ctx), slot 1 =
  /// MPI_COMM_SELF (built lazily), others from dup/split.
  std::vector<mpi::Communicator*> comms;
  std::vector<std::unique_ptr<mpi::Communicator>> owned_comms;

  /// Device allocations addressable through raw pointers.
  std::map<const std::byte*, mem::Buffer> allocs;

  /// Outstanding non-blocking operations. Slots are recycled through
  /// free_slots; gens[slot] stamps each incarnation so stale handle copies
  /// (kept after the request completed) never alias a reused slot.
  std::vector<mpi::Request> requests;
  std::vector<std::uint16_t> gens;
  std::vector<int> free_slots;

  /// RMA windows, generation-counted like the request table. `base` and
  /// `owned_mem` track MPI_Win_allocate memory (registered in allocs so the
  /// window region doubles as regular device memory; freed at Win_free).
  struct WinEntry {
    std::unique_ptr<mpi::Window> win;
    int disp_unit = 1;
    MPI_Errhandler errhandler = MPI_ERRORS_ARE_FATAL;
    const std::byte* base = nullptr;
    bool owned_mem = false;
  };
  std::vector<WinEntry> wins;
  std::vector<std::uint16_t> win_gens;
  std::vector<int> win_free_slots;
};

RankEnv* env_or_null() {
  sim::Process* p = sim::Process::current();
  return p ? static_cast<RankEnv*>(p->ambient()) : nullptr;
}

RankEnv& env() {
  RankEnv* e = env_or_null();
  if (!e || !e->ctx) {
    throw mpi::MpiError("MPI call outside dcfa::capi::run()");
  }
  return *e;
}

mpi::Communicator* comm_of(MPI_Comm comm) {
  RankEnv& e = env();
  if (!e.initialized || e.finalized) return nullptr;
  if (comm == MPI_COMM_SELF && e.comms[1] == nullptr) {
    // Build the self communicator on first use.
    auto self = std::make_unique<mpi::Communicator>(
        e.ctx->world.engine(), /*id=*/0x5E1Fu,
        std::vector<int>{e.ctx->world.engine().rank()}, 0);
    e.comms[1] = self.get();
    e.owned_comms.push_back(std::move(self));
  }
  if (comm < 0 || comm >= static_cast<MPI_Comm>(e.comms.size())) {
    return nullptr;
  }
  return e.comms[comm];
}

std::size_t type_size(MPI_Datatype t) {
  switch (t) {
    case MPI_BYTE:
    case MPI_CHAR: return 1;
    case MPI_INT: return sizeof(int);
    case MPI_FLOAT: return sizeof(float);
    case MPI_DOUBLE: return sizeof(double);
    case MPI_LONG_LONG: return sizeof(long long);
  }
  return 0;
}

const mpi::Datatype* type_of(MPI_Datatype t) {
  switch (t) {
    case MPI_BYTE:
    case MPI_CHAR: return &mpi::type_byte();
    case MPI_INT: return &mpi::type_int();
    case MPI_FLOAT: return &mpi::type_float();
    case MPI_DOUBLE: return &mpi::type_double();
    case MPI_LONG_LONG: return &mpi::type_int64();
  }
  return nullptr;
}

bool op_of(MPI_Op op, mpi::Op* out) {
  switch (op) {
    case MPI_SUM: *out = mpi::Op::Sum; return true;
    case MPI_PROD: *out = mpi::Op::Prod; return true;
    case MPI_MAX: *out = mpi::Op::Max; return true;
    case MPI_MIN: *out = mpi::Op::Min; return true;
  }
  return false;
}

/// RMA flavour: MPI_Accumulate additionally takes MPI_REPLACE, which the
/// collective reductions reject.
bool rma_op_of(MPI_Op op, mpi::Op* out) {
  if (op == MPI_REPLACE) {
    *out = mpi::Op::Replace;
    return true;
  }
  return op_of(op, out);
}

/// Map a raw pointer into (device buffer, offset). The pointer must lie in
/// a block from MPI_Alloc_mem.
bool resolve(const void* ptr, std::size_t bytes, mem::Buffer* buf,
             std::size_t* offset) {
  RankEnv& e = env();
  const auto* p = static_cast<const std::byte*>(ptr);
  auto it = e.allocs.upper_bound(p);
  if (it == e.allocs.begin()) return false;
  --it;
  const mem::Buffer& b = it->second;
  if (p < b.data() || p + bytes > b.data() + b.size()) return false;
  *buf = b;
  *offset = static_cast<std::size_t>(p - b.data());
  return true;
}

void fill_status(MPI_Status* status, const mpi::Status& st) {
  if (!status) return;
  status->MPI_SOURCE = st.source;
  status->MPI_TAG = st.tag;
  status->MPI_ERROR = MPI_SUCCESS;
  status->count_bytes_ = st.bytes;
}

/// Handle layout: slot in bits 0..15, generation in bits 16..30 (bit 31
/// stays clear so handles are positive and never collide with
/// MPI_REQUEST_NULL).
MPI_Request encode_request(const RankEnv& e, int slot) {
  return static_cast<MPI_Request>((e.gens[slot] & 0x7fff) << 16 | slot);
}

MPI_Request stash_request(mpi::Request req) {
  RankEnv& e = env();
  int slot;
  if (!e.free_slots.empty()) {
    slot = e.free_slots.back();
    e.free_slots.pop_back();
    e.requests[slot] = std::move(req);
  } else {
    slot = static_cast<int>(e.requests.size());
    e.requests.push_back(std::move(req));
    e.gens.push_back(0);
  }
  return encode_request(e, slot);
}

enum class ReqRef {
  Ok,       ///< live request at *slot
  Stale,    ///< well-formed handle whose incarnation already completed
  Invalid,  ///< never a request handle
};

ReqRef decode_request(MPI_Request h, int* slot) {
  if (h < 0) return ReqRef::Invalid;
  const int s = h & 0xffff;
  const int gen = (h >> 16) & 0x7fff;
  RankEnv& e = env();
  if (s >= static_cast<int>(e.requests.size())) return ReqRef::Invalid;
  if ((e.gens[s] & 0x7fff) != gen || !e.requests[s].valid()) {
    return ReqRef::Stale;
  }
  *slot = s;
  return ReqRef::Ok;
}

/// Retire a slot: bump the generation (invalidating outstanding handle
/// copies) and recycle it.
void release_request(int slot) {
  RankEnv& e = env();
  e.requests[slot] = mpi::Request{};
  ++e.gens[slot];
  e.free_slots.push_back(slot);
}

// --- Window handle table (generation-counted, mirroring requests) -----------

MPI_Win encode_win(const RankEnv& e, int slot) {
  return static_cast<MPI_Win>((e.win_gens[slot] & 0x7fff) << 16 | slot);
}

MPI_Win stash_win(RankEnv::WinEntry entry) {
  RankEnv& e = env();
  int slot;
  if (!e.win_free_slots.empty()) {
    slot = e.win_free_slots.back();
    e.win_free_slots.pop_back();
    e.wins[slot] = std::move(entry);
  } else {
    slot = static_cast<int>(e.wins.size());
    e.wins.push_back(std::move(entry));
    e.win_gens.push_back(0);
  }
  return encode_win(e, slot);
}

enum class WinRef { Ok, Stale, Invalid };

WinRef decode_win(MPI_Win h, int* slot) {
  if (h < 0) return WinRef::Invalid;
  const int s = h & 0xffff;
  const int gen = (h >> 16) & 0x7fff;
  RankEnv& e = env();
  if (s >= static_cast<int>(e.wins.size())) return WinRef::Invalid;
  if ((e.win_gens[s] & 0x7fff) != gen || !e.wins[s].win) return WinRef::Stale;
  *slot = s;
  return WinRef::Ok;
}

void release_win(int slot) {
  RankEnv& e = env();
  e.wins[slot] = RankEnv::WinEntry{};
  ++e.win_gens[slot];
  e.win_free_slots.push_back(slot);
}

RankEnv::WinEntry* win_of(MPI_Win h) {
  int slot;
  return decode_win(h, &slot) == WinRef::Ok ? &env().wins[slot] : nullptr;
}

int classify(const mpi::MpiError& err) {
  switch (err.errc()) {
    case mpi::MpiErrc::ProcFailed: return MPIX_ERR_PROC_FAILED;
    case mpi::MpiErrc::Revoked: return MPIX_ERR_REVOKED;
    case mpi::MpiErrc::Truncation: return MPI_ERR_TRUNCATE;
    default: break;
  }
  return std::string(err.what()).find("truncation") != std::string::npos
             ? MPI_ERR_TRUNCATE
             : MPI_ERR_OTHER;
}

/// Wrap a shim body: translate argument failures and engine errors into
/// MPI error codes. Rank-failure and revocation errors are only reported as
/// codes under MPI_ERRORS_RETURN; a fault-unaware program (the default
/// MPI_ERRORS_ARE_FATAL) lets them escape and kill the job, matching MPI's
/// predefined-handler semantics.
template <typename Fn>
int guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const mpi::MpiError& e) {
    const int code = classify(e);
    if ((code == MPIX_ERR_PROC_FAILED || code == MPIX_ERR_REVOKED) &&
        env().errhandler == MPI_ERRORS_ARE_FATAL) {
      throw;
    }
    return code;
  }
}

}  // namespace

// --- Environment --------------------------------------------------------------

int MPI_Init(int*, char***) {
  RankEnv& e = env();
  if (e.initialized) return MPI_ERR_OTHER;
  e.initialized = true;
  e.comms.assign(2, nullptr);
  e.comms[0] = &e.ctx->world;
  return MPI_SUCCESS;
}

int MPI_Finalize() {
  RankEnv& e = env();
  if (!e.initialized || e.finalized) return MPI_ERR_OTHER;
  e.finalized = true;
  // Release any remaining allocations (MRs and device memory).
  for (auto& [ptr, buf] : e.allocs) {
    e.ctx->world.free(buf);
  }
  e.allocs.clear();
  e.owned_comms.clear();
  return MPI_SUCCESS;
}

int MPI_Initialized(int* flag) {
  RankEnv* e = env_or_null();
  *flag = e && e->initialized ? 1 : 0;
  return MPI_SUCCESS;
}

int MPI_Abort(MPI_Comm, int errorcode) {
  throw mpi::MpiError("MPI_Abort called with code " +
                      std::to_string(errorcode));
}

double MPI_Wtime() { return env().ctx->world.wtime(); }

int MPI_Alloc_mem(std::size_t size, void*, void* baseptr) {
  return guarded([&]() -> int {
    RankEnv& e = env();
    mem::Buffer buf = e.ctx->world.alloc(std::max<std::size_t>(size, 1), 64);
    e.allocs.emplace(buf.data(), buf);
    *static_cast<void**>(baseptr) = buf.data();
    return MPI_SUCCESS;
  });
}

int MPI_Free_mem(void* base) {
  return guarded([&]() -> int {
    RankEnv& e = env();
    auto it = e.allocs.find(static_cast<const std::byte*>(base));
    if (it == e.allocs.end()) return MPI_ERR_BUFFER;
    e.ctx->world.free(it->second);
    e.allocs.erase(it);
    return MPI_SUCCESS;
  });
}

// --- Communicators ---------------------------------------------------------------

int MPI_Comm_rank(MPI_Comm comm, int* rank) {
  mpi::Communicator* c = comm_of(comm);
  if (!c) return MPI_ERR_COMM;
  *rank = c->rank();
  return MPI_SUCCESS;
}

int MPI_Comm_size(MPI_Comm comm, int* size) {
  mpi::Communicator* c = comm_of(comm);
  if (!c) return MPI_ERR_COMM;
  *size = c->size();
  return MPI_SUCCESS;
}

int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    RankEnv& e = env();
    auto dup = std::make_unique<mpi::Communicator>(c->dup());
    e.comms.push_back(dup.get());
    e.owned_comms.push_back(std::move(dup));
    *newcomm = static_cast<MPI_Comm>(e.comms.size()) - 1;
    return MPI_SUCCESS;
  });
}

int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    RankEnv& e = env();
    auto split = std::make_unique<mpi::Communicator>(c->split(color, key));
    e.comms.push_back(split.get());
    e.owned_comms.push_back(std::move(split));
    *newcomm = static_cast<MPI_Comm>(e.comms.size()) - 1;
    return MPI_SUCCESS;
  });
}

int MPI_Comm_free(MPI_Comm* comm) {
  mpi::Communicator* c = comm_of(*comm);
  if (!c || *comm <= MPI_COMM_SELF) return MPI_ERR_COMM;
  env().comms[*comm] = nullptr;  // handle dangles; storage freed at finalize
  *comm = MPI_COMM_NULL;
  return MPI_SUCCESS;
}

int MPI_Comm_set_errhandler(MPI_Comm comm, MPI_Errhandler errhandler) {
  if (!comm_of(comm)) return MPI_ERR_COMM;
  if (errhandler != MPI_ERRORS_ARE_FATAL && errhandler != MPI_ERRORS_RETURN) {
    return MPI_ERR_OTHER;
  }
  // Rank-wide, whichever communicator it was set on: the shim keeps one
  // ambient handler per rank, like real MPI programs that only ever set it
  // on MPI_COMM_WORLD.
  env().errhandler = errhandler;
  return MPI_SUCCESS;
}

// --- Fault tolerance (ULFM-style MPIX extensions) ----------------------------

int MPIX_Comm_revoke(MPI_Comm comm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    c->revoke();
    return MPI_SUCCESS;
  });
}

int MPIX_Comm_shrink(MPI_Comm comm, MPI_Comm* newcomm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    RankEnv& e = env();
    auto shrunk = std::make_unique<mpi::Communicator>(c->shrink());
    e.comms.push_back(shrunk.get());
    e.owned_comms.push_back(std::move(shrunk));
    *newcomm = static_cast<MPI_Comm>(e.comms.size()) - 1;
    return MPI_SUCCESS;
  });
}

int MPIX_Comm_agree(MPI_Comm comm, int* flag) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    *flag = static_cast<int>(
        c->agree(static_cast<std::uint32_t>(*flag)) & 0xffffffffu);
    return MPI_SUCCESS;
  });
}

// --- Point-to-point -----------------------------------------------------------------

namespace {
int do_send(const void* buf, int count, MPI_Datatype type, int dest, int tag,
            MPI_Comm comm, bool sync) {
  return guarded([&]() -> int {
    if (dest == MPI_PROC_NULL) return MPI_SUCCESS;
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    const mpi::Datatype* t = type_of(type);
    if (!t || count < 0) return MPI_ERR_TYPE;
    mem::Buffer b;
    std::size_t off = 0;
    if (!resolve(buf, count * t->size(), &b, &off)) return MPI_ERR_BUFFER;
    if (sync) {
      c->ssend(b, off, count, *t, dest, tag);
    } else {
      c->send(b, off, count, *t, dest, tag);
    }
    return MPI_SUCCESS;
  });
}
}  // namespace

int MPI_Send(const void* buf, int count, MPI_Datatype type, int dest,
             int tag, MPI_Comm comm) {
  return do_send(buf, count, type, dest, tag, comm, false);
}

int MPI_Ssend(const void* buf, int count, MPI_Datatype type, int dest,
              int tag, MPI_Comm comm) {
  return do_send(buf, count, type, dest, tag, comm, true);
}

int MPI_Recv(void* buf, int count, MPI_Datatype type, int source, int tag,
             MPI_Comm comm, MPI_Status* status) {
  return guarded([&]() -> int {
    if (source == MPI_PROC_NULL) {
      if (status) {
        status->MPI_SOURCE = MPI_PROC_NULL;
        status->MPI_TAG = MPI_ANY_TAG;
        status->count_bytes_ = 0;
      }
      return MPI_SUCCESS;
    }
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    const mpi::Datatype* t = type_of(type);
    if (!t || count < 0) return MPI_ERR_TYPE;
    mem::Buffer b;
    std::size_t off = 0;
    if (!resolve(buf, count * t->size(), &b, &off)) return MPI_ERR_BUFFER;
    fill_status(status, c->recv(b, off, count, *t, source, tag));
    return MPI_SUCCESS;
  });
}

int MPI_Isend(const void* buf, int count, MPI_Datatype type, int dest,
              int tag, MPI_Comm comm, MPI_Request* request) {
  return guarded([&]() -> int {
    if (dest == MPI_PROC_NULL) {
      *request = MPI_REQUEST_NULL;
      return MPI_SUCCESS;
    }
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    const mpi::Datatype* t = type_of(type);
    if (!t || count < 0) return MPI_ERR_TYPE;
    mem::Buffer b;
    std::size_t off = 0;
    if (!resolve(buf, count * t->size(), &b, &off)) return MPI_ERR_BUFFER;
    *request = stash_request(c->isend(b, off, count, *t, dest, tag));
    return MPI_SUCCESS;
  });
}

int MPI_Irecv(void* buf, int count, MPI_Datatype type, int source, int tag,
              MPI_Comm comm, MPI_Request* request) {
  return guarded([&]() -> int {
    if (source == MPI_PROC_NULL) {
      *request = MPI_REQUEST_NULL;
      return MPI_SUCCESS;
    }
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    const mpi::Datatype* t = type_of(type);
    if (!t || count < 0) return MPI_ERR_TYPE;
    mem::Buffer b;
    std::size_t off = 0;
    if (!resolve(buf, count * t->size(), &b, &off)) return MPI_ERR_BUFFER;
    *request = stash_request(c->irecv(b, off, count, *t, source, tag));
    return MPI_SUCCESS;
  });
}

int MPI_Wait(MPI_Request* request, MPI_Status* status) {
  return guarded([&]() -> int {
    if (*request == MPI_REQUEST_NULL) return MPI_SUCCESS;
    RankEnv& e = env();
    int slot;
    switch (decode_request(*request, &slot)) {
      case ReqRef::Invalid:
        return MPI_ERR_REQUEST;
      case ReqRef::Stale:
        // A copy of a handle whose incarnation already completed: nothing
        // left to wait for, and the slot must not be freed twice.
        *request = MPI_REQUEST_NULL;
        return MPI_SUCCESS;
      case ReqRef::Ok:
        break;
    }
    fill_status(status, e.ctx->world.engine().wait(e.requests[slot]));
    release_request(slot);
    *request = MPI_REQUEST_NULL;
    return MPI_SUCCESS;
  });
}

int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses) {
  for (int i = 0; i < count; ++i) {
    const int rc =
        MPI_Wait(&requests[i], statuses ? &statuses[i] : MPI_STATUS_IGNORE);
    if (rc != MPI_SUCCESS) return rc;
  }
  return MPI_SUCCESS;
}

int MPI_Waitany(int count, MPI_Request* requests, int* index,
                MPI_Status* status) {
  return guarded([&]() -> int {
    RankEnv& e = env();
    std::vector<mpi::Request> active;
    std::vector<int> at;
    for (int i = 0; i < count; ++i) {
      if (requests[i] == MPI_REQUEST_NULL) continue;
      int slot;
      switch (decode_request(requests[i], &slot)) {
        case ReqRef::Invalid:
          return MPI_ERR_REQUEST;
        case ReqRef::Stale:
          requests[i] = MPI_REQUEST_NULL;
          continue;
        case ReqRef::Ok:
          active.push_back(e.requests[slot]);
          at.push_back(i);
          break;
      }
    }
    if (active.empty()) {
      *index = MPI_UNDEFINED;
      return MPI_SUCCESS;
    }
    const std::size_t w = e.ctx->world.engine().waitany(active);
    const int i = at[w];
    int slot;
    decode_request(requests[i], &slot);
    fill_status(status, e.requests[slot].status());
    release_request(slot);
    requests[i] = MPI_REQUEST_NULL;
    *index = i;
    return MPI_SUCCESS;
  });
}

int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status) {
  return guarded([&]() -> int {
    if (*request == MPI_REQUEST_NULL) {
      *flag = 1;
      return MPI_SUCCESS;
    }
    RankEnv& e = env();
    int slot;
    switch (decode_request(*request, &slot)) {
      case ReqRef::Invalid:
        return MPI_ERR_REQUEST;
      case ReqRef::Stale:
        *flag = 1;
        *request = MPI_REQUEST_NULL;
        return MPI_SUCCESS;
      case ReqRef::Ok:
        break;
    }
    if (!e.ctx->world.test(e.requests[slot])) {
      *flag = 0;
      return MPI_SUCCESS;
    }
    *flag = 1;
    fill_status(status, e.requests[slot].status());
    release_request(slot);
    *request = MPI_REQUEST_NULL;
    return MPI_SUCCESS;
  });
}

int MPI_Testall(int count, MPI_Request* requests, int* flag,
                MPI_Status* statuses) {
  return guarded([&]() -> int {
    RankEnv& e = env();
    std::vector<mpi::Request> active;
    for (int i = 0; i < count; ++i) {
      if (requests[i] == MPI_REQUEST_NULL) continue;
      int slot;
      switch (decode_request(requests[i], &slot)) {
        case ReqRef::Invalid:
          return MPI_ERR_REQUEST;
        case ReqRef::Stale:
          requests[i] = MPI_REQUEST_NULL;
          continue;
        case ReqRef::Ok:
          active.push_back(e.requests[slot]);
          break;
      }
    }
    if (!e.ctx->world.engine().testall(active)) {
      // Statuses stay undefined until everything completes (MPI semantics).
      *flag = 0;
      return MPI_SUCCESS;
    }
    *flag = 1;
    for (int i = 0; i < count; ++i) {
      if (requests[i] == MPI_REQUEST_NULL) continue;
      int slot;
      decode_request(requests[i], &slot);
      fill_status(statuses ? &statuses[i] : MPI_STATUS_IGNORE,
                  e.requests[slot].status());
      release_request(slot);
      requests[i] = MPI_REQUEST_NULL;
    }
    return MPI_SUCCESS;
  });
}

int MPI_Testany(int count, MPI_Request* requests, int* index, int* flag,
                MPI_Status* status) {
  return guarded([&]() -> int {
    RankEnv& e = env();
    std::vector<mpi::Request> active;
    std::vector<int> at;
    for (int i = 0; i < count; ++i) {
      if (requests[i] == MPI_REQUEST_NULL) continue;
      int slot;
      switch (decode_request(requests[i], &slot)) {
        case ReqRef::Invalid:
          return MPI_ERR_REQUEST;
        case ReqRef::Stale:
          requests[i] = MPI_REQUEST_NULL;
          continue;
        case ReqRef::Ok:
          active.push_back(e.requests[slot]);
          at.push_back(i);
          break;
      }
    }
    if (active.empty()) {
      // No active request: trivially "completed" with undefined index.
      *index = MPI_UNDEFINED;
      *flag = 1;
      return MPI_SUCCESS;
    }
    const auto w = e.ctx->world.engine().testany(active);
    if (!w) {
      *index = MPI_UNDEFINED;
      *flag = 0;
      return MPI_SUCCESS;
    }
    const int i = at[*w];
    int slot;
    decode_request(requests[i], &slot);
    fill_status(status, e.requests[slot].status());
    release_request(slot);
    requests[i] = MPI_REQUEST_NULL;
    *index = i;
    *flag = 1;
    return MPI_SUCCESS;
  });
}

int MPI_Request_free(MPI_Request* request) {
  return guarded([&]() -> int {
    if (*request == MPI_REQUEST_NULL) return MPI_ERR_REQUEST;
    int slot;
    switch (decode_request(*request, &slot)) {
      case ReqRef::Invalid:
        return MPI_ERR_REQUEST;
      case ReqRef::Stale:
        *request = MPI_REQUEST_NULL;
        return MPI_SUCCESS;
      case ReqRef::Ok:
        break;
    }
    // Dropping the handle does not cancel the operation: the engine keeps
    // its own reference to the request state until it completes.
    release_request(slot);
    *request = MPI_REQUEST_NULL;
    return MPI_SUCCESS;
  });
}

int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    fill_status(status, c->probe(source, tag));
    return MPI_SUCCESS;
  });
}

int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag,
               MPI_Status* status) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    auto st = c->iprobe(source, tag);
    *flag = st.has_value() ? 1 : 0;
    if (st) fill_status(status, *st);
    return MPI_SUCCESS;
  });
}

int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 int dest, int sendtag, void* recvbuf, int recvcount,
                 MPI_Datatype recvtype, int source, int recvtag,
                 MPI_Comm comm, MPI_Status* status) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    const mpi::Datatype* st = type_of(sendtype);
    const mpi::Datatype* rt = type_of(recvtype);
    if (!st || !rt) return MPI_ERR_TYPE;
    mem::Buffer sb, rb;
    std::size_t soff = 0, roff = 0;
    if (!resolve(sendbuf, sendcount * st->size(), &sb, &soff) ||
        !resolve(recvbuf, recvcount * rt->size(), &rb, &roff)) {
      return MPI_ERR_BUFFER;
    }
    fill_status(status,
                c->sendrecv(sb, soff, sendcount, *st, dest, sendtag, rb,
                            roff, recvcount, *rt, source, recvtag));
    return MPI_SUCCESS;
  });
}

int MPI_Get_count(const MPI_Status* status, MPI_Datatype type, int* count) {
  const std::size_t es = type_size(type);
  if (es == 0) return MPI_ERR_TYPE;
  if (status->count_bytes_ % es != 0) return MPI_ERR_TYPE;
  *count = static_cast<int>(status->count_bytes_ / es);
  return MPI_SUCCESS;
}

// --- Collectives -----------------------------------------------------------------

namespace {
/// Resolve a (buf, count, type) triple or bail with MPI_ERR_*.
int resolve3(const void* buf, int count, MPI_Datatype type, mem::Buffer* b,
             std::size_t* off, const mpi::Datatype** t) {
  *t = type_of(type);
  if (!*t || count < 0) return MPI_ERR_TYPE;
  if (!resolve(buf, count * (*t)->size(), b, off)) return MPI_ERR_BUFFER;
  return MPI_SUCCESS;
}
}  // namespace

int MPI_Barrier(MPI_Comm comm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    c->barrier();
    return MPI_SUCCESS;
  });
}

int MPI_Bcast(void* buffer, int count, MPI_Datatype type, int root,
              MPI_Comm comm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    mem::Buffer b;
    std::size_t off;
    const mpi::Datatype* t;
    if (const int rc = resolve3(buffer, count, type, &b, &off, &t)) return rc;
    c->bcast(b, off, count, *t, root);
    return MPI_SUCCESS;
  });
}

int MPI_Reduce(const void* sendbuf, void* recvbuf, int count,
               MPI_Datatype type, MPI_Op op, int root, MPI_Comm comm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    mpi::Op o;
    if (!op_of(op, &o)) return MPI_ERR_OP;
    mem::Buffer sb, rb;
    std::size_t soff, roff;
    const mpi::Datatype* t;
    if (const int rc = resolve3(sendbuf, count, type, &sb, &soff, &t)) return rc;
    if (c->rank() == root) {
      if (const int rc = resolve3(recvbuf, count, type, &rb, &roff, &t)) return rc;
    } else {
      rb = sb;
      roff = soff;  // unused at non-roots
    }
    c->reduce(sb, soff, rb, roff, count, *t, o, root);
    return MPI_SUCCESS;
  });
}

int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count,
                  MPI_Datatype type, MPI_Op op, MPI_Comm comm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    mpi::Op o;
    if (!op_of(op, &o)) return MPI_ERR_OP;
    mem::Buffer sb, rb;
    std::size_t soff, roff;
    const mpi::Datatype* t;
    if (const int rc = resolve3(sendbuf, count, type, &sb, &soff, &t)) return rc;
    if (const int rc = resolve3(recvbuf, count, type, &rb, &roff, &t)) return rc;
    c->allreduce(sb, soff, rb, roff, count, *t, o);
    return MPI_SUCCESS;
  });
}

int MPI_Reduce_scatter_block(const void* sendbuf, void* recvbuf,
                             int recvcount, MPI_Datatype type, MPI_Op op,
                             MPI_Comm comm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    mpi::Op o;
    if (!op_of(op, &o)) return MPI_ERR_OP;
    mem::Buffer sb, rb;
    std::size_t soff, roff;
    const mpi::Datatype* t;
    if (const int rc =
            resolve3(sendbuf, recvcount * c->size(), type, &sb, &soff, &t)) {
      return rc;
    }
    if (const int rc = resolve3(recvbuf, recvcount, type, &rb, &roff, &t)) {
      return rc;
    }
    c->reduce_scatter_block(sb, soff, rb, roff, recvcount, *t, o);
    return MPI_SUCCESS;
  });
}

int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
               void* recvbuf, int recvcount, MPI_Datatype recvtype, int root,
               MPI_Comm comm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    mem::Buffer sb, rb;
    std::size_t soff, roff = 0;
    const mpi::Datatype* st;
    const mpi::Datatype* rt = type_of(recvtype);
    if (const int rc = resolve3(sendbuf, sendcount, sendtype, &sb, &soff, &st)) {
      return rc;
    }
    if (c->rank() == root) {
      if (!rt || !resolve(recvbuf, c->size() * recvcount * rt->size(), &rb,
                          &roff)) {
        return MPI_ERR_BUFFER;
      }
    } else {
      rb = sb;
    }
    c->gather(sb, soff, sendcount, *st, rb, roff, root);
    return MPI_SUCCESS;
  });
}

int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                void* recvbuf, int recvcount, MPI_Datatype recvtype,
                int root, MPI_Comm comm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    mem::Buffer sb, rb;
    std::size_t soff = 0, roff;
    const mpi::Datatype* rt;
    const mpi::Datatype* st = type_of(sendtype);
    if (const int rc = resolve3(recvbuf, recvcount, recvtype, &rb, &roff, &rt)) {
      return rc;
    }
    if (c->rank() == root) {
      if (!st || !resolve(sendbuf, c->size() * sendcount * st->size(), &sb,
                          &soff)) {
        return MPI_ERR_BUFFER;
      }
    } else {
      sb = rb;
    }
    c->scatter(sb, soff, sendcount, *rt, rb, roff, root);
    return MPI_SUCCESS;
  });
}

int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                  void* recvbuf, int recvcount, MPI_Datatype recvtype,
                  MPI_Comm comm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    (void)recvcount;
    mem::Buffer sb, rb;
    std::size_t soff, roff = 0;
    const mpi::Datatype* st;
    const mpi::Datatype* rt = type_of(recvtype);
    if (const int rc = resolve3(sendbuf, sendcount, sendtype, &sb, &soff, &st)) {
      return rc;
    }
    if (!rt ||
        !resolve(recvbuf, c->size() * sendcount * rt->size(), &rb, &roff)) {
      return MPI_ERR_BUFFER;
    }
    c->allgather(sb, soff, sendcount, *st, rb, roff);
    return MPI_SUCCESS;
  });
}

int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 MPI_Comm comm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    (void)recvcount;
    (void)recvtype;
    mem::Buffer sb, rb;
    std::size_t soff = 0, roff = 0;
    const mpi::Datatype* st = type_of(sendtype);
    if (!st) return MPI_ERR_TYPE;
    if (!resolve(sendbuf, c->size() * sendcount * st->size(), &sb, &soff) ||
        !resolve(recvbuf, c->size() * sendcount * st->size(), &rb, &roff)) {
      return MPI_ERR_BUFFER;
    }
    c->alltoall(sb, soff, sendcount, *st, rb, roff);
    return MPI_SUCCESS;
  });
}

int MPI_Scan(const void* sendbuf, void* recvbuf, int count,
             MPI_Datatype type, MPI_Op op, MPI_Comm comm) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    mpi::Op o;
    if (!op_of(op, &o)) return MPI_ERR_OP;
    mem::Buffer sb, rb;
    std::size_t soff, roff;
    const mpi::Datatype* t;
    if (const int rc = resolve3(sendbuf, count, type, &sb, &soff, &t)) return rc;
    if (const int rc = resolve3(recvbuf, count, type, &rb, &roff, &t)) return rc;
    c->scan(sb, soff, rb, roff, count, *t, o);
    return MPI_SUCCESS;
  });
}

// --- Nonblocking collectives -------------------------------------------------------

int MPI_Ibarrier(MPI_Comm comm, MPI_Request* request) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    *request = stash_request(c->ibarrier());
    return MPI_SUCCESS;
  });
}

int MPI_Ibcast(void* buffer, int count, MPI_Datatype type, int root,
               MPI_Comm comm, MPI_Request* request) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    mem::Buffer b;
    std::size_t off;
    const mpi::Datatype* t;
    if (const int rc = resolve3(buffer, count, type, &b, &off, &t)) return rc;
    *request = stash_request(c->ibcast(b, off, count, *t, root));
    return MPI_SUCCESS;
  });
}

int MPI_Iallreduce(const void* sendbuf, void* recvbuf, int count,
                   MPI_Datatype type, MPI_Op op, MPI_Comm comm,
                   MPI_Request* request) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    mpi::Op o;
    if (!op_of(op, &o)) return MPI_ERR_OP;
    mem::Buffer sb, rb;
    std::size_t soff, roff;
    const mpi::Datatype* t;
    if (const int rc = resolve3(sendbuf, count, type, &sb, &soff, &t)) return rc;
    if (const int rc = resolve3(recvbuf, count, type, &rb, &roff, &t)) return rc;
    *request = stash_request(c->iallreduce(sb, soff, rb, roff, count, *t, o));
    return MPI_SUCCESS;
  });
}

int MPI_Iallgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                   void* recvbuf, int recvcount, MPI_Datatype recvtype,
                   MPI_Comm comm, MPI_Request* request) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    (void)recvcount;
    mem::Buffer sb, rb;
    std::size_t soff, roff = 0;
    const mpi::Datatype* st;
    const mpi::Datatype* rt = type_of(recvtype);
    if (const int rc = resolve3(sendbuf, sendcount, sendtype, &sb, &soff, &st)) {
      return rc;
    }
    if (!rt ||
        !resolve(recvbuf, c->size() * sendcount * rt->size(), &rb, &roff)) {
      return MPI_ERR_BUFFER;
    }
    *request = stash_request(c->iallgather(sb, soff, sendcount, *st, rb, roff));
    return MPI_SUCCESS;
  });
}

int MPI_Ireduce_scatter_block(const void* sendbuf, void* recvbuf,
                              int recvcount, MPI_Datatype type, MPI_Op op,
                              MPI_Comm comm, MPI_Request* request) {
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c) return MPI_ERR_COMM;
    mpi::Op o;
    if (!op_of(op, &o)) return MPI_ERR_OP;
    mem::Buffer sb, rb;
    std::size_t soff, roff;
    const mpi::Datatype* t;
    if (const int rc =
            resolve3(sendbuf, recvcount * c->size(), type, &sb, &soff, &t)) {
      return rc;
    }
    if (const int rc = resolve3(recvbuf, recvcount, type, &rb, &roff, &t)) {
      return rc;
    }
    *request = stash_request(
        c->ireduce_scatter_block(sb, soff, rb, roff, recvcount, *t, o));
    return MPI_SUCCESS;
  });
}

// --- One-sided (MPI-3 RMA) ----------------------------------------------------

namespace {

/// guarded() flavour for window operations: the *window's* error handler
/// decides whether fault errors surface as codes, so a program can opt a
/// single window into MPIX_ERR_PROC_FAILED returns while the rest of the
/// rank stays fatal-by-default.
template <typename Fn>
int guarded_w(MPI_Win win, Fn&& fn) {
  try {
    return fn();
  } catch (const mpi::MpiError& e) {
    const int code = classify(e);
    if (code == MPIX_ERR_PROC_FAILED || code == MPIX_ERR_REVOKED) {
      const RankEnv::WinEntry* w = win_of(win);
      const MPI_Errhandler eh = w ? w->errhandler : env().errhandler;
      if (eh == MPI_ERRORS_ARE_FATAL) throw;
    }
    return code;
  }
}

/// Decode the common (origin, counts, types, window) argument bundle of
/// the communication calls. Origin and target shapes must agree in bytes
/// (a contiguous-only engine has no resizing to offer).
int rma_args(const void* origin, int origin_count, MPI_Datatype origin_type,
             int target_count, MPI_Datatype target_type, MPI_Win win,
             std::size_t target_disp, RankEnv::WinEntry** went,
             mem::Buffer* buf, std::size_t* off, const mpi::Datatype** type,
             std::size_t* disp) {
  RankEnv::WinEntry* w = win_of(win);
  if (!w) return MPI_ERR_WIN;
  const mpi::Datatype* ot = type_of(origin_type);
  const mpi::Datatype* tt = type_of(target_type);
  if (!ot || !tt || origin_count < 0 || target_count < 0) return MPI_ERR_TYPE;
  if (origin_count * ot->size() != target_count * tt->size()) {
    return MPI_ERR_TYPE;
  }
  if (!resolve(origin, origin_count * ot->size(), buf, off)) {
    return MPI_ERR_BUFFER;
  }
  *went = w;
  *type = ot;
  *disp = target_disp * static_cast<std::size_t>(w->disp_unit);
  return MPI_SUCCESS;
}

}  // namespace

int MPI_Win_create(void* base, std::size_t size, int disp_unit,
                   void* info_ignored, MPI_Comm comm, MPI_Win* win) {
  (void)info_ignored;
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c || !win || disp_unit <= 0) return c ? MPI_ERR_OTHER : MPI_ERR_COMM;
    mem::Buffer b;
    std::size_t off = 0;
    RankEnv::WinEntry entry;
    if (size > 0) {
      if (!resolve(base, size, &b, &off)) return MPI_ERR_BUFFER;
    } else {
      // Zero-size participation still needs a registered region to ride
      // the collective exchange; give it a private byte.
      RankEnv& e = env();
      b = c->alloc(1);
      e.allocs.emplace(b.data(), b);
      entry.base = b.data();
      entry.owned_mem = true;
    }
    entry.win = std::make_unique<mpi::Window>(*c, b, off, size);
    entry.disp_unit = disp_unit;
    *win = stash_win(std::move(entry));
    return MPI_SUCCESS;
  });
}

int MPI_Win_allocate(std::size_t size, int disp_unit, void* info_ignored,
                     MPI_Comm comm, void* baseptr, MPI_Win* win) {
  (void)info_ignored;
  return guarded([&]() -> int {
    mpi::Communicator* c = comm_of(comm);
    if (!c || !win || !baseptr || disp_unit <= 0) {
      return c ? MPI_ERR_OTHER : MPI_ERR_COMM;
    }
    RankEnv& e = env();
    // Allocate through the allocs map (not Window::allocate) so the window
    // memory is a first-class raw-pointer region: the app can pass it to
    // any other shim (MPI_Send from the window, memset via *baseptr, ...).
    mem::Buffer b = c->alloc(size > 0 ? size : 1);
    e.allocs.emplace(b.data(), b);
    RankEnv::WinEntry entry;
    entry.win = std::make_unique<mpi::Window>(*c, b, 0, size);
    entry.disp_unit = disp_unit;
    entry.base = b.data();
    entry.owned_mem = true;
    *static_cast<void**>(baseptr) = b.data();
    *win = stash_win(std::move(entry));
    return MPI_SUCCESS;
  });
}

int MPI_Win_free(MPI_Win* win) {
  return guarded([&]() -> int {
    if (!win) return MPI_ERR_WIN;
    int slot;
    switch (decode_win(*win, &slot)) {
      case WinRef::Invalid:
        return *win == MPI_WIN_NULL ? MPI_SUCCESS : MPI_ERR_WIN;
      case WinRef::Stale:
        *win = MPI_WIN_NULL;  // already freed through another handle copy
        return MPI_SUCCESS;
      case WinRef::Ok: break;
    }
    RankEnv& e = env();
    RankEnv::WinEntry& w = e.wins[slot];
    w.win->free();
    w.win.reset();
    if (w.owned_mem) {
      auto it = e.allocs.find(w.base);
      if (it != e.allocs.end()) {
        e.ctx->world.free(it->second);
        e.allocs.erase(it);
      }
    }
    release_win(slot);
    *win = MPI_WIN_NULL;
    return MPI_SUCCESS;
  });
}

int MPI_Win_fence(int assert_ignored, MPI_Win win) {
  (void)assert_ignored;
  return guarded_w(win, [&]() -> int {
    RankEnv::WinEntry* w = win_of(win);
    if (!w) return MPI_ERR_WIN;
    w->win->fence();
    return MPI_SUCCESS;
  });
}

int MPI_Win_lock(int lock_type, int rank, int assert_ignored, MPI_Win win) {
  (void)assert_ignored;
  return guarded_w(win, [&]() -> int {
    RankEnv::WinEntry* w = win_of(win);
    if (!w) return MPI_ERR_WIN;
    if (lock_type != MPI_LOCK_SHARED && lock_type != MPI_LOCK_EXCLUSIVE) {
      return MPI_ERR_OTHER;
    }
    w->win->lock(rank, lock_type == MPI_LOCK_EXCLUSIVE
                           ? mpi::Window::Lock::Exclusive
                           : mpi::Window::Lock::Shared);
    return MPI_SUCCESS;
  });
}

int MPI_Win_lock_all(int assert_ignored, MPI_Win win) {
  (void)assert_ignored;
  return guarded_w(win, [&]() -> int {
    RankEnv::WinEntry* w = win_of(win);
    if (!w) return MPI_ERR_WIN;
    w->win->lock_all();
    return MPI_SUCCESS;
  });
}

int MPI_Win_unlock(int rank, MPI_Win win) {
  return guarded_w(win, [&]() -> int {
    RankEnv::WinEntry* w = win_of(win);
    if (!w) return MPI_ERR_WIN;
    w->win->unlock(rank);
    return MPI_SUCCESS;
  });
}

int MPI_Win_unlock_all(MPI_Win win) {
  return guarded_w(win, [&]() -> int {
    RankEnv::WinEntry* w = win_of(win);
    if (!w) return MPI_ERR_WIN;
    w->win->unlock_all();
    return MPI_SUCCESS;
  });
}

int MPI_Win_flush(int rank, MPI_Win win) {
  return guarded_w(win, [&]() -> int {
    RankEnv::WinEntry* w = win_of(win);
    if (!w) return MPI_ERR_WIN;
    w->win->flush(rank);
    return MPI_SUCCESS;
  });
}

int MPI_Win_flush_local(int rank, MPI_Win win) {
  return guarded_w(win, [&]() -> int {
    RankEnv::WinEntry* w = win_of(win);
    if (!w) return MPI_ERR_WIN;
    w->win->flush_local(rank);
    return MPI_SUCCESS;
  });
}

int MPI_Win_set_errhandler(MPI_Win win, MPI_Errhandler errhandler) {
  RankEnv::WinEntry* w = win_of(win);
  if (!w) return MPI_ERR_WIN;
  if (errhandler != MPI_ERRORS_ARE_FATAL && errhandler != MPI_ERRORS_RETURN) {
    return MPI_ERR_OTHER;
  }
  w->errhandler = errhandler;
  return MPI_SUCCESS;
}

int MPI_Put(const void* origin, int origin_count, MPI_Datatype origin_type,
            int target_rank, std::size_t target_disp, int target_count,
            MPI_Datatype target_type, MPI_Win win) {
  return guarded_w(win, [&]() -> int {
    RankEnv::WinEntry* w;
    mem::Buffer b;
    std::size_t off, disp;
    const mpi::Datatype* t;
    if (const int rc = rma_args(origin, origin_count, origin_type,
                                target_count, target_type, win, target_disp,
                                &w, &b, &off, &t, &disp)) {
      return rc;
    }
    w->win->put(b, off, origin_count, *t, target_rank, disp);
    return MPI_SUCCESS;
  });
}

int MPI_Get(void* origin, int origin_count, MPI_Datatype origin_type,
            int target_rank, std::size_t target_disp, int target_count,
            MPI_Datatype target_type, MPI_Win win) {
  return guarded_w(win, [&]() -> int {
    RankEnv::WinEntry* w;
    mem::Buffer b;
    std::size_t off, disp;
    const mpi::Datatype* t;
    if (const int rc = rma_args(origin, origin_count, origin_type,
                                target_count, target_type, win, target_disp,
                                &w, &b, &off, &t, &disp)) {
      return rc;
    }
    w->win->get(b, off, origin_count, *t, target_rank, disp);
    return MPI_SUCCESS;
  });
}

int MPI_Accumulate(const void* origin, int origin_count,
                   MPI_Datatype origin_type, int target_rank,
                   std::size_t target_disp, int target_count,
                   MPI_Datatype target_type, MPI_Op op, MPI_Win win) {
  return guarded_w(win, [&]() -> int {
    mpi::Op o;
    if (!rma_op_of(op, &o)) return MPI_ERR_OP;
    RankEnv::WinEntry* w;
    mem::Buffer b;
    std::size_t off, disp;
    const mpi::Datatype* t;
    if (const int rc = rma_args(origin, origin_count, origin_type,
                                target_count, target_type, win, target_disp,
                                &w, &b, &off, &t, &disp)) {
      return rc;
    }
    w->win->accumulate(b, off, origin_count, *t, o, target_rank, disp);
    return MPI_SUCCESS;
  });
}

int MPI_Rput(const void* origin, int origin_count, MPI_Datatype origin_type,
             int target_rank, std::size_t target_disp, int target_count,
             MPI_Datatype target_type, MPI_Win win, MPI_Request* request) {
  return guarded_w(win, [&]() -> int {
    RankEnv::WinEntry* w;
    mem::Buffer b;
    std::size_t off, disp;
    const mpi::Datatype* t;
    if (const int rc = rma_args(origin, origin_count, origin_type,
                                target_count, target_type, win, target_disp,
                                &w, &b, &off, &t, &disp)) {
      return rc;
    }
    *request =
        stash_request(w->win->rput(b, off, origin_count, *t, target_rank, disp));
    return MPI_SUCCESS;
  });
}

int MPI_Rget(void* origin, int origin_count, MPI_Datatype origin_type,
             int target_rank, std::size_t target_disp, int target_count,
             MPI_Datatype target_type, MPI_Win win, MPI_Request* request) {
  return guarded_w(win, [&]() -> int {
    RankEnv::WinEntry* w;
    mem::Buffer b;
    std::size_t off, disp;
    const mpi::Datatype* t;
    if (const int rc = rma_args(origin, origin_count, origin_type,
                                target_count, target_type, win, target_disp,
                                &w, &b, &off, &t, &disp)) {
      return rc;
    }
    *request =
        stash_request(w->win->rget(b, off, origin_count, *t, target_rank, disp));
    return MPI_SUCCESS;
  });
}

// --- Launcher -----------------------------------------------------------------------

sim::Time run(mpi::RunConfig config, int (*rank_main)(int, char**), int argc,
              char** argv) {
  return mpi::run_mpi(std::move(config), [&](mpi::RankCtx& ctx) {
    RankEnv local;
    local.ctx = &ctx;
    // The env lives on this rank's (fiber) stack; publish it through the
    // process's ambient slot so shim calls find it via Process::current().
    // The guard also unpublishes on exceptional unwinds (engine teardown).
    struct AmbientGuard {
      sim::Process& p;
      ~AmbientGuard() { p.set_ambient(nullptr); }
    } guard{ctx.proc};
    ctx.proc.set_ambient(&local);
    const int rc = rank_main(argc, argv);
    if (rc != 0) {
      throw mpi::MpiError("rank main returned " + std::to_string(rc));
    }
    if (local.initialized && !local.finalized) {
      throw mpi::MpiError("rank main returned without MPI_Finalize");
    }
  });
}

}  // namespace dcfa::capi
