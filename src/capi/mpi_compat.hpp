#pragma once

// Classic MPI C API over DCFA-MPI.
//
// The paper's portability argument — "the MPI applications running on the
// host could be easily moved to co-processors" — presumes programs written
// against the familiar MPI C interface. This shim provides that surface:
// MPI_Init/MPI_Send/MPI_Allreduce/... with MPI_COMM_WORLD, wildcards,
// MPI_Status and error codes, so paper-era C-style programs port with two
// mechanical changes:
//
//  1. memory that MPI touches comes from MPI_Alloc_mem (the simulator needs
//     to know which device memory a pointer lives in), and
//  2. the program's `main` is handed to dcfa::capi::run(), which plays the
//     mpirun/mcexec role and executes it once per rank.
//
// Every rank runs on its own simulated process (OS thread), so the ambient
// "current rank" state is thread_local — the same trick real MPI plays with
// per-process globals.
//
// Unsupported corners fail loudly with MPI_ERR_* codes or exceptions; see
// tests/test_capi.cpp for the covered surface.

#include <cstddef>

#include "mpi/runtime.hpp"

namespace dcfa::capi {

// --- Handles and constants ---------------------------------------------------

using MPI_Comm = int;
constexpr MPI_Comm MPI_COMM_NULL = -1;
constexpr MPI_Comm MPI_COMM_WORLD = 0;
constexpr MPI_Comm MPI_COMM_SELF = 1;

using MPI_Datatype = int;
constexpr MPI_Datatype MPI_BYTE = 0;
constexpr MPI_Datatype MPI_CHAR = 1;
constexpr MPI_Datatype MPI_INT = 2;
constexpr MPI_Datatype MPI_FLOAT = 3;
constexpr MPI_Datatype MPI_DOUBLE = 4;
constexpr MPI_Datatype MPI_LONG_LONG = 5;

using MPI_Op = int;
constexpr MPI_Op MPI_SUM = 0;
constexpr MPI_Op MPI_PROD = 1;
constexpr MPI_Op MPI_MAX = 2;
constexpr MPI_Op MPI_MIN = 3;
/// RMA-only (MPI_Accumulate): element-wise overwrite.
constexpr MPI_Op MPI_REPLACE = 4;

constexpr int MPI_ANY_SOURCE = mpi::kAnySource;
constexpr int MPI_ANY_TAG = mpi::kAnyTag;
constexpr int MPI_PROC_NULL = -3;
constexpr int MPI_UNDEFINED = -32766;

struct MPI_Status {
  int MPI_SOURCE = MPI_ANY_SOURCE;
  int MPI_TAG = MPI_ANY_TAG;
  int MPI_ERROR = 0;
  std::size_t count_bytes_ = 0;  // internal, read via MPI_Get_count
};
inline MPI_Status* const MPI_STATUS_IGNORE = nullptr;
inline MPI_Status* const MPI_STATUSES_IGNORE = nullptr;

/// Request handles are generation-counted: the slot index lives in the low
/// 16 bits, a generation stamp in the next 15, so a handle copied before
/// its request completed is detected as stale (completion calls on it
/// succeed idempotently) instead of aliasing a recycled slot.
using MPI_Request = int;
constexpr MPI_Request MPI_REQUEST_NULL = -1;

/// Window handles share the request handles' generation-counting layout
/// (slot in the low 16 bits, generation stamp above), so a handle copied
/// before MPI_Win_free was called on another copy is detected as stale —
/// freeing it again succeeds idempotently instead of aliasing a recycled
/// slot.
using MPI_Win = int;
constexpr MPI_Win MPI_WIN_NULL = -1;

constexpr int MPI_LOCK_SHARED = 1;
constexpr int MPI_LOCK_EXCLUSIVE = 2;

enum : int {
  MPI_SUCCESS = 0,
  MPI_ERR_COMM = 1,
  MPI_ERR_TYPE = 2,
  MPI_ERR_OP = 3,
  MPI_ERR_RANK = 4,
  MPI_ERR_TAG = 5,
  MPI_ERR_BUFFER = 6,
  MPI_ERR_REQUEST = 7,
  MPI_ERR_TRUNCATE = 8,
  MPI_ERR_OTHER = 9,
  MPIX_ERR_PROC_FAILED = 10,  ///< operation depended on a failed rank
  MPIX_ERR_REVOKED = 11,      ///< communicator was revoked
  MPI_ERR_WIN = 12,           ///< invalid window handle
};

/// Error handlers. The shim supports the two standard predefined handlers:
/// with MPI_ERRORS_ARE_FATAL (the default, as in MPI) an engine error
/// escapes as a C++ exception and kills the job; with MPI_ERRORS_RETURN the
/// call returns the matching MPI_ERR_*/MPIX_ERR_* code instead, which is
/// what a fault-tolerant program needs to see MPIX_ERR_PROC_FAILED and
/// react with MPIX_Comm_revoke/shrink.
using MPI_Errhandler = int;
constexpr MPI_Errhandler MPI_ERRORS_ARE_FATAL = 0;
constexpr MPI_Errhandler MPI_ERRORS_RETURN = 1;

// --- Environment --------------------------------------------------------------

int MPI_Init(int* argc, char*** argv);
int MPI_Finalize();
int MPI_Initialized(int* flag);
int MPI_Abort(MPI_Comm comm, int errorcode);
double MPI_Wtime();

/// Allocate device memory MPI calls may reference. All buffers passed to
/// communication calls must come from here (or lie inside such a block).
int MPI_Alloc_mem(std::size_t size, void* info_ignored, void* baseptr);
int MPI_Free_mem(void* base);

// --- Communicators -------------------------------------------------------------

int MPI_Comm_rank(MPI_Comm comm, int* rank);
int MPI_Comm_size(MPI_Comm comm, int* size);
int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm);
int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm);
int MPI_Comm_free(MPI_Comm* comm);
int MPI_Comm_set_errhandler(MPI_Comm comm, MPI_Errhandler errhandler);

// --- Fault tolerance (ULFM-style MPIX extensions) ----------------------------
//
// The recovery workflow after a peer dies mid-run: an operation fails with
// MPIX_ERR_PROC_FAILED (visible under MPI_ERRORS_RETURN), the application
// calls MPIX_Comm_revoke to interrupt everyone else's pending operations on
// the communicator, then MPIX_Comm_shrink to agree on the survivor set and
// continue on the new, smaller communicator.

/// Revoke `comm`: non-collective; poisons local pending operations on it
/// and floods a revocation notice so every member's operations fail with
/// MPIX_ERR_REVOKED instead of hanging.
int MPIX_Comm_revoke(MPI_Comm comm);

/// Collective over survivors: agree on the failed set and build a new
/// communicator containing only live ranks. Works on revoked communicators.
int MPIX_Comm_shrink(MPI_Comm comm, MPI_Comm* newcomm);

/// Fault-tolerant agreement: *flag becomes the bitwise OR of every live
/// member's input. Completes even if members die mid-vote.
int MPIX_Comm_agree(MPI_Comm comm, int* flag);

// --- Point-to-point --------------------------------------------------------------

int MPI_Send(const void* buf, int count, MPI_Datatype type, int dest,
             int tag, MPI_Comm comm);
int MPI_Ssend(const void* buf, int count, MPI_Datatype type, int dest,
              int tag, MPI_Comm comm);
int MPI_Recv(void* buf, int count, MPI_Datatype type, int source, int tag,
             MPI_Comm comm, MPI_Status* status);
int MPI_Isend(const void* buf, int count, MPI_Datatype type, int dest,
              int tag, MPI_Comm comm, MPI_Request* request);
int MPI_Irecv(void* buf, int count, MPI_Datatype type, int source, int tag,
              MPI_Comm comm, MPI_Request* request);
int MPI_Wait(MPI_Request* request, MPI_Status* status);
int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses);
/// Block until one of the (non-null) requests completes; *index gets its
/// position, or MPI_UNDEFINED when every entry is MPI_REQUEST_NULL.
int MPI_Waitany(int count, MPI_Request* requests, int* index,
                MPI_Status* status);
int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status);
int MPI_Testall(int count, MPI_Request* requests, int* flag,
                MPI_Status* statuses);
int MPI_Testany(int count, MPI_Request* requests, int* index, int* flag,
                MPI_Status* status);
/// Release the handle without waiting; an in-flight operation still runs to
/// completion inside the engine (its state is reference-counted).
int MPI_Request_free(MPI_Request* request);
int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status);
int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag,
               MPI_Status* status);
int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 int dest, int sendtag, void* recvbuf, int recvcount,
                 MPI_Datatype recvtype, int source, int recvtag,
                 MPI_Comm comm, MPI_Status* status);
int MPI_Get_count(const MPI_Status* status, MPI_Datatype type, int* count);

// --- Collectives ------------------------------------------------------------------

int MPI_Barrier(MPI_Comm comm);
int MPI_Bcast(void* buffer, int count, MPI_Datatype type, int root,
              MPI_Comm comm);
int MPI_Reduce(const void* sendbuf, void* recvbuf, int count,
               MPI_Datatype type, MPI_Op op, int root, MPI_Comm comm);
int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count,
                  MPI_Datatype type, MPI_Op op, MPI_Comm comm);
/// Reduce size*recvcount elements and scatter one recvcount-element block
/// to each rank (runs the collectives engine's ring reduce-scatter).
int MPI_Reduce_scatter_block(const void* sendbuf, void* recvbuf,
                             int recvcount, MPI_Datatype type, MPI_Op op,
                             MPI_Comm comm);
int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
               void* recvbuf, int recvcount, MPI_Datatype recvtype, int root,
               MPI_Comm comm);
int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                void* recvbuf, int recvcount, MPI_Datatype recvtype,
                int root, MPI_Comm comm);
int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                  void* recvbuf, int recvcount, MPI_Datatype recvtype,
                  MPI_Comm comm);
int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 MPI_Comm comm);
int MPI_Scan(const void* sendbuf, void* recvbuf, int count,
             MPI_Datatype type, MPI_Op op, MPI_Comm comm);

// --- Nonblocking collectives -------------------------------------------------------
//
// Each returns immediately with a request that completes under
// MPI_Wait/Test/Waitall/Waitany/Testall/Testany, freely mixed with
// point-to-point requests. The schedule advances whenever this rank waits
// or tests on anything; buffers must not be touched until completion.

int MPI_Ibarrier(MPI_Comm comm, MPI_Request* request);
int MPI_Ibcast(void* buffer, int count, MPI_Datatype type, int root,
               MPI_Comm comm, MPI_Request* request);
int MPI_Iallreduce(const void* sendbuf, void* recvbuf, int count,
                   MPI_Datatype type, MPI_Op op, MPI_Comm comm,
                   MPI_Request* request);
int MPI_Iallgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                   void* recvbuf, int recvcount, MPI_Datatype recvtype,
                   MPI_Comm comm, MPI_Request* request);
int MPI_Ireduce_scatter_block(const void* sendbuf, void* recvbuf,
                              int recvcount, MPI_Datatype type, MPI_Op op,
                              MPI_Comm comm, MPI_Request* request);

// --- One-sided (MPI-3 RMA) ----------------------------------------------------
//
// Windows over mpi::Window (src/mpi/window.hpp): fence and passive-target
// synchronisation, Put/Get/Accumulate, request-returning Rput/Rget whose
// requests mix freely with every other kind in MPI_Wait*/Test*. Target
// displacements are scaled by the window's disp_unit. Each window carries
// its own error handler (MPI_Win_set_errhandler): under MPI_ERRORS_RETURN,
// passive-target operations toward a dead rank return MPIX_ERR_PROC_FAILED
// instead of hanging.

/// Expose `size` bytes at `base` (memory from MPI_Alloc_mem). Collective.
int MPI_Win_create(void* base, std::size_t size, int disp_unit,
                   void* info_ignored, MPI_Comm comm, MPI_Win* win);
/// Allocate `size` bytes and expose them; *baseptr receives the memory,
/// which lives until MPI_Win_free. Collective.
int MPI_Win_allocate(std::size_t size, int disp_unit, void* info_ignored,
                     MPI_Comm comm, void* baseptr, MPI_Win* win);
/// Collective teardown; *win becomes MPI_WIN_NULL. Freeing a stale handle
/// copy succeeds idempotently.
int MPI_Win_free(MPI_Win* win);
int MPI_Win_fence(int assert_ignored, MPI_Win win);
int MPI_Win_lock(int lock_type, int rank, int assert_ignored, MPI_Win win);
int MPI_Win_lock_all(int assert_ignored, MPI_Win win);
int MPI_Win_unlock(int rank, MPI_Win win);
int MPI_Win_unlock_all(MPI_Win win);
int MPI_Win_flush(int rank, MPI_Win win);
int MPI_Win_flush_local(int rank, MPI_Win win);
int MPI_Win_set_errhandler(MPI_Win win, MPI_Errhandler errhandler);

int MPI_Put(const void* origin, int origin_count, MPI_Datatype origin_type,
            int target_rank, std::size_t target_disp, int target_count,
            MPI_Datatype target_type, MPI_Win win);
int MPI_Get(void* origin, int origin_count, MPI_Datatype origin_type,
            int target_rank, std::size_t target_disp, int target_count,
            MPI_Datatype target_type, MPI_Win win);
int MPI_Accumulate(const void* origin, int origin_count,
                   MPI_Datatype origin_type, int target_rank,
                   std::size_t target_disp, int target_count,
                   MPI_Datatype target_type, MPI_Op op, MPI_Win win);
int MPI_Rput(const void* origin, int origin_count, MPI_Datatype origin_type,
             int target_rank, std::size_t target_disp, int target_count,
             MPI_Datatype target_type, MPI_Win win, MPI_Request* request);
int MPI_Rget(void* origin, int origin_count, MPI_Datatype origin_type,
             int target_rank, std::size_t target_disp, int target_count,
             MPI_Datatype target_type, MPI_Win win, MPI_Request* request);

// --- Launcher ----------------------------------------------------------------------

/// The mpirun/mcexec role: build the simulated cluster, run `rank_main`
/// once per rank (each on its own simulated Phi/host process), return the
/// virtual time the job took. `rank_main` must call MPI_Init and
/// MPI_Finalize like any MPI program.
sim::Time run(mpi::RunConfig config, int (*rank_main)(int, char**),
              int argc = 0, char** argv = nullptr);

}  // namespace dcfa::capi
