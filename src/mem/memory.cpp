#include "mem/memory.hpp"

#include <cstring>

namespace dcfa::mem {

const char* domain_name(Domain d) {
  return d == Domain::HostDram ? "host" : "phi";
}

namespace {
std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}
// Distinct simulated address bases per (node, domain) so that a stray
// address from the wrong space can never resolve by accident.
SimAddr base_for(NodeId node, Domain d) {
  return (static_cast<SimAddr>(node + 1) << 40) |
         (d == Domain::PhiGddr ? (1ull << 39) : 0);
}
}  // namespace

AddressSpace::AddressSpace(NodeId node, Domain domain,
                           std::size_t capacity_bytes)
    : node_(node),
      domain_(domain),
      capacity_(capacity_bytes),
      next_addr_(base_for(node, domain) + kPage) {}

Buffer AddressSpace::alloc(std::size_t size, std::size_t align) {
  if (size == 0) throw std::invalid_argument("AddressSpace::alloc: size 0");
  if (align == 0 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("AddressSpace::alloc: bad alignment");
  }
  if (in_use_ + size > capacity_) {
    throw OutOfMemory(std::string(domain_name(domain_)) +
                      " memory exhausted on node " + std::to_string(node_) +
                      " (" + std::to_string(in_use_) + " in use, " +
                      std::to_string(size) + " requested)");
  }
  SimAddr addr = round_up(next_addr_, align);
  // Leave a guard gap so off-by-one windows never touch a neighbour.
  next_addr_ = round_up(addr + size + kPage, kPage);

  Region region;
  region.storage = std::make_unique<std::byte[]>(size);
  region.size = size;
  std::memset(region.storage.get(), 0, size);

  Buffer buf;
  buf.data_ = region.storage.get();
  buf.size_ = size;
  buf.addr_ = addr;
  buf.domain_ = domain_;
  buf.node_ = node_;

  regions_.emplace(addr, std::move(region));
  in_use_ += size;
  return buf;
}

void AddressSpace::free(const Buffer& buf) {
  auto it = regions_.find(buf.addr());
  if (it == regions_.end()) {
    throw BadAddress("AddressSpace::free: unknown buffer");
  }
  in_use_ -= it->second.size;
  regions_.erase(it);
}

std::byte* AddressSpace::resolve(SimAddr addr, std::size_t len) {
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) {
    throw BadAddress("DMA fault: address " + std::to_string(addr) +
                     " not mapped in " + domain_name(domain_) + " of node " +
                     std::to_string(node_));
  }
  --it;
  const SimAddr start = it->first;
  const Region& region = it->second;
  if (addr < start || addr + len > start + region.size) {
    throw BadAddress("DMA fault: window [" + std::to_string(addr) + ", +" +
                     std::to_string(len) + ") escapes allocation in " +
                     domain_name(domain_) + " of node " +
                     std::to_string(node_));
  }
  return region.storage.get() + (addr - start);
}

bool AddressSpace::contains(SimAddr addr, std::size_t len) const {
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) return false;
  --it;
  return addr >= it->first && addr + len <= it->first + it->second.size;
}

NodeMemory::NodeMemory(NodeId node, std::size_t host_bytes,
                       std::size_t phi_bytes)
    : node_(node),
      host_(node, Domain::HostDram, host_bytes),
      phi_(node, Domain::PhiGddr, phi_bytes) {}

AddressSpace& NodeMemory::space(Domain d) {
  return d == Domain::HostDram ? host_ : phi_;
}

const AddressSpace& NodeMemory::space(Domain d) const {
  return d == Domain::HostDram ? host_ : phi_;
}

}  // namespace dcfa::mem
