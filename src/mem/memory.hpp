#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dcfa::mem {

/// Which physical memory a buffer lives in. The whole paper is about the
/// difference between these two: HCA-initiated reads from PhiGddr are the
/// bottleneck that the offloading send buffer works around.
enum class Domain { HostDram, PhiGddr };

const char* domain_name(Domain d);

using NodeId = int;
using SimAddr = std::uint64_t;

class AddressSpace;

/// A chunk of simulated device memory. Real bytes live on the test-host heap
/// so protocols can be verified end-to-end; the simulated address is what
/// travels in RTS/RTR packets and what DMA engines resolve.
class Buffer {
 public:
  Buffer() = default;

  /// Buffer is a value handle to shared storage (like std::span): the
  /// pointer is writable even through a const handle.
  std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  SimAddr addr() const { return addr_; }
  Domain domain() const { return domain_; }
  NodeId node() const { return node_; }
  bool valid() const { return data_ != nullptr; }

  /// Simulated address one past the end.
  SimAddr end() const { return addr_ + size_; }

 private:
  friend class AddressSpace;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  SimAddr addr_ = 0;
  Domain domain_ = Domain::HostDram;
  NodeId node_ = -1;
};

struct OutOfMemory : std::runtime_error {
  using std::runtime_error::runtime_error;
};
struct BadAddress : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One node's memory in one domain. Hands out page-aligned regions at
/// monotonically increasing simulated addresses and resolves
/// (SimAddr, length) windows back to real storage for DMA.
class AddressSpace {
 public:
  static constexpr std::size_t kPage = 4096;

  AddressSpace(NodeId node, Domain domain, std::size_t capacity_bytes);

  /// Allocate `size` bytes aligned to `align` (power of two, >= 1).
  /// The returned Buffer stays valid until free() or destruction.
  Buffer alloc(std::size_t size, std::size_t align = 64);

  /// Release a buffer. Resolving inside it afterwards throws BadAddress.
  void free(const Buffer& buf);

  /// Resolve a simulated window to real bytes. Throws BadAddress when the
  /// window is not fully inside one live allocation — the simulated
  /// equivalent of a DMA engine faulting on an unmapped page.
  std::byte* resolve(SimAddr addr, std::size_t len);

  /// True when [addr, addr+len) is fully inside one live allocation.
  bool contains(SimAddr addr, std::size_t len) const;

  NodeId node() const { return node_; }
  Domain domain() const { return domain_; }
  std::size_t bytes_in_use() const { return in_use_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t live_allocations() const { return regions_.size(); }

 private:
  struct Region {
    std::unique_ptr<std::byte[]> storage;
    std::size_t size;
  };

  NodeId node_;
  Domain domain_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  SimAddr next_addr_;
  std::map<SimAddr, Region> regions_;  // keyed by start address
};

/// All memory of one node: a host DRAM space and a Phi GDDR space. The Phi
/// capacity default reflects the paper's note that "the memory consumption of
/// the test application is strictly limited" (no demand paging on the
/// micro-kernel).
class NodeMemory {
 public:
  explicit NodeMemory(NodeId node,
                      std::size_t host_bytes = 32ull << 30,
                      std::size_t phi_bytes = 6ull << 30);

  AddressSpace& space(Domain d);
  const AddressSpace& space(Domain d) const;

  Buffer alloc(Domain d, std::size_t size, std::size_t align = 64) {
    return space(d).alloc(size, align);
  }

  NodeId node() const { return node_; }

 private:
  NodeId node_;
  AddressSpace host_;
  AddressSpace phi_;
};

}  // namespace dcfa::mem
