#include "ib/fabric.hpp"

#include <stdexcept>

namespace dcfa::ib {

Hca& Fabric::add_hca(mem::NodeMemory& memory, pcie::PciePort& pcie) {
  Lid lid = next_lid_++;
  auto hca = std::make_unique<Hca>(engine_, *this, memory, pcie, platform_,
                                   lid);
  Hca& ref = *hca;
  hcas_.emplace(lid, std::move(hca));
  by_node_.emplace(memory.node(), &ref);
  return ref;
}

Hca& Fabric::hca_by_lid(Lid lid) {
  auto it = hcas_.find(lid);
  if (it == hcas_.end()) {
    throw std::invalid_argument("Fabric: unknown LID " + std::to_string(lid));
  }
  return *it->second;
}

Hca& Fabric::hca_for_node(mem::NodeId node) {
  auto it = by_node_.find(node);
  if (it == by_node_.end()) {
    throw std::invalid_argument("Fabric: no HCA on node " +
                                std::to_string(node));
  }
  return *it->second;
}

}  // namespace dcfa::ib
