#pragma once

#include <map>
#include <memory>

#include "ib/hca.hpp"
#include "sim/fault.hpp"
#include "sim/platform.hpp"

namespace dcfa::ib {

/// The InfiniBand subnet: one switch, one HCA per node. Owns the HCAs and
/// routes by LID. The switch itself is non-blocking; serialisation happens
/// at each HCA's egress/ingress ports.
class Fabric {
 public:
  Fabric(sim::Engine& engine, const sim::Platform& platform)
      : engine_(engine), platform_(platform) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Attach a new HCA for `node`. LIDs are assigned sequentially from 1.
  Hca& add_hca(mem::NodeMemory& memory, pcie::PciePort& pcie);

  Hca& hca_by_lid(Lid lid);
  Hca& hca_for_node(mem::NodeId node);

  /// End-to-end one-way wire propagation latency (all hops).
  sim::Time wire_latency() const {
    return platform_.ib_hop_latency * platform_.ib_hops;
  }

  sim::Engine& engine() { return engine_; }
  const sim::Platform& platform() const { return platform_; }

  /// Arm/disarm fault injection for every HCA on the subnet. The injector
  /// outlives the fabric (the Runtime owns both); nullptr disarms.
  void set_faults(sim::FaultInjector* faults) { faults_ = faults; }
  sim::FaultInjector* faults() { return faults_; }

 private:
  sim::Engine& engine_;
  const sim::Platform& platform_;
  sim::FaultInjector* faults_ = nullptr;
  Lid next_lid_ = 1;
  std::map<Lid, std::unique_ptr<Hca>> hcas_;
  std::map<mem::NodeId, Hca*> by_node_;
};

}  // namespace dcfa::ib
