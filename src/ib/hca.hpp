#pragma once

#include <map>
#include <memory>
#include <optional>

#include "ib/types.hpp"
#include "pcie/pcie.hpp"
#include "sim/platform.hpp"
#include "sim/resource.hpp"

namespace dcfa::ib {

class Hca;
class Fabric;

/// Protection domain: MRs and QPs created under different PDs cannot be
/// mixed (checked at post time, like real verbs).
class ProtectionDomain {
 public:
  ProtectionDomain(Hca& hca, int id) : hca_(hca), id_(id) {}
  int id() const { return id_; }
  Hca& hca() { return hca_; }

 private:
  Hca& hca_;
  int id_;
};

/// Registered memory region. Registration is the precondition for any HCA
/// access — the paper leans on this: registering from the Phi is expensive
/// (CMD offload), which motivates both the MR cache pool and the offloading
/// send buffer.
class MemoryRegion {
 public:
  MemoryRegion(ProtectionDomain& pd, mem::Domain domain, mem::SimAddr addr,
               std::size_t length, unsigned access, MKey lkey, MKey rkey)
      : pd_(pd),
        domain_(domain),
        addr_(addr),
        length_(length),
        access_(access),
        lkey_(lkey),
        rkey_(rkey) {}

  mem::SimAddr addr() const { return addr_; }
  std::size_t length() const { return length_; }
  mem::Domain domain() const { return domain_; }
  unsigned access() const { return access_; }
  MKey lkey() const { return lkey_; }
  MKey rkey() const { return rkey_; }
  ProtectionDomain& pd() const { return pd_; }

  bool covers(mem::SimAddr a, std::size_t len) const {
    return a >= addr_ && a + len <= addr_ + length_;
  }

 private:
  ProtectionDomain& pd_;
  mem::Domain domain_;
  mem::SimAddr addr_;
  std::size_t length_;
  unsigned access_;
  MKey lkey_;
  MKey rkey_;
};

enum class QpState { Reset, ReadyToSend, Error };

/// Reliable-connection queue pair.
class QueuePair {
 public:
  QueuePair(Hca& hca, ProtectionDomain& pd, CompletionQueue& send_cq,
            CompletionQueue& recv_cq, Qpn qpn)
      : hca_(hca), pd_(pd), send_cq_(send_cq), recv_cq_(recv_cq), qpn_(qpn) {}

  Qpn qpn() const { return qpn_; }
  QpState state() const { return state_; }
  Lid remote_lid() const { return remote_lid_; }
  Qpn remote_qpn() const { return remote_qpn_; }
  Hca& hca() { return hca_; }
  ProtectionDomain& pd() { return pd_; }
  CompletionQueue& send_cq() { return send_cq_; }
  CompletionQueue& recv_cq() { return recv_cq_; }

 private:
  friend class Hca;

  Hca& hca_;
  ProtectionDomain& pd_;
  CompletionQueue& send_cq_;
  CompletionQueue& recv_cq_;
  Qpn qpn_;
  QpState state_ = QpState::Reset;
  Lid remote_lid_ = 0;
  Qpn remote_qpn_ = 0;

  std::deque<RecvWr> recv_queue_;
  /// Sends that arrived before a receive was posted (RNR wait).
  struct PendingArrival {
    SendWr wr;
    Qpn src_qp;
    sim::Time arrival;
    Hca* src_hca;
  };
  int rnr_retries_left_ = 7;  ///< RC retry budget (ibv qp_attr rnr_retry)
  std::deque<PendingArrival> rnr_queue_;
  /// Enforces in-order completion per QP.
  sim::Time last_completion_ = 0;
};

/// Simulated ConnectX-3-style HCA. One per node, attached to that node's
/// memory (both domains) and to the fabric.
///
/// Timing model per work request: WQE fetch overhead, then a chunked
/// three-to-four stage pipeline (local DMA read -> egress wire -> ingress
/// wire -> remote DMA write) whose per-stage bandwidths depend on which
/// memory domain each end touches. The local-read stage against Phi GDDR is
/// the paper's bottleneck. Data really moves at completion time.
class Hca {
 public:
  Hca(sim::Engine& engine, Fabric& fabric, mem::NodeMemory& memory,
      pcie::PciePort& pcie, const sim::Platform& platform, Lid lid);

  Hca(const Hca&) = delete;
  Hca& operator=(const Hca&) = delete;

  Lid lid() const { return lid_; }
  mem::NodeId node() const { return memory_.node(); }
  sim::Engine& engine() { return engine_; }
  mem::NodeMemory& memory() { return memory_; }
  const sim::Platform& platform() const { return platform_; }

  // --- Resource creation (host-driver side; the Phi must delegate) --------
  // [[nodiscard]]: a discarded handle is a leak the simulation never
  // reclaims (dcfa_lint unchecked-result rule).
  [[nodiscard]] ProtectionDomain* alloc_pd();
  void dealloc_pd(ProtectionDomain* pd);

  [[nodiscard]] MemoryRegion* reg_mr(ProtectionDomain* pd, mem::Domain domain,
                                     mem::SimAddr addr, std::size_t length,
                                     unsigned access);
  void dereg_mr(MemoryRegion* mr);

  [[nodiscard]] CompletionQueue* create_cq(int capacity);
  void destroy_cq(CompletionQueue* cq);

  [[nodiscard]] QueuePair* create_qp(ProtectionDomain* pd,
                                     CompletionQueue* send_cq,
                                     CompletionQueue* recv_cq);
  void destroy_qp(QueuePair* qp);

  /// Bring the QP to ReadyToSend, bound to (remote_lid, remote_qpn). Both
  /// sides must connect before traffic flows (tests verify misuse throws).
  void connect(QueuePair* qp, Lid remote_lid, Qpn remote_qpn);

  // --- Data path -----------------------------------------------------------
  /// Post a send-side WR. Pure HCA-side behaviour: the *caller* models its
  /// own CPU post overhead (host vs Phi core).
  void post_send(QueuePair* qp, SendWr wr);
  void post_recv(QueuePair* qp, RecvWr wr);

  /// Look up an MR by its local key / remote key.
  MemoryRegion* mr_by_lkey(MKey lkey);
  MemoryRegion* mr_by_rkey(MKey rkey);

  /// Register a callback fired whenever an inbound RDMA write lands in this
  /// node's memory. This is the simulator's stand-in for the eager-ring
  /// tail-polling loop of the paper's protocol: instead of a rank burning a
  /// core re-reading the tail byte, the landing event wakes it and it then
  /// pays the modelled poll cost when it inspects the ring.
  /// Returns an id for remove_remote_write_observer (components with a
  /// shorter lifetime than the HCA must deregister before dying).
  std::size_t add_remote_write_observer(std::function<void()> cb) {
    remote_write_observers_.push_back(std::move(cb));
    return remote_write_observers_.size() - 1;
  }
  void remove_remote_write_observer(std::size_t id) {
    if (id < remote_write_observers_.size()) {
      remote_write_observers_[id] = nullptr;
    }
  }

  /// Per-direction DMA stage resources (exposed for tests and stats).
  /// PCIe is full duplex: the HCA's inbound (memory-read) and outbound
  /// (memory-write) DMA streams are independent resources.
  sim::Resource& dma_read() { return dma_read_; }
  sim::Resource& dma_write() { return dma_write_; }
  sim::Resource& egress() { return egress_; }
  sim::Resource& ingress() { return ingress_; }

  std::uint64_t mrs_registered_total() const { return mr_reg_count_; }
  /// Payload bytes this HCA has injected into the wire (retransmissions
  /// count again — that is the point of tracking it).
  std::uint64_t egress_bytes() const { return egress_bytes_; }

 private:
  friend class Fabric;

  struct DmaCost {
    double gbps;
    sim::Time latency;
  };
  DmaCost read_cost(mem::Domain d) const;
  DmaCost write_cost(mem::Domain d) const;

  void execute_send(QueuePair* qp, SendWr wr);
  /// Runs on the *destination* HCA when a Send arrives; matches a posted
  /// receive or parks in the RNR queue.
  void deliver_send(QueuePair* dst_qp, SendWr wr, Qpn src_qpn, Hca& src_hca,
                    sim::Time arrival);
  void complete_matched_recv(QueuePair* dst_qp, SendWr wr, Qpn src_qpn,
                             Hca& src_hca, sim::Time start);

  /// Gather total byte length of an SGE list.
  static std::size_t total_length(const std::vector<Sge>& sges);

  /// Validate each SGE against an MR (lkey, bounds, pd). Returns the first
  /// failing status or nullopt when all pass.
  std::optional<WcStatus> check_sges(ProtectionDomain& pd,
                                     const std::vector<Sge>& sges,
                                     bool need_local_write);

  void complete(QueuePair* qp, CompletionQueue& cq, const SendWr& wr,
                WcOpcode op, WcStatus status, std::size_t bytes,
                sim::Time at);
  void fail_post(QueuePair* qp, const SendWr& wr, WcStatus status);

  sim::Engine& engine_;
  Fabric& fabric_;
  mem::NodeMemory& memory_;
  pcie::PciePort& pcie_;
  const sim::Platform& platform_;
  Lid lid_;

  sim::Resource dma_read_;   ///< HCA reading local memory (send side).
  sim::Resource dma_write_;  ///< HCA writing local memory (receive side).
  sim::Resource egress_;      ///< Wire injection port.
  sim::Resource ingress_;     ///< Wire delivery port.

  std::uint64_t egress_bytes_ = 0;
  int next_pd_id_ = 1;
  Qpn next_qpn_ = 100;
  MKey next_key_ = 0x1000;
  int next_cq_id_ = 1;
  std::uint64_t mr_reg_count_ = 0;

  std::map<int, std::unique_ptr<ProtectionDomain>> pds_;
  std::map<MKey, std::unique_ptr<MemoryRegion>> mrs_by_lkey_;
  std::map<MKey, MemoryRegion*> mrs_by_rkey_;
  std::map<int, std::unique_ptr<CompletionQueue>> cqs_;
  std::map<Qpn, std::unique_ptr<QueuePair>> qps_;
  std::vector<std::function<void()>> remote_write_observers_;

  void notify_remote_write() {
    for (auto& cb : remote_write_observers_) {
      if (cb) cb();
    }
  }
};

}  // namespace dcfa::ib
