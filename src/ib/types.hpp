#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "mem/memory.hpp"
#include "sim/process.hpp"

namespace dcfa::ib {

/// InfiniBand local identifier (one per HCA port in our single-port model).
using Lid = std::uint16_t;
/// Queue pair number, unique per HCA.
using Qpn = std::uint32_t;
/// Memory key (lkey/rkey).
using MKey = std::uint32_t;

/// MR access permissions (bitmask, mirrors IBV_ACCESS_*).
enum Access : unsigned {
  kLocalRead = 0,  // always allowed
  kLocalWrite = 1u << 0,
  kRemoteRead = 1u << 1,
  kRemoteWrite = 1u << 2,
};

/// Scatter/gather element. Addresses are simulated device addresses.
struct Sge {
  mem::SimAddr addr = 0;
  std::uint32_t length = 0;
  MKey lkey = 0;
};

enum class Opcode { Send, RdmaWrite, RdmaRead };

/// Send-side work request (ibv_send_wr).
struct SendWr {
  std::uint64_t wr_id = 0;
  std::vector<Sge> sg_list;
  Opcode opcode = Opcode::Send;
  bool signaled = true;
  /// For RDMA operations: remote window.
  mem::SimAddr remote_addr = 0;
  MKey rkey = 0;
  /// 32-bit immediate-style tag delivered with Send (used by tests).
  std::uint32_t imm_data = 0;
  /// Marks a WR the poster is prepared to retry: the fault injector only
  /// ever drops/errors faultable WRs. Protocol-critical unretryable writes
  /// (credit returns, one-sided window ops) leave this false.
  bool faultable = false;
};

/// Receive-side work request (ibv_recv_wr).
struct RecvWr {
  std::uint64_t wr_id = 0;
  std::vector<Sge> sg_list;
};

enum class WcStatus {
  Success,
  LocalProtectionError,   ///< SGE outside a valid local MR / bad lkey.
  RemoteAccessError,      ///< rkey/window rejected by the responder.
  RemoteInvalidRequest,   ///< e.g. send longer than the posted receive.
  WrFlushError,           ///< QP went to error state; WR flushed.
  RetryExceeded,          ///< transport retries exhausted (injected fault);
                          ///< soft error: the QP stays usable.
};

const char* wc_status_name(WcStatus s);

enum class WcOpcode { Send, RdmaWrite, RdmaRead, Recv };

/// Completion-queue entry (ibv_wc).
struct Wc {
  std::uint64_t wr_id = 0;
  WcStatus status = WcStatus::Success;
  WcOpcode opcode = WcOpcode::Send;
  std::uint32_t byte_len = 0;
  Qpn qp_num = 0;
  Qpn src_qp = 0;
  std::uint32_t imm_data = 0;
};

/// Completion queue: CQEs in completion order plus a virtual-time condition
/// notified on every arrival so processes can block instead of spinning.
class CompletionQueue {
 public:
  CompletionQueue(sim::Engine& engine, int capacity, int id)
      : capacity_(capacity), id_(id), cond_(engine, "cq") {}

  int id() const { return id_; }
  int capacity() const { return capacity_; }
  std::size_t depth() const { return entries_.size(); }

  /// Pop up to `max` completions into `out`. Returns count. Non-blocking;
  /// callers model their own poll overhead.
  int poll(int max, Wc* out) {
    int n = 0;
    while (n < max && !entries_.empty()) {
      out[n++] = entries_.front();
      entries_.pop_front();
    }
    return n;
  }

  /// HCA side: append a completion and wake pollers. Overrunning the CQ
  /// capacity throws — in real hardware this is a fatal CQ overrun, and in
  /// the simulator it means a missing poll loop, so fail loudly.
  void push(const Wc& wc) {
    if (entries_.size() >= static_cast<std::size_t>(capacity_)) {
      throw std::runtime_error("CQ overrun (capacity " +
                               std::to_string(capacity_) + ")");
    }
    entries_.push_back(wc);
    cond_.notify_all();
    if (on_push_) on_push_();
  }

  /// Condition notified on every new CQE.
  sim::Condition& arrival() { return cond_; }

  /// Optional hook fired on every push (lets an MPI progress engine funnel
  /// several CQs and ring events into one wake-up condition).
  void set_on_push(std::function<void()> cb) { on_push_ = std::move(cb); }

 private:
  int capacity_;
  int id_;
  std::deque<Wc> entries_;
  sim::Condition cond_;
  std::function<void()> on_push_;
};

}  // namespace dcfa::ib
