#include "ib/hca.hpp"

#include <cstring>
#include <stdexcept>

#include "ib/fabric.hpp"
#include "sim/check.hpp"
#include "sim/engine.hpp"
#include "sim/log.hpp"
#include "sim/trace.hpp"

namespace dcfa::ib {

const char* wc_status_name(WcStatus s) {
  switch (s) {
    case WcStatus::Success: return "success";
    case WcStatus::LocalProtectionError: return "local-protection-error";
    case WcStatus::RemoteAccessError: return "remote-access-error";
    case WcStatus::RemoteInvalidRequest: return "remote-invalid-request";
    case WcStatus::WrFlushError: return "wr-flush-error";
    case WcStatus::RetryExceeded: return "retry-exceeded";
  }
  return "?";
}

Hca::Hca(sim::Engine& engine, Fabric& fabric, mem::NodeMemory& memory,
         pcie::PciePort& pcie, const sim::Platform& platform, Lid lid)
    : engine_(engine),
      fabric_(fabric),
      memory_(memory),
      pcie_(pcie),
      platform_(platform),
      lid_(lid),
      dma_read_("hca.dma_rd[" + std::to_string(memory.node()) + "]"),
      dma_write_("hca.dma_wr[" + std::to_string(memory.node()) + "]"),
      egress_("hca.egress[" + std::to_string(memory.node()) + "]"),
      ingress_("hca.ingress[" + std::to_string(memory.node()) + "]") {}

ProtectionDomain* Hca::alloc_pd() {
  int id = next_pd_id_++;
  auto pd = std::make_unique<ProtectionDomain>(*this, id);
  ProtectionDomain* p = pd.get();
  pds_.emplace(id, std::move(pd));
  return p;
}

void Hca::dealloc_pd(ProtectionDomain* pd) {
  if (!pd || pds_.erase(pd->id()) == 0) {
    throw std::invalid_argument("dealloc_pd: unknown PD");
  }
}

MemoryRegion* Hca::reg_mr(ProtectionDomain* pd, mem::Domain domain,
                          mem::SimAddr addr, std::size_t length,
                          unsigned access) {
  if (!pd) throw std::invalid_argument("reg_mr: null PD");
  if (length == 0) throw std::invalid_argument("reg_mr: zero length");
  if (!memory_.space(domain).contains(addr, length)) {
    throw mem::BadAddress("reg_mr: window not backed by an allocation");
  }
  MKey lkey = next_key_++;
  MKey rkey = next_key_++;
  auto mr = std::make_unique<MemoryRegion>(*pd, domain, addr, length, access,
                                           lkey, rkey);
  MemoryRegion* p = mr.get();
  mrs_by_lkey_.emplace(lkey, std::move(mr));
  mrs_by_rkey_.emplace(rkey, p);
  ++mr_reg_count_;
  engine_.checker().mr_registered(pd, lkey, rkey, addr, length);
  return p;
}

void Hca::dereg_mr(MemoryRegion* mr) {
  if (!mr) throw std::invalid_argument("dereg_mr: null MR");
  engine_.checker().mr_deregistered(&mr->pd(), mr->lkey(), mr->rkey());
  mrs_by_rkey_.erase(mr->rkey());
  if (mrs_by_lkey_.erase(mr->lkey()) == 0) {
    throw std::invalid_argument("dereg_mr: unknown MR");
  }
}

CompletionQueue* Hca::create_cq(int capacity) {
  if (capacity <= 0) throw std::invalid_argument("create_cq: bad capacity");
  int id = next_cq_id_++;
  auto cq = std::make_unique<CompletionQueue>(engine_, capacity, id);
  CompletionQueue* p = cq.get();
  cqs_.emplace(id, std::move(cq));
  return p;
}

void Hca::destroy_cq(CompletionQueue* cq) {
  if (!cq || cqs_.erase(cq->id()) == 0) {
    throw std::invalid_argument("destroy_cq: unknown CQ");
  }
}

QueuePair* Hca::create_qp(ProtectionDomain* pd, CompletionQueue* send_cq,
                          CompletionQueue* recv_cq) {
  if (!pd || !send_cq || !recv_cq) {
    throw std::invalid_argument("create_qp: null argument");
  }
  Qpn qpn = next_qpn_++;
  auto qp = std::make_unique<QueuePair>(*this, *pd, *send_cq, *recv_cq, qpn);
  QueuePair* p = qp.get();
  qps_.emplace(qpn, std::move(qp));
  return p;
}

void Hca::destroy_qp(QueuePair* qp) {
  if (!qp || qps_.erase(qp->qpn()) == 0) {
    throw std::invalid_argument("destroy_qp: unknown QP");
  }
}

void Hca::connect(QueuePair* qp, Lid remote_lid, Qpn remote_qpn) {
  if (!qp) throw std::invalid_argument("connect: null QP");
  qp->remote_lid_ = remote_lid;
  qp->remote_qpn_ = remote_qpn;
  qp->state_ = QpState::ReadyToSend;
}

MemoryRegion* Hca::mr_by_lkey(MKey lkey) {
  auto it = mrs_by_lkey_.find(lkey);
  return it == mrs_by_lkey_.end() ? nullptr : it->second.get();
}

MemoryRegion* Hca::mr_by_rkey(MKey rkey) {
  auto it = mrs_by_rkey_.find(rkey);
  return it == mrs_by_rkey_.end() ? nullptr : it->second;
}

Hca::DmaCost Hca::read_cost(mem::Domain d) const {
  if (d == mem::Domain::HostDram) {
    return {platform_.hca_read_host_gbps, platform_.hca_read_host_latency};
  }
  return {platform_.hca_read_phi_gbps, platform_.hca_read_phi_latency};
}

Hca::DmaCost Hca::write_cost(mem::Domain d) const {
  if (d == mem::Domain::HostDram) {
    return {platform_.hca_write_host_gbps, platform_.hca_write_host_latency};
  }
  return {platform_.hca_write_phi_gbps, platform_.hca_write_phi_latency};
}

std::size_t Hca::total_length(const std::vector<Sge>& sges) {
  std::size_t n = 0;
  for (const Sge& s : sges) n += s.length;
  return n;
}

std::optional<WcStatus> Hca::check_sges(ProtectionDomain& pd,
                                        const std::vector<Sge>& sges,
                                        bool need_local_write) {
  for (const Sge& s : sges) {
    if (s.length == 0) continue;
    // Fail fast on a dead or mis-sized key before the HCA-model lookup: the
    // checker has the registration ledger, so a use-after-dereg surfaces as
    // a structured violation instead of a generic protection error.
    engine_.checker().mr_used(&pd, s.lkey, s.addr, s.length);
    MemoryRegion* mr = mr_by_lkey(s.lkey);
    if (!mr || &mr->pd() != &pd || !mr->covers(s.addr, s.length)) {
      return WcStatus::LocalProtectionError;
    }
    if (need_local_write && !(mr->access() & kLocalWrite)) {
      return WcStatus::LocalProtectionError;
    }
  }
  return std::nullopt;
}

void Hca::complete(QueuePair* qp, CompletionQueue& cq, const SendWr& wr,
                   WcOpcode op, WcStatus status, std::size_t bytes,
                   sim::Time at) {
  // Completions on one QP are delivered in posting order.
  if (at <= qp->last_completion_) at = qp->last_completion_ + 1;
  qp->last_completion_ = at;
  Wc wc;
  wc.wr_id = wr.wr_id;
  wc.status = status;
  wc.opcode = op;
  wc.byte_len = static_cast<std::uint32_t>(bytes);
  wc.qp_num = qp->qpn();
  wc.imm_data = wr.imm_data;
  engine_.schedule_at(at, [&cq, wc] { cq.push(wc); });
}

void Hca::fail_post(QueuePair* qp, const SendWr& wr, WcStatus status) {
  qp->state_ = QpState::Error;
  sim::Log::error(engine_.now(), "hca", "WR %llu failed: %s",
                  static_cast<unsigned long long>(wr.wr_id),
                  wc_status_name(status));
  complete(qp, qp->send_cq(), wr, WcOpcode::Send, status, 0,
           engine_.now() + platform_.hca_wqe_overhead);
}

void Hca::post_send(QueuePair* qp, SendWr wr) {
  if (!qp) throw std::invalid_argument("post_send: null QP");
  if (qp->state_ == QpState::Error) {
    complete(qp, qp->send_cq(), wr, WcOpcode::Send, WcStatus::WrFlushError, 0,
             engine_.now());
    return;
  }
  if (qp->state_ != QpState::ReadyToSend) {
    throw std::logic_error("post_send: QP not connected");
  }
  execute_send(qp, std::move(wr));
}

void Hca::post_recv(QueuePair* qp, RecvWr wr) {
  if (!qp) throw std::invalid_argument("post_recv: null QP");
  if (auto bad = check_sges(qp->pd(), wr.sg_list, /*need_local_write=*/true)) {
    throw std::logic_error("post_recv: bad SGE: " + std::string(
        wc_status_name(*bad)));
  }
  qp->recv_queue_.push_back(std::move(wr));
  if (!qp->rnr_queue_.empty()) {
    // A sender got an RNR NAK for this queue: after the retry timer it
    // retransmits the whole message (reliable connection semantics — the
    // responder buffers nothing).
    auto pending = std::move(qp->rnr_queue_.front());
    qp->rnr_queue_.pop_front();
    const sim::Time retry_at = engine_.now() + platform_.rnr_retry_delay;
    Hca* src = pending.src_hca;
    engine_.schedule_at(retry_at, [src, pending = std::move(pending)] {
      auto it = src->qps_.find(pending.src_qp);
      if (it == src->qps_.end()) return;  // requester torn down
      src->execute_send(it->second.get(), pending.wr);
    });
  }
}

void Hca::execute_send(QueuePair* qp, SendWr wr) {
  sim::Time start = engine_.now() + platform_.hca_wqe_overhead;
  const std::size_t bytes = total_length(wr.sg_list);

  // Local SGE validation. RDMA-read WRs *write* locally.
  const bool local_write = wr.opcode == Opcode::RdmaRead;
  if (auto bad = check_sges(qp->pd(), wr.sg_list, local_write)) {
    fail_post(qp, wr, *bad);
    return;
  }

  Hca& remote = fabric_.hca_by_lid(qp->remote_lid_);
  QueuePair* remote_qp = nullptr;
  {
    auto it = remote.qps_.find(qp->remote_qpn_);
    if (it == remote.qps_.end()) {
      fail_post(qp, wr, WcStatus::RemoteAccessError);
      return;
    }
    remote_qp = it->second.get();
  }
  // Loopback (both QPs on this HCA): no wire to cross. Intra-node traffic
  // between co-located ranks is bounded by local memory bandwidth instead —
  // the regime the paper's related work (intra-MIC MPI over shared memory,
  // Section III-C) lives in.
  const bool loopback = &remote == this;
  const sim::Time wire_lat = loopback ? 0 : fabric_.wire_latency();

  // Fault injection: decide this WR's fate once, before any data motion.
  // Only WRs the poster marked faultable participate, so the default path
  // pays a single branch here.
  auto fate = sim::FaultInjector::WcFate::Deliver;
  if (sim::FaultInjector* fi = fabric_.faults(); fi && wr.faultable) {
    if (const sim::Time d = fi->dma_delay(); d > 0) {
      start += d;
      sim::trace_instant("node" + std::to_string(node()) + ".hca",
                         "fault:dma-delay", engine_.now());
    }
    fate = fi->wc_fate();
    if (fate == sim::FaultInjector::WcFate::Fatal) {
      // The QP wedges in the error state for good: this WR gets an error
      // CQE after the round trip, and every later post flushes immediately
      // (WrFlushError). Only connection re-establishment — destroy, create,
      // re-connect — revives the endpoint; that is mpi::Engine's job.
      qp->state_ = QpState::Error;
      sim::trace_instant("node" + std::to_string(node()) + ".hca",
                         "fault:qp-fatal", engine_.now());
      sim::Log::trace(engine_.now(), "hca", "fault: wedging QP %u on WR %llu",
                      qp->qpn(), static_cast<unsigned long long>(wr.wr_id));
      const WcOpcode op = wr.opcode == Opcode::Send ? WcOpcode::Send
                          : wr.opcode == Opcode::RdmaWrite
                              ? WcOpcode::RdmaWrite
                              : WcOpcode::RdmaRead;
      complete(qp, qp->send_cq(), wr, op, WcStatus::RetryExceeded, 0,
               start + 2 * wire_lat);
      return;
    }
    if (fate == sim::FaultInjector::WcFate::Error) {
      // The transport gave up on this WR after its internal retries. Soft
      // failure: no data moved, the QP stays ReadyToSend, the poster sees
      // an error CQE one round trip later and owns recovery.
      sim::trace_instant("node" + std::to_string(node()) + ".hca",
                         "fault:wc-error", engine_.now());
      sim::Log::trace(engine_.now(), "hca", "fault: erring WR %llu",
                      static_cast<unsigned long long>(wr.wr_id));
      const WcOpcode op = wr.opcode == Opcode::Send ? WcOpcode::Send
                          : wr.opcode == Opcode::RdmaWrite
                              ? WcOpcode::RdmaWrite
                              : WcOpcode::RdmaRead;
      complete(qp, qp->send_cq(), wr, op, WcStatus::RetryExceeded, 0,
               start + 2 * wire_lat);
      return;
    }
    if (fate == sim::FaultInjector::WcFate::Drop) {
      // Data will move normally; only the completion is lost. (Applies to
      // the RDMA opcodes — the MPI data path; Send WRs complete remotely.)
      sim::trace_instant("node" + std::to_string(node()) + ".hca",
                         "fault:wc-drop", engine_.now());
      sim::Log::trace(engine_.now(), "hca", "fault: dropping CQE of WR %llu",
                      static_cast<unsigned long long>(wr.wr_id));
    }
  }

  if (wr.opcode != Opcode::RdmaRead) {
    egress_bytes_ += bytes;
  } else {
    remote.egress_bytes_ += bytes;
  }

  if (wr.opcode == Opcode::Send) {
    // Ship header+data to the responder; match against its receive queue on
    // arrival. The data movement below runs the read+wire stages; the
    // remote-write stage happens when a receive is available.
    const double mixed_read_gbps = [&] {
      // Gather may span domains (e.g. eager header on Phi + payload in the
      // host shadow buffer): weight by bytes.
      if (bytes == 0) return platform_.hca_read_host_gbps;
      double total_ns = 0;
      for (const Sge& s : wr.sg_list) {
        if (s.length == 0) continue;
        auto c = read_cost(mr_by_lkey(s.lkey)->domain());
        total_ns += static_cast<double>(s.length) / c.gbps;
      }
      return static_cast<double>(bytes) / (total_ns > 0 ? total_ns : 1);
    }();
    sim::Time read_lat = 0;
    for (const Sge& s : wr.sg_list) {
      if (s.length == 0) continue;
      read_lat = std::max(read_lat, read_cost(mr_by_lkey(s.lkey)->domain())
                                        .latency);
    }

    const std::uint64_t chunk = platform_.ib_chunk_bytes;
    sim::Time t = start + read_lat;
    sim::Time last_ingress = t;
    std::uint64_t left = bytes;
    do {
      const std::uint64_t n = std::min<std::uint64_t>(left, chunk);
      const sim::Time t1 =
          dma_read_.acquire(t, sim::transfer_time(n, mixed_read_gbps));
      if (loopback) {
        last_ingress = t1;
      } else {
        const sim::Time t2 = egress_.acquire(
            t1, sim::transfer_time(n, platform_.ib_wire_gbps));
        last_ingress = remote.ingress_.acquire(
            t2 + wire_lat, sim::transfer_time(n, platform_.ib_wire_gbps));
      }
      left -= n;
    } while (left > 0);

    engine_.schedule_at(last_ingress, [this, &remote, remote_qp,
                                       wr = std::move(wr), qp] {
      remote.deliver_send(remote_qp, wr, qp->qpn(), *this, engine_.now());
    });
    return;
  }

  // RDMA write / read: validate the remote window against the remote HCA.
  // Deliberately not a DcfaCheck hook: during connection recovery a peer can
  // legitimately post against a ring MR the other side already tore down.
  // That is the modeled RemoteAccessError -> QP-wedge -> reconnect path, not
  // an invariant violation. Local keys (check_sges) have no such race.
  MemoryRegion* rmr = remote.mr_by_rkey(wr.rkey);
  const unsigned need = wr.opcode == Opcode::RdmaWrite
                            ? static_cast<unsigned>(kRemoteWrite)
                            : static_cast<unsigned>(kRemoteRead);
  if (!rmr || !rmr->covers(wr.remote_addr, bytes) ||
      !(rmr->access() & need)) {
    // NAK arrives after a round trip.
    qp->state_ = QpState::Error;
    complete(qp, qp->send_cq(), wr,
             wr.opcode == Opcode::RdmaWrite ? WcOpcode::RdmaWrite
                                            : WcOpcode::RdmaRead,
             WcStatus::RemoteAccessError, 0, start + 2 * wire_lat);
    return;
  }

  const std::uint64_t chunk = platform_.ib_chunk_bytes;

  if (wr.opcode == Opcode::RdmaWrite) {
    const double read_gbps = [&] {
      if (bytes == 0) return platform_.hca_read_host_gbps;
      double total_ns = 0;
      for (const Sge& s : wr.sg_list) {
        if (s.length == 0) continue;
        total_ns += static_cast<double>(s.length) /
                    read_cost(mr_by_lkey(s.lkey)->domain()).gbps;
      }
      return static_cast<double>(bytes) / (total_ns > 0 ? total_ns : 1);
    }();
    sim::Time read_lat = 0;
    for (const Sge& s : wr.sg_list) {
      if (s.length == 0) continue;
      read_lat =
          std::max(read_lat, read_cost(mr_by_lkey(s.lkey)->domain()).latency);
    }
    const DmaCost wcost = remote.write_cost(rmr->domain());

    sim::Time t = start + read_lat;
    sim::Time last_write = t + wire_lat;  // for zero-byte writes
    std::uint64_t left = bytes;
    do {
      const std::uint64_t n = std::min<std::uint64_t>(left, chunk);
      const sim::Time t1 =
          dma_read_.acquire(t, sim::transfer_time(n, read_gbps));
      sim::Time t3 = t1;
      if (!loopback) {
        const sim::Time t2 = egress_.acquire(
            t1, sim::transfer_time(n, platform_.ib_wire_gbps));
        t3 = remote.ingress_.acquire(
            t2 + wire_lat, sim::transfer_time(n, platform_.ib_wire_gbps));
      }
      last_write = remote.dma_write_.acquire(
          t3, sim::transfer_time(n, wcost.gbps));
      left -= n;
    } while (left > 0);
    last_write += wcost.latency;
    if (sim::Tracer::current()) {
      sim::trace_span("node" + std::to_string(node()) + ".hca",
                      "rdma-write " + std::to_string(bytes) + "B", start,
                      last_write);
    }

    // Move the bytes when the last chunk lands; ACK returns to the sender
    // one wire latency later.
    engine_.schedule_at(last_write, [this, wr, bytes, &remote] {
      // Deregistering an MR or freeing a buffer with a WR in flight aborts
      // the transfer (undefined behaviour on real hardware; we drop it
      // loudly). Happens during endpoint teardown and connection recovery,
      // so the remote MR is re-resolved by rkey here rather than captured —
      // a recovery that deregistered it must not be a use-after-free.
      try {
        MemoryRegion* rmr = remote.mr_by_rkey(wr.rkey);
        if (!rmr) throw std::runtime_error("remote MR gone");
        std::size_t off = 0;
        for (const Sge& s : wr.sg_list) {
          if (s.length == 0) continue;
          MemoryRegion* lmr = mr_by_lkey(s.lkey);
          if (!lmr) throw std::runtime_error("local MR gone");
          const std::byte* src =
              memory_.space(lmr->domain()).resolve(s.addr, s.length);
          std::byte* dst = remote.memory_.space(rmr->domain())
                               .resolve(wr.remote_addr + off, s.length);
          std::memcpy(dst, src, s.length);
          off += s.length;
        }
        sim::Log::trace(engine_.now(), "hca", "rdma-write %zu bytes landed",
                        bytes);
      } catch (const std::exception& e) {
        sim::Log::error(engine_.now(), "hca",
                        "in-flight rdma-write dropped at teardown: %s",
                        e.what());
      }
      remote.notify_remote_write();
    });
    if (wr.signaled && fate != sim::FaultInjector::WcFate::Drop) {
      complete(qp, qp->send_cq(), wr, WcOpcode::RdmaWrite, WcStatus::Success,
               bytes, last_write + wire_lat);
    } else {
      qp->last_completion_ = std::max(qp->last_completion_, last_write);
    }
    return;
  }

  // RDMA read: request travels to the responder, which streams the window
  // back; the local HCA scatters into the SGEs.
  const DmaCost remote_read = remote.read_cost(rmr->domain());
  double write_gbps;
  sim::Time write_lat = 0;
  {
    if (bytes == 0) {
      write_gbps = platform_.hca_write_host_gbps;
    } else {
      double total_ns = 0;
      for (const Sge& s : wr.sg_list) {
        if (s.length == 0) continue;
        auto c = write_cost(mr_by_lkey(s.lkey)->domain());
        total_ns += static_cast<double>(s.length) / c.gbps;
        write_lat = std::max(write_lat, c.latency);
      }
      write_gbps = static_cast<double>(bytes) / (total_ns > 0 ? total_ns : 1);
    }
  }

  sim::Time t = start + wire_lat + remote_read.latency;  // request + first read
  sim::Time last_write = t;
  std::uint64_t left = bytes;
  do {
    const std::uint64_t n = std::min<std::uint64_t>(left, chunk);
    const sim::Time t1 =
        remote.dma_read_.acquire(t, sim::transfer_time(n, remote_read.gbps));
    sim::Time t3 = t1;
    if (!loopback) {
      const sim::Time t2 = remote.egress_.acquire(
          t1, sim::transfer_time(n, platform_.ib_wire_gbps));
      t3 = ingress_.acquire(
          t2 + wire_lat, sim::transfer_time(n, platform_.ib_wire_gbps));
    }
    last_write =
        dma_write_.acquire(t3, sim::transfer_time(n, write_gbps));
    left -= n;
  } while (left > 0);
  last_write += write_lat;
  if (sim::Tracer::current()) {
    sim::trace_span("node" + std::to_string(node()) + ".hca",
                    "rdma-read " + std::to_string(bytes) + "B", start,
                    last_write);
  }

  engine_.schedule_at(last_write, [this, wr, bytes, &remote] {
    try {
      MemoryRegion* rmr = remote.mr_by_rkey(wr.rkey);
      if (!rmr) throw std::runtime_error("remote MR gone");
      std::size_t off = 0;
      for (const Sge& s : wr.sg_list) {
        if (s.length == 0) continue;
        MemoryRegion* lmr = mr_by_lkey(s.lkey);
        if (!lmr) throw std::runtime_error("local MR gone");
        const std::byte* src = remote.memory_.space(rmr->domain())
                                   .resolve(wr.remote_addr + off, s.length);
        std::byte* dst =
            memory_.space(lmr->domain()).resolve(s.addr, s.length);
        std::memcpy(dst, src, s.length);
        off += s.length;
      }
      sim::Log::trace(engine_.now(), "hca", "rdma-read %zu bytes landed",
                      bytes);
    } catch (const std::exception& e) {
      sim::Log::error(engine_.now(), "hca",
                      "in-flight rdma-read dropped at teardown: %s", e.what());
    }
  });
  if (wr.signaled && fate != sim::FaultInjector::WcFate::Drop) {
    complete(qp, qp->send_cq(), wr, WcOpcode::RdmaRead, WcStatus::Success,
             bytes, last_write);
  } else {
    qp->last_completion_ = std::max(qp->last_completion_, last_write);
  }
}

void Hca::deliver_send(QueuePair* dst_qp, SendWr wr, Qpn src_qpn,
                       Hca& src_hca, sim::Time arrival) {
  if (dst_qp->recv_queue_.empty()) {
    // Receiver-not-ready: park until a receive is posted (post_recv retries).
    sim::Log::trace(engine_.now(), "hca", "RNR on qp %u", dst_qp->qpn());
    dst_qp->rnr_queue_.push_back(
        QueuePair::PendingArrival{std::move(wr), src_qpn, arrival, &src_hca});
    return;
  }
  complete_matched_recv(dst_qp, std::move(wr), src_qpn, src_hca, arrival);
}

void Hca::complete_matched_recv(QueuePair* dst_qp, SendWr wr, Qpn src_qpn,
                                Hca& src_hca, sim::Time start) {
  RecvWr recv = std::move(dst_qp->recv_queue_.front());
  dst_qp->recv_queue_.pop_front();

  const std::size_t bytes = total_length(wr.sg_list);
  const std::size_t capacity = total_length(recv.sg_list);
  auto src_qp_it = src_hca.qps_.find(src_qpn);
  QueuePair* src_qp =
      src_qp_it == src_hca.qps_.end() ? nullptr : src_qp_it->second.get();

  if (bytes > capacity) {
    // Message longer than the posted receive: invalid request on both sides.
    Wc wc;
    wc.wr_id = recv.wr_id;
    wc.status = WcStatus::RemoteInvalidRequest;
    wc.opcode = WcOpcode::Recv;
    wc.qp_num = dst_qp->qpn();
    dst_qp->recv_cq().push(wc);
    if (src_qp) {
      src_qp->state_ = QpState::Error;
      src_hca.complete(src_qp, src_qp->send_cq(), wr, WcOpcode::Send,
                       WcStatus::RemoteInvalidRequest, 0,
                       engine_.now() + fabric_.wire_latency());
    }
    return;
  }

  // Remote write stage into the receive SGEs.
  double write_gbps = platform_.hca_write_host_gbps;
  sim::Time write_lat = 0;
  if (bytes > 0) {
    double total_ns = 0;
    std::size_t counted = 0;
    for (const Sge& s : recv.sg_list) {
      if (s.length == 0 || counted >= bytes) continue;
      const std::size_t n = std::min<std::size_t>(s.length, bytes - counted);
      auto c = write_cost(mr_by_lkey(s.lkey)->domain());
      total_ns += static_cast<double>(n) / c.gbps;
      write_lat = std::max(write_lat, c.latency);
      counted += n;
    }
    write_gbps = static_cast<double>(bytes) / (total_ns > 0 ? total_ns : 1);
  }

  sim::Time last_write = start;
  std::uint64_t left = bytes;
  const std::uint64_t chunk = platform_.ib_chunk_bytes;
  sim::Time t = start;
  do {
    const std::uint64_t n = std::min<std::uint64_t>(left, chunk);
    last_write = dma_write_.acquire(t, sim::transfer_time(n, write_gbps));
    left -= n;
  } while (left > 0);
  last_write += write_lat;

  engine_.schedule_at(last_write, [this, wr, recv, bytes, &src_hca, dst_qp,
                                   src_qpn] {
    // Gather from the sender's SGEs, scatter into the receiver's. MRs torn
    // down with the WR in flight abort the data movement.
    try {
      std::vector<std::byte> staging(bytes);
      std::size_t off = 0;
      for (const Sge& s : wr.sg_list) {
        if (s.length == 0) continue;
        MemoryRegion* mr = src_hca.mr_by_lkey(s.lkey);
        if (!mr) throw std::runtime_error("sender MR gone");
        const std::byte* p =
            src_hca.memory_.space(mr->domain()).resolve(s.addr, s.length);
        std::memcpy(staging.data() + off, p, s.length);
        off += s.length;
      }
      off = 0;
      for (const Sge& s : recv.sg_list) {
        if (s.length == 0 || off >= bytes) continue;
        const std::size_t n = std::min<std::size_t>(s.length, bytes - off);
        MemoryRegion* mr = mr_by_lkey(s.lkey);
        if (!mr) throw std::runtime_error("receiver MR gone");
        std::byte* p = memory_.space(mr->domain()).resolve(s.addr, n);
        std::memcpy(p, staging.data() + off, n);
        off += n;
      }
    } catch (const std::exception& e) {
      sim::Log::error(engine_.now(), "hca",
                      "in-flight send dropped at teardown: %s", e.what());
    }
    // Receive completion.
    Wc wc;
    wc.wr_id = recv.wr_id;
    wc.status = WcStatus::Success;
    wc.opcode = WcOpcode::Recv;
    wc.byte_len = static_cast<std::uint32_t>(bytes);
    wc.qp_num = dst_qp->qpn();
    wc.src_qp = src_qpn;
    wc.imm_data = wr.imm_data;
    dst_qp->recv_cq().push(wc);
  });

  if (src_qp && wr.signaled) {
    src_hca.complete(src_qp, src_qp->send_cq(), wr, WcOpcode::Send,
                     WcStatus::Success, bytes,
                     last_write + fabric_.wire_latency());
  }
}

}  // namespace dcfa::ib
