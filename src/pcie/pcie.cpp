#include "pcie/pcie.hpp"

#include <cstring>

#include "sim/log.hpp"
#include "sim/trace.hpp"

namespace dcfa::pcie {

sim::Time PciePort::dma_async(mem::Domain src_domain, mem::SimAddr src,
                              mem::Domain dst_domain, mem::SimAddr dst,
                              std::size_t len, std::function<void()> on_done,
                              double bw_factor) {
  // Validate both windows up front: a bad descriptor faults at submit time.
  std::byte* src_p = memory_.space(src_domain).resolve(src, len);
  std::byte* dst_p = memory_.space(dst_domain).resolve(dst, len);

  const sim::Time cost =
      platform_.phi_dma_setup +
      sim::transfer_time(len, platform_.phi_dma_gbps * bw_factor);
  const sim::Time done_at = phi_dma_.acquire(engine_.now(), cost);
  if (sim::Tracer::current()) {
    sim::trace_span("node" + std::to_string(memory_.node()) + ".dma",
                    "phi-dma " + std::to_string(len) + "B", done_at - cost,
                    done_at);
  }

  engine_.schedule_at(done_at, [this, src_p, dst_p, len,
                                on_done = std::move(on_done)] {
    std::memmove(dst_p, src_p, len);
    sim::Log::trace(engine_.now(), "pcie", "dma complete, %zu bytes", len);
    if (on_done) on_done();
  });
  return done_at;
}

void PciePort::dma(sim::Process& proc, mem::Domain src_domain,
                   mem::SimAddr src, mem::Domain dst_domain, mem::SimAddr dst,
                   std::size_t len) {
  sim::Condition done(engine_, "pcie.dma");
  bool finished = false;
  dma_async(src_domain, src, dst_domain, dst, len, [&] {
    finished = true;
    done.notify_all();
  });
  while (!finished) proc.wait_on(done);
}

}  // namespace dcfa::pcie
