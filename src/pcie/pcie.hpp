#pragma once

#include <functional>

#include "mem/memory.hpp"
#include "sim/engine.hpp"
#include "sim/platform.hpp"
#include "sim/process.hpp"
#include "sim/resource.hpp"

namespace dcfa::pcie {

/// One node's PCI Express attachment of the Xeon Phi card.
///
/// Two independent DMA initiators share the slot in the model:
///  * the Phi's own DMA engine (phi_dma) — full PCIe rate both directions;
///    used by SCIF, the offload runtime and sync_offload_mr;
///  * the HCA's DMA engine (modelled inside ib::Hca) — fast against host
///    DRAM, crippled when *reading* Phi GDDR (the Figure 5 asymmetry).
///
/// Keeping the initiators as separate sim::Resources lets an offload
/// transfer overlap host-side InfiniBand traffic, which the paper's
/// double-buffering optimisation depends on.
class PciePort {
 public:
  PciePort(sim::Engine& engine, mem::NodeMemory& memory,
           const sim::Platform& platform)
      : engine_(engine),
        memory_(memory),
        platform_(platform),
        phi_dma_("pcie.phi_dma[" + std::to_string(memory.node()) + "]") {}

  PciePort(const PciePort&) = delete;
  PciePort& operator=(const PciePort&) = delete;

  /// Move `len` bytes between this node's host DRAM and Phi GDDR using the
  /// Phi DMA engine. `on_done` fires (in virtual time) after the copy has
  /// really happened; returns the completion time. Source and destination
  /// must be on this node; crossing the same domain is allowed (GDDR-to-GDDR
  /// blits run at the same engine rate).
  /// `bw_factor` scales the engine bandwidth (<1 models unaligned bursts).
  sim::Time dma_async(mem::Domain src_domain, mem::SimAddr src,
                      mem::Domain dst_domain, mem::SimAddr dst,
                      std::size_t len, std::function<void()> on_done = {},
                      double bw_factor = 1.0);

  /// Blocking variant for code running inside a sim::Process.
  void dma(sim::Process& proc, mem::Domain src_domain, mem::SimAddr src,
           mem::Domain dst_domain, mem::SimAddr dst, std::size_t len);

  /// The Phi DMA engine resource (exposed for utilisation stats/tests).
  sim::Resource& phi_dma() { return phi_dma_; }

  mem::NodeMemory& memory() { return memory_; }
  const sim::Platform& platform() const { return platform_; }

 private:
  sim::Engine& engine_;
  mem::NodeMemory& memory_;
  const sim::Platform& platform_;
  sim::Resource phi_dma_;
};

}  // namespace dcfa::pcie
