#include "verbs/verbs.hpp"

namespace dcfa::verbs {

HostVerbs::HostVerbs(sim::Process& proc, ib::Fabric& fabric,
                     mem::NodeMemory& memory)
    : proc_(proc),
      fabric_(fabric),
      memory_(memory),
      hca_(fabric.hca_for_node(memory.node())),
      platform_(fabric.platform()) {}

ib::ProtectionDomain* HostVerbs::alloc_pd() {
  proc_.wait(platform_.host_post_overhead);
  return hca_.alloc_pd();
}

ib::MemoryRegion* HostVerbs::reg_mr(ib::ProtectionDomain* pd,
                                    const mem::Buffer& buf, unsigned access) {
  // Syscall + page pinning; dominated by the per-page walk for large MRs.
  const std::size_t pages =
      (buf.size() + mem::AddressSpace::kPage - 1) / mem::AddressSpace::kPage;
  proc_.wait(platform_.host_reg_mr_base +
             platform_.host_reg_mr_per_page * static_cast<sim::Time>(pages));
  return hca_.reg_mr(pd, buf.domain(), buf.addr(), buf.size(), access);
}

void HostVerbs::dereg_mr(ib::MemoryRegion* mr) {
  proc_.wait(platform_.host_reg_mr_base / 2);
  hca_.dereg_mr(mr);
}

ib::CompletionQueue* HostVerbs::create_cq(int capacity) {
  proc_.wait(platform_.host_reg_mr_base);  // same order as other syscalls
  return hca_.create_cq(capacity);
}

ib::QueuePair* HostVerbs::create_qp(ib::ProtectionDomain* pd,
                                    ib::CompletionQueue* send_cq,
                                    ib::CompletionQueue* recv_cq) {
  proc_.wait(platform_.host_reg_mr_base);
  return hca_.create_qp(pd, send_cq, recv_cq);
}

void HostVerbs::connect(ib::QueuePair* qp, QpAddress remote) {
  // Three ibv_modify_qp transitions in real code.
  proc_.wait(platform_.host_reg_mr_base);
  hca_.connect(qp, remote.lid, remote.qpn);
}

void HostVerbs::destroy_qp(ib::QueuePair* qp) {
  proc_.wait(platform_.host_reg_mr_base / 2);
  hca_.destroy_qp(qp);
}

QpAddress HostVerbs::address(ib::QueuePair* qp) {
  return QpAddress{hca_.lid(), qp->qpn()};
}

void HostVerbs::post_send(ib::QueuePair* qp, ib::SendWr wr) {
  proc_.wait(platform_.host_post_overhead);
  hca_.post_send(qp, std::move(wr));
}

void HostVerbs::post_recv(ib::QueuePair* qp, ib::RecvWr wr) {
  proc_.wait(platform_.host_post_overhead);
  hca_.post_recv(qp, std::move(wr));
}

int HostVerbs::poll_cq(ib::CompletionQueue* cq, int max, ib::Wc* out) {
  int n = cq->poll(max, out);
  if (n > 0) proc_.wait(platform_.host_poll_overhead);
  return n;
}

void HostVerbs::wait_cq(ib::CompletionQueue* cq) {
  if (cq->depth() > 0) return;
  proc_.wait_on(cq->arrival());
}

mem::Buffer HostVerbs::alloc_buffer(std::size_t size, std::size_t align) {
  return memory_.alloc(mem::Domain::HostDram, size, align);
}

void HostVerbs::free_buffer(const mem::Buffer& buf) {
  memory_.space(buf.domain()).free(buf);
}

void HostVerbs::charge_memcpy(std::size_t bytes) {
  proc_.wait(sim::transfer_time(bytes, platform_.host_memcpy_gbps));
}

}  // namespace dcfa::verbs
