#pragma once

#include "ib/fabric.hpp"
#include "ib/types.hpp"
#include "mem/memory.hpp"
#include "sim/process.hpp"

namespace dcfa::verbs {

/// Out-of-band QP address (what real code exchanges via PMI/sockets).
struct QpAddress {
  ib::Lid lid = 0;
  ib::Qpn qpn = 0;
};

/// The InfiniBand user-space interface. The paper's central design property
/// is that DCFA exposes *the same* verbs interface on the Xeon Phi as the
/// host's IB Verbs library, so "the MPI applications running on the host
/// could be easily moved to co-processors". We capture that with this
/// abstract interface: dcfa::mpi's P2P layer is written against it and runs
/// unchanged over HostVerbs (host MPI / YAMPII role) or dcfa::PhiVerbs
/// (DCFA-MPI role) or the baseline proxy transport.
///
/// Every call is made on behalf of the owning sim::Process (one per MPI
/// rank) and models that caller's CPU cost: cheap on a host core, expensive
/// on a 1 GHz in-order Phi core, and a full command round-trip for the
/// delegated resource-creation verbs in the DCFA case.
class Ib {
 public:
  virtual ~Ib() = default;

  // --- Resource creation ---------------------------------------------------
  // [[nodiscard]]: a dropped handle can never be deregistered/destroyed, so
  // the leak outlives the rank. dcfa_lint's unchecked-result rule is the
  // same invariant for toolchains that ignore the attribute.
  [[nodiscard]] virtual ib::ProtectionDomain* alloc_pd() = 0;
  [[nodiscard]] virtual ib::MemoryRegion* reg_mr(ib::ProtectionDomain* pd,
                                                 const mem::Buffer& buf,
                                                 unsigned access) = 0;
  virtual void dereg_mr(ib::MemoryRegion* mr) = 0;
  [[nodiscard]] virtual ib::CompletionQueue* create_cq(int capacity) = 0;
  [[nodiscard]] virtual ib::QueuePair* create_qp(
      ib::ProtectionDomain* pd, ib::CompletionQueue* send_cq,
      ib::CompletionQueue* recv_cq) = 0;
  virtual void connect(ib::QueuePair* qp, QpAddress remote) = 0;
  /// Destroy a QP (connection recovery tears down error-state QPs before
  /// re-creating them). Delegated on the Phi, a direct verb on the host.
  virtual void destroy_qp(ib::QueuePair* qp) = 0;
  virtual QpAddress address(ib::QueuePair* qp) = 0;

  // --- Data path ------------------------------------------------------------
  virtual void post_send(ib::QueuePair* qp, ib::SendWr wr) = 0;
  virtual void post_recv(ib::QueuePair* qp, ib::RecvWr wr) = 0;
  /// Non-blocking poll; models the caller's per-poll cost only when
  /// completions were found.
  virtual int poll_cq(ib::CompletionQueue* cq, int max, ib::Wc* out) = 0;
  /// Block the calling process until `cq` receives a completion (or was
  /// already non-empty). Spurious wake-ups allowed.
  virtual void wait_cq(ib::CompletionQueue* cq) = 0;

  // --- Memory ----------------------------------------------------------------
  /// Allocate a user buffer in this endpoint's natural domain (host DRAM for
  /// HostVerbs, Phi GDDR for PhiVerbs).
  [[nodiscard]] virtual mem::Buffer alloc_buffer(std::size_t size,
                                                 std::size_t align = 64) = 0;
  virtual void free_buffer(const mem::Buffer& buf) = 0;
  virtual mem::Domain data_domain() const = 0;

  /// Model `bytes` of single-core memcpy on this endpoint's CPU (the eager
  /// protocol's copies).
  virtual void charge_memcpy(std::size_t bytes) = 0;

  virtual sim::Process& process() = 0;
  virtual mem::NodeId node() const = 0;

  /// The node's HCA (for wake-up observers and tests). On a Phi endpoint
  /// this is the host-owned HCA whose doorbells are mapped into user space.
  virtual ib::Hca& hca_ref() = 0;

  /// Fault injector this endpoint consults (nullptr = faults off). The
  /// Runtime arms every endpoint of a run with the same injector so all
  /// layers observe one deterministic fault sequence.
  void set_faults(sim::FaultInjector* faults) { faults_ = faults; }
  sim::FaultInjector* faults() { return faults_; }

 private:
  sim::FaultInjector* faults_ = nullptr;
};

/// Plain host-side verbs: what the original YAMPII host MPI uses, and what
/// the DCFA host delegation process uses internally.
class HostVerbs final : public Ib {
 public:
  HostVerbs(sim::Process& proc, ib::Fabric& fabric, mem::NodeMemory& memory);

  [[nodiscard]] ib::ProtectionDomain* alloc_pd() override;
  [[nodiscard]] ib::MemoryRegion* reg_mr(ib::ProtectionDomain* pd,
                                         const mem::Buffer& buf,
                                         unsigned access) override;
  void dereg_mr(ib::MemoryRegion* mr) override;
  [[nodiscard]] ib::CompletionQueue* create_cq(int capacity) override;
  [[nodiscard]] ib::QueuePair* create_qp(ib::ProtectionDomain* pd,
                                         ib::CompletionQueue* send_cq,
                                         ib::CompletionQueue* recv_cq) override;
  void connect(ib::QueuePair* qp, QpAddress remote) override;
  void destroy_qp(ib::QueuePair* qp) override;
  QpAddress address(ib::QueuePair* qp) override;

  void post_send(ib::QueuePair* qp, ib::SendWr wr) override;
  void post_recv(ib::QueuePair* qp, ib::RecvWr wr) override;
  int poll_cq(ib::CompletionQueue* cq, int max, ib::Wc* out) override;
  void wait_cq(ib::CompletionQueue* cq) override;

  mem::Buffer alloc_buffer(std::size_t size, std::size_t align) override;
  void free_buffer(const mem::Buffer& buf) override;
  mem::Domain data_domain() const override { return mem::Domain::HostDram; }
  void charge_memcpy(std::size_t bytes) override;

  sim::Process& process() override { return proc_; }
  mem::NodeId node() const override { return memory_.node(); }

  ib::Hca& hca() { return hca_; }
  ib::Hca& hca_ref() override { return hca_; }

 private:
  sim::Process& proc_;
  ib::Fabric& fabric_;
  mem::NodeMemory& memory_;
  ib::Hca& hca_;
  const sim::Platform& platform_;
};

}  // namespace dcfa::verbs
