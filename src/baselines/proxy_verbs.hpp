#pragma once

#include <algorithm>

#include "dcfa/phi_verbs.hpp"

namespace dcfa::baseline {

/// Transport model of the 'Intel MPI on Xeon Phi co-processors' mode: MPI
/// ranks live on the card, but InfiniBand traffic is funnelled through the
/// MPSS stack — SCIF HCA-proxy modules on the card and the IB Proxy Daemon
/// on the host (Section III-A).
///
/// Net effect captured by the model, calibrated to the paper's Figure 9:
///  * every posted work request pays two extra proxy hops of latency
///    (card-side proxy + host daemon), lifting the 4-byte round trip from
///    DCFA-MPI's ~15us to ~28us;
///  * the payload path is capped at Platform::proxy_bw_gbps (~0.95 GB/s) —
///    the run's Platform is configured by the Runtime so that *both* PCIe
///    directions of the card go through the capped path, matching "cannot
///    get bandwidth greater than 1 Gbytes/s".
///
/// Everything else (resource creation costs, poll costs, memory domains) is
/// identical to the DCFA Phi endpoint, which is fair: both stacks offload
/// verbs setup to a host daemon.
class ProxyPhiVerbs final : public core::PhiVerbs {
 public:
  using core::PhiVerbs::PhiVerbs;

  void post_send(ib::QueuePair* qp, ib::SendWr wr) override {
    // The work request is relayed through the card-side proxy and the host
    // IB Proxy Daemon: the poster pays only the relay submit, the daemon
    // hop adds *latency* to the message (concurrent messages pipeline
    // through the daemon rather than serialising on the card's core).
    auto& platform = hca_ref().platform();
    process().wait(platform.host_post_overhead);  // relay enqueue
    core::PhiVerbs::charge_post_overhead();
    process().engine().schedule_after(
        platform.proxy_hop_latency,
        [this, qp, wr = std::move(wr)]() mutable {
          hca_ref().post_send(qp, std::move(wr));
        });
  }
};

/// Apply the proxy-mode bandwidth cap to a platform description (both PCIe
/// data directions of the co-processor ride the proxied path).
inline sim::Platform proxy_mode_platform(sim::Platform p) {
  p.hca_read_phi_gbps = std::min(p.hca_read_phi_gbps, p.proxy_bw_gbps);
  p.hca_write_phi_gbps = std::min(p.hca_write_phi_gbps, p.proxy_bw_gbps);
  return p;
}

}  // namespace dcfa::baseline
