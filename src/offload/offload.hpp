#pragma once

#include <functional>
#include <memory>

#include "mem/memory.hpp"
#include "pcie/pcie.hpp"
#include "sim/platform.hpp"
#include "sim/process.hpp"

namespace dcfa::offload {

/// Completion flag for asynchronous offload transfers (the `signal` clause
/// of `#pragma offload_transfer`). Wait with Engine::wait().
class Signal {
 public:
  explicit Signal(sim::Engine& engine) : cond_(engine, "offload.signal") {}
  bool done() const { return done_; }

 private:
  friend class Engine;
  bool done_ = false;
  sim::Condition cond_;
};

/// Model of the Intel compiler's offload runtime (COI) between one host
/// process and its node's Xeon Phi card. This is the substrate of the
/// 'Intel MPI on Xeon where it offloads computation to Xeon Phi
/// co-processors' baseline.
///
/// Captures the costs the paper's Figure 10/11 optimisation list fights:
///  * fixed per-transfer overhead (descriptor exchange, doorbell, host-side
///    pinned-staging management) — paid even for 4-byte payloads;
///  * a bandwidth penalty for buffers that are not 4 KiB aligned / sized;
///  * per-offload-region launch cost that grows with the OpenMP team size
///    (the card must wake that many threads);
///  * persistent card buffers so repeated regions skip re-allocation.
class Engine {
 public:
  Engine(sim::Process& host_proc, mem::NodeMemory& memory,
         pcie::PciePort& pcie, const sim::Platform& platform)
      : proc_(host_proc), memory_(memory), pcie_(pcie), platform_(platform) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Allocate a persistent buffer in card (Phi GDDR) memory. Mirrors
  /// `alloc_if(1) free_if(0)` buffers kept across offload regions.
  mem::Buffer alloc_card_buffer(std::size_t size,
                                std::size_t align = mem::AddressSpace::kPage);
  void free_card_buffer(const mem::Buffer& buf);

  /// Synchronous host->card copy ("copy in"). Blocks the host process for
  /// the fixed overhead plus the PCIe time.
  void transfer_in(const mem::Buffer& host_src, std::size_t src_off,
                   const mem::Buffer& card_dst, std::size_t dst_off,
                   std::size_t len);
  /// Synchronous card->host copy ("copy out").
  void transfer_out(const mem::Buffer& card_src, std::size_t src_off,
                    const mem::Buffer& host_dst, std::size_t dst_off,
                    std::size_t len);

  /// Asynchronous variants (offload_transfer with a signal): the host pays
  /// only the submit cost and may overlap MPI communication — the paper's
  /// double-buffer optimisation.
  std::unique_ptr<Signal> transfer_in_async(const mem::Buffer& host_src,
                                            std::size_t src_off,
                                            const mem::Buffer& card_dst,
                                            std::size_t dst_off,
                                            std::size_t len);
  std::unique_ptr<Signal> transfer_out_async(const mem::Buffer& card_src,
                                             std::size_t src_off,
                                             const mem::Buffer& host_dst,
                                             std::size_t dst_off,
                                             std::size_t len);
  /// Block the host process until `sig` completes.
  void wait(Signal& sig);

  /// Run one offload region on the card with an OpenMP team of `threads`.
  /// The host blocks for launch + `compute_time` (synchronous `#pragma
  /// offload`), after which `kernel` has really executed (so tests can
  /// verify the card-side data). Pass the modelled compute duration, e.g.
  /// from compute::parallel_time().
  void run_region(int threads, sim::Time compute_time,
                  const std::function<void()>& kernel);

  /// Fixed cost of one transfer given its alignment/size, exposed so
  /// benches can report the model's parameters.
  sim::Time transfer_overhead(std::size_t off_a, std::size_t off_b,
                              std::size_t len) const;

  std::uint64_t regions_launched() const { return regions_; }
  std::uint64_t transfers() const { return transfers_; }

 private:
  sim::Time do_transfer(mem::Domain src_d, mem::SimAddr src,
                        mem::Domain dst_d, mem::SimAddr dst, std::size_t len,
                        std::size_t src_off, std::size_t dst_off,
                        std::function<void()> on_done);

  sim::Process& proc_;
  mem::NodeMemory& memory_;
  pcie::PciePort& pcie_;
  const sim::Platform& platform_;
  std::uint64_t regions_ = 0;
  std::uint64_t transfers_ = 0;
};

}  // namespace dcfa::offload
