#include "offload/offload.hpp"

#include "sim/log.hpp"

namespace dcfa::offload {

mem::Buffer Engine::alloc_card_buffer(std::size_t size, std::size_t align) {
  return memory_.alloc(mem::Domain::PhiGddr, size, align);
}

void Engine::free_card_buffer(const mem::Buffer& buf) {
  memory_.space(buf.domain()).free(buf);
}

sim::Time Engine::transfer_overhead(std::size_t off_a, std::size_t off_b,
                                    std::size_t len) const {
  sim::Time t = platform_.offload_transfer_fixed;
  const std::size_t page = mem::AddressSpace::kPage;
  if (off_a % page != 0 || off_b % page != 0 || len % page != 0) {
    t += platform_.offload_misaligned_extra;
  }
  return t;
}

sim::Time Engine::do_transfer(mem::Domain src_d, mem::SimAddr src,
                              mem::Domain dst_d, mem::SimAddr dst,
                              std::size_t len, std::size_t src_off,
                              std::size_t dst_off,
                              std::function<void()> on_done) {
  ++transfers_;
  const std::size_t page = mem::AddressSpace::kPage;
  const bool aligned =
      src_off % page == 0 && dst_off % page == 0 && len % page == 0;
  const double factor = aligned ? 1.0 : platform_.offload_misaligned_bw_factor;
  return pcie_.dma_async(src_d, src, dst_d, dst, len, std::move(on_done),
                         factor);
}

void Engine::transfer_in(const mem::Buffer& host_src, std::size_t src_off,
                         const mem::Buffer& card_dst, std::size_t dst_off,
                         std::size_t len) {
  proc_.wait(transfer_overhead(src_off, dst_off, len));
  sim::Condition done(proc_.engine(), "offload.in");
  bool fin = false;
  do_transfer(host_src.domain(), host_src.addr() + src_off,
              card_dst.domain(), card_dst.addr() + dst_off, len, src_off,
              dst_off, [&] {
                fin = true;
                done.notify_all();
              });
  while (!fin) proc_.wait_on(done);
}

void Engine::transfer_out(const mem::Buffer& card_src, std::size_t src_off,
                          const mem::Buffer& host_dst, std::size_t dst_off,
                          std::size_t len) {
  proc_.wait(transfer_overhead(src_off, dst_off, len));
  sim::Condition done(proc_.engine(), "offload.out");
  bool fin = false;
  do_transfer(card_src.domain(), card_src.addr() + src_off,
              host_dst.domain(), host_dst.addr() + dst_off, len, src_off,
              dst_off, [&] {
                fin = true;
                done.notify_all();
              });
  while (!fin) proc_.wait_on(done);
}

std::unique_ptr<Signal> Engine::transfer_in_async(const mem::Buffer& host_src,
                                                  std::size_t src_off,
                                                  const mem::Buffer& card_dst,
                                                  std::size_t dst_off,
                                                  std::size_t len) {
  // The host pays only the submit half of the fixed cost; the rest rides
  // with the descriptor on the card side.
  proc_.wait(transfer_overhead(src_off, dst_off, len) / 2);
  auto sig = std::make_unique<Signal>(proc_.engine());
  Signal* s = sig.get();
  proc_.engine().schedule_after(
      transfer_overhead(src_off, dst_off, len) / 2, [this, &host_src, src_off,
                                                     &card_dst, dst_off, len,
                                                     s] {
        do_transfer(host_src.domain(), host_src.addr() + src_off,
                    card_dst.domain(), card_dst.addr() + dst_off, len,
                    src_off, dst_off, [s] {
                      s->done_ = true;
                      s->cond_.notify_all();
                    });
      });
  return sig;
}

std::unique_ptr<Signal> Engine::transfer_out_async(const mem::Buffer& card_src,
                                                   std::size_t src_off,
                                                   const mem::Buffer& host_dst,
                                                   std::size_t dst_off,
                                                   std::size_t len) {
  proc_.wait(transfer_overhead(src_off, dst_off, len) / 2);
  auto sig = std::make_unique<Signal>(proc_.engine());
  Signal* s = sig.get();
  proc_.engine().schedule_after(
      transfer_overhead(src_off, dst_off, len) / 2, [this, &card_src, src_off,
                                                     &host_dst, dst_off, len,
                                                     s] {
        do_transfer(card_src.domain(), card_src.addr() + src_off,
                    host_dst.domain(), host_dst.addr() + dst_off, len,
                    src_off, dst_off, [s] {
                      s->done_ = true;
                      s->cond_.notify_all();
                    });
      });
  return sig;
}

void Engine::wait(Signal& sig) {
  while (!sig.done_) proc_.wait_on(sig.cond_);
}

void Engine::run_region(int threads, sim::Time compute_time,
                        const std::function<void()>& kernel) {
  ++regions_;
  const sim::Time launch =
      platform_.offload_launch_base +
      platform_.offload_launch_per_thread * static_cast<sim::Time>(threads);
  proc_.wait(launch + compute_time);
  if (kernel) kernel();
}

}  // namespace dcfa::offload
