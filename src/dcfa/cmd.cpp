#include "dcfa/cmd.hpp"

#include "sim/log.hpp"
#include "sim/trace.hpp"

namespace dcfa::core {

HostDelegate::HostDelegate(scif::Channel& channel, ib::Hca& hca,
                           mem::NodeMemory& memory)
    : channel_(channel),
      hca_(hca),
      memory_(memory),
      platform_(channel.platform()),
      busy_("dcfa.delegate[" + std::to_string(memory.node()) + "]") {
  channel_.set_on_deliver(scif::Channel::Side::Host, [this] { service(); });
}

HostDelegate::~HostDelegate() {
  channel_.set_on_deliver(scif::Channel::Side::Host, {});
}

void HostDelegate::service() {
  std::vector<std::byte> msg;
  while (channel_.try_recv(scif::Channel::Side::Host, msg)) {
    handle(std::move(msg));
  }
}

ib::ProtectionDomain* HostDelegate::pd(Handle h) {
  auto it = objects_.find(h);
  if (it == objects_.end()) return nullptr;
  auto* p = std::get_if<ib::ProtectionDomain*>(&it->second);
  return p ? *p : nullptr;
}
ib::MemoryRegion* HostDelegate::mr(Handle h) {
  auto it = objects_.find(h);
  if (it == objects_.end()) return nullptr;
  if (auto* p = std::get_if<ib::MemoryRegion*>(&it->second)) return *p;
  if (auto* o = std::get_if<OffloadEntry>(&it->second)) return o->mr;
  return nullptr;
}
ib::CompletionQueue* HostDelegate::cq(Handle h) {
  auto it = objects_.find(h);
  if (it == objects_.end()) return nullptr;
  auto* p = std::get_if<ib::CompletionQueue*>(&it->second);
  return p ? *p : nullptr;
}
ib::QueuePair* HostDelegate::qp(Handle h) {
  auto it = objects_.find(h);
  if (it == objects_.end()) return nullptr;
  auto* p = std::get_if<ib::QueuePair*>(&it->second);
  return p ? *p : nullptr;
}

void HostDelegate::reply(std::uint64_t req_id, CmdStatus status,
                         scif::Writer payload, sim::Time service_time) {
  // Queue behind any in-flight request, spend the host-side service time,
  // then one SCIF hop carries the answer back to the card.
  const sim::Time done = busy_.acquire(channel_.engine().now(), service_time);
  scif::Writer out;
  out.put(RespHeader{req_id, status});
  auto body = payload.take();
  auto head = out.take();
  head.insert(head.end(), body.begin(), body.end());
  channel_.engine().schedule_at(
      done + platform_.scif_msg_latency, [this, head = std::move(head)] {
        channel_.deliver_raw(scif::Channel::Side::Phi, std::move(head));
      });
}

void HostDelegate::handle(std::vector<std::byte> msg) {
  scif::Reader r(msg);
  const auto hdr = r.get<CmdHeader>();

  // A crashed delegation process answers nothing: every request — including
  // retries — is swallowed until the scheduled restart (if any) brings it
  // back. The objects it created survive (they live in the host kernel /
  // HCA), which is what makes failing over to the proxy path possible.
  if (crashed_) {
    sim::trace_instant("node" + std::to_string(memory_.node()) + ".delegate",
                       "cmd-while-crashed", channel_.engine().now());
    sim::Log::trace(channel_.engine().now(), "dcfa.delegate",
                    "dead: swallowing req %llu",
                    static_cast<unsigned long long>(hdr.req_id));
    return;
  }
  ++served_;

  const sim::Time base = platform_.host_reg_mr_base;  // syscall-order cost
  scif::Writer payload;

  // Fault injection happens *before* execution, so a retried request never
  // double-creates an object: Drop swallows the message (the client's reply
  // timeout fires), Fail answers CmdStatus::Failed without doing the work.
  if (faults_) {
    const auto fate = faults_->cmd_fate(cmd_op_class(hdr.op));
    if (fate == sim::FaultInjector::CmdFate::Crash) {
      // The whole delegation process dies taking this request with it. If
      // the spec schedules a restart, the process comes back empty-handed
      // but with its object table intact (kernel-owned state).
      crashed_ = true;
      sim::trace_instant("node" + std::to_string(memory_.node()) + ".delegate",
                         "fault:delegate-crash", channel_.engine().now());
      sim::Log::trace(channel_.engine().now(), "dcfa.delegate",
                      "fault: crashing on req %llu",
                      static_cast<unsigned long long>(hdr.req_id));
      if (const sim::Time restart = faults_->spec().delegate_restart_ns;
          restart > 0) {
        channel_.engine().schedule_after(restart, [this] {
          crashed_ = false;
          sim::trace_instant(
              "node" + std::to_string(memory_.node()) + ".delegate",
              "delegate-restart", channel_.engine().now());
          sim::Log::trace(channel_.engine().now(), "dcfa.delegate",
                          "restarted");
        });
      }
      return;
    }
    if (fate == sim::FaultInjector::CmdFate::Drop) {
      sim::trace_instant("node" + std::to_string(memory_.node()) + ".delegate",
                         "fault:cmd-drop", channel_.engine().now());
      sim::Log::trace(channel_.engine().now(), "dcfa.delegate",
                      "fault: swallowing req %llu",
                      static_cast<unsigned long long>(hdr.req_id));
      return;
    }
    if (fate == sim::FaultInjector::CmdFate::Fail) {
      sim::trace_instant("node" + std::to_string(memory_.node()) + ".delegate",
                         "fault:cmd-fail", channel_.engine().now());
      sim::Log::trace(channel_.engine().now(), "dcfa.delegate",
                      "fault: failing req %llu",
                      static_cast<unsigned long long>(hdr.req_id));
      reply(hdr.req_id, CmdStatus::Failed, {}, base);
      return;
    }
  }

  try {
    switch (hdr.op) {
      case CmdOp::AllocPd: {
        auto* pd = hca_.alloc_pd();
        Handle h = next_handle_++;
        objects_[h] = pd;
        payload.put(h).put(reinterpret_cast<std::uintptr_t>(pd));
        reply(hdr.req_id, CmdStatus::Ok, std::move(payload), base);
        return;
      }
      case CmdOp::RegMr: {
        const auto pd_h = r.get<Handle>();
        const auto addr = r.get<mem::SimAddr>();
        const auto len = r.get<std::uint64_t>();
        const auto access = r.get<std::uint32_t>();
        auto* pd_p = pd(pd_h);
        if (!pd_p) {
          reply(hdr.req_id, CmdStatus::BadHandle, {}, base);
          return;
        }
        // The client sent a *physical* (simulated-device) address; the host
        // driver extension maps the Phi memory so the HCA can reach it.
        const mem::Domain domain =
            memory_.space(mem::Domain::PhiGddr).contains(addr, len)
                ? mem::Domain::PhiGddr
                : mem::Domain::HostDram;
        auto* mr_p = hca_.reg_mr(pd_p, domain, addr, len, access);
        Handle h = next_handle_++;
        objects_[h] = mr_p;
        payload.put(h)
            .put(mr_p->lkey())
            .put(mr_p->rkey())
            .put(reinterpret_cast<std::uintptr_t>(mr_p));
        const std::size_t pages =
            (len + mem::AddressSpace::kPage - 1) / mem::AddressSpace::kPage;
        reply(hdr.req_id, CmdStatus::Ok, std::move(payload),
              base + platform_.host_reg_mr_per_page *
                         static_cast<sim::Time>(pages));
        return;
      }
      case CmdOp::DeregMr: {
        const auto h = r.get<Handle>();
        auto* mr_p = mr(h);
        if (!mr_p) {
          reply(hdr.req_id, CmdStatus::BadHandle, {}, base);
          return;
        }
        hca_.dereg_mr(mr_p);
        objects_.erase(h);
        reply(hdr.req_id, CmdStatus::Ok, {}, base / 2);
        return;
      }
      case CmdOp::CreateCq: {
        const auto cap = r.get<std::int32_t>();
        auto* cq_p = hca_.create_cq(cap);
        Handle h = next_handle_++;
        objects_[h] = cq_p;
        payload.put(h).put(reinterpret_cast<std::uintptr_t>(cq_p));
        reply(hdr.req_id, CmdStatus::Ok, std::move(payload), base);
        return;
      }
      case CmdOp::CreateQp: {
        const auto pd_h = r.get<Handle>();
        const auto scq_h = r.get<Handle>();
        const auto rcq_h = r.get<Handle>();
        auto* pd_p = pd(pd_h);
        auto* scq_p = cq(scq_h);
        auto* rcq_p = cq(rcq_h);
        if (!pd_p || !scq_p || !rcq_p) {
          reply(hdr.req_id, CmdStatus::BadHandle, {}, base);
          return;
        }
        auto* qp_p = hca_.create_qp(pd_p, scq_p, rcq_p);
        Handle h = next_handle_++;
        objects_[h] = qp_p;
        payload.put(h)
            .put(qp_p->qpn())
            .put(hca_.lid())
            .put(reinterpret_cast<std::uintptr_t>(qp_p));
        reply(hdr.req_id, CmdStatus::Ok, std::move(payload), base);
        return;
      }
      case CmdOp::ConnectQp: {
        const auto qp_h = r.get<Handle>();
        const auto lid = r.get<ib::Lid>();
        const auto qpn = r.get<ib::Qpn>();
        auto* qp_p = qp(qp_h);
        if (!qp_p) {
          reply(hdr.req_id, CmdStatus::BadHandle, {}, base);
          return;
        }
        hca_.connect(qp_p, lid, qpn);
        reply(hdr.req_id, CmdStatus::Ok, {}, base);
        return;
      }
      case CmdOp::DestroyQp: {
        const auto qp_h = r.get<Handle>();
        auto* qp_p = qp(qp_h);
        if (!qp_p) {
          reply(hdr.req_id, CmdStatus::BadHandle, {}, base);
          return;
        }
        hca_.destroy_qp(qp_p);
        objects_.erase(qp_h);
        reply(hdr.req_id, CmdStatus::Ok, {}, base / 2);
        return;
      }
      case CmdOp::RegOffloadMr: {
        const auto pd_h = r.get<Handle>();
        const auto size = r.get<std::uint64_t>();
        // Register under the *client's* PD so the Phi can post sends that
        // gather from the shadow through its own QPs.
        ib::ProtectionDomain* pd_p = pd_h ? pd(pd_h) : nullptr;
        if (!pd_p) {
          if (!delegate_pd_) delegate_pd_ = hca_.alloc_pd();
          pd_p = delegate_pd_;
        }
        OffloadEntry entry;
        entry.shadow = memory_.alloc(mem::Domain::HostDram, size,
                                     mem::AddressSpace::kPage);
        entry.mr = hca_.reg_mr(pd_p, mem::Domain::HostDram,
                               entry.shadow.addr(), size,
                               ib::kLocalWrite | ib::kRemoteRead |
                                   ib::kRemoteWrite);
        Handle h = next_handle_++;
        OffloadMrInfo info{h, entry.shadow.addr(), size, entry.mr->lkey(),
                           entry.mr->rkey()};
        objects_[h] = std::move(entry);
        payload.put(info);
        const std::size_t pages =
            (size + mem::AddressSpace::kPage - 1) / mem::AddressSpace::kPage;
        // Allocation of the shadow buffer plus registration.
        reply(hdr.req_id, CmdStatus::Ok, std::move(payload),
              base + sim::microseconds(5) +
                  platform_.host_reg_mr_per_page *
                      static_cast<sim::Time>(pages));
        return;
      }
      case CmdOp::ReduceShadow: {
        // Host CPU applies the reduction over two host shadow arrays — a
        // delegated collective kernel (Section VI future work). The wide
        // Xeon core chews elements far faster than a 1 GHz in-order Phi
        // core, which is the entire point of offloading it.
        const auto addr_a = r.get<mem::SimAddr>();
        const auto addr_b = r.get<mem::SimAddr>();
        const auto count = r.get<std::uint64_t>();
        const auto kind = r.get<ElemKind>();
        const auto fn = r.get<ReduceFn>();
        const std::size_t bytes = count * elem_size(kind);
        std::byte* a =
            memory_.space(mem::Domain::HostDram).resolve(addr_a, bytes);
        const std::byte* b =
            memory_.space(mem::Domain::HostDram).resolve(addr_b, bytes);
        apply_reduce(kind, fn, a, b, count);
        reply(hdr.req_id, CmdStatus::Ok, {},
              sim::microseconds(2) +
                  sim::transfer_time(2 * bytes,
                                     platform_.host_reduce_gbps));
        return;
      }
      case CmdOp::PackShadow: {
        // Host CPU packs a strided datatype from a shadow copy of the user
        // buffer into a dense, registered host buffer that doubles as the
        // offloading send buffer for the subsequent RDMA.
        const auto pd_h = r.get<Handle>();
        const auto src_addr = r.get<mem::SimAddr>();
        const auto count = r.get<std::uint64_t>();
        const auto extent = r.get<std::uint64_t>();
        const auto packed_bytes = r.get<std::uint64_t>();
        const auto nblocks = r.get<std::uint64_t>();
        std::vector<PackBlock> blocks(nblocks);
        for (auto& b : blocks) b = r.get<PackBlock>();

        ib::ProtectionDomain* pd_p = pd_h ? pd(pd_h) : nullptr;
        if (!pd_p) {
          if (!delegate_pd_) delegate_pd_ = hca_.alloc_pd();
          pd_p = delegate_pd_;
        }
        const std::byte* src = memory_.space(mem::Domain::HostDram)
                                   .resolve(src_addr, count * extent);
        OffloadEntry entry;
        entry.shadow = memory_.alloc(mem::Domain::HostDram,
                                     std::max<std::size_t>(packed_bytes, 1),
                                     mem::AddressSpace::kPage);
        pack_strided(src, entry.shadow.data(), count, extent, blocks.data(),
                     nblocks);
        entry.mr = hca_.reg_mr(pd_p, mem::Domain::HostDram,
                               entry.shadow.addr(), entry.shadow.size(),
                               ib::kLocalWrite | ib::kRemoteRead |
                                   ib::kRemoteWrite);
        Handle h = next_handle_++;
        OffloadMrInfo info{h, entry.shadow.addr(), entry.shadow.size(),
                           entry.mr->lkey(), entry.mr->rkey()};
        objects_[h] = std::move(entry);
        payload.put(info);
        const std::size_t pages =
            (packed_bytes + mem::AddressSpace::kPage - 1) /
            mem::AddressSpace::kPage;
        reply(hdr.req_id, CmdStatus::Ok, std::move(payload),
              base + sim::microseconds(5) +
                  platform_.host_reg_mr_per_page *
                      static_cast<sim::Time>(pages) +
                  sim::transfer_time(count * extent,
                                     platform_.host_pack_gbps));
        return;
      }
      case CmdOp::DeregOffloadMr: {
        const auto h = r.get<Handle>();
        auto it = objects_.find(h);
        if (it == objects_.end() ||
            !std::holds_alternative<OffloadEntry>(it->second)) {
          reply(hdr.req_id, CmdStatus::BadHandle, {}, base);
          return;
        }
        auto& entry = std::get<OffloadEntry>(it->second);
        hca_.dereg_mr(entry.mr);
        memory_.space(mem::Domain::HostDram).free(entry.shadow);
        objects_.erase(it);
        reply(hdr.req_id, CmdStatus::Ok, {}, base / 2);
        return;
      }
    }
    reply(hdr.req_id, CmdStatus::BadArgument, {}, base);
  } catch (const std::exception& e) {
    sim::Log::error(channel_.engine().now(), "dcfa.delegate",
                    "command failed: %s", e.what());
    reply(hdr.req_id, CmdStatus::Failed, {}, base);
  }
}

}  // namespace dcfa::core
