#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <type_traits>
#include <variant>

#include "dcfa/host_compute.hpp"
#include "ib/hca.hpp"
#include "scif/scif.hpp"
#include "sim/fault.hpp"

namespace dcfa::core {

/// DCFA command opcodes — the requests a Xeon Phi user-space program must
/// offload to the host because a PCIe device cannot configure the HCA
/// itself (Section IV-B1, "DCFA CMD server / client").
enum class CmdOp : std::uint32_t {
  AllocPd,
  RegMr,          ///< params: pd handle, phys addr, length, access
  DeregMr,        ///< params: mr handle
  CreateCq,       ///< params: capacity
  CreateQp,       ///< params: pd, send cq, recv cq handles
  ConnectQp,      ///< params: qp handle, remote lid, remote qpn
  DestroyQp,      ///< params: qp handle; used by connection recovery to tear
                  ///< down a QP wedged in the error state
  RegOffloadMr,   ///< params: size -> host shadow buffer + MR
  DeregOffloadMr, ///< params: offload handle
  // --- DCFA-MPI CMD ops (the paper's future work, Section VI): heavy MPI
  // functions executed by the host CPU on shadow buffers. ---
  ReduceShadow,   ///< params: addr_a, addr_b (host), count, kind, fn
  PackShadow,     ///< params: src addr, count, extent, blocks[] -> packed
                  ///< host buffer + MR (an offload region holding the
                  ///< densely packed data)
};

enum class CmdStatus : std::uint32_t { Ok, BadHandle, BadArgument, Failed };

/// Thrown by the Phi-side CMD client when a delegated verb definitively
/// failed: a non-Ok reply, or no reply within the timeout after the retry
/// budget ran out. Callers with a fallback (the offload shadow path) catch
/// it; callers without one surface it as an MPI error.
class CmdError : public std::runtime_error {
 public:
  CmdError(CmdOp op, CmdStatus status, const std::string& what)
      : std::runtime_error(what), op_(op), status_(status) {}
  CmdOp op() const { return op_; }
  CmdStatus status() const { return status_; }

 private:
  CmdOp op_;
  CmdStatus status_;
};

/// Coarse class of a CMD op for the fault injector's cmd_op= filter.
inline sim::FaultInjector::CmdOpClass cmd_op_class(CmdOp op) {
  switch (op) {
    case CmdOp::RegMr:
    case CmdOp::DeregMr:
      return sim::FaultInjector::CmdOpClass::RegMr;
    case CmdOp::RegOffloadMr:
    case CmdOp::DeregOffloadMr:
    case CmdOp::ReduceShadow:
    case CmdOp::PackShadow:
      return sim::FaultInjector::CmdOpClass::Offload;
    case CmdOp::AllocPd:
    case CmdOp::CreateCq:
    case CmdOp::CreateQp:
    case CmdOp::ConnectQp:
    case CmdOp::DestroyQp:
      return sim::FaultInjector::CmdOpClass::Create;
  }
  return sim::FaultInjector::CmdOpClass::Other;
}

struct CmdHeader {
  CmdOp op;
  std::uint64_t req_id;
};

struct RespHeader {
  std::uint64_t req_id;
  CmdStatus status;
};

// CMD headers travel over the SCIF channel as raw bytes; fixed-width fields
// only, and the layout must be byte-copyable (dcfa_lint wire-struct rule).
static_assert(std::is_trivially_copyable_v<CmdHeader>);
static_assert(std::is_trivially_copyable_v<RespHeader>);

/// A handle published by the host delegation process ("a hash key for later
/// reuse" in the paper's words).
using Handle = std::uint64_t;

/// Reply payload of RegOffloadMr: where the host shadow buffer lives and the
/// keys to send from it.
struct OffloadMrInfo {
  Handle handle = 0;
  mem::SimAddr host_addr = 0;
  std::uint64_t size = 0;  ///< fixed-width: size_t differs across ABIs
  ib::MKey lkey = 0;
  ib::MKey rkey = 0;
};

static_assert(std::is_trivially_copyable_v<OffloadMrInfo>);

/// The DCFA CMD server: an extension of the host delegation process (mcexec)
/// that receives offloaded InfiniBand requests from one Phi client, executes
/// the corresponding host verbs, stores every created object in a hash
/// table, and replies with its handle.
///
/// Event-driven: it subscribes to the SCIF channel rather than burning a
/// simulated core, and serialises request handling through a Resource so
/// back-to-back commands queue like they would on the real single delegation
/// thread.
class HostDelegate {
 public:
  HostDelegate(scif::Channel& channel, ib::Hca& hca, mem::NodeMemory& memory);
  ~HostDelegate();

  HostDelegate(const HostDelegate&) = delete;
  HostDelegate& operator=(const HostDelegate&) = delete;

  /// Objects created on behalf of the client (for tests/stats).
  std::size_t table_size() const { return objects_.size(); }
  std::uint64_t requests_served() const { return served_; }

  /// True while the delegation process is dead (delegate_crash fault).
  /// Every request is swallowed until the scheduled restart, if any.
  bool crashed() const { return crashed_; }

  /// Arm fault injection: requests may be swallowed (client times out) or
  /// answered with CmdStatus::Failed, always *before* execution so a client
  /// retry never double-creates an object. nullptr disarms.
  void set_faults(sim::FaultInjector* faults) { faults_ = faults; }

  /// Host-side lookup used by the Phi client after a reply: the simulated
  /// equivalent of the mmap'ed structures the host shares back.
  ib::ProtectionDomain* pd(Handle h);
  ib::MemoryRegion* mr(Handle h);
  ib::CompletionQueue* cq(Handle h);
  ib::QueuePair* qp(Handle h);

 private:
  struct OffloadEntry {
    mem::Buffer shadow;
    ib::MemoryRegion* mr;
  };
  using Object = std::variant<ib::ProtectionDomain*, ib::MemoryRegion*,
                              ib::CompletionQueue*, ib::QueuePair*,
                              OffloadEntry>;

  void service();
  void handle(std::vector<std::byte> msg);
  void reply(std::uint64_t req_id, CmdStatus status, scif::Writer payload,
             sim::Time service_time);

  scif::Channel& channel_;
  ib::Hca& hca_;
  mem::NodeMemory& memory_;
  const sim::Platform& platform_;
  sim::FaultInjector* faults_ = nullptr;
  sim::Resource busy_;
  ib::ProtectionDomain* delegate_pd_ = nullptr;  // PD for offload shadows

  Handle next_handle_ = 1;
  std::map<Handle, Object> objects_;
  std::uint64_t served_ = 0;
  bool crashed_ = false;
};

}  // namespace dcfa::core
