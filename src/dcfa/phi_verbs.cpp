#include "dcfa/phi_verbs.hpp"

#include <stdexcept>

#include "sim/log.hpp"
#include "sim/trace.hpp"

namespace dcfa::core {

PhiVerbs::PhiVerbs(sim::Process& proc, ib::Fabric& fabric,
                   mem::NodeMemory& memory, scif::Channel& channel)
    : proc_(proc),
      fabric_(fabric),
      memory_(memory),
      channel_(channel),
      hca_(fabric.hca_for_node(memory.node())),
      platform_(fabric.platform()) {}

void PhiVerbs::enter_proxy_fallback() {
  if (proxy_fallback_) return;
  proxy_fallback_ = true;
  sim::trace_instant("node" + std::to_string(memory_.node()) + ".cmd",
                     "proxy-fallback", channel_.engine().now());
  sim::Log::info(channel_.engine().now(), "dcfa.cmd",
                 "delegate dead: degrading to the host-proxy path");
}

bool PhiVerbs::note_delegate_death() {
  if (proxy_fallback_) return true;
  sim::FaultInjector* fi = faults();
  if (!fi || !fi->spec().fatal_armed()) return false;
  ++delegate_strikes_;
  if (delegate_strikes_ > platform_.dcfa_delegate_death_budget) {
    enter_proxy_fallback();
  }
  return true;
}

void PhiVerbs::charge_proxy_verb(sim::Time host_cost) {
  // One proxied resource verb: SCIF round trip to the host IB Proxy Daemon
  // plus the host-side verb cost. The delegate's hash table died with it,
  // but the kernel-owned IB objects survive, so the daemon can serve them.
  proc_.wait(2 * platform_.scif_msg_latency + host_cost);
}

bool PhiVerbs::recv_reply(std::uint64_t req_id) {
  sim::Engine& eng = channel_.engine();
  const sim::Time deadline = eng.now() + platform_.dcfa_cmd_timeout;
  auto& cond = channel_.arrival(scif::Channel::Side::Phi);
  // The process API has no timed wait; one engine event at the deadline
  // wakes the wait_on loop so it can observe the timeout.
  eng.schedule_at(deadline, [&cond] { cond.notify_all(); });
  std::vector<std::byte> msg;
  for (;;) {
    while (channel_.try_recv(scif::Channel::Side::Phi, msg)) {
      scif::Reader r(msg);
      const auto resp = r.get<RespHeader>();
      if (resp.req_id == req_id) {
        last_reply_ = std::move(msg);
        return true;
      }
      if (resp.req_id > req_id) {
        throw std::logic_error("DCFA CMD: reply for an unsent request");
      }
      // Reply of an earlier attempt that we already gave up on.
      sim::Log::trace(eng.now(), "dcfa.cmd", "discarding stale reply %llu",
                      static_cast<unsigned long long>(resp.req_id));
    }
    if (eng.now() >= deadline) return false;
    proc_.wait_on(cond);
  }
}

scif::Reader PhiVerbs::cmd_call(
    CmdOp op, const std::function<void(scif::Writer&)>& params) {
  if (proxy_fallback_) {
    // The delegate is gone for good; don't burn the reply-timeout budget
    // against it. Offload verbs have no proxy equivalent — callers fall
    // back to their direct-MR / local-compute paths.
    throw CmdError(op, CmdStatus::Failed,
                   "DCFA CMD: delegate dead, endpoint degraded to proxy (op " +
                       std::to_string(static_cast<int>(op)) + ")");
  }
  sim::FaultInjector* fi = faults();
  const bool armed = fi && fi->armed();
  const int attempts_allowed = 1 + (armed ? platform_.dcfa_cmd_max_retries : 0);

  for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
    if (attempt > 0) {
      ++cmd_retries_;
      sim::trace_instant("node" + std::to_string(memory_.node()) + ".cmd",
                         "cmd-retry", channel_.engine().now());
      proc_.wait(platform_.dcfa_cmd_retry_backoff << (attempt - 1));
    }
    const std::uint64_t req_id = next_req_id_++;
    scif::Writer w;
    w.put(CmdHeader{op, req_id});
    if (params) params(w);

    // Syscall into the micro-kernel (parameter marshalling, address
    // translation), then the CMD client ships the request host-wards.
    proc_.wait(platform_.dcfa_cmd_client_overhead);
    channel_.send(proc_, scif::Channel::Side::Phi, w.bytes());

    if (armed) {
      if (!recv_reply(req_id)) {
        ++cmd_timeouts_;
        sim::Log::trace(channel_.engine().now(), "dcfa.cmd",
                        "reply timeout on req %llu (attempt %d)",
                        static_cast<unsigned long long>(req_id), attempt + 1);
        continue;  // resend under a fresh request id
      }
    } else {
      last_reply_ = channel_.recv(proc_, scif::Channel::Side::Phi);
    }
    scif::Reader r(last_reply_);
    const auto resp = r.get<RespHeader>();
    if (resp.req_id != req_id) {
      throw std::logic_error("DCFA CMD: out-of-order reply");
    }
    if (resp.status == CmdStatus::Ok) return r;
    if (armed && resp.status == CmdStatus::Failed) {
      // Transient host-side failure (the fault injector's cmd_fail, or a
      // delegate-side exception): back off and resend.
      continue;
    }
    throw CmdError(op, resp.status,
                   "DCFA CMD: host delegation failed (op " +
                       std::to_string(static_cast<int>(op)) + ")");
  }
  throw CmdError(op, CmdStatus::Failed,
                 "DCFA CMD: retry budget exhausted (op " +
                     std::to_string(static_cast<int>(op)) + ")");
}

ib::ProtectionDomain* PhiVerbs::alloc_pd() {
  if (proxy_fallback_) {
    charge_proxy_verb(platform_.host_reg_mr_base);
    auto* pd = hca_.alloc_pd();
    handles_[pd] = 0;
    return pd;
  }
  try {
    auto r = cmd_call(CmdOp::AllocPd);
    const auto handle = r.get<Handle>();
    auto* pd =
        reinterpret_cast<ib::ProtectionDomain*>(r.get<std::uintptr_t>());
    handles_[pd] = handle;
    return pd;
  } catch (const CmdError&) {
    if (!note_delegate_death()) throw;
    return alloc_pd();
  }
}

ib::MemoryRegion* PhiVerbs::reg_mr(ib::ProtectionDomain* pd,
                                   const mem::Buffer& buf, unsigned access) {
  auto it = handles_.find(pd);
  if (it == handles_.end()) throw std::invalid_argument("reg_mr: foreign PD");
  const Handle pd_h = it->second;
  // The CMD client translates the user buffer's virtual address to physical
  // pages before shipping the request (Section IV-B1); that walk is the
  // per-page client cost.
  const std::size_t pages =
      (buf.size() + mem::AddressSpace::kPage - 1) / mem::AddressSpace::kPage;
  proc_.wait(platform_.phi_reg_mr_per_page * static_cast<sim::Time>(pages));

  if (proxy_fallback_) {
    charge_proxy_verb(platform_.host_reg_mr_base +
                      platform_.host_reg_mr_per_page *
                          static_cast<sim::Time>(pages));
    auto* mr = hca_.reg_mr(pd, buf.domain(), buf.addr(), buf.size(), access);
    handles_[mr] = 0;
    return mr;
  }
  try {
    auto r = cmd_call(CmdOp::RegMr, [&](scif::Writer& w) {
      w.put(pd_h)
          .put(buf.addr())
          .put(static_cast<std::uint64_t>(buf.size()))
          .put(static_cast<std::uint32_t>(access));
    });
    const auto handle = r.get<Handle>();
    (void)r.get<ib::MKey>();  // lkey (embedded in the returned object)
    (void)r.get<ib::MKey>();  // rkey
    auto* mr = reinterpret_cast<ib::MemoryRegion*>(r.get<std::uintptr_t>());
    handles_[mr] = handle;
    return mr;
  } catch (const CmdError&) {
    if (!note_delegate_death()) throw;
    return reg_mr(pd, buf, access);  // once more via CMD, or the proxy path
  }
}

void PhiVerbs::dereg_mr(ib::MemoryRegion* mr) {
  auto it = handles_.find(mr);
  if (it == handles_.end()) throw std::invalid_argument("dereg_mr: foreign MR");
  const Handle h = it->second;
  if (proxy_fallback_) {
    charge_proxy_verb(platform_.host_reg_mr_base / 2);
    hca_.dereg_mr(mr);
  } else {
    try {
      cmd_call(CmdOp::DeregMr, [&](scif::Writer& w) { w.put(h); });
    } catch (const CmdError&) {
      if (!note_delegate_death()) throw;
      dereg_mr(mr);  // the retry erases the handle
      return;
    }
  }
  handles_.erase(mr);
}

ib::CompletionQueue* PhiVerbs::create_cq(int capacity) {
  if (proxy_fallback_) {
    charge_proxy_verb(platform_.host_reg_mr_base);
    auto* cq = hca_.create_cq(capacity);
    handles_[cq] = 0;
    return cq;
  }
  try {
    auto r = cmd_call(CmdOp::CreateCq, [&](scif::Writer& w) {
      w.put(static_cast<std::int32_t>(capacity));
    });
    const auto handle = r.get<Handle>();
    auto* cq = reinterpret_cast<ib::CompletionQueue*>(r.get<std::uintptr_t>());
    handles_[cq] = handle;
    return cq;
  } catch (const CmdError&) {
    if (!note_delegate_death()) throw;
    return create_cq(capacity);
  }
}

ib::QueuePair* PhiVerbs::create_qp(ib::ProtectionDomain* pd,
                                   ib::CompletionQueue* send_cq,
                                   ib::CompletionQueue* recv_cq) {
  auto pd_it = handles_.find(pd);
  auto s_it = handles_.find(send_cq);
  auto r_it = handles_.find(recv_cq);
  if (pd_it == handles_.end() || s_it == handles_.end() ||
      r_it == handles_.end()) {
    throw std::invalid_argument("create_qp: foreign object");
  }
  if (proxy_fallback_) {
    charge_proxy_verb(platform_.host_reg_mr_base);
    auto* qp = hca_.create_qp(pd, send_cq, recv_cq);
    handles_[qp] = 0;
    return qp;
  }
  try {
    auto r = cmd_call(CmdOp::CreateQp, [&](scif::Writer& w) {
      w.put(pd_it->second).put(s_it->second).put(r_it->second);
    });
    const auto handle = r.get<Handle>();
    (void)r.get<ib::Qpn>();
    (void)r.get<ib::Lid>();
    auto* qp = reinterpret_cast<ib::QueuePair*>(r.get<std::uintptr_t>());
    handles_[qp] = handle;
    return qp;
  } catch (const CmdError&) {
    if (!note_delegate_death()) throw;
    return create_qp(pd, send_cq, recv_cq);
  }
}

void PhiVerbs::connect(ib::QueuePair* qp, verbs::QpAddress remote) {
  auto it = handles_.find(qp);
  if (it == handles_.end()) throw std::invalid_argument("connect: foreign QP");
  const Handle h = it->second;
  if (proxy_fallback_) {
    charge_proxy_verb(platform_.host_reg_mr_base);
    hca_.connect(qp, remote.lid, remote.qpn);
    return;
  }
  try {
    cmd_call(CmdOp::ConnectQp, [&](scif::Writer& w) {
      w.put(h).put(remote.lid).put(remote.qpn);
    });
  } catch (const CmdError&) {
    if (!note_delegate_death()) throw;
    connect(qp, remote);
  }
}

void PhiVerbs::destroy_qp(ib::QueuePair* qp) {
  auto it = handles_.find(qp);
  if (it == handles_.end()) {
    throw std::invalid_argument("destroy_qp: foreign QP");
  }
  const Handle h = it->second;
  if (proxy_fallback_) {
    charge_proxy_verb(platform_.host_reg_mr_base / 2);
    hca_.destroy_qp(qp);
  } else {
    try {
      cmd_call(CmdOp::DestroyQp, [&](scif::Writer& w) { w.put(h); });
    } catch (const CmdError&) {
      if (!note_delegate_death()) throw;
      destroy_qp(qp);  // the retry erases the handle
      return;
    }
  }
  handles_.erase(qp);
}

verbs::QpAddress PhiVerbs::address(ib::QueuePair* qp) {
  return verbs::QpAddress{hca_.lid(), qp->qpn()};
}

void PhiVerbs::post_send(ib::QueuePair* qp, ib::SendWr wr) {
  if (proxy_fallback_) {
    // Degraded endpoint: the work request rides the MPSS proxy path — relay
    // enqueue on the host plus the daemon hop's latency, exactly like the
    // Intel-MPI baseline transport (baselines/proxy_verbs.hpp).
    proc_.wait(platform_.host_post_overhead + platform_.phi_post_overhead);
    channel_.engine().schedule_after(
        platform_.proxy_hop_latency, [this, qp, wr = std::move(wr)]() mutable {
          hca_.post_send(qp, std::move(wr));
        });
    return;
  }
  // Direct doorbell from the card — no host involvement. A 1 GHz in-order
  // core builds the WQE noticeably slower than a Xeon.
  proc_.wait(platform_.phi_post_overhead);
  hca_.post_send(qp, std::move(wr));
}

void PhiVerbs::post_recv(ib::QueuePair* qp, ib::RecvWr wr) {
  proc_.wait(platform_.phi_post_overhead);
  hca_.post_recv(qp, std::move(wr));
}

int PhiVerbs::poll_cq(ib::CompletionQueue* cq, int max, ib::Wc* out) {
  int n = cq->poll(max, out);
  if (n > 0) proc_.wait(platform_.phi_poll_overhead);
  return n;
}

void PhiVerbs::wait_cq(ib::CompletionQueue* cq) {
  if (cq->depth() > 0) return;
  proc_.wait_on(cq->arrival());
}

mem::Buffer PhiVerbs::alloc_buffer(std::size_t size, std::size_t align) {
  return memory_.alloc(mem::Domain::PhiGddr, size, align);
}

void PhiVerbs::free_buffer(const mem::Buffer& buf) {
  memory_.space(buf.domain()).free(buf);
}

void PhiVerbs::charge_memcpy(std::size_t bytes) {
  proc_.wait(sim::transfer_time(bytes, platform_.phi_memcpy_gbps));
}

OffloadRegion PhiVerbs::reg_offload_mr(ib::ProtectionDomain* pd,
                                       std::size_t size) {
  Handle pd_h = 0;
  if (pd) {
    auto it = handles_.find(pd);
    if (it == handles_.end()) {
      throw std::invalid_argument("reg_offload_mr: foreign PD");
    }
    pd_h = it->second;
  }
  auto r = cmd_call(CmdOp::RegOffloadMr, [&](scif::Writer& w) {
    w.put(pd_h).put(static_cast<std::uint64_t>(size));
  });
  const auto info = r.get<OffloadMrInfo>();
  return OffloadRegion{info.handle, info.host_addr, info.size, info.lkey,
                       info.rkey};
}

void PhiVerbs::sync_offload_mr(const OffloadRegion& region,
                               const mem::Buffer& src, std::size_t offset,
                               std::size_t len) {
  if (offset + len > region.size) {
    throw std::out_of_range("sync_offload_mr: window escapes shadow");
  }
  channel_.pcie().dma(proc_, src.domain(), src.addr() + offset,
                      mem::Domain::HostDram, region.host_addr + offset, len);
}

sim::Time PhiVerbs::sync_offload_mr_async(const OffloadRegion& region,
                                          mem::SimAddr src_addr,
                                          std::size_t offset, std::size_t len,
                                          std::function<void()> on_done) {
  if (offset + len > region.size) {
    throw std::out_of_range("sync_offload_mr_async: window escapes shadow");
  }
  return channel_.pcie().dma_async(mem::Domain::PhiGddr, src_addr,
                                   mem::Domain::HostDram,
                                   region.host_addr + offset, len,
                                   std::move(on_done));
}

void PhiVerbs::reduce_shadow(mem::SimAddr a, mem::SimAddr b,
                             std::size_t count, ElemKind kind, ReduceFn fn) {
  cmd_call(CmdOp::ReduceShadow, [&](scif::Writer& w) {
    w.put(a).put(b).put(static_cast<std::uint64_t>(count)).put(kind).put(fn);
  });
}

OffloadRegion PhiVerbs::pack_shadow(ib::ProtectionDomain* pd,
                                    mem::SimAddr src_addr, std::size_t count,
                                    std::size_t extent,
                                    std::size_t packed_bytes,
                                    const std::vector<PackBlock>& blocks) {
  Handle pd_h = 0;
  if (pd) {
    auto it = handles_.find(pd);
    if (it == handles_.end()) {
      throw std::invalid_argument("pack_shadow: foreign PD");
    }
    pd_h = it->second;
  }
  auto r = cmd_call(CmdOp::PackShadow, [&](scif::Writer& w) {
    w.put(pd_h)
        .put(src_addr)
        .put(static_cast<std::uint64_t>(count))
        .put(static_cast<std::uint64_t>(extent))
        .put(static_cast<std::uint64_t>(packed_bytes))
        .put(static_cast<std::uint64_t>(blocks.size()));
    for (const PackBlock& b : blocks) w.put(b);
  });
  const auto info = r.get<OffloadMrInfo>();
  return OffloadRegion{info.handle, info.host_addr, info.size, info.lkey,
                       info.rkey};
}

void PhiVerbs::dereg_offload_mr(const OffloadRegion& region) {
  cmd_call(CmdOp::DeregOffloadMr,
           [&](scif::Writer& w) { w.put(region.handle); });
}

}  // namespace dcfa::core
