#pragma once

// Element-wise kernels shared between the host delegation process and the
// MPI layer. The paper's future-work section plans to offload "some heavy
// functions, such as collective communication and communication using user
// defined data types" to the host CPU (Section VI, and the DCFA-MPI CMD
// server/client components of Figure 3); these are the kernels that
// delegation executes. Kept free of MPI types so dcfa::core stays below
// dcfa::mpi in the layering.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>

namespace dcfa::core {

/// Arithmetic element kinds understood by the delegated kernels.
enum class ElemKind : std::uint32_t { Int32, Int64, Float, Double };

inline std::size_t elem_size(ElemKind kind) {
  switch (kind) {
    case ElemKind::Int32: return sizeof(std::int32_t);
    case ElemKind::Int64: return sizeof(std::int64_t);
    case ElemKind::Float: return sizeof(float);
    case ElemKind::Double: return sizeof(double);
  }
  throw std::invalid_argument("elem_size: unknown kind");
}

/// Reduction functions (match mpi::Op semantics).
enum class ReduceFn : std::uint32_t { Sum, Prod, Max, Min };

namespace detail {
template <typename T>
void reduce_typed(ReduceFn fn, std::byte* a_raw, const std::byte* b_raw,
                  std::size_t count) {
  auto* a = reinterpret_cast<T*>(a_raw);
  auto* b = reinterpret_cast<const T*>(b_raw);
  for (std::size_t i = 0; i < count; ++i) {
    switch (fn) {
      case ReduceFn::Sum: a[i] = a[i] + b[i]; break;
      case ReduceFn::Prod: a[i] = a[i] * b[i]; break;
      case ReduceFn::Max: a[i] = b[i] > a[i] ? b[i] : a[i]; break;
      case ReduceFn::Min: a[i] = b[i] < a[i] ? b[i] : a[i]; break;
    }
  }
}
}  // namespace detail

/// a[i] = a[i] FN b[i] for `count` elements of `kind`.
inline void apply_reduce(ElemKind kind, ReduceFn fn, std::byte* a,
                         const std::byte* b, std::size_t count) {
  switch (kind) {
    case ElemKind::Int32:
      detail::reduce_typed<std::int32_t>(fn, a, b, count);
      return;
    case ElemKind::Int64:
      detail::reduce_typed<std::int64_t>(fn, a, b, count);
      return;
    case ElemKind::Float:
      detail::reduce_typed<float>(fn, a, b, count);
      return;
    case ElemKind::Double:
      detail::reduce_typed<double>(fn, a, b, count);
      return;
  }
  throw std::invalid_argument("apply_reduce: unknown kind");
}

/// One contiguous run within a strided element layout (wire format of the
/// delegated pack kernel; mirrors mpi::Datatype's internal blocks).
struct PackBlock {
  std::uint64_t offset;  ///< byte offset within one element extent
  std::uint64_t length;  ///< contiguous bytes
};

/// Pack `count` elements laid out as `blocks` within `extent`-byte strides
/// from `src` into the dense buffer `dst`.
inline void pack_strided(const std::byte* src, std::byte* dst,
                         std::size_t count, std::size_t extent,
                         const PackBlock* blocks, std::size_t nblocks) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::byte* base = src + i * extent;
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::memcpy(dst, base + blocks[b].offset, blocks[b].length);
      dst += blocks[b].length;
    }
  }
}

}  // namespace dcfa::core
