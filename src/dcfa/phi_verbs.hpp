#pragma once

#include <functional>

#include "dcfa/cmd.hpp"
#include "verbs/verbs.hpp"

namespace dcfa::core {

/// An offloading send-buffer region (Section IV-B4, Figure 6): a host-side
/// shadow buffer registered as an IB MR by the delegation process. The Phi
/// synchronises data into it with its DMA engine, then posts sends *from
/// host memory*, dodging the slow HCA-read-from-Phi path.
struct OffloadRegion {
  Handle handle = 0;
  mem::SimAddr host_addr = 0;
  std::size_t size = 0;
  ib::MKey lkey = 0;
  ib::MKey rkey = 0;

  bool valid() const { return handle != 0; }
};

/// DCFA IB IF — the user-space verbs library on the Xeon Phi co-processor.
///
/// Resource-creation verbs are offloaded to the host delegation process via
/// the DCFA CMD client (each one costs a SCIF round trip plus host work);
/// data-path verbs ring the HCA doorbells directly from the card, which is
/// the whole point of DCFA. The interface is uniform with HostVerbs so MPI
/// code moves between host and co-processor unchanged.
class PhiVerbs : public verbs::Ib {
 public:
  /// `delegate` must be the HostDelegate serving `channel`'s host side.
  PhiVerbs(sim::Process& proc, ib::Fabric& fabric, mem::NodeMemory& memory,
           scif::Channel& channel);

  // --- verbs::Ib ------------------------------------------------------------
  [[nodiscard]] ib::ProtectionDomain* alloc_pd() override;
  [[nodiscard]] ib::MemoryRegion* reg_mr(ib::ProtectionDomain* pd,
                                         const mem::Buffer& buf,
                                         unsigned access) override;
  void dereg_mr(ib::MemoryRegion* mr) override;
  [[nodiscard]] ib::CompletionQueue* create_cq(int capacity) override;
  [[nodiscard]] ib::QueuePair* create_qp(ib::ProtectionDomain* pd,
                                         ib::CompletionQueue* send_cq,
                                         ib::CompletionQueue* recv_cq) override;
  void connect(ib::QueuePair* qp, verbs::QpAddress remote) override;
  void destroy_qp(ib::QueuePair* qp) override;
  verbs::QpAddress address(ib::QueuePair* qp) override;

  void post_send(ib::QueuePair* qp, ib::SendWr wr) override;
  void post_recv(ib::QueuePair* qp, ib::RecvWr wr) override;
  int poll_cq(ib::CompletionQueue* cq, int max, ib::Wc* out) override;
  void wait_cq(ib::CompletionQueue* cq) override;

  mem::Buffer alloc_buffer(std::size_t size, std::size_t align) override;
  void free_buffer(const mem::Buffer& buf) override;
  mem::Domain data_domain() const override { return mem::Domain::PhiGddr; }
  void charge_memcpy(std::size_t bytes) override;

  sim::Process& process() override { return proc_; }
  mem::NodeId node() const override { return memory_.node(); }
  ib::Hca& hca_ref() override { return hca_; }

  // --- Offloading send buffer (the paper's three added functions) ----------
  /// Allocate + register a host shadow buffer of `size` bytes under `pd`
  /// (the client's protection domain; pass nullptr to let the delegation
  /// process use its own — fine for raw DCFA programs that only expose the
  /// shadow via its rkey).
  OffloadRegion reg_offload_mr(ib::ProtectionDomain* pd, std::size_t size);
  /// Blocking Phi->host DMA of [src.addr()+offset, +len) into the shadow at
  /// the same offset. Must precede the post_send that reads the shadow.
  void sync_offload_mr(const OffloadRegion& region, const mem::Buffer& src,
                       std::size_t offset, std::size_t len);
  /// Asynchronous variant for overlap; `on_done` fires at DMA completion.
  sim::Time sync_offload_mr_async(const OffloadRegion& region,
                                  mem::SimAddr src_addr, std::size_t offset,
                                  std::size_t len,
                                  std::function<void()> on_done = {});
  /// Tear down the shadow: deregister on the host, free the buffer.
  void dereg_offload_mr(const OffloadRegion& region);

  // --- DCFA-MPI CMD client (Section VI future work) -------------------------
  /// Delegate an element-wise reduction a[i] = a[i] FN b[i] over two host
  /// shadow windows; the host CPU executes it for real.
  void reduce_shadow(mem::SimAddr a, mem::SimAddr b, std::size_t count,
                     ElemKind kind, ReduceFn fn);
  /// Delegate a strided datatype pack: `src_addr` (host DRAM) holds
  /// `count` elements of `extent` bytes; the host packs the given blocks
  /// densely into a freshly allocated + registered host buffer and returns
  /// it as an offload region (it doubles as the offloading send buffer).
  OffloadRegion pack_shadow(ib::ProtectionDomain* pd, mem::SimAddr src_addr,
                            std::size_t count, std::size_t extent,
                            std::size_t packed_bytes,
                            const std::vector<PackBlock>& blocks);

  /// The node's PCIe port (for staging DMA by layered components).
  pcie::PciePort& pcie() { return channel_.pcie(); }
  mem::NodeMemory& node_memory() { return memory_; }

  /// Stats for tests: command round-trips issued so far.
  std::uint64_t commands_issued() const { return next_req_id_ - 1; }
  /// Fault recovery: CMD requests resent (after a timeout or a Failed
  /// reply) and reply timeouts observed. Zero unless faults were armed.
  std::uint64_t cmd_retries() const { return cmd_retries_; }
  std::uint64_t cmd_timeouts() const { return cmd_timeouts_; }

  // --- Graceful degradation (delegate death) --------------------------------
  /// Switch this endpoint to the host-proxy fallback: the delegation
  /// process is gone for good, so resource verbs are served by the host IB
  /// Proxy Daemon (modelled as direct HCA calls plus the SCIF round trip)
  /// and every posted work request pays the proxied relay latency, exactly
  /// like the Intel-MPI baseline transport. Irreversible by design: a
  /// delegate that comes back later does not un-degrade the endpoint.
  void enter_proxy_fallback();
  bool in_proxy_fallback() const { return proxy_fallback_; }

 protected:
  /// Model the cost of building a WQE on a Phi core (for transports layered
  /// on this one, e.g. the proxy baseline).
  void charge_post_overhead() { proc_.wait(platform_.phi_post_overhead); }

 private:
  /// One CMD round trip: encode, pay the client syscall cost, SCIF there and
  /// back, host service time. Returns a reader over the reply payload
  /// (header already consumed and checked). When faults are armed, adds a
  /// reply timeout with bounded-backoff resend; exhaustion throws CmdError.
  scif::Reader cmd_call(CmdOp op, const std::function<void(scif::Writer&)>&
                            params = {});

  /// Fault-armed reply wait: blocks until the reply for `req_id` arrives or
  /// the CMD timeout elapses (returns false). Stale replies of earlier
  /// timed-out attempts are discarded.
  bool recv_reply(std::uint64_t req_id);

  /// Cost of one resource verb served by the host proxy daemon (fallback
  /// mode): SCIF round trip + the host-side verb cost.
  void charge_proxy_verb(sim::Time host_cost);

  /// Record one CmdError budget exhaustion on a resource verb. Returns true
  /// when the caller should retry the verb: either the delegate gets one
  /// more full CMD retry cycle (a delegate_restart_ns restart may answer
  /// it), or the strike budget is spent and the endpoint has just been
  /// degraded to the proxy fallback. Returns false when fatal faults are
  /// not armed — the error stays the caller's problem, as before this
  /// subsystem existed.
  bool note_delegate_death();

  sim::Process& proc_;
  ib::Fabric& fabric_;
  mem::NodeMemory& memory_;
  scif::Channel& channel_;
  ib::Hca& hca_;
  const sim::Platform& platform_;

  std::uint64_t next_req_id_ = 1;
  std::uint64_t cmd_retries_ = 0;
  std::uint64_t cmd_timeouts_ = 0;
  bool proxy_fallback_ = false;
  int delegate_strikes_ = 0;
  std::vector<std::byte> last_reply_;
  /// Client-side handle map: object pointer -> host hash key.
  std::map<const void*, Handle> handles_;
};

}  // namespace dcfa::core
