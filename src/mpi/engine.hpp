#pragma once

#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <tuple>
#include <vector>

#include "dcfa/phi_verbs.hpp"
#include "mpi/coll.hpp"
#include "mpi/datatype.hpp"
#include "mpi/mr_cache.hpp"
#include "mpi/offload_cache.hpp"
#include "mpi/packet.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/check.hpp"
#include "verbs/verbs.hpp"

namespace dcfa::mpi {

/// Out-of-band wiring table (the PMI / mpirun role): each rank publishes,
/// for every peer, its QP address plus where that peer should RDMA-write
/// packets (ring) and credit updates (credit cell). Ranks block until their
/// peers have published.
class Bootstrap {
 public:
  struct PeerInfo {
    verbs::QpAddress qp;
    mem::SimAddr ring_addr = 0;
    ib::MKey ring_rkey = 0;
    mem::SimAddr credit_addr = 0;
    ib::MKey credit_rkey = 0;
    /// Peer-liveness heartbeat cell (zero unless fatal faults are armed).
    mem::SimAddr hb_addr = 0;
    ib::MKey hb_rkey = 0;
  };

  explicit Bootstrap(sim::Engine& engine) : cond_(engine, "bootstrap") {}

  /// Publish rank `from`'s info for peer `to`.
  void put(int from, int to, PeerInfo info);
  /// Block until `from` published for `to`, then return it.
  PeerInfo get(sim::Process& proc, int from, int to);

  // --- Connection recovery (fatal faults; see docs/faults.md) ---------------
  /// Re-publish `from`'s info for `to` at connection generation `epoch`
  /// (initial setup is epoch 0 and uses the plain table above).
  void put_epoch(int from, int to, std::uint32_t epoch, PeerInfo info);
  /// Non-blocking epoch lookup; nullptr until the peer published.
  const PeerInfo* try_get_epoch(int from, int to, std::uint32_t epoch) const;
  /// Reconnect-request board: `from` asks `to` to re-establish their pair at
  /// `epoch`. Epochs on the board are monotonic per direction.
  void request_reconnect(int from, int to, std::uint32_t epoch);
  /// Highest epoch `from` has requested of `to` (0 = none).
  std::uint32_t reconnect_requested(int from, int to) const;
  /// Per-rank change notification: `fn` runs on every publish/request so a
  /// rank blocked in its own wait loop learns it has recovery work. Pass an
  /// empty function to clear.
  void set_watch(int rank, std::function<void()> fn);
  /// Condition notified on every board/table change (for the reconnect
  /// wait loop).
  sim::Condition& changed() { return cond_; }

  // --- Lazy first-touch wiring (Engine::Options::lazy_endpoints) -------------
  /// Targeted publish: same table as put(), but with no notification at
  /// all — rare global events (failures, votes) may ring every rank, but a
  /// publish happens per endpoint pair, and waking all N ranks for each of
  /// them would make first-touch wiring O(N^2) wake-ups. The one rank that
  /// cares is poked explicitly with notify_rank().
  void put_direct(int from, int to, PeerInfo info);
  /// Non-blocking table lookup; nullptr until `from` published for `to`.
  const PeerInfo* try_get(int from, int to) const;
  /// First-touch connect request: `from` asks `to` to build its side of
  /// their pair. Invariant: `from` has already published (put_direct), so
  /// the responder can always finish without blocking.
  void request_connect(int from, int to);
  /// Drain `rank`'s queued connect requests, in arrival order.
  std::vector<int> take_connect_requests(int rank);
  /// Ring exactly one rank's watch (no-op before that rank set one).
  void notify_rank(int rank);

  // --- Rank-death registry and failure board (rank_kill; docs/faults.md) ----
  /// Launcher-level ground truth: the victim's own kill timer records its
  /// death here. Survivors learn of deaths through the failure board below;
  /// detection paths consult the registry to short-circuit doomed reconnect
  /// attempts, and the detection-latency metric measures against death_time.
  void mark_dead(int rank, sim::Time when);
  bool is_dead(int rank) const;
  /// Virtual death time, or -1 while `rank` is alive.
  sim::Time death_time(int rank) const;

  /// Failure board: announce-ordered list of failed ranks under a monotonic
  /// epoch (== announcements so far). Idempotent per rank; the announce
  /// order is globally consistent, so every rank adopts failures in the
  /// same order and the whole recovery stays deterministic.
  void announce_failure(int rank);
  std::uint64_t fail_epoch() const;
  /// The i-th announced failed rank (i < fail_epoch()).
  int failed_at(std::size_t i) const;

  // --- Agreement board (MPIX_Comm_agree / shrink; docs/faults.md) -----------
  /// One vote per (comm, agreement-seq, rank); re-posts overwrite.
  void post_vote(std::uint32_t comm, std::uint64_t seq, int rank,
                 std::uint64_t value);
  /// nullptr until `rank` voted in that round.
  const std::uint64_t* get_vote(std::uint32_t comm, std::uint64_t seq,
                                int rank) const;
  /// First decision posted for (comm, seq) wins; later posts are ignored,
  /// which keeps agreement consistent across coordinator succession.
  void post_decision(std::uint32_t comm, std::uint64_t seq,
                     std::uint64_t value);
  const std::uint64_t* get_decision(std::uint32_t comm,
                                    std::uint64_t seq) const;

  // --- RMA passive-target lock board (Window::lock/lock_all; docs/rma.md) ---
  /// Out-of-band lock table keyed by (window id, target rank): the
  /// passive-target side of MPI-3 RMA must not require the target to enter
  /// MPI calls, so lock arbitration runs over the bootstrap (the PMI role),
  /// exactly like agreement. An exclusive lock is granted only when no one
  /// holds the slot; a shared lock coexists with other shared holders.
  /// Returns false without side effects when the lock cannot be granted
  /// now — callers wait on changed() and retry.
  bool rma_try_lock(std::uint64_t win, int target, int origin, bool exclusive);
  /// Release origin's hold (idempotent) and wake waiters.
  void rma_unlock(std::uint64_t win, int target, int origin);
  /// Drop every lock `origin` holds on any window (rank death: survivors
  /// blocked in Window::lock toward a slot the victim held must not hang).
  void rma_release_rank(int origin);

 private:
  void notify();

  /// One passive-target lock slot (window, target): MPI-3 lock
  /// compatibility — one exclusive holder XOR any number of shared ones.
  struct RmaLockSlot {
    int exclusive = -1;        ///< origin holding exclusive, -1 if none
    std::set<int> shared;      ///< origins holding shared
  };

  std::map<std::pair<int, int>, PeerInfo> table_;
  std::map<std::tuple<int, int, std::uint32_t>, PeerInfo> epoch_table_;
  std::map<std::pair<int, int>, std::uint32_t> reconnect_board_;
  std::map<int, std::vector<int>> connect_requests_;  ///< target -> requesters
  std::map<int, std::function<void()>> watches_;
  std::map<int, sim::Time> dead_;           ///< rank -> virtual death time
  std::vector<int> failed_order_;           ///< failure board, announce order
  std::set<int> announced_;                 ///< dedup for announce_failure
  std::map<std::tuple<std::uint32_t, std::uint64_t, int>, std::uint64_t>
      votes_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> decisions_;
  std::map<std::pair<std::uint64_t, int>, RmaLockSlot> rma_locks_;
  sim::Condition cond_;
};

/// DCFA-MPI per-rank protocol engine: the P2P communication layer of
/// Section IV-B over the uniform verbs interface.
///
/// Implements, faithfully to the paper:
///  * the one-copy Eager protocol (preregistered ring buffers, packets of
///    header+payload+tail SGEs, tail-detection, credit-based slot reuse);
///  * all three zero-copy rendezvous protocols — Sender-First (RTS ->
///    receiver RDMA-read -> DONE), Receiver-First (RTR -> sender RDMA-write
///    -> DONE) and Simultaneous (sender drops the RTR, receiver reads);
///  * per-(pair, communicator) sequence ids with the ANY_SOURCE
///    sequence-locking rule;
///  * Eager/rendezvous mis-prediction recovery (sender-eager/receiver-rndv:
///    copy + drop stale RTR; sender-rndv/receiver-eager truncation => MPI
///    error);
///  * the MR buffer-cache pool;
///  * the offloading send buffer (host shadow staging) for sends crossing
///    the threshold when running on a Xeon Phi endpoint.
class Engine {
 public:
  struct Options {
    /// Use the offloading send buffer design (only effective on PhiVerbs).
    bool offload_send_buffer = true;
    /// Override Platform::eager_threshold when set (ablation benches).
    std::optional<std::uint64_t> eager_threshold;
    /// Override Platform::offload_send_threshold when set.
    std::optional<std::uint64_t> offload_send_threshold;
    /// Disable the MR cache (ablation: register/deregister per message).
    bool mr_cache = true;
    /// Section VI future work, implemented: delegate large collective
    /// reductions to the host CPU (DCFA-MPI CMD ReduceShadow).
    bool offload_reductions = false;
    /// Section VI future work, implemented: delegate large derived-datatype
    /// packing to the host CPU (DCFA-MPI CMD PackShadow); the packed host
    /// buffer doubles as the offloading send buffer.
    bool offload_datatypes = false;
    /// Vector-size floor for the two delegations (defaults to
    /// Platform::mpi_offload_threshold).
    std::optional<std::uint64_t> mpi_offload_threshold;
    /// Override Platform::mpi_retry_timeout (fault recovery base timeout).
    std::optional<sim::Time> retry_timeout;
    /// Override Platform::mpi_max_retries (fault recovery budget).
    std::optional<int> max_retries;
    /// Collectives engine: forced algorithms and crossover/segment
    /// overrides (ablation benches, tests). See mpi/coll.hpp for the
    /// option > DCFA_COLL_* env > Platform precedence.
    CollOverrides coll;
    /// Wire endpoints on first touch instead of building the full N-1 mesh
    /// in setup(). At thousands of ranks the mesh is the dominant memory
    /// (rings + staging per pair) and setup becomes O(N^2) cluster-wide;
    /// first-touch wiring keeps each rank at its actual peer set (log N for
    /// the tree/ring collectives). Off by default: the eager mesh keeps the
    /// historical event schedule — and every existing trace — unchanged.
    bool lazy_endpoints = false;
  };

  struct Stats {
    std::uint64_t eager_sends = 0;
    std::uint64_t rndv_sends = 0;
    std::uint64_t sender_first = 0;    ///< completed via RTS/read/DONE
    std::uint64_t receiver_first = 0;  ///< completed via RTR/write/DONE
    std::uint64_t rtrs_dropped = 0;    ///< simultaneous / mis-predicted
    std::uint64_t eager_mispredicts = 0;  ///< eager data met an RTR-state recv
    std::uint64_t offload_syncs = 0;   ///< sync_offload_mr invocations
    std::uint64_t offload_sync_bytes = 0;
    std::uint64_t packets_rx = 0;
    std::uint64_t credits_sent = 0;
    std::uint64_t tx_stalls = 0;       ///< emissions deferred for credit
    std::uint64_t reductions_offloaded = 0;  ///< host-delegated combines
    std::uint64_t packs_offloaded = 0;       ///< host-delegated packs
    // --- Fault recovery (all zero unless a fault spec armed the injector) ---
    std::uint64_t retransmits = 0;       ///< ring packets re-posted
    std::uint64_t wc_errors = 0;         ///< error CQEs on faultable WRs
    std::uint64_t wc_timeouts = 0;       ///< retry timers that found no CQE
    std::uint64_t credit_acked = 0;      ///< packets confirmed by credit only
    std::uint64_t dup_packets_dropped = 0;  ///< stale retransmits discarded
    std::uint64_t data_op_retries = 0;   ///< rendezvous RDMA ops re-posted
    std::uint64_t retry_exhausted = 0;   ///< operations failed after budget
    std::uint64_t offload_fallbacks = 0; ///< CMD failures absorbed locally
    std::uint64_t cmd_retries = 0;       ///< DCFA CMD requests resent
    std::uint64_t cmd_timeouts = 0;      ///< DCFA CMD reply timeouts
    // --- Fatal-fault recovery (zero unless qp_fatal/delegate_crash armed) ---
    std::uint64_t reconnects = 0;        ///< endpoint epoch bumps completed
    std::uint64_t proxy_failovers = 0;   ///< endpoints degraded to proxy path
    std::uint64_t epoch_fenced = 0;      ///< stale cross-epoch packets dropped
    // --- Collectives engine (per-algorithm invocation counts) ---------------
    std::uint64_t coll_allreduce_rd = 0;        ///< recursive doubling
    std::uint64_t coll_allreduce_ring = 0;      ///< pipelined ring
    std::uint64_t coll_allreduce_rab = 0;       ///< Rabenseifner
    std::uint64_t coll_allreduce_binomial = 0;  ///< reduce+bcast fallback
    std::uint64_t coll_bcast_binomial = 0;
    std::uint64_t coll_bcast_scatter_ag = 0;    ///< scatter + ring allgather
    std::uint64_t coll_allgather_ring = 0;
    std::uint64_t coll_allgather_rd = 0;
    std::uint64_t coll_segments = 0;  ///< pipeline segments moved
    std::uint64_t coll_schedules = 0;  ///< collective schedules completed
    // --- Rank-failure semantics (zero unless rank_kill armed) ----------------
    std::uint64_t rank_failures_known = 0;   ///< deaths adopted from the board
    std::uint64_t failure_detect_max_ns = 0; ///< max(adopt time - death time)
    std::uint64_t proc_failed_ops = 0;   ///< ops failed with PROC_FAILED
    std::uint64_t comms_revoked = 0;     ///< revocations processed locally
    // --- One-sided RMA (Window / Channel; bumped from window.cpp,
    // channel.cpp via coll_stats(), like the collectives counters) ------------
    std::uint64_t rma_puts = 0;          ///< put/rput operations started
    std::uint64_t rma_gets = 0;          ///< get/rget operations started
    std::uint64_t rma_accumulates = 0;   ///< accumulate operations started
    std::uint64_t rma_flushes = 0;       ///< flush/flush_local completions
    std::uint64_t rma_locks = 0;         ///< passive-target locks granted
    std::uint64_t rma_mr_negotiations = 0;  ///< window/channel MRs exposed
    std::uint64_t channel_posts = 0;     ///< persistent-channel hot-path posts
    std::uint64_t channel_negotiations = 0; ///< channel setup rkey exchanges
  };

  Engine(int rank, int nranks, std::unique_ptr<verbs::Ib> ib,
         Bootstrap& bootstrap, Options options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Build QPs/rings/MRs for every peer, exchange addresses, connect.
  /// Collective: every rank's engine must call it.
  void setup();
  /// Release protocol resources (drains caches). Call after the last
  /// communication; collective in spirit.
  void finalize();

  int rank() const { return rank_; }
  int size() const { return nranks_; }
  verbs::Ib& ib() { return *ib_; }
  const Stats& stats() const { return stats_; }
  /// Resolved collective tuning (fixed at construction).
  const CollTuning& coll_tuning() const { return coll_tuning_; }
  /// Collectives-engine counters live in Stats but are bumped by the
  /// Communicator collectives (collectives.cpp), which sit outside Engine.
  Stats& coll_stats() { return stats_; }
  MrCache* mr_cache() { return mr_cache_.get(); }
  OffloadShadowCache* shadow_cache() { return shadow_cache_.get(); }

  /// Non-blocking send of `count` elements of `type` starting at
  /// buf[offset] to world rank `dst`. `sync` forces the rendezvous
  /// handshake regardless of size (MPI_Issend semantics: completion implies
  /// the receive matched).
  Request isend(const mem::Buffer& buf, std::size_t offset, std::size_t count,
                const Datatype& type, int dst, int tag, std::uint32_t comm_id,
                bool sync = false);
  /// Non-blocking receive into buf[offset..]; `src` may be kAnySource and
  /// `tag` kAnyTag.
  Request irecv(const mem::Buffer& buf, std::size_t offset, std::size_t count,
                const Datatype& type, int src, int tag, std::uint32_t comm_id);

  /// Non-blocking probe: is there an unmatched incoming message that a
  /// receive with (src, tag) would match right now? Returns its envelope
  /// without consuming it (MPI_Iprobe). Wildcards allowed.
  std::optional<Status> iprobe(int src, int tag, std::uint32_t comm_id);
  /// Blocking probe (MPI_Probe).
  Status probe(int src, int tag, std::uint32_t comm_id);

  /// Block until `req` completes; throws MpiError on protocol errors.
  Status wait(Request& req);
  /// Advance, then report completion without blocking.
  bool test(Request& req);
  /// Block until any valid request in the set completes; returns its index,
  /// or SIZE_MAX when the set holds no valid request. Mixed p2p /
  /// persistent / collective sets are fine — completion is kind-agnostic.
  std::size_t waitany(std::span<Request> reqs);
  /// Advance once; true when every valid request in the set is complete.
  bool testall(std::span<Request> reqs);
  /// Advance once; index of some completed valid request, or nullopt.
  std::optional<std::size_t> testany(std::span<Request> reqs);
  /// Drive the progress engine once (poll CQ, scan rings, drain queues,
  /// advance collective schedules).
  void progress();

  /// Hand a compiled collective schedule to the executor. Posts stage 0
  /// immediately and returns the collective-backed request; the schedule
  /// advances under progress() until every stage completes.
  Request start_coll(std::shared_ptr<CollSchedule> sched);
  /// An already-complete collective request (degenerate collectives: one
  /// rank, zero elements).
  Request completed_request();

  /// Invalidate cached registrations before freeing a user buffer.
  void forget_buffer(const mem::Buffer& buf);

  // --- One-sided RMA primitives (Window support) -----------------------------
  /// Register `buf` for remote one-sided access and return the MR (owned by
  /// the caller; release with release_window_mr).
  ib::MemoryRegion* expose_window_mr(const mem::Buffer& buf);
  void release_window_mr(ib::MemoryRegion* mr);
  /// RDMA-write `bytes` of local[loff..] into (remote_addr, rkey) at `peer`.
  /// Local staging follows the same rules as rendezvous payloads (offload
  /// send buffer when eligible). `on_done` fires at local completion, which
  /// in this model implies remote delivery. `op` is what DcfaRace records
  /// for the remote range (Write for put, Accum for the accumulate
  /// write-back, which commutes with other accumulates).
  void rma_write(int peer, const mem::Buffer& local, std::size_t loff,
                 std::size_t bytes, mem::SimAddr remote_addr, ib::MKey rkey,
                 std::function<void()> on_done,
                 sim::Checker::AccessOp op = sim::Checker::AccessOp::Write);
  /// RDMA-read `bytes` from (remote_addr, rkey) at `peer` into local[loff..].
  void rma_read(int peer, const mem::Buffer& local, std::size_t loff,
                std::size_t bytes, mem::SimAddr remote_addr, ib::MKey rkey,
                std::function<void()> on_done,
                sim::Checker::AccessOp op = sim::Checker::AccessOp::Read);
  /// Fully pre-negotiated RDMA write (persistent channels): both keys were
  /// exchanged at setup, so the hot path does no MR lookup, registration or
  /// staging — the pMR design point. Self-writes short-circuit like
  /// rma_write's.
  void rma_write_prereg(int peer, mem::SimAddr local_addr, ib::MKey lkey,
                        std::size_t bytes, mem::SimAddr remote_addr,
                        ib::MKey rkey, std::function<void()> on_done);
  /// Pick the source (addr, lkey) a prereg write should post from: the
  /// offload shadow when that's how a large co-processor payload should
  /// leave the node (same rules as rendezvous staging), else the direct
  /// buffer with `direct_lkey`. The first call per buffer registers the
  /// shadow — channels call it once at setup so their hot loop only pays
  /// the PCIe sync, never a negotiation.
  std::pair<mem::SimAddr, ib::MKey> rma_stage(const mem::Buffer& local,
                                              std::size_t loff,
                                              std::size_t bytes,
                                              ib::MKey direct_lkey);
  /// Drive progress until `pred()` holds (blocks the owning process).
  void wait_until(const std::function<bool()>& pred);
  /// The cluster invariant checker, for components layered above the engine
  /// (Window/Channel epoch and exposure hooks). Same instance chk() serves
  /// the protocol internals.
  sim::Checker& checker();

  // --- Rank-failure semantics (ULFM-style recovery; docs/faults.md) ----------
  /// True once this rank's scheduled rank_kill fired. Every blocking entry
  /// point checks it and throws RankKilled to unwind the rank body.
  bool dead() const { return dead_; }
  /// Register a communicator's world-rank membership. The Communicator ctor
  /// calls this so failure handling can map a dead rank onto the schedules,
  /// sends and receives that depend on it.
  void register_comm(std::uint32_t comm_id, std::vector<int> group);
  /// Revoke `comm_id` locally: poison every pending operation on it with
  /// MpiErrc::Revoked and flood a Revoke notice to every live group member
  /// (MPIX_Comm_revoke). Idempotent; each rank re-floods exactly once, so
  /// the gossip terminates.
  void revoke_comm(std::uint32_t comm_id);
  bool comm_revoked(std::uint32_t comm_id) const {
    return revoked_.count(comm_id) != 0;
  }
  /// Failed-rank knowledge as adopted from the global failure board.
  bool rank_failed(int rank) const { return known_failed_.count(rank) != 0; }
  const std::set<int>& known_failed() const { return known_failed_; }
  /// Extra slack on the liveness timeout before a silent peer is declared
  /// Suspect. Used by workloads whose injected compute stragglers can stall
  /// a whole rank legitimately for ~the timeout (heartbeat false positives).
  void set_liveness_grace(sim::Time grace) { liveness_grace_ = grace; }
  /// The out-of-band wiring/failure/agreement boards (Communicator::agree
  /// and shrink run their votes over these, not over p2p traffic, so they
  /// work even when the communicator itself is poisoned).
  Bootstrap& bootstrap() { return bootstrap_; }
  /// Drive every valid request in the set to a terminal phase, then throw
  /// for the first errored one. Unlike wait-in-a-loop, a failure on request
  /// i cannot leave request i+1 undriven: fault-tolerant callers catch the
  /// MpiError and inspect Request::failed()/errc() per request.
  void waitall(std::span<Request> reqs);
  /// Timed-poll progress loop for the out-of-band agreement protocol:
  /// advance, check `pred`, sleep one heartbeat period, repeat. The bounded
  /// sleep keeps agreement live even when every p2p wake source is dead.
  void wait_until_ft(const std::function<bool()>& pred);
  /// Watchdog hook: dump every live engine's state (rank, endpoint health,
  /// in-flight schedules, known failures) to `out`. Called from a foreign
  /// OS thread only when the deadline watchdog is about to abort a hung
  /// run — best-effort, unsynchronised reads are acceptable there.
  static void dump_all(std::FILE* out);

  /// acc[i] = acc[i] OP in[i] over `count` elements, charging the owning
  /// core's element throughput — or, when offload_reductions is on and the
  /// vector is large enough, staging both operands to the host, delegating
  /// the combine to the host CPU, and pulling the result back. Used by the
  /// collectives.
  void combine(Op op, const Datatype& type, const mem::Buffer& acc,
               std::size_t acc_off, const mem::Buffer& in, std::size_t in_off,
               std::size_t count);

 private:
  struct ArrivedPacket {
    PacketHeader hdr;
    std::vector<std::byte> payload;  ///< eager payload copy (slot is reused)
  };

  /// Receiver + sender channel state for one (peer, comm) pair.
  struct Channel {
    std::uint64_t next_send_seq = 0;
    std::uint64_t next_assign_seq = 0;
    std::map<std::uint64_t, ArrivedPacket> arrived;
    std::map<std::uint64_t, std::shared_ptr<RequestState>> posted;
    std::map<std::uint64_t, std::shared_ptr<RequestState>> sends;
    std::map<std::uint64_t, PacketHeader> arrived_rtr;
  };

  /// Book-keeping for one in-flight ring packet under fault injection. The
  /// staging slot itself keeps the bytes (it cannot be reused before the
  /// peer's credit proves consumption), so a retransmit is a bare re-post.
  struct TxRecord {
    PacketHeader hdr;
    std::size_t payload_len = 0;
    /// Fires once with the final verdict (Success, or RetryExceeded after
    /// the budget). Empty for control packets — their owner is failed
    /// directly on exhaustion.
    std::function<void(const ib::Wc&)> on_delivered;
    std::shared_ptr<RequestState> owner;
    /// Every wr_id posted for this record. A dropped CQE never fires its
    /// completion callback, so the ids are garbage-collected when the
    /// record finishes — otherwise outstanding_ never drains.
    std::vector<std::uint64_t> wr_ids;
    int attempts = 1;
    /// Bumped on every (re)post; a pending retry timer whose epoch no
    /// longer matches is stale and must not fire (events can't be
    /// cancelled in the simulator).
    std::uint64_t epoch = 0;
  };

  /// A rendezvous RDMA data operation (write after RTR / read after RTS)
  /// under fault injection. Both are idempotent — same bytes, same
  /// addresses — so recovery is a plain re-post with backoff.
  struct DataOp {
    int peer = -1;
    ib::SendWr wr;  ///< template; wr_id/signaled/faultable set per post
    std::function<void(const ib::Wc&)> on_result;
    std::vector<std::uint64_t> wr_ids;  ///< GC'd at finish, like TxRecord's
    int attempts = 1;
    std::uint64_t epoch = 0;
  };

  /// Endpoint health (fatal-fault recovery state machine; docs/faults.md):
  /// Healthy -> Suspect (death signal observed) -> Reconnecting (epoch bump
  /// in progress) -> back to Healthy, or Degraded (delegate dead, endpoint
  /// failed over to the host-proxy path — still fully functional), or
  /// Failed (reconnect budget exhausted; operations raise MpiError).
  enum class ConnState { Healthy, Suspect, Reconnecting, Degraded, Failed };

  /// Per-peer connection: QP, rings, staging, credits, deferred emissions.
  struct Endpoint {
    int peer = -1;
    ib::QueuePair* qp = nullptr;

    mem::Buffer ring;  ///< my receive ring for this peer's packets
    ib::MemoryRegion* ring_mr = nullptr;
    mem::SimAddr remote_ring = 0;  ///< peer's ring (where I write)
    ib::MKey remote_ring_rkey = 0;

    mem::Buffer staging;  ///< eager headers+payload+tail source slots
    ib::MemoryRegion* staging_mr = nullptr;

    mem::Buffer credit_cell;  ///< peer reports its consumption here
    ib::MemoryRegion* credit_mr = nullptr;
    mem::Buffer credit_src;  ///< my consumption counter (RDMA source)
    ib::MemoryRegion* credit_src_mr = nullptr;
    mem::SimAddr remote_credit = 0;
    ib::MKey remote_credit_rkey = 0;

    std::uint64_t sent_packets = 0;
    std::uint64_t consumed_by_peer = 0;
    std::uint64_t my_consumed = 0;
    std::uint64_t my_consumed_reported = 0;

    // --- Fatal-fault recovery ------------------------------------------------
    ConnState conn_state = ConnState::Healthy;
    /// Connection generation, stamped into every packet header and checked
    /// on receive; bumped by each successful reconnect.
    std::uint32_t epoch = 0;
    int reconnects = 0;  ///< cumulative epoch bumps (budget: mpi_max_reconnects)
    sim::Time last_heard = 0;  ///< last beacon/credit/packet from this peer
    /// Heartbeat cells (allocated only when fatal faults are armed): the
    /// peer writes an incrementing beacon into hb_cell; hb_src is my beacon
    /// RDMA source. Beacons are non-faultable, like credit updates.
    mem::Buffer hb_cell;
    ib::MemoryRegion* hb_cell_mr = nullptr;
    mem::Buffer hb_src;
    ib::MemoryRegion* hb_src_mr = nullptr;
    mem::SimAddr remote_hb = 0;
    ib::MKey remote_hb_rkey = 0;
    std::uint64_t hb_seq = 0;   ///< my beacon counter towards this peer
    std::uint64_t hb_seen = 0;  ///< last beacon value read from the peer

    /// Emissions deferred for credit. The owner rides alongside the opaque
    /// closure so failure handling can fail the request a queued packet
    /// belongs to instead of emitting toward a dead peer (control packets
    /// and credit updates queue with no owner and are simply dropped).
    struct PendingTx {
      std::function<void()> emit;
      std::shared_ptr<RequestState> owner;
    };
    std::deque<PendingTx> pending_tx;

    /// Fault mode only: packets posted but not yet confirmed delivered
    /// (keyed by absolute ring index = the sent_packets value at emission).
    std::map<std::uint64_t, TxRecord> unacked;

    /// Fault mode only: packets whose CQE succeeded but whose consumption
    /// the peer's credit has not yet proven (the payload still sits in the
    /// staging slot — it cannot be reused before that credit). No timers
    /// run on these; they exist so a reconnect can replay them, because
    /// the ring rebuild destroys any still-unconsumed occupants (e.g. a
    /// spurious liveness reconnect against a live-but-stalled peer).
    /// Purged as the peer's credit counter passes them.
    struct DeliveredTx {
      PacketHeader hdr;
      std::size_t payload_len = 0;
    };
    std::map<std::uint64_t, DeliveredTx> delivered;

    /// Sequencing is per (communicator, tag): MPI's non-overtaking rule
    /// applies within a (source, comm, tag) triple, and keying the paper's
    /// sequence ids by tag lets unrelated tags (e.g. collective traffic vs
    /// user messages) interleave freely.
    std::map<std::pair<std::uint32_t, int>, Channel> channels;
  };

  /// Self-messaging (rank sending to itself) short-circuits the network but
  /// keeps the same sequence/matching semantics.
  struct SelfMsg {
    int tag = 0;
    std::size_t bytes = 0;
    std::vector<std::byte> data;
  };
  struct SelfChannel {
    std::uint64_t next_send_seq = 0;
    std::uint64_t next_assign_seq = 0;
    std::map<std::uint64_t, SelfMsg> arrived;
    std::map<std::uint64_t, std::shared_ptr<RequestState>> posted;
  };

  /// Per-communicator receive ordering state (ANY_SOURCE lock).
  struct CommRecv {
    /// Recvs that cannot take a sequence id yet. Non-empty implies the head
    /// is an ANY_SOURCE request that has not met a matching packet — the
    /// paper's "all the sequences for receive requests will be locked".
    std::deque<std::shared_ptr<RequestState>> deferred;
  };

  // --- TX path ---------------------------------------------------------------
  int slots() const { return platform_.eager_slots; }
  std::uint64_t slots_free(const Endpoint& ep) const {
    return usable_slots_ - (ep.sent_packets - ep.consumed_by_peer);
  }
  /// Run `emit` now if a slot is free and nothing is queued ahead; otherwise
  /// defer it (drained by progress when credits return). `owner` names the
  /// request the emission serves, for failure handling of queued packets.
  void tx(Endpoint& ep, std::function<void()> emit,
          std::shared_ptr<RequestState> owner = nullptr);
  void drain_tx(Endpoint& ep);
  /// Write a packet into the peer's next ring slot (requires a free slot).
  /// Under fault injection the write is tracked for retransmission;
  /// `on_complete`/`owner` then receive the final delivery verdict.
  void emit_packet(Endpoint& ep, PacketHeader hdr,
                   const std::byte* payload, std::size_t len,
                   std::function<void(const ib::Wc&)> on_complete = {},
                   std::shared_ptr<RequestState> owner = nullptr);
  void emit_control(Endpoint& ep, PacketType type,
                    const std::shared_ptr<RequestState>& req,
                    mem::SimAddr buf_addr, ib::MKey rkey,
                    std::uint64_t buf_bytes,
                    std::uint32_t dir = PacketHeader::kToSender);
  void send_credit(Endpoint& ep);

  // --- Fault recovery (see docs/faults.md) -----------------------------------
  /// (Re)post the staged packet for `idx` as a signaled faultable WR and arm
  /// its retry timer with the current backoff.
  void post_tx_record(Endpoint& ep, std::uint64_t idx);
  /// CQE for a tracked ring packet: success finishes it, an injected error
  /// schedules a backoff retransmit.
  void on_tx_wc(int peer, std::uint64_t idx, const ib::Wc& wc);
  /// Retry timer body: credit-ack if the peer consumed the slot meanwhile,
  /// otherwise retransmit (after_error skips the credit check — an error
  /// CQE means nothing was delivered).
  void tx_check(int peer, std::uint64_t idx, std::uint64_t epoch,
                bool after_error);
  /// Deliver the final verdict to the record's callback/owner and drop it.
  void finish_tx_record(Endpoint& ep, std::uint64_t idx, const ib::Wc& wc);
  /// Post a rendezvous RDMA data WR; with faults armed it is tracked in
  /// data_ops_ and re-posted on error/timeout until the budget runs out.
  void post_data_wr(Endpoint& ep, ib::SendWr wr,
                    std::function<void(const ib::Wc&)> on_result);
  void post_data_op(std::uint64_t op);
  void on_data_wc(std::uint64_t op, const ib::Wc& wc);
  void data_check(std::uint64_t op, std::uint64_t epoch, bool after_error);
  /// Enqueue `fn` to run in the rank's process context after `delay`
  /// (timers fire in engine context where post_send is illegal).
  void schedule_recovery(sim::Time delay, std::function<void()> fn);
  /// Drop completion callbacks of attempts whose CQE will never arrive.
  void forget_wr_ids(const std::vector<std::uint64_t>& ids);

  // --- Fatal-fault recovery (connection re-establishment) --------------------
  /// React to a death signal on `ep` (QP wedged in the error state, retry
  /// budget exhausted, liveness timeout): mark it Suspect, post a reconnect
  /// request to the bootstrap board, and queue perform_reconnect. Returns
  /// false when recovery is not available — fatal faults unarmed, or the
  /// cumulative reconnect budget is spent (the endpoint turns Failed and
  /// the caller falls through to its normal failure path).
  bool maybe_start_reconnect(Endpoint& ep, const char* why);
  /// Re-establish `ep` at `target_epoch`: quiesce in-flight state, tear down
  /// and re-create the QP and ring/staging/credit/heartbeat MRs through the
  /// transport (DCFA CMD on a Phi endpoint), re-exchange connection info via
  /// the bootstrap, then replay every still-pending packet and re-post every
  /// pending rendezvous data operation. Both sides run this symmetrically.
  void perform_reconnect(Endpoint& ep, std::uint32_t target_epoch);
  /// Serve peers' reconnect requests from the bootstrap board. `except_peer`
  /// skips one peer (used from inside perform_reconnect's wait loop, where
  /// serving *other* peers breaks multi-endpoint reconnect cycles).
  void service_reconnect_requests(int except_peer = -1);

  // --- Lazy first-touch wiring (Options::lazy_endpoints) ---------------------
  /// Create this side of the pair with `peer` (rings, staging, credit,
  /// heartbeat cells when armed, QP) and publish it on the bootstrap.
  Endpoint& open_endpoint(int peer);
  /// Wire remote addresses from a published PeerInfo into an opened
  /// endpoint (the second half of what setup()'s mesh loop did).
  void connect_endpoint(Endpoint& ep, const Bootstrap::PeerInfo& info);
  /// First touch toward `peer`: open our side, request theirs, block until
  /// they publish. While blocked, incoming connect requests are served —
  /// that breaks first-touch cycles (A waits on B while C waits on A),
  /// exactly like perform_reconnect's except_peer loop does for epochs.
  Endpoint& establish_endpoint(int peer);
  /// Responder half, run from progress(): build + publish our side for
  /// every queued requester. Never blocks (publish-before-request).
  void service_connect_requests();
  /// Heartbeat body (runs in process context): read peer beacons, write
  /// ours, declare silent peers Suspect when traffic is pending on them.
  void heartbeat_tick();
  /// Arm the self-rescheduling heartbeat timer (fatal faults only).
  void schedule_heartbeat();

  // --- Protocol steps --------------------------------------------------------
  void start_send(const std::shared_ptr<RequestState>& req);
  void send_eager(Endpoint& ep, const std::shared_ptr<RequestState>& req);
  void send_rts(Endpoint& ep, const std::shared_ptr<RequestState>& req);
  void rdma_write_to(Endpoint& ep, const std::shared_ptr<RequestState>& req,
                     const PacketHeader& rtr);
  void start_rdma_read(Endpoint& ep,
                       const std::shared_ptr<RequestState>& req,
                       const PacketHeader& rts);
  /// Model one core's strided pack/unpack over `bytes` of payload.
  void charge_pack(std::size_t bytes);
  /// Delegate the packing of a non-contiguous send to the host CPU; the
  /// packed host buffer is recorded in packed_ and released at completion.
  /// Returns true when delegation happened.
  bool try_offload_pack(const std::shared_ptr<RequestState>& req);
  /// Expose the request's payload for RDMA: through the offloading send
  /// buffer (shadow sync) when eligible, else via the MR cache. Returns
  /// (addr, lkey-for-local-use, rkey-for-remote-use).
  struct Exposure {
    mem::SimAddr addr;
    ib::MKey lkey;
    ib::MKey rkey;
  };
  Exposure expose_send_payload(const std::shared_ptr<RequestState>& req);
  ib::MemoryRegion* register_window(const mem::Buffer& buf);
  void release_window(const mem::Buffer& buf, ib::MemoryRegion* mr);

  // --- RX path ---------------------------------------------------------------
  void scan_ring(Endpoint& ep);
  void read_credit_cell(Endpoint& ep);
  void handle_packet(Endpoint& ep, const PacketHeader& hdr,
                     const std::byte* payload);
  void handle_eager(Endpoint& ep, Channel& ch, const PacketHeader& hdr,
                    const std::byte* payload);
  void handle_rts(Endpoint& ep, Channel& ch, const PacketHeader& hdr);
  void handle_rtr(Endpoint& ep, Channel& ch, const PacketHeader& hdr);
  void handle_done(Endpoint& ep, Channel& ch, const PacketHeader& hdr);
  void handle_err(Endpoint& ep, Channel& ch, const PacketHeader& hdr);
  /// Revoke notice: dispatched before channel resolution (a revocation is
  /// per-communicator, not per-channel) — adopt + gossip.
  void handle_revoke(const PacketHeader& hdr);

  /// Deliver eager payload into a posted receive and complete it.
  void deliver_eager(Endpoint& ep, const std::shared_ptr<RequestState>& req,
                     const PacketHeader& hdr, const std::byte* payload);
  /// A receive request just got its sequence id: look for an already-arrived
  /// packet, start the right protocol, or send an RTR / wait.
  void activate_recv(Endpoint& ep, Channel& ch,
                     const std::shared_ptr<RequestState>& req);
  /// Try to resolve deferred receives (wildcard locking drain).
  void drain_deferred(std::uint32_t comm_id);
  /// Find a (source, tag) channel whose next-expected packet has arrived
  /// and is compatible with the wildcard receive `req` (the paper's
  /// ANY_SOURCE "first matching packet" rule, generalised to ANY_TAG).
  /// Lowest (source, tag) wins, self at its natural rank position.
  struct WildMatch {
    int src;
    int tag;
  };
  std::optional<WildMatch> find_wildcard_match(
      const std::shared_ptr<RequestState>& req);

  // --- Self messaging ---------------------------------------------------------
  void self_send(const std::shared_ptr<RequestState>& req);
  void self_activate_recv(const std::shared_ptr<RequestState>& req, int tag);
  void self_deliver(const std::shared_ptr<RequestState>& req, SelfMsg msg);

  void complete(const std::shared_ptr<RequestState>& req, int source,
                int tag, std::size_t bytes);
  /// Terminal error on a request. `errc`/`peer` classify it; when left at
  /// the defaults the ambient blame scope (set around callback-mediated
  /// failure paths like retry exhaustion) supplies the taxonomy instead.
  void fail(const std::shared_ptr<RequestState>& req, std::string why,
            MpiErrc errc = MpiErrc::Other, int peer = -1);

  /// Scoped ambient blame (see blame_errc_/blame_peer_ below): opened around
  /// callback chains whose fail() calls cannot name the culprit themselves.
  struct BlameScope {
    Engine& e;
    MpiErrc saved_errc;
    int saved_peer;
    BlameScope(Engine& en, MpiErrc errc, int peer)
        : e(en), saved_errc(en.blame_errc_), saved_peer(en.blame_peer_) {
      en.blame_errc_ = errc;
      en.blame_peer_ = peer;
    }
    ~BlameScope() {
      e.blame_errc_ = saved_errc;
      e.blame_peer_ = saved_peer;
    }
  };

  // --- Rank-failure semantics (internals; docs/faults.md) --------------------
  /// Throw RankKilled once this rank's kill fate fired — checked at every
  /// blocking entry point and at the top of progress().
  void check_alive() const {
    if (dead_) throw RankKilled{};
  }
  /// Kill-timer body: record the death on the launcher registry, stop the
  /// heartbeat, and arrange for the next engine entry to unwind.
  void die();
  /// Pull newly announced failures from the bootstrap failure board (in
  /// announce order) and fail every local operation depending on them.
  void adopt_failures();
  /// First-observer path: announce `peer` on the failure board, then adopt.
  void declare_failed(int peer, const char* why);
  /// Fail everything that depends on dead `peer`: unacked and queued
  /// packets, rendezvous data ops, posted sends/recvs on its channels,
  /// deferred wildcard receives it could have satisfied, and collective
  /// schedules whose group contains it.
  void fail_peer_ops(int peer);
  /// Fail every pending operation on a revoked communicator.
  void poison_comm(std::uint32_t comm_id, const char* why);
  bool comm_contains(std::uint32_t comm_id, int rank) const;
  /// Does this rank expect traffic *from* ep.peer (posted recvs, deferred
  /// wildcards, an in-flight schedule containing the peer)? Liveness
  /// monitoring must cover receive dependencies, not only packets we owe.
  bool expecting_from(const Endpoint& ep) const;
  void flood_revoke(std::uint32_t comm_id);

  // --- Collective-schedule executor (engine.cpp) -----------------------------
  enum class PipeState { Busy, Done, Failed };
  /// Advance every outstanding schedule as far as its completed transfers
  /// allow; runs at the end of progress() (transfer completions land first).
  void advance_schedules();
  void advance_schedule(CollSchedule& s);
  /// Drive one pipelined stage: keep all outgoing segments posted, keep two
  /// incoming segments in flight (double-buffered scratch) ahead of the
  /// fold cursor, fold segments as they land.
  PipeState pipe_advance(CollSchedule& s, CollPipe& p);
  void run_coll_local(const CollLocal& l);
  void finish_schedule(CollSchedule& s);
  void fail_schedule(CollSchedule& s, std::string why,
                     MpiErrc errc = MpiErrc::Other, int peer = -1);
  /// Free parked scratch from failed schedules whose transfers have all
  /// reached a terminal phase (see CondemnedScratch).
  void reap_condemned();
  bool tag_compatible(const RequestState& req, const PacketHeader& hdr) const {
    return req.tag == kAnyTag || req.tag == hdr.tag;
  }

  void poll_cq();
  /// DcfaCheck hooks: the per-cluster invariant checker owned by the
  /// simulation engine (see src/sim/check.hpp and docs/checking.md).
  sim::Checker& chk();
  Endpoint& endpoint(int peer);
  Channel& channel(Endpoint& ep, std::uint32_t comm_id, int tag) {
    return ep.channels[{comm_id, tag}];
  }

  std::uint64_t eager_threshold() const { return eager_threshold_; }

  // --- Members ---------------------------------------------------------------
  int rank_;
  int nranks_;
  std::unique_ptr<verbs::Ib> ib_;
  core::PhiVerbs* phi_;  ///< non-null when running on DCFA Phi verbs
  Bootstrap& bootstrap_;
  Options options_;
  const sim::Platform& platform_;
  std::uint64_t eager_threshold_;
  std::uint64_t offload_threshold_;
  SlotLayout layout_;

  ib::ProtectionDomain* pd_ = nullptr;
  ib::CompletionQueue* cq_ = nullptr;
  std::size_t write_observer_id_ = SIZE_MAX;
  std::unique_ptr<MrCache> mr_cache_;
  std::unique_ptr<OffloadShadowCache> shadow_cache_;

  std::map<int, Endpoint> endpoints_;
  std::map<std::pair<std::uint32_t, int>, SelfChannel> self_channels_;
  std::map<std::uint32_t, CommRecv> comm_recv_;
  std::map<std::uint64_t, std::function<void(const ib::Wc&)>> outstanding_;
  /// Host-packed send payloads awaiting completion (offload_datatypes).
  std::map<const RequestState*, core::OffloadRegion> packed_;
  std::uint64_t next_wr_id_ = 1;
  std::uint64_t mpi_offload_threshold_ = 0;
  CollTuning coll_tuning_;
  /// Collective schedules in flight (removed as they complete or fail).
  std::vector<std::shared_ptr<CollSchedule>> schedules_;
  /// Scratch owned by a failed schedule cannot be freed at failure time:
  /// transfers of the cancelled stage may still land in it. It is parked
  /// here with the still-pending request states and freed once every one
  /// is terminal — revoking the communicator (the ULFM recovery step)
  /// poisons all of them, so reclamation happens promptly in practice.
  struct CondemnedScratch {
    std::vector<mem::Buffer> bufs;
    std::vector<std::shared_ptr<RequestState>> waits;
  };
  std::vector<CondemnedScratch> condemned_;

  /// Fault-injection state. faults_armed_ is the single gate every hazard
  /// point branches on; with the default RunConfig it is false and the
  /// engine behaves exactly as before.
  sim::FaultInjector* faults_ = nullptr;
  bool faults_armed_ = false;
  /// True only when the spec injects *fatal* faults (qp_fatal or
  /// delegate_crash). Gates the whole connection-recovery subsystem — the
  /// heartbeat, the bootstrap watch, reconnects — so non-fatal fault specs
  /// keep the exact PR-1 event schedule (and its tests byte-identical).
  bool fatal_armed_ = false;
  /// True only when the spec schedules rank kills. Gates every *new* FT
  /// behaviour that could perturb the existing fatal-fault event schedule
  /// (receive-side liveness, dead-peer reconnect short-circuits), so the
  /// qp_fatal/delegate_crash recovery tests keep their exact traces.
  bool kill_armed_ = false;
  bool dead_ = false;  ///< this rank's kill fate fired
  /// First-touch wiring armed (Options::lazy_endpoints): endpoints_ holds
  /// only touched pairs, endpoint() establishes on miss, and progress()
  /// serves peers' connect requests.
  bool lazy_ = false;
  /// Extra slack on the liveness timeout (set_liveness_grace).
  sim::Time liveness_grace_ = 0;
  /// Failed ranks this engine has adopted, and how far into the failure
  /// board it has read (board entries [0, known_fail_epoch_) are adopted).
  std::set<int> known_failed_;
  std::uint64_t known_fail_epoch_ = 0;
  /// World-rank membership per communicator (register_comm).
  std::map<std::uint32_t, std::vector<int>> comm_groups_;
  std::set<std::uint32_t> revoked_;
  /// Ambient blame for callback-mediated failures: while a failure scope is
  /// open (retry exhaustion toward a known peer, dead-peer purge), fail()
  /// calls that pass no explicit taxonomy inherit this one.
  MpiErrc blame_errc_ = MpiErrc::Other;
  int blame_peer_ = -1;
  bool hb_stop_ = false;  ///< set at finalize; ends the heartbeat chain
  std::uint64_t usable_slots_ = 0;  ///< slots(), possibly credit-capped
  sim::Time retry_timeout_ = 0;
  int max_retries_ = 0;
  std::map<std::uint64_t, DataOp> data_ops_;
  std::uint64_t next_data_op_ = 1;
  /// Recovery work handed from timer events to the rank process (drained
  /// at the top of progress()).
  std::deque<std::function<void()>> pending_recovery_;
  /// Cleared by the destructor so late-firing timer events become no-ops.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  sim::Condition wake_;
  /// Level-triggered wake flag: events that fire while progress() is already
  /// running (virtual time passes inside it) must not be lost when the
  /// process then blocks on wake_.
  bool wake_pending_ = false;
  bool in_progress_ = false;  ///< re-entrancy guard
  Stats stats_;
  bool setup_done_ = false;
  bool finalized_ = false;
};

}  // namespace dcfa::mpi
