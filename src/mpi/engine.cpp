#include "mpi/engine.hpp"

#include <cassert>
#include <cstring>

#include "sim/log.hpp"
#include "sim/trace.hpp"

namespace dcfa::mpi {

// ---------------------------------------------------------------------------
// Bootstrap
// ---------------------------------------------------------------------------

void Bootstrap::put(int from, int to, PeerInfo info) {
  table_[{from, to}] = info;
  cond_.notify_all();
}

Bootstrap::PeerInfo Bootstrap::get(sim::Process& proc, int from, int to) {
  for (;;) {
    auto it = table_.find({from, to});
    if (it != table_.end()) return it->second;
    proc.wait_on(cond_);
  }
}

// ---------------------------------------------------------------------------
// Engine lifecycle
// ---------------------------------------------------------------------------

Engine::Engine(int rank, int nranks, std::unique_ptr<verbs::Ib> ib,
               Bootstrap& bootstrap, Options options)
    : rank_(rank),
      nranks_(nranks),
      ib_(std::move(ib)),
      phi_(dynamic_cast<core::PhiVerbs*>(ib_.get())),
      bootstrap_(bootstrap),
      options_(options),
      platform_(ib_->hca_ref().platform()),
      eager_threshold_(
          options.eager_threshold.value_or(platform_.eager_threshold)),
      offload_threshold_(options.offload_send_threshold.value_or(
          platform_.offload_send_threshold)),
      layout_{std::max<std::uint64_t>(platform_.eager_max_payload,
                                      eager_threshold_)},
      wake_(ib_->process().engine(), "mpi.wake[" + std::to_string(rank) + "]") {
  if (rank < 0 || nranks <= 0 || rank >= nranks) {
    throw MpiError("Engine: bad rank/size");
  }
  mpi_offload_threshold_ = options.mpi_offload_threshold.value_or(
      platform_.mpi_offload_threshold);
  if (!phi_) {
    // The delegations only exist on co-processor endpoints.
    options_.offload_reductions = false;
    options_.offload_datatypes = false;
  }
}

Engine::~Engine() {
  // The HCA and CQ outlive this engine (they belong to the cluster): tear
  // the wake-up callbacks out so a packet landing after an early death
  // (e.g. a rank body that threw) cannot call into freed memory.
  if (cq_) cq_->set_on_push({});
  if (write_observer_id_ != SIZE_MAX) {
    ib_->hca_ref().remove_remote_write_observer(write_observer_id_);
  }
}

void Engine::setup() {
  if (setup_done_) throw MpiError("Engine::setup called twice");
  pd_ = ib_->alloc_pd();
  cq_ = ib_->create_cq(4096);
  cq_->set_on_push([this] {
    wake_pending_ = true;
    wake_.notify_all();
  });
  write_observer_id_ = ib_->hca_ref().add_remote_write_observer([this] {
    wake_pending_ = true;
    wake_.notify_all();
  });

  mr_cache_ = std::make_unique<MrCache>(*ib_, *pd_, platform_.mr_cache_entries,
                                        platform_.mr_cache_bytes);
  if (phi_ && options_.offload_send_buffer) {
    shadow_cache_ = std::make_unique<OffloadShadowCache>(
        *phi_, *pd_, platform_.mr_cache_entries);
  }

  const std::size_t ring_bytes = layout_.stride() * slots();
  for (int p = 0; p < nranks_; ++p) {
    if (p == rank_) continue;
    Endpoint& ep = endpoints_[p];
    ep.peer = p;
    ep.ring = ib_->alloc_buffer(ring_bytes, mem::AddressSpace::kPage);
    ep.ring_mr = ib_->reg_mr(pd_, ep.ring, ib::kLocalWrite | ib::kRemoteWrite);
    ep.staging = ib_->alloc_buffer(ring_bytes, mem::AddressSpace::kPage);
    ep.staging_mr = ib_->reg_mr(pd_, ep.staging, ib::kLocalWrite);
    ep.credit_cell = ib_->alloc_buffer(sizeof(std::uint64_t), 64);
    ep.credit_mr =
        ib_->reg_mr(pd_, ep.credit_cell, ib::kLocalWrite | ib::kRemoteWrite);
    ep.credit_src = ib_->alloc_buffer(sizeof(std::uint64_t), 64);
    ep.credit_src_mr = ib_->reg_mr(pd_, ep.credit_src, ib::kLocalWrite);
    ep.qp = ib_->create_qp(pd_, cq_, cq_);

    bootstrap_.put(rank_, p,
                   Bootstrap::PeerInfo{ib_->address(ep.qp), ep.ring.addr(),
                                       ep.ring_mr->rkey(),
                                       ep.credit_cell.addr(),
                                       ep.credit_mr->rkey()});
  }
  for (auto& [p, ep] : endpoints_) {
    const auto info = bootstrap_.get(ib_->process(), p, rank_);
    ib_->connect(ep.qp, info.qp);
    ep.remote_ring = info.ring_addr;
    ep.remote_ring_rkey = info.ring_rkey;
    ep.remote_credit = info.credit_addr;
    ep.remote_credit_rkey = info.credit_rkey;
  }
  setup_done_ = true;
}

void Engine::finalize() {
  if (finalized_) return;
  // Quiesce before tearing anything down: drain deferred emissions and
  // outstanding completions, then give straggling unsignaled writes (credit
  // updates) time to land so no WR is in flight against a dead MR.
  for (;;) {
    progress();
    bool idle = outstanding_.empty();
    for (auto& [p, ep] : endpoints_) {
      if (!ep.pending_tx.empty()) idle = false;
    }
    if (idle) break;
    ib_->process().wait_on(wake_);
  }
  ib_->process().wait(sim::microseconds(100));

  if (mr_cache_) mr_cache_->clear();
  if (shadow_cache_) shadow_cache_->clear();
  for (auto& [p, ep] : endpoints_) {
    ib_->dereg_mr(ep.ring_mr);
    ib_->dereg_mr(ep.staging_mr);
    ib_->dereg_mr(ep.credit_mr);
    ib_->dereg_mr(ep.credit_src_mr);
    ib_->free_buffer(ep.ring);
    ib_->free_buffer(ep.staging);
    ib_->free_buffer(ep.credit_cell);
    ib_->free_buffer(ep.credit_src);
  }
  finalized_ = true;
}

Engine::Endpoint& Engine::endpoint(int peer) {
  auto it = endpoints_.find(peer);
  if (it == endpoints_.end()) {
    throw MpiError("no endpoint for rank " + std::to_string(peer));
  }
  return it->second;
}

void Engine::forget_buffer(const mem::Buffer& buf) {
  if (mr_cache_) mr_cache_->invalidate(buf);
  if (shadow_cache_) shadow_cache_->invalidate(buf);
}

// ---------------------------------------------------------------------------
// TX plumbing
// ---------------------------------------------------------------------------

void Engine::tx(Endpoint& ep, std::function<void()> emit) {
  if (ep.pending_tx.empty() && slots_free(ep) > 0) {
    emit();
    return;
  }
  ++stats_.tx_stalls;
  ep.pending_tx.push_back(std::move(emit));
}

void Engine::drain_tx(Endpoint& ep) {
  while (!ep.pending_tx.empty() && slots_free(ep) > 0) {
    auto emit = std::move(ep.pending_tx.front());
    ep.pending_tx.pop_front();
    emit();
  }
}

void Engine::emit_packet(Endpoint& ep, PacketHeader hdr,
                         const std::byte* payload, std::size_t len,
                         std::function<void(const ib::Wc&)> on_complete) {
  assert(slots_free(ep) > 0);
  const int slot = static_cast<int>(ep.sent_packets % slots());

  // Stage header, payload (the eager one-copy) and tail into the slot.
  std::byte* base = ep.staging.data() + layout_.header_off(slot);
  std::memcpy(base, &hdr, sizeof hdr);
  if (len > 0) {
    std::memcpy(ep.staging.data() + layout_.payload_off(slot), payload, len);
    ib_->charge_memcpy(len);
  }
  const PacketTail tail = kPacketMagic;
  std::memcpy(ep.staging.data() + layout_.tail_off(slot, len), &tail,
              sizeof tail);

  // Header SGE + data SGE + tail SGE, exactly as the paper describes; the
  // responder lays them down contiguously so the tail lands last-after-data.
  ib::SendWr wr;
  wr.opcode = ib::Opcode::RdmaWrite;
  const ib::MKey lkey = ep.staging_mr->lkey();
  wr.sg_list = {
      {ep.staging.addr() + layout_.header_off(slot),
       static_cast<std::uint32_t>(sizeof hdr), lkey},
      {ep.staging.addr() + layout_.payload_off(slot),
       static_cast<std::uint32_t>(len), lkey},
      {ep.staging.addr() + layout_.tail_off(slot, len),
       static_cast<std::uint32_t>(sizeof tail), lkey},
  };
  wr.remote_addr = ep.remote_ring + layout_.header_off(slot);
  wr.rkey = ep.remote_ring_rkey;
  if (on_complete) {
    wr.signaled = true;
    wr.wr_id = next_wr_id_++;
    outstanding_[wr.wr_id] = std::move(on_complete);
  } else {
    wr.signaled = false;
  }
  ib_->post_send(ep.qp, std::move(wr));
  ++ep.sent_packets;
}

void Engine::emit_control(Endpoint& ep, PacketType type,
                          const std::shared_ptr<RequestState>& req,
                          mem::SimAddr buf_addr, ib::MKey rkey,
                          std::uint64_t buf_bytes, std::uint32_t dir) {
  PacketHeader hdr;
  hdr.dir = dir;
  hdr.type = type;
  hdr.src_rank = rank_;
  hdr.tag = req->tag;
  hdr.comm_id = req->comm_id;
  hdr.seq = req->seq;
  hdr.msg_bytes = req->bytes;
  hdr.buf_addr = buf_addr;
  hdr.rkey = rkey;
  hdr.buf_bytes = buf_bytes;
  emit_packet(ep, hdr, nullptr, 0);
}

void Engine::send_credit(Endpoint& ep) {
  // RDMA-write the consumption counter into the peer's credit cell. No ring
  // slot needed — this is what keeps the flow control deadlock-free.
  std::memcpy(ep.credit_src.data(), &ep.my_consumed, sizeof ep.my_consumed);
  ib::SendWr wr;
  wr.opcode = ib::Opcode::RdmaWrite;
  wr.signaled = false;
  wr.sg_list = {{ep.credit_src.addr(),
                 static_cast<std::uint32_t>(sizeof ep.my_consumed),
                 ep.credit_src_mr->lkey()}};
  wr.remote_addr = ep.remote_credit;
  wr.rkey = ep.remote_credit_rkey;
  ib_->post_send(ep.qp, std::move(wr));
  ep.my_consumed_reported = ep.my_consumed;
  ++stats_.credits_sent;
}

// ---------------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------------

void Engine::poll_cq() {
  ib::Wc wc[16];
  for (;;) {
    const int n = ib_->poll_cq(cq_, 16, wc);
    if (n == 0) break;
    for (int i = 0; i < n; ++i) {
      auto it = outstanding_.find(wc[i].wr_id);
      if (it == outstanding_.end()) continue;
      auto cb = std::move(it->second);
      outstanding_.erase(it);
      cb(wc[i]);
    }
  }
}

void Engine::read_credit_cell(Endpoint& ep) {
  std::uint64_t value = 0;
  std::memcpy(&value, ep.credit_cell.data(), sizeof value);
  if (value > ep.consumed_by_peer) {
    ep.consumed_by_peer = value;
  }
}

void Engine::scan_ring(Endpoint& ep) {
  const bool on_phi = ib_->data_domain() == mem::Domain::PhiGddr;
  for (;;) {
    const int slot = static_cast<int>(ep.my_consumed % slots());
    std::byte* base = ep.ring.data() + layout_.header_off(slot);
    PacketHeader hdr;
    std::memcpy(&hdr, base, sizeof hdr);
    if (hdr.magic != kPacketMagic) break;
    const std::uint64_t plen =
        hdr.type == PacketType::Eager ? hdr.msg_bytes : 0;
    PacketTail tail = 0;
    std::memcpy(&tail, ep.ring.data() + layout_.tail_off(slot, plen),
                sizeof tail);
    if (tail != kPacketMagic) break;  // data still in flight

    // The poll that found the packet costs a core its cycles.
    ib_->process().wait(on_phi ? platform_.phi_poll_overhead
                               : platform_.host_poll_overhead);

    const std::byte* payload = ep.ring.data() + layout_.payload_off(slot);
    handle_packet(ep, hdr, payload);

    // Release the slot, then occasionally tell the sender.
    std::memset(base, 0, sizeof hdr);
    std::memset(ep.ring.data() + layout_.tail_off(slot, plen), 0, sizeof tail);
    ++ep.my_consumed;
    ++stats_.packets_rx;
    if (ep.my_consumed - ep.my_consumed_reported >=
        static_cast<std::uint64_t>(std::max(1, slots() / 4))) {
      send_credit(ep);
    }
  }
}

void Engine::progress() {
  if (in_progress_) return;
  in_progress_ = true;
  struct Guard {
    bool& flag;
    ~Guard() { flag = false; }
  } guard{in_progress_};

  poll_cq();
  for (auto& [p, ep] : endpoints_) {
    read_credit_cell(ep);
    drain_tx(ep);
    scan_ring(ep);
  }
}

// ---------------------------------------------------------------------------
// Completion / wait
// ---------------------------------------------------------------------------

void Engine::complete(const std::shared_ptr<RequestState>& req, int source,
                      int tag, std::size_t bytes) {
  req->status = Status{source, tag, bytes};
  req->phase = RequestState::Phase::Complete;
  if (sim::Tracer::current()) {
    const char* what = req->kind == RequestState::Kind::Send
                           ? (req->used_offload_shadow ? "send(offload)"
                                                       : "send")
                           : "recv";
    sim::trace_span("rank" + std::to_string(rank_),
                    std::string(what) + " " + std::to_string(bytes) +
                        "B tag=" + std::to_string(req->tag),
                    req->posted_at, ib_->process().now());
  }
  if (auto it = packed_.find(req.get()); it != packed_.end()) {
    phi_->dereg_offload_mr(it->second);
    packed_.erase(it);
  }
  if (req->has_pack) {
    forget_buffer(req->pack_buf);
    ib_->free_buffer(req->pack_buf);
    req->has_pack = false;
  }
  wake_.notify_all();
}

void Engine::fail(const std::shared_ptr<RequestState>& req, std::string why) {
  sim::Log::error(ib_->process().now(), "mpi",
                  "rank %d request error: %s", rank_, why.c_str());
  req->error = std::move(why);
  req->phase = RequestState::Phase::Error;
  wake_.notify_all();
}

Status Engine::wait(Request& req) {
  if (!req.valid()) throw MpiError("wait: null request");
  auto& st = *req.state_;
  while (!st.done()) {
    wake_pending_ = false;
    progress();
    if (st.done()) break;
    // Anything that landed while progress() was charging time re-runs the
    // scan instead of blocking (level-triggered wake).
    if (!wake_pending_) ib_->process().wait_on(wake_);
  }
  if (st.phase == RequestState::Phase::Error) throw MpiError(st.error);
  return st.status;
}

bool Engine::test(Request& req) {
  if (!req.valid()) throw MpiError("test: null request");
  // Like iprobe: a test costs a poll even when idle, so test() spin loops
  // advance the virtual clock instead of livelocking the simulation.
  const bool on_phi = ib_->data_domain() == mem::Domain::PhiGddr;
  ib_->process().wait(on_phi ? platform_.phi_poll_overhead
                             : platform_.host_poll_overhead);
  progress();
  if (req.state_->phase == RequestState::Phase::Error) {
    throw MpiError(req.state_->error);
  }
  return req.state_->done();
}

}  // namespace dcfa::mpi
