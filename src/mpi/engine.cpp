#include "mpi/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>

#include "mpi/wire.hpp"
#include "sim/engine.hpp"
#include "sim/log.hpp"
#include "sim/process.hpp"
#include "sim/trace.hpp"

namespace dcfa::mpi {

namespace {

// Live-engine registry for the deadline watchdog (tests/watchdog.cpp): the
// watchdog thread calls Engine::dump_all from outside the simulation when a
// run hangs past its deadline, just before aborting. The mutex only guards
// the set itself; the dumped fields are read unsynchronised (best-effort —
// the process is about to abort).
std::mutex g_engines_mu;
std::set<Engine*>& live_engines() {
  static std::set<Engine*> s;
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Bootstrap
// ---------------------------------------------------------------------------

void Bootstrap::put(int from, int to, PeerInfo info) {
  table_[{from, to}] = info;
  cond_.notify_all();
}

Bootstrap::PeerInfo Bootstrap::get(sim::Process& proc, int from, int to) {
  for (;;) {
    auto it = table_.find({from, to});
    if (it != table_.end()) return it->second;
    proc.wait_on(cond_);
  }
}

void Bootstrap::notify() {
  cond_.notify_all();
  // Wake every registered rank: one blocked in its own engine's wait loop
  // has no reason to look at the bootstrap unless told to.
  for (auto& [r, fn] : watches_) {
    if (fn) fn();
  }
}

void Bootstrap::put_epoch(int from, int to, std::uint32_t epoch,
                          PeerInfo info) {
  epoch_table_[{from, to, epoch}] = info;
  notify();
}

const Bootstrap::PeerInfo* Bootstrap::try_get_epoch(
    int from, int to, std::uint32_t epoch) const {
  auto it = epoch_table_.find({from, to, epoch});
  return it == epoch_table_.end() ? nullptr : &it->second;
}

void Bootstrap::request_reconnect(int from, int to, std::uint32_t epoch) {
  std::uint32_t& cur = reconnect_board_[{from, to}];
  if (epoch > cur) {
    cur = epoch;
    notify();
  }
}

std::uint32_t Bootstrap::reconnect_requested(int from, int to) const {
  auto it = reconnect_board_.find({from, to});
  return it == reconnect_board_.end() ? 0 : it->second;
}

void Bootstrap::set_watch(int rank, std::function<void()> fn) {
  if (fn) {
    watches_[rank] = std::move(fn);
  } else {
    watches_.erase(rank);
  }
}

void Bootstrap::put_direct(int from, int to, PeerInfo info) {
  table_[{from, to}] = info;
}

const Bootstrap::PeerInfo* Bootstrap::try_get(int from, int to) const {
  auto it = table_.find({from, to});
  return it == table_.end() ? nullptr : &it->second;
}

void Bootstrap::request_connect(int from, int to) {
  connect_requests_[to].push_back(from);
  notify_rank(to);
}

std::vector<int> Bootstrap::take_connect_requests(int rank) {
  auto it = connect_requests_.find(rank);
  if (it == connect_requests_.end()) return {};
  std::vector<int> out = std::move(it->second);
  connect_requests_.erase(it);
  return out;
}

void Bootstrap::notify_rank(int rank) {
  auto it = watches_.find(rank);
  if (it != watches_.end() && it->second) it->second();
}

void Bootstrap::mark_dead(int rank, sim::Time when) {
  if (dead_.count(rank) > 0) return;
  dead_[rank] = when;
  notify();
}

bool Bootstrap::is_dead(int rank) const { return dead_.count(rank) > 0; }

sim::Time Bootstrap::death_time(int rank) const {
  auto it = dead_.find(rank);
  return it == dead_.end() ? sim::Time{-1} : it->second;
}

void Bootstrap::announce_failure(int rank) {
  if (!announced_.insert(rank).second) return;
  failed_order_.push_back(rank);
  notify();
}

std::uint64_t Bootstrap::fail_epoch() const { return failed_order_.size(); }

int Bootstrap::failed_at(std::size_t i) const { return failed_order_.at(i); }

void Bootstrap::post_vote(std::uint32_t comm, std::uint64_t seq, int rank,
                          std::uint64_t value) {
  votes_[{comm, seq, rank}] = value;
  notify();
}

const std::uint64_t* Bootstrap::get_vote(std::uint32_t comm,
                                         std::uint64_t seq, int rank) const {
  auto it = votes_.find({comm, seq, rank});
  return it == votes_.end() ? nullptr : &it->second;
}

void Bootstrap::post_decision(std::uint32_t comm, std::uint64_t seq,
                              std::uint64_t value) {
  if (decisions_.count({comm, seq}) > 0) return;  // first decision wins
  decisions_[{comm, seq}] = value;
  notify();
}

const std::uint64_t* Bootstrap::get_decision(std::uint32_t comm,
                                             std::uint64_t seq) const {
  auto it = decisions_.find({comm, seq});
  return it == decisions_.end() ? nullptr : &it->second;
}

bool Bootstrap::rma_try_lock(std::uint64_t win, int target, int origin,
                             bool exclusive) {
  RmaLockSlot& slot = rma_locks_[{win, target}];
  if (slot.exclusive == origin || slot.shared.count(origin) > 0) {
    return true;  // already held (re-grant is idempotent)
  }
  if (slot.exclusive >= 0) return false;
  if (exclusive) {
    if (!slot.shared.empty()) return false;
    slot.exclusive = origin;
  } else {
    slot.shared.insert(origin);
  }
  return true;
}

void Bootstrap::rma_unlock(std::uint64_t win, int target, int origin) {
  auto it = rma_locks_.find({win, target});
  if (it == rma_locks_.end()) return;
  RmaLockSlot& slot = it->second;
  if (slot.exclusive == origin) slot.exclusive = -1;
  slot.shared.erase(origin);
  if (slot.exclusive < 0 && slot.shared.empty()) rma_locks_.erase(it);
  notify();
}

void Bootstrap::rma_release_rank(int origin) {
  bool changed = false;
  for (auto it = rma_locks_.begin(); it != rma_locks_.end();) {
    RmaLockSlot& slot = it->second;
    if (slot.exclusive == origin) {
      slot.exclusive = -1;
      changed = true;
    }
    changed |= slot.shared.erase(origin) > 0;
    if (slot.exclusive < 0 && slot.shared.empty()) {
      it = rma_locks_.erase(it);
    } else {
      ++it;
    }
  }
  if (changed) notify();
}

// ---------------------------------------------------------------------------
// Engine lifecycle
// ---------------------------------------------------------------------------

Engine::Engine(int rank, int nranks, std::unique_ptr<verbs::Ib> ib,
               Bootstrap& bootstrap, Options options)
    : rank_(rank),
      nranks_(nranks),
      ib_(std::move(ib)),
      phi_(dynamic_cast<core::PhiVerbs*>(ib_.get())),
      bootstrap_(bootstrap),
      options_(options),
      platform_(ib_->hca_ref().platform()),
      eager_threshold_(
          options.eager_threshold.value_or(platform_.eager_threshold)),
      offload_threshold_(options.offload_send_threshold.value_or(
          platform_.offload_send_threshold)),
      layout_{std::max<std::uint64_t>(platform_.eager_max_payload,
                                      eager_threshold_)},
      wake_(ib_->process().engine(), "mpi.wake[" + std::to_string(rank) + "]") {
  if (rank < 0 || nranks <= 0 || rank >= nranks) {
    throw MpiError("Engine: bad rank/size");
  }
  mpi_offload_threshold_ = options.mpi_offload_threshold.value_or(
      platform_.mpi_offload_threshold);
  coll_tuning_ = resolve_coll_tuning(platform_, options.coll);
  faults_ = ib_->faults();
  faults_armed_ = faults_ != nullptr && faults_->armed();
  fatal_armed_ = faults_ != nullptr && faults_->spec().fatal_armed();
  kill_armed_ = faults_ != nullptr && !faults_->spec().rank_kill.empty();
  lazy_ = options.lazy_endpoints;
  usable_slots_ = faults_armed_
                      ? static_cast<std::uint64_t>(faults_->credit_cap(slots()))
                      : static_cast<std::uint64_t>(slots());
  retry_timeout_ = options.retry_timeout.value_or(platform_.mpi_retry_timeout);
  max_retries_ = options.max_retries.value_or(platform_.mpi_max_retries);
  if (!phi_) {
    // The delegations only exist on co-processor endpoints.
    options_.offload_reductions = false;
    options_.offload_datatypes = false;
  }
  {
    std::lock_guard<std::mutex> lock(g_engines_mu);
    live_engines().insert(this);
  }
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(g_engines_mu);
    live_engines().erase(this);
  }
  // The HCA and CQ outlive this engine (they belong to the cluster): tear
  // the wake-up callbacks out so a packet landing after an early death
  // (e.g. a rank body that threw) cannot call into freed memory. Retry
  // timers still queued in the simulator are defused the same way.
  *alive_ = false;
  hb_stop_ = true;
  if (fatal_armed_ || lazy_) bootstrap_.set_watch(rank_, {});
  if (cq_) cq_->set_on_push({});
  if (write_observer_id_ != SIZE_MAX) {
    ib_->hca_ref().remove_remote_write_observer(write_observer_id_);
  }
}

void Engine::setup() {
  if (setup_done_) throw MpiError("Engine::setup called twice");
  pd_ = ib_->alloc_pd();
  cq_ = ib_->create_cq(4096);
  cq_->set_on_push([this] {
    wake_pending_ = true;
    wake_.notify_all();
  });
  write_observer_id_ = ib_->hca_ref().add_remote_write_observer([this] {
    wake_pending_ = true;
    wake_.notify_all();
  });

  mr_cache_ = std::make_unique<MrCache>(*ib_, *pd_, platform_.mr_cache_entries,
                                        platform_.mr_cache_bytes);
  if (phi_ && options_.offload_send_buffer) {
    shadow_cache_ = std::make_unique<OffloadShadowCache>(
        *phi_, *pd_, platform_.mr_cache_entries);
  }

  if (lazy_) {
    // First-touch wiring: no endpoints yet — endpoint() establishes pairs
    // on demand and progress() answers peers' connect requests. The watch
    // is how a rank blocked in a wait loop learns a requester needs it.
    bootstrap_.set_watch(rank_, [this] {
      wake_pending_ = true;
      wake_.notify_all();
    });
    if (fatal_armed_) schedule_heartbeat();
  } else {
    for (int p = 0; p < nranks_; ++p) {
      if (p == rank_) continue;
      open_endpoint(p);
    }
    for (auto& [p, ep] : endpoints_) {
      connect_endpoint(ep, bootstrap_.get(ib_->process(), p, rank_));
    }
    if (fatal_armed_) {
      const sim::Time now = ib_->process().now();
      for (auto& [p, ep] : endpoints_) ep.last_heard = now;
      bootstrap_.set_watch(rank_, [this] {
        wake_pending_ = true;
        wake_.notify_all();
      });
      schedule_heartbeat();
    }
  }
  if (kill_armed_) {
    const sim::Time at = faults_->spec().kill_time_of(rank_);
    if (at >= 0) {
      // This rank is a victim: arm the suicide timer. The delay is clamped
      // so setup (a collective) always completes — the victim dies as a
      // fully wired member, which is what makes its memory safe to receive
      // survivors' in-flight writes afterwards.
      const sim::Time now = ib_->process().now();
      auto alive = alive_;
      ib_->process().engine().schedule_after(
          std::max<sim::Time>(at - now, 1), [this, alive] {
            if (!*alive) return;
            die();
          });
    }
  }
  setup_done_ = true;
}

void Engine::die() {
  if (dead_) return;
  dead_ = true;
  hb_stop_ = true;  // beacons stop; survivors' liveness timers take it from here
  const sim::Time now = ib_->process().now();
  faults_->note_rank_kill();
  sim::Log::info(now, "mpi", "rank %d killed (rank_kill fate)", rank_);
  sim::trace_instant("rank" + std::to_string(rank_) + ".faults", "rank-killed",
                     now);
  // Launcher-level ground truth; survivors adopt through the failure board
  // once one of them *detects* the silence (liveness timeout / retry
  // exhaustion) — the registry itself only short-circuits doomed reconnects
  // and anchors the detection-latency metric.
  bootstrap_.mark_dead(rank_, now);
  wake_pending_ = true;
  wake_.notify_all();
}

void Engine::finalize() {
  if (finalized_) return;
  // End the heartbeat chain first: an eternal self-rescheduling timer would
  // keep the simulation alive forever.
  hb_stop_ = true;
  // Quiesce before tearing anything down: drain deferred emissions and
  // outstanding completions, then give straggling unsignaled writes (credit
  // updates) time to land so no WR is in flight against a dead MR.
  if (faults_armed_) {
    // Flush unreported credits first: a peer whose packet's CQE was dropped
    // is waiting on exactly this counter as its implicit ack, and no more
    // consumption will happen to push it past the reporting threshold.
    for (auto& [p, ep] : endpoints_) {
      // A Failed endpoint's peer is gone (or unrecoverable): flushing a
      // credit toward it would post on a dead connection for nothing.
      if (ep.conn_state == ConnState::Failed) continue;
      if (ep.my_consumed > ep.my_consumed_reported) send_credit(ep);
    }
  }
  for (;;) {
    progress();
    bool idle = outstanding_.empty() && data_ops_.empty() &&
                pending_recovery_.empty();
    for (auto& [p, ep] : endpoints_) {
      if (!ep.pending_tx.empty() || !ep.unacked.empty()) idle = false;
    }
    if (idle) break;
    ib_->process().wait_on(wake_);
  }
  ib_->process().wait(sim::microseconds(100));
  if (fatal_armed_ || lazy_) bootstrap_.set_watch(rank_, {});

  if (phi_) {
    stats_.cmd_retries = phi_->cmd_retries();
    stats_.cmd_timeouts = phi_->cmd_timeouts();
    if (phi_->in_proxy_fallback()) stats_.proxy_failovers = 1;
  }
  if (faults_armed_ && sim::Tracer::current()) {
    sim::Tracer* t = sim::Tracer::current();
    const std::string track = "rank" + std::to_string(rank_) + ".faults";
    const sim::Time at = ib_->process().now();
    t->counter(track, "retransmits", at, double(stats_.retransmits));
    t->counter(track, "wc_errors", at, double(stats_.wc_errors));
    t->counter(track, "wc_timeouts", at, double(stats_.wc_timeouts));
    t->counter(track, "credit_acked", at, double(stats_.credit_acked));
    t->counter(track, "dup_dropped", at, double(stats_.dup_packets_dropped));
    t->counter(track, "data_op_retries", at, double(stats_.data_op_retries));
    t->counter(track, "retry_exhausted", at, double(stats_.retry_exhausted));
    t->counter(track, "offload_fallbacks", at,
               double(stats_.offload_fallbacks));
    t->counter(track, "cmd_retries", at, double(stats_.cmd_retries));
    t->counter(track, "cmd_timeouts", at, double(stats_.cmd_timeouts));
    t->counter(track, "reconnects", at, double(stats_.reconnects));
    t->counter(track, "proxy_failovers", at, double(stats_.proxy_failovers));
    t->counter(track, "epoch_fenced", at, double(stats_.epoch_fenced));
  }

  if (mr_cache_) mr_cache_->clear();
  if (shadow_cache_) shadow_cache_->clear();
  for (auto& [p, ep] : endpoints_) {
    ib_->dereg_mr(ep.ring_mr);
    ib_->dereg_mr(ep.staging_mr);
    ib_->dereg_mr(ep.credit_mr);
    ib_->dereg_mr(ep.credit_src_mr);
    ib_->free_buffer(ep.ring);
    ib_->free_buffer(ep.staging);
    ib_->free_buffer(ep.credit_cell);
    ib_->free_buffer(ep.credit_src);
    if (ep.hb_cell_mr) {
      ib_->dereg_mr(ep.hb_cell_mr);
      ib_->dereg_mr(ep.hb_src_mr);
      ib_->free_buffer(ep.hb_cell);
      ib_->free_buffer(ep.hb_src);
    }
  }
  finalized_ = true;
}

Engine::Endpoint& Engine::open_endpoint(int peer) {
  const std::size_t ring_bytes = layout_.stride() * slots();
  Endpoint& ep = endpoints_[peer];
  ep.peer = peer;
  ep.ring = ib_->alloc_buffer(ring_bytes, mem::AddressSpace::kPage);
  ep.ring_mr = ib_->reg_mr(pd_, ep.ring, ib::kLocalWrite | ib::kRemoteWrite);
  ep.staging = ib_->alloc_buffer(ring_bytes, mem::AddressSpace::kPage);
  ep.staging_mr = ib_->reg_mr(pd_, ep.staging, ib::kLocalWrite);
  ep.credit_cell = ib_->alloc_buffer(sizeof(std::uint64_t), 64);
  ep.credit_mr =
      ib_->reg_mr(pd_, ep.credit_cell, ib::kLocalWrite | ib::kRemoteWrite);
  ep.credit_src = ib_->alloc_buffer(sizeof(std::uint64_t), 64);
  ep.credit_src_mr = ib_->reg_mr(pd_, ep.credit_src, ib::kLocalWrite);
  if (fatal_armed_) {
    // Peer-liveness heartbeat cells; beacons are non-faultable, like
    // credit updates. Only fatal specs pay for these so non-fatal runs
    // keep their exact event schedule. Two words per beacon: the liveness
    // counter and the sender's known-failure epoch (failure dissemination
    // rides the heartbeat as well as the packet headers).
    ep.hb_cell = ib_->alloc_buffer(2 * sizeof(std::uint64_t), 64);
    ep.hb_cell_mr =
        ib_->reg_mr(pd_, ep.hb_cell, ib::kLocalWrite | ib::kRemoteWrite);
    ep.hb_src = ib_->alloc_buffer(2 * sizeof(std::uint64_t), 64);
    ep.hb_src_mr = ib_->reg_mr(pd_, ep.hb_src, ib::kLocalWrite);
  }
  ep.qp = ib_->create_qp(pd_, cq_, cq_);

  Bootstrap::PeerInfo info{ib_->address(ep.qp), ep.ring.addr(),
                           ep.ring_mr->rkey(), ep.credit_cell.addr(),
                           ep.credit_mr->rkey()};
  if (fatal_armed_) {
    info.hb_addr = ep.hb_cell.addr();
    info.hb_rkey = ep.hb_cell_mr->rkey();
  }
  if (lazy_) {
    bootstrap_.put_direct(rank_, peer, info);
  } else {
    bootstrap_.put(rank_, peer, info);
  }
  return ep;
}

void Engine::connect_endpoint(Endpoint& ep, const Bootstrap::PeerInfo& info) {
  ib_->connect(ep.qp, info.qp);
  ep.remote_ring = info.ring_addr;
  ep.remote_ring_rkey = info.ring_rkey;
  ep.remote_credit = info.credit_addr;
  ep.remote_credit_rkey = info.credit_rkey;
  ep.remote_hb = info.hb_addr;
  ep.remote_hb_rkey = info.hb_rkey;
}

Engine::Endpoint& Engine::establish_endpoint(int peer) {
  // Publish-before-request: our half is on the board before the request, so
  // the responder can always finish without blocking on us.
  Endpoint& ep = open_endpoint(peer);
  bootstrap_.request_connect(rank_, peer);
  const Bootstrap::PeerInfo* pi = nullptr;
  for (;;) {
    check_alive();
    if (kill_armed_ && bootstrap_.is_dead(peer)) {
      // The peer died before building its half; its publication will never
      // come. Put the death on the board (purging dependent state) and
      // unwind — waiting here would hang the rank forever.
      declare_failed(peer, "peer died before first connection");
      throw MpiError("connect to dead rank " + std::to_string(peer),
                     MpiErrc::ProcFailed, peer);
    }
    wake_pending_ = false;
    pi = bootstrap_.try_get(peer, rank_);
    if (pi) break;
    // Serve incoming first-touch requests while blocked: A waiting on B
    // while C waits on A must still build A's half toward C.
    service_connect_requests();
    pi = bootstrap_.try_get(peer, rank_);
    if (pi) break;
    if (!wake_pending_) ib_->process().wait_on(wake_);
  }
  connect_endpoint(ep, *pi);
  if (fatal_armed_) ep.last_heard = ib_->process().now();
  return ep;
}

void Engine::service_connect_requests() {
  for (int q : bootstrap_.take_connect_requests(rank_)) {
    if (q == rank_ || endpoints_.count(q) > 0) continue;  // already wired
    if (kill_armed_ && bootstrap_.is_dead(q)) continue;   // requester died
    const Bootstrap::PeerInfo* pi = bootstrap_.try_get(q, rank_);
    if (!pi) continue;  // unreachable under publish-before-request
    Endpoint& ep = open_endpoint(q);
    connect_endpoint(ep, *pi);
    if (fatal_armed_) ep.last_heard = ib_->process().now();
    bootstrap_.notify_rank(q);  // requester's wait loop can proceed
  }
}

Engine::Endpoint& Engine::endpoint(int peer) {
  auto it = endpoints_.find(peer);
  if (it == endpoints_.end()) {
    if (lazy_ && setup_done_ && !finalized_ && peer != rank_ && peer >= 0 &&
        peer < nranks_) {
      return establish_endpoint(peer);
    }
    throw MpiError("no endpoint for rank " + std::to_string(peer));
  }
  return it->second;
}

void Engine::forget_buffer(const mem::Buffer& buf) {
  if (mr_cache_) mr_cache_->invalidate(buf);
  if (shadow_cache_) shadow_cache_->invalidate(buf);
}

sim::Checker& Engine::chk() { return ib_->process().engine().checker(); }

sim::Checker& Engine::checker() { return chk(); }

// ---------------------------------------------------------------------------
// TX plumbing
// ---------------------------------------------------------------------------

void Engine::tx(Endpoint& ep, std::function<void()> emit,
                std::shared_ptr<RequestState> owner) {
  if (ep.pending_tx.empty() && slots_free(ep) > 0) {
    emit();
    return;
  }
  ++stats_.tx_stalls;
  ep.pending_tx.push_back({std::move(emit), std::move(owner)});
}

void Engine::drain_tx(Endpoint& ep) {
  while (!ep.pending_tx.empty() && slots_free(ep) > 0) {
    auto emit = std::move(ep.pending_tx.front().emit);
    ep.pending_tx.pop_front();
    emit();
  }
}

void Engine::emit_packet(Endpoint& ep, PacketHeader hdr,
                         const std::byte* payload, std::size_t len,
                         std::function<void(const ib::Wc&)> on_complete,
                         std::shared_ptr<RequestState> owner) {
  assert(slots_free(ep) > 0);
  chk().packet_emitted(rank_, ep.peer, ep.sent_packets + 1,
                       ep.sent_packets + 1 - ep.consumed_by_peer,
                       usable_slots_);
  // Failure-propagation piggyback: every outgoing packet carries this
  // rank's known-failure epoch (Tentpole part 1 — dissemination rides
  // existing traffic).
  hdr.fail_epoch = known_fail_epoch_;
  if (faults_armed_) {
    // Reliable path: stamp the absolute ring index and track the packet
    // until a CQE or a returning credit confirms delivery. Reusing a slot
    // is only possible once the peer's credit covered its old occupant, so
    // any record still parked there is implicitly acknowledged now.
    const std::uint64_t idx = ep.sent_packets;
    hdr.ring_idx = idx;
    hdr.conn_epoch = ep.epoch;
    if (idx >= static_cast<std::uint64_t>(slots())) {
      const std::uint64_t old = idx - slots();
      if (ep.unacked.count(old) > 0) {
        ++stats_.credit_acked;
        ib::Wc ack{};
        ack.status = ib::WcStatus::Success;
        finish_tx_record(ep, old, ack);
      }
      ep.delivered.erase(old);  // slot reuse proves the peer consumed it
    }
    const int slot = static_cast<int>(idx % slots());
    wire::put(ep.staging, layout_.header_off(slot), hdr);
    if (len > 0) {
      wire::put_bytes(ep.staging, layout_.payload_off(slot), payload, len);
      ib_->charge_memcpy(len);
    }
    const PacketTail tail = kPacketMagic;
    wire::put(ep.staging, layout_.tail_off(slot, len), tail);
    TxRecord rec;
    rec.hdr = hdr;
    rec.payload_len = len;
    rec.on_delivered = std::move(on_complete);
    rec.owner = std::move(owner);
    ep.unacked.emplace(idx, std::move(rec));
    ++ep.sent_packets;
    post_tx_record(ep, idx);
    return;
  }
  const int slot = static_cast<int>(ep.sent_packets % slots());

  // Stage header, payload (the eager one-copy) and tail into the slot.
  wire::put(ep.staging, layout_.header_off(slot), hdr);
  if (len > 0) {
    wire::put_bytes(ep.staging, layout_.payload_off(slot), payload, len);
    ib_->charge_memcpy(len);
  }
  const PacketTail tail = kPacketMagic;
  wire::put(ep.staging, layout_.tail_off(slot, len), tail);

  // Header SGE + data SGE + tail SGE, exactly as the paper describes; the
  // responder lays them down contiguously so the tail lands last-after-data.
  ib::SendWr wr;
  wr.opcode = ib::Opcode::RdmaWrite;
  const ib::MKey lkey = ep.staging_mr->lkey();
  wr.sg_list = {
      {ep.staging.addr() + layout_.header_off(slot),
       static_cast<std::uint32_t>(sizeof hdr), lkey},
      {ep.staging.addr() + layout_.payload_off(slot),
       static_cast<std::uint32_t>(len), lkey},
      {ep.staging.addr() + layout_.tail_off(slot, len),
       static_cast<std::uint32_t>(sizeof tail), lkey},
  };
  wr.remote_addr = ep.remote_ring + layout_.header_off(slot);
  wr.rkey = ep.remote_ring_rkey;
  if (on_complete) {
    wr.signaled = true;
    wr.wr_id = next_wr_id_++;
    outstanding_[wr.wr_id] = std::move(on_complete);
  } else {
    wr.signaled = false;
  }
  ib_->post_send(ep.qp, std::move(wr));
  ++ep.sent_packets;
}

void Engine::emit_control(Endpoint& ep, PacketType type,
                          const std::shared_ptr<RequestState>& req,
                          mem::SimAddr buf_addr, ib::MKey rkey,
                          std::uint64_t buf_bytes, std::uint32_t dir) {
  PacketHeader hdr;
  hdr.dir = dir;
  hdr.type = type;
  hdr.src_rank = rank_;
  hdr.tag = req->tag;
  hdr.comm_id = req->comm_id;
  hdr.seq = req->seq;
  hdr.msg_bytes = req->bytes;
  hdr.buf_addr = buf_addr;
  hdr.rkey = rkey;
  hdr.buf_bytes = buf_bytes;
  // The request rides along as the record owner: if the transport retry
  // budget runs out on a control packet, the request is failed cleanly.
  emit_packet(ep, hdr, nullptr, 0, {}, req);
}

// ---------------------------------------------------------------------------
// Fault recovery: tracked ring packets and rendezvous data operations
// ---------------------------------------------------------------------------

void Engine::schedule_recovery(sim::Time delay, std::function<void()> fn) {
  // Timers fire in engine context, where post_send (which charges process
  // time) is illegal — park the work for the next progress() pass instead.
  auto alive = alive_;
  ib_->process().engine().schedule_after(
      delay, [this, alive, fn = std::move(fn)]() mutable {
        if (!*alive) return;
        pending_recovery_.push_back(std::move(fn));
        wake_pending_ = true;
        wake_.notify_all();
      });
}

void Engine::post_tx_record(Endpoint& ep, std::uint64_t idx) {
  TxRecord& rec = ep.unacked.at(idx);
  const int slot = static_cast<int>(idx % slots());
  const std::size_t len = rec.payload_len;
  const int attempts = rec.attempts;
  ++rec.epoch;
  const std::uint64_t epoch = rec.epoch;
  const int peer = ep.peer;

  // The staging slot still holds header+payload+tail (it cannot be reused
  // before the peer's credit proves consumption), so a retransmit re-posts
  // the very same SGEs.
  ib::SendWr wr;
  wr.opcode = ib::Opcode::RdmaWrite;
  wr.faultable = true;
  wr.signaled = true;
  wr.wr_id = next_wr_id_++;
  const ib::MKey lkey = ep.staging_mr->lkey();
  wr.sg_list = {
      {ep.staging.addr() + layout_.header_off(slot),
       static_cast<std::uint32_t>(sizeof(PacketHeader)), lkey},
      {ep.staging.addr() + layout_.payload_off(slot),
       static_cast<std::uint32_t>(len), lkey},
      {ep.staging.addr() + layout_.tail_off(slot, len),
       static_cast<std::uint32_t>(sizeof(PacketTail)), lkey},
  };
  wr.remote_addr = ep.remote_ring + layout_.header_off(slot);
  wr.rkey = ep.remote_ring_rkey;
  rec.wr_ids.push_back(wr.wr_id);
  outstanding_[wr.wr_id] = [this, peer, idx](const ib::Wc& wc) {
    on_tx_wc(peer, idx, wc);
  };
  ib_->post_send(ep.qp, std::move(wr));

  // Bounded exponential backoff: the per-attempt timeout doubles.
  schedule_recovery(retry_timeout_ << (attempts - 1),
                    [this, peer, idx, epoch] {
                      tx_check(peer, idx, epoch, /*after_error=*/false);
                    });
}

void Engine::on_tx_wc(int peer, std::uint64_t idx, const ib::Wc& wc) {
  auto eit = endpoints_.find(peer);
  if (eit == endpoints_.end()) return;
  Endpoint& ep = eit->second;
  auto it = ep.unacked.find(idx);
  if (it == ep.unacked.end()) return;  // already credit-acknowledged
  if (wc.status == ib::WcStatus::Success) {
    // Delivered, but not yet provably consumed: park the header so a later
    // reconnect (which rebuilds the peer's ring) can replay it. The credit
    // counter purges the entry once consumption is proven.
    ep.delivered[idx] =
        Endpoint::DeliveredTx{it->second.hdr, it->second.payload_len};
    finish_tx_record(ep, idx, wc);
    return;
  }
  // Injected transport error: the write never happened. Retry after the
  // current backoff, or give up when the budget is spent.
  ++stats_.wc_errors;
  TxRecord& rec = it->second;
  ++rec.epoch;  // defuse the pending timeout timer
  if (ep.qp->state() == ib::QpState::Error &&
      maybe_start_reconnect(ep, "qp error state")) {
    return;  // record stays parked in unacked; the reconnect replays it
  }
  if (rec.attempts >= 1 + max_retries_) {
    if (maybe_start_reconnect(ep, "retry budget exhausted")) return;
    finish_tx_record(ep, idx, wc);
    return;
  }
  const std::uint64_t epoch = rec.epoch;
  schedule_recovery(retry_timeout_ << (rec.attempts - 1),
                    [this, peer, idx, epoch] {
                      tx_check(peer, idx, epoch, /*after_error=*/true);
                    });
}

void Engine::tx_check(int peer, std::uint64_t idx, std::uint64_t epoch,
                      bool after_error) {
  auto eit = endpoints_.find(peer);
  if (eit == endpoints_.end()) return;
  Endpoint& ep = eit->second;
  auto it = ep.unacked.find(idx);
  if (it == ep.unacked.end() || it->second.epoch != epoch) return;
  if (!after_error) {
    // The CQE may have been lost while the data landed: the peer's credit
    // counter is the implicit acknowledgement.
    read_credit_cell(ep);
    if (ep.consumed_by_peer > idx) {
      ++stats_.credit_acked;
      ib::Wc ack{};
      ack.status = ib::WcStatus::Success;
      finish_tx_record(ep, idx, ack);
      return;
    }
    ++stats_.wc_timeouts;
    if (it->second.attempts >= 1 + max_retries_) {
      if (maybe_start_reconnect(ep, "retry budget exhausted")) return;
      ib::Wc err{};
      err.status = ib::WcStatus::RetryExceeded;
      finish_tx_record(ep, idx, err);
      return;
    }
  }
  ++it->second.attempts;
  ++stats_.retransmits;
  sim::trace_instant("rank" + std::to_string(rank_) + ".faults",
                     "retransmit idx=" + std::to_string(idx),
                     ib_->process().now());
  post_tx_record(ep, idx);
}

void Engine::finish_tx_record(Endpoint& ep, std::uint64_t idx,
                              const ib::Wc& wc) {
  auto it = ep.unacked.find(idx);
  auto cb = std::move(it->second.on_delivered);
  auto owner = std::move(it->second.owner);
  forget_wr_ids(it->second.wr_ids);
  ep.unacked.erase(it);
  if (wc.status != ib::WcStatus::Success) {
    ++stats_.retry_exhausted;
    sim::trace_instant("rank" + std::to_string(rank_) + ".faults",
                       "retry-exhausted idx=" + std::to_string(idx),
                       ib_->process().now());
  }
  if (wc.status != ib::WcStatus::Success) {
    // Blame scope: a failure delivered from here means the transport gave
    // up on a known peer — requests failed by the callback inherit the
    // taxonomy (MpiError carries errc + peer on retry exhaustion).
    BlameScope blame(*this, MpiErrc::RetryExhausted, ep.peer);
    if (cb) {
      cb(wc);
    } else if (owner && !owner->done()) {
      fail(owner, std::string("transport retry budget exhausted (") +
                      ib::wc_status_name(wc.status) + ")");
    }
  } else if (cb) {
    cb(wc);
  }
  wake_.notify_all();
}

void Engine::post_data_wr(Endpoint& ep, ib::SendWr wr,
                          std::function<void(const ib::Wc&)> on_result) {
  if (!faults_armed_) {
    wr.signaled = true;
    wr.wr_id = next_wr_id_++;
    outstanding_[wr.wr_id] = std::move(on_result);
    ib_->post_send(ep.qp, std::move(wr));
    return;
  }
  const std::uint64_t op = next_data_op_++;
  DataOp& d = data_ops_[op];
  d.peer = ep.peer;
  d.wr = std::move(wr);
  d.on_result = std::move(on_result);
  post_data_op(op);
}

void Engine::post_data_op(std::uint64_t op) {
  DataOp& d = data_ops_.at(op);
  ++d.epoch;
  const std::uint64_t epoch = d.epoch;
  const int attempts = d.attempts;
  ib::QueuePair* qp = endpoint(d.peer).qp;
  ib::SendWr wr = d.wr;
  wr.signaled = true;
  wr.faultable = true;
  wr.wr_id = next_wr_id_++;
  d.wr_ids.push_back(wr.wr_id);
  outstanding_[wr.wr_id] = [this, op](const ib::Wc& wc) {
    on_data_wc(op, wc);
  };
  ib_->post_send(qp, std::move(wr));
  schedule_recovery(retry_timeout_ << (attempts - 1),
                    [this, op, epoch] {
                      data_check(op, epoch, /*after_error=*/false);
                    });
}

void Engine::on_data_wc(std::uint64_t op, const ib::Wc& wc) {
  auto it = data_ops_.find(op);
  if (it == data_ops_.end()) return;
  DataOp& d = it->second;
  if (wc.status == ib::WcStatus::Success) {
    auto cb = std::move(d.on_result);
    forget_wr_ids(d.wr_ids);
    data_ops_.erase(it);
    cb(wc);
    wake_.notify_all();
    return;
  }
  ++stats_.wc_errors;
  ++d.epoch;
  Endpoint& dep = endpoint(d.peer);
  if (dep.qp->state() == ib::QpState::Error &&
      maybe_start_reconnect(dep, "qp error state")) {
    return;  // the op stays in data_ops_; the reconnect re-posts it
  }
  if (d.attempts >= 1 + max_retries_) {
    if (maybe_start_reconnect(dep, "data-op budget exhausted")) return;
    ++stats_.retry_exhausted;
    const int peer = d.peer;
    auto cb = std::move(d.on_result);
    forget_wr_ids(d.wr_ids);
    data_ops_.erase(it);
    BlameScope blame(*this, MpiErrc::RetryExhausted, peer);
    cb(wc);  // the protocol callbacks turn a bad status into fail(req)
    wake_.notify_all();
    return;
  }
  const std::uint64_t epoch = d.epoch;
  schedule_recovery(retry_timeout_ << (d.attempts - 1),
                    [this, op, epoch] {
                      data_check(op, epoch, /*after_error=*/true);
                    });
}

void Engine::data_check(std::uint64_t op, std::uint64_t epoch,
                        bool after_error) {
  auto it = data_ops_.find(op);
  if (it == data_ops_.end() || it->second.epoch != epoch) return;
  DataOp& d = it->second;
  if (!after_error) {
    ++stats_.wc_timeouts;
    if (d.attempts >= 1 + max_retries_) {
      if (maybe_start_reconnect(endpoint(d.peer), "data-op budget exhausted")) {
        return;
      }
      ++stats_.retry_exhausted;
      const int peer = d.peer;
      auto cb = std::move(d.on_result);
      ib::Wc err{};
      err.status = ib::WcStatus::RetryExceeded;
      forget_wr_ids(d.wr_ids);
      data_ops_.erase(it);
      BlameScope blame(*this, MpiErrc::RetryExhausted, peer);
      cb(err);
      wake_.notify_all();
      return;
    }
  }
  ++d.attempts;
  ++stats_.data_op_retries;
  sim::trace_instant("rank" + std::to_string(rank_) + ".faults",
                     "data-op-retry", ib_->process().now());
  post_data_op(op);
}

void Engine::forget_wr_ids(const std::vector<std::uint64_t>& ids) {
  for (std::uint64_t id : ids) outstanding_.erase(id);
}

// ---------------------------------------------------------------------------
// Fatal-fault recovery: connection re-establishment and graceful degradation
// ---------------------------------------------------------------------------

bool Engine::maybe_start_reconnect(Endpoint& ep, const char* why) {
  if (!fatal_armed_ || finalized_) return false;
  if (kill_armed_ && ep.conn_state != ConnState::Failed &&
      bootstrap_.is_dead(ep.peer)) {
    // The peer is permanently dead (rank_kill): reconnecting would block
    // forever on a publication that never comes. Declare the failure —
    // fail_peer_ops (via adoption) purges the parked records this signal
    // came from, so returning true is accurate: the signal is handled.
    declare_failed(ep.peer, why);
    return true;
  }
  if (ep.conn_state == ConnState::Suspect ||
      ep.conn_state == ConnState::Reconnecting) {
    return true;  // recovery already underway; this signal rides along
  }
  if (ep.conn_state == ConnState::Failed) return false;
  if (ep.reconnects >= platform_.mpi_max_reconnects) {
    // Unbounded error storms must still terminate: past the cumulative
    // budget the endpoint fails for good and operations raise MpiError.
    ep.conn_state = ConnState::Failed;
    sim::Log::error(ib_->process().now(), "mpi",
                    "rank %d endpoint %d: reconnect budget exhausted (%s)",
                    rank_, ep.peer, why);
    return false;
  }
  ep.conn_state = ConnState::Suspect;
  sim::trace_instant("rank" + std::to_string(rank_) + ".faults",
                     "endpoint-suspect peer=" + std::to_string(ep.peer) +
                         " (" + why + ")",
                     ib_->process().now());
  const std::uint32_t target = ep.epoch + 1;
  const int peer = ep.peer;
  bootstrap_.request_reconnect(rank_, peer, target);
  // Death signals arrive in CQE callbacks and timer bodies; the actual
  // re-establishment runs from progress() in a clean context.
  schedule_recovery(0, [this, peer, target] {
    auto it = endpoints_.find(peer);
    if (it != endpoints_.end()) perform_reconnect(it->second, target);
  });
  return true;
}

void Engine::service_reconnect_requests(int except_peer) {
  for (auto& [p, ep] : endpoints_) {
    if (p == except_peer) continue;
    const std::uint32_t e = bootstrap_.reconnect_requested(p, rank_);
    if (e > ep.epoch && ep.conn_state != ConnState::Reconnecting) {
      perform_reconnect(ep, e);
    }
  }
}

void Engine::perform_reconnect(Endpoint& ep, std::uint32_t target_epoch) {
  if (ep.epoch >= target_epoch || ep.conn_state == ConnState::Reconnecting) {
    return;  // a concurrent signal already got here
  }
  if (kill_armed_) {
    if (ep.conn_state == ConnState::Failed) return;  // terminal under kills
    if (bootstrap_.is_dead(ep.peer)) {
      declare_failed(ep.peer, "reconnect target is dead");
      return;
    }
  }
  ep.conn_state = ConnState::Reconnecting;
  ++ep.reconnects;
  ++stats_.reconnects;
  sim::trace_instant("rank" + std::to_string(rank_) + ".faults",
                     "reconnect-start peer=" + std::to_string(ep.peer) +
                         " epoch=" + std::to_string(target_epoch),
                     ib_->process().now());
  sim::Log::info(ib_->process().now(), "mpi",
                 "rank %d re-establishing endpoint %d at epoch %u", rank_,
                 ep.peer, target_epoch);

  // --- Quiesce: defuse every pending timer and CQE callback, and snapshot
  // the packets that still need delivery through the new connection. The
  // staged payload is copied out now because the staging slots are about to
  // be scrubbed and reassigned.
  struct Replay {
    std::uint64_t idx = 0;
    PacketHeader hdr;
    std::vector<std::byte> payload;
    std::function<void(const ib::Wc&)> cb;
    std::shared_ptr<RequestState> owner;
  };
  std::vector<Replay> replay;
  auto copy_payload = [&](std::uint64_t idx, std::size_t len, Replay& r) {
    if (len == 0) return;
    const int slot = static_cast<int>(idx % slots());
    const std::byte* src = ep.staging.data() + layout_.payload_off(slot);
    r.payload.assign(src, src + len);
  };
  // Delivered-but-unconsumed packets are about to be destroyed with the
  // peer's ring; their completions already fired, so they replay with no
  // callback — the receive-side seq dedup keeps delivery exactly-once if
  // the peer did consume one before stalling.
  for (auto& [idx, d] : ep.delivered) {
    Replay r;
    r.idx = idx;
    r.hdr = d.hdr;
    copy_payload(idx, d.payload_len, r);
    replay.push_back(std::move(r));
  }
  ep.delivered.clear();
  for (auto& [idx, rec] : ep.unacked) {
    ++rec.epoch;  // defuse the pending tx_check timer
    forget_wr_ids(rec.wr_ids);
    Replay r;
    r.idx = idx;
    r.hdr = rec.hdr;
    copy_payload(idx, rec.payload_len, r);
    r.cb = std::move(rec.on_delivered);
    r.owner = std::move(rec.owner);
    replay.push_back(std::move(r));
  }
  ep.unacked.clear();
  std::sort(replay.begin(), replay.end(),
            [](const Replay& a, const Replay& b) { return a.idx < b.idx; });
  std::vector<std::uint64_t> ops;
  for (auto& [id, d] : data_ops_) {
    if (d.peer != ep.peer) continue;
    ++d.epoch;  // defuse the pending data_check timer
    forget_wr_ids(d.wr_ids);
    d.wr_ids.clear();
    d.attempts = 1;
    ops.push_back(id);
  }

  // --- Tear down and rebuild: destroy the (possibly error-wedged) QP and
  // re-register every connection MR, so in-flight writes against the old
  // generation lose their rkeys and are dropped at landing. On a Phi
  // endpoint each verb is a DCFA CMD round trip; when the delegate is dead
  // the verbs layer retries through CMD up to its strike budget and then
  // degrades to the host-proxy path (PhiVerbs::note_delegate_death), after
  // which this same rebuild completes through the proxy.
  try {
    ib_->destroy_qp(ep.qp);
    ib_->dereg_mr(ep.ring_mr);
    ib_->dereg_mr(ep.staging_mr);
    ib_->dereg_mr(ep.credit_mr);
    ib_->dereg_mr(ep.credit_src_mr);
    ib_->dereg_mr(ep.hb_cell_mr);
    ib_->dereg_mr(ep.hb_src_mr);
    std::memset(ep.ring.data(), 0, ep.ring.size());
    std::memset(ep.credit_cell.data(), 0, ep.credit_cell.size());
    std::memset(ep.hb_cell.data(), 0, ep.hb_cell.size());
    ep.ring_mr = ib_->reg_mr(pd_, ep.ring, ib::kLocalWrite | ib::kRemoteWrite);
    ep.staging_mr = ib_->reg_mr(pd_, ep.staging, ib::kLocalWrite);
    ep.credit_mr =
        ib_->reg_mr(pd_, ep.credit_cell, ib::kLocalWrite | ib::kRemoteWrite);
    ep.credit_src_mr = ib_->reg_mr(pd_, ep.credit_src, ib::kLocalWrite);
    ep.hb_cell_mr =
        ib_->reg_mr(pd_, ep.hb_cell, ib::kLocalWrite | ib::kRemoteWrite);
    ep.hb_src_mr = ib_->reg_mr(pd_, ep.hb_src, ib::kLocalWrite);
    ep.qp = ib_->create_qp(pd_, cq_, cq_);
  } catch (const core::CmdError&) {
    // Only reachable when proxy failover was not eligible; the endpoint is
    // unrecoverable — fail every parked operation cleanly.
    ep.conn_state = ConnState::Failed;
    for (auto& r : replay) {
      ib::Wc err{};
      err.status = ib::WcStatus::RetryExceeded;
      if (r.cb) {
        r.cb(err);
      } else if (r.owner && !r.owner->done()) {
        fail(r.owner, "connection re-establishment failed (delegate dead)");
      }
    }
    for (std::uint64_t id : ops) {
      auto oit = data_ops_.find(id);
      if (oit == data_ops_.end()) continue;
      auto cb = std::move(oit->second.on_result);
      data_ops_.erase(oit);
      ib::Wc err{};
      err.status = ib::WcStatus::RetryExceeded;
      cb(err);
    }
    wake_.notify_all();
    return;
  }

  // Ring and credit positions restart from zero on both sides; the packet
  // headers' conn_epoch keeps the generations apart.
  ep.sent_packets = 0;
  ep.consumed_by_peer = 0;
  ep.my_consumed = 0;
  ep.my_consumed_reported = 0;
  ep.hb_seq = 0;
  ep.hb_seen = 0;

  Bootstrap::PeerInfo mine{ib_->address(ep.qp), ep.ring.addr(),
                           ep.ring_mr->rkey(), ep.credit_cell.addr(),
                           ep.credit_mr->rkey(), ep.hb_cell.addr(),
                           ep.hb_cell_mr->rkey()};
  bootstrap_.put_epoch(rank_, ep.peer, target_epoch, mine);
  bootstrap_.request_reconnect(rank_, ep.peer, target_epoch);

  // Wait for the peer to publish the same generation. Serving *other*
  // peers' reconnect requests while blocked breaks multi-endpoint cycles
  // (A waits on B while C waits on A).
  const Bootstrap::PeerInfo* pi = nullptr;
  for (;;) {
    check_alive();  // our own kill fate can fire while blocked here
    if (kill_armed_ && bootstrap_.is_dead(ep.peer)) {
      // The peer died mid-handshake: its epoch publication will never come.
      // The in-flight state was already quiesced into `replay`/`ops`, out
      // of fail_peer_ops' reach — fail it here, then put the death on the
      // board so the rest of this rank's dependent state gets purged too.
      ep.conn_state = ConnState::Failed;
      BlameScope blame(*this, MpiErrc::ProcFailed, ep.peer);
      ib::Wc err{};
      err.status = ib::WcStatus::RetryExceeded;
      for (auto& r : replay) {
        if (r.cb) {
          r.cb(err);
        } else if (r.owner && !r.owner->done()) {
          fail(r.owner, "peer died during connection re-establishment");
        }
      }
      for (std::uint64_t id : ops) {
        auto oit = data_ops_.find(id);
        if (oit == data_ops_.end()) continue;
        auto cb = std::move(oit->second.on_result);
        data_ops_.erase(oit);
        cb(err);
      }
      declare_failed(ep.peer, "peer died during reconnect handshake");
      wake_.notify_all();
      return;
    }
    pi = bootstrap_.try_get_epoch(ep.peer, rank_, target_epoch);
    if (pi) break;
    service_reconnect_requests(/*except_peer=*/ep.peer);
    pi = bootstrap_.try_get_epoch(ep.peer, rank_, target_epoch);
    if (pi) break;
    ib_->process().wait_on(bootstrap_.changed());
  }
  ib_->connect(ep.qp, pi->qp);
  ep.remote_ring = pi->ring_addr;
  ep.remote_ring_rkey = pi->ring_rkey;
  ep.remote_credit = pi->credit_addr;
  ep.remote_credit_rkey = pi->credit_rkey;
  ep.remote_hb = pi->hb_addr;
  ep.remote_hb_rkey = pi->hb_rkey;
  ep.epoch = target_epoch;
  chk().epoch_advanced(rank_, ep.peer, target_epoch);
  ep.conn_state = (phi_ && phi_->in_proxy_fallback()) ? ConnState::Degraded
                                                      : ConnState::Healthy;
  ep.last_heard = ib_->process().now();
  sim::trace_instant("rank" + std::to_string(rank_) + ".faults",
                     "reconnect-done peer=" + std::to_string(ep.peer) +
                         " epoch=" + std::to_string(target_epoch),
                     ib_->process().now());

  // --- Replay, in emission order. Sequence numbers are preserved, so if an
  // original write did land before the fault, the receiver's seq-level
  // duplicate suppression keeps MPI-level delivery exactly-once.
  for (auto& r : replay) {
    emit_packet(ep, r.hdr, r.payload.data(), r.payload.size(),
                std::move(r.cb), std::move(r.owner));
  }
  // Rendezvous RDMA ops are idempotent (same bytes, same addresses, and the
  // user-buffer MRs survived the reconnect): a plain re-post suffices.
  for (std::uint64_t id : ops) {
    if (data_ops_.count(id) > 0) post_data_op(id);
  }
  drain_tx(ep);
  wake_pending_ = true;
  wake_.notify_all();
}

void Engine::schedule_heartbeat() {
  auto alive = alive_;
  ib_->process().engine().schedule_after(
      platform_.mpi_heartbeat_period, [this, alive] {
        if (!*alive || hb_stop_) return;  // finalize ends the chain
        pending_recovery_.push_back([this] { heartbeat_tick(); });
        wake_pending_ = true;
        wake_.notify_all();
        schedule_heartbeat();
      });
}

void Engine::heartbeat_tick() {
  if (hb_stop_ || finalized_) return;
  const sim::Time now = ib_->process().now();
  for (auto& [p, ep] : endpoints_) {
    if (ep.conn_state == ConnState::Reconnecting ||
        ep.conn_state == ConnState::Failed) {
      continue;
    }
    // Adopt the peer's beacon — and, under rank kills, the failure-epoch
    // word riding in the beacon's second half (heartbeat-borne failure
    // dissemination for ranks with no packet traffic to piggyback on).
    const std::uint64_t v = wire::get<std::uint64_t>(ep.hb_cell, 0);
    if (v != ep.hb_seen) {
      ep.hb_seen = v;
      ep.last_heard = now;
    }
    if (kill_armed_) {
      const std::uint64_t fe =
          wire::get<std::uint64_t>(ep.hb_cell, sizeof(std::uint64_t));
      if (fe > known_fail_epoch_) adopt_failures();
      if (ep.conn_state == ConnState::Failed) continue;  // adoption failed ep
    }
    // Write mine: non-faultable and unsignaled, like a credit update.
    ++ep.hb_seq;
    wire::put(ep.hb_src, 0, ep.hb_seq);
    wire::put(ep.hb_src, sizeof(std::uint64_t), known_fail_epoch_);
    ib::SendWr wr;
    wr.opcode = ib::Opcode::RdmaWrite;
    wr.signaled = false;
    wr.sg_list = {{ep.hb_src.addr(),
                   static_cast<std::uint32_t>(2 * sizeof ep.hb_seq),
                   ep.hb_src_mr->lkey()}};
    wr.remote_addr = ep.remote_hb;
    wr.rkey = ep.remote_hb_rkey;
    ib_->post_send(ep.qp, std::move(wr));
    // Liveness: a peer can only be declared dead when traffic depends on it
    // — an idle endpoint has nothing to recover, and a spurious reconnect
    // at the tail of a run would wait on a peer that already finalized.
    // Under rank kills the dependency test also covers the receive side
    // (posted receives, wildcard receives, in-flight schedules): a dead
    // *sender* leaves nothing in unacked/pending_tx, yet blocked receivers
    // still need the timeout to fire. The grace term suppresses false
    // positives when injected compute stragglers legitimately stall whole
    // ranks near the timeout (see set_liveness_grace).
    bool pending = !ep.unacked.empty() || !ep.pending_tx.empty();
    if (kill_armed_ && !pending) pending = expecting_from(ep);
    if (pending &&
        now - ep.last_heard > platform_.mpi_liveness_timeout + liveness_grace_) {
      sim::trace_instant("rank" + std::to_string(rank_) + ".faults",
                         "liveness-timeout peer=" + std::to_string(p), now);
      maybe_start_reconnect(ep, "liveness timeout");
    }
  }
}

// ---------------------------------------------------------------------------
// Rank-failure semantics: adoption, dependent-op cancellation, revocation
// ---------------------------------------------------------------------------

void Engine::declare_failed(int peer, const char* why) {
  sim::Log::error(ib_->process().now(), "mpi",
                  "rank %d declares rank %d failed (%s)", rank_, peer, why);
  sim::trace_instant("rank" + std::to_string(rank_) + ".faults",
                     "declare-failed peer=" + std::to_string(peer) + " (" +
                         why + ")",
                     ib_->process().now());
  bootstrap_.announce_failure(peer);
  adopt_failures();
}

void Engine::adopt_failures() {
  const std::uint64_t board = bootstrap_.fail_epoch();
  while (known_fail_epoch_ < board) {
    const int r = bootstrap_.failed_at(known_fail_epoch_++);
    if (r == rank_) continue;  // our own death unwinds via check_alive
    if (!known_failed_.insert(r).second) continue;
    ++stats_.rank_failures_known;
    // Drop every passive-target RMA lock the victim held, so survivors
    // spinning in Window::lock toward one of its slots wake and re-arbitrate
    // (or observe the death and raise PROC_FAILED) instead of hanging.
    bootstrap_.rma_release_rank(r);
    const sim::Time now = ib_->process().now();
    const sim::Time died = bootstrap_.death_time(r);
    if (died >= 0 && now > died) {
      const std::uint64_t lat = static_cast<std::uint64_t>(now - died);
      if (lat > stats_.failure_detect_max_ns) {
        stats_.failure_detect_max_ns = lat;
      }
    }
    chk().rank_failed(rank_, r);
    sim::trace_instant("rank" + std::to_string(rank_) + ".faults",
                       "adopt-failure peer=" + std::to_string(r) + " epoch=" +
                           std::to_string(known_fail_epoch_),
                       now);
    fail_peer_ops(r);
  }
}

void Engine::fail_peer_ops(int r) {
  auto eit = endpoints_.find(r);
  if (eit != endpoints_.end()) {
    Endpoint& ep = eit->second;
    ep.conn_state = ConnState::Failed;
    // Unacked ring packets: defuse the retry timers and pull the records
    // out before delivering verdicts (a verdict callback may re-enter the
    // endpoint). The blame scope classifies callback-mediated fail() calls.
    std::vector<TxRecord> recs;
    recs.reserve(ep.unacked.size());
    for (auto& [idx, rec] : ep.unacked) {
      ++rec.epoch;
      forget_wr_ids(rec.wr_ids);
      recs.push_back(std::move(rec));
    }
    ep.unacked.clear();
    // Parked delivered records need no verdicts (their completions already
    // fired) and can never be replayed toward a dead peer.
    ep.delivered.clear();
    std::deque<Endpoint::PendingTx> queued;
    queued.swap(ep.pending_tx);
    ib::Wc err{};
    err.status = ib::WcStatus::RetryExceeded;
    BlameScope blame(*this, MpiErrc::ProcFailed, r);
    for (auto& rec : recs) {
      if (rec.on_delivered) {
        rec.on_delivered(err);
      } else if (rec.owner && !rec.owner->done()) {
        fail(rec.owner, "peer rank died", MpiErrc::ProcFailed, r);
      }
    }
    for (auto& ptx : queued) {
      if (ptx.owner && !ptx.owner->done()) {
        fail(ptx.owner, "peer rank died before emission", MpiErrc::ProcFailed,
             r);
      }
    }
    // Channel state: sends awaiting DONE/credit and posted receives can
    // never complete against a dead peer.
    for (auto& [key, ch] : ep.channels) {
      for (auto& [seq, st] : ch.sends) {
        if (st && !st->done()) {
          fail(st, "peer rank died", MpiErrc::ProcFailed, r);
        }
      }
      ch.sends.clear();
      for (auto& [seq, st] : ch.posted) {
        if (st && !st->done()) {
          fail(st, "peer rank died", MpiErrc::ProcFailed, r);
        }
      }
      ch.posted.clear();
    }
  }
  // Rendezvous RDMA operations targeting the dead peer.
  std::vector<std::uint64_t> doomed;
  for (auto& [id, d] : data_ops_) {
    if (d.peer == r) doomed.push_back(id);
  }
  for (std::uint64_t id : doomed) {
    auto it = data_ops_.find(id);
    if (it == data_ops_.end()) continue;
    ++it->second.epoch;  // defuse data_check timers
    auto cb = std::move(it->second.on_result);
    forget_wr_ids(it->second.wr_ids);
    data_ops_.erase(it);
    ib::Wc err{};
    err.status = ib::WcStatus::RetryExceeded;
    BlameScope blame(*this, MpiErrc::ProcFailed, r);
    cb(err);
  }
  // Deferred receives: explicit receives from the dead rank, and wildcard
  // receives on any communicator containing it. The wildcard case is
  // deliberately pessimistic (ULFM semantics): the dead rank may have been
  // the only possible sender, and completing with PROC_FAILED beats
  // hanging — the caller re-posts after shrinking if it wants to go on.
  for (auto& [comm_id, cr] : comm_recv_) {
    for (auto it = cr.deferred.begin(); it != cr.deferred.end();) {
      auto& st = *it;
      const bool depends =
          st && !st->done() &&
          (st->peer == r ||
           (st->peer == kAnySource && comm_contains(comm_id, r)));
      if (depends) {
        fail(st, "peer rank died (receive can never match)",
             MpiErrc::ProcFailed, r);
        it = cr.deferred.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Collective schedules whose group contains the dead rank: every stage
  // eventually depends on it (directly or through the dependency chain),
  // so the whole schedule fails now instead of hanging in a later stage.
  for (auto& sched : schedules_) {
    if (sched->req->done()) continue;
    if (!comm_contains(sched->comm_id, r)) continue;
    fail_schedule(*sched, "peer rank died during collective",
                  MpiErrc::ProcFailed, r);
  }
  wake_pending_ = true;
  wake_.notify_all();
}

bool Engine::comm_contains(std::uint32_t comm_id, int r) const {
  auto it = comm_groups_.find(comm_id);
  if (it == comm_groups_.end()) {
    // Unregistered communicators (engine-level tests drive comm 0 without a
    // Communicator object) are treated as the world group.
    return comm_id == 0 && r >= 0 && r < nranks_;
  }
  for (int m : it->second) {
    if (m == r) return true;
  }
  return false;
}

bool Engine::expecting_from(const Endpoint& ep) const {
  for (const auto& [key, ch] : ep.channels) {
    if (!ch.posted.empty()) return true;
  }
  for (const auto& [comm_id, cr] : comm_recv_) {
    for (const auto& st : cr.deferred) {
      if (!st || st->done()) continue;
      if (st->peer == ep.peer) return true;
      if (st->peer == kAnySource && comm_contains(comm_id, ep.peer)) {
        return true;
      }
    }
  }
  for (const auto& sched : schedules_) {
    if (!sched->req->done() && comm_contains(sched->comm_id, ep.peer)) {
      return true;
    }
  }
  return false;
}

void Engine::register_comm(std::uint32_t comm_id, std::vector<int> group) {
  comm_groups_[comm_id] = std::move(group);
}

void Engine::revoke_comm(std::uint32_t comm_id) {
  if (!revoked_.insert(comm_id).second) return;  // each rank floods once
  ++stats_.comms_revoked;
  chk().comm_revoked(rank_, comm_id);
  sim::Log::info(ib_->process().now(), "mpi", "rank %d: comm %u revoked",
                 rank_, comm_id);
  sim::trace_instant("rank" + std::to_string(rank_) + ".faults",
                     "comm-revoked comm=" + std::to_string(comm_id),
                     ib_->process().now());
  poison_comm(comm_id, "communicator revoked");
  flood_revoke(comm_id);
}

void Engine::poison_comm(std::uint32_t comm_id, const char* why) {
  for (auto& [p, ep] : endpoints_) {
    for (auto& [key, ch] : ep.channels) {
      if (key.first != comm_id) continue;
      for (auto& [seq, st] : ch.sends) {
        if (st && !st->done()) fail(st, why, MpiErrc::Revoked, p);
      }
      ch.sends.clear();
      for (auto& [seq, st] : ch.posted) {
        if (st && !st->done()) fail(st, why, MpiErrc::Revoked, p);
      }
      ch.posted.clear();
    }
  }
  for (auto& [key, sc] : self_channels_) {
    if (key.first != comm_id) continue;
    for (auto& [seq, st] : sc.posted) {
      if (st && !st->done()) fail(st, why, MpiErrc::Revoked);
    }
    sc.posted.clear();
  }
  if (auto it = comm_recv_.find(comm_id); it != comm_recv_.end()) {
    for (auto& st : it->second.deferred) {
      if (st && !st->done()) fail(st, why, MpiErrc::Revoked);
    }
    it->second.deferred.clear();
  }
  for (auto& sched : schedules_) {
    if (sched->comm_id == comm_id && !sched->req->done()) {
      fail_schedule(*sched, why, MpiErrc::Revoked);
    }
  }
  wake_pending_ = true;
  wake_.notify_all();
}

void Engine::flood_revoke(std::uint32_t comm_id) {
  auto git = comm_groups_.find(comm_id);
  for (auto& [p, ep] : endpoints_) {
    if (git != comm_groups_.end()) {
      bool member = false;
      for (int m : git->second) member |= (m == p);
      if (!member) continue;
    }
    if (ep.conn_state == ConnState::Failed) continue;
    if (kill_armed_ && (known_failed_.count(p) > 0 || bootstrap_.is_dead(p))) {
      continue;
    }
    PacketHeader hdr;
    hdr.type = PacketType::Revoke;
    hdr.src_rank = rank_;
    hdr.comm_id = comm_id;
    hdr.tag = 0;
    Endpoint* target = &ep;
    tx(ep, [this, target, hdr] { emit_packet(*target, hdr, nullptr, 0); });
  }
}

void Engine::waitall(std::span<Request> reqs) {
  check_alive();
  for (;;) {
    wake_pending_ = false;
    progress();
    bool all = true;
    for (const Request& r : reqs) {
      if (r.valid() && !r.done()) {
        all = false;
        break;
      }
    }
    if (all) break;
    if (!wake_pending_) ib_->process().wait_on(wake_);
  }
  // Every request reached a terminal phase (a failure on one cannot leave
  // another undriven); now report the first casualty, if any.
  for (const Request& r : reqs) {
    if (!r.valid() || !r.failed()) continue;
    const auto& st = *r.state_;
    throw MpiError(st.error, st.errc, st.err_peer, st.comm_id);
  }
}

void Engine::wait_until_ft(const std::function<bool()>& pred) {
  for (;;) {
    progress();  // throws RankKilled once our own fate fires
    if (pred()) return;
    // A bounded sleep instead of a wake condition: the out-of-band boards
    // this loop polls are advanced by ranks whose p2p connectivity to us
    // may be gone, so no packet-level wake can be relied on.
    ib_->process().wait(platform_.mpi_heartbeat_period);
  }
}

void Engine::dump_all(std::FILE* out) {
  std::lock_guard<std::mutex> lock(g_engines_mu);
  for (Engine* e : live_engines()) {
    std::fprintf(out, "rank %d%s: fail_epoch=%llu known_failed={", e->rank_,
                 e->dead_ ? " (dead)" : "",
                 static_cast<unsigned long long>(e->known_fail_epoch_));
    for (int r : e->known_failed_) std::fprintf(out, " %d", r);
    std::fprintf(out, " } outstanding=%zu data_ops=%zu pending_recovery=%zu\n",
                 e->outstanding_.size(), e->data_ops_.size(),
                 e->pending_recovery_.size());
    for (const auto& [p, ep] : e->endpoints_) {
      const char* st = "?";
      switch (ep.conn_state) {
        case ConnState::Healthy: st = "healthy"; break;
        case ConnState::Suspect: st = "suspect"; break;
        case ConnState::Reconnecting: st = "reconnecting"; break;
        case ConnState::Degraded: st = "degraded"; break;
        case ConnState::Failed: st = "failed"; break;
      }
      std::fprintf(out,
                   "  -> peer %d: %s epoch=%u unacked=%zu pending_tx=%zu "
                   "sent=%llu acked=%llu last_heard=%lld\n",
                   p, st, ep.epoch, ep.unacked.size(), ep.pending_tx.size(),
                   static_cast<unsigned long long>(ep.sent_packets),
                   static_cast<unsigned long long>(ep.consumed_by_peer),
                   static_cast<long long>(ep.last_heard));
    }
    for (const auto& s : e->schedules_) {
      std::fprintf(out, "  coll comm=%u stage=%zu/%zu outstanding=%zu %s\n",
                   s->comm_id, s->stage, s->stages.size(),
                   s->outstanding.size(), s->label.c_str());
    }
  }
  std::fflush(out);
}

void Engine::send_credit(Endpoint& ep) {
  // RDMA-write the consumption counter into the peer's credit cell. No ring
  // slot needed — this is what keeps the flow control deadlock-free.
  chk().credit_written(rank_, ep.peer, ep.my_consumed);
  wire::put(ep.credit_src, 0, ep.my_consumed);
  ib::SendWr wr;
  wr.opcode = ib::Opcode::RdmaWrite;
  wr.signaled = false;
  wr.sg_list = {{ep.credit_src.addr(),
                 static_cast<std::uint32_t>(sizeof ep.my_consumed),
                 ep.credit_src_mr->lkey()}};
  wr.remote_addr = ep.remote_credit;
  wr.rkey = ep.remote_credit_rkey;
  ib_->post_send(ep.qp, std::move(wr));
  ep.my_consumed_reported = ep.my_consumed;
  ++stats_.credits_sent;
}

// ---------------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------------

void Engine::poll_cq() {
  ib::Wc wc[16];
  for (;;) {
    const int n = ib_->poll_cq(cq_, 16, wc);
    if (n == 0) break;
    for (int i = 0; i < n; ++i) {
      auto it = outstanding_.find(wc[i].wr_id);
      if (it == outstanding_.end()) continue;
      auto cb = std::move(it->second);
      outstanding_.erase(it);
      cb(wc[i]);
    }
  }
}

void Engine::read_credit_cell(Endpoint& ep) {
  const std::uint64_t value = wire::get<std::uint64_t>(ep.credit_cell, 0);
  if (value > ep.consumed_by_peer) {
    chk().credit_read(rank_, ep.peer, value);
    ep.consumed_by_peer = value;
    if (fatal_armed_) ep.last_heard = ib_->process().now();
    // Consumption proven up to `value`: parked delivered-packet records
    // below it can never need a replay.
    ep.delivered.erase(ep.delivered.begin(),
                       ep.delivered.lower_bound(value));
  }
}

void Engine::scan_ring(Endpoint& ep) {
  const bool on_phi = ib_->data_domain() == mem::Domain::PhiGddr;
  for (;;) {
    const int slot = static_cast<int>(ep.my_consumed % slots());
    std::byte* base = ep.ring.data() + layout_.header_off(slot);
    const auto hdr =
        wire::get<PacketHeader>(ep.ring, layout_.header_off(slot));
    if (hdr.magic != kPacketMagic) break;
    const std::uint64_t plen =
        hdr.type == PacketType::Eager ? hdr.msg_bytes : 0;
    const auto tail =
        wire::get<PacketTail>(ep.ring, layout_.tail_off(slot, plen));
    if (tail != kPacketMagic) break;  // data still in flight
    if (fatal_armed_ && hdr.conn_epoch != ep.epoch) {
      // Cross-epoch traffic: a pre-recovery packet landing in the rebuilt
      // ring (or one that raced the teardown). Fence it out — its sequence
      // number is replayed under the current epoch if it still matters.
      std::memset(base, 0, sizeof hdr);
      std::memset(ep.ring.data() + layout_.tail_off(slot, plen), 0,
                  sizeof tail);
      ++stats_.epoch_fenced;
      sim::trace_instant("rank" + std::to_string(rank_) + ".faults",
                         "epoch-fenced idx=" + std::to_string(hdr.ring_idx),
                         ib_->process().now());
      break;
    }
    if (faults_armed_ && hdr.ring_idx != ep.my_consumed) {
      // A retransmit of an already-consumed packet (its CQE or credit got
      // lost on the sender side): scrub the slot so it reads empty again,
      // and do NOT advance — the slot's real next packet comes later.
      std::memset(base, 0, sizeof hdr);
      std::memset(ep.ring.data() + layout_.tail_off(slot, plen), 0,
                  sizeof tail);
      ++stats_.dup_packets_dropped;
      break;
    }

    // The poll that found the packet costs a core its cycles.
    ib_->process().wait(on_phi ? platform_.phi_poll_overhead
                               : platform_.host_poll_overhead);
    if (fatal_armed_) ep.last_heard = ib_->process().now();

    // Failure piggyback: the sender knows of deaths we have not adopted
    // yet — pull the board before dispatching, so a packet that depends on
    // a dead rank is handled with that knowledge in place.
    if (kill_armed_ && hdr.fail_epoch > known_fail_epoch_) adopt_failures();

    const std::byte* payload = ep.ring.data() + layout_.payload_off(slot);
    handle_packet(ep, hdr, payload);

    // Release the slot, then occasionally tell the sender.
    std::memset(base, 0, sizeof hdr);
    std::memset(ep.ring.data() + layout_.tail_off(slot, plen), 0, sizeof tail);
    ++ep.my_consumed;
    chk().packet_consumed(rank_, ep.peer, ep.my_consumed);
    ++stats_.packets_rx;
    // usable_slots_ == slots() unless a fault spec capped the credits; the
    // tighter cap also tightens the reporting period or the ring deadlocks.
    // Under fault injection every consumption is reported immediately: the
    // credit cell doubles as the retransmit ack, and a batched credit looks
    // like a lost packet to a sender whose completion was dropped.
    const std::uint64_t credit_period =
        faults_armed_ ? 1 : std::max<std::uint64_t>(1, usable_slots_ / 4);
    if (ep.my_consumed - ep.my_consumed_reported >= credit_period) {
      send_credit(ep);
    }
  }
}

void Engine::progress() {
  check_alive();
  if (in_progress_) return;
  in_progress_ = true;
  struct Guard {
    bool& flag;
    ~Guard() { flag = false; }
  } guard{in_progress_};

  poll_cq();
  while (!pending_recovery_.empty()) {
    auto fn = std::move(pending_recovery_.front());
    pending_recovery_.pop_front();
    fn();
  }
  if (fatal_armed_) service_reconnect_requests();
  if (lazy_) service_connect_requests();
  // Direct board pull: piggybacked epochs cover ranks with traffic, the
  // heartbeat covers idle pairs, and this covers a rank woken by the
  // bootstrap watch with neither (e.g. blocked in wait with nothing
  // in flight toward anyone).
  if (kill_armed_ && bootstrap_.fail_epoch() > known_fail_epoch_) {
    adopt_failures();
  }
  for (auto& [p, ep] : endpoints_) {
    read_credit_cell(ep);
    drain_tx(ep);
    scan_ring(ep);
  }
  // Schedules advance after the endpoint scan so transfers completed this
  // pass unlock their next stages immediately.
  advance_schedules();
  if (!condemned_.empty()) reap_condemned();
}

void Engine::reap_condemned() {
  std::erase_if(condemned_, [this](CondemnedScratch& c) {
    for (const auto& st : c.waits) {
      if (st && !st->done()) return false;
    }
    for (const mem::Buffer& b : c.bufs) {
      forget_buffer(b);
      ib_->free_buffer(b);
    }
    return true;
  });
}

// ---------------------------------------------------------------------------
// Collective-schedule executor
// ---------------------------------------------------------------------------

Request Engine::start_coll(std::shared_ptr<CollSchedule> sched) {
  auto st = std::make_shared<RequestState>();
  st->kind = RequestState::Kind::Coll;
  st->comm_id = sched->comm_id;
  st->bytes = sched->bytes;
  st->posted_at = ib_->process().now();
  sched->req = st;
  check_alive();
  // ULFM posting guards, mirroring isend/irecv: a collective on a revoked
  // communicator or over a group with a known-dead member can never finish,
  // so the request is born failed without occupying a tag-window slot. The
  // schedule's owned temporaries are freed here — no transfer ever started.
  int dead_member = -1;
  for (int m : known_failed_) {
    if (comm_contains(sched->comm_id, m)) {
      dead_member = m;
      break;
    }
  }
  if (comm_revoked(sched->comm_id) || dead_member >= 0) {
    for (const mem::Buffer& b : sched->owned) {
      forget_buffer(b);
      ib_->free_buffer(b);
    }
    sched->owned.clear();
    if (comm_revoked(sched->comm_id)) {
      fail(st, "collective on revoked communicator", MpiErrc::Revoked);
    } else {
      fail(st, "collective over failed rank", MpiErrc::ProcFailed,
           dead_member);
    }
    return Request(st);
  }
  // Window slot for the alias check: -1 (untracked) for schedules outside
  // the rotating collective tag window.
  const int slot = sched->tag_base >= kCollSchedTagBase
                       ? (sched->tag_base - kCollSchedTagBase) /
                             kCollSchedPhases
                       : -1;
  sched->check_id =
      chk().coll_started(rank_, sched->comm_id, slot, sched->stages.size());
  schedules_.push_back(std::move(sched));
  // Kick stage 0: the nested isend/irecv calls see in_progress_ and post
  // without re-entering the scan.
  progress();
  return Request(st);
}

Request Engine::completed_request() {
  auto st = std::make_shared<RequestState>();
  st->kind = RequestState::Kind::Coll;
  st->phase = RequestState::Phase::Complete;
  st->status = Status{kAnySource, kAnyTag, 0};
  st->posted_at = ib_->process().now();
  return Request(st);
}

void Engine::advance_schedules() {
  if (schedules_.empty()) return;
  bool finished = false;
  // Posting transfers inside advance_schedule never appends to schedules_
  // (start_coll runs in caller context, not in progress), so plain
  // iteration is safe.
  for (auto& sched : schedules_) {
    advance_schedule(*sched);
    finished |= sched->req->done();
  }
  if (finished) {
    std::erase_if(schedules_,
                  [](const std::shared_ptr<CollSchedule>& s) {
                    return s->req->done();
                  });
  }
}

void Engine::advance_schedule(CollSchedule& s) {
  if (s.req->done()) return;
  while (s.stage < s.stages.size()) {
    CollStage& stage = s.stages[s.stage];
    if (stage.pipe) {
      const PipeState ps = pipe_advance(s, *stage.pipe);
      if (ps != PipeState::Done) return;  // Busy, or Failed (already failed)
    } else {
      if (!s.stage_started) {
        chk().stage_started(s.check_id, s.stage);
        s.outstanding.clear();
        s.outstanding.reserve(stage.xfers.size());
        for (const CollXfer& x : stage.xfers) {
          s.outstanding.push_back(
              x.is_send
                  ? isend(x.buf, x.off, x.count, *x.type, x.peer, x.tag,
                          s.comm_id)
                  : irecv(x.buf, x.off, x.count, *x.type, x.peer, x.tag,
                          s.comm_id));
        }
        s.stage_started = true;
      }
      for (Request& r : s.outstanding) {
        if (r.state_->phase == RequestState::Phase::Error) {
          fail_schedule(s, r.state_->error, r.state_->errc, r.state_->err_peer);
          return;
        }
        if (!r.done()) return;
      }
      s.outstanding.clear();
    }
    for (const CollLocal& l : stage.locals) run_coll_local(l);
    s.stage_started = false;
    ++s.stage;
  }
  finish_schedule(s);
}

Engine::PipeState Engine::pipe_advance(CollSchedule& s, CollPipe& p) {
  const std::size_t es = p.type->size();
  const auto nseg = [&p](std::size_t len) {
    return len == 0 ? std::size_t{0} : (len + p.seg_elems - 1) / p.seg_elems;
  };
  const std::size_t nout = nseg(p.out_len);
  const std::size_t nin = nseg(p.in_len);
  const std::size_t seg_bytes = p.seg_elems * es;
  const auto seg_len = [&p](std::size_t j) {
    return std::min(p.seg_elems, p.in_len - j * p.seg_elems);
  };

  if (!p.started) {
    chk().stage_started(s.check_id, s.stage);
    // All outgoing segments go up first (they read ranges this step never
    // writes), keeping the wire busy while incoming segments fold.
    p.sends.reserve(nout);
    for (std::size_t j = 0; j < nout; ++j) {
      const std::size_t lo = j * p.seg_elems;
      const std::size_t n = std::min(p.seg_elems, p.out_len - lo);
      p.sends.push_back(isend(p.buf, p.base + (p.out_off + lo) * es, n,
                              *p.type, p.to, p.tag, s.comm_id));
    }
    if (!p.has_op) {
      // Pure data movement: all incoming segments straight into place.
      p.recvs.reserve(nin);
      for (std::size_t j = 0; j < nin; ++j) {
        const std::size_t lo = j * p.seg_elems;
        const std::size_t n = std::min(p.seg_elems, p.in_len - lo);
        p.recvs.push_back(irecv(p.buf, p.base + (p.in_off + lo) * es, n,
                                *p.type, p.from, p.tag, s.comm_id));
      }
      p.posted = nin;
    }
    p.started = true;
  }

  if (p.has_op) {
    // Double-buffered reduction pipeline: segment j+1 is in flight into the
    // other scratch half while segment j is folded, exactly two receives
    // ahead of the fold cursor.
    const auto post_ahead = [&] {
      while (p.posted < nin && p.posted < p.combined + 2) {
        p.recvs.push_back(irecv(p.scratch, (p.posted % 2) * seg_bytes,
                                seg_len(p.posted), *p.type, p.from, p.tag,
                                s.comm_id));
        ++p.posted;
      }
    };
    post_ahead();
    while (p.combined < nin) {
      Request& r = p.recvs[p.combined];
      if (r.state_->phase == RequestState::Phase::Error) {
        fail_schedule(s, r.state_->error, r.state_->errc, r.state_->err_peer);
        return PipeState::Failed;
      }
      if (!r.done()) break;
      combine(p.op, *p.type, p.buf,
              p.base + (p.in_off + p.combined * p.seg_elems) * es, p.scratch,
              (p.combined % 2) * seg_bytes, seg_len(p.combined));
      ++p.combined;
      post_ahead();
    }
    if (p.combined < nin) return PipeState::Busy;
  } else {
    while (p.combined < nin) {
      Request& r = p.recvs[p.combined];
      if (r.state_->phase == RequestState::Phase::Error) {
        fail_schedule(s, r.state_->error, r.state_->errc, r.state_->err_peer);
        return PipeState::Failed;
      }
      if (!r.done()) return PipeState::Busy;
      ++p.combined;
    }
  }

  for (Request& r : p.sends) {
    if (r.state_->phase == RequestState::Phase::Error) {
      fail_schedule(s, r.state_->error);
      return PipeState::Failed;
    }
    if (!r.done()) return PipeState::Busy;
  }
  stats_.coll_segments += nout + nin;
  return PipeState::Done;
}

void Engine::run_coll_local(const CollLocal& l) {
  if (l.kind == CollLocal::Kind::Copy) {
    wire::put_bytes(l.dst, l.dst_off, l.src.data() + l.src_off, l.count);
  } else {
    combine(l.op, *l.type, l.dst, l.dst_off, l.src, l.src_off, l.count);
  }
}

void Engine::finish_schedule(CollSchedule& s) {
  chk().coll_finished(s.check_id);
  for (const mem::Buffer& b : s.owned) {
    forget_buffer(b);
    ib_->free_buffer(b);
  }
  s.owned.clear();
  if (s.algo_counter) ++*s.algo_counter;
  ++stats_.coll_schedules;
  auto& st = *s.req;
  st.status = Status{kAnySource, kAnyTag, s.bytes};
  st.phase = RequestState::Phase::Complete;
  if (sim::Tracer::current() && !s.label.empty()) {
    sim::trace_span("rank" + std::to_string(rank_), s.label, st.posted_at,
                    ib_->process().now());
  }
  wake_.notify_all();
}

void Engine::fail_schedule(CollSchedule& s, std::string why, MpiErrc errc,
                           int peer) {
  if (s.req->done()) return;
  chk().coll_failed(s.check_id);
  if (errc == MpiErrc::Other) {
    errc = blame_errc_;
    if (peer < 0) peer = blame_peer_;
  }
  if (errc != MpiErrc::Other) {
    why += std::string(" [errc=") + errc_name(errc) +
           (peer >= 0 ? " peer=" + std::to_string(peer) : std::string()) + "]";
  }
  if (errc == MpiErrc::ProcFailed) ++stats_.proc_failed_ops;
  // Owned temporaries cannot be freed here — transfers of the cancelled
  // stage may still land in them. Park them with every still-pending
  // request state; reap_condemned() frees the lot once all are terminal
  // (revocation poisons the whole comm, so that point arrives promptly).
  if (!s.owned.empty()) {
    CondemnedScratch c;
    c.bufs = std::move(s.owned);
    s.owned.clear();
    const auto park = [&c](const Request& r) {
      if (r.state_ && !r.state_->done()) c.waits.push_back(r.state_);
    };
    for (const Request& r : s.outstanding) park(r);
    for (CollStage& stage : s.stages) {
      if (!stage.pipe) continue;
      for (const Request& r : stage.pipe->sends) park(r);
      for (const Request& r : stage.pipe->recvs) park(r);
    }
    condemned_.push_back(std::move(c));
  }
  sim::Log::error(ib_->process().now(), "mpi",
                  "rank %d collective schedule error: %s", rank_,
                  why.c_str());
  auto& st = *s.req;
  st.error = std::move(why);
  st.errc = errc;
  st.err_peer = peer;
  st.phase = RequestState::Phase::Error;
  wake_.notify_all();
}

// ---------------------------------------------------------------------------
// Completion / wait
// ---------------------------------------------------------------------------

void Engine::complete(const std::shared_ptr<RequestState>& req, int source,
                      int tag, std::size_t bytes) {
  // A request the failure layer already condemned (dead peer, revoked comm)
  // stays failed even if its last transfer races to a successful verdict.
  if (req->done()) return;
  if (req->race_id != 0) {
    chk().race_end(req->race_id);
    req->race_id = 0;
  }
  req->status = Status{source, tag, bytes};
  req->phase = RequestState::Phase::Complete;
  if (sim::Tracer::current()) {
    const char* what = req->kind == RequestState::Kind::Send
                           ? (req->used_offload_shadow ? "send(offload)"
                                                       : "send")
                           : "recv";
    sim::trace_span("rank" + std::to_string(rank_),
                    std::string(what) + " " + std::to_string(bytes) +
                        "B tag=" + std::to_string(req->tag),
                    req->posted_at, ib_->process().now());
  }
  if (auto it = packed_.find(req.get()); it != packed_.end()) {
    try {
      phi_->dereg_offload_mr(it->second);
    } catch (const core::CmdError&) {
      // Best-effort teardown: a failing CMD channel must not turn a
      // completed request into a rank-fatal error.
    }
    packed_.erase(it);
  }
  if (req->has_pack) {
    forget_buffer(req->pack_buf);
    ib_->free_buffer(req->pack_buf);
    req->has_pack = false;
  }
  wake_.notify_all();
}

void Engine::fail(const std::shared_ptr<RequestState>& req, std::string why,
                  MpiErrc errc, int peer) {
  if (req->done()) return;
  if (req->race_id != 0) {
    // A failed request releases its buffer too: the transport stops
    // touching it the moment the request is condemned.
    chk().race_end(req->race_id);
    req->race_id = 0;
  }
  // Callbacks that predate the FT layer call fail() with no taxonomy; an
  // active blame scope (set around callback invocation by whoever knows the
  // real cause) supplies it so the classification survives the indirection.
  if (errc == MpiErrc::Other) {
    errc = blame_errc_;
    if (peer < 0) peer = blame_peer_;
  }
  if (errc != MpiErrc::Other) {
    why += std::string(" [errc=") + errc_name(errc) +
           (peer >= 0 ? " peer=" + std::to_string(peer) : std::string()) + "]";
  }
  if (errc == MpiErrc::ProcFailed) ++stats_.proc_failed_ops;
  sim::Log::error(ib_->process().now(), "mpi",
                  "rank %d request error: %s", rank_, why.c_str());
  req->error = std::move(why);
  req->errc = errc;
  req->err_peer = peer;
  req->phase = RequestState::Phase::Error;
  wake_.notify_all();
}

Status Engine::wait(Request& req) {
  if (!req.valid()) throw MpiError("wait: null request");
  auto& st = *req.state_;
  while (!st.done()) {
    wake_pending_ = false;
    progress();
    if (st.done()) break;
    // Anything that landed while progress() was charging time re-runs the
    // scan instead of blocking (level-triggered wake).
    if (!wake_pending_) ib_->process().wait_on(wake_);
  }
  if (st.phase == RequestState::Phase::Error) {
    throw MpiError(st.error, st.errc, st.err_peer, st.comm_id);
  }
  return st.status;
}

bool Engine::test(Request& req) {
  if (!req.valid()) throw MpiError("test: null request");
  // Like iprobe: a test costs a poll even when idle, so test() spin loops
  // advance the virtual clock instead of livelocking the simulation.
  const bool on_phi = ib_->data_domain() == mem::Domain::PhiGddr;
  ib_->process().wait(on_phi ? platform_.phi_poll_overhead
                             : platform_.host_poll_overhead);
  progress();
  if (req.state_->phase == RequestState::Phase::Error) {
    const auto& st = *req.state_;
    throw MpiError(st.error, st.errc, st.err_peer, st.comm_id);
  }
  return req.state_->done();
}

std::size_t Engine::waitany(std::span<Request> reqs) {
  bool any_valid = false;
  for (const Request& r : reqs) any_valid |= r.valid();
  if (!any_valid) return SIZE_MAX;
  for (;;) {
    wake_pending_ = false;
    progress();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (!reqs[i].valid() || !reqs[i].done()) continue;
      if (reqs[i].state_->phase == RequestState::Phase::Error) {
        const auto& st = *reqs[i].state_;
        throw MpiError(st.error, st.errc, st.err_peer, st.comm_id);
      }
      return i;
    }
    if (!wake_pending_) ib_->process().wait_on(wake_);
  }
}

bool Engine::testall(std::span<Request> reqs) {
  const bool on_phi = ib_->data_domain() == mem::Domain::PhiGddr;
  ib_->process().wait(on_phi ? platform_.phi_poll_overhead
                             : platform_.host_poll_overhead);
  progress();
  bool all = true;
  for (const Request& r : reqs) {
    if (!r.valid()) continue;
    if (r.state_->phase == RequestState::Phase::Error) {
      const auto& st = *r.state_;
      throw MpiError(st.error, st.errc, st.err_peer, st.comm_id);
    }
    all &= r.done();
  }
  return all;
}

std::optional<std::size_t> Engine::testany(std::span<Request> reqs) {
  const bool on_phi = ib_->data_domain() == mem::Domain::PhiGddr;
  ib_->process().wait(on_phi ? platform_.phi_poll_overhead
                             : platform_.host_poll_overhead);
  progress();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (!reqs[i].valid() || !reqs[i].done()) continue;
    if (reqs[i].state_->phase == RequestState::Phase::Error) {
      const auto& st = *reqs[i].state_;
      throw MpiError(st.error, st.errc, st.err_peer, st.comm_id);
    }
    return i;
  }
  return std::nullopt;
}

}  // namespace dcfa::mpi
