#pragma once

#include <map>
#include <span>
#include <vector>

#include "mpi/communicator.hpp"

namespace dcfa::mpi {

/// One-sided communication window: the MPI-3 RMA surface over the DCFA
/// substrate (MPI_Win_create / allocate / Put / Get / Accumulate / Rput /
/// Rget plus both synchronisation families).
///
/// An RMA subsystem that the DCFA substrate makes almost free: the paper's
/// whole design is user-space RDMA from the co-processor, so a window is
/// just a registered memory region whose rkey every rank learns at creation
/// — puts and gets map 1:1 onto the RDMA writes/reads the P2P rendezvous
/// already uses, with no target-side involvement at all (true passive
/// progress, which two-sided DCFA-MPI cannot offer).
///
/// Synchronisation models (docs/rma.md has the full epoch state machine):
///  * Active target: fence epochs (the BSP style). Window creation opens
///    the first epoch; operations issued between two fence() calls are
///    complete — locally and at the target — after the closing fence.
///  * Passive target: lock/unlock epochs (MPI_Win_lock). lock(target)
///    opens an access epoch toward one rank without any involvement of
///    that rank (arbitration runs over the out-of-band bootstrap, the PMI
///    role); flush(target) completes all operations issued so far;
///    unlock(target) flushes and closes the epoch. lock_all/unlock_all is
///    the shared-mode epoch toward every rank at once.
///
/// Argument conventions match the p2p API: (buffer, offset, count,
/// datatype, target, target_disp). Displacements are in bytes. Only
/// contiguous datatypes may cross a window (derived strided types would
/// need a remote unpack, which a one-sided target cannot run).
///
/// The DcfaCheck shadow ledgers audit every epoch transition, lock grant,
/// flush and remote access (CheckKind::Rma*); the Window additionally
/// enforces user-level discipline directly by throwing MpiError.
class Window {
 public:
  /// Passive-target lock mode (MPI_LOCK_SHARED / MPI_LOCK_EXCLUSIVE).
  enum class Lock { Shared, Exclusive };

  /// Collective over `comm`: expose `size` bytes of `buf` starting at
  /// `offset` (MPI_Win_create). Every rank must participate (sizes may
  /// differ; zero-size participation is fine).
  Window(Communicator& comm, const mem::Buffer& buf, std::size_t offset,
         std::size_t size);

  /// Collective: allocate `size` bytes of engine-owned memory in this
  /// endpoint's natural domain and expose all of it (MPI_Win_allocate).
  /// The memory lives until free(); reach it through base().
  static Window allocate(Communicator& comm, std::size_t size,
                         std::size_t align = 64);

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;
  ~Window();

  /// Collective teardown (quiesces first; all passive epochs must already
  /// be closed). Must be called; the destructor only releases local
  /// resources best-effort — see its comment.
  void free();

  // --- Communication operations ---------------------------------------------
  /// RDMA-write `count` elements of `type` from src[soff..] into the target
  /// rank's window at byte displacement `disp`. Requires an open epoch
  /// toward `target` (fence mode, or a lock held on it).
  void put(const mem::Buffer& src, std::size_t soff, std::size_t count,
           const Datatype& type, int target, std::size_t disp);
  /// RDMA-read `count` elements of `type` from the target window at `disp`
  /// into dst[doff..].
  void get(const mem::Buffer& dst, std::size_t doff, std::size_t count,
           const Datatype& type, int target, std::size_t disp);
  /// Element-wise target[d] = target[d] OP src[s] (MPI_Accumulate) over the
  /// datatype engine's typed kinds; Op::Replace is an element-wise
  /// overwrite (an atomic put). Atomic with respect to other accumulates
  /// on the same target under an exclusive lock (or fence epochs); shared
  /// locks only order same-origin accumulates.
  void accumulate(const mem::Buffer& src, std::size_t soff, std::size_t count,
                  const Datatype& type, Op op, int target, std::size_t disp);
  /// Request-returning put/get (MPI_Rput / MPI_Rget): the returned request
  /// completes at *local* completion of the transfer and mixes freely with
  /// p2p and collective requests in wait/test sets. Remote completion
  /// still requires a flush/unlock/fence.
  Request rput(const mem::Buffer& src, std::size_t soff, std::size_t count,
               const Datatype& type, int target, std::size_t disp);
  Request rget(const mem::Buffer& dst, std::size_t doff, std::size_t count,
               const Datatype& type, int target, std::size_t disp);

  // --- Active-target synchronisation ------------------------------------------
  /// Close the current fence epoch and open the next: wait for local
  /// completion of every issued operation, then synchronise all ranks.
  /// After fence() returns, every rank sees every put of the epoch.
  void fence();

  // --- Passive-target synchronisation -----------------------------------------
  /// Open an access epoch toward `target` (MPI_Win_lock). Blocks until the
  /// lock is granted: Exclusive excludes every other holder, Shared
  /// coexists with other Shared holders. Throws MpiErrc::ProcFailed
  /// instead of hanging when the target (or a holder we wait on) is dead.
  void lock(int target, Lock mode = Lock::Shared);
  /// Shared-mode access epoch toward every rank at once (MPI_Win_lock_all).
  /// Locks are acquired in ascending rank order, so concurrent lock_all
  /// callers cannot deadlock.
  void lock_all();
  /// Complete all operations toward `target`, then close its epoch.
  void unlock(int target);
  void unlock_all();
  /// Complete (remotely) every operation issued toward `target` so far in
  /// this epoch; the epoch stays open.
  void flush(int target);
  /// Flush several targets (span-friendly form).
  void flush(std::span<const int> targets);
  /// Flush every target we hold an epoch toward.
  void flush_all();
  /// Complete every operation toward `target` *locally* (the origin buffer
  /// is reusable). In this model local completion of an RDMA write implies
  /// remote delivery, so this is equivalent to flush(); kept as a distinct
  /// entry point for MPI shape and for the ledger audit.
  void flush_local(int target);

  // --- Introspection -----------------------------------------------------------
  std::size_t size() const { return size_; }
  std::size_t target_size(int target) const { return remotes_[target].size; }
  Communicator& comm() { return comm_; }
  /// Cluster-unique window id (checker ledgers, lock board).
  std::uint64_t id() const { return id_; }
  /// The exposed memory (for allocate()-built windows this is the
  /// engine-owned buffer).
  const mem::Buffer& base() const { return buf_; }
  /// Operations issued and not yet locally complete (tests/benches).
  int outstanding() const { return outstanding_; }

 private:
  struct RemoteWindow {
    mem::SimAddr addr = 0;
    ib::MKey rkey = 0;
    std::size_t size = 0;
  };

  Window(Communicator& comm, const mem::Buffer& buf, std::size_t offset,
         std::size_t size, bool owned);

  /// Common entry guard: liveness, target range, epoch discipline, bounds,
  /// datatype shape. Returns the transfer size in bytes.
  std::size_t check_access(int target, std::size_t count,
                           const Datatype& type, std::size_t disp) const;
  void note_op(int target);       ///< one op issued toward comm rank target
  void complete_op(int target);   ///< its local completion
  /// Wait until every op toward comm rank `target` is locally complete.
  void quiesce(int target);
  Engine& eng() const { return comm_.engine(); }
  sim::Checker& chk() const { return comm_.engine().checker(); }

  Communicator& comm_;
  mem::Buffer buf_;
  std::size_t offset_;
  std::size_t size_;
  std::uint64_t id_ = 0;
  bool owned_ = false;  ///< allocate(): buf_ is ours, freed in free()
  ib::MemoryRegion* mr_ = nullptr;
  std::vector<RemoteWindow> remotes_;  ///< indexed by comm rank
  int outstanding_ = 0;                ///< ops not yet locally complete
  std::map<int, int> pending_;         ///< per-target (comm rank) in-flight
  std::map<int, Lock> locks_;          ///< passive epochs we hold (comm rank)
  bool lock_all_ = false;
  bool freed_ = false;
};

}  // namespace dcfa::mpi
