#pragma once

#include <vector>

#include "mpi/communicator.hpp"

namespace dcfa::mpi {

/// One-sided communication window (MPI_Win_create / Put / Get / Fence).
///
/// An RMA extension that the DCFA substrate makes almost free: the paper's
/// whole design is user-space RDMA from the co-processor, so a window is
/// just a registered memory region whose rkey every rank learns at creation
/// — puts and gets map 1:1 onto the RDMA writes/reads the P2P rendezvous
/// already uses, with no target-side involvement at all (true passive
/// progress, which two-sided DCFA-MPI cannot offer).
///
/// Synchronisation model: fence epochs (the BSP style). Operations issued
/// between two fence() calls are guaranteed complete — locally and at the
/// target — after the closing fence.
class Window {
 public:
  /// Collective over `comm`: expose `size` bytes of `buf` starting at
  /// `offset`. Every rank must participate (sizes may differ).
  Window(Communicator& comm, const mem::Buffer& buf, std::size_t offset,
         std::size_t size);

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;
  ~Window();

  /// Collective teardown (quiesces first). Must be called; the destructor
  /// only checks.
  void free();

  /// RDMA-write `bytes` from src[soff..] into the target rank's window at
  /// byte displacement `disp`. Completes at the closing fence.
  void put(const mem::Buffer& src, std::size_t soff, std::size_t bytes,
           int target, std::size_t disp);
  /// RDMA-read `bytes` from the target window into dst[doff..].
  void get(const mem::Buffer& dst, std::size_t doff, std::size_t bytes,
           int target, std::size_t disp);

  /// Close the current epoch: wait for local completion of every issued
  /// operation, then synchronise all ranks. After fence() returns, every
  /// rank sees every put of the epoch.
  void fence();

  std::size_t size() const { return size_; }
  std::size_t target_size(int target) const { return remotes_[target].size; }
  Communicator& comm() { return comm_; }

 private:
  struct RemoteWindow {
    mem::SimAddr addr = 0;
    ib::MKey rkey = 0;
    std::size_t size = 0;
  };

  void check_target(int target, std::size_t bytes, std::size_t disp) const;

  Communicator& comm_;
  mem::Buffer buf_;
  std::size_t offset_;
  std::size_t size_;
  ib::MemoryRegion* mr_ = nullptr;
  std::vector<RemoteWindow> remotes_;  ///< indexed by comm rank
  int outstanding_ = 0;
  bool freed_ = false;
};

}  // namespace dcfa::mpi
