#include "mpi/communicator.hpp"

#include <algorithm>

namespace dcfa::mpi {

Communicator::Communicator(Engine& engine, std::uint32_t id,
                           std::vector<int> group, int my_index)
    : engine_(engine), id_(id), group_(std::move(group)), my_index_(my_index) {
  if (my_index_ < 0 || my_index_ >= static_cast<int>(group_.size())) {
    throw MpiError("Communicator: rank outside group");
  }
  if (group_[my_index_] != engine_.rank()) {
    throw MpiError("Communicator: group entry does not name this rank");
  }
  // The engine needs the membership to scope failure semantics: which
  // collectives a dead rank poisons, which wildcards it can wake, who a
  // revocation notice floods to.
  engine_.register_comm(id_, group_);
}

int Communicator::to_world(int comm_rank) const {
  if (comm_rank == kAnySource) return kAnySource;
  if (comm_rank < 0 || comm_rank >= size()) {
    throw MpiError("rank " + std::to_string(comm_rank) +
                   " outside communicator of size " + std::to_string(size()));
  }
  return group_[comm_rank];
}

int Communicator::from_world(int world_rank) const {
  for (int i = 0; i < size(); ++i) {
    if (group_[i] == world_rank) return i;
  }
  return kAnySource;
}

Status Communicator::translate(Status s) const {
  s.source = from_world(s.source);
  return s;
}

Request Communicator::isend(const mem::Buffer& buf, std::size_t offset,
                            std::size_t count, const Datatype& type, int dst,
                            int tag) {
  return engine_.isend(buf, offset, count, type, to_world(dst), tag, id_);
}

Request Communicator::irecv(const mem::Buffer& buf, std::size_t offset,
                            std::size_t count, const Datatype& type, int src,
                            int tag) {
  return engine_.irecv(buf, offset, count, type, to_world(src), tag, id_);
}

void Communicator::send(const mem::Buffer& buf, std::size_t offset,
                        std::size_t count, const Datatype& type, int dst,
                        int tag) {
  Request r = isend(buf, offset, count, type, dst, tag);
  engine_.wait(r);
}

Request Communicator::issend(const mem::Buffer& buf, std::size_t offset,
                             std::size_t count, const Datatype& type, int dst,
                             int tag) {
  return engine_.isend(buf, offset, count, type, to_world(dst), tag, id_,
                       /*sync=*/true);
}

void Communicator::ssend(const mem::Buffer& buf, std::size_t offset,
                         std::size_t count, const Datatype& type, int dst,
                         int tag) {
  Request r = issend(buf, offset, count, type, dst, tag);
  engine_.wait(r);
}

std::optional<Status> Communicator::iprobe(int src, int tag) {
  auto st = engine_.iprobe(to_world(src), tag, id_);
  if (st) *st = translate(*st);
  return st;
}

Status Communicator::probe(int src, int tag) {
  return translate(engine_.probe(to_world(src), tag, id_));
}

Status Communicator::recv(const mem::Buffer& buf, std::size_t offset,
                          std::size_t count, const Datatype& type, int src,
                          int tag) {
  Request r = irecv(buf, offset, count, type, src, tag);
  return translate(engine_.wait(r));
}

Status Communicator::wait(Request& req) { return translate(engine_.wait(req)); }

bool Communicator::test(Request& req) { return engine_.test(req); }

void Communicator::waitall(std::span<Request> reqs) {
  // Delegated (not a per-request wait loop) so one failed request cannot
  // block the set: the engine drives every request to a terminal phase
  // first, then reports the first casualty — the rest have completed and
  // remain inspectable through Request::failed()/errc().
  engine_.waitall(reqs);
}

std::size_t Communicator::waitany(std::span<Request> reqs) {
  return engine_.waitany(reqs);
}

bool Communicator::testall(std::span<Request> reqs) {
  return engine_.testall(reqs);
}

std::optional<std::size_t> Communicator::testany(std::span<Request> reqs) {
  return engine_.testany(reqs);
}

Status Communicator::sendrecv(const mem::Buffer& sbuf, std::size_t soff,
                              std::size_t scount, const Datatype& stype,
                              int dst, int stag, const mem::Buffer& rbuf,
                              std::size_t roff, std::size_t rcount,
                              const Datatype& rtype, int src, int rtag) {
  Request rr = irecv(rbuf, roff, rcount, rtype, src, rtag);
  Request sr = isend(sbuf, soff, scount, stype, dst, stag);
  engine_.wait(sr);
  return translate(engine_.wait(rr));
}

Request& Communicator::Persistent::start() {
  if (!comm_) throw MpiError("Persistent::start: uninitialised request");
  if (active_.valid() && !active_.done()) {
    throw MpiError("Persistent::start: previous operation still active");
  }
  if (is_send_) {
    active_ = comm_->engine_.isend(buf_, offset_, count_, *type_,
                                   comm_->to_world(peer_), tag_, comm_->id_,
                                   sync_);
  } else {
    active_ = comm_->engine_.irecv(buf_, offset_, count_, *type_,
                                   comm_->to_world(peer_), tag_, comm_->id_);
  }
  return active_;
}

Communicator::Persistent Communicator::send_init(const mem::Buffer& buf,
                                                 std::size_t offset,
                                                 std::size_t count,
                                                 const Datatype& type,
                                                 int dst, int tag) {
  Persistent p;
  p.comm_ = this;
  p.is_send_ = true;
  p.buf_ = buf;
  p.offset_ = offset;
  p.count_ = count;
  p.type_ = &type;
  p.peer_ = dst;
  p.tag_ = tag;
  return p;
}

Communicator::Persistent Communicator::ssend_init(const mem::Buffer& buf,
                                                  std::size_t offset,
                                                  std::size_t count,
                                                  const Datatype& type,
                                                  int dst, int tag) {
  Persistent p = send_init(buf, offset, count, type, dst, tag);
  p.sync_ = true;
  return p;
}

Communicator::Persistent Communicator::recv_init(const mem::Buffer& buf,
                                                 std::size_t offset,
                                                 std::size_t count,
                                                 const Datatype& type,
                                                 int src, int tag) {
  Persistent p;
  p.comm_ = this;
  p.is_send_ = false;
  p.buf_ = buf;
  p.offset_ = offset;
  p.count_ = count;
  p.type_ = &type;
  p.peer_ = src;
  p.tag_ = tag;
  return p;
}

double Communicator::wtime() const {
  return sim::to_s(engine_.ib().process().now());
}

void Communicator::revoke() { engine_.revoke_comm(id_); }

std::uint64_t Communicator::agree(std::uint64_t value) {
  const std::uint64_t seq = ++agree_seq_;
  Bootstrap& bs = engine_.bootstrap();
  bs.post_vote(id_, seq, engine_.rank(), value);
  // DcfaRace HB edge source: the vote publishes this rank's history to
  // every rank that observes the round's decision.
  engine_.checker().agree_voted(engine_.rank(), id_, seq);
  const std::uint64_t* dec = nullptr;
  engine_.wait_until_ft([&]() -> bool {
    dec = bs.get_decision(id_, seq);
    if (dec) return true;
    // Coordinator duty falls on the lowest member this rank believes alive.
    // Beliefs may lag (two ranks can act as coordinator simultaneously
    // during a succession) — harmless, because decisions are first-wins.
    int coord = -1;
    for (int w : group_) {
      if (!engine_.rank_failed(w) && !bs.is_dead(w)) {
        coord = w;
        break;
      }
    }
    if (coord != engine_.rank()) return false;
    std::uint64_t acc = 0;
    for (int w : group_) {
      if (const std::uint64_t* v = bs.get_vote(id_, seq, w)) {
        acc |= *v;  // counted even if the voter died after voting
        continue;
      }
      if (engine_.rank_failed(w) || bs.is_dead(w)) continue;  // died unvoted
      return false;  // a live member has not voted yet
    }
    bs.post_decision(id_, seq, acc);
    dec = bs.get_decision(id_, seq);
    return dec != nullptr;
  });
  // DcfaRace HB edge sink: observing the decision orders this rank after
  // every vote of the round (agreement acts as a barrier among voters).
  engine_.checker().agree_decided(engine_.rank(), id_, seq);
  return *dec;
}

Communicator Communicator::shrink() {
  // Agree on who is gone: each survivor contributes the members it knows
  // dead as a bit mask (indexed by communicator rank), and the OR makes the
  // view consistent — a failure only one rank had detected still excludes
  // that member everywhere. The agreement value is 64 bits, so groups
  // beyond 64 members vote one 64-rank chunk per round; every survivor
  // makes the same sequence of agree() calls (it is collective), so the
  // merged mask is identical everywhere even if further members die
  // between chunk rounds (a late death just surfaces in a later shrink).
  Bootstrap& bs = engine_.bootstrap();
  const int words = (size() + 63) / 64;
  std::vector<std::uint64_t> mask(static_cast<std::size_t>(words), 0);
  for (int i = 0; i < size(); ++i) {
    const int w = group_[i];
    if (w == engine_.rank()) continue;
    if (engine_.rank_failed(w) || bs.is_dead(w)) {
      mask[static_cast<std::size_t>(i / 64)] |= std::uint64_t{1} << (i % 64);
    }
  }
  for (std::uint64_t& word : mask) word = agree(word);
  std::vector<int> group;
  int my_index = -1;
  for (int i = 0; i < size(); ++i) {
    if ((mask[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 1) continue;
    if (group_[i] == engine_.rank()) my_index = static_cast<int>(group.size());
    group.push_back(group_[i]);
  }
  if (my_index < 0) {
    throw MpiError("shrink: calling rank agreed to be failed",
                   MpiErrc::ProcFailed, engine_.rank(), id_);
  }
  // All survivors made the same derive_id calls (agree is collective), so
  // the child id matches without further communication.
  const std::uint32_t child = derive_id(/*color=*/0);
  return Communicator(engine_, child, std::move(group), my_index);
}

Communicator Communicator::dup() {
  // Collective; every member derives the same id with the same counter.
  const std::uint32_t child = derive_id(/*color=*/0);
  barrier();
  return Communicator(engine_, child, group_, my_index_);
}

std::uint32_t Communicator::derive_id(int color) {
  ++derive_counter_;
  std::uint64_t h = id_;
  h = h * 1000003ull + derive_counter_;
  h = h * 1000003ull + static_cast<std::uint32_t>(color + 1);
  h ^= h >> 31;
  std::uint32_t out = static_cast<std::uint32_t>(h * 0x9e3779b97f4a7c15ull >> 32);
  return out == 0 ? 1 : out;  // 0 is reserved for the world communicator
}

Communicator Communicator::split(int color, int key) {
  // Allgather (color, key) over the parent, then carve out my group.
  struct Entry {
    int color;
    int key;
    int world;
  };
  mem::Buffer mine = alloc(sizeof(Entry));
  mem::Buffer all = alloc(sizeof(Entry) * size());
  Entry e{color, key, engine_.rank()};
  std::memcpy(mine.data(), &e, sizeof e);
  allgather(mine, 0, sizeof(Entry), type_byte(), all, 0);

  std::vector<Entry> entries(size());
  std::memcpy(entries.data(), all.data(), sizeof(Entry) * size());
  free(mine);
  free(all);

  std::vector<Entry> members;
  for (const Entry& en : entries) {
    if (en.color == color) members.push_back(en);
  }
  std::stable_sort(members.begin(), members.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.key != b.key) return a.key < b.key;
                     return a.world < b.world;
                   });
  std::vector<int> group;
  int my_index = -1;
  for (const Entry& en : members) {
    if (en.world == engine_.rank()) my_index = static_cast<int>(group.size());
    group.push_back(en.world);
  }
  const std::uint32_t child = derive_id(color);
  return Communicator(engine_, child, std::move(group), my_index);
}

}  // namespace dcfa::mpi
