#pragma once

#include <cstdint>
#include <type_traits>

#include "ib/types.hpp"
#include "mem/memory.hpp"

namespace dcfa::mpi {

/// Wire packet types of the DCFA-MPI P2P protocol (Section IV-B3).
enum class PacketType : std::uint32_t {
  Eager = 1,  ///< header + payload + tail, one-copy small-message path
  Rts = 2,    ///< sender-first rendezvous: here is my (shadow) buffer
  Rtr = 3,    ///< receiver-first rendezvous: here is my receive buffer
  Done = 4,   ///< rendezvous data movement finished
  Err = 5,    ///< peer aborted the message (truncation); extension to the
              ///< paper's set so the opposite side errors instead of hanging
  Revoke = 6, ///< communicator revocation notice (ULFM MPIX_Comm_revoke):
              ///< comm_id names the revoked communicator; receivers poison
              ///< pending ops on it and re-flood once
};

constexpr std::uint32_t kPacketMagic = 0xDCFA2013;

/// Fixed-size packet header, RDMA-written into the receiver's ring slot.
/// The payload (eager only) follows, then a 4-byte tail copy of the magic;
/// the receiver detects arrival by polling header+tail (IBA guarantees the
/// destination bytes land in SGE order, which the paper's design uses).
struct PacketHeader {
  std::uint32_t magic = kPacketMagic;
  PacketType type = PacketType::Eager;
  std::int32_t src_rank = -1;    ///< global rank of the sender
  std::int32_t tag = 0;
  std::uint32_t comm_id = 0;
  std::uint64_t seq = 0;         ///< per (pair, comm, tag) channel sequence id
  std::uint64_t msg_bytes = 0;   ///< full message size (all types)
  /// Absolute ring position (sender's packet counter). Under fault
  /// injection a timed-out packet is retransmitted into the *same* slot;
  /// the receiver accepts a slot only when ring_idx matches its own
  /// consumption counter, which makes stale duplicates self-identifying.
  std::uint64_t ring_idx = 0;
  /// Connection generation of the sending endpoint. Bumped on every
  /// reconnect; the receiver fences out packets stamped with a different
  /// epoch than its current one, so traffic from before a recovery can
  /// never be mistaken for replayed post-recovery traffic.
  std::uint32_t conn_epoch = 0;
  /// Done/Err disambiguation: send-side and receive-side sequence counters
  /// are independent, so a completion packet must say which map it targets.
  enum Dir : std::uint32_t { kToSender = 0, kToReceiver = 1 };
  std::uint32_t dir = kToSender;
  /// Failure-propagation piggyback: the sender's known-failure epoch (a
  /// monotonic count of rank deaths it has adopted from the global failure
  /// board). A receiver seeing a higher epoch than its own pulls the board
  /// — failure knowledge disseminates on existing traffic with zero extra
  /// packets (Tentpole part 1).
  std::uint64_t fail_epoch = 0;
  /// RTS: the sender's exposed buffer (user MR or offload shadow).
  /// RTR: the receiver's user buffer. Unused for Eager/Done.
  mem::SimAddr buf_addr = 0;
  ib::MKey rkey = 0;
  std::uint64_t buf_bytes = 0;   ///< exposed window size (RTR: capacity)
};

// Wire hygiene (scripts/dcfa_lint.py wire-struct rule): the header crosses
// the simulated wire as raw bytes, so it must stay trivially copyable and
// built only from fixed-width fields — host and co-processor ABIs must agree
// on its layout.
static_assert(std::is_trivially_copyable_v<PacketHeader>);

using PacketTail = std::uint32_t;

/// Ring-slot geometry: [PacketHeader][payload (<= max_payload)][tail].
struct SlotLayout {
  std::uint64_t max_payload;

  std::uint64_t stride() const {
    return sizeof(PacketHeader) + max_payload + sizeof(PacketTail);
  }
  std::uint64_t header_off(int slot) const { return slot * stride(); }
  std::uint64_t payload_off(int slot) const {
    return header_off(slot) + sizeof(PacketHeader);
  }
  /// Tail lands immediately after the payload (position depends on length).
  std::uint64_t tail_off(int slot, std::uint64_t payload_len) const {
    return payload_off(slot) + payload_len;
  }
};

}  // namespace dcfa::mpi
