#include "mpi/offload_cache.hpp"

namespace dcfa::mpi {

namespace {

/// Deregistration is best-effort teardown: if the CMD channel is failing
/// (fault injection, dying delegate), dropping the host-side bookkeeping
/// must not take the whole rank down with it.
void dereg_quietly(core::PhiVerbs& verbs, const core::OffloadRegion& region) {
  try {
    verbs.dereg_offload_mr(region);
  } catch (const core::CmdError&) {
  }
}

}  // namespace

const core::OffloadRegion& OffloadShadowCache::get(const mem::Buffer& buf) {
  auto it = map_.find(buf.addr());
  if (it != map_.end() && it->second.region.size >= buf.size()) {
    ++hits_;
    lru_.erase(it->second.lru_it);
    lru_.push_front(buf.addr());
    it->second.lru_it = lru_.begin();
    return it->second.region;
  }
  if (it != map_.end()) invalidate(buf);
  ++misses_;
  while (static_cast<int>(map_.size()) >= max_entries_ && !map_.empty()) {
    const mem::SimAddr victim = lru_.back();
    auto vit = map_.find(victim);
    dereg_quietly(verbs_, vit->second.region);
    lru_.pop_back();
    map_.erase(vit);
  }
  core::OffloadRegion region = verbs_.reg_offload_mr(&pd_, buf.size());
  lru_.push_front(buf.addr());
  auto [nit, ok] = map_.emplace(buf.addr(), Entry{region, lru_.begin()});
  (void)ok;
  return nit->second.region;
}

void OffloadShadowCache::invalidate(const mem::Buffer& buf) {
  auto it = map_.find(buf.addr());
  if (it == map_.end()) return;
  dereg_quietly(verbs_, it->second.region);
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

void OffloadShadowCache::clear() {
  for (auto& [addr, entry] : map_) {
    dereg_quietly(verbs_, entry.region);
  }
  map_.clear();
  lru_.clear();
}

}  // namespace dcfa::mpi
