#include "mpi/offload_cache.hpp"

namespace dcfa::mpi {

const core::OffloadRegion& OffloadShadowCache::get(const mem::Buffer& buf) {
  auto it = map_.find(buf.addr());
  if (it != map_.end() && it->second.region.size >= buf.size()) {
    ++hits_;
    lru_.erase(it->second.lru_it);
    lru_.push_front(buf.addr());
    it->second.lru_it = lru_.begin();
    return it->second.region;
  }
  if (it != map_.end()) invalidate(buf);
  ++misses_;
  while (static_cast<int>(map_.size()) >= max_entries_ && !map_.empty()) {
    const mem::SimAddr victim = lru_.back();
    auto vit = map_.find(victim);
    verbs_.dereg_offload_mr(vit->second.region);
    lru_.pop_back();
    map_.erase(vit);
  }
  core::OffloadRegion region = verbs_.reg_offload_mr(&pd_, buf.size());
  lru_.push_front(buf.addr());
  auto [nit, ok] = map_.emplace(buf.addr(), Entry{region, lru_.begin()});
  (void)ok;
  return nit->second.region;
}

void OffloadShadowCache::invalidate(const mem::Buffer& buf) {
  auto it = map_.find(buf.addr());
  if (it == map_.end()) return;
  verbs_.dereg_offload_mr(it->second.region);
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

void OffloadShadowCache::clear() {
  for (auto& [addr, entry] : map_) {
    verbs_.dereg_offload_mr(entry.region);
  }
  map_.clear();
  lru_.clear();
}

}  // namespace dcfa::mpi
