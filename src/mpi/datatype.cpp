#include "mpi/datatype.hpp"

#include <cstring>
#include <stdexcept>

namespace dcfa::mpi {

Datatype::Datatype(std::size_t size, std::size_t extent,
                   std::vector<Block> blocks)
    : size_(size), extent_(extent) {
  // Coalesce adjacent runs so layouts that happen to be dense (e.g. a
  // vector whose stride equals its block length) are recognised as
  // contiguous and take the zero-copy paths.
  for (const Block& b : blocks) {
    if (!blocks_.empty() &&
        blocks_.back().offset + blocks_.back().length == b.offset) {
      blocks_.back().length += b.length;
    } else {
      blocks_.push_back(b);
    }
  }
  contiguous_ = blocks_.size() == 1 && blocks_[0].offset == 0 &&
                blocks_[0].length == extent_ && size_ == extent_;
}

Datatype Datatype::basic(std::size_t size, Kind kind) {
  if (size == 0) throw std::invalid_argument("Datatype::basic: zero size");
  Datatype t(size, size, {{0, size}});
  t.kind_ = kind;
  return t;
}

Datatype Datatype::contiguous(std::size_t count, const Datatype& base) {
  if (count == 0) {
    throw std::invalid_argument("Datatype::contiguous: zero count");
  }
  if (base.is_contiguous()) {
    return Datatype(count * base.size(), count * base.extent(),
                    {{0, count * base.extent()}});
  }
  // Replicate the base blocks count times, extent apart.
  std::vector<Block> blocks;
  blocks.reserve(count * base.blocks_.size());
  for (std::size_t i = 0; i < count; ++i) {
    for (const Block& b : base.blocks_) {
      blocks.push_back({i * base.extent() + b.offset, b.length});
    }
  }
  return Datatype(count * base.size(), count * base.extent(),
                  std::move(blocks));
}

Datatype Datatype::vector(std::size_t count, std::size_t blocklen,
                          std::size_t stride, const Datatype& base) {
  if (count == 0 || blocklen == 0) {
    throw std::invalid_argument("Datatype::vector: zero count/blocklen");
  }
  if (stride < blocklen) {
    throw std::invalid_argument("Datatype::vector: stride < blocklen");
  }
  if (!base.is_contiguous()) {
    throw std::invalid_argument(
        "Datatype::vector: non-contiguous base not supported");
  }
  std::vector<Block> blocks;
  blocks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    blocks.push_back({i * stride * base.extent(), blocklen * base.extent()});
  }
  // Extent spans to the end of the last block (MPI's default extent).
  const std::size_t extent =
      (count - 1) * stride * base.extent() + blocklen * base.extent();
  return Datatype(count * blocklen * base.size(), extent, std::move(blocks));
}

void Datatype::pack(const std::byte* src, std::byte* dst,
                    std::size_t count) const {
  if (contiguous_) {
    std::memcpy(dst, src, count * size_);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::byte* base = src + i * extent_;
    for (const Block& b : blocks_) {
      std::memcpy(dst, base + b.offset, b.length);
      dst += b.length;
    }
  }
}

void Datatype::unpack(const std::byte* src, std::byte* dst,
                      std::size_t count) const {
  if (contiguous_) {
    std::memcpy(dst, src, count * size_);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::byte* base = dst + i * extent_;
    for (const Block& b : blocks_) {
      std::memcpy(base + b.offset, src, b.length);
      src += b.length;
    }
  }
}

const Datatype& type_byte() {
  static const Datatype t = Datatype::basic(1);
  return t;
}
const Datatype& type_int() {
  static const Datatype t =
      Datatype::basic(sizeof(int), Datatype::Kind::Int);
  return t;
}
const Datatype& type_double() {
  static const Datatype t =
      Datatype::basic(sizeof(double), Datatype::Kind::Double);
  return t;
}
const Datatype& type_float() {
  static const Datatype t =
      Datatype::basic(sizeof(float), Datatype::Kind::Float);
  return t;
}
const Datatype& type_int64() {
  static const Datatype t =
      Datatype::basic(sizeof(std::int64_t), Datatype::Kind::Int64);
  return t;
}

}  // namespace dcfa::mpi
