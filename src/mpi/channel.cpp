#include "mpi/channel.hpp"

#include <cstring>

namespace dcfa::mpi {

Channel::Channel(Communicator& comm, int peer, const mem::Buffer& send_buf,
                 std::size_t soff, const mem::Buffer& recv_buf,
                 std::size_t roff, std::size_t bytes)
    : comm_(comm),
      peer_(peer),
      bytes_(bytes),
      send_buf_(send_buf),
      soff_(soff),
      recv_buf_(recv_buf),
      roff_(roff) {
  if (peer < 0 || peer >= comm.size()) {
    throw MpiError("Channel: bad peer rank");
  }
  if (soff + bytes > send_buf.size() || roff + bytes > recv_buf.size()) {
    throw MpiError("Channel: region escapes buffer");
  }
  peer_world_ = comm_.world_rank(peer_);
  id_ = comm_.next_channel_id();
  db_id_ = comm_.next_channel_id();

  // --- The one-time negotiation (everything the hot path never does) -------
  Engine& e = eng();
  ++e.coll_stats().channel_negotiations;
  ctrl_ = comm_.alloc(16);
  std::memset(ctrl_.data(), 0, 16);
  send_mr_ = e.expose_window_mr(send_buf_);
  recv_mr_ = e.expose_window_mr(recv_buf_);
  ctrl_mr_ = e.expose_window_mr(ctrl_);
  // Large co-processor payloads leave through the offload host shadow, same
  // as rendezvous. Warm that shadow now — its one-time registration belongs
  // with the rest of the negotiation, not in the first post().
  if (peer_ != comm_.rank()) {
    e.rma_stage(send_buf_, soff_, bytes_, send_mr_->lkey());
  }

  // Tell the checker which remote keys we are handing out, so the bounds
  // ledger can audit every incoming write against them.
  sim::Checker& chk = e.checker();
  chk.rma_exposed(e.rank(), id_, recv_buf_.addr() + roff_, bytes_);
  chk.rma_exposed(e.rank(), db_id_, ctrl_.addr(), 8);

  // Exchange (recv region, doorbell cell) with the peer. Self-channels
  // skip the wire — we already know our own addresses.
  struct Adv {
    mem::SimAddr recv_addr;
    ib::MKey recv_rkey;
    mem::SimAddr db_addr;
    ib::MKey db_rkey;
  };
  Adv mine{recv_buf_.addr() + roff_, recv_mr_->rkey(), ctrl_.addr(),
           ctrl_mr_->rkey()};
  if (peer_ == comm_.rank()) {
    peer_recv_addr_ = mine.recv_addr;
    peer_recv_rkey_ = mine.recv_rkey;
    peer_db_addr_ = mine.db_addr;
    peer_db_rkey_ = mine.db_rkey;
    return;
  }
  mem::Buffer sadv = comm_.alloc(sizeof(Adv));
  mem::Buffer radv = comm_.alloc(sizeof(Adv));
  std::memcpy(sadv.data(), &mine, sizeof mine);
  comm_.sendrecv(sadv, 0, sizeof(Adv), type_byte(), peer_, kSetupTag, radv,
                 0, sizeof(Adv), type_byte(), peer_, kSetupTag);
  Adv theirs;
  std::memcpy(&theirs, radv.data(), sizeof theirs);
  comm_.free(sadv);
  comm_.free(radv);
  peer_recv_addr_ = theirs.recv_addr;
  peer_recv_rkey_ = theirs.recv_rkey;
  peer_db_addr_ = theirs.db_addr;
  peer_db_rkey_ = theirs.db_rkey;
}

Channel::~Channel() {
  if (closed_) return;
  // Forgotten close() on an unwinding fiber: release local resources
  // best-effort, never throw out of a destructor.
  try {
    close();
  } catch (...) {}
}

void Channel::post() {
  if (closed_) throw MpiError("Channel: post after close");
  Engine& e = eng();
  ++e.coll_stats().channel_posts;
  ++posts_;
  ++local_pending_;
  // Payload first, doorbell from its completion callback: both writes ride
  // the same queue pair in order, so the doorbell value can never outrun
  // the payloads it advertises (the doorbell snapshots posts_ at ring
  // time, which only ever covers payloads already posted before it).
  // Stage large co-processor payloads through the offload host shadow
  // (pre-registered at negotiation time, so this is a PCIe sync, never an
  // MR exchange). Self-channels copy directly — no wire, no staging.
  const auto [src_addr, src_lkey] =
      peer_ == comm_.rank()
          ? std::pair{send_buf_.addr() + soff_, send_mr_->lkey()}
          : e.rma_stage(send_buf_, soff_, bytes_, send_mr_->lkey());
  e.rma_write_prereg(
      peer_world_, src_addr, src_lkey, bytes_,
      peer_recv_addr_, peer_recv_rkey_, [this] {
        Engine& en = eng();
        const std::uint64_t advertised = posts_;
        std::memcpy(ctrl_.data() + 8, &advertised, sizeof advertised);
        // DcfaRace HB edge source: the doorbell about to ring advertises
        // `advertised` arrivals; whoever observes that count (or more)
        // is ordered after everything this rank did up to here —
        // including the payload write, whose tracked access closed in
        // the completion that invoked this callback.
        en.checker().channel_posted(en.rank(), peer_db_addr_, advertised);
        en.rma_write_prereg(peer_world_, ctrl_.addr() + 8, ctrl_mr_->lkey(),
                            8, peer_db_addr_, peer_db_rkey_,
                            [this] { --local_pending_; });
      });
}

std::uint64_t Channel::arrivals() const {
  std::uint64_t v = 0;
  std::memcpy(&v, ctrl_.data(), sizeof v);
  return v;
}

void Channel::wait_arrival() {
  if (closed_) throw MpiError("Channel: wait_arrival after close");
  Engine& e = eng();
  const std::uint64_t want = ++expected_;
  e.wait_until([this, &e, want] {
    return arrivals() >= want || e.rank_failed(peer_world_);
  });
  if (arrivals() < want) {
    ++e.coll_stats().proc_failed_ops;
    throw MpiError("Channel: peer rank died before arrival " +
                       std::to_string(want),
                   MpiErrc::ProcFailed, peer_world_, comm_.id());
  }
  // DcfaRace HB edge sink: we observed the doorbell value, so we are
  // ordered after every post whose ring advertised at most that count.
  // The poster keyed its releases by our cell's address (its
  // peer_db_addr_), which is exactly ctrl_.addr() here.
  e.checker().channel_waited(e.rank(), ctrl_.addr(), arrivals());
}

void Channel::wait_local() {
  if (closed_) throw MpiError("Channel: wait_local after close");
  eng().wait_until([this] { return local_pending_ == 0; });
}

void Channel::close() {
  if (closed_) return;
  closed_ = true;
  Engine& e = eng();
  // Quiesce our own posts (skip if the peer died — the WRs were failed).
  if (!e.rank_failed(peer_world_)) {
    e.wait_until([this] { return local_pending_ == 0; });
  }
  sim::Checker& chk = e.checker();
  chk.rma_unexposed(e.rank(), id_);
  chk.rma_unexposed(e.rank(), db_id_);
  if (send_mr_) e.release_window_mr(send_mr_);
  if (recv_mr_) e.release_window_mr(recv_mr_);
  if (ctrl_mr_) e.release_window_mr(ctrl_mr_);
  send_mr_ = recv_mr_ = ctrl_mr_ = nullptr;
  if (ctrl_.valid()) comm_.free(ctrl_);
}

}  // namespace dcfa::mpi
