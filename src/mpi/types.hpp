#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dcfa::mpi {

/// Wildcards (MPI_ANY_SOURCE / MPI_ANY_TAG).
constexpr int kAnySource = -1;
constexpr int kAnyTag = -2;

/// Tags >= kInternalTagBase are reserved for collectives and internal
/// protocol traffic; user code must stay below.
constexpr int kInternalTagBase = 1 << 20;

/// Completion information (MPI_Status).
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// Reduction operators for reduce/allreduce/scan.
enum class Op { Sum, Max, Min, Prod };

/// MPI-level error (truncation, protocol misuse, invalid arguments). The
/// paper's sender-rendezvous/receiver-eager mis-prediction "will issue an
/// MPI error" — that surfaces as this exception.
class MpiError : public std::runtime_error {
 public:
  explicit MpiError(const std::string& what) : std::runtime_error(what) {}
};

class TruncationError : public MpiError {
 public:
  explicit TruncationError(const std::string& what) : MpiError(what) {}
};

}  // namespace dcfa::mpi
