#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dcfa::mpi {

/// Wildcards (MPI_ANY_SOURCE / MPI_ANY_TAG).
constexpr int kAnySource = -1;
constexpr int kAnyTag = -2;

/// Tags >= kInternalTagBase are reserved for collectives and internal
/// protocol traffic; user code must stay below.
constexpr int kInternalTagBase = 1 << 20;

/// Completion information (MPI_Status).
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// Reduction operators for reduce/allreduce/scan. Replace (MPI_REPLACE) is
/// RMA-only: Window::accumulate treats it as an element-wise overwrite (an
/// atomic put under the window's lock discipline); the collective reduction
/// paths reject it.
enum class Op { Sum, Max, Min, Prod, Replace };

/// Error taxonomy attached to failed requests and thrown MpiErrors. The
/// interesting distinctions for fault-tolerant callers are ProcFailed (a
/// peer is permanently dead — ULFM MPI_ERR_PROC_FAILED) and Revoked (the
/// communicator was revoked — MPI_ERR_REVOKED); everything else is
/// conventional misuse/limit errors that predate the FT layer.
enum class MpiErrc {
  Other = 0,          ///< unclassified (argument/protocol misuse)
  Truncation,         ///< receive buffer smaller than the matched message
  RetryExhausted,     ///< transport gave up after mpi_max_retries
  ProcFailed,         ///< a peer the operation depends on is dead
  Revoked,            ///< the communicator was revoked
};

inline const char* errc_name(MpiErrc e) {
  switch (e) {
    case MpiErrc::Other: return "OTHER";
    case MpiErrc::Truncation: return "TRUNCATE";
    case MpiErrc::RetryExhausted: return "RETRY_EXHAUSTED";
    case MpiErrc::ProcFailed: return "PROC_FAILED";
    case MpiErrc::Revoked: return "REVOKED";
  }
  return "?";
}

/// MPI-level error (truncation, protocol misuse, invalid arguments). The
/// paper's sender-rendezvous/receiver-eager mis-prediction "will issue an
/// MPI error" — that surfaces as this exception. Carries the taxonomy code
/// plus, when known, *who* failed (peer world rank) and on which
/// communicator, so fault-tolerant callers can act without parsing text.
class MpiError : public std::runtime_error {
 public:
  explicit MpiError(const std::string& what) : std::runtime_error(what) {}
  MpiError(const std::string& what, MpiErrc errc, int peer = -1,
           std::uint32_t comm_id = 0)
      : std::runtime_error(what), errc_(errc), peer_(peer),
        comm_id_(comm_id) {}

  MpiErrc errc() const { return errc_; }
  /// World rank of the failed peer, or -1 when not attributable to one.
  int peer() const { return peer_; }
  /// Communicator id the failed operation ran on (0 = world / unknown).
  std::uint32_t comm_id() const { return comm_id_; }

 private:
  MpiErrc errc_ = MpiErrc::Other;
  int peer_ = -1;
  std::uint32_t comm_id_ = 0;
};

/// Thrown (as a non-MpiError type, so it can't be swallowed by catch
/// (MpiError&) in user code) when a rank_kill fault fate fires for the
/// calling rank: the victim's process body unwinds out of whatever MPI call
/// it is in, Runtime::run catches it and parks the rank without finalizing.
/// Deliberately not derived from std::exception — a killed process has no
/// error to report, it is simply gone.
struct RankKilled {};

class TruncationError : public MpiError {
 public:
  explicit TruncationError(const std::string& what)
      : MpiError(what, MpiErrc::Truncation) {}
};

}  // namespace dcfa::mpi
