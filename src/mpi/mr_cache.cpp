#include "mpi/mr_cache.hpp"

#include "sim/check.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace dcfa::mpi {

MrCache::~MrCache() {
  // No dereg here: on the Phi that would take CMD round trips, which need a
  // live process context. Engine::finalize() calls clear() at the right
  // time; a destructor after the simulation ended just drops the entries.
}

ib::MemoryRegion* MrCache::get(const mem::Buffer& buf) {
  auto it = map_.find(buf.addr());
  if (it != map_.end() && it->second.bytes >= buf.size()) {
    ++hits_;
    // A cache hit hands out an MR that skipped registration, so it bypasses
    // the Hca-level liveness check until post time. Validate here so a stale
    // entry (buffer freed without invalidate()) is caught at the handout.
    ib_.process().engine().checker().mr_used(&pd_, it->second.lkey,
                                             buf.addr(), buf.size());
    lru_.erase(it->second.lru_it);
    lru_.push_front(buf.addr());
    it->second.lru_it = lru_.begin();
    return it->second.mr;
  }
  if (it != map_.end()) {
    // Same base address re-allocated with a larger size: stale entry.
    invalidate(buf);
  }
  ++misses_;
  while (static_cast<int>(map_.size()) >= max_entries_ ||
         (pinned_bytes_ + buf.size() > max_bytes_ && !map_.empty())) {
    evict_one();
  }
  ib::MemoryRegion* mr =
      ib_.reg_mr(&pd_, buf,
                 ib::kLocalWrite | ib::kRemoteRead | ib::kRemoteWrite);
  lru_.push_front(buf.addr());
  map_[buf.addr()] = Entry{mr, mr->lkey(), buf.size(), lru_.begin()};
  pinned_bytes_ += buf.size();
  return mr;
}

void MrCache::invalidate(const mem::Buffer& buf) {
  auto it = map_.find(buf.addr());
  if (it == map_.end()) return;
  ib_.dereg_mr(it->second.mr);
  pinned_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

void MrCache::clear() {
  for (auto& [addr, entry] : map_) {
    ib_.dereg_mr(entry.mr);
  }
  map_.clear();
  lru_.clear();
  pinned_bytes_ = 0;
}

void MrCache::evict_one() {
  const mem::SimAddr victim = lru_.back();
  auto it = map_.find(victim);
  ib_.dereg_mr(it->second.mr);
  pinned_bytes_ -= it->second.bytes;
  lru_.pop_back();
  map_.erase(it);
  ++evictions_;
}

}  // namespace dcfa::mpi
