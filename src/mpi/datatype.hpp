#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dcfa::mpi {

/// MPI datatype describing the memory layout of one element. Supports the
/// basic fixed-size types plus the two derived constructors the paper's
/// future-work section talks about offloading (contiguous and vector).
///
/// `size()`    — bytes of actual data per element (what travels);
/// `extent()`  — bytes of memory span per element (stride in arrays);
/// contiguous types can be sent zero-copy, strided ones are packed first.
class Datatype {
 public:
  /// Arithmetic kind — what reductions dispatch on. Derived and raw-byte
  /// types are Opaque (reduce on them throws).
  enum class Kind { Opaque, Int, Int64, Float, Double };

  /// Basic type of `size` bytes (predefined instances below).
  static Datatype basic(std::size_t size, Kind kind = Kind::Opaque);
  /// `count` consecutive copies of `base` (MPI_Type_contiguous).
  static Datatype contiguous(std::size_t count, const Datatype& base);
  /// `count` blocks of `blocklen` `base` elements, block i starting at
  /// element offset i*stride (MPI_Type_vector; stride in elements).
  static Datatype vector(std::size_t count, std::size_t blocklen,
                         std::size_t stride, const Datatype& base);

  std::size_t size() const { return size_; }
  std::size_t extent() const { return extent_; }
  bool is_contiguous() const { return contiguous_; }
  Kind kind() const { return kind_; }

  /// Pack `count` elements from `src` (layout: extent() apart) into the
  /// contiguous buffer `dst` (size() apart). `dst` must hold
  /// count*size() bytes.
  void pack(const std::byte* src, std::byte* dst, std::size_t count) const;
  /// Inverse of pack().
  void unpack(const std::byte* src, std::byte* dst, std::size_t count) const;

  struct Block {
    std::size_t offset;  ///< byte offset within one element's extent
    std::size_t length;  ///< contiguous bytes
  };
  /// The contiguous runs within one element extent (for delegated packing).
  const std::vector<Block>& blocks() const { return blocks_; }

 private:
  Datatype(std::size_t size, std::size_t extent, std::vector<Block> blocks);

  std::size_t size_;
  std::size_t extent_;
  bool contiguous_;
  Kind kind_ = Kind::Opaque;
  std::vector<Block> blocks_;  ///< contiguous runs within one extent
};

/// Predefined basic datatypes.
const Datatype& type_byte();
const Datatype& type_int();
const Datatype& type_double();
const Datatype& type_float();
const Datatype& type_int64();

}  // namespace dcfa::mpi
