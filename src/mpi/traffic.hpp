#pragma once

// Heavy-traffic scenario generator (bench/traffic_gen.cpp, docs/benchmarks.md).
//
// The paper validates the direct-DCFA path with single-pattern
// microbenchmarks; nothing there exercises the stack the way production
// would — many concurrent communicators, mixed message-size distributions,
// bursty all-to-all phases, stragglers, faults. This module composes those
// ingredients into *seeded, deterministic* scenarios: the whole workload is
// compiled up front into a Schedule that every rank derives identically from
// the seed (so receivers know exactly what to post), then executed over the
// normal Communicator API while per-phase metrics are recorded — sustained
// message rate, aggregate bandwidth, p50/p99 completion latency, and the
// engine's Stats deltas. Same seed => byte-identical schedule and identical
// virtual-time metrics, which is what lets the trajectory harness
// (scripts/bench_trajectory.py) gate regressions on exact numbers.

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/runtime.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"

namespace dcfa::mpi::traffic {

/// Message-size distribution, sampled deterministically from the schedule
/// RNG. All results are clamped to [lo, hi] and floored at 1 byte.
struct SizeDist {
  enum class Kind : std::uint8_t { Fixed, Uniform, LogNormal, Bimodal };
  Kind kind = Kind::Fixed;
  std::size_t lo = 1;    ///< Fixed value / range floor / Bimodal small mode
  std::size_t hi = 1;    ///< range ceiling / Bimodal large mode
  double sigma = 1.0;    ///< LogNormal shape (log-space std deviation)
  double median = 2048;  ///< LogNormal median (= exp(mu))
  double p_small = 0.9;  ///< Bimodal: probability of the small mode

  std::size_t sample(sim::Rng& rng) const;

  static SizeDist fixed(std::size_t n);
  static SizeDist uniform(std::size_t lo, std::size_t hi);
  /// Log-normal with the given median, clamped to [lo, hi]: the canonical
  /// "many small, few huge" production mix.
  static SizeDist lognormal(double median, double sigma, std::size_t lo,
                            std::size_t hi);
  /// Two-point mix: `small` with probability p_small, else `large`
  /// (latency-bound control traffic punctuated by bulk payloads).
  static SizeDist bimodal(std::size_t small, std::size_t large,
                          double p_small);
};

enum class PhaseKind : std::uint8_t { P2P, AllToAll, Allreduce, Barrier };

/// Which communicator a phase runs on. Halves (rank % 2) and Stripes
/// (rank / 2) are split from world at scenario start and overlap each
/// other, so phases on different selectors drive concurrent matching
/// contexts over the same endpoints.
enum class CommSel : std::uint8_t { World, Halves, Stripes };

struct PhaseSpec {
  std::string name;
  PhaseKind kind = PhaseKind::P2P;
  CommSel comm = CommSel::World;
  SizeDist sizes;
  int rounds = 1;
  /// P2P: messages each rank sends per round (to seeded peers).
  int msgs_per_rank = 1;
  /// Collectives: back-to-back operations per round. Allreduce bursts are
  /// posted as concurrent iallreduce schedules (nonblocking engine).
  int burst = 1;
  /// Idle/compute time inserted after each round (burstiness shaping).
  sim::Time gap = 0;
  /// Scheduled stragglers: this fraction of ranks (seeded per round) delays
  /// by straggler_delay before entering the round.
  double straggler_frac = 0.0;
  sim::Time straggler_delay = 0;
};

struct Scenario {
  std::string name;
  int nprocs = 8;
  std::uint64_t seed = 1;
  /// Optional sim::FaultInjector spec armed for the whole run.
  std::string fault_spec;
  std::uint64_t fault_seed = 42;
  /// Fault-tolerant execution: ranks may die permanently (rank_kill fates in
  /// fault_spec); survivors catch MPI_ERR_PROC_FAILED, revoke, shrink, and
  /// finish the remaining rounds on the shrunk communicator. Restricted to
  /// Allreduce phases (the ULFM recovery loop needs a collective whose
  /// result is checkable against whatever membership survived).
  bool ft_shrink = false;
  std::vector<PhaseSpec> phases;
};

// --- Compiled schedule -------------------------------------------------------

struct P2POp {
  std::int32_t src = 0;
  std::int32_t dst = 0;
  std::uint32_t bytes = 0;
};

struct Round {
  std::uint32_t coll_bytes = 0;        ///< collective payload this round
  std::vector<P2POp> p2p;              ///< P2P ops, global posting order
  std::vector<std::int32_t> stragglers;
};

struct PhaseSchedule {
  std::vector<Round> rounds;
};

struct Schedule {
  std::vector<PhaseSchedule> phases;
};

/// Compile the scenario into the full cross-rank schedule. Pure function of
/// the spec (notably the seed): every rank runs it locally and gets the
/// same bytes, which is how receivers know what to post.
Schedule build_schedule(const Scenario& sc);

/// Canonical byte serialization of a schedule (the determinism contract:
/// same seed => identical bytes).
std::vector<std::uint8_t> serialize(const Schedule& s);

/// FNV-1a over serialize() — cheap fingerprint for logs and baselines.
std::uint64_t schedule_digest(const Schedule& s);

// --- Execution + metrics -----------------------------------------------------

struct PhaseMetrics {
  std::string phase;
  // Summed over ranks. For P2P phases sent/recv conservation is exact
  // (tests assert it); each collective counts one op per participating rank
  // on both sides with its payload bytes.
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  double seconds = 0;  ///< max-over-ranks phase virtual time
  double p50_us = 0;   ///< op completion latency percentiles, all ranks
  double p99_us = 0;
  double msg_rate = 0;  ///< completed ops per second, aggregate
  double gbps = 0;      ///< received payload bandwidth, aggregate
  /// Engine Stats, summed per-rank deltas over the phase.
  Engine::Stats stats{};
};

struct ScenarioResult {
  std::string scenario;
  std::uint64_t digest = 0;  ///< schedule_digest of the executed schedule
  sim::Time elapsed = 0;     ///< whole-run virtual time
  std::vector<PhaseMetrics> phases;
  /// What the injector actually fired (zero when fault_spec is empty).
  sim::FaultInjector::Counters injected{};
  /// DcfaCheck evaluations over the run (asserting the checker ran).
  std::uint64_t check_events = 0;
  /// Sum over ranks of (live node-memory allocations at body end) minus
  /// (at body start): lazily-grown cache state shows up here once; real
  /// leaks grow with the workload (the soak test's invariant). Killed ranks
  /// are excluded — a dead rank's outstanding buffers are not a leak.
  std::int64_t leaked_allocations = 0;
  /// Ranks that ran the body to completion (= nprocs minus killed ranks).
  int survivors = 0;
  /// Failure-detection latency: max over survivors of the engine's
  /// death-to-adoption gap (0 when nothing died). The headline robustness
  /// metric for the ft_shrink scenarios.
  std::uint64_t failure_detect_max_ns = 0;
};

/// Engine::Stats is a plain bag of uint64 counters; these fold them
/// field-wise for per-phase deltas and cross-rank sums.
Engine::Stats stats_add(const Engine::Stats& a, const Engine::Stats& b);
Engine::Stats stats_sub(const Engine::Stats& a, const Engine::Stats& b);

/// The named scenarios: steady_p2p, bursty_a2a, mixed_comms,
/// straggler_allreduce, faulty_soak, survivor_soak.
std::vector<std::string> scenario_names();

/// Build one named scenario. `quick` shrinks rounds/sizes for CI smoke.
/// Throws std::invalid_argument on an unknown name.
Scenario make_scenario(const std::string& name, int nprocs,
                       std::uint64_t seed, bool quick);

/// Compile and execute the scenario on a fresh simulated cluster.
ScenarioResult run_scenario(const Scenario& sc,
                            MpiMode mode = MpiMode::DcfaPhi);

/// Compile and execute on a caller-supplied cluster configuration (mode,
/// platform knobs, engine options); the scenario still supplies nprocs and
/// the fault fields. This is how the scale tier runs thousand-rank
/// clusters on a tuned RunConfig.
ScenarioResult run_scenario(const Scenario& sc, const RunConfig& base);

/// RunConfig tuned for thousand-rank runs (tests/test_scale.cpp,
/// bench/scale_ranks.cpp): HostMpi transport (no per-rank co-processor
/// machinery), one node per rank (exclusive allocation arenas), small eager
/// rings, and lazy first-touch endpoints so a rank's memory scales with the
/// peers it actually talks to — O(log N) under the tree/ring collectives —
/// instead of the full N-1 mesh.
RunConfig scale_run_config(int nprocs);

}  // namespace dcfa::mpi::traffic
