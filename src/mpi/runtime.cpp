#include "mpi/runtime.hpp"

#include "baselines/proxy_verbs.hpp"
#include "sim/trace.hpp"

namespace dcfa::mpi {

const char* mode_name(MpiMode mode) {
  switch (mode) {
    case MpiMode::DcfaPhi: return "DCFA-MPI";
    case MpiMode::DcfaPhiNoOffload: return "DCFA-MPI (no offload buffer)";
    case MpiMode::IntelPhi: return "Intel MPI on Xeon Phi";
    case MpiMode::HostMpi: return "host MPI";
  }
  return "?";
}

Runtime::Node::Node(sim::Engine& engine, int id,
                    const sim::Platform& platform)
    : memory(id, platform.host_dram_bytes, platform.phi_gddr_bytes),
      pcie(engine, memory, platform) {
  (void)engine;
}

Runtime::RankSlot::RankSlot(sim::Engine& engine, Node& node,
                            const sim::Platform& platform)
    : node(node), channel(engine, node.pcie, platform) {}

Runtime::Runtime(RunConfig config)
    : config_(std::move(config)),
      platform_(config_.mode == MpiMode::IntelPhi
                    ? baseline::proxy_mode_platform(config_.platform)
                    : config_.platform) {
  if (config_.nprocs <= 0) throw MpiError("Runtime: nprocs <= 0");
  if (config_.mode == MpiMode::IntelPhi ||
      config_.mode == MpiMode::DcfaPhiNoOffload) {
    config_.engine_options.offload_send_buffer = false;
  }
  sim_ = std::make_unique<sim::Engine>();
  // Force the lazy DcfaCheck creation here so a malformed DCFA_CHECK value
  // throws std::invalid_argument at construction (like a malformed
  // fault_spec) instead of surfacing mid-run from whichever rank or host
  // delegate happens to touch the checker first.
  sim_->checker();
  fabric_ = std::make_unique<ib::Fabric>(*sim_, platform_);
  if (!config_.fault_spec.empty()) {
    // One injector for the whole cluster: every HCA, delegation process and
    // MPI engine draws from the same deterministic fault stream.
    faults_ = std::make_unique<sim::FaultInjector>(
        sim::FaultInjector::Spec::parse(config_.fault_spec),
        config_.fault_seed);
    fabric_->set_faults(faults_.get());
  }
  bootstrap_ = std::make_unique<Bootstrap>(*sim_);
  const bool on_phi = config_.mode != MpiMode::HostMpi;
  // One node per rank up to the cluster size; beyond that, ranks share
  // nodes round-robin (co-located ranks talk over the loopback path, as in
  // the intra-MIC related work of Section III-C).
  const int node_count = std::min(config_.nprocs, platform_.nodes);
  for (int n = 0; n < node_count; ++n) {
    auto node = std::make_unique<Node>(*sim_, n, platform_);
    fabric_->add_hca(node->memory, node->pcie);
    nodes_.push_back(std::move(node));
  }
  for (int r = 0; r < config_.nprocs; ++r) {
    Node& node = *nodes_[r % nodes_.size()];
    auto slot = std::make_unique<RankSlot>(*sim_, node, platform_);
    if (on_phi) {
      // The delegation process (mcexec + DCFA CMD server) comes up with
      // each executable loaded onto the card: one per rank.
      slot->delegate.emplace(slot->channel,
                             fabric_->hca_for_node(node.memory.node()),
                             node.memory);
      if (faults_) slot->delegate->set_faults(faults_.get());
    }
    slots_.push_back(std::move(slot));
  }
  stats_.resize(config_.nprocs);
}

Runtime::~Runtime() {
  // Rank threads stranded by a peer's exception are still parked inside
  // their bodies; they unwind (running mpi::Engine's destructor, which
  // detaches its CQ wake callback) only when joined. That must happen
  // before the fabric and nodes those destructors touch are freed —
  // members destroy in reverse declaration order, which would tear down
  // fabric_ first.
  if (sim_) sim_->join_all();
}

std::unique_ptr<verbs::Ib> Runtime::make_endpoint(sim::Process& proc,
                                                  RankSlot& slot) {
  std::unique_ptr<verbs::Ib> ep;
  switch (config_.mode) {
    case MpiMode::DcfaPhi:
    case MpiMode::DcfaPhiNoOffload:
      ep = std::make_unique<core::PhiVerbs>(proc, *fabric_, slot.node.memory,
                                            slot.channel);
      break;
    case MpiMode::IntelPhi:
      ep = std::make_unique<baseline::ProxyPhiVerbs>(
          proc, *fabric_, slot.node.memory, slot.channel);
      break;
    case MpiMode::HostMpi:
      ep = std::make_unique<verbs::HostVerbs>(proc, *fabric_,
                                              slot.node.memory);
      break;
  }
  if (!ep) throw MpiError("Runtime: unknown mode");
  if (faults_) ep->set_faults(faults_.get());
  return ep;
}

void Runtime::run(const std::function<void(RankCtx&)>& body) {
  if (ran_) throw MpiError("Runtime::run called twice");
  ran_ = true;

  std::unique_ptr<sim::Tracer> tracer;
  if (!config_.trace_path.empty()) {
    tracer = std::make_unique<sim::Tracer>();
    sim::Tracer::install(tracer.get());
  }

  for (int r = 0; r < config_.nprocs; ++r) {
    RankSlot& slot = *slots_[r];
    sim_->spawn("rank" + std::to_string(r), [this, r, &slot,
                                             &body](sim::Process& proc) {
      Engine engine(r, config_.nprocs, make_endpoint(proc, slot), *bootstrap_,
                    config_.engine_options);
      engine.setup();

      std::vector<int> world(config_.nprocs);
      for (int i = 0; i < config_.nprocs; ++i) world[i] = i;
      Communicator comm(engine, /*id=*/0, std::move(world), r);

      std::optional<offload::Engine> off;
      if (config_.mode == MpiMode::HostMpi) {
        off.emplace(proc, slot.node.memory, slot.node.pcie, platform_);
      }

      RankCtx ctx{comm,      proc,
                  slot.node.memory, slot.node.pcie,
                  off ? &*off : nullptr, platform_,
                  r,         config_.nprocs};
      try {
        body(ctx);
      } catch (const RankKilled&) {
        // A rank_kill fate fired for this rank: park it without finalizing.
        // Its MRs stay registered so in-flight RDMA from survivors still
        // lands in valid (ignored) memory, mirroring how a crashed host's
        // HCA keeps DMA-ing until the fabric notices.
        stats_[r] = engine.stats();
        return;
      }

      engine.finalize();
      stats_[r] = engine.stats();
    });
  }
  try {
    sim_->run();
  } catch (...) {
    // The global tracer pointer must not outlive `tracer`.
    if (tracer) sim::Tracer::install(nullptr);
    throw;
  }

  if (tracer) {
    sim::Tracer::install(nullptr);
    tracer->write(config_.trace_path);
  }
}

sim::Time Runtime::elapsed() const { return sim_->now(); }

sim::Time run_mpi(RunConfig config, const std::function<void(RankCtx&)>& body) {
  Runtime rt(std::move(config));
  rt.run(body);
  return rt.elapsed();
}

}  // namespace dcfa::mpi
