#include <cstring>

#include "mpi/communicator.hpp"

namespace dcfa::mpi {

namespace {

/// Internal tags, disjoint per collective so overlapping phases of different
/// collectives on the same communicator cannot cross-match. (Collectives are
/// themselves ordered per communicator, as MPI requires.)
enum : int {
  kTagBarrier = kInternalTagBase + 1,
  kTagBcast = kInternalTagBase + 2,
  kTagReduce = kInternalTagBase + 3,
  kTagGather = kInternalTagBase + 4,
  kTagScatter = kInternalTagBase + 5,
  kTagAllgather = kInternalTagBase + 6,
  kTagAlltoall = kInternalTagBase + 7,
  kTagScan = kInternalTagBase + 8,
  kTagGatherv = kInternalTagBase + 9,
  kTagScatterv = kInternalTagBase + 10,
};

}  // namespace

void Communicator::barrier() {
  if (size() == 1) return;
  // Dissemination barrier: works for any communicator size in ceil(log2 n)
  // rounds of 0-byte messages.
  mem::Buffer dummy = alloc(1);
  for (int k = 1; k < size(); k <<= 1) {
    const int to = (rank() + k) % size();
    const int from = (rank() - k + size()) % size();
    sendrecv(dummy, 0, 0, type_byte(), to, kTagBarrier, dummy, 0, 0,
             type_byte(), from, kTagBarrier);
  }
  free(dummy);
}

void Communicator::bcast(const mem::Buffer& buf, std::size_t offset,
                         std::size_t count, const Datatype& type, int root) {
  if (size() == 1) return;
  // Binomial tree rooted at `root`, computed in root-relative rank space.
  const int vrank = (rank() - root + size()) % size();
  int mask = 1;
  while (mask < size()) {
    if (vrank & mask) {
      const int src = ((vrank - mask) + root) % size();
      recv(buf, offset, count, type, src, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size()) {
      const int dst = ((vrank + mask) + root) % size();
      send(buf, offset, count, type, dst, kTagBcast);
    }
    mask >>= 1;
  }
}

void Communicator::reduce(const mem::Buffer& sendbuf, std::size_t soff,
                          const mem::Buffer& recvbuf, std::size_t roff,
                          std::size_t count, const Datatype& type, Op op,
                          int root) {
  if (!type.is_contiguous()) {
    throw MpiError("reduce: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  // Accumulator starts as my contribution.
  mem::Buffer acc = alloc(std::max<std::size_t>(bytes, 1));
  std::memcpy(acc.data(), sendbuf.data() + soff, bytes);

  // Binomial reduction in root-relative space.
  const int vrank = (rank() - root + size()) % size();
  mem::Buffer tmp = alloc(std::max<std::size_t>(bytes, 1));
  for (int mask = 1; mask < size(); mask <<= 1) {
    if (vrank & mask) {
      const int dst = ((vrank - mask) + root) % size();
      send(acc, 0, count, type, dst, kTagReduce);
      break;
    }
    if (vrank + mask < size()) {
      const int src = ((vrank + mask) + root) % size();
      recv(tmp, 0, count, type, src, kTagReduce);
      engine_.combine(op, type, acc, 0, tmp, 0, count);
    }
  }
  if (rank() == root) {
    std::memcpy(recvbuf.data() + roff, acc.data(), bytes);
  }
  free(tmp);
  free(acc);
}

void Communicator::allreduce(const mem::Buffer& sendbuf, std::size_t soff,
                             const mem::Buffer& recvbuf, std::size_t roff,
                             std::size_t count, const Datatype& type, Op op) {
  reduce(sendbuf, soff, recvbuf, roff, count, type, op, 0);
  bcast(recvbuf, roff, count, type, 0);
}

void Communicator::gather(const mem::Buffer& sendbuf, std::size_t soff,
                          std::size_t count, const Datatype& type,
                          const mem::Buffer& recvbuf, std::size_t roff,
                          int root) {
  if (!type.is_contiguous()) {
    throw MpiError("gather: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  if (rank() == root) {
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == rank()) {
        std::memcpy(recvbuf.data() + roff + r * bytes, sendbuf.data() + soff,
                    bytes);
        continue;
      }
      reqs.push_back(irecv(recvbuf, roff + r * bytes, bytes, type_byte(), r,
                           kTagGather));
    }
    waitall(reqs);
  } else {
    send(sendbuf, soff, count, type, root, kTagGather);
  }
}

void Communicator::scatter(const mem::Buffer& sendbuf, std::size_t soff,
                           std::size_t count, const Datatype& type,
                           const mem::Buffer& recvbuf, std::size_t roff,
                           int root) {
  if (!type.is_contiguous()) {
    throw MpiError("scatter: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  if (rank() == root) {
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == rank()) {
        std::memcpy(recvbuf.data() + roff,
                    sendbuf.data() + soff + r * bytes, bytes);
        continue;
      }
      reqs.push_back(isend(sendbuf, soff + r * bytes, bytes, type_byte(), r,
                           kTagScatter));
    }
    waitall(reqs);
  } else {
    recv(recvbuf, roff, count, type, root, kTagScatter);
  }
}

void Communicator::allgather(const mem::Buffer& sendbuf, std::size_t soff,
                             std::size_t count, const Datatype& type,
                             const mem::Buffer& recvbuf, std::size_t roff) {
  if (!type.is_contiguous()) {
    throw MpiError("allgather: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  // Ring allgather: n-1 steps, each forwarding the newest block.
  std::memcpy(recvbuf.data() + roff + rank() * bytes, sendbuf.data() + soff,
              bytes);
  if (size() == 1) return;
  const int to = (rank() + 1) % size();
  const int from = (rank() - 1 + size()) % size();
  for (int step = 0; step < size() - 1; ++step) {
    const int send_block = (rank() - step + size()) % size();
    const int recv_block = (rank() - step - 1 + size()) % size();
    sendrecv(recvbuf, roff + send_block * bytes, bytes, type_byte(), to,
             kTagAllgather, recvbuf, roff + recv_block * bytes, bytes,
             type_byte(), from, kTagAllgather);
  }
}

void Communicator::scan(const mem::Buffer& sendbuf, std::size_t soff,
                        const mem::Buffer& recvbuf, std::size_t roff,
                        std::size_t count, const Datatype& type, Op op) {
  if (!type.is_contiguous()) {
    throw MpiError("scan: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  // Linear pipeline: receive the prefix from rank-1, fold my contribution,
  // pass it on. O(P) latency but exact left-to-right operator order.
  std::memcpy(recvbuf.data() + roff, sendbuf.data() + soff, bytes);
  if (rank() > 0) {
    mem::Buffer prefix = alloc(std::max<std::size_t>(bytes, 1));
    recv(prefix, 0, count, type, rank() - 1, kTagScan);
    // recv = prefix OP mine, keeping operand order (prefix first).
    engine_.combine(op, type, prefix, 0, recvbuf, roff, count);
    std::memcpy(recvbuf.data() + roff, prefix.data(), bytes);
    free(prefix);
  }
  if (rank() + 1 < size()) {
    send(recvbuf, roff, count, type, rank() + 1, kTagScan);
  }
}

void Communicator::gatherv(const mem::Buffer& sendbuf, std::size_t soff,
                           std::size_t count, const Datatype& type,
                           const mem::Buffer& recvbuf, std::size_t roff,
                           std::span<const std::size_t> counts,
                           std::span<const std::size_t> displs, int root) {
  if (!type.is_contiguous()) {
    throw MpiError("gatherv: derived datatypes not supported");
  }
  if (rank() == root) {
    if (static_cast<int>(counts.size()) != size() ||
        static_cast<int>(displs.size()) != size()) {
      throw MpiError("gatherv: counts/displs must have one entry per rank");
    }
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      const std::size_t off = roff + displs[r] * type.size();
      if (r == rank()) {
        std::memcpy(recvbuf.data() + off, sendbuf.data() + soff,
                    counts[r] * type.size());
        continue;
      }
      reqs.push_back(irecv(recvbuf, off, counts[r] * type.size(),
                           type_byte(), r, kTagGatherv));
    }
    waitall(reqs);
  } else {
    send(sendbuf, soff, count, type, root, kTagGatherv);
  }
}

void Communicator::scatterv(const mem::Buffer& sendbuf, std::size_t soff,
                            std::span<const std::size_t> counts,
                            std::span<const std::size_t> displs,
                            const Datatype& type, const mem::Buffer& recvbuf,
                            std::size_t roff, std::size_t count, int root) {
  if (!type.is_contiguous()) {
    throw MpiError("scatterv: derived datatypes not supported");
  }
  if (rank() == root) {
    if (static_cast<int>(counts.size()) != size() ||
        static_cast<int>(displs.size()) != size()) {
      throw MpiError("scatterv: counts/displs must have one entry per rank");
    }
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      const std::size_t off = soff + displs[r] * type.size();
      if (r == rank()) {
        std::memcpy(recvbuf.data() + roff, sendbuf.data() + off,
                    counts[r] * type.size());
        continue;
      }
      reqs.push_back(isend(sendbuf, off, counts[r] * type.size(),
                           type_byte(), r, kTagScatterv));
    }
    waitall(reqs);
  } else {
    recv(recvbuf, roff, count, type, root, kTagScatterv);
  }
}

void Communicator::alltoall(const mem::Buffer& sendbuf, std::size_t soff,
                            std::size_t count, const Datatype& type,
                            const mem::Buffer& recvbuf, std::size_t roff) {
  if (!type.is_contiguous()) {
    throw MpiError("alltoall: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  // Pairwise exchange with rotating partners; self block is a local copy.
  std::memcpy(recvbuf.data() + roff + rank() * bytes,
              sendbuf.data() + soff + rank() * bytes, bytes);
  for (int step = 1; step < size(); ++step) {
    const int to = (rank() + step) % size();
    const int from = (rank() - step + size()) % size();
    sendrecv(sendbuf, soff + to * bytes, bytes, type_byte(), to, kTagAlltoall,
             recvbuf, roff + from * bytes, bytes, type_byte(), from,
             kTagAlltoall);
  }
}

}  // namespace dcfa::mpi
