// The collectives algorithm engine (docs/collectives.md): per-algorithm
// units — recursive-doubling / pipelined-ring / Rabenseifner allreduce,
// binomial and scatter+ring-allgather bcast, ring and recursive-doubling
// allgather — behind a size- and comm-size-aware selection layer
// (mpi/coll.hpp). Large-message paths are segmented so send, receive and
// combine of consecutive segments overlap through nonblocking requests.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "mpi/communicator.hpp"
#include "sim/trace.hpp"

namespace dcfa::mpi {

namespace {

/// Internal tags, disjoint per collective (and per engine phase) so
/// overlapping phases of different collectives on the same communicator
/// cannot cross-match. (Collectives are themselves ordered per
/// communicator, as MPI requires.)
enum : int {
  kTagBarrier = kInternalTagBase + 1,
  kTagBcast = kInternalTagBase + 2,
  kTagReduce = kInternalTagBase + 3,
  kTagGather = kInternalTagBase + 4,
  kTagScatter = kInternalTagBase + 5,
  kTagAllgather = kInternalTagBase + 6,
  kTagAlltoall = kInternalTagBase + 7,
  kTagScan = kInternalTagBase + 8,
  kTagGatherv = kInternalTagBase + 9,
  kTagScatterv = kInternalTagBase + 10,
  // Collectives-engine phases.
  kTagFold = kInternalTagBase + 11,      ///< power-of-two fold / unfold
  kTagRsRing = kInternalTagBase + 12,    ///< ring reduce-scatter segments
  kTagAgRing = kInternalTagBase + 13,    ///< ring allgather segments
  kTagRdRound = kInternalTagBase + 14,   ///< recursive doubling / halving
  kTagBcastScatter = kInternalTagBase + 15,
  kTagBcastAg = kInternalTagBase + 16,   ///< bcast's ring allgather phase
  kTagRsBlock = kInternalTagBase + 17,   ///< reduce_scatter_block segments
};

int floor_pow2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

/// Balanced partition of a vector into consecutive per-block element
/// ranges; the remainder is spread over the leading blocks so lengths
/// differ by at most one (blocks may be empty when count < parts).
struct Communicator::BlockPart {
  std::vector<std::size_t> off;  ///< size parts+1; off[parts] == count

  BlockPart(std::size_t count, int parts) : off(parts + 1) {
    const std::size_t q = count / parts;
    const std::size_t r = count % parts;
    std::size_t at = 0;
    for (int b = 0; b < parts; ++b) {
      off[b] = at;
      at += q + (static_cast<std::size_t>(b) < r ? 1 : 0);
    }
    off[parts] = at;
  }
  std::size_t len(int b) const { return off[b + 1] - off[b]; }
  /// Elements in the contiguous block range [b0, b1).
  std::size_t range(int b0, int b1) const { return off[b1] - off[b0]; }
};

// ---------------------------------------------------------------------------
// Pipelined segment exchange
// ---------------------------------------------------------------------------

std::uint64_t Communicator::pipelined_step(
    const mem::Buffer& buf, std::size_t base, std::size_t out_off,
    std::size_t out_len, std::size_t in_off, std::size_t in_len,
    const Datatype& type, const Op* op, std::size_t seg_elems, int to,
    int from, int tag, const mem::Buffer& scratch) {
  const std::size_t es = type.size();
  const auto nseg = [seg_elems](std::size_t len) {
    return len == 0 ? std::size_t{0} : (len + seg_elems - 1) / seg_elems;
  };
  const std::size_t nout = nseg(out_len);
  const std::size_t nin = nseg(in_len);

  // All outgoing segments go up first: they read block ranges this step
  // never writes, and queuing them keeps the wire busy while we fold
  // incoming segments.
  std::vector<Request> sends;
  sends.reserve(nout);
  for (std::size_t j = 0; j < nout; ++j) {
    const std::size_t lo = j * seg_elems;
    const std::size_t n = std::min(seg_elems, out_len - lo);
    sends.push_back(isend(buf, base + (out_off + lo) * es, n, type, to, tag));
  }

  if (op == nullptr) {
    // Pure data movement: receive segments straight into place.
    std::vector<Request> recvs;
    recvs.reserve(nin);
    for (std::size_t j = 0; j < nin; ++j) {
      const std::size_t lo = j * seg_elems;
      const std::size_t n = std::min(seg_elems, in_len - lo);
      recvs.push_back(
          irecv(buf, base + (in_off + lo) * es, n, type, from, tag));
    }
    waitall(recvs);
  } else {
    // Reduction pipeline: segment j+1 is in flight (into the other half of
    // the double-buffered scratch) while segment j is being combined.
    const std::size_t seg_bytes = seg_elems * es;
    auto seg_len = [&](std::size_t j) {
      return std::min(seg_elems, in_len - j * seg_elems);
    };
    Request cur;
    if (nin > 0) cur = irecv(scratch, 0, seg_len(0), type, from, tag);
    for (std::size_t j = 0; j < nin; ++j) {
      Request next;
      if (j + 1 < nin) {
        next = irecv(scratch, ((j + 1) % 2) * seg_bytes, seg_len(j + 1), type,
                     from, tag);
      }
      wait(cur);
      engine_.combine(*op, type, buf, base + (in_off + j * seg_elems) * es,
                      scratch, (j % 2) * seg_bytes, seg_len(j));
      cur = next;
    }
  }
  waitall(sends);
  return nout + nin;
}

// ---------------------------------------------------------------------------
// Ring phases
// ---------------------------------------------------------------------------

void Communicator::reduce_scatter_ring(const mem::Buffer& buf,
                                       std::size_t base, const BlockPart& part,
                                       const Datatype& type, Op op,
                                       std::size_t seg_elems, int final_block,
                                       const mem::Buffer& scratch) {
  const int P = size();
  const int to = (rank() + 1) % P;
  const int from = (rank() - 1 + P) % P;
  std::uint64_t segs = 0;
  // Step s forwards the partial of block (final_block - 1 - s) to the
  // successor while folding the predecessor's partial of the next block;
  // after P-1 steps only `final_block` is globally complete here.
  for (int s = 0; s < P - 1; ++s) {
    const int ob = (final_block - 1 - s + 2 * P) % P;
    const int ib = (final_block - 2 - s + 2 * P) % P;
    segs += pipelined_step(buf, base, part.off[ob], part.len(ob),
                           part.off[ib], part.len(ib), type, &op, seg_elems,
                           to, from, kTagRsRing, scratch);
  }
  engine_.coll_stats().coll_segments += segs;
}

void Communicator::ring_allgather_blocks(const mem::Buffer& buf,
                                         std::size_t base,
                                         const BlockPart& part,
                                         const Datatype& type,
                                         std::size_t seg_elems, int my_block,
                                         int to, int from, int tag) {
  const int P = size();
  std::uint64_t segs = 0;
  mem::Buffer none;  // no combine => scratch unused
  for (int s = 0; s < P - 1; ++s) {
    const int ob = (my_block - s + 2 * P) % P;
    const int ib = (my_block - 1 - s + 2 * P) % P;
    segs += pipelined_step(buf, base, part.off[ob], part.len(ob),
                           part.off[ib], part.len(ib), type, nullptr,
                           seg_elems, to, from, tag, none);
  }
  engine_.coll_stats().coll_segments += segs;
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

void Communicator::barrier() {
  if (size() == 1) return;
  // Dissemination barrier: works for any communicator size in ceil(log2 n)
  // rounds of 0-byte messages.
  mem::Buffer dummy = alloc(1);
  for (int k = 1; k < size(); k <<= 1) {
    const int to = (rank() + k) % size();
    const int from = (rank() - k + size()) % size();
    sendrecv(dummy, 0, 0, type_byte(), to, kTagBarrier, dummy, 0, 0,
             type_byte(), from, kTagBarrier);
  }
  free(dummy);
}

// ---------------------------------------------------------------------------
// Bcast
// ---------------------------------------------------------------------------

void Communicator::bcast_binomial(const mem::Buffer& buf, std::size_t offset,
                                  std::size_t count, const Datatype& type,
                                  int root) {
  // Binomial tree rooted at `root`, computed in root-relative rank space.
  const int vrank = (rank() - root + size()) % size();
  int mask = 1;
  while (mask < size()) {
    if (vrank & mask) {
      const int src = ((vrank - mask) + root) % size();
      recv(buf, offset, count, type, src, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size()) {
      const int dst = ((vrank + mask) + root) % size();
      send(buf, offset, count, type, dst, kTagBcast);
    }
    mask >>= 1;
  }
}

void Communicator::bcast_scatter_ag(const mem::Buffer& buf,
                                    std::size_t offset, std::size_t count,
                                    const Datatype& type, int root) {
  // van de Geijn: binomial scatter of per-rank blocks, then a pipelined
  // ring allgather — the full message crosses each rank's links ~twice
  // instead of log2(P) times. Everything runs in root-relative vrank
  // space; block v belongs to vrank v.
  const int P = size();
  const int vrank = (rank() - root + P) % P;
  const auto real = [&](int v) { return ((v % P) + P + root) % P; };
  const BlockPart part(count, P);
  const std::size_t es = type.size();

  // Scatter: the first set bit of vrank is the subtree this rank roots;
  // it receives blocks [vrank, vrank+mask) and forwards sub-halves.
  int mask = 1;
  while (mask < P) {
    if (vrank & mask) {
      const int hi = std::min(vrank + mask, P);
      recv(buf, offset + part.off[vrank] * es, part.range(vrank, hi), type,
           real(vrank - mask), kTagBcastScatter);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < P) {
      const int lo = vrank + mask;
      const int hi = std::min(vrank + 2 * mask, P);
      send(buf, offset + part.off[lo] * es, part.range(lo, hi), type,
           real(lo), kTagBcastScatter);
    }
    mask >>= 1;
  }

  const std::size_t seg_elems =
      std::max<std::size_t>(1, engine_.coll_tuning().segment_bytes / es);
  ring_allgather_blocks(buf, offset, part, type, seg_elems, vrank,
                        real(vrank + 1), real(vrank - 1), kTagBcastAg);
}

void Communicator::bcast(const mem::Buffer& buf, std::size_t offset,
                         std::size_t count, const Datatype& type, int root) {
  if (size() == 1 || count == 0) return;
  const std::size_t bytes = count * type.size();
  const CollAlgo algo =
      select_bcast(engine_.coll_tuning(), bytes, size());
  const sim::Time t0 = engine_.ib().process().now();
  if (algo == CollAlgo::ScatterAllgather) {
    bcast_scatter_ag(buf, offset, count, type, root);
    ++engine_.coll_stats().coll_bcast_scatter_ag;
  } else {
    bcast_binomial(buf, offset, count, type, root);
    ++engine_.coll_stats().coll_bcast_binomial;
  }
  if (sim::Tracer::current()) {
    sim::trace_span("rank" + std::to_string(engine_.rank()),
                    std::string("bcast.") + coll_algo_name(algo) + " " +
                        std::to_string(bytes) + "B",
                    t0, engine_.ib().process().now());
  }
}

// ---------------------------------------------------------------------------
// Reduce
// ---------------------------------------------------------------------------

void Communicator::reduce(const mem::Buffer& sendbuf, std::size_t soff,
                          const mem::Buffer& recvbuf, std::size_t roff,
                          std::size_t count, const Datatype& type, Op op,
                          int root) {
  if (!type.is_contiguous()) {
    throw MpiError("reduce: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  // Accumulator starts as my contribution.
  mem::Buffer acc = alloc(std::max<std::size_t>(bytes, 1));
  std::memcpy(acc.data(), sendbuf.data() + soff, bytes);

  // Binomial reduction in root-relative space.
  const int vrank = (rank() - root + size()) % size();
  mem::Buffer tmp = alloc(std::max<std::size_t>(bytes, 1));
  for (int mask = 1; mask < size(); mask <<= 1) {
    if (vrank & mask) {
      const int dst = ((vrank - mask) + root) % size();
      send(acc, 0, count, type, dst, kTagReduce);
      break;
    }
    if (vrank + mask < size()) {
      const int src = ((vrank + mask) + root) % size();
      recv(tmp, 0, count, type, src, kTagReduce);
      engine_.combine(op, type, acc, 0, tmp, 0, count);
    }
  }
  if (rank() == root) {
    std::memcpy(recvbuf.data() + roff, acc.data(), bytes);
  }
  free(tmp);
  free(acc);
}

// ---------------------------------------------------------------------------
// Allreduce
// ---------------------------------------------------------------------------

void Communicator::allreduce_rd(const mem::Buffer& recvbuf, std::size_t roff,
                                std::size_t count, const Datatype& type,
                                Op op) {
  const int P = size();
  const std::size_t bytes = count * type.size();
  mem::Buffer tmp = alloc(std::max<std::size_t>(bytes, 1));

  // Fold to a power of two: the first 2*rem ranks pair up, evens ship
  // their vector to the odd partner and sit out the doubling rounds.
  const int pof2 = floor_pow2(P);
  const int rem = P - pof2;
  int newrank;
  if (rank() < 2 * rem) {
    if (rank() % 2 == 0) {
      send(recvbuf, roff, count, type, rank() + 1, kTagFold);
      newrank = -1;
    } else {
      recv(tmp, 0, count, type, rank() - 1, kTagFold);
      engine_.combine(op, type, recvbuf, roff, tmp, 0, count);
      newrank = rank() / 2;
    }
  } else {
    newrank = rank() - rem;
  }

  if (newrank != -1) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int pn = newrank ^ mask;
      const int peer = pn < rem ? pn * 2 + 1 : pn + rem;
      sendrecv(recvbuf, roff, count, type, peer, kTagRdRound, tmp, 0, count,
               type, peer, kTagRdRound);
      engine_.combine(op, type, recvbuf, roff, tmp, 0, count);
    }
  }

  // Unfold: odd partners return the finished vector to the evens.
  if (rank() < 2 * rem) {
    if (rank() % 2 == 0) {
      recv(recvbuf, roff, count, type, rank() + 1, kTagFold);
    } else {
      send(recvbuf, roff, count, type, rank() - 1, kTagFold);
    }
  }
  free(tmp);
}

void Communicator::allreduce_ring(const mem::Buffer& recvbuf,
                                  std::size_t roff, std::size_t count,
                                  const Datatype& type, Op op) {
  const int P = size();
  const std::size_t es = type.size();
  const BlockPart part(count, P);
  const std::size_t seg_elems =
      std::max<std::size_t>(1, engine_.coll_tuning().segment_bytes / es);
  mem::Buffer scratch = alloc(std::max<std::size_t>(2 * seg_elems * es, 1));

  // Reduce-scatter leaves this rank with block (rank+1) complete — exactly
  // the block the allgather ring starts forwarding.
  const int my_block = (rank() + 1) % P;
  reduce_scatter_ring(recvbuf, roff, part, type, op, seg_elems, my_block,
                      scratch);
  ring_allgather_blocks(recvbuf, roff, part, type, seg_elems, my_block,
                        (rank() + 1) % P, (rank() - 1 + P) % P, kTagAgRing);
  free(scratch);
}

void Communicator::allreduce_rab(const mem::Buffer& recvbuf, std::size_t roff,
                                 std::size_t count, const Datatype& type,
                                 Op op) {
  const int P = size();
  const std::size_t es = type.size();
  const std::size_t bytes = count * es;

  // Fold to a power of two (as in allreduce_rd).
  const int pof2 = floor_pow2(P);
  const int rem = P - pof2;
  int newrank;
  if (rank() < 2 * rem) {
    if (rank() % 2 == 0) {
      send(recvbuf, roff, count, type, rank() + 1, kTagFold);
      newrank = -1;
    } else {
      mem::Buffer tmp = alloc(std::max<std::size_t>(bytes, 1));
      recv(tmp, 0, count, type, rank() - 1, kTagFold);
      engine_.combine(op, type, recvbuf, roff, tmp, 0, count);
      free(tmp);
      newrank = rank() / 2;
    }
  } else {
    newrank = rank() - rem;
  }

  if (newrank != -1) {
    const BlockPart part(count, pof2);
    const std::size_t seg_elems =
        std::max<std::size_t>(1, engine_.coll_tuning().segment_bytes / es);
    mem::Buffer scratch =
        alloc(std::max<std::size_t>(2 * seg_elems * es, 1));
    const auto peer_of = [&](int pn) {
      return pn < rem ? pn * 2 + 1 : pn + rem;
    };

    // Recursive-halving reduce-scatter: each round trades half of the
    // still-owned block range with the partner and folds the kept half.
    int lo = 0, hi = pof2;
    for (int dist = pof2 / 2; dist >= 1; dist >>= 1) {
      const int peer = peer_of(newrank ^ dist);
      const int mid = lo + (hi - lo) / 2;
      int keep_lo, keep_hi, give_lo, give_hi;
      if ((newrank & dist) == 0) {
        keep_lo = lo, keep_hi = mid, give_lo = mid, give_hi = hi;
      } else {
        keep_lo = mid, keep_hi = hi, give_lo = lo, give_hi = mid;
      }
      engine_.coll_stats().coll_segments += pipelined_step(
          recvbuf, roff, part.off[give_lo], part.range(give_lo, give_hi),
          part.off[keep_lo], part.range(keep_lo, keep_hi), type, &op,
          seg_elems, peer, peer, kTagRdRound, scratch);
      lo = keep_lo;
      hi = keep_hi;
    }
    free(scratch);

    // Recursive-doubling allgather over the finished blocks: the owned
    // aligned range doubles every round.
    for (int dist = 1; dist < pof2; dist <<= 1) {
      const int peer = peer_of(newrank ^ dist);
      const int base_blk = newrank & ~(dist - 1);
      const int peer_blk = base_blk ^ dist;
      sendrecv(recvbuf, roff + part.off[base_blk] * es,
               part.range(base_blk, base_blk + dist), type, peer, kTagRdRound,
               recvbuf, roff + part.off[peer_blk] * es,
               part.range(peer_blk, peer_blk + dist), type, peer,
               kTagRdRound);
    }
  }

  // Unfold the full vector to the folded-out evens.
  if (rank() < 2 * rem) {
    if (rank() % 2 == 0) {
      recv(recvbuf, roff, count, type, rank() + 1, kTagFold);
    } else {
      send(recvbuf, roff, count, type, rank() - 1, kTagFold);
    }
  }
}

void Communicator::allreduce(const mem::Buffer& sendbuf, std::size_t soff,
                             const mem::Buffer& recvbuf, std::size_t roff,
                             std::size_t count, const Datatype& type, Op op) {
  if (!type.is_contiguous()) {
    throw MpiError("allreduce: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  if (recvbuf.data() + roff != sendbuf.data() + soff) {
    std::memcpy(recvbuf.data() + roff, sendbuf.data() + soff, bytes);
  }
  if (size() == 1 || count == 0) return;
  if (type.kind() == Datatype::Kind::Opaque) {
    // Same failure the per-element combine would raise, but before any
    // rank communicates, so every rank throws in lockstep.
    throw MpiError("reduce: datatype has no arithmetic kind");
  }

  const CollAlgo algo =
      select_allreduce(engine_.coll_tuning(), bytes, size());
  const sim::Time t0 = engine_.ib().process().now();
  Engine::Stats& st = engine_.coll_stats();
  switch (algo) {
    case CollAlgo::Ring:
      allreduce_ring(recvbuf, roff, count, type, op);
      ++st.coll_allreduce_ring;
      break;
    case CollAlgo::Rabenseifner:
      allreduce_rab(recvbuf, roff, count, type, op);
      ++st.coll_allreduce_rab;
      break;
    case CollAlgo::RecursiveDoubling:
      allreduce_rd(recvbuf, roff, count, type, op);
      ++st.coll_allreduce_rd;
      break;
    default:
      // The pre-engine path: binomial reduce to rank 0, binomial bcast
      // back out. Kept as the small-comm / forced fallback and as the
      // baseline the bench sweeps against.
      reduce(sendbuf, soff, recvbuf, roff, count, type, op, 0);
      bcast_binomial(recvbuf, roff, count, type, 0);
      ++st.coll_allreduce_binomial;
      break;
  }
  if (sim::Tracer::current()) {
    sim::trace_span("rank" + std::to_string(engine_.rank()),
                    std::string("allreduce.") + coll_algo_name(algo) + " " +
                        std::to_string(bytes) + "B",
                    t0, engine_.ib().process().now());
  }
}

void Communicator::reduce_scatter_block(const mem::Buffer& sendbuf,
                                        std::size_t soff,
                                        const mem::Buffer& recvbuf,
                                        std::size_t roff,
                                        std::size_t recvcount,
                                        const Datatype& type, Op op) {
  if (!type.is_contiguous()) {
    throw MpiError("reduce_scatter_block: derived datatypes not supported");
  }
  const int P = size();
  const std::size_t es = type.size();
  const std::size_t block_bytes = recvcount * es;
  if (P == 1) {
    std::memcpy(recvbuf.data() + roff, sendbuf.data() + soff, block_bytes);
    return;
  }
  if (recvcount == 0) return;
  if (type.kind() == Datatype::Kind::Opaque) {
    throw MpiError("reduce: datatype has no arithmetic kind");
  }

  // Ring reduce-scatter over a working copy of the full input, targeting
  // block `rank` (reduce_scatter_block semantics), then lift it out.
  const std::size_t count = recvcount * static_cast<std::size_t>(P);
  const BlockPart part(count, P);
  const std::size_t seg_elems =
      std::max<std::size_t>(1, engine_.coll_tuning().segment_bytes / es);
  mem::Buffer work = alloc(count * es);
  std::memcpy(work.data(), sendbuf.data() + soff, count * es);
  mem::Buffer scratch = alloc(std::max<std::size_t>(2 * seg_elems * es, 1));
  const sim::Time t0 = engine_.ib().process().now();
  reduce_scatter_ring(work, 0, part, type, op, seg_elems, rank(), scratch);
  std::memcpy(recvbuf.data() + roff, work.data() + part.off[rank()] * es,
              block_bytes);
  if (sim::Tracer::current()) {
    sim::trace_span("rank" + std::to_string(engine_.rank()),
                    "reduce_scatter.ring " + std::to_string(count * es) + "B",
                    t0, engine_.ib().process().now());
  }
  free(scratch);
  free(work);
}

// ---------------------------------------------------------------------------
// Gather / scatter
// ---------------------------------------------------------------------------

void Communicator::gather(const mem::Buffer& sendbuf, std::size_t soff,
                          std::size_t count, const Datatype& type,
                          const mem::Buffer& recvbuf, std::size_t roff,
                          int root) {
  if (!type.is_contiguous()) {
    throw MpiError("gather: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  if (rank() == root) {
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == rank()) {
        std::memcpy(recvbuf.data() + roff + r * bytes, sendbuf.data() + soff,
                    bytes);
        continue;
      }
      reqs.push_back(irecv(recvbuf, roff + r * bytes, bytes, type_byte(), r,
                           kTagGather));
    }
    waitall(reqs);
  } else {
    send(sendbuf, soff, count, type, root, kTagGather);
  }
}

void Communicator::scatter(const mem::Buffer& sendbuf, std::size_t soff,
                           std::size_t count, const Datatype& type,
                           const mem::Buffer& recvbuf, std::size_t roff,
                           int root) {
  if (!type.is_contiguous()) {
    throw MpiError("scatter: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  if (rank() == root) {
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == rank()) {
        std::memcpy(recvbuf.data() + roff,
                    sendbuf.data() + soff + r * bytes, bytes);
        continue;
      }
      reqs.push_back(isend(sendbuf, soff + r * bytes, bytes, type_byte(), r,
                           kTagScatter));
    }
    waitall(reqs);
  } else {
    recv(recvbuf, roff, count, type, root, kTagScatter);
  }
}

// ---------------------------------------------------------------------------
// Allgather
// ---------------------------------------------------------------------------

void Communicator::allgather_rd(const mem::Buffer& recvbuf, std::size_t roff,
                                std::size_t count, const Datatype& type) {
  // Power-of-two comms only (the selection layer guarantees it): the owned
  // aligned run of blocks doubles every round.
  const int P = size();
  const std::size_t es = type.size();
  for (int dist = 1; dist < P; dist <<= 1) {
    const int peer = rank() ^ dist;
    const int base_blk = rank() & ~(dist - 1);
    const int peer_blk = base_blk ^ dist;
    sendrecv(recvbuf, roff + base_blk * count * es, dist * count, type, peer,
             kTagAllgather, recvbuf, roff + peer_blk * count * es,
             dist * count, type, peer, kTagAllgather);
  }
}

void Communicator::allgather(const mem::Buffer& sendbuf, std::size_t soff,
                             std::size_t count, const Datatype& type,
                             const mem::Buffer& recvbuf, std::size_t roff) {
  if (!type.is_contiguous()) {
    throw MpiError("allgather: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  std::memcpy(recvbuf.data() + roff + rank() * bytes, sendbuf.data() + soff,
              bytes);
  if (size() == 1 || count == 0) return;

  const CollAlgo algo =
      select_allgather(engine_.coll_tuning(), bytes, size());
  const sim::Time t0 = engine_.ib().process().now();
  if (algo == CollAlgo::RecursiveDoubling) {
    allgather_rd(recvbuf, roff, count, type);
    ++engine_.coll_stats().coll_allgather_rd;
  } else {
    // Pipelined ring over uniform per-rank blocks.
    const std::size_t seg_elems =
        std::max<std::size_t>(1, engine_.coll_tuning().segment_bytes /
                                     type.size());
    // Uniform partition: count*P splits evenly, so off[b] == b*count.
    const BlockPart part(count * static_cast<std::size_t>(size()), size());
    ring_allgather_blocks(recvbuf, roff, part, type, seg_elems, rank(),
                          (rank() + 1) % size(), (rank() - 1 + size()) % size(),
                          kTagAgRing);
    ++engine_.coll_stats().coll_allgather_ring;
  }
  if (sim::Tracer::current()) {
    sim::trace_span("rank" + std::to_string(engine_.rank()),
                    std::string("allgather.") + coll_algo_name(algo) + " " +
                        std::to_string(bytes) + "B/rank",
                    t0, engine_.ib().process().now());
  }
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

void Communicator::scan(const mem::Buffer& sendbuf, std::size_t soff,
                        const mem::Buffer& recvbuf, std::size_t roff,
                        std::size_t count, const Datatype& type, Op op) {
  if (!type.is_contiguous()) {
    throw MpiError("scan: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  // Linear pipeline: receive the prefix from rank-1, fold my contribution,
  // pass it on. O(P) latency but exact left-to-right operator order.
  std::memcpy(recvbuf.data() + roff, sendbuf.data() + soff, bytes);
  if (rank() > 0) {
    mem::Buffer prefix = alloc(std::max<std::size_t>(bytes, 1));
    recv(prefix, 0, count, type, rank() - 1, kTagScan);
    // recv = prefix OP mine, keeping operand order (prefix first).
    engine_.combine(op, type, prefix, 0, recvbuf, roff, count);
    std::memcpy(recvbuf.data() + roff, prefix.data(), bytes);
    free(prefix);
  }
  if (rank() + 1 < size()) {
    send(recvbuf, roff, count, type, rank() + 1, kTagScan);
  }
}

// ---------------------------------------------------------------------------
// Gatherv / scatterv / alltoall
// ---------------------------------------------------------------------------

void Communicator::gatherv(const mem::Buffer& sendbuf, std::size_t soff,
                           std::size_t count, const Datatype& type,
                           const mem::Buffer& recvbuf, std::size_t roff,
                           std::span<const std::size_t> counts,
                           std::span<const std::size_t> displs, int root) {
  if (!type.is_contiguous()) {
    throw MpiError("gatherv: derived datatypes not supported");
  }
  if (rank() == root) {
    if (static_cast<int>(counts.size()) != size() ||
        static_cast<int>(displs.size()) != size()) {
      throw MpiError("gatherv: counts/displs must have one entry per rank");
    }
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      const std::size_t off = roff + displs[r] * type.size();
      if (r == rank()) {
        std::memcpy(recvbuf.data() + off, sendbuf.data() + soff,
                    counts[r] * type.size());
        continue;
      }
      reqs.push_back(irecv(recvbuf, off, counts[r] * type.size(),
                           type_byte(), r, kTagGatherv));
    }
    waitall(reqs);
  } else {
    send(sendbuf, soff, count, type, root, kTagGatherv);
  }
}

void Communicator::scatterv(const mem::Buffer& sendbuf, std::size_t soff,
                            std::span<const std::size_t> counts,
                            std::span<const std::size_t> displs,
                            const Datatype& type, const mem::Buffer& recvbuf,
                            std::size_t roff, std::size_t count, int root) {
  if (!type.is_contiguous()) {
    throw MpiError("scatterv: derived datatypes not supported");
  }
  if (rank() == root) {
    if (static_cast<int>(counts.size()) != size() ||
        static_cast<int>(displs.size()) != size()) {
      throw MpiError("scatterv: counts/displs must have one entry per rank");
    }
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      const std::size_t off = soff + displs[r] * type.size();
      if (r == rank()) {
        std::memcpy(recvbuf.data() + roff, sendbuf.data() + off,
                    counts[r] * type.size());
        continue;
      }
      reqs.push_back(isend(sendbuf, off, counts[r] * type.size(),
                           type_byte(), r, kTagScatterv));
    }
    waitall(reqs);
  } else {
    recv(recvbuf, roff, count, type, root, kTagScatterv);
  }
}

void Communicator::alltoall(const mem::Buffer& sendbuf, std::size_t soff,
                            std::size_t count, const Datatype& type,
                            const mem::Buffer& recvbuf, std::size_t roff) {
  if (!type.is_contiguous()) {
    throw MpiError("alltoall: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  // Pairwise exchange with rotating partners; self block is a local copy.
  std::memcpy(recvbuf.data() + roff + rank() * bytes,
              sendbuf.data() + soff + rank() * bytes, bytes);
  for (int step = 1; step < size(); ++step) {
    const int to = (rank() + step) % size();
    const int from = (rank() - step + size()) % size();
    sendrecv(sendbuf, soff + to * bytes, bytes, type_byte(), to, kTagAlltoall,
             recvbuf, roff + from * bytes, bytes, type_byte(), from,
             kTagAlltoall);
  }
}

}  // namespace dcfa::mpi
