// The collectives algorithm engine (docs/collectives.md): each algorithm —
// recursive-doubling / pipelined-ring / Rabenseifner allreduce, binomial
// and scatter+ring-allgather bcast, ring and recursive-doubling allgather,
// reduce_scatter_block, dissemination barrier — is a schedule emitter that
// compiles this rank's part of the collective into a CollSchedule
// (mpi/coll.hpp) of send/recv/copy/combine stages. The engine's progress
// loop advances the schedule, so the nonblocking i* entry points return
// immediately; the blocking forms post the same schedule and wait.
// Large-message stages are pipelined (CollPipe) so send, receive and
// combine of consecutive segments overlap.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "mpi/communicator.hpp"
#include "sim/trace.hpp"

namespace dcfa::mpi {

namespace {

/// Fixed internal tags for the collectives that still run inline (rooted /
/// irregular ones outside the schedule engine), disjoint per collective.
/// Schedule-based collectives use rotating per-schedule tag windows instead
/// (kCollSchedTagBase; see next_coll_tag_base).
enum : int {
  kTagReduce = kInternalTagBase + 3,
  kTagGather = kInternalTagBase + 4,
  kTagScatter = kInternalTagBase + 5,
  kTagAlltoall = kInternalTagBase + 7,
  kTagScan = kInternalTagBase + 8,
  kTagGatherv = kInternalTagBase + 9,
  kTagScatterv = kInternalTagBase + 10,
};

/// Phase slots inside a schedule's kCollSchedPhases-tag window. Phases that
/// run in sequence on the same peer pair may share a slot (the channel's
/// sequence ids keep them ordered); phases whose traffic could interleave
/// get their own.
enum : int {
  kPhaseFold = 0,      ///< power-of-two fold / unfold
  kPhaseRsRing = 1,    ///< ring reduce-scatter segments
  kPhaseAgRing = 2,    ///< ring allgather segments
  kPhaseRdRound = 3,   ///< recursive doubling / halving rounds
  kPhaseScatter = 4,   ///< bcast's binomial scatter
  kPhaseBcastTree = 5, ///< binomial bcast tree
  kPhaseBarrier = 6,   ///< dissemination rounds
  kPhaseReduceTree = 7 ///< binomial reduce tree
};

int floor_pow2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

CollStage& add_stage(CollSchedule& s) {
  s.stages.emplace_back();
  return s.stages.back();
}

CollXfer xfer(bool is_send, const mem::Buffer& buf, std::size_t off,
              std::size_t count, const Datatype& type, int world_peer,
              int tag) {
  CollXfer x;
  x.is_send = is_send;
  x.buf = buf;
  x.off = off;
  x.count = count;
  x.type = &type;
  x.peer = world_peer;
  x.tag = tag;
  return x;
}

}  // namespace

/// Balanced partition of a vector into consecutive per-block element
/// ranges; the remainder is spread over the leading blocks so lengths
/// differ by at most one (blocks may be empty when count < parts).
struct Communicator::BlockPart {
  std::vector<std::size_t> off;  ///< size parts+1; off[parts] == count

  BlockPart(std::size_t count, int parts) : off(parts + 1) {
    const std::size_t q = count / parts;
    const std::size_t r = count % parts;
    std::size_t at = 0;
    for (int b = 0; b < parts; ++b) {
      off[b] = at;
      at += q + (static_cast<std::size_t>(b) < r ? 1 : 0);
    }
    off[parts] = at;
  }
  std::size_t len(int b) const { return off[b + 1] - off[b]; }
  /// Elements in the contiguous block range [b0, b1).
  std::size_t range(int b0, int b1) const { return off[b1] - off[b0]; }
};

int Communicator::next_coll_tag_base() {
  const int slot = static_cast<int>(coll_seq_++ % kCollSchedWindow);
  return kCollSchedTagBase + slot * kCollSchedPhases;
}

// ---------------------------------------------------------------------------
// Ring phases (pipelined stages)
// ---------------------------------------------------------------------------

void Communicator::emit_rs_ring(CollSchedule& sched, const mem::Buffer& buf,
                                std::size_t base, const BlockPart& part,
                                const Datatype& type, Op op,
                                std::size_t seg_elems, int final_block,
                                const mem::Buffer& scratch, int tag) {
  const int P = size();
  const int to = to_world((rank() + 1) % P);
  const int from = to_world((rank() - 1 + P) % P);
  // Step s forwards the partial of block (final_block - 1 - s) to the
  // successor while folding the predecessor's partial of the next block;
  // after P-1 steps only `final_block` is globally complete here.
  for (int s = 0; s < P - 1; ++s) {
    const int ob = (final_block - 1 - s + 2 * P) % P;
    const int ib = (final_block - 2 - s + 2 * P) % P;
    CollPipe p;
    p.buf = buf;
    p.base = base;
    p.out_off = part.off[ob];
    p.out_len = part.len(ob);
    p.in_off = part.off[ib];
    p.in_len = part.len(ib);
    p.type = &type;
    p.has_op = true;
    p.op = op;
    p.seg_elems = seg_elems;
    p.to = to;
    p.from = from;
    p.tag = tag;
    p.scratch = scratch;
    add_stage(sched).pipe = std::move(p);
  }
}

void Communicator::emit_ag_ring(CollSchedule& sched, const mem::Buffer& buf,
                                std::size_t base, const BlockPart& part,
                                const Datatype& type, std::size_t seg_elems,
                                int my_block, int to, int from, int tag) {
  const int P = size();
  const int wto = to_world(to);
  const int wfrom = to_world(from);
  for (int s = 0; s < P - 1; ++s) {
    const int ob = (my_block - s + 2 * P) % P;
    const int ib = (my_block - 1 - s + 2 * P) % P;
    CollPipe p;
    p.buf = buf;
    p.base = base;
    p.out_off = part.off[ob];
    p.out_len = part.len(ob);
    p.in_off = part.off[ib];
    p.in_len = part.len(ib);
    p.type = &type;
    p.has_op = false;
    p.seg_elems = seg_elems;
    p.to = wto;
    p.from = wfrom;
    p.tag = tag;
    add_stage(sched).pipe = std::move(p);
  }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

Request Communicator::ibarrier() {
  if (size() == 1) return engine_.completed_request();
  auto sched = std::make_shared<CollSchedule>();
  sched->comm_id = id_;
  sched->tag_base = next_coll_tag_base();
  const int tag = sched->tag_base + kPhaseBarrier;
  // Dissemination barrier: works for any communicator size in ceil(log2 n)
  // rounds of 0-byte messages.
  mem::Buffer dummy = alloc(1);
  sched->owned.push_back(dummy);
  for (int k = 1; k < size(); k <<= 1) {
    const int to = (rank() + k) % size();
    const int from = (rank() - k + size()) % size();
    CollStage& st = add_stage(*sched);
    st.xfers.push_back(
        xfer(false, dummy, 0, 0, type_byte(), to_world(from), tag));
    st.xfers.push_back(
        xfer(true, dummy, 0, 0, type_byte(), to_world(to), tag));
  }
  return engine_.start_coll(std::move(sched));
}

void Communicator::barrier() {
  Request r = ibarrier();
  engine_.wait(r);
}

// ---------------------------------------------------------------------------
// Bcast
// ---------------------------------------------------------------------------

void Communicator::emit_bcast_binomial(CollSchedule& sched, int tag_base,
                                       const mem::Buffer& buf,
                                       std::size_t offset, std::size_t count,
                                       const Datatype& type, int root) {
  const int tag = tag_base + kPhaseBcastTree;
  // Binomial tree rooted at `root`, computed in root-relative rank space.
  const int vrank = (rank() - root + size()) % size();
  int mask = 1;
  while (mask < size()) {
    if (vrank & mask) {
      const int src = ((vrank - mask) + root) % size();
      add_stage(sched).xfers.push_back(
          xfer(false, buf, offset, count, type, to_world(src), tag));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size()) {
      const int dst = ((vrank + mask) + root) % size();
      // One send per stage: children are fed sequentially, like the
      // blocking tree's send loop.
      add_stage(sched).xfers.push_back(
          xfer(true, buf, offset, count, type, to_world(dst), tag));
    }
    mask >>= 1;
  }
}

void Communicator::emit_bcast_scatter_ag(CollSchedule& sched, int tag_base,
                                         const mem::Buffer& buf,
                                         std::size_t offset,
                                         std::size_t count,
                                         const Datatype& type, int root) {
  // van de Geijn: binomial scatter of per-rank blocks, then a pipelined
  // ring allgather — the full message crosses each rank's links ~twice
  // instead of log2(P) times. Everything runs in root-relative vrank
  // space; block v belongs to vrank v.
  const int P = size();
  const int vrank = (rank() - root + P) % P;
  const auto real = [&](int v) { return ((v % P) + P + root) % P; };
  const BlockPart part(count, P);
  const std::size_t es = type.size();
  const int stag = tag_base + kPhaseScatter;

  // Scatter: the first set bit of vrank is the subtree this rank roots;
  // it receives blocks [vrank, vrank+mask) and forwards sub-halves.
  int mask = 1;
  while (mask < P) {
    if (vrank & mask) {
      const int hi = std::min(vrank + mask, P);
      add_stage(sched).xfers.push_back(
          xfer(false, buf, offset + part.off[vrank] * es,
               part.range(vrank, hi), type, to_world(real(vrank - mask)),
               stag));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < P) {
      const int lo = vrank + mask;
      const int hi = std::min(vrank + 2 * mask, P);
      add_stage(sched).xfers.push_back(
          xfer(true, buf, offset + part.off[lo] * es, part.range(lo, hi),
               type, to_world(real(lo)), stag));
    }
    mask >>= 1;
  }

  const std::size_t seg_elems =
      std::max<std::size_t>(1, engine_.coll_tuning().segment_bytes / es);
  emit_ag_ring(sched, buf, offset, part, type, seg_elems, vrank,
               real(vrank + 1), real(vrank - 1), tag_base + kPhaseAgRing);
}

Request Communicator::ibcast(const mem::Buffer& buf, std::size_t offset,
                             std::size_t count, const Datatype& type,
                             int root) {
  if (size() == 1 || count == 0) return engine_.completed_request();
  const std::size_t bytes = count * type.size();
  const CollAlgo algo = select_bcast(engine_.coll_tuning(), bytes, size());
  auto sched = std::make_shared<CollSchedule>();
  sched->comm_id = id_;
  sched->bytes = bytes;
  const int tag_base = next_coll_tag_base();
  sched->tag_base = tag_base;
  if (algo == CollAlgo::ScatterAllgather) {
    emit_bcast_scatter_ag(*sched, tag_base, buf, offset, count, type, root);
    sched->algo_counter = &engine_.coll_stats().coll_bcast_scatter_ag;
  } else {
    emit_bcast_binomial(*sched, tag_base, buf, offset, count, type, root);
    sched->algo_counter = &engine_.coll_stats().coll_bcast_binomial;
  }
  if (sim::Tracer::current()) {
    sched->label = std::string("bcast.") + coll_algo_name(algo) + " " +
                   std::to_string(bytes) + "B";
  }
  return engine_.start_coll(std::move(sched));
}

void Communicator::bcast(const mem::Buffer& buf, std::size_t offset,
                         std::size_t count, const Datatype& type, int root) {
  Request r = ibcast(buf, offset, count, type, root);
  engine_.wait(r);
}

// ---------------------------------------------------------------------------
// Reduce
// ---------------------------------------------------------------------------

void Communicator::reduce(const mem::Buffer& sendbuf, std::size_t soff,
                          const mem::Buffer& recvbuf, std::size_t roff,
                          std::size_t count, const Datatype& type, Op op,
                          int root) {
  if (!type.is_contiguous()) {
    throw MpiError("reduce: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  // Accumulator starts as my contribution.
  mem::Buffer acc = alloc(std::max<std::size_t>(bytes, 1));
  std::memcpy(acc.data(), sendbuf.data() + soff, bytes);

  // Binomial reduction in root-relative space.
  const int vrank = (rank() - root + size()) % size();
  mem::Buffer tmp = alloc(std::max<std::size_t>(bytes, 1));
  for (int mask = 1; mask < size(); mask <<= 1) {
    if (vrank & mask) {
      const int dst = ((vrank - mask) + root) % size();
      send(acc, 0, count, type, dst, kTagReduce);
      break;
    }
    if (vrank + mask < size()) {
      const int src = ((vrank + mask) + root) % size();
      recv(tmp, 0, count, type, src, kTagReduce);
      engine_.combine(op, type, acc, 0, tmp, 0, count);
    }
  }
  if (rank() == root) {
    std::memcpy(recvbuf.data() + roff, acc.data(), bytes);
  }
  free(tmp);
  free(acc);
}

// ---------------------------------------------------------------------------
// Allreduce
// ---------------------------------------------------------------------------

void Communicator::emit_allreduce_rd(CollSchedule& sched, int tag_base,
                                     const mem::Buffer& recvbuf,
                                     std::size_t roff, std::size_t count,
                                     const Datatype& type, Op op) {
  const int P = size();
  const std::size_t bytes = count * type.size();
  const int tag_fold = tag_base + kPhaseFold;
  const int tag_rd = tag_base + kPhaseRdRound;
  mem::Buffer tmp = alloc(std::max<std::size_t>(bytes, 1));
  sched.owned.push_back(tmp);

  // Fold to a power of two: the first 2*rem ranks pair up, evens ship
  // their vector to the odd partner and sit out the doubling rounds.
  const int pof2 = floor_pow2(P);
  const int rem = P - pof2;
  int newrank;
  if (rank() < 2 * rem) {
    if (rank() % 2 == 0) {
      add_stage(sched).xfers.push_back(xfer(
          true, recvbuf, roff, count, type, to_world(rank() + 1), tag_fold));
      newrank = -1;
    } else {
      CollStage& st = add_stage(sched);
      st.xfers.push_back(
          xfer(false, tmp, 0, count, type, to_world(rank() - 1), tag_fold));
      st.locals.push_back(
          {CollLocal::Kind::Combine, recvbuf, roff, tmp, 0, count, &type, op});
      newrank = rank() / 2;
    }
  } else {
    newrank = rank() - rem;
  }

  if (newrank != -1) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int pn = newrank ^ mask;
      const int peer = pn < rem ? pn * 2 + 1 : pn + rem;
      CollStage& st = add_stage(sched);
      st.xfers.push_back(
          xfer(false, tmp, 0, count, type, to_world(peer), tag_rd));
      st.xfers.push_back(
          xfer(true, recvbuf, roff, count, type, to_world(peer), tag_rd));
      st.locals.push_back(
          {CollLocal::Kind::Combine, recvbuf, roff, tmp, 0, count, &type, op});
    }
  }

  // Unfold: odd partners return the finished vector to the evens.
  if (rank() < 2 * rem) {
    add_stage(sched).xfers.push_back(
        xfer(rank() % 2 != 0, recvbuf, roff, count, type,
             to_world(rank() % 2 == 0 ? rank() + 1 : rank() - 1), tag_fold));
  }
}

void Communicator::emit_allreduce_ring(CollSchedule& sched, int tag_base,
                                       const mem::Buffer& recvbuf,
                                       std::size_t roff, std::size_t count,
                                       const Datatype& type, Op op) {
  const int P = size();
  const std::size_t es = type.size();
  const BlockPart part(count, P);
  const std::size_t seg_elems =
      std::max<std::size_t>(1, engine_.coll_tuning().segment_bytes / es);
  mem::Buffer scratch = alloc(std::max<std::size_t>(2 * seg_elems * es, 1));
  sched.owned.push_back(scratch);

  // Reduce-scatter leaves this rank with block (rank+1) complete — exactly
  // the block the allgather ring starts forwarding.
  const int my_block = (rank() + 1) % P;
  emit_rs_ring(sched, recvbuf, roff, part, type, op, seg_elems, my_block,
               scratch, tag_base + kPhaseRsRing);
  emit_ag_ring(sched, recvbuf, roff, part, type, seg_elems, my_block,
               (rank() + 1) % P, (rank() - 1 + P) % P,
               tag_base + kPhaseAgRing);
}

void Communicator::emit_allreduce_rab(CollSchedule& sched, int tag_base,
                                      const mem::Buffer& recvbuf,
                                      std::size_t roff, std::size_t count,
                                      const Datatype& type, Op op) {
  const int P = size();
  const std::size_t es = type.size();
  const std::size_t bytes = count * es;
  const int tag_fold = tag_base + kPhaseFold;
  const int tag_rd = tag_base + kPhaseRdRound;

  // Fold to a power of two (as in emit_allreduce_rd).
  const int pof2 = floor_pow2(P);
  const int rem = P - pof2;
  int newrank;
  if (rank() < 2 * rem) {
    if (rank() % 2 == 0) {
      add_stage(sched).xfers.push_back(xfer(
          true, recvbuf, roff, count, type, to_world(rank() + 1), tag_fold));
      newrank = -1;
    } else {
      mem::Buffer tmp = alloc(std::max<std::size_t>(bytes, 1));
      sched.owned.push_back(tmp);
      CollStage& st = add_stage(sched);
      st.xfers.push_back(
          xfer(false, tmp, 0, count, type, to_world(rank() - 1), tag_fold));
      st.locals.push_back(
          {CollLocal::Kind::Combine, recvbuf, roff, tmp, 0, count, &type, op});
      newrank = rank() / 2;
    }
  } else {
    newrank = rank() - rem;
  }

  if (newrank != -1) {
    const BlockPart part(count, pof2);
    const std::size_t seg_elems =
        std::max<std::size_t>(1, engine_.coll_tuning().segment_bytes / es);
    mem::Buffer scratch =
        alloc(std::max<std::size_t>(2 * seg_elems * es, 1));
    sched.owned.push_back(scratch);
    const auto peer_of = [&](int pn) {
      return pn < rem ? pn * 2 + 1 : pn + rem;
    };

    // Recursive-halving reduce-scatter: each round trades half of the
    // still-owned block range with the partner and folds the kept half.
    int lo = 0, hi = pof2;
    for (int dist = pof2 / 2; dist >= 1; dist >>= 1) {
      const int peer = peer_of(newrank ^ dist);
      const int mid = lo + (hi - lo) / 2;
      int keep_lo, keep_hi, give_lo, give_hi;
      if ((newrank & dist) == 0) {
        keep_lo = lo, keep_hi = mid, give_lo = mid, give_hi = hi;
      } else {
        keep_lo = mid, keep_hi = hi, give_lo = lo, give_hi = mid;
      }
      CollPipe p;
      p.buf = recvbuf;
      p.base = roff;
      p.out_off = part.off[give_lo];
      p.out_len = part.range(give_lo, give_hi);
      p.in_off = part.off[keep_lo];
      p.in_len = part.range(keep_lo, keep_hi);
      p.type = &type;
      p.has_op = true;
      p.op = op;
      p.seg_elems = seg_elems;
      p.to = to_world(peer);
      p.from = to_world(peer);
      p.tag = tag_rd;
      p.scratch = scratch;
      add_stage(sched).pipe = std::move(p);
      lo = keep_lo;
      hi = keep_hi;
    }

    // Recursive-doubling allgather over the finished blocks: the owned
    // aligned range doubles every round.
    for (int dist = 1; dist < pof2; dist <<= 1) {
      const int peer = peer_of(newrank ^ dist);
      const int base_blk = newrank & ~(dist - 1);
      const int peer_blk = base_blk ^ dist;
      CollStage& st = add_stage(sched);
      st.xfers.push_back(xfer(false, recvbuf,
                              roff + part.off[peer_blk] * es,
                              part.range(peer_blk, peer_blk + dist), type,
                              to_world(peer), tag_rd));
      st.xfers.push_back(xfer(true, recvbuf, roff + part.off[base_blk] * es,
                              part.range(base_blk, base_blk + dist), type,
                              to_world(peer), tag_rd));
    }
  }

  // Unfold the full vector to the folded-out evens.
  if (rank() < 2 * rem) {
    add_stage(sched).xfers.push_back(
        xfer(rank() % 2 != 0, recvbuf, roff, count, type,
             to_world(rank() % 2 == 0 ? rank() + 1 : rank() - 1), tag_fold));
  }
}

void Communicator::emit_allreduce_binomial(CollSchedule& sched, int tag_base,
                                           const mem::Buffer& recvbuf,
                                           std::size_t roff,
                                           std::size_t count,
                                           const Datatype& type, Op op) {
  // The pre-engine path: binomial reduce to rank 0, binomial bcast back
  // out. Kept as the small-comm / forced fallback and as the baseline the
  // bench sweeps against.
  const std::size_t bytes = count * type.size();
  const int tag = tag_base + kPhaseReduceTree;
  // Accumulator starts as my contribution (recvbuf already holds it).
  mem::Buffer acc = alloc(std::max<std::size_t>(bytes, 1));
  std::memcpy(acc.data(), recvbuf.data() + roff, bytes);
  mem::Buffer tmp = alloc(std::max<std::size_t>(bytes, 1));
  sched.owned.push_back(acc);
  sched.owned.push_back(tmp);

  const int vrank = rank();  // root is 0
  for (int mask = 1; mask < size(); mask <<= 1) {
    if (vrank & mask) {
      add_stage(sched).xfers.push_back(
          xfer(true, acc, 0, count, type, to_world(vrank - mask), tag));
      break;
    }
    if (vrank + mask < size()) {
      CollStage& st = add_stage(sched);
      st.xfers.push_back(
          xfer(false, tmp, 0, count, type, to_world(vrank + mask), tag));
      st.locals.push_back(
          {CollLocal::Kind::Combine, acc, 0, tmp, 0, count, &type, op});
    }
  }
  if (rank() == 0) {
    add_stage(sched).locals.push_back(
        {CollLocal::Kind::Copy, recvbuf, roff, acc, 0, bytes, nullptr,
         Op::Sum});
  }
  emit_bcast_binomial(sched, tag_base, recvbuf, roff, count, type, 0);
}

Request Communicator::iallreduce(const mem::Buffer& sendbuf, std::size_t soff,
                                 const mem::Buffer& recvbuf, std::size_t roff,
                                 std::size_t count, const Datatype& type,
                                 Op op) {
  if (!type.is_contiguous()) {
    throw MpiError("allreduce: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  if (recvbuf.data() + roff != sendbuf.data() + soff) {
    std::memcpy(recvbuf.data() + roff, sendbuf.data() + soff, bytes);
  }
  if (size() == 1 || count == 0) return engine_.completed_request();
  if (type.kind() == Datatype::Kind::Opaque) {
    // Same failure the per-element combine would raise, but before any
    // rank communicates, so every rank throws in lockstep.
    throw MpiError("reduce: datatype has no arithmetic kind");
  }

  const CollAlgo algo =
      select_allreduce(engine_.coll_tuning(), bytes, size());
  auto sched = std::make_shared<CollSchedule>();
  sched->comm_id = id_;
  sched->bytes = bytes;
  const int tag_base = next_coll_tag_base();
  sched->tag_base = tag_base;
  Engine::Stats& st = engine_.coll_stats();
  switch (algo) {
    case CollAlgo::Ring:
      emit_allreduce_ring(*sched, tag_base, recvbuf, roff, count, type, op);
      sched->algo_counter = &st.coll_allreduce_ring;
      break;
    case CollAlgo::Rabenseifner:
      emit_allreduce_rab(*sched, tag_base, recvbuf, roff, count, type, op);
      sched->algo_counter = &st.coll_allreduce_rab;
      break;
    case CollAlgo::RecursiveDoubling:
      emit_allreduce_rd(*sched, tag_base, recvbuf, roff, count, type, op);
      sched->algo_counter = &st.coll_allreduce_rd;
      break;
    default:
      emit_allreduce_binomial(*sched, tag_base, recvbuf, roff, count, type,
                              op);
      sched->algo_counter = &st.coll_allreduce_binomial;
      break;
  }
  if (sim::Tracer::current()) {
    sched->label = std::string("allreduce.") + coll_algo_name(algo) + " " +
                   std::to_string(bytes) + "B";
  }
  return engine_.start_coll(std::move(sched));
}

void Communicator::allreduce(const mem::Buffer& sendbuf, std::size_t soff,
                             const mem::Buffer& recvbuf, std::size_t roff,
                             std::size_t count, const Datatype& type, Op op) {
  Request r = iallreduce(sendbuf, soff, recvbuf, roff, count, type, op);
  engine_.wait(r);
}

// ---------------------------------------------------------------------------
// Reduce-scatter-block
// ---------------------------------------------------------------------------

Request Communicator::ireduce_scatter_block(const mem::Buffer& sendbuf,
                                            std::size_t soff,
                                            const mem::Buffer& recvbuf,
                                            std::size_t roff,
                                            std::size_t recvcount,
                                            const Datatype& type, Op op) {
  if (!type.is_contiguous()) {
    throw MpiError("reduce_scatter_block: derived datatypes not supported");
  }
  const int P = size();
  const std::size_t es = type.size();
  const std::size_t block_bytes = recvcount * es;
  if (P == 1) {
    std::memcpy(recvbuf.data() + roff, sendbuf.data() + soff, block_bytes);
    return engine_.completed_request();
  }
  if (recvcount == 0) return engine_.completed_request();
  if (type.kind() == Datatype::Kind::Opaque) {
    throw MpiError("reduce: datatype has no arithmetic kind");
  }

  // Ring reduce-scatter over a working copy of the full input, targeting
  // block `rank` (reduce_scatter_block semantics), then lift it out.
  const std::size_t count = recvcount * static_cast<std::size_t>(P);
  const BlockPart part(count, P);
  const std::size_t seg_elems =
      std::max<std::size_t>(1, engine_.coll_tuning().segment_bytes / es);
  mem::Buffer work = alloc(count * es);
  std::memcpy(work.data(), sendbuf.data() + soff, count * es);
  mem::Buffer scratch = alloc(std::max<std::size_t>(2 * seg_elems * es, 1));

  auto sched = std::make_shared<CollSchedule>();
  sched->comm_id = id_;
  sched->bytes = block_bytes;
  sched->owned.push_back(work);
  sched->owned.push_back(scratch);
  const int tag_base = next_coll_tag_base();
  sched->tag_base = tag_base;
  emit_rs_ring(*sched, work, 0, part, type, op, seg_elems, rank(), scratch,
               tag_base + kPhaseRsRing);
  add_stage(*sched).locals.push_back(
      {CollLocal::Kind::Copy, recvbuf, roff, work, part.off[rank()] * es,
       block_bytes, nullptr, Op::Sum});
  if (sim::Tracer::current()) {
    sched->label = "reduce_scatter.ring " + std::to_string(count * es) + "B";
  }
  return engine_.start_coll(std::move(sched));
}

void Communicator::reduce_scatter_block(const mem::Buffer& sendbuf,
                                        std::size_t soff,
                                        const mem::Buffer& recvbuf,
                                        std::size_t roff,
                                        std::size_t recvcount,
                                        const Datatype& type, Op op) {
  Request r =
      ireduce_scatter_block(sendbuf, soff, recvbuf, roff, recvcount, type, op);
  engine_.wait(r);
}

// ---------------------------------------------------------------------------
// Gather / scatter
// ---------------------------------------------------------------------------

void Communicator::gather(const mem::Buffer& sendbuf, std::size_t soff,
                          std::size_t count, const Datatype& type,
                          const mem::Buffer& recvbuf, std::size_t roff,
                          int root) {
  if (!type.is_contiguous()) {
    throw MpiError("gather: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  if (rank() == root) {
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == rank()) {
        std::memcpy(recvbuf.data() + roff + r * bytes, sendbuf.data() + soff,
                    bytes);
        continue;
      }
      reqs.push_back(irecv(recvbuf, roff + r * bytes, bytes, type_byte(), r,
                           kTagGather));
    }
    waitall(reqs);
  } else {
    send(sendbuf, soff, count, type, root, kTagGather);
  }
}

void Communicator::scatter(const mem::Buffer& sendbuf, std::size_t soff,
                           std::size_t count, const Datatype& type,
                           const mem::Buffer& recvbuf, std::size_t roff,
                           int root) {
  if (!type.is_contiguous()) {
    throw MpiError("scatter: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  if (rank() == root) {
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == rank()) {
        std::memcpy(recvbuf.data() + roff,
                    sendbuf.data() + soff + r * bytes, bytes);
        continue;
      }
      reqs.push_back(isend(sendbuf, soff + r * bytes, bytes, type_byte(), r,
                           kTagScatter));
    }
    waitall(reqs);
  } else {
    recv(recvbuf, roff, count, type, root, kTagScatter);
  }
}

// ---------------------------------------------------------------------------
// Allgather
// ---------------------------------------------------------------------------

void Communicator::emit_allgather_rd(CollSchedule& sched, int tag_base,
                                     const mem::Buffer& recvbuf,
                                     std::size_t roff, std::size_t count,
                                     const Datatype& type) {
  // Power-of-two comms only (the selection layer guarantees it): the owned
  // aligned run of blocks doubles every round.
  const int P = size();
  const std::size_t es = type.size();
  const int tag = tag_base + kPhaseRdRound;
  for (int dist = 1; dist < P; dist <<= 1) {
    const int peer = rank() ^ dist;
    const int base_blk = rank() & ~(dist - 1);
    const int peer_blk = base_blk ^ dist;
    CollStage& st = add_stage(sched);
    st.xfers.push_back(xfer(false, recvbuf, roff + peer_blk * count * es,
                            dist * count, type, to_world(peer), tag));
    st.xfers.push_back(xfer(true, recvbuf, roff + base_blk * count * es,
                            dist * count, type, to_world(peer), tag));
  }
}

Request Communicator::iallgather(const mem::Buffer& sendbuf, std::size_t soff,
                                 std::size_t count, const Datatype& type,
                                 const mem::Buffer& recvbuf,
                                 std::size_t roff) {
  if (!type.is_contiguous()) {
    throw MpiError("allgather: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  std::memcpy(recvbuf.data() + roff + rank() * bytes, sendbuf.data() + soff,
              bytes);
  if (size() == 1 || count == 0) return engine_.completed_request();

  const CollAlgo algo =
      select_allgather(engine_.coll_tuning(), bytes, size());
  auto sched = std::make_shared<CollSchedule>();
  sched->comm_id = id_;
  sched->bytes = bytes;
  const int tag_base = next_coll_tag_base();
  sched->tag_base = tag_base;
  if (algo == CollAlgo::RecursiveDoubling) {
    emit_allgather_rd(*sched, tag_base, recvbuf, roff, count, type);
    sched->algo_counter = &engine_.coll_stats().coll_allgather_rd;
  } else {
    // Pipelined ring over uniform per-rank blocks.
    const std::size_t seg_elems =
        std::max<std::size_t>(1, engine_.coll_tuning().segment_bytes /
                                     type.size());
    // Uniform partition: count*P splits evenly, so off[b] == b*count.
    const BlockPart part(count * static_cast<std::size_t>(size()), size());
    emit_ag_ring(*sched, recvbuf, roff, part, type, seg_elems, rank(),
                 (rank() + 1) % size(), (rank() - 1 + size()) % size(),
                 tag_base + kPhaseAgRing);
    sched->algo_counter = &engine_.coll_stats().coll_allgather_ring;
  }
  if (sim::Tracer::current()) {
    sched->label = std::string("allgather.") + coll_algo_name(algo) + " " +
                   std::to_string(bytes) + "B/rank";
  }
  return engine_.start_coll(std::move(sched));
}

void Communicator::allgather(const mem::Buffer& sendbuf, std::size_t soff,
                             std::size_t count, const Datatype& type,
                             const mem::Buffer& recvbuf, std::size_t roff) {
  Request r = iallgather(sendbuf, soff, count, type, recvbuf, roff);
  engine_.wait(r);
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

void Communicator::scan(const mem::Buffer& sendbuf, std::size_t soff,
                        const mem::Buffer& recvbuf, std::size_t roff,
                        std::size_t count, const Datatype& type, Op op) {
  if (!type.is_contiguous()) {
    throw MpiError("scan: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  // Linear pipeline: receive the prefix from rank-1, fold my contribution,
  // pass it on. O(P) latency but exact left-to-right operator order.
  std::memcpy(recvbuf.data() + roff, sendbuf.data() + soff, bytes);
  if (rank() > 0) {
    mem::Buffer prefix = alloc(std::max<std::size_t>(bytes, 1));
    recv(prefix, 0, count, type, rank() - 1, kTagScan);
    // recv = prefix OP mine, keeping operand order (prefix first).
    engine_.combine(op, type, prefix, 0, recvbuf, roff, count);
    std::memcpy(recvbuf.data() + roff, prefix.data(), bytes);
    free(prefix);
  }
  if (rank() + 1 < size()) {
    send(recvbuf, roff, count, type, rank() + 1, kTagScan);
  }
}

// ---------------------------------------------------------------------------
// Gatherv / scatterv / alltoall
// ---------------------------------------------------------------------------

void Communicator::gatherv(const mem::Buffer& sendbuf, std::size_t soff,
                           std::size_t count, const Datatype& type,
                           const mem::Buffer& recvbuf, std::size_t roff,
                           std::span<const std::size_t> counts,
                           std::span<const std::size_t> displs, int root) {
  if (!type.is_contiguous()) {
    throw MpiError("gatherv: derived datatypes not supported");
  }
  if (rank() == root) {
    if (static_cast<int>(counts.size()) != size() ||
        static_cast<int>(displs.size()) != size()) {
      throw MpiError("gatherv: counts/displs must have one entry per rank");
    }
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      const std::size_t off = roff + displs[r] * type.size();
      if (r == rank()) {
        std::memcpy(recvbuf.data() + off, sendbuf.data() + soff,
                    counts[r] * type.size());
        continue;
      }
      reqs.push_back(irecv(recvbuf, off, counts[r] * type.size(),
                           type_byte(), r, kTagGatherv));
    }
    waitall(reqs);
  } else {
    send(sendbuf, soff, count, type, root, kTagGatherv);
  }
}

void Communicator::scatterv(const mem::Buffer& sendbuf, std::size_t soff,
                            std::span<const std::size_t> counts,
                            std::span<const std::size_t> displs,
                            const Datatype& type, const mem::Buffer& recvbuf,
                            std::size_t roff, std::size_t count, int root) {
  if (!type.is_contiguous()) {
    throw MpiError("scatterv: derived datatypes not supported");
  }
  if (rank() == root) {
    if (static_cast<int>(counts.size()) != size() ||
        static_cast<int>(displs.size()) != size()) {
      throw MpiError("scatterv: counts/displs must have one entry per rank");
    }
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      const std::size_t off = soff + displs[r] * type.size();
      if (r == rank()) {
        std::memcpy(recvbuf.data() + roff, sendbuf.data() + off,
                    counts[r] * type.size());
        continue;
      }
      reqs.push_back(isend(sendbuf, off, counts[r] * type.size(),
                           type_byte(), r, kTagScatterv));
    }
    waitall(reqs);
  } else {
    recv(recvbuf, roff, count, type, root, kTagScatterv);
  }
}

void Communicator::alltoall(const mem::Buffer& sendbuf, std::size_t soff,
                            std::size_t count, const Datatype& type,
                            const mem::Buffer& recvbuf, std::size_t roff) {
  if (!type.is_contiguous()) {
    throw MpiError("alltoall: derived datatypes not supported");
  }
  const std::size_t bytes = count * type.size();
  // Pairwise exchange with rotating partners; self block is a local copy.
  std::memcpy(recvbuf.data() + roff + rank() * bytes,
              sendbuf.data() + soff + rank() * bytes, bytes);
  for (int step = 1; step < size(); ++step) {
    const int to = (rank() + step) % size();
    const int from = (rank() - step + size()) % size();
    sendrecv(sendbuf, soff + to * bytes, bytes, type_byte(), to, kTagAlltoall,
             recvbuf, roff + from * bytes, bytes, type_byte(), from,
             kTagAlltoall);
  }
}

}  // namespace dcfa::mpi
