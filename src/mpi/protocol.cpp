#include <cassert>
#include <cstring>

#include "mpi/engine.hpp"
#include "mpi/wire.hpp"
#include "sim/log.hpp"

namespace dcfa::mpi {

namespace {
/// Real-bytes pointer to the request's user window.
std::byte* user_ptr(const std::shared_ptr<RequestState>& req) {
  return req->buffer.data() + req->offset;
}
}  // namespace

void Engine::charge_pack(std::size_t bytes) {
  const bool on_phi = ib_->data_domain() == mem::Domain::PhiGddr;
  ib_->process().wait(sim::transfer_time(
      bytes, on_phi ? platform_.phi_pack_gbps : platform_.host_pack_gbps));
}

// ---------------------------------------------------------------------------
// Posting
// ---------------------------------------------------------------------------

Request Engine::isend(const mem::Buffer& buf, std::size_t offset,
                      std::size_t count, const Datatype& type, int dst,
                      int tag, std::uint32_t comm_id, bool sync) {
  if (dst < 0 || dst >= nranks_) throw MpiError("isend: bad destination");
  if (tag < 0) throw MpiError("isend: negative tag");
  const std::size_t bytes = count * type.size();
  if (offset + count * type.extent() > buf.size() && count > 0) {
    throw MpiError("isend: window escapes buffer");
  }

  // Drain incoming traffic first: an RTR (or the whole message) may already
  // be waiting in the ring, which decides the protocol below.
  progress();

  auto st = std::make_shared<RequestState>();
  st->posted_at = ib_->process().now();
  st->kind = RequestState::Kind::Send;
  st->peer = dst;
  st->tag = tag;
  st->comm_id = comm_id;
  st->bytes = bytes;
  st->buffer = buf;
  st->offset = offset;
  st->type = &type;
  st->count = count;

  // Non-contiguous layouts are packed up front — by the host CPU when the
  // DCFA-MPI CMD delegation is enabled (the paper's Section VI future
  // work), otherwise locally on this core.
  if (!type.is_contiguous() && count > 0) {
    if (dst == rank_ || !try_offload_pack(st)) {
      st->pack_buf = ib_->alloc_buffer(std::max<std::size_t>(bytes, 1), 64);
      st->has_pack = true;
      type.pack(user_ptr(st), st->pack_buf.data(), count);
      charge_pack(bytes);
    }
  }

  st->sync_mode = sync;
  // ULFM posting guards: operations on a revoked communicator or toward a
  // known-dead rank are born failed instead of being sequenced (keeping the
  // channel ledgers clean — no seq is ever burned on a doomed op).
  if (comm_revoked(comm_id)) {
    fail(st, "isend on revoked communicator", MpiErrc::Revoked);
    return Request(st);
  }
  if (dst != rank_ && rank_failed(dst)) {
    fail(st, "isend to failed rank", MpiErrc::ProcFailed, dst);
    return Request(st);
  }
  // DcfaRace: the user window is read by the transport until the request
  // completes; a concurrent unordered write to it is a buffer-reuse race.
  // Packed (non-contiguous) sends snapshot into pack_buf above, so the
  // user window is free the moment isend returns — not tracked.
  if (!st->has_pack && bytes > 0) {
    st->race_id = chk().race_begin(sim::CheckKind::RaceBufferReuse, rank_,
                                   rank_, buf.addr() + offset, bytes,
                                   sim::Checker::AccessOp::Read,
                                   "isend buffer");
  }
  if (dst == rank_) {
    self_send(st);
  } else {
    Endpoint& ep = endpoint(dst);
    Channel& ch = channel(ep, comm_id, tag);
    st->seq = ch.next_send_seq++;
    chk().send_seq_assigned(rank_, dst, comm_id, tag, st->seq);
    st->seq_assigned = true;
    ch.sends[st->seq] = st;
    start_send(st);
  }
  return Request(st);
}

std::optional<Status> Engine::iprobe(int src, int tag,
                                     std::uint32_t comm_id) {
  // A probe costs real cycles even when it finds nothing — and charging
  // them is what lets an application-level iprobe spin loop make progress
  // at all in the cooperative simulation.
  const bool on_phi = ib_->data_domain() == mem::Domain::PhiGddr;
  ib_->process().wait(on_phi ? platform_.phi_poll_overhead
                             : platform_.host_poll_overhead);
  progress();
  // Deferred wildcard receives are ahead of any probe in matching order;
  // while the lock holds, a probe must not report their packets.
  auto crit = comm_recv_.find(comm_id);
  if (crit != comm_recv_.end() && !crit->second.deferred.empty()) {
    return std::nullopt;
  }
  for (int s = 0; s < nranks_; ++s) {
    if (src != kAnySource && src != s) continue;
    if (s == rank_) {
      for (auto& [key, sc] : self_channels_) {
        if (key.first != comm_id) continue;
        if (tag == kAnyTag && key.second >= kInternalTagBase) continue;
        if (tag != kAnyTag && tag != key.second) continue;
        auto it = sc.arrived.find(sc.next_assign_seq);
        if (it != sc.arrived.end()) {
          return Status{s, key.second, it->second.bytes};
        }
      }
      continue;
    }
    auto eit = endpoints_.find(s);
    if (eit == endpoints_.end()) continue;
    for (auto& [key, ch] : eit->second.channels) {
      if (key.first != comm_id) continue;
      if (tag == kAnyTag && key.second >= kInternalTagBase) continue;
      if (tag != kAnyTag && tag != key.second) continue;
      auto it = ch.arrived.find(ch.next_assign_seq);
      if (it != ch.arrived.end()) {
        return Status{s, key.second,
                      static_cast<std::size_t>(it->second.hdr.msg_bytes)};
      }
    }
  }
  return std::nullopt;
}

Status Engine::probe(int src, int tag, std::uint32_t comm_id) {
  for (;;) {
    wake_pending_ = false;
    if (auto st = iprobe(src, tag, comm_id)) return *st;
    if (!wake_pending_) ib_->process().wait_on(wake_);
  }
}

Request Engine::irecv(const mem::Buffer& buf, std::size_t offset,
                      std::size_t count, const Datatype& type, int src,
                      int tag, std::uint32_t comm_id) {
  if (src != kAnySource && (src < 0 || src >= nranks_)) {
    throw MpiError("irecv: bad source");
  }
  if (tag != kAnyTag && tag < 0) throw MpiError("irecv: negative tag");
  const std::size_t bytes = count * type.size();
  if (offset + count * type.extent() > buf.size() && count > 0) {
    throw MpiError("irecv: window escapes buffer");
  }

  progress();

  auto st = std::make_shared<RequestState>();
  st->posted_at = ib_->process().now();
  st->kind = RequestState::Kind::Recv;
  st->phase = RequestState::Phase::WaitingPacket;
  st->peer = src;
  st->tag = tag;
  st->comm_id = comm_id;
  st->bytes = bytes;
  st->buffer = buf;
  st->offset = offset;
  st->type = &type;
  st->count = count;
  if (!type.is_contiguous() && count > 0) {
    st->pack_buf = ib_->alloc_buffer(std::max<std::size_t>(bytes, 1), 64);
    st->has_pack = true;
  }

  if (comm_revoked(comm_id)) {
    fail(st, "irecv on revoked communicator", MpiErrc::Revoked);
    return Request(st);
  }
  if (src != kAnySource && src != rank_ && rank_failed(src)) {
    fail(st, "irecv from failed rank", MpiErrc::ProcFailed, src);
    return Request(st);
  }
  // DcfaRace: the transport writes the user window until completion (the
  // self path below can complete synchronously, so open the access first).
  // Non-contiguous receives land in pack_buf and only touch the user
  // window at unpack inside the completion funnel — not tracked.
  if (!st->has_pack && bytes > 0) {
    st->race_id = chk().race_begin(sim::CheckKind::RaceBufferReuse, rank_,
                                   rank_, buf.addr() + offset, bytes,
                                   sim::Checker::AccessOp::Write,
                                   "irecv buffer");
  }

  CommRecv& cr = comm_recv_[comm_id];
  const bool wildcard = src == kAnySource || tag == kAnyTag;
  if (!cr.deferred.empty()) {
    // A wildcard request ahead of us holds the sequence lock — the paper's
    // "all the sequences for receive requests will be locked".
    cr.deferred.push_back(st);
    return Request(st);
  }
  if (wildcard) {
    const auto match = find_wildcard_match(st);
    if (!match) {
      cr.deferred.push_back(st);  // lock engages
    } else if (match->src == rank_) {
      self_activate_recv(st, match->tag);
    } else {
      Endpoint& ep = endpoint(match->src);
      Channel& ch = channel(ep, comm_id, match->tag);
      st->seq = ch.next_assign_seq++;
      chk().recv_seq_assigned(rank_, match->src, comm_id, match->tag,
                              st->seq);
      st->seq_assigned = true;
      activate_recv(ep, ch, st);
    }
  } else if (src == rank_) {
    self_activate_recv(st, tag);
  } else {
    Endpoint& ep = endpoint(src);
    Channel& ch = channel(ep, comm_id, tag);
    st->seq = ch.next_assign_seq++;
    chk().recv_seq_assigned(rank_, src, comm_id, tag, st->seq);
    st->seq_assigned = true;
    activate_recv(ep, ch, st);
  }
  return Request(st);
}

// ---------------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------------

void Engine::start_send(const std::shared_ptr<RequestState>& req) {
  Endpoint& ep = endpoint(req->peer);
  Channel& ch = channel(ep, req->comm_id, req->tag);

  if (req->bytes < eager_threshold() && !req->sync_mode) {
    // A stale RTR may already be waiting (receiver predicted rendezvous);
    // the eager data will satisfy the receive, the RTR is dropped.
    if (ch.arrived_rtr.erase(req->seq) > 0) {
      req->dropped_rtr = true;
      ++stats_.rtrs_dropped;
    }
    send_eager(ep, req);
    return;
  }

  ++stats_.rndv_sends;
  auto rtr_it = ch.arrived_rtr.find(req->seq);
  if (rtr_it != ch.arrived_rtr.end()) {
    // Receiver-first rendezvous: the RTR beat the send.
    PacketHeader rtr = rtr_it->second;
    ch.arrived_rtr.erase(rtr_it);
    rdma_write_to(ep, req, rtr);
    return;
  }
  send_rts(ep, req);
}

void Engine::send_eager(Endpoint& ep, const std::shared_ptr<RequestState>& req) {
  ++stats_.eager_sends;
  tx(ep, [this, &ep, req] {
    PacketHeader hdr;
    hdr.type = PacketType::Eager;
    hdr.src_rank = rank_;
    hdr.tag = req->tag;
    hdr.comm_id = req->comm_id;
    hdr.seq = req->seq;
    hdr.msg_bytes = req->bytes;
    const std::byte* payload =
        req->has_pack ? req->pack_buf.data() : user_ptr(req);
    if (faults_armed_) {
      // Reliable mode: the packet write may be dropped or errored, so MPI
      // completion is deferred to the transport's delivery verdict (CQE
      // success, credit acknowledgement, or budget exhaustion).
      req->phase = RequestState::Phase::EagerSent;
      emit_packet(
          ep, hdr, payload, req->bytes,
          [this, &ep, req](const ib::Wc& wc) {
            Channel& ch = channel(ep, req->comm_id, req->tag);
            ch.sends.erase(req->seq);
            if (wc.status != ib::WcStatus::Success) {
              fail(req, std::string("eager delivery failed after retries: ") +
                            ib::wc_status_name(wc.status));
              return;
            }
            complete(req, rank_, req->tag, req->bytes);
          },
          req);
      return;
    }
    emit_packet(ep, hdr, payload, req->bytes);
    // One-copy semantics: once staged, the user buffer is free — the send
    // is complete for MPI purposes.
    req->phase = RequestState::Phase::EagerSent;
    Channel& ch = channel(ep, req->comm_id, req->tag);
    ch.sends.erase(req->seq);
    complete(req, rank_, req->tag, req->bytes);
  }, req);
}

Engine::Exposure Engine::expose_send_payload(
    const std::shared_ptr<RequestState>& req) {
  if (auto it = packed_.find(req.get()); it != packed_.end()) {
    // Host-packed payload: already dense, already in host DRAM, already
    // registered — nothing left to stage.
    req->used_offload_shadow = true;
    const core::OffloadRegion& r = it->second;
    return Exposure{r.host_addr, r.lkey, r.rkey};
  }
  const mem::Buffer& pbuf = req->has_pack ? req->pack_buf : req->buffer;
  const std::size_t poff = req->has_pack ? 0 : req->offset;

  if (shadow_cache_ && req->bytes >= offload_threshold_ &&
      pbuf.domain() == mem::Domain::PhiGddr) {
    // Offloading send buffer (IV-B4): sync the latest data into the host
    // shadow with the Phi DMA engine, then let the HCA read host memory.
    // If the host delegation definitively failed the shadow registration
    // (after the CMD client's own retries), fall back to exposing the
    // buffer through a plain MR — slower, but the message still flows.
    try {
      const core::OffloadRegion& region = shadow_cache_->get(pbuf);
      phi_->sync_offload_mr(region, pbuf, poff, req->bytes);
      ++stats_.offload_syncs;
      stats_.offload_sync_bytes += req->bytes;
      req->used_offload_shadow = true;
      return Exposure{region.host_addr + poff, region.lkey, region.rkey};
    } catch (const core::CmdError&) {
      ++stats_.offload_fallbacks;
    }
  }
  ib::MemoryRegion* mr = register_window(pbuf);
  if (!options_.mr_cache) req->window_mr = mr;
  return Exposure{pbuf.addr() + poff, mr->lkey(), mr->rkey()};
}

ib::MemoryRegion* Engine::register_window(const mem::Buffer& buf) {
  // A definitive CMD failure on a plain registration has no fallback —
  // surface it as a clean MPI error rather than a transport exception.
  try {
    if (options_.mr_cache) return mr_cache_->get(buf);
    return ib_->reg_mr(pd_, buf,
                       ib::kLocalWrite | ib::kRemoteRead | ib::kRemoteWrite);
  } catch (const core::CmdError& e) {
    throw MpiError(std::string("memory registration failed: ") + e.what());
  }
}

void Engine::release_window(const mem::Buffer& buf, ib::MemoryRegion* mr) {
  (void)buf;
  if (!options_.mr_cache && mr) ib_->dereg_mr(mr);
}

bool Engine::try_offload_pack(const std::shared_ptr<RequestState>& req) {
  if (!options_.offload_datatypes || !phi_) return false;
  if (req->bytes < mpi_offload_threshold_) return false;
  const Datatype& type = *req->type;
  const std::size_t extent_bytes = req->count * type.extent();

  // Stage the whole strided extent into a host scratch buffer with the Phi
  // DMA engine, then let the host CPU pack it densely into a registered
  // host buffer that doubles as the offloading send buffer.
  mem::NodeMemory& node = phi_->node_memory();
  mem::Buffer scratch = node.alloc(mem::Domain::HostDram, extent_bytes, 4096);
  phi_->pcie().dma(ib_->process(), req->buffer.domain(),
                   req->buffer.addr() + req->offset, mem::Domain::HostDram,
                   scratch.addr(), extent_bytes);

  std::vector<core::PackBlock> blocks;
  blocks.reserve(type.blocks().size());
  for (const Datatype::Block& b : type.blocks()) {
    blocks.push_back({b.offset, b.length});
  }
  core::OffloadRegion region;
  try {
    region = phi_->pack_shadow(pd_, scratch.addr(), req->count, type.extent(),
                               req->bytes, blocks);
  } catch (const core::CmdError&) {
    // Host-side pack delegation definitively failed: fall back to packing
    // locally on this core (the caller's non-offloaded path).
    node.space(mem::Domain::HostDram).free(scratch);
    ++stats_.offload_fallbacks;
    return false;
  }
  node.space(mem::Domain::HostDram).free(scratch);
  packed_[req.get()] = region;
  ++stats_.packs_offloaded;
  return true;
}

void Engine::combine(Op op, const Datatype& type, const mem::Buffer& acc,
                     std::size_t acc_off, const mem::Buffer& in,
                     std::size_t in_off, std::size_t count) {
  core::ElemKind kind;
  switch (type.kind()) {
    case Datatype::Kind::Int: kind = core::ElemKind::Int32; break;
    case Datatype::Kind::Int64: kind = core::ElemKind::Int64; break;
    case Datatype::Kind::Float: kind = core::ElemKind::Float; break;
    case Datatype::Kind::Double: kind = core::ElemKind::Double; break;
    default:
      throw MpiError("reduce: datatype has no arithmetic kind");
  }
  core::ReduceFn fn;
  switch (op) {
    case Op::Sum: fn = core::ReduceFn::Sum; break;
    case Op::Prod: fn = core::ReduceFn::Prod; break;
    case Op::Max: fn = core::ReduceFn::Max; break;
    case Op::Min: fn = core::ReduceFn::Min; break;
    default: throw MpiError("reduce: unknown op");
  }
  const std::size_t bytes = count * type.size();

  if (options_.offload_reductions && phi_ && bytes >= mpi_offload_threshold_) {
    // DCFA-MPI CMD ReduceShadow: stage both operands host-side, let the
    // Xeon crunch them, pull the result back (Section VI future work).
    mem::NodeMemory& node = phi_->node_memory();
    mem::Buffer ha = node.alloc(mem::Domain::HostDram, bytes, 4096);
    mem::Buffer hb = node.alloc(mem::Domain::HostDram, bytes, 4096);
    auto& proc = ib_->process();
    phi_->pcie().dma(proc, acc.domain(), acc.addr() + acc_off,
                     mem::Domain::HostDram, ha.addr(), bytes);
    phi_->pcie().dma(proc, in.domain(), in.addr() + in_off,
                     mem::Domain::HostDram, hb.addr(), bytes);
    bool delegated = true;
    try {
      phi_->reduce_shadow(ha.addr(), hb.addr(), count, kind, fn);
    } catch (const core::CmdError&) {
      // Delegation definitively failed: fall through to the local combine.
      ++stats_.offload_fallbacks;
      delegated = false;
    }
    if (delegated) {
      phi_->pcie().dma(proc, mem::Domain::HostDram, ha.addr(), acc.domain(),
                       acc.addr() + acc_off, bytes);
    }
    node.space(mem::Domain::HostDram).free(ha);
    node.space(mem::Domain::HostDram).free(hb);
    if (delegated) {
      ++stats_.reductions_offloaded;
      return;
    }
  }

  // Local combine on the owning core.
  const bool on_phi = ib_->data_domain() == mem::Domain::PhiGddr;
  ib_->process().wait(sim::transfer_time(
      2 * bytes,
      on_phi ? platform_.phi_reduce_gbps : platform_.host_reduce_gbps));
  core::apply_reduce(kind, fn, acc.data() + acc_off, in.data() + in_off,
                     count);
}

void Engine::send_rts(Endpoint& ep, const std::shared_ptr<RequestState>& req) {
  const Exposure e = expose_send_payload(req);
  req->phase = RequestState::Phase::RtsSent;
  ++stats_.sender_first;
  tx(ep, [this, &ep, req, e] {
    emit_control(ep, PacketType::Rts, req, e.addr, e.rkey, req->bytes);
  }, req);
}

void Engine::rdma_write_to(Endpoint& ep,
                           const std::shared_ptr<RequestState>& req,
                           const PacketHeader& rtr) {
  Channel& ch = channel(ep, req->comm_id, req->tag);
  if (req->bytes > rtr.buf_bytes) {
    // Sending more than the receiver posted: MPI error on both ends.
    tx(ep, [this, &ep, req] {
      emit_control(ep, PacketType::Err, req, 0, 0, 0,
                   PacketHeader::kToReceiver);
    }, req);
    ch.sends.erase(req->seq);
    fail(req, "truncation: send of " + std::to_string(req->bytes) +
                  " bytes exceeds receive of " + std::to_string(rtr.buf_bytes));
    return;
  }
  ++stats_.receiver_first;
  const Exposure e = expose_send_payload(req);
  req->phase = RequestState::Phase::WritingData;

  ib::SendWr wr;
  wr.opcode = ib::Opcode::RdmaWrite;
  wr.sg_list = {{e.addr, static_cast<std::uint32_t>(req->bytes), e.lkey}};
  wr.remote_addr = rtr.buf_addr;
  wr.rkey = rtr.rkey;
  post_data_wr(ep, std::move(wr), [this, &ep, req](const ib::Wc& wc) {
    Channel& c = channel(ep, req->comm_id, req->tag);
    c.sends.erase(req->seq);
    if (wc.status != ib::WcStatus::Success) {
      fail(req, std::string("RDMA write failed: ") +
                    ib::wc_status_name(wc.status));
      return;
    }
    release_window(req->has_pack ? req->pack_buf : req->buffer,
                   req->window_mr);
    tx(ep, [this, &ep, req] {
      emit_control(ep, PacketType::Done, req, 0, 0, 0,
                   PacketHeader::kToReceiver);
    }, req);
    complete(req, rank_, req->tag, req->bytes);
  });
}

// ---------------------------------------------------------------------------
// Receive side
// ---------------------------------------------------------------------------

void Engine::activate_recv(Endpoint& ep, Channel& ch,
                           const std::shared_ptr<RequestState>& req) {
  ch.posted[req->seq] = req;

  auto it = ch.arrived.find(req->seq);
  if (it != ch.arrived.end()) {
    ArrivedPacket pkt = std::move(it->second);
    ch.arrived.erase(it);
    if (pkt.hdr.type == PacketType::Eager) {
      deliver_eager(ep, req, pkt.hdr, pkt.payload.data());
    } else {
      assert(pkt.hdr.type == PacketType::Rts);
      start_rdma_read(ep, req, pkt.hdr);
    }
    return;
  }

  if (req->bytes >= eager_threshold()) {
    // Predicted rendezvous: Receiver-First protocol — expose the receive
    // buffer and invite the sender to RDMA-write into it.
    const mem::Buffer& target = req->has_pack ? req->pack_buf : req->buffer;
    const std::size_t toff = req->has_pack ? 0 : req->offset;
    ib::MemoryRegion* mr = register_window(target);
    if (!options_.mr_cache) req->window_mr = mr;
    req->phase = RequestState::Phase::RtrSent;
    // Receiver-First admits this seq here: the data lands by RDMA write and
    // DONE, so no Eager/RTS packet ever reaches the accept ledger for it —
    // and earlier seqs may still be in flight in the ring, so this is a
    // claim, not an in-order accept. If the sender's Eager/RTS crosses the
    // RTR (mis-prediction / Simultaneous), the handlers skip their accept
    // hook for RtrSent.
    chk().packet_claimed(rank_, req->peer, req->comm_id, req->tag, req->seq);
    const mem::SimAddr addr = target.addr() + toff;
    const ib::MKey rkey = mr->rkey();
    const std::uint64_t capacity = req->bytes;
    tx(ep, [this, &ep, req, addr, rkey, capacity] {
      emit_control(ep, PacketType::Rtr, req, addr, rkey, capacity);
    }, req);
  } else {
    req->phase = RequestState::Phase::WaitingPacket;
  }
}

void Engine::deliver_eager(Endpoint& ep,
                           const std::shared_ptr<RequestState>& req,
                           const PacketHeader& hdr, const std::byte* payload) {
  Channel& ch = channel(ep, hdr.comm_id, hdr.tag);
  ch.posted.erase(req->seq);
  if (hdr.msg_bytes > req->bytes) {
    fail(req, "truncation: eager message of " +
                  std::to_string(hdr.msg_bytes) + " bytes exceeds receive of " +
                  std::to_string(req->bytes));
    return;
  }
  if (req->phase == RequestState::Phase::RtrSent) {
    // Sender-Eager / Receiver-Rendezvous mis-prediction: receiver copies the
    // data and completes; the stale RTR is dropped on the sender side.
    ++stats_.eager_mispredicts;
    release_window(req->has_pack ? req->pack_buf : req->buffer,
                   req->window_mr);
  }
  if (hdr.msg_bytes > 0) {
    if (req->type->is_contiguous()) {
      wire::put_bytes(req->buffer, req->offset, payload, hdr.msg_bytes);
      ib_->charge_memcpy(hdr.msg_bytes);
    } else {
      if (hdr.msg_bytes % req->type->size() != 0) {
        fail(req, "eager payload not a whole number of datatype elements");
        return;
      }
      req->type->unpack(payload, user_ptr(req),
                        hdr.msg_bytes / req->type->size());
      charge_pack(hdr.msg_bytes);
    }
  }
  complete(req, hdr.src_rank, hdr.tag, hdr.msg_bytes);
}

void Engine::start_rdma_read(Endpoint& ep,
                             const std::shared_ptr<RequestState>& req,
                             const PacketHeader& rts) {
  Channel& ch = channel(ep, rts.comm_id, rts.tag);
  if (rts.msg_bytes > req->bytes) {
    // Sender-Rendezvous / Receiver-Eager mis-prediction with oversized data:
    // "the receiver will issue an MPI error" (IV-B3).
    ch.posted.erase(req->seq);
    tx(ep, [this, &ep, req] {
      emit_control(ep, PacketType::Err, req, 0, 0, 0);
    }, req);
    fail(req, "truncation: rendezvous message of " +
                  std::to_string(rts.msg_bytes) + " bytes exceeds receive of " +
                  std::to_string(req->bytes));
    return;
  }
  const mem::Buffer& target = req->has_pack ? req->pack_buf : req->buffer;
  const std::size_t toff = req->has_pack ? 0 : req->offset;
  ib::MemoryRegion* mr = register_window(target);
  if (!options_.mr_cache) req->window_mr = mr;
  req->phase = RequestState::Phase::ReadingData;

  ib::SendWr wr;
  wr.opcode = ib::Opcode::RdmaRead;
  wr.sg_list = {{target.addr() + toff,
                 static_cast<std::uint32_t>(rts.msg_bytes), mr->lkey()}};
  wr.remote_addr = rts.buf_addr;
  wr.rkey = rts.rkey;
  const PacketHeader rts_copy = rts;
  post_data_wr(ep, std::move(wr), [this, &ep, req, rts_copy](const ib::Wc& wc) {
    Channel& c = channel(ep, rts_copy.comm_id, rts_copy.tag);
    c.posted.erase(req->seq);
    if (wc.status != ib::WcStatus::Success) {
      fail(req, std::string("RDMA read failed: ") +
                    ib::wc_status_name(wc.status));
      return;
    }
    if (req->has_pack && rts_copy.msg_bytes > 0) {
      req->type->unpack(req->pack_buf.data(), user_ptr(req),
                        rts_copy.msg_bytes / req->type->size());
      charge_pack(rts_copy.msg_bytes);
    }
    release_window(req->has_pack ? req->pack_buf : req->buffer,
                   req->window_mr);
    ++stats_.sender_first;
    tx(ep, [this, &ep, req] {
      emit_control(ep, PacketType::Done, req, 0, 0, 0);
    }, req);
    complete(req, rts_copy.src_rank, rts_copy.tag, rts_copy.msg_bytes);
  });
}

// ---------------------------------------------------------------------------
// Packet dispatch
// ---------------------------------------------------------------------------

void Engine::handle_packet(Endpoint& ep, const PacketHeader& hdr,
                           const std::byte* payload) {
  // The scan_ring epoch fence must have filtered cross-generation traffic
  // before any packet reaches dispatch.
  chk().packet_epoch(rank_, hdr.src_rank, hdr.conn_epoch, ep.epoch);
  if (hdr.type == PacketType::Revoke) {
    // Revocation notices are comm-scoped, not channel-scoped — intercept
    // before channel resolution (resolving would mint a (comm, tag=0)
    // channel that carries no sequenced traffic).
    handle_revoke(hdr);
    return;
  }
  Channel& ch = channel(ep, hdr.comm_id, hdr.tag);
  switch (hdr.type) {
    case PacketType::Eager:
      handle_eager(ep, ch, hdr, payload);
      break;
    case PacketType::Rts:
      handle_rts(ep, ch, hdr);
      break;
    case PacketType::Rtr:
      handle_rtr(ep, ch, hdr);
      break;
    case PacketType::Done:
      handle_done(ep, ch, hdr);
      break;
    case PacketType::Err:
      handle_err(ep, ch, hdr);
      break;
    case PacketType::Revoke:
      break;  // intercepted above
  }
}

void Engine::handle_revoke(const PacketHeader& hdr) {
  // Gossip: first sight poisons local state and re-floods to the rest of
  // the group (revoke_comm is idempotent, so the flood terminates after
  // every member has seen the notice once).
  sim::Log::info(ib_->process().now(), "mpi",
                 "rank %d: revoke notice for comm %u from rank %d", rank_,
                 hdr.comm_id, hdr.src_rank);
  revoke_comm(hdr.comm_id);
}

void Engine::handle_eager(Endpoint& ep, Channel& ch, const PacketHeader& hdr,
                          const std::byte* payload) {
  auto it = ch.posted.find(hdr.seq);
  if (it != ch.posted.end()) {
    if (it->second->phase != RequestState::Phase::RtrSent) {
      chk().packet_accepted(rank_, hdr.src_rank, hdr.comm_id, hdr.tag,
                            hdr.seq);
    }
    auto req = it->second;
    deliver_eager(ep, req, hdr, payload);
    return;
  }
  if (faults_armed_ &&
      (ch.arrived.count(hdr.seq) > 0 || hdr.seq < ch.next_assign_seq)) {
    // Sequence-level duplicate: this seq was already stashed or already
    // delivered to a completed receive. Belt-and-braces on top of the
    // ring_idx staleness check — drop, never deliver twice.
    ++stats_.dup_packets_dropped;
    return;
  }
  chk().packet_accepted(rank_, hdr.src_rank, hdr.comm_id, hdr.tag, hdr.seq);
  // Unexpected: stash a copy (the ring slot is about to be recycled).
  ArrivedPacket pkt;
  pkt.hdr = hdr;
  pkt.payload.assign(payload, payload + hdr.msg_bytes);
  if (hdr.msg_bytes > 0) ib_->charge_memcpy(hdr.msg_bytes);
  ch.arrived.emplace(hdr.seq, std::move(pkt));
  drain_deferred(hdr.comm_id);
}

void Engine::handle_rts(Endpoint& ep, Channel& ch, const PacketHeader& hdr) {
  auto it = ch.posted.find(hdr.seq);
  if (it != ch.posted.end()) {
    if (it->second->phase != RequestState::Phase::RtrSent) {
      chk().packet_accepted(rank_, hdr.src_rank, hdr.comm_id, hdr.tag,
                            hdr.seq);
    }
    auto req = it->second;
    // WaitingPacket: plain Sender-First. RtrSent: Simultaneous Send/Receive
    // — "the receiver will RDMA read by using the buffer data included in
    // the RTS packet following the process of the Sender First protocol".
    start_rdma_read(ep, req, hdr);
    return;
  }
  if (faults_armed_ &&
      (ch.arrived.count(hdr.seq) > 0 || hdr.seq < ch.next_assign_seq)) {
    ++stats_.dup_packets_dropped;
    return;
  }
  chk().packet_accepted(rank_, hdr.src_rank, hdr.comm_id, hdr.tag, hdr.seq);
  ArrivedPacket pkt;
  pkt.hdr = hdr;
  ch.arrived.emplace(hdr.seq, std::move(pkt));
  drain_deferred(hdr.comm_id);
}

void Engine::handle_rtr(Endpoint& ep, Channel& ch, const PacketHeader& hdr) {
  (void)ep;
  auto it = ch.sends.find(hdr.seq);
  if (it == ch.sends.end()) {
    if (hdr.seq >= ch.next_send_seq) {
      // The matching send has not been posted yet: pure Receiver-First.
      ch.arrived_rtr[hdr.seq] = hdr;
    } else {
      // Stale RTR for an already-completed (eager) send. "The sender drops
      // the RTR packet ... thanks to the sequence id, it's sure that this
      // packet is only for the current send request but not for later ones."
      ++stats_.rtrs_dropped;
    }
    return;
  }
  // A rendezvous send is in flight (RTS sent or queued): the sender
  // "disregards the RTR and still waits for the receiver's RDMA read".
  it->second->dropped_rtr = true;
  ++stats_.rtrs_dropped;
}

void Engine::handle_done(Endpoint& ep, Channel& ch, const PacketHeader& hdr) {
  (void)ep;
  if (hdr.dir == PacketHeader::kToSender) {
    // Sender-First completion: receiver finished its RDMA read.
    auto it = ch.sends.find(hdr.seq);
    if (it == ch.sends.end()) {
      if (faults_armed_) {
        // A replayed DONE whose original landed before the fault window
        // closed (connection recovery re-emits every unconfirmed packet).
        ++stats_.dup_packets_dropped;
        return;
      }
      sim::Log::error(ib_->process().now(), "mpi",
                      "rank %d: DONE(to-sender) for unknown seq %llu", rank_,
                      static_cast<unsigned long long>(hdr.seq));
      return;
    }
    auto req = it->second;
    ch.sends.erase(it);
    release_window(req->has_pack ? req->pack_buf : req->buffer,
                   req->window_mr);
    complete(req, rank_, req->tag, req->bytes);
    return;
  }
  if (auto it = ch.posted.find(hdr.seq); it != ch.posted.end()) {
    // Receiver-First completion: sender's RDMA write has landed.
    auto req = it->second;
    ch.posted.erase(it);
    ++stats_.receiver_first;
    if (req->has_pack && hdr.msg_bytes > 0) {
      req->type->unpack(req->pack_buf.data(), user_ptr(req),
                        hdr.msg_bytes / req->type->size());
      charge_pack(hdr.msg_bytes);
    }
    release_window(req->has_pack ? req->pack_buf : req->buffer,
                   req->window_mr);
    complete(req, hdr.src_rank, hdr.tag, hdr.msg_bytes);
    return;
  }
  if (faults_armed_) {
    ++stats_.dup_packets_dropped;
    return;
  }
  sim::Log::error(ib_->process().now(), "mpi",
                  "rank %d: DONE for unknown seq %llu", rank_,
                  static_cast<unsigned long long>(hdr.seq));
}

void Engine::handle_err(Endpoint& ep, Channel& ch, const PacketHeader& hdr) {
  (void)ep;
  if (hdr.dir == PacketHeader::kToSender) {
    if (auto it = ch.sends.find(hdr.seq); it != ch.sends.end()) {
      auto req = it->second;
      ch.sends.erase(it);
      fail(req, "peer aborted message (truncation)");
    }
    return;
  }
  if (auto it = ch.posted.find(hdr.seq); it != ch.posted.end()) {
    auto req = it->second;
    ch.posted.erase(it);
    fail(req, "peer aborted message (truncation)");
  }
}

// ---------------------------------------------------------------------------
// Wildcard sequencing (ANY_SOURCE / ANY_TAG locking)
// ---------------------------------------------------------------------------

std::optional<Engine::WildMatch> Engine::find_wildcard_match(
    const std::shared_ptr<RequestState>& req) {
  // Deterministic scan in (world rank, tag) order, self at its own rank.
  for (int src = 0; src < nranks_; ++src) {
    if (req->peer != kAnySource && req->peer != src) continue;
    if (src == rank_) {
      for (auto& [key, sc] : self_channels_) {
        if (key.first != req->comm_id) continue;
        if (req->tag == kAnyTag && key.second >= kInternalTagBase) continue;
        if (req->tag != kAnyTag && req->tag != key.second) continue;
        auto ait = sc.arrived.find(sc.next_assign_seq);
        if (ait != sc.arrived.end()) return WildMatch{src, key.second};
      }
      continue;
    }
    auto eit = endpoints_.find(src);
    if (eit == endpoints_.end()) continue;
    for (auto& [key, ch] : eit->second.channels) {
      if (key.first != req->comm_id) continue;
      // ANY_TAG never matches internal (collective) traffic — the standard
      // hidden-context separation.
      if (req->tag == kAnyTag && key.second >= kInternalTagBase) continue;
      if (req->tag != kAnyTag && req->tag != key.second) continue;
      auto ait = ch.arrived.find(ch.next_assign_seq);
      if (ait != ch.arrived.end()) return WildMatch{src, key.second};
    }
  }
  return std::nullopt;
}

void Engine::drain_deferred(std::uint32_t comm_id) {
  auto crit = comm_recv_.find(comm_id);
  if (crit == comm_recv_.end()) return;
  CommRecv& cr = crit->second;
  while (!cr.deferred.empty()) {
    auto req = cr.deferred.front();
    const bool wildcard = req->peer == kAnySource || req->tag == kAnyTag;
    if (wildcard) {
      const auto match = find_wildcard_match(req);
      if (!match) return;  // lock holds
      cr.deferred.pop_front();
      if (match->src == rank_) {
        self_activate_recv(req, match->tag);
      } else {
        Endpoint& ep = endpoint(match->src);
        Channel& ch = channel(ep, comm_id, match->tag);
        req->seq = ch.next_assign_seq++;
        chk().recv_seq_assigned(rank_, match->src, comm_id, match->tag,
                                req->seq);
        req->seq_assigned = true;
        activate_recv(ep, ch, req);
      }
    } else {
      cr.deferred.pop_front();
      if (req->peer == rank_) {
        self_activate_recv(req, req->tag);
      } else {
        Endpoint& ep = endpoint(req->peer);
        Channel& ch = channel(ep, comm_id, req->tag);
        req->seq = ch.next_assign_seq++;
        chk().recv_seq_assigned(rank_, req->peer, comm_id, req->tag,
                                req->seq);
        req->seq_assigned = true;
        activate_recv(ep, ch, req);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Self messaging
// ---------------------------------------------------------------------------

void Engine::self_send(const std::shared_ptr<RequestState>& req) {
  SelfChannel& sc = self_channels_[{req->comm_id, req->tag}];
  req->seq = sc.next_send_seq++;
  req->seq_assigned = true;

  SelfMsg msg;
  msg.tag = req->tag;
  msg.bytes = req->bytes;
  const std::byte* src = req->has_pack ? req->pack_buf.data() : user_ptr(req);
  msg.data.assign(src, src + req->bytes);
  if (req->bytes > 0) ib_->charge_memcpy(req->bytes);

  auto it = sc.posted.find(req->seq);
  if (it != sc.posted.end()) {
    auto recv = it->second;
    sc.posted.erase(it);
    self_deliver(recv, std::move(msg));
  } else {
    sc.arrived.emplace(req->seq, std::move(msg));
  }
  complete(req, rank_, req->tag, req->bytes);
  drain_deferred(req->comm_id);
}

void Engine::self_activate_recv(const std::shared_ptr<RequestState>& req,
                                int tag) {
  SelfChannel& sc = self_channels_[{req->comm_id, tag}];
  req->seq = sc.next_assign_seq++;
  req->seq_assigned = true;
  auto it = sc.arrived.find(req->seq);
  if (it != sc.arrived.end()) {
    SelfMsg msg = std::move(it->second);
    sc.arrived.erase(it);
    self_deliver(req, std::move(msg));
  } else {
    sc.posted[req->seq] = req;
  }
}

void Engine::self_deliver(const std::shared_ptr<RequestState>& req,
                          SelfMsg msg) {
  if (msg.bytes > req->bytes) {
    fail(req, "truncation on self channel");
    return;
  }
  if (msg.bytes > 0) {
    if (req->type->is_contiguous()) {
      std::memcpy(user_ptr(req), msg.data.data(), msg.bytes);
    } else {
      req->type->unpack(msg.data.data(), user_ptr(req),
                        msg.bytes / req->type->size());
    }
    ib_->charge_memcpy(msg.bytes);
  }
  complete(req, rank_, msg.tag, msg.bytes);
}

}  // namespace dcfa::mpi
