#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace dcfa::sim {
struct Platform;
}

namespace dcfa::mpi {

/// Collective algorithm identifiers. Not every algorithm applies to every
/// collective; the per-collective selection functions below validate forced
/// choices. See docs/collectives.md for the full (size, comm size) table.
enum class CollAlgo {
  Auto,               ///< selection layer picks by message and comm size
  Binomial,           ///< binomial tree (bcast) / reduce+bcast (allreduce)
  RecursiveDoubling,  ///< log2(P) full-vector rounds (allreduce, allgather)
  Ring,               ///< pipelined ring (allreduce, allgather)
  Rabenseifner,       ///< reduce-scatter + recursive-doubling allgather
  ScatterAllgather,   ///< scatter + ring allgather (van de Geijn bcast)
};

/// Short stable name ("ring", "rab", ...) for stats, traces and knobs.
const char* coll_algo_name(CollAlgo a);

/// Parse a knob value: "auto", "binomial", "rd"/"recursive_doubling",
/// "ring", "rab"/"rabenseifner", "scatter_ag"/"scatter_allgather".
/// Throws MpiError on anything else.
CollAlgo parse_coll_algo(const std::string& s);

/// Per-collective forcing + threshold overrides carried in Engine::Options.
/// Empty strings / nullopt defer to the DCFA_COLL_* environment variables,
/// which in turn defer to the Platform knobs (explicit option > env >
/// platform).
struct CollOverrides {
  std::string allreduce;  ///< forced allreduce algorithm name ("" = unset)
  std::string bcast;      ///< forced bcast algorithm name
  std::string allgather;  ///< forced allgather algorithm name
  std::optional<std::uint64_t> segment_bytes;
  std::optional<std::uint64_t> allreduce_small_max;
  std::optional<std::uint64_t> allreduce_ring_min;
  std::optional<std::uint64_t> bcast_large_min;
};

/// Resolved collective tuning for one engine, fixed at construction.
struct CollTuning {
  CollAlgo allreduce = CollAlgo::Auto;
  CollAlgo bcast = CollAlgo::Auto;
  CollAlgo allgather = CollAlgo::Auto;
  std::uint64_t allreduce_small_max = 0;
  std::uint64_t allreduce_ring_min = 0;
  std::uint64_t bcast_large_min = 0;
  std::uint64_t segment_bytes = 0;
};

/// Resolve the tuning: Options overrides beat DCFA_COLL_ALLREDUCE /
/// DCFA_COLL_BCAST / DCFA_COLL_ALLGATHER / DCFA_COLL_SEGMENT_BYTES /
/// DCFA_COLL_ALLREDUCE_SMALL_MAX / DCFA_COLL_ALLREDUCE_RING_MIN /
/// DCFA_COLL_BCAST_LARGE_MIN, which beat the Platform defaults.
CollTuning resolve_coll_tuning(const sim::Platform& platform,
                               const CollOverrides& overrides);

/// Allreduce selection: recursive doubling below allreduce_small_max,
/// pipelined ring at and above allreduce_ring_min, Rabenseifner in between.
/// Forced Binomial/RecursiveDoubling/Ring/Rabenseifner are honoured for any
/// comm size (non-power-of-two sizes fold; short vectors leave ring blocks
/// empty); anything else throws MpiError.
CollAlgo select_allreduce(const CollTuning& t, std::uint64_t bytes,
                          int comm_size);

/// Bcast selection: binomial tree below bcast_large_min or for comms too
/// small to profit (< 4 ranks), scatter + ring allgather at and above it.
CollAlgo select_bcast(const CollTuning& t, std::uint64_t bytes,
                      int comm_size);

/// Allgather selection: recursive doubling for power-of-two comms with
/// small per-rank blocks (below allreduce_small_max), pipelined ring
/// otherwise. Forcing RecursiveDoubling on a non-power-of-two comm falls
/// back to ring (documented in docs/collectives.md).
CollAlgo select_allgather(const CollTuning& t, std::uint64_t block_bytes,
                          int comm_size);

}  // namespace dcfa::mpi
