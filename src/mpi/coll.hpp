#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mem/memory.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"

namespace dcfa::sim {
struct Platform;
}

namespace dcfa::mpi {

class Datatype;

/// Collective algorithm identifiers. Not every algorithm applies to every
/// collective; the per-collective selection functions below validate forced
/// choices. See docs/collectives.md for the full (size, comm size) table.
enum class CollAlgo {
  Auto,               ///< selection layer picks by message and comm size
  Binomial,           ///< binomial tree (bcast) / reduce+bcast (allreduce)
  RecursiveDoubling,  ///< log2(P) full-vector rounds (allreduce, allgather)
  Ring,               ///< pipelined ring (allreduce, allgather)
  Rabenseifner,       ///< reduce-scatter + recursive-doubling allgather
  ScatterAllgather,   ///< scatter + ring allgather (van de Geijn bcast)
};

/// Short stable name ("ring", "rab", ...) for stats, traces and knobs.
const char* coll_algo_name(CollAlgo a);

/// Parse a knob value: "auto", "binomial", "rd"/"recursive_doubling",
/// "ring", "rab"/"rabenseifner", "scatter_ag"/"scatter_allgather".
/// Throws MpiError on anything else.
CollAlgo parse_coll_algo(const std::string& s);

/// Per-collective forcing + threshold overrides carried in Engine::Options.
/// Empty strings / nullopt defer to the DCFA_COLL_* environment variables,
/// which in turn defer to the Platform knobs (explicit option > env >
/// platform).
struct CollOverrides {
  std::string allreduce;  ///< forced allreduce algorithm name ("" = unset)
  std::string bcast;      ///< forced bcast algorithm name
  std::string allgather;  ///< forced allgather algorithm name
  std::optional<std::uint64_t> segment_bytes;
  std::optional<std::uint64_t> allreduce_small_max;
  std::optional<std::uint64_t> allreduce_ring_min;
  std::optional<std::uint64_t> bcast_large_min;
};

/// Resolved collective tuning for one engine, fixed at construction.
struct CollTuning {
  CollAlgo allreduce = CollAlgo::Auto;
  CollAlgo bcast = CollAlgo::Auto;
  CollAlgo allgather = CollAlgo::Auto;
  std::uint64_t allreduce_small_max = 0;
  std::uint64_t allreduce_ring_min = 0;
  std::uint64_t bcast_large_min = 0;
  std::uint64_t segment_bytes = 0;
};

/// Resolve the tuning: Options overrides beat DCFA_COLL_ALLREDUCE /
/// DCFA_COLL_BCAST / DCFA_COLL_ALLGATHER / DCFA_COLL_SEGMENT_BYTES /
/// DCFA_COLL_ALLREDUCE_SMALL_MAX / DCFA_COLL_ALLREDUCE_RING_MIN /
/// DCFA_COLL_BCAST_LARGE_MIN, which beat the Platform defaults.
CollTuning resolve_coll_tuning(const sim::Platform& platform,
                               const CollOverrides& overrides);

/// Allreduce selection: recursive doubling below allreduce_small_max,
/// pipelined ring at and above allreduce_ring_min, Rabenseifner in between.
/// Forced Binomial/RecursiveDoubling/Ring/Rabenseifner are honoured for any
/// comm size (non-power-of-two sizes fold; short vectors leave ring blocks
/// empty); anything else throws MpiError.
CollAlgo select_allreduce(const CollTuning& t, std::uint64_t bytes,
                          int comm_size);

/// Bcast selection: binomial tree below bcast_large_min or for comms too
/// small to profit (< 4 ranks), scatter + ring allgather at and above it.
CollAlgo select_bcast(const CollTuning& t, std::uint64_t bytes,
                      int comm_size);

/// Allgather selection: recursive doubling for power-of-two comms with
/// small per-rank blocks (below allreduce_small_max), pipelined ring
/// otherwise. Forcing RecursiveDoubling on a non-power-of-two comm falls
/// back to ring (documented in docs/collectives.md).
CollAlgo select_allgather(const CollTuning& t, std::uint64_t block_bytes,
                          int comm_size);

// ---------------------------------------------------------------------------
// Collective schedules (nonblocking collectives engine; docs/collectives.md)
// ---------------------------------------------------------------------------
//
// Each collective compiles into a CollSchedule: an ordered list of stages,
// where a stage is either a set of point-to-point transfers plus local
// copy/combine steps that run once all transfers complete, or a pipelined
// segment exchange (CollPipe) whose send/receive/combine of consecutive
// segments overlap. The engine's progress loop advances every outstanding
// schedule as its transfers complete, so MPI_I*-style collectives make
// progress whenever any request is waited or tested. The blocking
// collectives post the same schedules and simply wait on the result.

/// Tag-space reservation for schedules. Each collective posted on a
/// communicator takes the next window slot (round-robin over
/// kCollSchedWindow slots of kCollSchedPhases tags each), so up to 128
/// collectives can be in flight per communicator before tags recycle —
/// concurrent schedules never match each other's packets. Collectives are
/// posted in the same order on every rank (an MPI requirement), which keeps
/// the slot assignment globally consistent without negotiation.
constexpr int kCollSchedTagBase = kInternalTagBase + 64;
constexpr int kCollSchedPhases = 8;
constexpr int kCollSchedWindow = 128;

/// One point-to-point transfer inside a stage. Peers are world ranks and
/// tags are absolute (the emitter resolves both at build time).
struct CollXfer {
  bool is_send = false;
  mem::Buffer buf;
  std::size_t off = 0;    ///< byte offset into buf
  std::size_t count = 0;  ///< elements of *type
  const Datatype* type = nullptr;
  int peer = 0;
  int tag = 0;
};

/// A local step that runs after the stage's transfers complete.
struct CollLocal {
  enum class Kind { Copy, Combine };
  Kind kind = Kind::Copy;
  mem::Buffer dst;
  std::size_t dst_off = 0;
  mem::Buffer src;
  std::size_t src_off = 0;
  /// Bytes for Copy, elements of *type for Combine.
  std::size_t count = 0;
  const Datatype* type = nullptr;
  Op op = Op::Sum;
};

/// A pipelined segment-exchange stage (one ring / halving step): stream
/// out_len elements at buf[base + out_off*extent] to `to` while receiving
/// in_len elements at in_off from `from`, both split into seg_elems-element
/// segments. With has_op, incoming segments land in the double-buffered
/// scratch and are folded into the in-place block while the next segment is
/// in flight; without it they land directly.
struct CollPipe {
  mem::Buffer buf;
  std::size_t base = 0;
  std::size_t out_off = 0, out_len = 0;  ///< elements
  std::size_t in_off = 0, in_len = 0;
  const Datatype* type = nullptr;
  bool has_op = false;
  Op op = Op::Sum;
  std::size_t seg_elems = 0;
  int to = 0, from = 0;  ///< world ranks
  int tag = 0;
  mem::Buffer scratch;  ///< 2 segments when has_op; unused otherwise

  // Runtime state (owned by the engine's executor).
  bool started = false;
  std::vector<Request> sends;
  std::vector<Request> recvs;
  std::size_t posted = 0;    ///< incoming segments posted so far
  std::size_t combined = 0;  ///< incoming segments folded / checked done
};

/// One schedule stage: either a pipe, or transfers + locals. Stages run
/// strictly in order; the transfers of one stage are all posted together
/// (receives listed before sends, mirroring sendrecv).
struct CollStage {
  std::vector<CollXfer> xfers;
  std::vector<CollLocal> locals;
  std::optional<CollPipe> pipe;
};

/// A compiled collective. Built by the Communicator emitters
/// (collectives.cpp), executed by Engine::progress.
struct CollSchedule {
  std::vector<CollStage> stages;
  /// Temporaries (scratch, accumulators) freed when the schedule completes.
  std::vector<mem::Buffer> owned;
  std::uint32_t comm_id = 0;
  /// Trace span text ("allreduce.ring 1048576B"); built only when a tracer
  /// is active. Empty = no span (barrier).
  std::string label;
  std::size_t bytes = 0;  ///< reported in the completion Status
  /// Per-algorithm Stats counter bumped once at completion (may be null).
  std::uint64_t* algo_counter = nullptr;
  /// Reserved rotating-window tag base (next_coll_tag_base); -1 when the
  /// schedule runs outside the window. DcfaCheck derives the window slot
  /// from it to catch alias bugs.
  int tag_base = -1;

  // Runtime state (owned by the engine's executor).
  /// DcfaCheck schedule id (0 = checker off); see sim/check.hpp.
  std::uint64_t check_id = 0;
  std::shared_ptr<RequestState> req;
  std::size_t stage = 0;
  bool stage_started = false;
  std::vector<Request> outstanding;
};

}  // namespace dcfa::mpi
