#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "dcfa/cmd.hpp"
#include "mpi/communicator.hpp"
#include "offload/offload.hpp"

namespace dcfa::mpi {

/// Which MPI stack a run models — the three systems of the paper's
/// evaluation plus the ablation variant without the offloading send buffer.
enum class MpiMode {
  DcfaPhi,           ///< DCFA-MPI: ranks on the Phi, direct IB via DCFA
  DcfaPhiNoOffload,  ///< DCFA-MPI without the offloading send buffer
  IntelPhi,          ///< 'Intel MPI on Xeon Phi' mode (SCIF/IB-proxy path)
  HostMpi,           ///< host MPI (the YAMPII role; also the substrate of
                     ///< 'Intel MPI on Xeon + offload' harnesses)
};

const char* mode_name(MpiMode mode);

struct RunConfig {
  MpiMode mode = MpiMode::DcfaPhi;
  int nprocs = 2;
  sim::Platform platform{};
  Engine::Options engine_options{};
  /// When non-empty, record a Chrome trace (chrome://tracing / Perfetto)
  /// of the whole run and write it here.
  std::string trace_path;
  /// Fault-injection spec (see docs/faults.md), e.g.
  /// "drop_wc=0.1,err_wc=0.05,cmd_fail=1,cmd_op=offload". Empty = no
  /// faults; the whole stack then runs its zero-overhead default paths.
  std::string fault_spec;
  /// Seed of the injector's private RNG: same spec + same seed + same
  /// program => bit-identical fault sequence, counters and traces.
  std::uint64_t fault_seed = 42;
};

/// Everything a rank body can touch. `world` is the world communicator;
/// `offload` is non-null only for host ranks (the 'Intel MPI on Xeon +
/// offload' baseline drives its card through it).
struct RankCtx {
  Communicator& world;
  sim::Process& proc;
  mem::NodeMemory& memory;
  pcie::PciePort& pcie;
  offload::Engine* offload;
  const sim::Platform& platform;
  int rank;
  int nprocs;

  double wtime() const { return world.wtime(); }
};

/// One simulated cluster run: builds nprocs nodes (host + Phi + HCA +
/// delegation process each), spawns one MPI rank per node in the placement
/// the mode dictates, runs the SPMD body to completion, and reports virtual
/// time. The mpirun/mcexec role of Section IV-B2.
class Runtime {
 public:
  explicit Runtime(RunConfig config);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Run `body` on every rank; returns when the simulation drains.
  /// Exceptions thrown by any rank propagate out. Callable once.
  void run(const std::function<void(RankCtx&)>& body);

  /// Virtual time consumed by the whole run.
  sim::Time elapsed() const;

  /// Aggregated engine statistics per rank (valid after run()).
  const std::vector<Engine::Stats>& rank_stats() const { return stats_; }

  sim::Engine& sim() { return *sim_; }
  const sim::Platform& platform() const { return platform_; }
  /// The run's fault injector (nullptr when RunConfig::fault_spec is
  /// empty); its counters tell tests what was actually injected.
  const sim::FaultInjector* faults() const { return faults_.get(); }
  /// Mutable access for workload harnesses that consult per-step hazards
  /// (FaultInjector::compute_jitter advances the shared RNG/counters).
  sim::FaultInjector* faults_mut() { return faults_.get(); }

 private:
  struct Node {
    Node(sim::Engine& engine, int id, const sim::Platform& platform);
    mem::NodeMemory memory;
    pcie::PciePort pcie;
  };
  /// Per-rank host-delegation attachment (the mcexec/DCFA CMD server pair
  /// comes up once per executable, so co-located ranks each get their own
  /// channel + delegate).
  struct RankSlot {
    RankSlot(sim::Engine& engine, Node& node, const sim::Platform& platform);
    Node& node;
    scif::Channel channel;
    std::optional<core::HostDelegate> delegate;
  };

  std::unique_ptr<verbs::Ib> make_endpoint(sim::Process& proc,
                                           RankSlot& slot);

  RunConfig config_;
  sim::Platform platform_;  ///< possibly adjusted for the mode
  std::unique_ptr<sim::Engine> sim_;
  std::unique_ptr<sim::FaultInjector> faults_;
  std::unique_ptr<ib::Fabric> fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<RankSlot>> slots_;
  std::unique_ptr<Bootstrap> bootstrap_;
  std::vector<Engine::Stats> stats_;
  bool ran_ = false;
};

/// Convenience wrapper: build a Runtime, run `body`, return elapsed virtual
/// time. The workhorse of the benchmark harnesses.
sim::Time run_mpi(RunConfig config, const std::function<void(RankCtx&)>& body);

}  // namespace dcfa::mpi
