#pragma once

#include <list>
#include <map>

#include "dcfa/phi_verbs.hpp"

namespace dcfa::mpi {

/// Cache of offloading send-buffer regions (Section IV-B4). Each user send
/// buffer that crosses the offload threshold gets a host shadow of the same
/// size via reg_offload_mr; reusing the shadow across iterations leaves only
/// the per-send sync_offload_mr DMA on the critical path — which is what
/// makes the 2.8 GB/s of Figure 8 reachable.
class OffloadShadowCache {
 public:
  OffloadShadowCache(core::PhiVerbs& verbs, ib::ProtectionDomain& pd,
                     int max_entries)
      : verbs_(verbs), pd_(pd), max_entries_(max_entries) {}

  OffloadShadowCache(const OffloadShadowCache&) = delete;
  OffloadShadowCache& operator=(const OffloadShadowCache&) = delete;

  /// Shadow region for `buf`, registering one on miss.
  const core::OffloadRegion& get(const mem::Buffer& buf);

  /// Tear down the shadow of `buf` if cached (call before freeing `buf`).
  void invalidate(const mem::Buffer& buf);

  /// Deregister everything; run from Engine::finalize().
  void clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t entries() const { return map_.size(); }

 private:
  struct Entry {
    core::OffloadRegion region;
    std::list<mem::SimAddr>::iterator lru_it;
  };

  core::PhiVerbs& verbs_;
  ib::ProtectionDomain& pd_;
  int max_entries_;
  std::map<mem::SimAddr, Entry> map_;
  std::list<mem::SimAddr> lru_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dcfa::mpi
