#pragma once

#include <cstdint>
#include <list>
#include <map>

#include "verbs/verbs.hpp"

namespace dcfa::mpi {

/// The buffer cache pool of Section IV-B3: "a buffer cache pool was designed
/// for caching the most recently used memory regions", because registering a
/// memory region from the Xeon Phi costs a full CMD offload round trip.
///
/// Keyed by the allocation (its simulated base address); a lookup for any
/// window inside a cached allocation hits. LRU eviction on either entry
/// count or total pinned bytes. Invalidate before freeing a buffer.
class MrCache {
 public:
  MrCache(verbs::Ib& ib, ib::ProtectionDomain& pd, int max_entries,
          std::uint64_t max_bytes)
      : ib_(ib), pd_(pd), max_entries_(max_entries), max_bytes_(max_bytes) {}

  ~MrCache();

  MrCache(const MrCache&) = delete;
  MrCache& operator=(const MrCache&) = delete;

  /// Return an MR covering `buf` (all access rights), registering on miss.
  ib::MemoryRegion* get(const mem::Buffer& buf);

  /// Drop (and deregister) the entry for `buf` if cached. Must be called
  /// before the buffer is freed.
  void invalidate(const mem::Buffer& buf);

  /// Deregister everything. Must run inside the owning process (Phi dereg
  /// takes CMD round trips); Engine::finalize() calls it.
  void clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::size_t entries() const { return map_.size(); }
  std::uint64_t pinned_bytes() const { return pinned_bytes_; }

 private:
  struct Entry {
    ib::MemoryRegion* mr;
    // Captured at registration: if the MR dies behind the cache's back (a
    // buffer freed without invalidate()), `mr` dangles, and the checker
    // hook in get() must not dereference it to learn what key it had.
    std::uint64_t lkey;
    std::uint64_t bytes;
    std::list<mem::SimAddr>::iterator lru_it;
  };

  void evict_one();

  verbs::Ib& ib_;
  ib::ProtectionDomain& pd_;
  int max_entries_;
  std::uint64_t max_bytes_;

  std::map<mem::SimAddr, Entry> map_;
  std::list<mem::SimAddr> lru_;  ///< front = most recent
  std::uint64_t pinned_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dcfa::mpi
