#include "mpi/window.hpp"

#include <cstring>

namespace dcfa::mpi {

Window::Window(Communicator& comm, const mem::Buffer& buf,
               std::size_t offset, std::size_t size)
    : comm_(comm), buf_(buf), offset_(offset), size_(size) {
  if (offset + size > buf.size()) {
    throw MpiError("Window: window escapes buffer");
  }
  mr_ = comm_.engine().expose_window_mr(buf_);

  // Collective exchange of (addr, rkey, size) — the out-of-band step
  // MPI_Win_create performs.
  struct Adv {
    mem::SimAddr addr;
    ib::MKey rkey;
    std::uint64_t size;
  };
  mem::Buffer mine = comm_.alloc(sizeof(Adv));
  mem::Buffer all = comm_.alloc(sizeof(Adv) * comm_.size());
  Adv adv{buf_.addr() + offset_, mr_->rkey(), size_};
  std::memcpy(mine.data(), &adv, sizeof adv);
  comm_.allgather(mine, 0, sizeof(Adv), type_byte(), all, 0);
  remotes_.resize(comm_.size());
  for (int r = 0; r < comm_.size(); ++r) {
    Adv a;
    std::memcpy(&a, all.data() + r * sizeof(Adv), sizeof a);
    remotes_[r] = RemoteWindow{a.addr, a.rkey,
                               static_cast<std::size_t>(a.size)};
  }
  comm_.free(mine);
  comm_.free(all);
}

Window::~Window() {
  // free() is collective and must have been called; a destructor cannot
  // communicate. Tolerate (but do not hide) the leak outside a live run.
}

void Window::free() {
  if (freed_) return;
  fence();
  comm_.engine().release_window_mr(mr_);
  mr_ = nullptr;
  freed_ = true;
}

void Window::check_target(int target, std::size_t bytes,
                          std::size_t disp) const {
  if (freed_) throw MpiError("Window: used after free");
  if (target < 0 || target >= comm_.size()) {
    throw MpiError("Window: bad target rank");
  }
  if (disp + bytes > remotes_[target].size) {
    throw MpiError("Window: access of " + std::to_string(bytes) +
                   " bytes at displacement " + std::to_string(disp) +
                   " escapes the target window of " +
                   std::to_string(remotes_[target].size) + " bytes");
  }
}

void Window::put(const mem::Buffer& src, std::size_t soff, std::size_t bytes,
                 int target, std::size_t disp) {
  check_target(target, bytes, disp);
  if (bytes == 0) return;
  ++outstanding_;
  comm_.engine().rma_write(comm_.world_rank(target), src, soff, bytes,
                           remotes_[target].addr + disp,
                           remotes_[target].rkey,
                           [this] { --outstanding_; });
}

void Window::get(const mem::Buffer& dst, std::size_t doff, std::size_t bytes,
                 int target, std::size_t disp) {
  check_target(target, bytes, disp);
  if (bytes == 0) return;
  ++outstanding_;
  comm_.engine().rma_read(comm_.world_rank(target), dst, doff, bytes,
                          remotes_[target].addr + disp,
                          remotes_[target].rkey,
                          [this] { --outstanding_; });
}

void Window::fence() {
  if (freed_) throw MpiError("Window: fence after free");
  comm_.engine().wait_until([this] { return outstanding_ == 0; });
  comm_.barrier();
}

}  // namespace dcfa::mpi
