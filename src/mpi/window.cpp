#include "mpi/window.hpp"

#include <cstring>

namespace dcfa::mpi {

Window::Window(Communicator& comm, const mem::Buffer& buf,
               std::size_t offset, std::size_t size)
    : Window(comm, buf, offset, size, /*owned=*/false) {}

Window Window::allocate(Communicator& comm, std::size_t size,
                        std::size_t align) {
  return Window(comm, comm.alloc(size > 0 ? size : 1, align), 0, size,
                /*owned=*/true);
}

Window::Window(Communicator& comm, const mem::Buffer& buf,
               std::size_t offset, std::size_t size, bool owned)
    : comm_(comm), buf_(buf), offset_(offset), size_(size), owned_(owned) {
  if (offset + size > buf.size()) {
    throw MpiError("Window: window escapes buffer");
  }
  id_ = comm_.next_win_id();
  mr_ = eng().expose_window_mr(buf_);

  // Register this rank's exposure with the checker's ledger BEFORE the
  // address exchange: an origin can only target us once it has our
  // advertisement, and it can't have that until we contributed to the
  // allgather below — so exposing first makes the ledger entry
  // happens-before every possible remote access.
  chk().rma_exposed(eng().rank(), id_, buf_.addr() + offset_, size_);

  // Collective exchange of (addr, rkey, size) — the out-of-band step
  // MPI_Win_create performs.
  struct Adv {
    mem::SimAddr addr;
    ib::MKey rkey;
    std::uint64_t size;
  };
  mem::Buffer mine = comm_.alloc(sizeof(Adv));
  mem::Buffer all = comm_.alloc(sizeof(Adv) * comm_.size());
  Adv adv{buf_.addr() + offset_, mr_->rkey(), size_};
  std::memcpy(mine.data(), &adv, sizeof adv);
  comm_.allgather(mine, 0, sizeof(Adv), type_byte(), all, 0);
  remotes_.resize(comm_.size());
  for (int r = 0; r < comm_.size(); ++r) {
    Adv a;
    std::memcpy(&a, all.data() + r * sizeof(Adv), sizeof a);
    remotes_[r] = RemoteWindow{a.addr, a.rkey,
                               static_cast<std::size_t>(a.size)};
  }
  comm_.free(mine);
  comm_.free(all);

  // Open the first fence epoch (creation is collective, so it doubles as
  // the opening fence — ops may be issued right away, as they always
  // could).
  chk().win_fence(eng().rank(), id_);
}

Window::~Window() {
  if (freed_) return;
  // free() is collective and must normally be called. But an unwinding
  // fiber (RankKilled / AbandonedProcess) destroys windows it never freed,
  // and a destructor cannot communicate — so release local resources
  // best-effort and swallow every failure: aborting engine teardown from
  // here would take the whole cluster's run down with one rank's leak.
  try {
    for (auto& [target, mode] : locks_) {
      eng().bootstrap().rma_unlock(id_, comm_.world_rank(target),
                                   eng().rank());
    }
    if (lock_all_) {
      for (int r = 0; r < comm_.size(); ++r) {
        eng().bootstrap().rma_unlock(id_, comm_.world_rank(r), eng().rank());
      }
    }
  } catch (...) {}
  try {
    chk().rma_unexposed(eng().rank(), id_);
  } catch (...) {}
  try {
    if (mr_) eng().release_window_mr(mr_);
    mr_ = nullptr;
  } catch (...) {}
  try {
    if (owned_ && buf_.valid()) comm_.free(buf_);
  } catch (...) {}
}

void Window::free() {
  if (freed_) return;
  if (!locks_.empty() || lock_all_) {
    throw MpiError("Window: free with passive epochs still open");
  }
  fence();
  chk().win_freed(eng().rank(), id_);
  chk().rma_unexposed(eng().rank(), id_);
  eng().release_window_mr(mr_);
  mr_ = nullptr;
  if (owned_ && buf_.valid()) comm_.free(buf_);
  freed_ = true;
}

std::size_t Window::check_access(int target, std::size_t count,
                                 const Datatype& type,
                                 std::size_t disp) const {
  if (freed_) throw MpiError("Window: used after free");
  if (target < 0 || target >= comm_.size()) {
    throw MpiError("Window: bad target rank");
  }
  if (!type.is_contiguous()) {
    throw MpiError("Window: RMA requires a contiguous datatype (a strided "
                   "layout would need a remote unpack, and the target is "
                   "passive)");
  }
  const std::size_t bytes = count * type.size();
  if (disp + bytes > remotes_[target].size) {
    throw MpiError("Window: access of " + std::to_string(bytes) +
                   " bytes at displacement " + std::to_string(disp) +
                   " escapes the target window of " +
                   std::to_string(remotes_[target].size) + " bytes");
  }
  // Epoch discipline: inside a passive phase (any lock held), every access
  // must go to a locked target; outside, the ambient fence epoch covers
  // everything (it is open from creation / the last fence()).
  if (!lock_all_ && !locks_.empty() && locks_.count(target) == 0) {
    throw MpiError("Window: access to rank " + std::to_string(target) +
                   " without a lock while a passive epoch is open");
  }
  return bytes;
}

void Window::note_op(int target) {
  ++outstanding_;
  ++pending_[target];
  chk().rma_op(eng().rank(), id_, comm_.world_rank(target));
}

void Window::complete_op(int target) {
  --outstanding_;
  --pending_[target];
  chk().rma_completed(eng().rank(), id_, comm_.world_rank(target));
}

void Window::quiesce(int target) {
  eng().wait_until([this, target] {
    auto it = pending_.find(target);
    return it == pending_.end() || it->second == 0;
  });
}

void Window::put(const mem::Buffer& src, std::size_t soff, std::size_t count,
                 const Datatype& type, int target, std::size_t disp) {
  const std::size_t bytes = check_access(target, count, type, disp);
  if (bytes == 0) return;
  ++eng().coll_stats().rma_puts;
  note_op(target);
  eng().rma_write(comm_.world_rank(target), src, soff, bytes,
                  remotes_[target].addr + disp, remotes_[target].rkey,
                  [this, target] { complete_op(target); });
}

void Window::get(const mem::Buffer& dst, std::size_t doff, std::size_t count,
                 const Datatype& type, int target, std::size_t disp) {
  const std::size_t bytes = check_access(target, count, type, disp);
  if (bytes == 0) return;
  ++eng().coll_stats().rma_gets;
  note_op(target);
  eng().rma_read(comm_.world_rank(target), dst, doff, bytes,
                 remotes_[target].addr + disp, remotes_[target].rkey,
                 [this, target] { complete_op(target); });
}

void Window::accumulate(const mem::Buffer& src, std::size_t soff,
                        std::size_t count, const Datatype& type, Op op,
                        int target, std::size_t disp) {
  const std::size_t bytes = check_access(target, count, type, disp);
  if (bytes == 0) return;
  ++eng().coll_stats().rma_accumulates;
  if (op == Op::Replace) {
    // Element-wise overwrite: exactly a put.
    note_op(target);
    eng().rma_write(comm_.world_rank(target), src, soff, bytes,
                    remotes_[target].addr + disp, remotes_[target].rkey,
                    [this, target] { complete_op(target); });
    return;
  }
  // Get-modify-put: fetch the target elements, combine through the same
  // typed reduction engine the collectives use, write the result back.
  // The fetch blocks (the combine needs the data); the write-back is
  // asynchronous like any other RMA op and completes at the next
  // flush/unlock/fence. Atomicity is the caller's lock discipline. Both
  // halves report AccessOp::Accum so DcfaRace treats concurrent
  // accumulates as commuting while still flagging accum-vs-put overlap.
  const int w = comm_.world_rank(target);
  mem::Buffer tmp = comm_.alloc(bytes);
  bool fetched = false;
  eng().rma_read(w, tmp, 0, bytes, remotes_[target].addr + disp,
                 remotes_[target].rkey, [&fetched] { fetched = true; },
                 sim::Checker::AccessOp::Accum);
  eng().wait_until([&fetched] { return fetched; });
  eng().combine(op, type, tmp, 0, src, soff, count);
  note_op(target);
  eng().rma_write(w, tmp, 0, bytes, remotes_[target].addr + disp,
                  remotes_[target].rkey,
                  [this, target, tmp] {
                    complete_op(target);
                    comm_.free(tmp);
                  },
                  sim::Checker::AccessOp::Accum);
}

Request Window::rput(const mem::Buffer& src, std::size_t soff,
                     std::size_t count, const Datatype& type, int target,
                     std::size_t disp) {
  const std::size_t bytes = check_access(target, count, type, disp);
  auto st = std::make_shared<RequestState>();
  st->kind = RequestState::Kind::Rma;
  st->peer = comm_.world_rank(target);
  st->comm_id = comm_.id();
  st->bytes = bytes;
  if (bytes == 0) {
    st->phase = RequestState::Phase::Complete;
    return Request(st);
  }
  ++eng().coll_stats().rma_puts;
  note_op(target);
  eng().rma_write(st->peer, src, soff, bytes, remotes_[target].addr + disp,
                  remotes_[target].rkey, [this, target, st] {
                    complete_op(target);
                    st->phase = RequestState::Phase::Complete;
                  });
  return Request(st);
}

Request Window::rget(const mem::Buffer& dst, std::size_t doff,
                     std::size_t count, const Datatype& type, int target,
                     std::size_t disp) {
  const std::size_t bytes = check_access(target, count, type, disp);
  auto st = std::make_shared<RequestState>();
  st->kind = RequestState::Kind::Rma;
  st->peer = comm_.world_rank(target);
  st->comm_id = comm_.id();
  st->bytes = bytes;
  if (bytes == 0) {
    st->phase = RequestState::Phase::Complete;
    return Request(st);
  }
  ++eng().coll_stats().rma_gets;
  note_op(target);
  eng().rma_read(st->peer, dst, doff, bytes, remotes_[target].addr + disp,
                 remotes_[target].rkey, [this, target, st] {
                   complete_op(target);
                   st->phase = RequestState::Phase::Complete;
                 });
  return Request(st);
}

void Window::fence() {
  if (freed_) throw MpiError("Window: fence after free");
  if (!locks_.empty() || lock_all_) {
    throw MpiError("Window: fence while passive epochs are open");
  }
  eng().wait_until([this] { return outstanding_ == 0; });
  chk().win_fence(eng().rank(), id_);
  comm_.barrier();
}

void Window::lock(int target, Lock mode) {
  if (freed_) throw MpiError("Window: lock after free");
  if (target < 0 || target >= comm_.size()) {
    throw MpiError("Window: bad lock target");
  }
  if (lock_all_ || locks_.count(target) > 0) {
    throw MpiError("Window: lock on rank " + std::to_string(target) +
                   " already held");
  }
  Engine& e = eng();
  const int w = comm_.world_rank(target);
  const bool excl = mode == Lock::Exclusive;
  bool granted = false;
  // Arbitration runs over the out-of-band lock board; the timed-poll FT
  // wait keeps this live even with no p2p wake source (the holder may be
  // anyone, including a rank we never exchanged a packet with — or a dead
  // one, which adopt_failures resolves by releasing its holds).
  e.wait_until_ft([&] {
    if (e.rank_failed(w) || e.bootstrap().is_dead(w)) return true;
    granted = e.bootstrap().rma_try_lock(id_, w, e.rank(), excl);
    return granted;
  });
  if (!granted) {
    ++e.coll_stats().proc_failed_ops;
    throw MpiError("Window: lock target rank " + std::to_string(target) +
                       " is dead",
                   MpiErrc::ProcFailed, w, comm_.id());
  }
  ++e.coll_stats().rma_locks;
  locks_[target] = mode;
  chk().win_lock(e.rank(), id_, w, excl);
}

void Window::lock_all() {
  if (freed_) throw MpiError("Window: lock_all after free");
  if (lock_all_ || !locks_.empty()) {
    throw MpiError("Window: lock_all while locks are held");
  }
  Engine& e = eng();
  // Shared locks on every target in ascending rank order: the total order
  // makes concurrent lock_all callers deadlock-free.
  for (int r = 0; r < comm_.size(); ++r) {
    const int w = comm_.world_rank(r);
    bool granted = false;
    e.wait_until_ft([&] {
      if (e.rank_failed(w) || e.bootstrap().is_dead(w)) return true;
      granted = e.bootstrap().rma_try_lock(id_, w, e.rank(), false);
      return granted;
    });
    if (!granted) {
      for (int u = 0; u < r; ++u) {
        e.bootstrap().rma_unlock(id_, comm_.world_rank(u), e.rank());
      }
      ++e.coll_stats().proc_failed_ops;
      throw MpiError("Window: lock_all member rank " + std::to_string(r) +
                         " is dead",
                     MpiErrc::ProcFailed, w, comm_.id());
    }
  }
  ++e.coll_stats().rma_locks;
  lock_all_ = true;
  chk().win_lock_all(e.rank(), id_, comm_.size());
}

void Window::unlock(int target) {
  if (freed_) throw MpiError("Window: unlock after free");
  auto it = locks_.find(target);
  if (it == locks_.end()) {
    throw MpiError("Window: unlock of rank " + std::to_string(target) +
                   " without a lock");
  }
  // Unlock is a closing synchronisation: complete everything first.
  quiesce(target);
  ++eng().coll_stats().rma_flushes;
  const int w = comm_.world_rank(target);
  chk().win_unlock(eng().rank(), id_, w);
  locks_.erase(it);
  eng().bootstrap().rma_unlock(id_, w, eng().rank());
}

void Window::unlock_all() {
  if (freed_) throw MpiError("Window: unlock_all after free");
  if (!lock_all_) throw MpiError("Window: unlock_all without lock_all");
  eng().wait_until([this] { return outstanding_ == 0; });
  ++eng().coll_stats().rma_flushes;
  chk().win_unlock_all(eng().rank(), id_);
  lock_all_ = false;
  for (int r = 0; r < comm_.size(); ++r) {
    eng().bootstrap().rma_unlock(id_, comm_.world_rank(r), eng().rank());
  }
}

void Window::flush(int target) {
  if (freed_) throw MpiError("Window: flush after free");
  if (!lock_all_ && locks_.count(target) == 0) {
    throw MpiError("Window: flush of rank " + std::to_string(target) +
                   " outside a passive epoch");
  }
  quiesce(target);
  ++eng().coll_stats().rma_flushes;
  chk().rma_flushed(eng().rank(), id_, comm_.world_rank(target));
}

void Window::flush(std::span<const int> targets) {
  for (int t : targets) flush(t);
}

void Window::flush_all() {
  if (freed_) throw MpiError("Window: flush_all after free");
  if (lock_all_) {
    for (int r = 0; r < comm_.size(); ++r) flush(r);
  } else {
    // Iterate over a copy of the keys: flush doesn't mutate locks_, but
    // stay robust if that ever changes.
    std::vector<int> held;
    held.reserve(locks_.size());
    for (auto& [t, m] : locks_) held.push_back(t);
    for (int t : held) flush(t);
  }
}

void Window::flush_local(int target) {
  // Local completion of an RDMA write implies remote delivery in this
  // model (the engine completes the WR only when the bytes landed), so
  // the two flush flavours coincide; see docs/rma.md.
  flush(target);
}

}  // namespace dcfa::mpi
