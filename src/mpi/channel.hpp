#pragma once

#include "mpi/communicator.hpp"

namespace dcfa::mpi {

/// Persistent one-sided halo channel (the pMR design point, PAPERS.md):
/// every buffer address, MR and rkey the transfer needs is negotiated
/// exactly once, at construction; after that each post() is a bare RDMA
/// write with pre-exchanged keys — no MR-cache lookup, no registration, no
/// rendezvous handshake, no staging decision on the hot path. For an
/// iterative stencil whose halos move every iteration (the DD-αAMG
/// multigrid workload), this removes the entire per-message setup cost the
/// two-sided rendezvous path pays.
///
/// Usage pattern (both ranks of the pair construct one, symmetrically):
///
///   Channel ch(comm, neighbour, send_buf, soff, recv_buf, roff, bytes);
///   for (iter ...) {
///     fill send_buf;          // local compute
///     ch.post();              // RDMA-write payload + doorbell to peer
///     ch.wait_arrival();      // peer's payload landed in recv_buf
///     ch.wait_local();        // send_buf reusable
///   }
///   ch.close();
///
/// Arrival notification is a doorbell cell: after the payload write
/// completes, the channel writes its monotonic post counter into the
/// peer's doorbell with a second pre-negotiated RDMA write. Both writes
/// ride one queue pair in order, so a doorbell value of n proves payloads
/// 1..n have landed. wait_arrival() blocks on the engine's remote-write
/// observer — no timed polling.
///
/// Self-channels (peer == own rank) work and short-circuit to memcpy, so
/// periodic stencils need no special casing at the wrap-around.
class Channel {
 public:
  /// Internal setup tag for the pairwise rkey exchange (just below the
  /// reserved internal range so it cannot collide with collective traffic;
  /// user code should avoid it while channels are being built).
  static constexpr int kSetupTag = kInternalTagBase - 2;

  /// Pairwise (both sides call it): wire `bytes` from this rank's
  /// send_buf[soff..] to the peer's recv_buf[roff..] and vice versa.
  /// Buffers must outlive the channel.
  Channel(Communicator& comm, int peer, const mem::Buffer& send_buf,
          std::size_t soff, const mem::Buffer& recv_buf, std::size_t roff,
          std::size_t bytes);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  ~Channel();

  /// Hot path: RDMA-write the send region into the peer's recv region and
  /// ring its doorbell. Returns immediately; wait_local() completes it.
  void post();
  /// Block until the peer's next posted payload has fully landed in the
  /// recv region (arrival n for the n-th call). Throws MpiErrc::ProcFailed
  /// instead of hanging when the peer is dead.
  void wait_arrival();
  /// Block until every local post() completed (send region reusable).
  void wait_local();

  /// Release MRs and the doorbell cell. Pairwise, not collective; called
  /// by the destructor if forgotten (best-effort there).
  void close();

  std::uint64_t posts() const { return posts_; }
  /// Doorbell value: how many peer payloads have arrived.
  std::uint64_t arrivals() const;
  int peer() const { return peer_; }
  std::size_t bytes() const { return bytes_; }

 private:
  Engine& eng() const { return comm_.engine(); }

  Communicator& comm_;
  int peer_;           ///< comm-relative
  int peer_world_;
  std::size_t bytes_;
  std::uint64_t id_ = 0;       ///< checker exposure id (payload region)
  std::uint64_t db_id_ = 0;    ///< checker exposure id (doorbell cell)

  mem::Buffer send_buf_;
  std::size_t soff_ = 0;
  mem::Buffer recv_buf_;
  std::size_t roff_ = 0;
  /// Control block: [0..8) my doorbell cell (peer writes its post count
  /// here), [8..16) doorbell staging (source of my doorbell writes).
  mem::Buffer ctrl_;

  ib::MemoryRegion* send_mr_ = nullptr;
  ib::MemoryRegion* recv_mr_ = nullptr;
  ib::MemoryRegion* ctrl_mr_ = nullptr;

  // Peer's side, learned once at construction.
  mem::SimAddr peer_recv_addr_ = 0;
  ib::MKey peer_recv_rkey_ = 0;
  mem::SimAddr peer_db_addr_ = 0;
  ib::MKey peer_db_rkey_ = 0;

  std::uint64_t posts_ = 0;      ///< payloads posted (doorbell currency)
  std::uint64_t expected_ = 0;   ///< arrivals consumed by wait_arrival
  int local_pending_ = 0;        ///< posts not yet locally complete
  bool closed_ = false;
};

}  // namespace dcfa::mpi
