#include "mpi/coll.hpp"

#include <cstdlib>

#include "mpi/types.hpp"
#include "sim/platform.hpp"

namespace dcfa::mpi {

const char* coll_algo_name(CollAlgo a) {
  switch (a) {
    case CollAlgo::Auto: return "auto";
    case CollAlgo::Binomial: return "binomial";
    case CollAlgo::RecursiveDoubling: return "rd";
    case CollAlgo::Ring: return "ring";
    case CollAlgo::Rabenseifner: return "rab";
    case CollAlgo::ScatterAllgather: return "scatter_ag";
  }
  return "?";
}

CollAlgo parse_coll_algo(const std::string& s) {
  if (s.empty() || s == "auto") return CollAlgo::Auto;
  if (s == "binomial") return CollAlgo::Binomial;
  if (s == "rd" || s == "recursive_doubling") {
    return CollAlgo::RecursiveDoubling;
  }
  if (s == "ring") return CollAlgo::Ring;
  if (s == "rab" || s == "rabenseifner") return CollAlgo::Rabenseifner;
  if (s == "scatter_ag" || s == "scatter_allgather") {
    return CollAlgo::ScatterAllgather;
  }
  throw MpiError("unknown collective algorithm '" + s + "'");
}

namespace {

CollAlgo pick_algo(const std::string& option, const char* env_key) {
  if (!option.empty()) return parse_coll_algo(option);
  if (const char* env = std::getenv(env_key)) return parse_coll_algo(env);
  return CollAlgo::Auto;
}

std::uint64_t pick_bytes(const std::optional<std::uint64_t>& option,
                         const char* env_key, std::uint64_t fallback) {
  if (option) return *option;
  if (const char* env = std::getenv(env_key)) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') {
      throw MpiError(std::string(env_key) + ": expected a byte count, got '" +
                     env + "'");
    }
    return v;
  }
  return fallback;
}

}  // namespace

CollTuning resolve_coll_tuning(const sim::Platform& platform,
                               const CollOverrides& o) {
  CollTuning t;
  t.allreduce = pick_algo(o.allreduce, "DCFA_COLL_ALLREDUCE");
  t.bcast = pick_algo(o.bcast, "DCFA_COLL_BCAST");
  t.allgather = pick_algo(o.allgather, "DCFA_COLL_ALLGATHER");
  t.segment_bytes =
      pick_bytes(o.segment_bytes, "DCFA_COLL_SEGMENT_BYTES",
                 platform.coll_segment_bytes);
  if (t.segment_bytes == 0) {
    throw MpiError("coll_segment_bytes must be positive");
  }
  t.allreduce_small_max =
      pick_bytes(o.allreduce_small_max, "DCFA_COLL_ALLREDUCE_SMALL_MAX",
                 platform.coll_allreduce_small_max);
  t.allreduce_ring_min =
      pick_bytes(o.allreduce_ring_min, "DCFA_COLL_ALLREDUCE_RING_MIN",
                 platform.coll_allreduce_ring_min);
  t.bcast_large_min = pick_bytes(o.bcast_large_min, "DCFA_COLL_BCAST_LARGE_MIN",
                                 platform.coll_bcast_large_min);
  return t;
}

CollAlgo select_allreduce(const CollTuning& t, std::uint64_t bytes,
                          int comm_size) {
  (void)comm_size;
  if (t.allreduce != CollAlgo::Auto) {
    if (t.allreduce == CollAlgo::ScatterAllgather) {
      throw MpiError("allreduce: cannot force algorithm 'scatter_ag'");
    }
    return t.allreduce;
  }
  if (bytes < t.allreduce_small_max) return CollAlgo::RecursiveDoubling;
  if (bytes >= t.allreduce_ring_min) return CollAlgo::Ring;
  return CollAlgo::Rabenseifner;
}

CollAlgo select_bcast(const CollTuning& t, std::uint64_t bytes,
                      int comm_size) {
  if (t.bcast != CollAlgo::Auto) {
    if (t.bcast != CollAlgo::Binomial &&
        t.bcast != CollAlgo::ScatterAllgather) {
      throw MpiError(std::string("bcast: cannot force algorithm '") +
                     coll_algo_name(t.bcast) + "'");
    }
    return t.bcast;
  }
  // The scatter phase costs an extra log2(P) latency term; with fewer than
  // four ranks the binomial tree already moves <= 2 full copies per rank.
  if (comm_size >= 4 && bytes >= t.bcast_large_min) {
    return CollAlgo::ScatterAllgather;
  }
  return CollAlgo::Binomial;
}

CollAlgo select_allgather(const CollTuning& t, std::uint64_t block_bytes,
                          int comm_size) {
  const bool pow2 = (comm_size & (comm_size - 1)) == 0;
  CollAlgo a = t.allgather;
  if (a != CollAlgo::Auto && a != CollAlgo::Ring &&
      a != CollAlgo::RecursiveDoubling) {
    throw MpiError(std::string("allgather: cannot force algorithm '") +
                   coll_algo_name(a) + "'");
  }
  if (a == CollAlgo::Auto) {
    a = (pow2 && block_bytes < t.allreduce_small_max)
            ? CollAlgo::RecursiveDoubling
            : CollAlgo::Ring;
  }
  // Recursive doubling needs a power-of-two comm; fall back to ring.
  if (a == CollAlgo::RecursiveDoubling && !pow2) a = CollAlgo::Ring;
  return a;
}

}  // namespace dcfa::mpi
