#pragma once

#include <memory>

#include "mem/memory.hpp"
#include "mpi/types.hpp"

namespace dcfa::ib {
class MemoryRegion;
}

namespace dcfa::mpi {

class Engine;

/// Internal request state. Lifetime is managed by shared_ptr: the user's
/// Request handle and the protocol engine both hold references.
struct RequestState {
  enum class Kind { Send, Recv, Coll, Rma };
  enum class Phase {
    Queued,        ///< created, protocol not yet decided / waiting for seq
    EagerSent,     ///< (send) data staged & written — complete for MPI
    RtsSent,       ///< (send) waiting for DONE (or RTR already dropped)
    WritingData,   ///< (send) RDMA write in flight after an RTR
    WaitingPacket, ///< (recv) posted, nothing arrived yet
    RtrSent,       ///< (recv) receiver-first RTR out, waiting data/DONE
    ReadingData,   ///< (recv) RDMA read in flight after an RTS
    Complete,
    Error,
  };
  // Kind::Coll requests back a collective schedule (mpi/coll.hpp): they sit
  // in Queued while the engine advances the schedule's stages and jump
  // straight to Complete/Error. The fields below the envelope are unused.
  // Kind::Rma requests back a window rput/rget (mpi/window.hpp): same shape
  // — Queued until the RDMA op's completion callback fires, then straight
  // to Complete/Error. Completion is phase-based, so they mix freely with
  // p2p and collective requests in every wait/test set.

  Kind kind = Kind::Send;
  Phase phase = Phase::Queued;
  int peer = kAnySource;     ///< destination (send) / source filter (recv)
  int tag = kAnyTag;
  std::uint32_t comm_id = 0;
  std::uint64_t seq = 0;     ///< channel sequence id (once assigned)
  bool seq_assigned = false;

  /// Packed message bytes (send: exact; recv: buffer capacity until matched).
  std::size_t bytes = 0;
  /// User buffer window.
  mem::Buffer buffer;
  std::size_t offset = 0;

  /// Element layout (non-owning; predefined types are static, user types
  /// must outlive the request).
  const class Datatype* type = nullptr;
  std::size_t count = 0;
  /// Staging for non-contiguous datatypes (packed before send / unpacked
  /// after receive); owned by the request, freed at completion.
  mem::Buffer pack_buf;
  bool has_pack = false;
  /// Per-message MR when the cache is disabled (released at completion).
  ib::MemoryRegion* window_mr = nullptr;
  /// DcfaRace tracked-access id for the user buffer (0 when not tracked):
  /// opened at post, closed in the complete/fail funnels.
  std::uint64_t race_id = 0;

  /// Send side: true when the payload was staged through the offloading
  /// send buffer (host shadow) — for stats/tests.
  bool used_offload_shadow = false;
  /// Send side: a stale RTR for this request was received and dropped
  /// (paper's simultaneous / sender-eager cases).
  bool dropped_rtr = false;
  /// Send side: synchronous-mode send (always rendezvous).
  bool sync_mode = false;

  /// Virtual time the request was posted (for trace spans).
  std::int64_t posted_at = 0;

  Status status;             ///< filled at completion (recv)
  std::string error;         ///< non-empty when phase == Error
  MpiErrc errc = MpiErrc::Other;  ///< taxonomy code when phase == Error
  int err_peer = -1;         ///< world rank blamed for the error, if any

  bool done() const {
    return phase == Phase::Complete || phase == Phase::Error;
  }
};

/// User-facing request handle (MPI_Request) — one type for point-to-point,
/// persistent and collective operations. Obtained from isend/irecv (and the
/// i-collectives); completed via Communicator::wait/test/waitall/waitany,
/// which accept mixed sets of all three kinds.
class Request {
 public:
  Request() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ && state_->done(); }
  const Status& status() const { return state_->status; }

  /// Error inspection for fault-tolerant wait sets: after waitall drives a
  /// mixed set to terminal phases, callers sort survivors from casualties
  /// by failed()/errc() without re-throwing.
  bool failed() const {
    return state_ && state_->phase == RequestState::Phase::Error;
  }
  MpiErrc errc() const { return state_ ? state_->errc : MpiErrc::Other; }
  const std::string& error() const { return state_->error; }
  int err_peer() const { return state_ ? state_->err_peer : -1; }

 private:
  friend class Engine;
  friend class Communicator;
  friend class Window;
  explicit Request(std::shared_ptr<RequestState> s) : state_(std::move(s)) {}
  std::shared_ptr<RequestState> state_;
};

}  // namespace dcfa::mpi
