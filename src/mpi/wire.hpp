#pragma once

#include <cstddef>
#include <cstring>
#include <string>
#include <type_traits>

#include "mem/memory.hpp"
#include "sim/check.hpp"

/// Bounds-checked copies between wire-format structs and registered memory.
///
/// Every eager-ring / credit-cell / heartbeat copy in the engine goes through
/// these helpers instead of naked memcpy so that (a) an offset bug raises a
/// structured DcfaCheck wire-bounds diagnostic instead of corrupting the
/// neighbouring slot, and (b) `scripts/dcfa_lint.py` can forbid raw memcpy
/// into registered MRs everywhere else. The checks are unconditional — they
/// cost two compares against values already in cache, and an overrun is
/// memory corruption regardless of DCFA_CHECK level.
namespace dcfa::mpi::wire {

namespace detail {
[[noreturn]] inline void overrun(const char* what, std::size_t off,
                                 std::size_t len, std::size_t size) {
  sim::Checker::wire_bounds_violation(
      std::string(what) + ": copy of " + std::to_string(len) +
      " bytes at offset " + std::to_string(off) + " overruns " +
      std::to_string(size) + "-byte buffer");
}

inline void check(const char* what, const mem::Buffer& buf, std::size_t off,
                  std::size_t len) {
  if (off > buf.size() || len > buf.size() - off)
    overrun(what, off, len, buf.size());
}
}  // namespace detail

/// Copy a trivially-copyable wire struct into `buf` at `off`.
template <typename T>
inline void put(const mem::Buffer& buf, std::size_t off, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "wire structs must be trivially copyable");
  detail::check("wire::put", buf, off, sizeof(T));
  std::memcpy(buf.data() + off, &value, sizeof(T));
}

/// Read a trivially-copyable wire struct out of `buf` at `off`.
template <typename T>
inline T get(const mem::Buffer& buf, std::size_t off) {
  static_assert(std::is_trivially_copyable_v<T>,
                "wire structs must be trivially copyable");
  detail::check("wire::get", buf, off, sizeof(T));
  T value;
  std::memcpy(&value, buf.data() + off, sizeof(T));
  return value;
}

/// Copy `len` raw payload bytes into `buf` at `off`.
inline void put_bytes(const mem::Buffer& buf, std::size_t off,
                      const void* src, std::size_t len) {
  detail::check("wire::put_bytes", buf, off, len);
  if (len > 0) std::memcpy(buf.data() + off, src, len);
}

/// Copy `len` raw payload bytes out of `buf` at `off`.
inline void get_bytes(void* dst, const mem::Buffer& buf, std::size_t off,
                      std::size_t len) {
  detail::check("wire::get_bytes", buf, off, len);
  if (len > 0) std::memcpy(dst, buf.data() + off, len);
}

}  // namespace dcfa::mpi::wire
