#include "mpi/traffic.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <numbers>
#include <stdexcept>

#include "sim/check.hpp"
#include "sim/engine.hpp"

namespace dcfa::mpi::traffic {

namespace {

/// User-tag base for generated P2P traffic (phase index is added; stays
/// far below kInternalTagBase so collective tag windows never collide).
constexpr int kTrafficTagBase = 5000;

/// Deterministic fill/verify byte for one P2P op or all-to-all block.
std::byte pat_byte(int a, int b, std::uint32_t bytes) {
  return static_cast<std::byte>(
      0x20 + ((static_cast<std::uint32_t>(a) * 31u +
               static_cast<std::uint32_t>(b) * 17u + bytes) & 0x5fu));
}

}  // namespace

// --- SizeDist ----------------------------------------------------------------

std::size_t SizeDist::sample(sim::Rng& rng) const {
  std::size_t v = lo;
  switch (kind) {
    case Kind::Fixed:
      v = lo;
      break;
    case Kind::Uniform:
      v = static_cast<std::size_t>(rng.range(lo, hi));
      break;
    case Kind::LogNormal: {
      // Box–Muller on the schedule RNG: exp(N(ln median, sigma)).
      const double u1 = std::max(rng.uniform(), 1e-12);
      const double u2 = rng.uniform();
      const double z = std::sqrt(-2.0 * std::log(u1)) *
                       std::cos(2.0 * std::numbers::pi * u2);
      const double x = median * std::exp(sigma * z);
      v = static_cast<std::size_t>(std::clamp(
          x, static_cast<double>(lo), static_cast<double>(hi)));
      break;
    }
    case Kind::Bimodal:
      v = rng.chance(p_small) ? lo : hi;
      break;
  }
  return std::max<std::size_t>(v, 1);
}

SizeDist SizeDist::fixed(std::size_t n) {
  SizeDist d;
  d.kind = Kind::Fixed;
  d.lo = d.hi = n;
  return d;
}

SizeDist SizeDist::uniform(std::size_t lo, std::size_t hi) {
  SizeDist d;
  d.kind = Kind::Uniform;
  d.lo = lo;
  d.hi = hi;
  return d;
}

SizeDist SizeDist::lognormal(double median, double sigma, std::size_t lo,
                             std::size_t hi) {
  SizeDist d;
  d.kind = Kind::LogNormal;
  d.median = median;
  d.sigma = sigma;
  d.lo = lo;
  d.hi = hi;
  return d;
}

SizeDist SizeDist::bimodal(std::size_t small, std::size_t large,
                           double p_small) {
  SizeDist d;
  d.kind = Kind::Bimodal;
  d.lo = small;
  d.hi = large;
  d.p_small = p_small;
  return d;
}

// --- Schedule compilation ----------------------------------------------------

Schedule build_schedule(const Scenario& sc) {
  if (sc.nprocs < 2) {
    throw std::invalid_argument("traffic: scenario needs >= 2 ranks");
  }
  Schedule out;
  sim::Rng rng(sc.seed ^ 0x7261666669636bULL);  // "traffick"-ish salt
  const int P = sc.nprocs;
  for (const PhaseSpec& ps : sc.phases) {
    PhaseSchedule psched;
    for (int r = 0; r < ps.rounds; ++r) {
      Round rd;
      if (ps.kind == PhaseKind::P2P) {
        if (ps.comm != CommSel::World) {
          throw std::invalid_argument(
              "traffic: P2P phases run on the world communicator");
        }
        for (int s = 0; s < P; ++s) {
          for (int m = 0; m < ps.msgs_per_rank; ++m) {
            const int dst =
                (s + 1 + static_cast<int>(rng.below(P - 1))) % P;
            rd.p2p.push_back(
                {s, dst, static_cast<std::uint32_t>(ps.sizes.sample(rng))});
          }
        }
      } else if (ps.kind != PhaseKind::Barrier) {
        rd.coll_bytes = static_cast<std::uint32_t>(ps.sizes.sample(rng));
      }
      if (ps.straggler_frac > 0.0) {
        const int want = static_cast<int>(
            std::lround(ps.straggler_frac * P));
        for (int k = 0; k < std::min(want, P); ++k) {
          // Distinct picks: linear-probe past duplicates.
          int cand = static_cast<int>(rng.below(P));
          while (std::find(rd.stragglers.begin(), rd.stragglers.end(),
                           cand) != rd.stragglers.end()) {
            cand = (cand + 1) % P;
          }
          rd.stragglers.push_back(cand);
        }
      }
      psched.rounds.push_back(std::move(rd));
    }
    out.phases.push_back(std::move(psched));
  }
  return out;
}

std::vector<std::uint8_t> serialize(const Schedule& s) {
  std::vector<std::uint8_t> out;
  auto put32 = [&out](std::uint32_t v) {
    for (int k = 0; k < 4; ++k) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
    }
  };
  put32(static_cast<std::uint32_t>(s.phases.size()));
  for (const PhaseSchedule& ph : s.phases) {
    put32(static_cast<std::uint32_t>(ph.rounds.size()));
    for (const Round& rd : ph.rounds) {
      put32(rd.coll_bytes);
      put32(static_cast<std::uint32_t>(rd.p2p.size()));
      for (const P2POp& op : rd.p2p) {
        put32(static_cast<std::uint32_t>(op.src));
        put32(static_cast<std::uint32_t>(op.dst));
        put32(op.bytes);
      }
      put32(static_cast<std::uint32_t>(rd.stragglers.size()));
      for (std::int32_t r : rd.stragglers) {
        put32(static_cast<std::uint32_t>(r));
      }
    }
  }
  return out;
}

std::uint64_t schedule_digest(const Schedule& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (std::uint8_t b : serialize(s)) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// --- Stats folding -----------------------------------------------------------

// Engine::Stats is (and must stay) a flat bag of uint64 counters, so the
// field-wise fold can treat it as words; the asserts pin that shape.
static_assert(std::is_trivially_copyable_v<Engine::Stats>);
static_assert(sizeof(Engine::Stats) % sizeof(std::uint64_t) == 0);
constexpr std::size_t kStatWords = sizeof(Engine::Stats) / sizeof(std::uint64_t);

namespace {
std::array<std::uint64_t, kStatWords> stat_words(const Engine::Stats& s) {
  std::array<std::uint64_t, kStatWords> w;
  std::memcpy(w.data(), &s, sizeof s);
  return w;
}

Engine::Stats from_words(const std::array<std::uint64_t, kStatWords>& w) {
  Engine::Stats s;
  std::memcpy(static_cast<void*>(&s), w.data(), sizeof s);
  return s;
}

/// Live allocation count across both memory domains of one node.
std::int64_t live_allocs(const mem::NodeMemory& m) {
  return static_cast<std::int64_t>(
      m.space(mem::Domain::HostDram).live_allocations() +
      m.space(mem::Domain::PhiGddr).live_allocations());
}
}  // namespace

Engine::Stats stats_add(const Engine::Stats& a, const Engine::Stats& b) {
  auto wa = stat_words(a);
  const auto wb = stat_words(b);
  for (std::size_t i = 0; i < kStatWords; ++i) wa[i] += wb[i];
  return from_words(wa);
}

Engine::Stats stats_sub(const Engine::Stats& a, const Engine::Stats& b) {
  auto wa = stat_words(a);
  const auto wb = stat_words(b);
  for (std::size_t i = 0; i < kStatWords; ++i) wa[i] -= wb[i];
  return from_words(wa);
}

// --- Named scenarios ---------------------------------------------------------

std::vector<std::string> scenario_names() {
  return {"steady_p2p", "bursty_a2a", "mixed_comms", "straggler_allreduce",
          "faulty_soak", "survivor_soak"};
}

Scenario make_scenario(const std::string& name, int nprocs,
                       std::uint64_t seed, bool quick) {
  Scenario sc;
  sc.name = name;
  sc.nprocs = nprocs;
  sc.seed = seed;
  auto phase = [&sc](PhaseSpec ps) { sc.phases.push_back(std::move(ps)); };
  if (name == "steady_p2p") {
    // Sustained point-to-point under three production-shaped size mixes;
    // lognormal straddles the eager/rendezvous threshold on purpose.
    phase({.name = "uniform_small",
           .kind = PhaseKind::P2P,
           .sizes = SizeDist::uniform(64, 4096),
           .rounds = quick ? 2 : 6,
           .msgs_per_rank = 3});
    phase({.name = "lognormal_mix",
           .kind = PhaseKind::P2P,
           .sizes = SizeDist::lognormal(4096, 1.1, 16, 256 << 10),
           .rounds = quick ? 2 : 5,
           .msgs_per_rank = 2});
    phase({.name = "bimodal_bulk",
           .kind = PhaseKind::P2P,
           .sizes = SizeDist::bimodal(256, 128 << 10, 0.85),
           .rounds = quick ? 1 : 4,
           .msgs_per_rank = 2});
  } else if (name == "bursty_a2a") {
    // Alternating all-to-all bursts and idle gaps, then a storm of
    // concurrent nonblocking allreduces.
    phase({.name = "a2a_burst",
           .kind = PhaseKind::AllToAll,
           .sizes = SizeDist::bimodal(512, 32 << 10, 0.7),
           .rounds = quick ? 2 : 4,
           .burst = quick ? 2 : 3,
           .gap = sim::microseconds(30)});
    phase({.name = "allreduce_storm",
           .kind = PhaseKind::Allreduce,
           .sizes = SizeDist::lognormal(16 << 10, 1.0, 1 << 10, 512 << 10),
           .rounds = quick ? 2 : 4,
           .burst = 3});
  } else if (name == "mixed_comms") {
    // Overlapping communicators (world, rank%2 halves, rank/2 stripes)
    // carrying different patterns back to back over the same endpoints.
    phase({.name = "world_p2p",
           .kind = PhaseKind::P2P,
           .sizes = SizeDist::uniform(128, 16 << 10),
           .rounds = quick ? 2 : 4,
           .msgs_per_rank = 2});
    phase({.name = "halves_allreduce",
           .kind = PhaseKind::Allreduce,
           .comm = CommSel::Halves,
           .sizes = SizeDist::fixed(32 << 10),
           .rounds = quick ? 2 : 4,
           .burst = 2});
    phase({.name = "stripes_a2a",
           .kind = PhaseKind::AllToAll,
           .comm = CommSel::Stripes,
           .sizes = SizeDist::fixed(8 << 10),
           .rounds = quick ? 2 : 4});
    phase({.name = "world_storm",
           .kind = PhaseKind::Allreduce,
           .sizes = SizeDist::bimodal(1 << 10, 256 << 10, 0.7),
           .rounds = quick ? 1 : 3,
           .burst = 2});
  } else if (name == "straggler_allreduce") {
    // Same collective with and without seeded stragglers: the delta is the
    // cost of waiting for the slowest rank (max-over-ranks timing).
    phase({.name = "baseline",
           .kind = PhaseKind::Allreduce,
           .sizes = SizeDist::fixed(64 << 10),
           .rounds = quick ? 2 : 6});
    phase({.name = "straggle",
           .kind = PhaseKind::Allreduce,
           .sizes = SizeDist::fixed(64 << 10),
           .rounds = quick ? 2 : 6,
           .straggler_frac = 0.25,
           .straggler_delay = sim::microseconds(300)});
  } else if (name == "faulty_soak") {
    // Everything at once under injected faults: WC drops/errors, compute
    // jitter, and one delegate crash (with restart) mid-run. The recovery
    // machinery must keep retries bounded and complete exactly-once.
    sc.fault_spec =
        "drop_wc=0.02,err_wc=0.01,compute_delay=0.05,compute_delay_ns=20000,"
        "delegate_crash=1,delegate_crash_skip=25,delegate_crash_max=1,"
        "delegate_restart_ns=500000";
    phase({.name = "soak_p2p",
           .kind = PhaseKind::P2P,
           .sizes = SizeDist::lognormal(4096, 1.0, 64, 64 << 10),
           .rounds = quick ? 2 : 5,
           .msgs_per_rank = 2});
    phase({.name = "soak_storm",
           .kind = PhaseKind::Allreduce,
           .sizes = SizeDist::fixed(32 << 10),
           .rounds = quick ? 2 : 4,
           .burst = 2});
    phase({.name = "soak_a2a",
           .kind = PhaseKind::AllToAll,
           .sizes = SizeDist::fixed(4096),
           .rounds = quick ? 1 : 3});
  } else if (name == "survivor_soak") {
    // Rank failure mid-collective: two ranks die permanently during the
    // storm phase; every survivor's allreduce fails with PROC_FAILED, the
    // ULFM loop (revoke -> shrink -> retry) rebuilds the communicator, and
    // the remaining rounds complete on the smaller group. Victims and death
    // times are exact, so the recovery trajectory is seeded-deterministic.
    if (nprocs < 4) {
      throw std::invalid_argument("traffic: survivor_soak needs >= 4 ranks");
    }
    sc.ft_shrink = true;
    // Death times must land after startup + the run's initial barrier/dup
    // (several hundred microseconds of virtual time at 9 ranks): a kill that
    // hits while the world communicator is still being cloned poisons ranks
    // outside the recovery loop's protection.
    sc.fault_spec = "rank_kill=2+" + std::to_string(nprocs - 3) +
                    ",rank_kill_at_ns=2500000+2600000";
    phase({.name = "warmup",
           .kind = PhaseKind::Allreduce,
           .sizes = SizeDist::fixed(8 << 10),
           .rounds = 2});
    phase({.name = "kill_storm",
           .kind = PhaseKind::Allreduce,
           .sizes = SizeDist::fixed(32 << 10),
           .rounds = quick ? 4 : 6,
           .burst = 2});
    phase({.name = "aftermath",
           .kind = PhaseKind::Allreduce,
           .sizes = SizeDist::fixed(16 << 10),
           .rounds = quick ? 2 : 4});
  } else {
    throw std::invalid_argument("traffic: unknown scenario '" + name + "'");
  }
  return sc;
}

// --- Execution ---------------------------------------------------------------

namespace {

/// Per-rank, per-phase raw results; each rank writes only its own slot.
struct RankPhase {
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  double seconds = 0;
  std::vector<double> lat_us;
  Engine::Stats stats{};
};

[[noreturn]] void corrupt(const char* where) {
  throw std::runtime_error(std::string("traffic: payload mismatch in ") +
                           where);
}

void run_p2p_round(RankCtx& ctx, Communicator& comm, const Round& rd,
                   int tag, RankPhase& out) {
  struct Slot {
    mem::Buffer buf;
    std::uint32_t bytes = 0;
    std::byte pat{};
    bool is_recv = false;
  };
  const int me = comm.rank();
  std::vector<Request> reqs;
  std::vector<Slot> slots;
  // All receives first (posting order per source matches the senders'
  // emission order, so same-tag sequence matching lines up exactly).
  for (const P2POp& op : rd.p2p) {
    if (op.dst != me) continue;
    Slot s;
    s.buf = comm.alloc(op.bytes);
    s.bytes = op.bytes;
    s.pat = pat_byte(op.src, op.dst, op.bytes);
    s.is_recv = true;
    reqs.push_back(
        comm.irecv(s.buf, 0, op.bytes, type_byte(), op.src, tag));
    slots.push_back(std::move(s));
  }
  for (const P2POp& op : rd.p2p) {
    if (op.src != me) continue;
    Slot s;
    s.buf = comm.alloc(op.bytes);
    s.bytes = op.bytes;
    s.pat = pat_byte(op.src, op.dst, op.bytes);
    std::memset(s.buf.data(), static_cast<int>(s.pat), op.bytes);
    reqs.push_back(
        comm.isend(s.buf, 0, op.bytes, type_byte(), op.dst, tag));
    slots.push_back(std::move(s));
  }
  const double t0 = ctx.wtime();
  std::size_t remaining = reqs.size();
  while (remaining > 0) {
    const std::size_t i = comm.waitany(std::span<Request>(reqs));
    if (i == SIZE_MAX) break;
    const Slot& s = slots[i];
    out.lat_us.push_back((ctx.wtime() - t0) * 1e6);
    if (s.is_recv) {
      if (s.buf.data()[0] != s.pat || s.buf.data()[s.bytes - 1] != s.pat) {
        corrupt("p2p");
      }
      ++out.msgs_recv;
      out.bytes_recv += s.bytes;
    } else {
      ++out.msgs_sent;
      out.bytes_sent += s.bytes;
    }
    comm.free(s.buf);
    reqs[i] = Request();
    --remaining;
  }
}

void run_allreduce_round(RankCtx& ctx, Communicator& comm, const Round& rd,
                         int burst, RankPhase& out) {
  const int me = comm.rank(), sz = comm.size();
  const std::size_t n =
      std::max<std::size_t>(rd.coll_bytes / sizeof(double), 1);
  std::vector<mem::Buffer> ins, outs;
  std::vector<Request> reqs;
  const double t0 = ctx.wtime();
  for (int b = 0; b < burst; ++b) {
    ins.push_back(comm.alloc(n * sizeof(double)));
    outs.push_back(comm.alloc(n * sizeof(double)));
    auto* din = reinterpret_cast<double*>(ins.back().data());
    for (std::size_t i = 0; i < n; ++i) din[i] = me + b;
  }
  // The whole burst is posted as concurrent nonblocking schedules and
  // drained through waitany — the collectives-engine stress mode.
  for (int b = 0; b < burst; ++b) {
    reqs.push_back(comm.iallreduce(ins[b], 0, outs[b], 0, n, type_double(),
                                   Op::Sum));
  }
  std::size_t remaining = reqs.size();
  while (remaining > 0) {
    const std::size_t i = comm.waitany(std::span<Request>(reqs));
    if (i == SIZE_MAX) break;
    out.lat_us.push_back((ctx.wtime() - t0) * 1e6);
    const auto* dout = reinterpret_cast<const double*>(outs[i].data());
    const double expect =
        static_cast<double>(sz) * (sz - 1) / 2.0 +
        static_cast<double>(sz) * static_cast<double>(i);
    if (dout[0] != expect || dout[n - 1] != expect) corrupt("allreduce");
    ++out.msgs_sent;
    ++out.msgs_recv;
    out.bytes_sent += rd.coll_bytes;
    out.bytes_recv += rd.coll_bytes;
    reqs[i] = Request();
    --remaining;
  }
  for (int b = 0; b < burst; ++b) {
    comm.free(ins[b]);
    comm.free(outs[b]);
  }
}

void run_alltoall_round(RankCtx& ctx, Communicator& comm, const Round& rd,
                        int burst, RankPhase& out) {
  const int me = comm.rank(), sz = comm.size();
  const std::size_t count = std::max<std::uint32_t>(rd.coll_bytes, 1);
  mem::Buffer sbuf = comm.alloc(sz * count);
  mem::Buffer rbuf = comm.alloc(sz * count);
  for (int b = 0; b < burst; ++b) {
    for (int d = 0; d < sz; ++d) {
      std::memset(sbuf.data() + d * count,
                  static_cast<int>(pat_byte(me, d, rd.coll_bytes)), count);
    }
    const double t0 = ctx.wtime();
    comm.alltoall(sbuf, 0, count, type_byte(), rbuf, 0);
    out.lat_us.push_back((ctx.wtime() - t0) * 1e6);
    for (int s = 0; s < sz; ++s) {
      const std::byte want = pat_byte(s, me, rd.coll_bytes);
      if (rbuf.data()[s * count] != want ||
          rbuf.data()[(s + 1) * count - 1] != want) {
        corrupt("alltoall");
      }
    }
    ++out.msgs_sent;
    ++out.msgs_recv;
    out.bytes_sent += static_cast<std::uint64_t>(sz) * count;
    out.bytes_recv += static_cast<std::uint64_t>(sz) * count;
  }
  comm.free(sbuf);
  comm.free(rbuf);
}

/// One allreduce round under ft_shrink. Returns false when any operation
/// failed with PROC_FAILED/REVOKED — the caller revokes, shrinks and retries
/// the round on the new communicator. Every posted request is drained to a
/// terminal phase before the buffers are freed, so a failure cannot leave
/// in-flight RDMA aimed at recycled memory.
bool ft_allreduce_round(RankCtx& ctx, Communicator& comm, const Round& rd,
                        int burst, RankPhase& out) {
  const int me = comm.rank(), sz = comm.size();
  const std::size_t n =
      std::max<std::size_t>(rd.coll_bytes / sizeof(double), 1);
  std::vector<mem::Buffer> ins, outs;
  std::vector<Request> reqs;
  for (int b = 0; b < burst; ++b) {
    ins.push_back(comm.alloc(n * sizeof(double)));
    outs.push_back(comm.alloc(n * sizeof(double)));
    auto* din = reinterpret_cast<double*>(ins.back().data());
    for (std::size_t i = 0; i < n; ++i) din[i] = me + b;
  }
  bool ok = true;
  const double t0 = ctx.wtime();
  try {
    for (int b = 0; b < burst; ++b) {
      reqs.push_back(comm.iallreduce(ins[b], 0, outs[b], 0, n, type_double(),
                                     Op::Sum));
    }
  } catch (const MpiError& e) {
    // Once a member's death (or a revocation) is already adopted, posting
    // on the communicator is refused outright — same recovery as a wait.
    if (e.errc() != MpiErrc::ProcFailed && e.errc() != MpiErrc::Revoked) {
      throw;
    }
    ok = false;
  }
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    try {
      comm.wait(reqs[i]);
    } catch (const MpiError& e) {
      if (e.errc() != MpiErrc::ProcFailed && e.errc() != MpiErrc::Revoked) {
        throw;
      }
      ok = false;
      continue;
    }
    out.lat_us.push_back((ctx.wtime() - t0) * 1e6);
    const auto* dout = reinterpret_cast<const double*>(outs[i].data());
    const double expect =
        static_cast<double>(sz) * (sz - 1) / 2.0 +
        static_cast<double>(sz) * static_cast<double>(i);
    if (dout[0] != expect || dout[n - 1] != expect) corrupt("ft_allreduce");
    ++out.msgs_sent;
    ++out.msgs_recv;
    out.bytes_sent += rd.coll_bytes;
    out.bytes_recv += rd.coll_bytes;
  }
  for (int b = 0; b < burst; ++b) {
    comm.free(ins[b]);
    comm.free(outs[b]);
  }
  return ok;
}

/// Rank body for ft_shrink scenarios: no world barriers after startup (the
/// world contains doomed ranks and would poison them), each failed round is
/// retried on the shrunk communicator until it completes. Killed ranks never
/// reach the bookkeeping at the end, which is what excludes them from the
/// leak and survivor accounting.
///
/// Rounds across all phases are flattened into one global cursor because a
/// failure can leave survivors in different rounds — one rank's allreduce
/// completes while a peer's cancels, and the completed rank may already be
/// posting the next round (even the next phase) when the revocation reaches
/// it. After shrinking, survivors agree on the earliest round any of them
/// has not finished and all resume there; redone rounds are idempotent
/// (inputs are a pure function of comm rank and round index).
void run_ft_body(const Scenario& sc, const Schedule& sched, RankCtx& ctx,
                 bool exclusive_node,
                 std::vector<std::vector<RankPhase>>& per_rank,
                 std::vector<std::int64_t>& leaked,
                 std::vector<std::uint64_t>& detect_ns,
                 std::vector<char>& completed) {
  auto& world = ctx.world;
  const int me = ctx.rank;
  world.barrier();
  const std::int64_t live0 = live_allocs(ctx.memory);
  // Recovery replaces the working communicator wholesale, so run on a dup
  // and leave ctx.world untouched.
  std::optional<Communicator> comm(world.dup());
  struct FlatRound {
    std::size_t pi;
    const Round* rd;
  };
  std::vector<FlatRound> flat;
  for (std::size_t pi = 0; pi < sc.phases.size(); ++pi) {
    if (sc.phases[pi].kind != PhaseKind::Allreduce) {
      throw std::invalid_argument(
          "traffic: ft_shrink scenarios support Allreduce phases only");
    }
    for (const Round& rd : sched.phases[pi].rounds) {
      flat.push_back({pi, &rd});
    }
  }
  if (flat.size() > 63) {
    throw std::invalid_argument(
        "traffic: ft_shrink scenarios support at most 63 rounds (the resume "
        "agreement votes a one-bit-per-round mask)");
  }
  std::size_t k = 0;
  while (k < flat.size()) {
    const PhaseSpec& ps = sc.phases[flat[k].pi];
    RankPhase& out = per_rank[me][flat[k].pi];
    const Engine::Stats s0 = world.engine().stats();
    const double t0 = ctx.wtime();
    const bool ok = ft_allreduce_round(ctx, *comm, *flat[k].rd, ps.burst, out);
    out.seconds += ctx.wtime() - t0;
    out.stats = stats_add(out.stats, stats_sub(world.engine().stats(), s0));
    if (ok) {
      ++k;
      if (ps.gap > 0) ctx.proc.wait(ps.gap);
      continue;
    }
    // The ULFM loop: interrupt everyone still blocked on the old
    // communicator, agree on the survivor set, then agree on the resume
    // round — the earliest one any survivor has yet to finish (votes are
    // "rounds I have not completed" masks; the OR's lowest bit is the
    // global minimum).
    comm->revoke();
    Communicator shrunk = comm->shrink();
    comm.emplace(std::move(shrunk));
    const std::uint64_t agreed = comm->agree(~std::uint64_t{0} << k);
    k = static_cast<std::size_t>(std::countr_zero(agreed));
  }
  leaked[me] = exclusive_node ? live_allocs(ctx.memory) - live0 : 0;
  detect_ns[me] = world.engine().stats().failure_detect_max_ns;
  completed[me] = 1;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

ScenarioResult run_scenario(const Scenario& sc, MpiMode mode) {
  RunConfig cfg;
  cfg.mode = mode;
  return run_scenario(sc, cfg);
}

RunConfig scale_run_config(int nprocs) {
  RunConfig cfg;
  cfg.mode = MpiMode::HostMpi;
  cfg.nprocs = nprocs;
  // One rank per node: exclusive allocation arenas (the leak accounting
  // stays exact) and no co-located transient noise.
  cfg.platform.nodes = nprocs;
  // Shrink the per-pair footprint: ring + staging cost
  // eager_slots * stride each, and even with lazy wiring a collective-heavy
  // rank holds O(log N) pairs. Small payload ceilings keep the stride at
  // ~1KB instead of ~8KB.
  cfg.platform.eager_slots = 4;
  cfg.platform.eager_max_payload = 1024;
  cfg.platform.eager_threshold = 1024;
  cfg.platform.mr_cache_entries = 16;
  cfg.platform.mr_cache_bytes = 16ull * 1024 * 1024;
  cfg.engine_options.lazy_endpoints = true;
  return cfg;
}

ScenarioResult run_scenario(const Scenario& sc, const RunConfig& base) {
  const Schedule sched = build_schedule(sc);
  RunConfig cfg = base;
  cfg.nprocs = sc.nprocs;
  cfg.fault_spec = sc.fault_spec;
  cfg.fault_seed = sc.fault_seed;
  const int P = sc.nprocs;
  const std::size_t nphases = sc.phases.size();
  std::vector<std::vector<RankPhase>> per_rank(
      P, std::vector<RankPhase>(nphases));
  std::vector<std::int64_t> leaked(P, 0);
  std::vector<std::uint64_t> detect_ns(P, 0);
  std::vector<char> completed(P, 0);

  Runtime rt(cfg);
  sim::FaultInjector* faults = rt.faults_mut();
  rt.run([&](RankCtx& ctx) {
    auto& world = ctx.world;
    const int me = ctx.rank;
    // Past the cluster size, ranks share nodes round-robin; arena counters
    // on a shared node see the co-located rank's transient allocations
    // (e.g. an in-flight barrier scratch byte), so leaks are attributable
    // only to ranks that own their node exclusively.
    const int node_count = std::min(sc.nprocs, rt.platform().nodes);
    const bool exclusive_node = (me % node_count) + node_count >= sc.nprocs;
    if (faults != nullptr && faults->spec().compute_delay > 0.0) {
      // Compute jitter stretches a rank's gap between progress calls; that
      // must not read as peer death. Widen the liveness deadline by the
      // worst-case hold (jitter quantum plus any scheduled straggler delay)
      // so a slow-but-live rank stays Healthy.
      sim::Time grace = 2 * faults->spec().compute_delay_ns;
      for (const PhaseSpec& ps : sc.phases) {
        grace = std::max(grace, ps.straggler_delay);
      }
      world.engine().set_liveness_grace(grace);
    }
    if (sc.ft_shrink) {
      run_ft_body(sc, sched, ctx, exclusive_node, per_rank, leaked, detect_ns,
                  completed);
      return;
    }
    Communicator halves = world.split(me % 2, me);
    Communicator stripes = world.split(me / 2, me);
    world.barrier();
    const std::int64_t live0 = live_allocs(ctx.memory);

    for (std::size_t pi = 0; pi < nphases; ++pi) {
      const PhaseSpec& ps = sc.phases[pi];
      Communicator& comm = ps.comm == CommSel::World    ? world
                           : ps.comm == CommSel::Halves ? halves
                                                        : stripes;
      RankPhase& out = per_rank[me][pi];
      world.barrier();
      const Engine::Stats s0 = world.engine().stats();
      const double t0 = ctx.wtime();
      for (const Round& rd : sched.phases[pi].rounds) {
        if (std::find(rd.stragglers.begin(), rd.stragglers.end(), me) !=
            rd.stragglers.end()) {
          ctx.proc.wait(ps.straggler_delay);
        }
        if (faults != nullptr) {
          const sim::Time j = faults->compute_jitter();
          if (j > 0) ctx.proc.wait(j);
        }
        switch (ps.kind) {
          case PhaseKind::P2P:
            run_p2p_round(ctx, comm, rd,
                          kTrafficTagBase + static_cast<int>(pi), out);
            break;
          case PhaseKind::Allreduce:
            run_allreduce_round(ctx, comm, rd, ps.burst, out);
            break;
          case PhaseKind::AllToAll:
            run_alltoall_round(ctx, comm, rd, ps.burst, out);
            break;
          case PhaseKind::Barrier:
            comm.barrier();
            ++out.msgs_sent;
            ++out.msgs_recv;
            break;
        }
        if (ps.gap > 0) ctx.proc.wait(ps.gap);
      }
      world.barrier();
      out.seconds = ctx.wtime() - t0;
      out.stats = stats_sub(world.engine().stats(), s0);
    }
    world.barrier();
    leaked[me] = exclusive_node ? live_allocs(ctx.memory) - live0 : 0;
    completed[me] = 1;
  });

  ScenarioResult res;
  res.scenario = sc.name;
  res.digest = schedule_digest(sched);
  res.elapsed = rt.elapsed();
  res.check_events = rt.sim().checker().events();
  if (rt.faults() != nullptr) res.injected = rt.faults()->counters();
  for (int r = 0; r < P; ++r) {
    if (completed[r] == 0) continue;  // killed ranks: no leak/detect data
    ++res.survivors;
    res.leaked_allocations += leaked[r];
    res.failure_detect_max_ns =
        std::max(res.failure_detect_max_ns, detect_ns[r]);
  }
  for (std::size_t pi = 0; pi < nphases; ++pi) {
    PhaseMetrics m;
    m.phase = sc.phases[pi].name;
    std::vector<double> lats;
    for (int r = 0; r < P; ++r) {
      const RankPhase& rp = per_rank[r][pi];
      m.msgs_sent += rp.msgs_sent;
      m.msgs_recv += rp.msgs_recv;
      m.bytes_sent += rp.bytes_sent;
      m.bytes_recv += rp.bytes_recv;
      m.seconds = std::max(m.seconds, rp.seconds);
      m.stats = stats_add(m.stats, rp.stats);
      lats.insert(lats.end(), rp.lat_us.begin(), rp.lat_us.end());
    }
    std::sort(lats.begin(), lats.end());
    m.p50_us = percentile(lats, 0.50);
    m.p99_us = percentile(lats, 0.99);
    if (m.seconds > 0) {
      m.msg_rate = static_cast<double>(m.msgs_recv) / m.seconds;
      m.gbps = static_cast<double>(m.bytes_recv) / (m.seconds * 1e9);
    }
    res.phases.push_back(std::move(m));
  }
  return res;
}

}  // namespace dcfa::mpi::traffic
