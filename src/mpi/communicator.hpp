#pragma once

#include <optional>
#include <span>
#include <vector>

#include "mpi/engine.hpp"

namespace dcfa::mpi {

/// MPI communicator: a group of ranks plus an isolated matching context.
/// Rank numbers in every call are communicator-relative; the engine works on
/// world ranks underneath. Construction of the world communicator is done by
/// the Runtime; derived ones come from dup()/split().
///
/// All buffers are simulated-device memory (`mem::Buffer`), allocated with
/// alloc() in this endpoint's natural domain (Phi GDDR for DCFA-MPI ranks,
/// host DRAM for host MPI ranks).
class Communicator {
 public:
  Communicator(Engine& engine, std::uint32_t id, std::vector<int> group,
               int my_index);

  int rank() const { return my_index_; }
  int size() const { return static_cast<int>(group_.size()); }
  /// World rank of a communicator-relative rank (for engine-level callers).
  int world_rank(int comm_rank) const { return to_world(comm_rank); }
  std::uint32_t id() const { return id_; }
  Engine& engine() { return engine_; }

  // --- Point-to-point --------------------------------------------------------
  Request isend(const mem::Buffer& buf, std::size_t offset, std::size_t count,
                const Datatype& type, int dst, int tag);
  Request irecv(const mem::Buffer& buf, std::size_t offset, std::size_t count,
                const Datatype& type, int src, int tag);
  void send(const mem::Buffer& buf, std::size_t offset, std::size_t count,
            const Datatype& type, int dst, int tag);
  /// Synchronous-mode send: completes only once the receive has matched
  /// (always takes the rendezvous handshake; MPI_Ssend).
  void ssend(const mem::Buffer& buf, std::size_t offset, std::size_t count,
             const Datatype& type, int dst, int tag);
  Request issend(const mem::Buffer& buf, std::size_t offset,
                 std::size_t count, const Datatype& type, int dst, int tag);
  /// Probe for an unmatched incoming message without receiving it.
  std::optional<Status> iprobe(int src, int tag);
  Status probe(int src, int tag);

  /// Persistent communication request (MPI_Send_init / MPI_Recv_init):
  /// captures the call's arguments once; each start() posts a fresh
  /// operation with them. Reusing one buffer across many iterations is the
  /// pattern the paper's MR cache pool exists for.
  class Persistent {
   public:
    Persistent() = default;
    /// Post the operation (MPI_Start). The previous incarnation must have
    /// completed.
    Request& start();
    Request& request() { return active_; }
    bool valid() const { return comm_ != nullptr; }

   private:
    friend class Communicator;
    Communicator* comm_ = nullptr;
    bool is_send_ = false;
    bool sync_ = false;
    mem::Buffer buf_;
    std::size_t offset_ = 0;
    std::size_t count_ = 0;
    const Datatype* type_ = nullptr;
    int peer_ = 0;
    int tag_ = 0;
    Request active_;
  };
  Persistent send_init(const mem::Buffer& buf, std::size_t offset,
                       std::size_t count, const Datatype& type, int dst,
                       int tag);
  Persistent ssend_init(const mem::Buffer& buf, std::size_t offset,
                        std::size_t count, const Datatype& type, int dst,
                        int tag);
  Persistent recv_init(const mem::Buffer& buf, std::size_t offset,
                       std::size_t count, const Datatype& type, int src,
                       int tag);
  Status recv(const mem::Buffer& buf, std::size_t offset, std::size_t count,
              const Datatype& type, int src, int tag);
  Status wait(Request& req);
  bool test(Request& req);
  /// Completion calls accept mixed request sets: point-to-point, persistent
  /// and collective-backed requests complete through the same engine loop.
  void waitall(std::span<Request> reqs);
  /// Block until any valid request completes; its index, or SIZE_MAX when
  /// the set holds no valid request (MPI_Waitany's MPI_UNDEFINED case).
  std::size_t waitany(std::span<Request> reqs);
  /// One progress pass; true when every valid request is complete.
  bool testall(std::span<Request> reqs);
  /// One progress pass; index of a completed valid request, or nullopt.
  std::optional<std::size_t> testany(std::span<Request> reqs);
  /// Concurrent send+receive (MPI_Sendrecv); deadlock-free by construction.
  Status sendrecv(const mem::Buffer& sbuf, std::size_t soff,
                  std::size_t scount, const Datatype& stype, int dst,
                  int stag, const mem::Buffer& rbuf, std::size_t roff,
                  std::size_t rcount, const Datatype& rtype, int src,
                  int rtag);

  // --- Convenience byte-level wrappers ---------------------------------------
  void send_bytes(const mem::Buffer& buf, std::size_t offset,
                  std::size_t bytes, int dst, int tag) {
    send(buf, offset, bytes, type_byte(), dst, tag);
  }
  Status recv_bytes(const mem::Buffer& buf, std::size_t offset,
                    std::size_t bytes, int src, int tag) {
    return recv(buf, offset, bytes, type_byte(), src, tag);
  }

  // --- Collectives -------------------------------------------------------------
  // The blocking forms post the same compiled schedule as their
  // nonblocking i* counterparts and wait on the returned request — there is
  // one algorithm implementation (the schedule emitters below), not two.
  void barrier();
  void bcast(const mem::Buffer& buf, std::size_t offset, std::size_t count,
             const Datatype& type, int root);
  void reduce(const mem::Buffer& sendbuf, std::size_t soff,
              const mem::Buffer& recvbuf, std::size_t roff, std::size_t count,
              const Datatype& type, Op op, int root);
  void allreduce(const mem::Buffer& sendbuf, std::size_t soff,
                 const mem::Buffer& recvbuf, std::size_t roff,
                 std::size_t count, const Datatype& type, Op op);

  // --- Nonblocking collectives (MPI_I*) ---------------------------------------
  // Each returns immediately with a collective-backed Request that advances
  // under the engine's progress loop (any wait/test on this rank drives it)
  // and completes through the same wait/test/waitall/waitany as p2p
  // requests. Buffers must stay untouched until completion. Collectives —
  // blocking and nonblocking alike — must be posted in the same order on
  // every rank of the communicator.
  Request ibarrier();
  Request ibcast(const mem::Buffer& buf, std::size_t offset,
                 std::size_t count, const Datatype& type, int root);
  Request iallreduce(const mem::Buffer& sendbuf, std::size_t soff,
                     const mem::Buffer& recvbuf, std::size_t roff,
                     std::size_t count, const Datatype& type, Op op);
  Request iallgather(const mem::Buffer& sendbuf, std::size_t soff,
                     std::size_t count, const Datatype& type,
                     const mem::Buffer& recvbuf, std::size_t roff);
  Request ireduce_scatter_block(const mem::Buffer& sendbuf, std::size_t soff,
                                const mem::Buffer& recvbuf, std::size_t roff,
                                std::size_t recvcount, const Datatype& type,
                                Op op);
  /// Reduce size()*recvcount elements from every rank's sendbuf, leaving
  /// rank r with the r-th reduced block of recvcount elements
  /// (MPI_Reduce_scatter_block). Runs the collectives engine's ring
  /// reduce-scatter directly — the bandwidth-optimal building block of the
  /// ring allreduce.
  void reduce_scatter_block(const mem::Buffer& sendbuf, std::size_t soff,
                            const mem::Buffer& recvbuf, std::size_t roff,
                            std::size_t recvcount, const Datatype& type,
                            Op op);
  /// Root gathers `count` elements from every rank into recvbuf, rank order.
  void gather(const mem::Buffer& sendbuf, std::size_t soff, std::size_t count,
              const Datatype& type, const mem::Buffer& recvbuf,
              std::size_t roff, int root);
  void scatter(const mem::Buffer& sendbuf, std::size_t soff,
               std::size_t count, const Datatype& type,
               const mem::Buffer& recvbuf, std::size_t roff, int root);
  void allgather(const mem::Buffer& sendbuf, std::size_t soff,
                 std::size_t count, const Datatype& type,
                 const mem::Buffer& recvbuf, std::size_t roff);
  void alltoall(const mem::Buffer& sendbuf, std::size_t soff,
                std::size_t count, const Datatype& type,
                const mem::Buffer& recvbuf, std::size_t roff);
  /// Inclusive prefix reduction: rank r receives OP over ranks 0..r.
  void scan(const mem::Buffer& sendbuf, std::size_t soff,
            const mem::Buffer& recvbuf, std::size_t roff, std::size_t count,
            const Datatype& type, Op op);
  /// Variable-count gather: rank r contributes counts[r] elements, landing
  /// at displs[r] (in elements) of recvbuf on the root.
  void gatherv(const mem::Buffer& sendbuf, std::size_t soff,
               std::size_t count, const Datatype& type,
               const mem::Buffer& recvbuf, std::size_t roff,
               std::span<const std::size_t> counts,
               std::span<const std::size_t> displs, int root);
  /// Variable-count scatter (inverse of gatherv).
  void scatterv(const mem::Buffer& sendbuf, std::size_t soff,
                std::span<const std::size_t> counts,
                std::span<const std::size_t> displs, const Datatype& type,
                const mem::Buffer& recvbuf, std::size_t roff,
                std::size_t count, int root);

  // --- Fault tolerance (ULFM-style recovery API) -------------------------------
  /// Revoke this communicator: every pending and future operation on it
  /// completes with MpiErrc::Revoked, on every member. NOT collective — any
  /// member may call it unilaterally (typically after an operation returned
  /// ProcFailed); the revocation notice floods to the rest of the group and
  /// is gossiped on first sight.
  void revoke();
  bool revoked() const { return engine_.comm_revoked(id_); }
  /// Fault-tolerant agreement (MPIX_Comm_agree): returns the bitwise OR of
  /// every contributing member's value. Collective over the surviving
  /// members; tolerates participants dying mid-vote (a dead member's value
  /// is included only if it voted before dying). Coordinator succession is
  /// safe: decisions are first-wins, so a takeover after the coordinator's
  /// death cannot fork the outcome. The value is 64 bits regardless of
  /// group size — callers needing a per-member bit (shrink) agree on
  /// 64-rank chunks in consecutive rounds.
  std::uint64_t agree(std::uint64_t value);
  /// Build a new communicator from the surviving members, preserving
  /// relative rank order (MPIX_Comm_shrink). Collective over survivors;
  /// internally runs one agree() round per 64 members on the failed-member
  /// set so every survivor derives the identical group and communicator id
  /// at any group size.
  Communicator shrink();

  // --- Communicator management ------------------------------------------------
  Communicator dup();
  /// Group by `color` (same color => same new communicator), ordered by
  /// (key, old rank). Collective over this communicator.
  Communicator split(int color, int key);

  // --- Utilities ----------------------------------------------------------------
  /// Virtual wall-clock in seconds (MPI_Wtime).
  double wtime() const;
  mem::Buffer alloc(std::size_t bytes, std::size_t align = 64) {
    return engine_.ib().alloc_buffer(bytes, align);
  }
  void free(const mem::Buffer& buf) {
    engine_.forget_buffer(buf);
    engine_.ib().free_buffer(buf);
  }

  /// Cluster-unique id for the next window created on this communicator.
  /// Window creation is collective and posted in the same order on every
  /// member, so the per-comm sequence agrees everywhere — the same argument
  /// that makes next_coll_tag_base consistent.
  std::uint64_t next_win_id() {
    return (static_cast<std::uint64_t>(id_) << 32) | win_seq_++;
  }

  /// Rank-local id for a persistent channel's checker exposures. Unlike
  /// window ids this needs no cross-rank agreement (channels are pairwise
  /// and never touch the lock board), so the counter is free-running; the
  /// high bit keeps the namespace disjoint from window ids.
  std::uint64_t next_channel_id() {
    return (1ull << 63) | (static_cast<std::uint64_t>(id_) << 32) |
           chan_seq_++;
  }

 private:
  int to_world(int comm_rank) const;
  int from_world(int world_rank) const;
  Status translate(Status s) const;

  // --- Collectives engine: schedule emitters (collectives.cpp) ---------------
  // Each emitter appends this rank's stages for one algorithm to a
  // CollSchedule (mpi/coll.hpp); the engine's executor advances them. One
  // emitter per algorithm serves both the blocking and nonblocking entry
  // points. `tag_base` is the schedule's reserved tag window (from
  // next_coll_tag_base); emitters address its phase slots so concurrent
  // collectives on the same communicator never cross-match.

  // Balanced element partition of a vector into per-rank blocks; defined in
  // collectives.cpp (off has size parts+1, off[parts] == total).
  struct BlockPart;

  /// Per-schedule tag window: each collective posted on this communicator
  /// reserves the next kCollSchedPhases-tag slot (round-robin over
  /// kCollSchedWindow slots). Consistent across ranks because collectives
  /// are posted in the same order everywhere.
  int next_coll_tag_base();

  /// Ring reduce-scatter over `part`: P-1 pipelined stages leaving this
  /// rank with the fully reduced block `final_block` in place in buf.
  void emit_rs_ring(CollSchedule& sched, const mem::Buffer& buf,
                    std::size_t base, const BlockPart& part,
                    const Datatype& type, Op op, std::size_t seg_elems,
                    int final_block, const mem::Buffer& scratch, int tag);
  /// Ring allgather over `part`: this rank starts owning `my_block` and,
  /// after P-1 pipelined stages through neighbours `to`/`from` (comm
  /// ranks), holds every block. Block ids live in communicator rank space
  /// or, for bcast, in root-relative vrank space (callers pass translated
  /// `to`/`from`).
  void emit_ag_ring(CollSchedule& sched, const mem::Buffer& buf,
                    std::size_t base, const BlockPart& part,
                    const Datatype& type, std::size_t seg_elems, int my_block,
                    int to, int from, int tag);
  void emit_allreduce_rd(CollSchedule& sched, int tag_base,
                         const mem::Buffer& recvbuf, std::size_t roff,
                         std::size_t count, const Datatype& type, Op op);
  void emit_allreduce_ring(CollSchedule& sched, int tag_base,
                           const mem::Buffer& recvbuf, std::size_t roff,
                           std::size_t count, const Datatype& type, Op op);
  void emit_allreduce_rab(CollSchedule& sched, int tag_base,
                          const mem::Buffer& recvbuf, std::size_t roff,
                          std::size_t count, const Datatype& type, Op op);
  /// Binomial reduce to rank 0 then binomial bcast (the pre-engine
  /// baseline; allreduce's small-comm / forced fallback).
  void emit_allreduce_binomial(CollSchedule& sched, int tag_base,
                               const mem::Buffer& recvbuf, std::size_t roff,
                               std::size_t count, const Datatype& type,
                               Op op);
  void emit_bcast_binomial(CollSchedule& sched, int tag_base,
                           const mem::Buffer& buf, std::size_t offset,
                           std::size_t count, const Datatype& type, int root);
  void emit_bcast_scatter_ag(CollSchedule& sched, int tag_base,
                             const mem::Buffer& buf, std::size_t offset,
                             std::size_t count, const Datatype& type,
                             int root);
  void emit_allgather_rd(CollSchedule& sched, int tag_base,
                         const mem::Buffer& recvbuf, std::size_t roff,
                         std::size_t count, const Datatype& type);

  /// Derived-communicator id: deterministic across members because split is
  /// collective and every member mixes the same ingredients.
  std::uint32_t derive_id(int color);

  Engine& engine_;
  std::uint32_t id_;
  std::vector<int> group_;  ///< comm rank -> world rank
  int my_index_;
  std::uint32_t derive_counter_ = 0;
  /// Collective-schedule counter feeding next_coll_tag_base.
  std::uint64_t coll_seq_ = 0;
  /// Agreement round counter; advances identically on every member because
  /// agree() is collective, so (comm id, round) names one vote board.
  std::uint64_t agree_seq_ = 0;
  /// Window creation counter feeding next_win_id.
  std::uint32_t win_seq_ = 0;
  /// Channel exposure-id counter feeding next_channel_id (rank-local).
  std::uint32_t chan_seq_ = 0;
};

}  // namespace dcfa::mpi
