#pragma once

#include <optional>
#include <span>
#include <vector>

#include "mpi/engine.hpp"

namespace dcfa::mpi {

/// MPI communicator: a group of ranks plus an isolated matching context.
/// Rank numbers in every call are communicator-relative; the engine works on
/// world ranks underneath. Construction of the world communicator is done by
/// the Runtime; derived ones come from dup()/split().
///
/// All buffers are simulated-device memory (`mem::Buffer`), allocated with
/// alloc() in this endpoint's natural domain (Phi GDDR for DCFA-MPI ranks,
/// host DRAM for host MPI ranks).
class Communicator {
 public:
  Communicator(Engine& engine, std::uint32_t id, std::vector<int> group,
               int my_index);

  int rank() const { return my_index_; }
  int size() const { return static_cast<int>(group_.size()); }
  /// World rank of a communicator-relative rank (for engine-level callers).
  int world_rank(int comm_rank) const { return to_world(comm_rank); }
  std::uint32_t id() const { return id_; }
  Engine& engine() { return engine_; }

  // --- Point-to-point --------------------------------------------------------
  Request isend(const mem::Buffer& buf, std::size_t offset, std::size_t count,
                const Datatype& type, int dst, int tag);
  Request irecv(const mem::Buffer& buf, std::size_t offset, std::size_t count,
                const Datatype& type, int src, int tag);
  void send(const mem::Buffer& buf, std::size_t offset, std::size_t count,
            const Datatype& type, int dst, int tag);
  /// Synchronous-mode send: completes only once the receive has matched
  /// (always takes the rendezvous handshake; MPI_Ssend).
  void ssend(const mem::Buffer& buf, std::size_t offset, std::size_t count,
             const Datatype& type, int dst, int tag);
  Request issend(const mem::Buffer& buf, std::size_t offset,
                 std::size_t count, const Datatype& type, int dst, int tag);
  /// Probe for an unmatched incoming message without receiving it.
  std::optional<Status> iprobe(int src, int tag);
  Status probe(int src, int tag);

  /// Persistent communication request (MPI_Send_init / MPI_Recv_init):
  /// captures the call's arguments once; each start() posts a fresh
  /// operation with them. Reusing one buffer across many iterations is the
  /// pattern the paper's MR cache pool exists for.
  class Persistent {
   public:
    Persistent() = default;
    /// Post the operation (MPI_Start). The previous incarnation must have
    /// completed.
    Request& start();
    Request& request() { return active_; }
    bool valid() const { return comm_ != nullptr; }

   private:
    friend class Communicator;
    Communicator* comm_ = nullptr;
    bool is_send_ = false;
    bool sync_ = false;
    mem::Buffer buf_;
    std::size_t offset_ = 0;
    std::size_t count_ = 0;
    const Datatype* type_ = nullptr;
    int peer_ = 0;
    int tag_ = 0;
    Request active_;
  };
  Persistent send_init(const mem::Buffer& buf, std::size_t offset,
                       std::size_t count, const Datatype& type, int dst,
                       int tag);
  Persistent ssend_init(const mem::Buffer& buf, std::size_t offset,
                        std::size_t count, const Datatype& type, int dst,
                        int tag);
  Persistent recv_init(const mem::Buffer& buf, std::size_t offset,
                       std::size_t count, const Datatype& type, int src,
                       int tag);
  Status recv(const mem::Buffer& buf, std::size_t offset, std::size_t count,
              const Datatype& type, int src, int tag);
  Status wait(Request& req);
  bool test(Request& req);
  void waitall(std::span<Request> reqs);
  /// Concurrent send+receive (MPI_Sendrecv); deadlock-free by construction.
  Status sendrecv(const mem::Buffer& sbuf, std::size_t soff,
                  std::size_t scount, const Datatype& stype, int dst,
                  int stag, const mem::Buffer& rbuf, std::size_t roff,
                  std::size_t rcount, const Datatype& rtype, int src,
                  int rtag);

  // --- Convenience byte-level wrappers ---------------------------------------
  void send_bytes(const mem::Buffer& buf, std::size_t offset,
                  std::size_t bytes, int dst, int tag) {
    send(buf, offset, bytes, type_byte(), dst, tag);
  }
  Status recv_bytes(const mem::Buffer& buf, std::size_t offset,
                    std::size_t bytes, int src, int tag) {
    return recv(buf, offset, bytes, type_byte(), src, tag);
  }

  // --- Collectives -------------------------------------------------------------
  void barrier();
  void bcast(const mem::Buffer& buf, std::size_t offset, std::size_t count,
             const Datatype& type, int root);
  void reduce(const mem::Buffer& sendbuf, std::size_t soff,
              const mem::Buffer& recvbuf, std::size_t roff, std::size_t count,
              const Datatype& type, Op op, int root);
  void allreduce(const mem::Buffer& sendbuf, std::size_t soff,
                 const mem::Buffer& recvbuf, std::size_t roff,
                 std::size_t count, const Datatype& type, Op op);
  /// Reduce size()*recvcount elements from every rank's sendbuf, leaving
  /// rank r with the r-th reduced block of recvcount elements
  /// (MPI_Reduce_scatter_block). Runs the collectives engine's ring
  /// reduce-scatter directly — the bandwidth-optimal building block of the
  /// ring allreduce.
  void reduce_scatter_block(const mem::Buffer& sendbuf, std::size_t soff,
                            const mem::Buffer& recvbuf, std::size_t roff,
                            std::size_t recvcount, const Datatype& type,
                            Op op);
  /// Root gathers `count` elements from every rank into recvbuf, rank order.
  void gather(const mem::Buffer& sendbuf, std::size_t soff, std::size_t count,
              const Datatype& type, const mem::Buffer& recvbuf,
              std::size_t roff, int root);
  void scatter(const mem::Buffer& sendbuf, std::size_t soff,
               std::size_t count, const Datatype& type,
               const mem::Buffer& recvbuf, std::size_t roff, int root);
  void allgather(const mem::Buffer& sendbuf, std::size_t soff,
                 std::size_t count, const Datatype& type,
                 const mem::Buffer& recvbuf, std::size_t roff);
  void alltoall(const mem::Buffer& sendbuf, std::size_t soff,
                std::size_t count, const Datatype& type,
                const mem::Buffer& recvbuf, std::size_t roff);
  /// Inclusive prefix reduction: rank r receives OP over ranks 0..r.
  void scan(const mem::Buffer& sendbuf, std::size_t soff,
            const mem::Buffer& recvbuf, std::size_t roff, std::size_t count,
            const Datatype& type, Op op);
  /// Variable-count gather: rank r contributes counts[r] elements, landing
  /// at displs[r] (in elements) of recvbuf on the root.
  void gatherv(const mem::Buffer& sendbuf, std::size_t soff,
               std::size_t count, const Datatype& type,
               const mem::Buffer& recvbuf, std::size_t roff,
               std::span<const std::size_t> counts,
               std::span<const std::size_t> displs, int root);
  /// Variable-count scatter (inverse of gatherv).
  void scatterv(const mem::Buffer& sendbuf, std::size_t soff,
                std::span<const std::size_t> counts,
                std::span<const std::size_t> displs, const Datatype& type,
                const mem::Buffer& recvbuf, std::size_t roff,
                std::size_t count, int root);

  // --- Communicator management ------------------------------------------------
  Communicator dup();
  /// Group by `color` (same color => same new communicator), ordered by
  /// (key, old rank). Collective over this communicator.
  Communicator split(int color, int key);

  // --- Utilities ----------------------------------------------------------------
  /// Virtual wall-clock in seconds (MPI_Wtime).
  double wtime() const;
  mem::Buffer alloc(std::size_t bytes, std::size_t align = 64) {
    return engine_.ib().alloc_buffer(bytes, align);
  }
  void free(const mem::Buffer& buf) {
    engine_.forget_buffer(buf);
    engine_.ib().free_buffer(buf);
  }

 private:
  int to_world(int comm_rank) const;
  int from_world(int world_rank) const;
  Status translate(Status s) const;

  // --- Collectives engine: per-algorithm units (collectives.cpp) -------------
  // Balanced element partition of a vector into per-rank blocks; defined in
  // collectives.cpp (off has size parts+1, off[parts] == total).
  struct BlockPart;

  /// One pipelined ring/halving step: stream `out_len` elements at
  /// buf[base + out_off*extent] to `to` while receiving `in_len` elements
  /// at in_off from `from`, both split into `seg_elems`-element segments.
  /// With `op` set, incoming segments land in the double-buffered `scratch`
  /// and are combined into the in-place block, overlapping the next
  /// segment's transfer; without it they land directly. Returns segments
  /// moved (Stats::coll_segments).
  std::uint64_t pipelined_step(const mem::Buffer& buf, std::size_t base,
                               std::size_t out_off, std::size_t out_len,
                               std::size_t in_off, std::size_t in_len,
                               const Datatype& type, const Op* op,
                               std::size_t seg_elems, int to, int from,
                               int tag, const mem::Buffer& scratch);
  /// Ring reduce-scatter over `part`: P-1 pipelined steps leaving this rank
  /// with the fully reduced block `final_block` in place in buf.
  void reduce_scatter_ring(const mem::Buffer& buf, std::size_t base,
                           const BlockPart& part, const Datatype& type,
                           Op op, std::size_t seg_elems, int final_block,
                           const mem::Buffer& scratch);
  /// Ring allgather over `part`: this rank starts owning `my_block` and,
  /// after P-1 pipelined steps through neighbours `to`/`from`, holds every
  /// block. Block ids live in communicator rank space or, for bcast, in
  /// root-relative vrank space (callers pass translated `to`/`from`).
  void ring_allgather_blocks(const mem::Buffer& buf, std::size_t base,
                             const BlockPart& part, const Datatype& type,
                             std::size_t seg_elems, int my_block, int to,
                             int from, int tag);
  void allreduce_rd(const mem::Buffer& recvbuf, std::size_t roff,
                    std::size_t count, const Datatype& type, Op op);
  void allreduce_ring(const mem::Buffer& recvbuf, std::size_t roff,
                      std::size_t count, const Datatype& type, Op op);
  void allreduce_rab(const mem::Buffer& recvbuf, std::size_t roff,
                     std::size_t count, const Datatype& type, Op op);
  void bcast_binomial(const mem::Buffer& buf, std::size_t offset,
                      std::size_t count, const Datatype& type, int root);
  void bcast_scatter_ag(const mem::Buffer& buf, std::size_t offset,
                        std::size_t count, const Datatype& type, int root);
  void allgather_rd(const mem::Buffer& recvbuf, std::size_t roff,
                    std::size_t count, const Datatype& type);

  /// Derived-communicator id: deterministic across members because split is
  /// collective and every member mixes the same ingredients.
  std::uint32_t derive_id(int color);

  Engine& engine_;
  std::uint32_t id_;
  std::vector<int> group_;  ///< comm rank -> world rank
  int my_index_;
  std::uint32_t derive_counter_ = 0;
};

}  // namespace dcfa::mpi
