// One-sided RMA primitives: thin, direct mappings onto the verbs RDMA ops
// the rendezvous protocols already use. No packets, no sequence ids — the
// target is never involved, which is exactly what the DCFA substrate (user
// space RDMA from the co-processor) buys.

#include <cstring>

#include "mpi/engine.hpp"

namespace dcfa::mpi {

ib::MemoryRegion* Engine::expose_window_mr(const mem::Buffer& buf) {
  ++stats_.rma_mr_negotiations;
  return ib_->reg_mr(pd_, buf,
                     ib::kLocalWrite | ib::kRemoteRead | ib::kRemoteWrite);
}

void Engine::release_window_mr(ib::MemoryRegion* mr) {
  ib_->dereg_mr(mr);
}

void Engine::rma_write(int peer, const mem::Buffer& local, std::size_t loff,
                       std::size_t bytes, mem::SimAddr remote_addr,
                       ib::MKey rkey, std::function<void()> on_done,
                       sim::Checker::AccessOp op) {
  if (peer != rank_ && rank_failed(peer)) {
    ++stats_.proc_failed_ops;
    throw MpiError("RMA write to dead rank " + std::to_string(peer),
                   MpiErrc::ProcFailed, peer);
  }
  chk().rma_remote_access(rank_, peer, remote_addr, bytes);
  // DcfaRace: the remote range is under access from post until completion.
  const std::uint64_t race = chk().race_begin(
      sim::CheckKind::RaceRmaWindow, peer, rank_, remote_addr, bytes, op,
      op == sim::Checker::AccessOp::Accum ? "accumulate" : "put");
  if (peer == rank_) {
    // Local window: plain copy at memcpy cost.
    std::byte* dst = ib_->hca_ref().memory().space(local.domain())
                         .resolve(remote_addr, bytes);
    std::memcpy(dst, local.data() + loff, bytes);
    ib_->charge_memcpy(bytes);
    chk().race_end(race);
    if (on_done) on_done();
    return;
  }
  Endpoint& ep = endpoint(peer);

  // Stage through the offloading send buffer when it pays, like any other
  // large payload leaving a co-processor.
  mem::SimAddr src_addr;
  ib::MKey lkey;
  if (shadow_cache_ && bytes >= offload_threshold_ &&
      local.domain() == mem::Domain::PhiGddr) {
    const core::OffloadRegion& region = shadow_cache_->get(local);
    phi_->sync_offload_mr(region, local, loff, bytes);
    ++stats_.offload_syncs;
    stats_.offload_sync_bytes += bytes;
    src_addr = region.host_addr + loff;
    lkey = region.lkey;
  } else {
    ib::MemoryRegion* mr = register_window(local);
    src_addr = local.addr() + loff;
    lkey = mr->lkey();
  }

  ib::SendWr wr;
  wr.opcode = ib::Opcode::RdmaWrite;
  wr.signaled = true;
  wr.wr_id = next_wr_id_++;
  wr.sg_list = {{src_addr, static_cast<std::uint32_t>(bytes), lkey}};
  wr.remote_addr = remote_addr;
  wr.rkey = rkey;
  outstanding_[wr.wr_id] = [this, race, on_done = std::move(on_done)](
                               const ib::Wc& wc) {
    if (wc.status != ib::WcStatus::Success) {
      throw MpiError(std::string("RMA write failed: ") +
                     ib::wc_status_name(wc.status));
    }
    chk().race_end(race);
    if (on_done) on_done();
  };
  ib_->post_send(ep.qp, std::move(wr));
}

void Engine::rma_read(int peer, const mem::Buffer& local, std::size_t loff,
                      std::size_t bytes, mem::SimAddr remote_addr,
                      ib::MKey rkey, std::function<void()> on_done,
                      sim::Checker::AccessOp op) {
  if (peer != rank_ && rank_failed(peer)) {
    ++stats_.proc_failed_ops;
    throw MpiError("RMA read from dead rank " + std::to_string(peer),
                   MpiErrc::ProcFailed, peer);
  }
  chk().rma_remote_access(rank_, peer, remote_addr, bytes);
  const std::uint64_t race = chk().race_begin(
      sim::CheckKind::RaceRmaWindow, peer, rank_, remote_addr, bytes, op,
      op == sim::Checker::AccessOp::Accum ? "accumulate fetch" : "get");
  if (peer == rank_) {
    const std::byte* src = ib_->hca_ref().memory().space(local.domain())
                               .resolve(remote_addr, bytes);
    std::memcpy(local.data() + loff, src, bytes);
    ib_->charge_memcpy(bytes);
    chk().race_end(race);
    if (on_done) on_done();
    return;
  }
  Endpoint& ep = endpoint(peer);
  ib::MemoryRegion* mr = register_window(local);

  ib::SendWr wr;
  wr.opcode = ib::Opcode::RdmaRead;
  wr.signaled = true;
  wr.wr_id = next_wr_id_++;
  wr.sg_list = {{local.addr() + loff, static_cast<std::uint32_t>(bytes),
                 mr->lkey()}};
  wr.remote_addr = remote_addr;
  wr.rkey = rkey;
  outstanding_[wr.wr_id] = [this, race, on_done = std::move(on_done)](
                               const ib::Wc& wc) {
    if (wc.status != ib::WcStatus::Success) {
      throw MpiError(std::string("RMA read failed: ") +
                     ib::wc_status_name(wc.status));
    }
    chk().race_end(race);
    if (on_done) on_done();
  };
  ib_->post_send(ep.qp, std::move(wr));
}

void Engine::rma_write_prereg(int peer, mem::SimAddr local_addr,
                              ib::MKey lkey, std::size_t bytes,
                              mem::SimAddr remote_addr, ib::MKey rkey,
                              std::function<void()> on_done) {
  if (peer != rank_ && rank_failed(peer)) {
    ++stats_.proc_failed_ops;
    throw MpiError("channel post to dead rank " + std::to_string(peer),
                   MpiErrc::ProcFailed, peer);
  }
  chk().rma_remote_access(rank_, peer, remote_addr, bytes);
  // DcfaRace: only persistent channels use the prereg path, so the remote
  // range is a channel cell (payload slot or doorbell word).
  const std::uint64_t race = chk().race_begin(
      sim::CheckKind::RaceChannelCell, peer, rank_, remote_addr, bytes,
      sim::Checker::AccessOp::Write, "channel post");
  if (peer == rank_) {
    // Self channel: both sides live in this rank's node memory. Simulated
    // addresses encode the domain (mem::base_for puts PhiGddr at bit 39),
    // so each endpoint resolves through its own space.
    auto& memory = ib_->hca_ref().memory();
    auto resolve = [&](mem::SimAddr a, std::size_t n) {
      const mem::Domain d = (a >> 39) & 1 ? mem::Domain::PhiGddr
                                          : mem::Domain::HostDram;
      return memory.space(d).resolve(a, n);
    };
    std::memcpy(resolve(remote_addr, bytes), resolve(local_addr, bytes),
                bytes);
    ib_->charge_memcpy(bytes);
    chk().race_end(race);
    if (on_done) on_done();
    return;
  }
  Endpoint& ep = endpoint(peer);

  ib::SendWr wr;
  wr.opcode = ib::Opcode::RdmaWrite;
  wr.signaled = true;
  wr.wr_id = next_wr_id_++;
  wr.sg_list = {{local_addr, static_cast<std::uint32_t>(bytes), lkey}};
  wr.remote_addr = remote_addr;
  wr.rkey = rkey;
  outstanding_[wr.wr_id] = [this, race, on_done = std::move(on_done)](
                               const ib::Wc& wc) {
    if (wc.status != ib::WcStatus::Success) {
      throw MpiError(std::string("channel post failed: ") +
                     ib::wc_status_name(wc.status));
    }
    chk().race_end(race);
    if (on_done) on_done();
  };
  ib_->post_send(ep.qp, std::move(wr));
}

std::pair<mem::SimAddr, ib::MKey> Engine::rma_stage(const mem::Buffer& local,
                                                    std::size_t loff,
                                                    std::size_t bytes,
                                                    ib::MKey direct_lkey) {
  if (shadow_cache_ && bytes >= offload_threshold_ &&
      local.domain() == mem::Domain::PhiGddr) {
    const core::OffloadRegion& region = shadow_cache_->get(local);
    phi_->sync_offload_mr(region, local, loff, bytes);
    ++stats_.offload_syncs;
    stats_.offload_sync_bytes += bytes;
    return {region.host_addr + loff, region.lkey};
  }
  return {local.addr() + loff, direct_lkey};
}

void Engine::wait_until(const std::function<bool()>& pred) {
  while (!pred()) {
    wake_pending_ = false;
    progress();
    if (pred()) return;
    if (!wake_pending_) ib_->process().wait_on(wake_);
  }
}

}  // namespace dcfa::mpi
