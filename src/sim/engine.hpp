#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/time.hpp"

namespace dcfa::sim {

class Checker;
class Process;

/// Deterministic discrete-event engine.
///
/// The engine owns a priority queue of (time, sequence) ordered events and a
/// set of cooperative processes. Exactly one thread — either the engine's
/// caller inside an event callback, or a single resumed Process — runs at any
/// moment, so simulation state needs no locking and every run with the same
/// inputs produces the same event order.
///
/// Scheduling is O(active contexts), not O(all ranks): blocked processes
/// cost nothing until an event resumes them, finished processes release
/// their stacks and bodies immediately (Process::finish_cleanup), and the
/// live-process count is a counter, not a sweep. The execution backend —
/// stackful fibers over a small worker pool, or one OS thread per process —
/// is picked by SchedConfig (sim/fiber.hpp) and never affects event order.
class Engine {
 public:
  using Callback = std::function<void()>;

  /// Backend/pool/stack from the environment (DCFA_SIM_SCHED,
  /// DCFA_SIM_THREADS, DCFA_SIM_STACK_KB; see SchedConfig::from_env).
  Engine();
  /// Explicit scheduler configuration (tests pin pool sizes with this).
  explicit Engine(SchedConfig sched);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedule `cb` to run at absolute virtual time `t` (must be >= now()).
  void schedule_at(Time t, Callback cb);

  /// Schedule `cb` to run `delay` nanoseconds from now.
  void schedule_after(Time delay, Callback cb);

  /// Create a process whose body starts executing at the current time once
  /// run() reaches it. The engine owns the process; its body runs on a
  /// resumable context that only executes while the engine has handed it
  /// control.
  Process& spawn(std::string name, std::function<void(Process&)> body);

  /// Run until the event queue is empty. Returns normally when every spawned
  /// process has finished; throws DeadlockError if processes remain blocked
  /// with no pending events (naming the stuck processes).
  void run();

  /// Run until the event queue is empty or virtual time would exceed
  /// `deadline`; remaining events stay queued. Does not throw on blocked
  /// processes (useful for driving partial scenarios in tests).
  void run_until(Time deadline);

  /// Number of processes that have been spawned and not yet finished. O(1).
  std::size_t live_processes() const { return live_; }

  /// Abandon any still-parked processes and release every execution
  /// context. Owners whose members are referenced from process bodies
  /// (fabrics, memories) call this at the top of their destructors so no
  /// context is still unwinding when those members die. Idempotent; the
  /// destructor calls it too.
  void join_all();

  /// Total events executed so far (for determinism tests and stats).
  std::uint64_t events_executed() const { return events_executed_; }

  /// The scheduler configuration this engine runs under.
  const SchedConfig& sched_config() const { return sched_; }

  /// The DcfaCheck invariant checker for this cluster. Created lazily at
  /// the level named by DCFA_CHECK (off|cheap|full; unset = cheap), so each
  /// Engine — and therefore each test cluster — gets fresh shadow state.
  Checker& checker();

 private:
  friend class Process;

  struct Event {
    Time time;
    std::uint64_t prio;  ///< 0 under Fifo; splitmix64(seed, seq) under Explore
    std::uint64_t seq;
    Callback cb;
  };
  /// (time, prio, seq): virtual time always dominates, so exploration only
  /// permutes events that are logically concurrent. Under Fifo every prio
  /// is 0 and the historical (time, seq) order falls out unchanged; under
  /// Explore the prio draw realizes one seeded random schedule, with seq as
  /// the deterministic tie-break.
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.prio != b.prio) return a.prio > b.prio;
      return a.seq > b.seq;
    }
  };

  void step(const Event& ev);
  void check_deadlock() const;
  /// Dispatch a fiber resume to its pinned pool worker (or inline).
  void run_resume(Process& p);
  void note_process_finished() { --live_; }

  Time now_ = 0;
  bool process_failed_ = false;  // set by Process when a body dies on an exception
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::size_t live_ = 0;
  SchedConfig sched_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  /// Declared before processes_: abandoned fibers unwind on their pinned
  /// workers from ~Process, so the pool must outlive the process list.
  std::unique_ptr<FiberPool> pool_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::unique_ptr<Checker> checker_;
};

/// Thrown by Engine::run() when all events have drained but processes are
/// still blocked on conditions that can never fire.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace dcfa::sim
