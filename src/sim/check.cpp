#include "sim/check.hpp"

#include <cstdlib>
#include <sstream>

namespace dcfa::sim {

const char* check_kind_name(CheckKind k) {
  switch (k) {
    case CheckKind::SeqRegression: return "seq-regression";
    case CheckKind::SeqGap: return "seq-gap";
    case CheckKind::CreditOverrun: return "credit-overrun";
    case CheckKind::CreditRegression: return "credit-regression";
    case CheckKind::DoubleCredit: return "double-credit";
    case CheckKind::MrUseAfterDereg: return "mr-use-after-dereg";
    case CheckKind::MrUnknownKey: return "mr-unknown-key";
    case CheckKind::MrOutOfBounds: return "mr-out-of-bounds";
    case CheckKind::StaleEpoch: return "stale-epoch";
    case CheckKind::EpochRegression: return "epoch-regression";
    case CheckKind::TagWindowAlias: return "tag-window-alias";
    case CheckKind::StageOrder: return "stage-order";
    case CheckKind::WireBounds: return "wire-bounds";
    case CheckKind::FailureReplay: return "failure-replay";
    case CheckKind::DeadRankTraffic: return "dead-rank-traffic";
    case CheckKind::RevokedUse: return "revoked-use";
    case CheckKind::RmaNoEpoch: return "rma-no-epoch";
    case CheckKind::RmaLockConflict: return "rma-lock-conflict";
    case CheckKind::RmaLockOrder: return "rma-lock-order";
    case CheckKind::RmaUnflushed: return "rma-unflushed";
    case CheckKind::RmaBounds: return "rma-bounds";
    case CheckKind::RaceRmaWindow: return "race-rma-window";
    case CheckKind::RaceBufferReuse: return "race-buffer-reuse";
    case CheckKind::RaceChannelCell: return "race-channel-cell";
  }
  return "unknown";
}

const char* check_level_name(CheckLevel l) {
  switch (l) {
    case CheckLevel::Off: return "off";
    case CheckLevel::Cheap: return "cheap";
    case CheckLevel::Full: return "full";
  }
  return "unknown";
}

CheckLevel Checker::parse_level(const std::string& s) {
  if (s == "off" || s == "0") return CheckLevel::Off;
  if (s == "cheap" || s.empty()) return CheckLevel::Cheap;
  if (s == "full") return CheckLevel::Full;
  throw std::invalid_argument("DCFA_CHECK: unknown level '" + s +
                              "' (expected off|cheap|full)");
}

CheckLevel Checker::level_from_env() {
  const char* v = std::getenv("DCFA_CHECK");
  if (!v) return CheckLevel::Cheap;
  return parse_level(v);
}

Checker::Checker(CheckLevel level) : level_(level) {}

void Checker::violate(CheckKind kind, const std::string& what) {
  ++violations_;
  std::ostringstream os;
  os << "DcfaCheck[" << check_kind_name(kind) << "] " << what;
  // Under an explored schedule every report names its own reproduction:
  // rerun with DCFA_SIM_SCHEDULE set to this token (scripts/race_explore.py
  // prints exactly this suffix).
  if (!schedule_token_.empty()) os << " [schedule=" << schedule_token_ << "]";
  throw CheckError(kind, os.str());
}

void Checker::wire_bounds_violation(const std::string& what) {
  throw CheckError(CheckKind::WireBounds, "DcfaCheck[wire-bounds] " + what);
}

// --- sequence ledgers -------------------------------------------------------

namespace {
std::string chan_str(const char* role, int rank, int peer, std::uint32_t comm,
                     int tag) {
  std::ostringstream os;
  os << role << " rank " << rank << " <-> peer " << peer << " comm " << comm
     << " tag " << tag;
  return os.str();
}
}  // namespace

// Sequence ids are 0-based per channel and must advance by exactly 1 per
// assignment/acceptance. The ledger stores the last seen id; map presence
// distinguishes "nothing yet" from "last was 0", keeping the first id
// strictly checked too.
void Checker::check_seq(std::map<ChannelKey, std::uint64_t>& ledger,
                        const char* role, int rank, int peer,
                        std::uint32_t comm, int tag, std::uint64_t seq) {
  count();
  const ChannelKey key{rank, peer, comm, tag};
  auto it = ledger.find(key);
  const std::uint64_t expected = it == ledger.end() ? 0 : it->second + 1;
  if (seq < expected)
    violate(CheckKind::SeqRegression,
            std::string(role) + " seq " + std::to_string(seq) +
                " at/below ledger (expected " + std::to_string(expected) +
                ", " + chan_str(role, rank, peer, comm, tag) + ")");
  if (seq > expected)
    violate(CheckKind::SeqGap,
            std::string(role) + " seq skipped ahead to " +
                std::to_string(seq) + " (expected " +
                std::to_string(expected) + ", " +
                chan_str(role, rank, peer, comm, tag) + ")");
  ledger[key] = seq;
}

namespace {
// (comm, tag) folded to one word so a p2p edge key fits hb_key's arity.
std::uint64_t comm_tag(std::uint32_t comm, int tag) {
  return (static_cast<std::uint64_t>(comm) << 32) ^
         static_cast<std::uint32_t>(tag);
}
}  // namespace

void Checker::send_seq_assigned(int rank, int peer, std::uint32_t comm,
                                int tag, std::uint64_t seq) {
  if (!on()) return;
  check_seq(send_seq_, "send", rank, peer, comm, tag, seq);
  // HB edge source: everything the sender did before assigning this seq is
  // released to whichever receive admits it (packet_accepted/claimed).
  if (full()) hb_release(rank, hb_key(1, rank, peer, comm_tag(comm, tag), seq));
}

void Checker::recv_seq_assigned(int rank, int peer, std::uint32_t comm,
                                int tag, std::uint64_t seq) {
  if (!on()) return;
  check_seq(recv_seq_, "recv", rank, peer, comm, tag, seq);
}

void Checker::packet_accepted(int rank, int src, std::uint32_t comm, int tag,
                              std::uint64_t seq) {
  if (!on()) return;
  count();
  AcceptState& as = accepted_[{rank, src, comm, tag}];
  if (seq < as.next || as.claimed.count(seq) > 0)
    violate(CheckKind::SeqRegression,
            "accept seq " + std::to_string(seq) + " admitted twice (" +
                chan_str("accept", rank, src, comm, tag) + ")");
  // A hole below the arriving seq is only legal if every missing seq was
  // claimed by a receiver-first rendezvous (admitted out of arrival order).
  for (std::uint64_t s = as.next; s < seq; ++s) {
    if (as.claimed.erase(s) == 0)
      violate(CheckKind::SeqGap,
              "accept seq skipped ahead to " + std::to_string(seq) +
                  " but seq " + std::to_string(s) +
                  " never arrived nor was claimed (" +
                  chan_str("accept", rank, src, comm, tag) + ")");
  }
  as.next = seq + 1;
  while (as.claimed.erase(as.next) > 0) ++as.next;
  // HB edge sink: the admitting receiver acquires the sender's history at
  // seq assignment. Each seq is admitted exactly once (accept xor claim),
  // so the edge is consumed here.
  if (full())
    hb_acquire(rank, hb_key(1, src, rank, comm_tag(comm, tag), seq), true);
}

void Checker::packet_claimed(int rank, int src, std::uint32_t comm, int tag,
                             std::uint64_t seq) {
  if (!on()) return;
  count();
  AcceptState& as = accepted_[{rank, src, comm, tag}];
  if (seq < as.next || as.claimed.count(seq) > 0)
    violate(CheckKind::SeqRegression,
            "receiver-first claim of seq " + std::to_string(seq) +
                " which was already admitted (" +
                chan_str("claim", rank, src, comm, tag) + ")");
  as.claimed.insert(seq);
  while (as.claimed.erase(as.next) > 0) ++as.next;
  if (full())
    hb_acquire(rank, hb_key(1, src, rank, comm_tag(comm, tag), seq), true);
}

// --- credit accounting ------------------------------------------------------

void Checker::packet_emitted(int rank, int peer, std::uint64_t sent,
                             std::uint64_t in_flight, std::uint64_t cap) {
  if (!on()) return;
  count();
  CreditState& cs = credit_[{rank, peer}];
  if (cap != 0 && in_flight > cap)
    violate(CheckKind::CreditOverrun,
            "rank " + std::to_string(rank) + " -> " + std::to_string(peer) +
                ": " + std::to_string(in_flight) +
                " eager packets in flight but ring has only " +
                std::to_string(cap) + " slots");
  if (sent <= cs.emitted)
    violate(CheckKind::CreditRegression,
            "rank " + std::to_string(rank) + " -> " + std::to_string(peer) +
                ": sent counter moved " + std::to_string(cs.emitted) + " -> " +
                std::to_string(sent));
  cs.emitted = sent;
}

void Checker::packet_consumed(int rank, int peer, std::uint64_t consumed) {
  if (!on()) return;
  count();
  CreditState& cs = credit_[{rank, peer}];
  if (consumed != cs.consumed + 1)
    violate(CheckKind::DoubleCredit,
            "rank " + std::to_string(rank) + " consumed-counter from peer " +
                std::to_string(peer) + " moved " +
                std::to_string(cs.consumed) + " -> " +
                std::to_string(consumed) + " (must advance by exactly 1)");
  cs.consumed = consumed;
}

void Checker::credit_written(int rank, int peer, std::uint64_t value) {
  if (!on()) return;
  count();
  CreditState& cs = credit_[{rank, peer}];
  if (value <= cs.written && value != 0)
    violate(CheckKind::CreditRegression,
            "rank " + std::to_string(rank) + " re-wrote credit " +
                std::to_string(value) + " toward peer " +
                std::to_string(peer) + " (last written " +
                std::to_string(cs.written) + ")");
  if (value > cs.consumed)
    violate(CheckKind::DoubleCredit,
            "rank " + std::to_string(rank) + " wrote credit " +
                std::to_string(value) + " toward peer " +
                std::to_string(peer) + " but has only consumed " +
                std::to_string(cs.consumed) + " packets");
  cs.written = value;
}

void Checker::credit_read(int rank, int peer, std::uint64_t value) {
  if (!on()) return;
  count();
  CreditState& cs = credit_[{rank, peer}];
  if (value < cs.read)
    violate(CheckKind::CreditRegression,
            "rank " + std::to_string(rank) + " read credit " +
                std::to_string(value) + " from peer " + std::to_string(peer) +
                " below previous " + std::to_string(cs.read));
  if (value > cs.emitted)
    violate(CheckKind::DoubleCredit,
            "rank " + std::to_string(rank) + " read credit " +
                std::to_string(value) + " from peer " + std::to_string(peer) +
                " but only emitted " + std::to_string(cs.emitted) +
                " packets (peer acked packets that were never sent)");
  if (full()) {
    // Cross-rank: the value in our cell must be one the peer's credit
    // writer actually produced, i.e. no larger than the peer's last write
    // toward us. Only comparable while both directions sit in the same
    // connection epoch (reconnect resets both sides at different times).
    auto it = credit_.find({peer, rank});
    if (it != credit_.end() && it->second.epoch == cs.epoch &&
        value > it->second.written)
      violate(CheckKind::DoubleCredit,
              "rank " + std::to_string(rank) + " read credit " +
                  std::to_string(value) + " from peer " +
                  std::to_string(peer) + " but peer only wrote " +
                  std::to_string(it->second.written));
  }
  cs.read = value;
}

// --- MR lifecycle -----------------------------------------------------------

void Checker::mr_registered(const void* owner, std::uint64_t lkey,
                            std::uint64_t rkey, std::uint64_t addr,
                            std::uint64_t len) {
  if (!on()) return;
  count();
  mrs_[{owner, lkey}] = MrState{addr, len, true};
  mrs_[{owner, rkey}] = MrState{addr, len, true};
}

void Checker::mr_deregistered(const void* owner, std::uint64_t lkey,
                              std::uint64_t rkey) {
  if (!on()) return;
  count();
  auto kill = [this, owner](std::uint64_t key) {
    auto it = mrs_.find({owner, key});
    if (it != mrs_.end()) it->second.live = false;
  };
  kill(lkey);
  kill(rkey);
}

void Checker::mr_used(const void* owner, std::uint64_t key,
                      std::uint64_t addr, std::uint64_t len) {
  if (!on()) return;
  count();
  auto it = mrs_.find({owner, key});
  if (it == mrs_.end()) {
    // Key never registered with this checker. The HCA's own protection
    // checks report these as LocalProtectionError completions; unknown keys
    // also arise for MRs registered before the checker existed, so only
    // flag keys we have definitely seen die.
    return;
  }
  if (!it->second.live)
    violate(CheckKind::MrUseAfterDereg,
            "key " + std::to_string(key) + " used after dereg (window was [" +
                std::to_string(it->second.addr) + ", " +
                std::to_string(it->second.addr + it->second.len) + "))");
  if (full() && len != 0) {
    const MrState& mr = it->second;
    if (addr < mr.addr || addr + len > mr.addr + mr.len)
      violate(CheckKind::MrOutOfBounds,
              "key " + std::to_string(key) + " use [" + std::to_string(addr) +
                  ", " + std::to_string(addr + len) +
                  ") outside registered window [" + std::to_string(mr.addr) +
                  ", " + std::to_string(mr.addr + mr.len) + ")");
  }
}

// --- connection epochs ------------------------------------------------------

void Checker::epoch_advanced(int rank, int peer, std::uint32_t epoch) {
  if (!on()) return;
  count();
  std::uint32_t& cur = epoch_[{rank, peer}];
  if (epoch <= cur)
    violate(CheckKind::EpochRegression,
            "rank " + std::to_string(rank) + " -> peer " +
                std::to_string(peer) + ": epoch moved " +
                std::to_string(cur) + " -> " + std::to_string(epoch));
  cur = epoch;
  // Reconnect rebuilds the ring: the eager counters restart from zero on the
  // new connection. The send/recv/accept sequence ledgers survive — requests
  // are replayed with their original seqs and replay dedup keeps delivery
  // exactly-once, so those ledgers must stay monotonic across epochs.
  CreditState& cs = credit_[{rank, peer}];
  cs = CreditState{};
  cs.epoch = epoch;
}

void Checker::packet_epoch(int rank, int src, std::uint32_t pkt_epoch,
                           std::uint32_t ep_epoch) {
  if (!on()) return;
  count();
  if (pkt_epoch != ep_epoch)
    violate(CheckKind::StaleEpoch,
            "rank " + std::to_string(rank) + " admitted packet from " +
                std::to_string(src) + " carrying epoch " +
                std::to_string(pkt_epoch) + " while connection is at epoch " +
                std::to_string(ep_epoch));
}

// --- collective tag windows and schedule stages -----------------------------

std::uint64_t Checker::coll_started(int rank, std::uint32_t comm,
                                    int window_slot, std::size_t stages) {
  if (!on()) return 0;
  count();
  if (revoked_seen_.count({rank, comm}) > 0)
    violate(CheckKind::RevokedUse,
            "rank " + std::to_string(rank) +
                " started a collective schedule on revoked comm " +
                std::to_string(comm) +
                " (the engine must born-fail such requests)");
  if (window_slot >= 0) {
    auto key = std::make_tuple(rank, comm, window_slot);
    auto it = window_.find(key);
    if (it != window_.end())
      violate(CheckKind::TagWindowAlias,
              "rank " + std::to_string(rank) + " comm " +
                  std::to_string(comm) + ": tag-window slot " +
                  std::to_string(window_slot) +
                  " already occupied by a live schedule");
    colls_.push_back(CollState{rank, comm, window_slot, stages, 0, true});
    window_[key] = colls_.size();
  } else {
    colls_.push_back(CollState{rank, comm, window_slot, stages, 0, true});
  }
  return colls_.size();  // 1-based; 0 means "checker off"
}

void Checker::stage_started(std::uint64_t check_id, std::size_t stage) {
  if (!on() || check_id == 0) return;
  count();
  CollState& cs = colls_.at(check_id - 1);
  if (!cs.live)
    violate(CheckKind::StageOrder,
            "stage " + std::to_string(stage) +
                " started on a finished schedule (check id " +
                std::to_string(check_id) + ")");
  if (stage != cs.next_stage)
    violate(CheckKind::StageOrder,
            "schedule on rank " + std::to_string(cs.rank) + " started stage " +
                std::to_string(stage) + " but stage " +
                std::to_string(cs.next_stage) + " is next in DAG order");
  if (stage >= cs.stages)
    violate(CheckKind::StageOrder,
            "schedule on rank " + std::to_string(cs.rank) + " started stage " +
                std::to_string(stage) + " of " + std::to_string(cs.stages));
  cs.next_stage = stage + 1;
}

void Checker::coll_finished(std::uint64_t check_id) {
  if (!on() || check_id == 0) return;
  count();
  CollState& cs = colls_.at(check_id - 1);
  if (!cs.live)
    violate(CheckKind::StageOrder, "schedule finished twice (check id " +
                                       std::to_string(check_id) + ")");
  if (cs.next_stage != cs.stages)
    violate(CheckKind::StageOrder,
            "schedule on rank " + std::to_string(cs.rank) +
                " finished after stage " + std::to_string(cs.next_stage) +
                " of " + std::to_string(cs.stages));
  cs.live = false;
  window_.erase({cs.rank, cs.comm, cs.window_slot});
}

void Checker::coll_failed(std::uint64_t check_id) {
  if (!on() || check_id == 0) return;
  count();
  CollState& cs = colls_.at(check_id - 1);
  if (!cs.live) return;  // failing an already-finished schedule is a no-op
  cs.live = false;
  window_.erase({cs.rank, cs.comm, cs.window_slot});
}

// --- RMA windows: exposures, epoch machine, locks, flushes -------------------

namespace {
std::string win_str(int rank, std::uint64_t win) {
  std::ostringstream os;
  os << "rank " << rank << " win " << std::hex << win;
  return os.str();
}
}  // namespace

void Checker::rma_exposed(int rank, std::uint64_t id, std::uint64_t addr,
                          std::uint64_t len) {
  if (!on()) return;
  count();
  rma_exposures_[{rank, id}] = Exposure{addr, len};
}

void Checker::rma_unexposed(int rank, std::uint64_t id) {
  if (!on()) return;
  count();
  rma_exposures_.erase({rank, id});
}

void Checker::rma_remote_access(int rank, int target, std::uint64_t addr,
                                std::uint64_t len) {
  if (!full()) return;
  count();
  // The access must land wholly inside one region `target` exposed. This is
  // the remote-rkey path: the origin's own argument checks can be wrong (or
  // bypassed), so the bounds are re-derived from the target's ledger.
  auto it = rma_exposures_.lower_bound({target, 0});
  for (; it != rma_exposures_.end() && it->first.first == target; ++it) {
    const Exposure& e = it->second;
    if (addr >= e.addr && addr + len <= e.addr + e.len) return;
  }
  violate(CheckKind::RmaBounds,
          "rank " + std::to_string(rank) + " RMA access [" +
              std::to_string(addr) + ", " + std::to_string(addr + len) +
              ") is outside every region rank " + std::to_string(target) +
              " exposed");
}

void Checker::win_fence(int rank, std::uint64_t win) {
  if (!on()) return;
  count();
  RmaEpochState& st = rma_state(rank, win);
  if (st.lock_all || !st.locks.empty())
    violate(CheckKind::RmaLockOrder,
            "fence on " + win_str(rank, win) +
                " while passive-target locks are held (sync modes must not "
                "mix within an epoch)");
  if (st.pending_total != 0)
    violate(CheckKind::RmaUnflushed,
            "fence on " + win_str(rank, win) + " closed with " +
                std::to_string(st.pending_total) +
                " ops still pending (the engine must quiesce first)");
  st.fence_open = true;
  st.pending.clear();
}

void Checker::win_lock(int rank, std::uint64_t win, int target,
                       bool exclusive) {
  if (!on()) return;
  count();
  RmaEpochState& st = rma_state(rank, win);
  if (st.locks.count(target) > 0 || st.lock_all)
    violate(CheckKind::RmaLockOrder,
            win_str(rank, win) + ": lock(target " + std::to_string(target) +
                ") while already holding a lock there (double lock)");
  // Lock-compatibility matrix: shared|shared is the only concurrent pair.
  RmaLockHolders& h = rma_locks_[{win, target}];
  if (h.exclusive >= 0)
    violate(CheckKind::RmaLockConflict,
            win_str(rank, win) + ": lock(target " + std::to_string(target) +
                ") granted while rank " + std::to_string(h.exclusive) +
                " holds the exclusive lock");
  if (exclusive && !h.shared.empty())
    violate(CheckKind::RmaLockConflict,
            win_str(rank, win) + ": exclusive lock on target " +
                std::to_string(target) + " granted while " +
                std::to_string(h.shared.size()) + " shared lock(s) are held");
  if (exclusive)
    h.exclusive = rank;
  else
    h.shared.insert(rank);
  st.locks.insert(target);
  // Lock acquisition orders this origin after every previous unlock of the
  // same (win, target): the cumulative release chain below.
  if (full()) hb_acquire(rank, hb_key(2, win, target, 0, 0), false);
}

void Checker::win_unlock(int rank, std::uint64_t win, int target) {
  if (!on()) return;
  count();
  RmaEpochState& st = rma_state(rank, win);
  if (st.locks.count(target) == 0)
    violate(CheckKind::RmaLockOrder,
            win_str(rank, win) + ": unlock(target " + std::to_string(target) +
                ") without holding a lock there");
  const std::uint64_t pending = st.pending.count(target) ? st.pending[target]
                                                         : 0;
  if (pending != 0)
    violate(CheckKind::RmaUnflushed,
            win_str(rank, win) + ": unlock(target " + std::to_string(target) +
                ") with " + std::to_string(pending) +
                " ops still pending (unlock implies flush)");
  st.locks.erase(target);
  RmaLockHolders& h = rma_locks_[{win, target}];
  if (h.exclusive == rank)
    h.exclusive = -1;
  else
    h.shared.erase(rank);
  // Unlock implies flush (checked above), so everything this origin did in
  // the epoch is visible to the next locker of (win, target).
  if (full()) hb_release(rank, hb_key(2, win, target, 0, 0));
}

void Checker::win_lock_all(int rank, std::uint64_t win, int nranks) {
  if (!on()) return;
  count();
  RmaEpochState& st = rma_state(rank, win);
  if (st.lock_all || !st.locks.empty())
    violate(CheckKind::RmaLockOrder,
            win_str(rank, win) +
                ": lock_all while already inside a passive epoch");
  // lock_all is shared mode on every target: conflicts only with exclusive.
  for (int t = 0; t < nranks; ++t) {
    RmaLockHolders& h = rma_locks_[{win, t}];
    if (h.exclusive >= 0)
      violate(CheckKind::RmaLockConflict,
              win_str(rank, win) + ": lock_all granted while rank " +
                  std::to_string(h.exclusive) +
                  " holds the exclusive lock on target " + std::to_string(t));
    h.shared.insert(rank);
    if (full()) hb_acquire(rank, hb_key(2, win, t, 0, 0), false);
  }
  st.lock_all = true;
  st.lock_all_n = nranks;
}

void Checker::win_unlock_all(int rank, std::uint64_t win) {
  if (!on()) return;
  count();
  RmaEpochState& st = rma_state(rank, win);
  if (!st.lock_all)
    violate(CheckKind::RmaLockOrder,
            win_str(rank, win) + ": unlock_all without lock_all");
  if (st.pending_total != 0)
    violate(CheckKind::RmaUnflushed,
            win_str(rank, win) + ": unlock_all with " +
                std::to_string(st.pending_total) +
                " ops still pending (unlock implies flush)");
  for (auto& [key, h] : rma_locks_) {
    if (key.first != win) continue;
    if (h.exclusive == rank) h.exclusive = -1;
    h.shared.erase(rank);
  }
  if (full()) {
    for (int t = 0; t < st.lock_all_n; ++t)
      hb_release(rank, hb_key(2, win, t, 0, 0));
  }
  st.lock_all = false;
  st.lock_all_n = 0;
  st.pending.clear();
}

void Checker::rma_op(int rank, std::uint64_t win, int target) {
  if (!on()) return;
  count();
  RmaEpochState& st = rma_state(rank, win);
  const bool passive = st.lock_all || st.locks.count(target) > 0;
  if (!passive) {
    if (!st.locks.empty())
      violate(CheckKind::RmaNoEpoch,
              win_str(rank, win) + ": op toward target " +
                  std::to_string(target) +
                  " which is not covered by the held lock set");
    else if (!st.fence_open)
      violate(CheckKind::RmaNoEpoch,
              win_str(rank, win) + ": op toward target " +
                  std::to_string(target) +
                  " with no access epoch open (no fence, no lock)");
  }
  ++st.pending[target];
  ++st.pending_total;
}

void Checker::rma_completed(int rank, std::uint64_t win, int target) {
  if (!on()) return;
  count();
  RmaEpochState& st = rma_state(rank, win);
  auto it = st.pending.find(target);
  if (it != st.pending.end() && it->second > 0) {
    --it->second;
    --st.pending_total;
  }
}

void Checker::rma_flushed(int rank, std::uint64_t win, int target) {
  if (!on()) return;
  count();
  RmaEpochState& st = rma_state(rank, win);
  if (!st.lock_all && st.locks.count(target) == 0)
    violate(CheckKind::RmaLockOrder,
            win_str(rank, win) + ": flush(target " + std::to_string(target) +
                ") outside a passive-target epoch");
  const std::uint64_t pending = st.pending.count(target) ? st.pending[target]
                                                         : 0;
  if (pending != 0)
    violate(CheckKind::RmaUnflushed,
            win_str(rank, win) + ": flush(target " + std::to_string(target) +
                ") reported complete with " + std::to_string(pending) +
                " ops still pending (the engine must drain first)");
}

void Checker::win_freed(int rank, std::uint64_t win) {
  if (!on()) return;
  count();
  RmaEpochState& st = rma_state(rank, win);
  if (st.lock_all || !st.locks.empty())
    violate(CheckKind::RmaLockOrder,
            win_str(rank, win) + ": freed while passive-target locks are "
                                 "held");
  if (st.pending_total != 0)
    violate(CheckKind::RmaUnflushed,
            win_str(rank, win) + ": freed with " +
                std::to_string(st.pending_total) + " ops still pending");
  rma_state_.erase({rank, win});
}

// --- rank-failure / revocation ledgers --------------------------------------

void Checker::rank_failed(int rank, int failed) {
  if (!on()) return;
  count();
  if (rank == failed)
    violate(CheckKind::DeadRankTraffic,
            "rank " + std::to_string(rank) +
                " adopted its own failure (a dead rank must unwind, not "
                "observe itself)");
  if (!failures_seen_.insert({rank, failed}).second)
    violate(CheckKind::FailureReplay,
            "rank " + std::to_string(rank) + " adopted failure of rank " +
                std::to_string(failed) +
                " twice (fail-epoch cursor replayed)");
}

void Checker::comm_revoked(int rank, std::uint32_t comm) {
  if (!on()) return;
  count();
  if (!revoked_seen_.insert({rank, comm}).second)
    violate(CheckKind::FailureReplay,
            "rank " + std::to_string(rank) + " revoked comm " +
                std::to_string(comm) +
                " twice (revocation must be idempotent at the engine)");
}

// --- DcfaRace: vector-clock happens-before engine ---------------------------
//
// Every rank carries a logical clock; sync events the runtime already reports
// become release/acquire pairs over keyed edges, and tracked memory accesses
// are checked for concurrent conflicting overlap. The edge catalog lives in
// docs/checking.md; the keys here only need to agree between the release and
// acquire sites, never with anything outside this file.

VClock& Checker::clock(int rank) {
  if (static_cast<std::size_t>(rank) >= clocks_.size())
    clocks_.resize(rank + 1);
  return clocks_[rank];
}

std::uint64_t Checker::hb_key(std::uint64_t tag, std::uint64_t a,
                              std::uint64_t b, std::uint64_t c,
                              std::uint64_t d) {
  std::uint64_t h = splitmix64(tag);
  h = splitmix64(h ^ a);
  h = splitmix64(h ^ b);
  h = splitmix64(h ^ c);
  h = splitmix64(h ^ d);
  return h;
}

void Checker::hb_release(int rank, std::uint64_t key) {
  VClock& c = clock(rank);
  c.tick(rank);
  hb_sync_[key].merge(c);
}

void Checker::hb_acquire(int rank, std::uint64_t key, bool consume) {
  VClock& c = clock(rank);
  auto it = hb_sync_.find(key);
  if (it != hb_sync_.end()) {
    c.merge(it->second);
    if (consume) hb_sync_.erase(it);
  }
  c.tick(rank);
}

void Checker::channel_posted(int rank, std::uint64_t cell, std::uint64_t n) {
  if (!full()) return;
  count();
  VClock& c = clock(rank);
  c.tick(rank);
  chan_sync_[{cell, n}].merge(c);
}

void Checker::channel_waited(int rank, std::uint64_t cell, std::uint64_t n) {
  if (!full()) return;
  count();
  VClock& c = clock(rank);
  // Arrival count >= n orders the waiter after every post numbered <= n.
  // Entries are retired as they are absorbed: arrival counts only grow, so
  // a later waiter (for a larger n) already holds this history through the
  // channel owner's own clock.
  auto it = chan_sync_.lower_bound({cell, 0});
  while (it != chan_sync_.end() && it->first.first == cell &&
         it->first.second <= n) {
    c.merge(it->second);
    it = chan_sync_.erase(it);
  }
  c.tick(rank);
}

void Checker::agree_voted(int rank, std::uint32_t comm, std::uint64_t seq) {
  if (!full()) return;
  count();
  hb_release(rank, hb_key(3, comm, seq, 0, 0));
}

void Checker::agree_decided(int rank, std::uint32_t comm, std::uint64_t seq) {
  if (!full()) return;
  count();
  // Every decider acquires every voter's history (agreement is a barrier);
  // the edge stays for later deciders of the same round.
  hb_acquire(rank, hb_key(3, comm, seq, 0, 0), false);
}

namespace {
const char* access_op_name(Checker::AccessOp op) {
  switch (op) {
    case Checker::AccessOp::Read: return "read";
    case Checker::AccessOp::Write: return "write";
    case Checker::AccessOp::Accum: return "accum";
  }
  return "unknown";
}
}  // namespace

bool Checker::race_conflicts(const RaceAccess& a, CheckKind kind, int owner,
                             int actor, std::uint64_t addr, std::uint64_t len,
                             AccessOp op) const {
  if (!(addr < a.addr + a.len && a.addr < addr + len)) return false;
  if (a.op == AccessOp::Read && op == AccessOp::Read) return false;
  // The runtime applies accumulates atomically per element, so two accums
  // commute; an accum against a plain read or write still conflicts.
  if (a.op == AccessOp::Accum && op == AccessOp::Accum) return false;
  // Same-origin RMA ops toward the same target ride one queue pair and the
  // fabric completes them in posting order — not a race even without an
  // explicit HB edge. Buffer-reuse accesses are local, no QP to serialize
  // them.
  const bool a_qp = a.kind != CheckKind::RaceBufferReuse;
  const bool b_qp = kind != CheckKind::RaceBufferReuse;
  if (a_qp && b_qp && a.actor == actor && a.owner == owner) return false;
  return true;
}

void Checker::report_race(const RaceAccess& prior, CheckKind kind, int owner,
                          int actor, std::uint64_t addr, std::uint64_t len,
                          AccessOp op, const char* site) {
  std::ostringstream os;
  os << site << " by rank " << actor << " (" << access_op_name(op) << " [0x"
     << std::hex << addr << ", 0x" << (addr + len) << std::dec
     << ") in rank " << owner << "'s memory) races with "
     << (prior.open ? "in-flight " : "unordered ") << prior.site
     << " by rank " << prior.actor << " (" << access_op_name(prior.op)
     << " [0x" << std::hex << prior.addr << ", 0x"
     << (prior.addr + prior.len) << std::dec
     << ")): no happens-before edge orders the accesses";
  violate(kind, os.str());
}

std::uint64_t Checker::race_begin(CheckKind kind, int owner, int actor,
                                  std::uint64_t addr, std::uint64_t len,
                                  AccessOp op, const char* site) {
  if (!full()) return 0;
  if (owner < 0 || actor < 0 || len == 0) return 0;
  count();
  auto& ids = race_by_owner_[owner];
  const VClock& bc = clock(actor);
  std::uint64_t replace = 0;
  for (std::uint64_t id : ids) {
    const RaceAccess& a = race_accesses_[id];
    if (!(addr < a.addr + a.len && a.addr < addr + len)) continue;
    // A closed same-shape access by the same actor is superseded: anything
    // that would race with it races with this newer access too (the close
    // time only grows along one actor's clock), so the slot is recycled.
    if (!a.open && a.kind == kind && a.actor == actor && a.op == op &&
        a.addr == addr && a.len == len)
      replace = id;
    if (!race_conflicts(a, kind, owner, actor, addr, len, op)) continue;
    if (a.open) report_race(a, kind, owner, actor, addr, len, op, site);
    // Closed conflicting access: ordered only if this actor has observed
    // the close (its clock holds the closer's component at/after close).
    if (bc.get(a.actor) < a.close_time)
      report_race(a, kind, owner, actor, addr, len, op, site);
  }
  if (replace != 0) {
    race_accesses_.erase(replace);
    for (auto it = ids.begin(); it != ids.end(); ++it) {
      if (*it == replace) {
        ids.erase(it);
        break;
      }
    }
  }
  const std::uint64_t id = ++race_next_id_;
  race_accesses_[id] =
      RaceAccess{kind, owner, actor, addr, len, op, true, 0, site};
  ids.push_back(id);
  prune_owner(ids);
  return id;
}

void Checker::race_end(std::uint64_t id) {
  if (id == 0 || !full()) return;
  auto it = race_accesses_.find(id);
  if (it == race_accesses_.end()) return;
  count();
  RaceAccess& a = it->second;
  if (!a.open) return;
  VClock& c = clock(a.actor);
  c.tick(a.actor);
  a.open = false;
  a.close_time = c.get(a.actor);
}

void Checker::prune_owner(std::vector<std::uint64_t>& ids) {
  if (ids.size() <= 64) return;
  // A closed access every clocked rank has observed can never race again;
  // ranks that have no clock yet would race with *anything*, so losing one
  // specific prior access to them costs little. Open accesses never leave.
  auto dominated = [this](const RaceAccess& a) {
    if (a.open) return false;
    for (std::size_t r = 0; r < clocks_.size(); ++r) {
      if (static_cast<int>(r) == a.actor || clocks_[r].empty()) continue;
      if (clocks_[r].get(a.actor) < a.close_time) return false;
    }
    return true;
  };
  for (auto it = ids.begin(); it != ids.end();) {
    const RaceAccess& a = race_accesses_[*it];
    if (dominated(a)) {
      race_accesses_.erase(*it);
      it = ids.erase(it);
    } else {
      ++it;
    }
  }
  // Backstop so one hot owner cannot grow without bound: oldest closed
  // entries fall off first (ids are allocated in access order).
  while (ids.size() > 512) {
    auto victim = ids.end();
    for (auto it = ids.begin(); it != ids.end(); ++it) {
      if (!race_accesses_[*it].open) {
        victim = it;
        break;
      }
    }
    if (victim == ids.end()) break;  // all open: nothing safe to drop
    race_accesses_.erase(*victim);
    ids.erase(victim);
  }
}

}  // namespace dcfa::sim
