#include "sim/check.hpp"

#include <cstdlib>
#include <sstream>

namespace dcfa::sim {

const char* check_kind_name(CheckKind k) {
  switch (k) {
    case CheckKind::SeqRegression: return "seq-regression";
    case CheckKind::SeqGap: return "seq-gap";
    case CheckKind::CreditOverrun: return "credit-overrun";
    case CheckKind::CreditRegression: return "credit-regression";
    case CheckKind::DoubleCredit: return "double-credit";
    case CheckKind::MrUseAfterDereg: return "mr-use-after-dereg";
    case CheckKind::MrUnknownKey: return "mr-unknown-key";
    case CheckKind::MrOutOfBounds: return "mr-out-of-bounds";
    case CheckKind::StaleEpoch: return "stale-epoch";
    case CheckKind::EpochRegression: return "epoch-regression";
    case CheckKind::TagWindowAlias: return "tag-window-alias";
    case CheckKind::StageOrder: return "stage-order";
    case CheckKind::WireBounds: return "wire-bounds";
    case CheckKind::FailureReplay: return "failure-replay";
    case CheckKind::DeadRankTraffic: return "dead-rank-traffic";
    case CheckKind::RevokedUse: return "revoked-use";
  }
  return "unknown";
}

const char* check_level_name(CheckLevel l) {
  switch (l) {
    case CheckLevel::Off: return "off";
    case CheckLevel::Cheap: return "cheap";
    case CheckLevel::Full: return "full";
  }
  return "unknown";
}

CheckLevel Checker::parse_level(const std::string& s) {
  if (s == "off" || s == "0") return CheckLevel::Off;
  if (s == "cheap" || s.empty()) return CheckLevel::Cheap;
  if (s == "full") return CheckLevel::Full;
  throw std::invalid_argument("DCFA_CHECK: unknown level '" + s +
                              "' (expected off|cheap|full)");
}

CheckLevel Checker::level_from_env() {
  const char* v = std::getenv("DCFA_CHECK");
  if (!v) return CheckLevel::Cheap;
  return parse_level(v);
}

Checker::Checker(CheckLevel level) : level_(level) {}

void Checker::violate(CheckKind kind, const std::string& what) {
  ++violations_;
  std::ostringstream os;
  os << "DcfaCheck[" << check_kind_name(kind) << "] " << what;
  throw CheckError(kind, os.str());
}

void Checker::wire_bounds_violation(const std::string& what) {
  throw CheckError(CheckKind::WireBounds, "DcfaCheck[wire-bounds] " + what);
}

// --- sequence ledgers -------------------------------------------------------

namespace {
std::string chan_str(const char* role, int rank, int peer, std::uint32_t comm,
                     int tag) {
  std::ostringstream os;
  os << role << " rank " << rank << " <-> peer " << peer << " comm " << comm
     << " tag " << tag;
  return os.str();
}
}  // namespace

// Sequence ids are 0-based per channel and must advance by exactly 1 per
// assignment/acceptance. The ledger stores the last seen id; map presence
// distinguishes "nothing yet" from "last was 0", keeping the first id
// strictly checked too.
void Checker::check_seq(std::map<ChannelKey, std::uint64_t>& ledger,
                        const char* role, int rank, int peer,
                        std::uint32_t comm, int tag, std::uint64_t seq) {
  count();
  const ChannelKey key{rank, peer, comm, tag};
  auto it = ledger.find(key);
  const std::uint64_t expected = it == ledger.end() ? 0 : it->second + 1;
  if (seq < expected)
    violate(CheckKind::SeqRegression,
            std::string(role) + " seq " + std::to_string(seq) +
                " at/below ledger (expected " + std::to_string(expected) +
                ", " + chan_str(role, rank, peer, comm, tag) + ")");
  if (seq > expected)
    violate(CheckKind::SeqGap,
            std::string(role) + " seq skipped ahead to " +
                std::to_string(seq) + " (expected " +
                std::to_string(expected) + ", " +
                chan_str(role, rank, peer, comm, tag) + ")");
  ledger[key] = seq;
}

void Checker::send_seq_assigned(int rank, int peer, std::uint32_t comm,
                                int tag, std::uint64_t seq) {
  if (!on()) return;
  check_seq(send_seq_, "send", rank, peer, comm, tag, seq);
}

void Checker::recv_seq_assigned(int rank, int peer, std::uint32_t comm,
                                int tag, std::uint64_t seq) {
  if (!on()) return;
  check_seq(recv_seq_, "recv", rank, peer, comm, tag, seq);
}

void Checker::packet_accepted(int rank, int src, std::uint32_t comm, int tag,
                              std::uint64_t seq) {
  if (!on()) return;
  count();
  AcceptState& as = accepted_[{rank, src, comm, tag}];
  if (seq < as.next || as.claimed.count(seq) > 0)
    violate(CheckKind::SeqRegression,
            "accept seq " + std::to_string(seq) + " admitted twice (" +
                chan_str("accept", rank, src, comm, tag) + ")");
  // A hole below the arriving seq is only legal if every missing seq was
  // claimed by a receiver-first rendezvous (admitted out of arrival order).
  for (std::uint64_t s = as.next; s < seq; ++s) {
    if (as.claimed.erase(s) == 0)
      violate(CheckKind::SeqGap,
              "accept seq skipped ahead to " + std::to_string(seq) +
                  " but seq " + std::to_string(s) +
                  " never arrived nor was claimed (" +
                  chan_str("accept", rank, src, comm, tag) + ")");
  }
  as.next = seq + 1;
  while (as.claimed.erase(as.next) > 0) ++as.next;
}

void Checker::packet_claimed(int rank, int src, std::uint32_t comm, int tag,
                             std::uint64_t seq) {
  if (!on()) return;
  count();
  AcceptState& as = accepted_[{rank, src, comm, tag}];
  if (seq < as.next || as.claimed.count(seq) > 0)
    violate(CheckKind::SeqRegression,
            "receiver-first claim of seq " + std::to_string(seq) +
                " which was already admitted (" +
                chan_str("claim", rank, src, comm, tag) + ")");
  as.claimed.insert(seq);
  while (as.claimed.erase(as.next) > 0) ++as.next;
}

// --- credit accounting ------------------------------------------------------

void Checker::packet_emitted(int rank, int peer, std::uint64_t sent,
                             std::uint64_t in_flight, std::uint64_t cap) {
  if (!on()) return;
  count();
  CreditState& cs = credit_[{rank, peer}];
  if (cap != 0 && in_flight > cap)
    violate(CheckKind::CreditOverrun,
            "rank " + std::to_string(rank) + " -> " + std::to_string(peer) +
                ": " + std::to_string(in_flight) +
                " eager packets in flight but ring has only " +
                std::to_string(cap) + " slots");
  if (sent <= cs.emitted)
    violate(CheckKind::CreditRegression,
            "rank " + std::to_string(rank) + " -> " + std::to_string(peer) +
                ": sent counter moved " + std::to_string(cs.emitted) + " -> " +
                std::to_string(sent));
  cs.emitted = sent;
}

void Checker::packet_consumed(int rank, int peer, std::uint64_t consumed) {
  if (!on()) return;
  count();
  CreditState& cs = credit_[{rank, peer}];
  if (consumed != cs.consumed + 1)
    violate(CheckKind::DoubleCredit,
            "rank " + std::to_string(rank) + " consumed-counter from peer " +
                std::to_string(peer) + " moved " +
                std::to_string(cs.consumed) + " -> " +
                std::to_string(consumed) + " (must advance by exactly 1)");
  cs.consumed = consumed;
}

void Checker::credit_written(int rank, int peer, std::uint64_t value) {
  if (!on()) return;
  count();
  CreditState& cs = credit_[{rank, peer}];
  if (value <= cs.written && value != 0)
    violate(CheckKind::CreditRegression,
            "rank " + std::to_string(rank) + " re-wrote credit " +
                std::to_string(value) + " toward peer " +
                std::to_string(peer) + " (last written " +
                std::to_string(cs.written) + ")");
  if (value > cs.consumed)
    violate(CheckKind::DoubleCredit,
            "rank " + std::to_string(rank) + " wrote credit " +
                std::to_string(value) + " toward peer " +
                std::to_string(peer) + " but has only consumed " +
                std::to_string(cs.consumed) + " packets");
  cs.written = value;
}

void Checker::credit_read(int rank, int peer, std::uint64_t value) {
  if (!on()) return;
  count();
  CreditState& cs = credit_[{rank, peer}];
  if (value < cs.read)
    violate(CheckKind::CreditRegression,
            "rank " + std::to_string(rank) + " read credit " +
                std::to_string(value) + " from peer " + std::to_string(peer) +
                " below previous " + std::to_string(cs.read));
  if (value > cs.emitted)
    violate(CheckKind::DoubleCredit,
            "rank " + std::to_string(rank) + " read credit " +
                std::to_string(value) + " from peer " + std::to_string(peer) +
                " but only emitted " + std::to_string(cs.emitted) +
                " packets (peer acked packets that were never sent)");
  if (full()) {
    // Cross-rank: the value in our cell must be one the peer's credit
    // writer actually produced, i.e. no larger than the peer's last write
    // toward us. Only comparable while both directions sit in the same
    // connection epoch (reconnect resets both sides at different times).
    auto it = credit_.find({peer, rank});
    if (it != credit_.end() && it->second.epoch == cs.epoch &&
        value > it->second.written)
      violate(CheckKind::DoubleCredit,
              "rank " + std::to_string(rank) + " read credit " +
                  std::to_string(value) + " from peer " +
                  std::to_string(peer) + " but peer only wrote " +
                  std::to_string(it->second.written));
  }
  cs.read = value;
}

// --- MR lifecycle -----------------------------------------------------------

void Checker::mr_registered(const void* owner, std::uint64_t lkey,
                            std::uint64_t rkey, std::uint64_t addr,
                            std::uint64_t len) {
  if (!on()) return;
  count();
  mrs_[{owner, lkey}] = MrState{addr, len, true};
  mrs_[{owner, rkey}] = MrState{addr, len, true};
}

void Checker::mr_deregistered(const void* owner, std::uint64_t lkey,
                              std::uint64_t rkey) {
  if (!on()) return;
  count();
  auto kill = [this, owner](std::uint64_t key) {
    auto it = mrs_.find({owner, key});
    if (it != mrs_.end()) it->second.live = false;
  };
  kill(lkey);
  kill(rkey);
}

void Checker::mr_used(const void* owner, std::uint64_t key,
                      std::uint64_t addr, std::uint64_t len) {
  if (!on()) return;
  count();
  auto it = mrs_.find({owner, key});
  if (it == mrs_.end()) {
    // Key never registered with this checker. The HCA's own protection
    // checks report these as LocalProtectionError completions; unknown keys
    // also arise for MRs registered before the checker existed, so only
    // flag keys we have definitely seen die.
    return;
  }
  if (!it->second.live)
    violate(CheckKind::MrUseAfterDereg,
            "key " + std::to_string(key) + " used after dereg (window was [" +
                std::to_string(it->second.addr) + ", " +
                std::to_string(it->second.addr + it->second.len) + "))");
  if (full() && len != 0) {
    const MrState& mr = it->second;
    if (addr < mr.addr || addr + len > mr.addr + mr.len)
      violate(CheckKind::MrOutOfBounds,
              "key " + std::to_string(key) + " use [" + std::to_string(addr) +
                  ", " + std::to_string(addr + len) +
                  ") outside registered window [" + std::to_string(mr.addr) +
                  ", " + std::to_string(mr.addr + mr.len) + ")");
  }
}

// --- connection epochs ------------------------------------------------------

void Checker::epoch_advanced(int rank, int peer, std::uint32_t epoch) {
  if (!on()) return;
  count();
  std::uint32_t& cur = epoch_[{rank, peer}];
  if (epoch <= cur)
    violate(CheckKind::EpochRegression,
            "rank " + std::to_string(rank) + " -> peer " +
                std::to_string(peer) + ": epoch moved " +
                std::to_string(cur) + " -> " + std::to_string(epoch));
  cur = epoch;
  // Reconnect rebuilds the ring: the eager counters restart from zero on the
  // new connection. The send/recv/accept sequence ledgers survive — requests
  // are replayed with their original seqs and replay dedup keeps delivery
  // exactly-once, so those ledgers must stay monotonic across epochs.
  CreditState& cs = credit_[{rank, peer}];
  cs = CreditState{};
  cs.epoch = epoch;
}

void Checker::packet_epoch(int rank, int src, std::uint32_t pkt_epoch,
                           std::uint32_t ep_epoch) {
  if (!on()) return;
  count();
  if (pkt_epoch != ep_epoch)
    violate(CheckKind::StaleEpoch,
            "rank " + std::to_string(rank) + " admitted packet from " +
                std::to_string(src) + " carrying epoch " +
                std::to_string(pkt_epoch) + " while connection is at epoch " +
                std::to_string(ep_epoch));
}

// --- collective tag windows and schedule stages -----------------------------

std::uint64_t Checker::coll_started(int rank, std::uint32_t comm,
                                    int window_slot, std::size_t stages) {
  if (!on()) return 0;
  count();
  if (revoked_seen_.count({rank, comm}) > 0)
    violate(CheckKind::RevokedUse,
            "rank " + std::to_string(rank) +
                " started a collective schedule on revoked comm " +
                std::to_string(comm) +
                " (the engine must born-fail such requests)");
  if (window_slot >= 0) {
    auto key = std::make_tuple(rank, comm, window_slot);
    auto it = window_.find(key);
    if (it != window_.end())
      violate(CheckKind::TagWindowAlias,
              "rank " + std::to_string(rank) + " comm " +
                  std::to_string(comm) + ": tag-window slot " +
                  std::to_string(window_slot) +
                  " already occupied by a live schedule");
    colls_.push_back(CollState{rank, comm, window_slot, stages, 0, true});
    window_[key] = colls_.size();
  } else {
    colls_.push_back(CollState{rank, comm, window_slot, stages, 0, true});
  }
  return colls_.size();  // 1-based; 0 means "checker off"
}

void Checker::stage_started(std::uint64_t check_id, std::size_t stage) {
  if (!on() || check_id == 0) return;
  count();
  CollState& cs = colls_.at(check_id - 1);
  if (!cs.live)
    violate(CheckKind::StageOrder,
            "stage " + std::to_string(stage) +
                " started on a finished schedule (check id " +
                std::to_string(check_id) + ")");
  if (stage != cs.next_stage)
    violate(CheckKind::StageOrder,
            "schedule on rank " + std::to_string(cs.rank) + " started stage " +
                std::to_string(stage) + " but stage " +
                std::to_string(cs.next_stage) + " is next in DAG order");
  if (stage >= cs.stages)
    violate(CheckKind::StageOrder,
            "schedule on rank " + std::to_string(cs.rank) + " started stage " +
                std::to_string(stage) + " of " + std::to_string(cs.stages));
  cs.next_stage = stage + 1;
}

void Checker::coll_finished(std::uint64_t check_id) {
  if (!on() || check_id == 0) return;
  count();
  CollState& cs = colls_.at(check_id - 1);
  if (!cs.live)
    violate(CheckKind::StageOrder, "schedule finished twice (check id " +
                                       std::to_string(check_id) + ")");
  if (cs.next_stage != cs.stages)
    violate(CheckKind::StageOrder,
            "schedule on rank " + std::to_string(cs.rank) +
                " finished after stage " + std::to_string(cs.next_stage) +
                " of " + std::to_string(cs.stages));
  cs.live = false;
  window_.erase({cs.rank, cs.comm, cs.window_slot});
}

void Checker::coll_failed(std::uint64_t check_id) {
  if (!on() || check_id == 0) return;
  count();
  CollState& cs = colls_.at(check_id - 1);
  if (!cs.live) return;  // failing an already-finished schedule is a no-op
  cs.live = false;
  window_.erase({cs.rank, cs.comm, cs.window_slot});
}

// --- rank-failure / revocation ledgers --------------------------------------

void Checker::rank_failed(int rank, int failed) {
  if (!on()) return;
  count();
  if (rank == failed)
    violate(CheckKind::DeadRankTraffic,
            "rank " + std::to_string(rank) +
                " adopted its own failure (a dead rank must unwind, not "
                "observe itself)");
  if (!failures_seen_.insert({rank, failed}).second)
    violate(CheckKind::FailureReplay,
            "rank " + std::to_string(rank) + " adopted failure of rank " +
                std::to_string(failed) +
                " twice (fail-epoch cursor replayed)");
}

void Checker::comm_revoked(int rank, std::uint32_t comm) {
  if (!on()) return;
  count();
  if (!revoked_seen_.insert({rank, comm}).second)
    violate(CheckKind::FailureReplay,
            "rank " + std::to_string(rank) + " revoked comm " +
                std::to_string(comm) +
                " twice (revocation must be idempotent at the engine)");
}

}  // namespace dcfa::sim
