#pragma once

// Vector clocks for the DcfaRace happens-before engine (docs/checking.md).
//
// The checker keeps one VClock per rank and one per live synchronization
// object (message seq, lock handoff, doorbell arrival, agreement round).
// Components are indexed by rank id and grow on demand; a component that
// was never ticked reads as 0, so clocks over sparse rank sets stay small.

#include <cstdint>
#include <string>
#include <vector>

namespace dcfa::sim {

class VClock {
 public:
  /// Component for `rank` (0 if never ticked).
  std::uint64_t get(int rank) const {
    const auto i = static_cast<std::size_t>(rank);
    return rank >= 0 && i < c_.size() ? c_[i] : 0;
  }

  /// Advance this clock's own component: the owner performed a new event.
  void tick(int rank) {
    if (rank < 0) return;
    grow(rank);
    ++c_[static_cast<std::size_t>(rank)];
  }

  /// Component-wise maximum (acquire: learn everything `o` knew).
  void merge(const VClock& o) {
    if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), 0);
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
      if (o.c_[i] > c_[i]) c_[i] = o.c_[i];
    }
  }

  /// True when *this happened-before-or-equals `o` (every component <=).
  bool le(const VClock& o) const {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > o.get(static_cast<int>(i))) return false;
    }
    return true;
  }

  bool empty() const { return c_.empty(); }

  /// "<0:3 2:1>" — non-zero components only, for violation reports.
  std::string str() const;

 private:
  void grow(int rank) {
    const auto need = static_cast<std::size_t>(rank) + 1;
    if (c_.size() < need) c_.resize(need, 0);
  }

  std::vector<std::uint64_t> c_;
};

/// The stateless splitmix64 finalizer (same constants as sim::Rng): maps a
/// (seed, event-seq) pair onto an explore-scheduler priority. Shared by the
/// engine's randomized event ordering and by anything that needs a strong,
/// platform-independent 64-bit mix.
std::uint64_t splitmix64(std::uint64_t x);

}  // namespace dcfa::sim
