#include "sim/time.hpp"

#include <cstdio>

namespace dcfa::sim {

std::string format_time(Time t) {
  char buf[64];
  if (t < 1'000) {
    std::snprintf(buf, sizeof buf, "%ldns", static_cast<long>(t));
  } else if (t < 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.2fus", to_us(t));
  } else if (t < 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.2fms", to_ms(t));
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", to_s(t));
  }
  return buf;
}

}  // namespace dcfa::sim
