#include "sim/engine.hpp"

#include <sstream>
#include <stdexcept>

#include "sim/check.hpp"
#include "sim/process.hpp"
#include "sim/vclock.hpp"

namespace dcfa::sim {

Engine::Engine() : Engine(SchedConfig::from_env()) {}

Engine::Engine(SchedConfig sched) : sched_(sched) {
  if (sched_.backend == SchedConfig::Backend::Fiber && sched_.threads > 0) {
    pool_ = std::make_unique<FiberPool>(sched_.threads);
  }
}

Engine::~Engine() { join_all(); }

void Engine::join_all() {
  // Unblock and unwind any contexts that are still parked: fiber stacks get
  // one final abandonment resume, thread-backend processes get a poisoned
  // token and a join — all from ~Process while the pool still exists.
  processes_.clear();
  live_ = 0;
}

void Engine::run_resume(Process& p) {
  // Fibers must always resume on the same OS thread they last yielded from
  // (ucontext and sanitizer bookkeeping both require it), so each fiber is
  // pinned to worker id % pool-size. With no pool, the engine thread is
  // that one thread.
  const auto go = [&p] {
    // Keep Process::current() accurate on the thread that actually runs
    // the body for the duration of this slice.
    Process* prev = Process::tl_current_;
    Process::tl_current_ = &p;
    p.fiber_->resume();
    Process::tl_current_ = prev;
  };
  if (pool_) {
    pool_->run_on(p.id_, go);
  } else {
    go();
  }
}

void Engine::schedule_at(Time t, Callback cb) {
  if (t < now_) {
    throw std::logic_error("Engine::schedule_at: time in the past");
  }
  const std::uint64_t seq = next_seq_++;
  // Explore ordering: every event draws a priority from (seed, seq). The
  // draw is a pure function of inputs the replay token pins, so the same
  // token always reproduces the same interleaving byte-for-byte.
  const std::uint64_t prio =
      sched_.explore() ? splitmix64(sched_.seed ^
                                    (seq * 0x9e3779b97f4a7c15ULL))
                       : 0;
  queue_.push(Event{t, prio, seq, std::move(cb)});
}

void Engine::schedule_after(Time delay, Callback cb) {
  schedule_at(now_ + delay, std::move(cb));
}

Process& Engine::spawn(std::string name, std::function<void(Process&)> body) {
  auto proc = std::unique_ptr<Process>(
      new Process(*this, std::move(name), std::move(body), processes_.size()));
  Process& ref = *proc;
  processes_.push_back(std::move(proc));
  ++live_;
  ref.start();
  schedule_at(now_, [&ref] { ref.resume(); });
  return ref;
}

void Engine::step(const Event& ev) {
  now_ = ev.time;
  ++events_executed_;
  ev.cb();
}

void Engine::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    step(ev);
    // Fail fast on a dead process: periodic timers (heartbeats, retransmit
    // checks) keep the queue non-empty forever, which would turn any rank
    // exception — a DcfaCheck violation, say — into a silent hang if we
    // only looked after the queue drained.
    if (process_failed_) break;
  }
  // A process that died on an exception usually strands its peers; surface
  // the root cause rather than a misleading deadlock report. The scan is
  // O(ranks), so only pay for it when a failure actually happened.
  if (process_failed_) {
    for (const auto& p : processes_) {
      if (p->error()) std::rethrow_exception(p->error());
    }
  }
  check_deadlock();
}

void Engine::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    step(ev);
  }
  if (now_ < deadline) now_ = deadline;
}

Checker& Engine::checker() {
  if (!checker_) {
    checker_ = std::make_unique<Checker>(Checker::level_from_env());
    // Violations found while exploring carry their own reproduction recipe:
    // the checker appends this token to every report it raises.
    checker_->set_schedule_token(sched_.schedule_token());
  }
  return *checker_;
}

void Engine::check_deadlock() const {
  if (live_ == 0) return;  // the common case — skip the name sweep entirely
  std::ostringstream stuck;
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (!p->finished()) {
      if (n++) stuck << ", ";
      stuck << p->name();
    }
  }
  if (n > 0) {
    throw DeadlockError("simulation deadlock: " + std::to_string(n) +
                        " process(es) blocked forever: " + stuck.str());
  }
}

}  // namespace dcfa::sim
