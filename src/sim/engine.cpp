#include "sim/engine.hpp"

#include <sstream>
#include <stdexcept>

#include "sim/check.hpp"
#include "sim/process.hpp"

namespace dcfa::sim {

Engine::Engine() = default;

Engine::~Engine() { join_all(); }

void Engine::join_all() {
  // Unblock and join any process threads that are still parked. Their
  // bodies can no longer run, so Process's destructor hands each one a
  // poisoned token and force-joins while it unwinds.
  processes_.clear();
}

void Engine::schedule_at(Time t, Callback cb) {
  if (t < now_) {
    throw std::logic_error("Engine::schedule_at: time in the past");
  }
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Engine::schedule_after(Time delay, Callback cb) {
  schedule_at(now_ + delay, std::move(cb));
}

Process& Engine::spawn(std::string name, std::function<void(Process&)> body) {
  auto proc = std::unique_ptr<Process>(
      new Process(*this, std::move(name), std::move(body)));
  Process& ref = *proc;
  processes_.push_back(std::move(proc));
  ref.start();
  schedule_at(now_, [&ref] { ref.resume(); });
  return ref;
}

void Engine::step(const Event& ev) {
  now_ = ev.time;
  ++events_executed_;
  ev.cb();
}

void Engine::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    step(ev);
    // Fail fast on a dead process: periodic timers (heartbeats, retransmit
    // checks) keep the queue non-empty forever, which would turn any rank
    // exception — a DcfaCheck violation, say — into a silent hang if we
    // only looked after the queue drained.
    if (process_failed_) break;
  }
  // A process that died on an exception usually strands its peers; surface
  // the root cause rather than a misleading deadlock report.
  for (const auto& p : processes_) {
    if (p->error()) std::rethrow_exception(p->error());
  }
  check_deadlock();
}

void Engine::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    step(ev);
  }
  if (now_ < deadline) now_ = deadline;
}

Checker& Engine::checker() {
  if (!checker_) checker_ = std::make_unique<Checker>(Checker::level_from_env());
  return *checker_;
}

std::size_t Engine::live_processes() const {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (!p->finished()) ++n;
  }
  return n;
}

void Engine::check_deadlock() const {
  std::ostringstream stuck;
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (!p->finished()) {
      if (n++) stuck << ", ";
      stuck << p->name();
    }
  }
  if (n > 0) {
    throw DeadlockError("simulation deadlock: " + std::to_string(n) +
                        " process(es) blocked forever: " + stuck.str());
  }
}

}  // namespace dcfa::sim
