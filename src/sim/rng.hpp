#pragma once

#include <cstdint>

namespace dcfa::sim {

/// Deterministic 64-bit generator (splitmix64). Used wherever the simulator
/// or tests need reproducible pseudo-randomness; never std::rand, never
/// nondeterministic seeds.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace dcfa::sim
