#pragma once

#include <string>

#include "sim/time.hpp"

namespace dcfa::sim {

/// A serially-reusable hardware resource (a DMA engine, a wire, a PCIe
/// direction) modelled by a "busy until" horizon. acquire() books the next
/// slot of `duration` starting no earlier than `earliest` and returns the
/// completion time. Later bookings queue FIFO behind earlier ones, which is
/// how link contention and per-queue-pair ordering arise in the model.
class Resource {
 public:
  explicit Resource(std::string name = {}) : name_(std::move(name)) {}

  /// Book the resource for `duration` starting at max(earliest, free_at).
  /// Returns the time the booking completes.
  Time acquire(Time earliest, Time duration) {
    Time start = earliest > free_at_ ? earliest : free_at_;
    free_at_ = start + duration;
    busy_total_ += duration;
    return free_at_;
  }

  /// Next time the resource is idle.
  Time free_at() const { return free_at_; }

  /// Total booked busy time (for utilisation stats).
  Time busy_total() const { return busy_total_; }

  const std::string& name() const { return name_; }

  void reset() { free_at_ = 0; }

 private:
  std::string name_;
  Time free_at_ = 0;
  Time busy_total_ = 0;
};

}  // namespace dcfa::sim
