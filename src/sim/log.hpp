#pragma once

#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace dcfa::sim {

enum class LogLevel { Off = 0, Error = 1, Info = 2, Trace = 3 };

/// Global trace facility for the simulator. Off by default so tests and
/// benches stay quiet; flip with Log::set_level(LogLevel::Trace) or the
/// DCFA_SIM_LOG environment variable (0..3) to watch protocol exchanges.
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lv);

  /// printf-style trace line, prefixed with virtual time and component tag.
  template <typename... Args>
  static void trace(Time now, const char* component, const char* fmt,
                    Args... args) {
    write(LogLevel::Trace, now, component, fmt, args...);
  }

  template <typename... Args>
  static void info(Time now, const char* component, const char* fmt,
                   Args... args) {
    write(LogLevel::Info, now, component, fmt, args...);
  }

  template <typename... Args>
  static void error(Time now, const char* component, const char* fmt,
                    Args... args) {
    write(LogLevel::Error, now, component, fmt, args...);
  }

 private:
  template <typename... Args>
  static void write(LogLevel lv, Time now, const char* component,
                    const char* fmt, Args... args) {
    if (static_cast<int>(lv) > static_cast<int>(level())) return;
    std::string line = "[" + format_time(now) + "] [" + component + "] ";
    std::fputs(line.c_str(), stderr);
    if constexpr (sizeof...(Args) == 0) {
      std::fputs(fmt, stderr);
    } else {
      std::fprintf(stderr, fmt, args...);
    }
    std::fputc('\n', stderr);
  }
};

}  // namespace dcfa::sim
