#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

// Sanitizer detection. TSan's runtime tracks OS threads, not ucontext
// switches, so the fiber backend is force-disabled there (SchedConfig keeps
// the thread backend). ASan supports foreign stacks through the
// __sanitizer_*_switch_fiber annotation protocol, implemented below.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DCFA_FIBER_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define DCFA_FIBER_TSAN 1
#endif
#endif
#if !defined(DCFA_FIBER_ASAN) && defined(__SANITIZE_ADDRESS__)
#define DCFA_FIBER_ASAN 1
#endif
#if !defined(DCFA_FIBER_TSAN) && defined(__SANITIZE_THREAD__)
#define DCFA_FIBER_TSAN 1
#endif

#ifdef DCFA_FIBER_ASAN
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
}
#endif

namespace dcfa::sim {

namespace {

// makecontext's entry function takes no usable pointer-sized argument
// portably; the fiber being entered parks itself here just before the
// switch, on the same thread that will run the trampoline.
thread_local Fiber* tl_entering = nullptr;

std::size_t page_size() {
  static const std::size_t p = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return p;
}

}  // namespace

std::string SchedConfig::schedule_token() const {
  if (order != Order::Explore) return {};
  char buf[32];
  std::snprintf(buf, sizeof buf, "x1:%llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

SchedConfig SchedConfig::from_token(const std::string& token) {
  SchedConfig cfg;
#ifdef DCFA_FIBER_TSAN
  cfg.backend = Backend::Thread;
#endif
  if (token.rfind("x1:", 0) != 0 || token.size() <= 3) {
    throw std::invalid_argument(
        "DCFA_SIM_SCHEDULE: expected a replay token 'x1:<hex seed>', got '" +
        token + "'");
  }
  std::size_t used = 0;
  std::uint64_t seed = 0;
  try {
    seed = std::stoull(token.substr(3), &used, 16);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != token.size() - 3) {
    throw std::invalid_argument(
        "DCFA_SIM_SCHEDULE: bad seed digits in token '" + token + "'");
  }
  cfg.order = Order::Explore;
  cfg.seed = seed;
  return cfg;
}

SchedConfig SchedConfig::from_env() {
  SchedConfig cfg;
#ifdef DCFA_FIBER_TSAN
  cfg.backend = Backend::Thread;
#endif
  if (const char* e = std::getenv("DCFA_SIM_SCHED")) {
    if (std::strcmp(e, "fiber") == 0) {
      cfg.backend = Backend::Fiber;
    } else if (std::strcmp(e, "thread") == 0) {
      cfg.backend = Backend::Thread;
    } else if (std::strcmp(e, "explore") == 0) {
      // Exploration is an event-*ordering* policy, orthogonal to the
      // context backend: the default backend (thread under TSan) stays.
      cfg.order = Order::Explore;
    } else {
      throw std::invalid_argument(
          std::string("DCFA_SIM_SCHED: expected 'fiber', 'thread' or "
                      "'explore', got '") +
          e + "'");
    }
  }
  if (const char* e = std::getenv("DCFA_SIM_SEED")) {
    char* end = nullptr;
    const unsigned long long s = std::strtoull(e, &end, 10);
    if (end == e || *end != '\0') {
      throw std::invalid_argument("DCFA_SIM_SEED: not a decimal integer");
    }
    cfg.seed = static_cast<std::uint64_t>(s);
  }
  if (const char* e = std::getenv("DCFA_SIM_SCHEDULE")) {
    // A replay token pins both the policy and the seed; it wins over
    // DCFA_SIM_SCHED/DCFA_SIM_SEED so "export the printed token and rerun"
    // needs no other environment surgery.
    const SchedConfig replay = from_token(e);
    cfg.order = replay.order;
    cfg.seed = replay.seed;
  }
  if (const char* e = std::getenv("DCFA_SIM_THREADS")) {
    const long n = std::strtol(e, nullptr, 10);
    if (n < 0 || n > 1024) {
      throw std::invalid_argument("DCFA_SIM_THREADS: out of range");
    }
    cfg.threads = static_cast<unsigned>(n);
  }
  if (const char* e = std::getenv("DCFA_SIM_STACK_KB")) {
    const long kb = std::strtol(e, nullptr, 10);
    if (kb < 16 || kb > 1048576) {
      throw std::invalid_argument("DCFA_SIM_STACK_KB: out of range [16, 2^20]");
    }
    cfg.stack_bytes = static_cast<std::size_t>(kb) * 1024;
  }
#ifdef DCFA_FIBER_TSAN
  // Never let the env re-enable fibers under TSan: swapcontext would leave
  // the TSan shadow stack pointing at the wrong frames.
  cfg.backend = Backend::Thread;
#endif
  return cfg;
}

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)) {
  const std::size_t page = page_size();
  stack_size_ = (stack_bytes + page - 1) / page * page;
  map_bytes_ = stack_size_ + page;
  map_ = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
              MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    throw std::runtime_error("Fiber: stack mmap failed");
  }
  // Stacks grow down; an overflow hits the PROT_NONE page and faults
  // instead of silently corrupting the neighbouring fiber's stack.
  if (mprotect(map_, page, PROT_NONE) != 0) {
    munmap(map_, map_bytes_);
    map_ = nullptr;
    throw std::runtime_error("Fiber: guard-page mprotect failed");
  }
  stack_base_ = static_cast<char*>(map_) + page;
}

Fiber::~Fiber() {
  if (map_ != nullptr) munmap(map_, map_bytes_);
}

void Fiber::trampoline() {
  Fiber* f = tl_entering;
  tl_entering = nullptr;
  f->enter();
  // Returning ends the context via uc_link (back inside resume()).
}

void Fiber::enter() {
#ifdef DCFA_FIBER_ASAN
  // First entry: no fake stack of our own to restore yet; record the
  // resumer's stack so yield()/exit can switch back to it.
  __sanitizer_finish_switch_fiber(nullptr, &from_stack_bottom_,
                                  &from_stack_size_);
#endif
  body_();
  done_ = true;
#ifdef DCFA_FIBER_ASAN
  // Final exit: nullptr tells ASan this stack is dying (its fake-stack
  // frames are released instead of saved).
  __sanitizer_start_switch_fiber(nullptr, from_stack_bottom_,
                                 from_stack_size_);
#endif
}

void Fiber::resume() {
  if (done_) return;
  if (!started_) {
    started_ = true;
    if (getcontext(&self_) != 0) {
      throw std::runtime_error("Fiber: getcontext failed");
    }
    self_.uc_stack.ss_sp = stack_base_;
    self_.uc_stack.ss_size = stack_size_;
    self_.uc_link = &return_ctx_;
    makecontext(&self_, &Fiber::trampoline, 0);
    tl_entering = this;
  }
#ifdef DCFA_FIBER_ASAN
  __sanitizer_start_switch_fiber(&resumer_fake_stack_, stack_base_,
                                 stack_size_);
#endif
  swapcontext(&return_ctx_, &self_);
#ifdef DCFA_FIBER_ASAN
  __sanitizer_finish_switch_fiber(resumer_fake_stack_, nullptr, nullptr);
#endif
}

void Fiber::yield() {
#ifdef DCFA_FIBER_ASAN
  __sanitizer_start_switch_fiber(&own_fake_stack_, from_stack_bottom_,
                                 from_stack_size_);
#endif
  swapcontext(&self_, &return_ctx_);
#ifdef DCFA_FIBER_ASAN
  // Re-record the resumer's stack on every entry: the pool pins us to one
  // worker, but recording what finish reports is what the protocol asks.
  __sanitizer_finish_switch_fiber(own_fake_stack_, &from_stack_bottom_,
                                  &from_stack_size_);
#endif
}

FiberPool::FiberPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    auto w = std::make_unique<Worker>();
    Worker* raw = w.get();
    raw->thread = std::thread([raw] {
      std::unique_lock lk(raw->mu);
      for (;;) {
        raw->cv.wait(lk, [raw] { return raw->job != nullptr || raw->stop; });
        if (raw->job == nullptr) return;  // stop with no pending job
        (*raw->job)();
        raw->job = nullptr;
        raw->job_done = true;
        raw->cv.notify_all();
      }
    });
    workers_.push_back(std::move(w));
  }
}

FiberPool::~FiberPool() {
  for (auto& w : workers_) {
    {
      std::lock_guard lk(w->mu);
      w->stop = true;
    }
    w->cv.notify_all();
    w->thread.join();
  }
}

void FiberPool::run_on(std::size_t slot, const std::function<void()>& fn) {
  if (workers_.empty()) {
    fn();
    return;
  }
  Worker& w = *workers_[slot % workers_.size()];
  std::unique_lock lk(w.mu);
  w.job = &fn;
  w.job_done = false;
  w.cv.notify_all();
  w.cv.wait(lk, [&w] { return w.job_done; });
}

}  // namespace dcfa::sim
