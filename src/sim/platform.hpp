#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace dcfa::sim {

/// Calibrated hardware model of the paper's evaluation platform (Table I):
/// 8 nodes, each Intel Xeon E5-2670 (16 cores) + one pre-production Intel
/// Xeon Phi (KNC, 56 usable cores for OpenMP) + Mellanox ConnectX-3 FDR
/// InfiniBand, all on PCI Express.
///
/// Every constant is tied to a paper observation; the comments say which.
/// Benches can tweak individual fields for sensitivity/ablation studies.
struct Platform {
  // --- Cluster shape -------------------------------------------------------
  int nodes = 8;              ///< Paper: "8 node cluster".
  int host_cores = 16;        ///< Xeon E5-2670 x2 sockets.
  int phi_cores = 56;         ///< Paper runs up to 56 OpenMP threads/card.
  /// Memory capacities. The card is small and has no demand paging — the
  /// paper's stencil is sized to fit ("the memory consumption of the test
  /// application is strictly limited").
  std::uint64_t host_dram_bytes = 32ull << 30;
  std::uint64_t phi_gddr_bytes = 6ull << 30;

  // --- InfiniBand wire (ConnectX-3 FDR, through one switch) ---------------
  /// Effective wire bandwidth. Host<->host IB delivers ~6 GB/s on FDR, the
  /// ceiling the paper's Figure 5 host-to-host curve approaches.
  double ib_wire_gbps = 6.0;
  /// Per-hop propagation + switching latency; two hops via the switch give
  /// the ~1.4us wire component of small-message latency.
  Time ib_hop_latency = nanoseconds(700);
  int ib_hops = 2;
  /// WQE fetch/doorbell processing inside the HCA per work request.
  Time hca_wqe_overhead = nanoseconds(300);
  /// Pipelining granularity for large transfers (source DMA / wire /
  /// destination DMA stages overlap at this chunk size).
  std::uint64_t ib_chunk_bytes = 64 * 1024;
  /// Receiver-not-ready NAK/retry delay for Send arriving before a Recv.
  Time rnr_retry_delay = microseconds(5);

  // --- HCA-initiated PCIe DMA (the Figure 5 asymmetry) ---------------------
  /// HCA reading a send buffer in host DRAM: full PCIe gen2 x16 rate.
  double hca_read_host_gbps = 6.5;
  Time hca_read_host_latency = nanoseconds(300);
  /// HCA reading a send buffer in Phi GDDR across PCIe peer-to-peer: the
  /// pre-production KNC bottleneck. Paper: "Xeon Phi to Xeon Phi InfiniBand
  /// data transfer is always slower than host to host, by more than 4
  /// times"; Figure 9 caps the un-offloaded path near 1 GB/s.
  double hca_read_phi_gbps = 1.25;
  Time hca_read_phi_latency = nanoseconds(1200);
  /// HCA writing a receive buffer in host DRAM.
  double hca_write_host_gbps = 6.5;
  Time hca_write_host_latency = nanoseconds(300);
  /// HCA writing into Phi GDDR: fast. Paper Figure 5: "data transfer from a
  /// host buffer to a remote Xeon Phi co-processor buffer delivers the same
  /// bandwidth as host to host".
  double hca_write_phi_gbps = 6.0;
  Time hca_write_phi_latency = nanoseconds(500);

  // --- Phi DMA engine (used by sync_offload_mr and SCIF/offload copies) ----
  /// The co-processor's own DMA engine pushes/pulls host memory at full PCIe
  /// rate in both directions; this is why staging sends through a host
  /// shadow buffer (the offloading send buffer design) wins.
  double phi_dma_gbps = 6.2;
  Time phi_dma_setup = nanoseconds(5000);

  // --- CPU-side software overheads ----------------------------------------
  /// Posting a verb / touching a doorbell from a host core.
  Time host_post_overhead = nanoseconds(300);
  /// Same from a Phi core: ~1GHz in-order core, several times slower.
  Time phi_post_overhead = nanoseconds(2200);
  /// Completion-queue poll cost (per poll that finds something).
  Time host_poll_overhead = nanoseconds(200);
  Time phi_poll_overhead = nanoseconds(1200);
  /// memcpy bandwidth of one core (eager-protocol copies). Paper IV-B3:
  /// "the data copy operation on the Xeon Phi co-processor spends less than
  /// 1 microsecond for 4Kbytes" => >4 GB/s single-core.
  double host_memcpy_gbps = 12.0;
  double phi_memcpy_gbps = 5.0;
  /// Strided pack/unpack throughput (derived datatypes). Scattered small
  /// blocks defeat the in-order Phi core's prefetchers far more than they
  /// hurt the host's — the gap behind the future-work datatype offloading.
  double host_pack_gbps = 6.0;
  double phi_pack_gbps = 1.2;
  /// Element-wise reduction throughput of one core (collective combines).
  /// The host's wide SIMD units vs a 1 GHz in-order Phi core — the gap the
  /// future-work collective offloading exploits.
  double host_reduce_gbps = 8.0;
  double phi_reduce_gbps = 1.0;
  /// Minimum vector size (bytes) for which delegating a reduction or a
  /// datatype pack to the host pays for the extra PCIe traffic.
  std::uint64_t mpi_offload_threshold = 64 * 1024;

  // --- Memory-region registration (motivates the MR cache pool) -----------
  /// Host ibv_reg_mr: syscall + pinning.
  Time host_reg_mr_base = microseconds(12);
  Time host_reg_mr_per_page = nanoseconds(150);
  /// Phi registration goes through the DCFA CMD offload path: syscall into
  /// the micro-kernel (virtual->physical translation of the user buffer),
  /// SCIF hop to the host delegation process, host-side pinning, reply.
  /// Paper IV-B3: "much more expensive than that on the host".
  Time dcfa_cmd_client_overhead = microseconds(4);
  Time phi_reg_mr_per_page = nanoseconds(450);

  // --- SCIF / 'Intel MPI on Xeon Phi' proxy path ---------------------------
  /// Small-message latency of one SCIF hop (ring doorbell + host wakeup).
  Time scif_msg_latency = microseconds(2.5);
  /// Extra per-message latency of the IB-proxy daemon path each way. With
  /// the DCFA small-message one-way time of ~7.5us, this yields the paper's
  /// 28us (proxy) vs 15us (DCFA) 4-byte round trips (Figure 9).
  Time proxy_hop_latency = microseconds(5.8);
  /// Large-message ceiling of the proxy path. Paper: "'Intel MPI on Xeon Phi
  /// co-processors' mode cannot get bandwidth greater than 1 Gbytes/s".
  double proxy_bw_gbps = 0.95;

  // --- Offload runtime ('Intel MPI on Xeon + offload' baseline) ------------
  /// Fixed cost of one optimised asynchronous offload_transfer (pre-pinned,
  /// 4 KiB-aligned buffers). Figure 10: at <128B the offload mode is ~12x
  /// slower than DCFA-MPI's ~15us exchange => ~180us per iteration, split
  /// between copy-in, copy-out and the host MPI exchange.
  Time offload_transfer_fixed = microseconds(68);
  /// Per-offload-region launch cost: signal the card, wake the OpenMP team.
  Time offload_launch_base = microseconds(95);
  Time offload_launch_per_thread = microseconds(1.6);
  /// Penalty multiplier applied to unaligned / non-4KiB-multiple transfers
  /// (paper lists 4 KiB alignment as one of its offload optimisations).
  double offload_misaligned_bw_factor = 0.5;
  Time offload_misaligned_extra = microseconds(0);

  // --- Compute model (five-point stencil, Section V third experiment) ------
  /// Per-point update cost of the serial stencil on one Phi core.
  Time phi_point_time = nanoseconds(55);
  /// Host core is ~6x faster per scalar point than a 1GHz in-order KNC core.
  Time host_point_time = nanoseconds(9);
  /// OpenMP efficiency curve e(T) = 1 / (1 + alpha * (T - 1)): shared GDDR
  /// bandwidth limits scaling. Calibrated so that 8 procs x 56 threads gives
  /// the paper's 117x (DCFA-MPI) overall speed-up.
  double phi_thread_alpha = 0.0442;
  double host_thread_alpha = 0.015;
  /// OpenMP fork/join per parallel region.
  Time omp_fork_base = microseconds(3);
  Time omp_fork_per_thread = nanoseconds(300);

  // --- DCFA-MPI tunables (paper defaults) ----------------------------------
  /// Eager/rendezvous switch: messages of size < eager_threshold use the
  /// one-copy eager path; larger ones are zero-copy rendezvous. IV-B3.
  std::uint64_t eager_threshold = 8 * 1024;
  /// Offloading send buffer kicks in at 8 KiB: "an offloading send buffer
  /// starting from 8Kbytes shows the best performance" (IV-B4). Applies to
  /// sends of size >= the threshold.
  std::uint64_t offload_send_threshold = 8 * 1024;
  /// Eager ring: slots per peer and max payload bytes per slot.
  int eager_slots = 16;
  std::uint64_t eager_max_payload = 8 * 1024;
  /// MR cache pool capacity (entries / bytes).
  int mr_cache_entries = 64;
  std::uint64_t mr_cache_bytes = 256ull * 1024 * 1024;

  // --- Collectives engine (src/mpi/coll.hpp, docs/collectives.md) ----------
  /// Allreduce: below this message size latency dominates and recursive
  /// doubling's ceil(log2 P) full-vector rounds win over the
  /// bandwidth-optimal algorithms.
  std::uint64_t coll_allreduce_small_max = 4096;
  /// Allreduce: between small_max and ring_min, Rabenseifner (recursive-
  /// halving reduce-scatter + recursive-doubling allgather) moves the same
  /// (P-1)/P*n bytes per phase as the ring but in log2(P) instead of P-1
  /// steps, so it wins the whole mid range. At and above ring_min the
  /// per-step latency is fully amortised and the pipelined ring's
  /// send/recv/combine overlap takes over (abl_collectives: the two are
  /// within ~2% at 8 MiB and the ring leads beyond).
  std::uint64_t coll_allreduce_ring_min = 8ull << 20;
  /// Bcast: at and above this size the scatter + ring-allgather algorithm
  /// (van de Geijn, ~2n/P per link) replaces the binomial tree, which moves
  /// the full message log2(P) times down the critical path.
  std::uint64_t coll_bcast_large_min = 2ull << 20;
  /// Segment size for pipelined collective phases: >= eager_threshold so
  /// segments take the zero-copy rendezvous path, small enough that the
  /// combine of segment k overlaps the transfer of segment k+1. The
  /// abl_collectives segment sweep puts the elbow here.
  std::uint64_t coll_segment_bytes = 256 * 1024;

  // --- Fault recovery (active only when a fault spec arms the injector) ----
  /// Base retransmit timeout for eager packets and rendezvous control
  /// messages; doubles on every retry (bounded exponential backoff). Sized
  /// well above the worst-case wire round trip so the happy path never
  /// triggers it spuriously.
  Time mpi_retry_timeout = microseconds(60);
  /// Retransmit budget per operation; exceeding it raises MpiError.
  int mpi_max_retries = 6;
  /// CMD-channel delegation: reply timeout, retry backoff step, and budget.
  Time dcfa_cmd_timeout = microseconds(100);
  Time dcfa_cmd_retry_backoff = microseconds(10);
  int dcfa_cmd_max_retries = 4;

  // --- Connection recovery (active only when *fatal* faults are armed) -----
  /// Peer-liveness heartbeat: each endpoint writes a non-faultable beacon to
  /// every peer at this period and declares a peer Suspect when nothing —
  /// beacon, credit, packet, or CQE — was heard for the timeout. Sized so a
  /// healthy-but-idle peer (worst case: one service hop) never trips it.
  Time mpi_heartbeat_period = microseconds(50);
  Time mpi_liveness_timeout = microseconds(400);
  /// Cumulative reconnect budget per endpoint: after this many epoch bumps
  /// the endpoint stops re-establishing and the operation fails cleanly
  /// (MpiError), so an unbounded error storm still terminates.
  int mpi_max_reconnects = 3;
  /// Delegate-death budget: how many times one reconnect may retry its
  /// resource re-creation through a dead CMD channel (each attempt already
  /// pays the full CMD retry budget) before the endpoint degrades to the
  /// host-proxy path instead of aborting.
  int dcfa_delegate_death_budget = 1;

  /// Default platform as used by the paper's evaluation.
  static Platform defaults() { return Platform{}; }
};

}  // namespace dcfa::sim
