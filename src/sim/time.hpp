#pragma once

#include <cstdint>
#include <string>

namespace dcfa::sim {

/// Virtual simulation time in nanoseconds. All latency/bandwidth math in the
/// simulator is done on this scale: 1 GB/s == 1 byte/ns, so a bandwidth of
/// 6.0 GB/s moves a byte in 1/6.0 ns.
using Time = std::int64_t;

constexpr Time kNever = INT64_MAX;

constexpr Time nanoseconds(double n) { return static_cast<Time>(n); }
constexpr Time microseconds(double us) { return static_cast<Time>(us * 1e3); }
constexpr Time milliseconds(double ms) { return static_cast<Time>(ms * 1e6); }
constexpr Time seconds(double s) { return static_cast<Time>(s * 1e9); }

constexpr double to_us(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_s(Time t) { return static_cast<double>(t) / 1e9; }

/// Time for `bytes` to cross a link of `gbps` GB/s (== bytes/ns). Rounds up
/// so a transfer never takes zero virtual time.
constexpr Time transfer_time(std::uint64_t bytes, double gbps) {
  if (bytes == 0) return 0;
  double ns = static_cast<double>(bytes) / gbps;
  auto t = static_cast<Time>(ns);
  return t > 0 ? t : 1;
}

/// Human-readable time for logs and bench output, e.g. "13.20us".
std::string format_time(Time t);

}  // namespace dcfa::sim
