#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "sim/vclock.hpp"

namespace dcfa::sim {

/// How much work DcfaCheck does per protocol event.
///
///   Off   — every hook is a no-op (a level test and a return).
///   Cheap — O(1)/O(log n) local-ledger checks: sequence continuity, credit
///           monotonicity, MR liveness, epoch fences, tag-window occupancy,
///           schedule stage order.
///   Full  — Cheap plus cross-rank consistency: a credit value read by the
///           sender must be one the receiver actually wrote, and MR uses are
///           re-validated against the registered window bounds.
enum class CheckLevel { Off, Cheap, Full };

/// Violation classes DcfaCheck can report. One enum value per invariant
/// family so tests can assert on the *class* of a seeded bug, not on
/// message text.
enum class CheckKind {
  SeqRegression,   ///< a sequence id was assigned/accepted at or below the ledger
  SeqGap,          ///< a sequence id skipped ahead of the ledger
  CreditOverrun,   ///< more eager packets in flight than the ring has slots
  CreditRegression,///< a credit counter (written or read) moved backwards
  DoubleCredit,    ///< credit value inconsistent with the consumed ledger
  MrUseAfterDereg, ///< an lkey/rkey was used after dereg_mr released it
  MrUnknownKey,    ///< an lkey/rkey was used that was never registered
  MrOutOfBounds,   ///< an MR use fell outside the registered window (Full)
  StaleEpoch,      ///< a packet with a stale conn_epoch got past the fence
  EpochRegression, ///< a connection epoch moved backwards
  TagWindowAlias,  ///< two live schedules share one collective tag-window slot
  StageOrder,      ///< schedule stages ran out of order or finished early
  WireBounds,      ///< a wire-format copy overran its buffer
  FailureReplay,   ///< a rank adopted the same peer failure twice
  DeadRankTraffic, ///< a rank adopted a failure of / heard from itself dead
  RevokedUse,      ///< a collective started on a revoked communicator
  RmaNoEpoch,      ///< an RMA op was issued with no access epoch open
  RmaLockConflict, ///< a granted window lock conflicts with a held one
  RmaLockOrder,    ///< lock/unlock/fence sequencing broke the epoch machine
  RmaUnflushed,    ///< an epoch closed with RMA ops still un-flushed
  RmaBounds,       ///< a remote-rkey access escaped the target's exposures (Full)
  RaceRmaWindow,   ///< concurrent conflicting window accesses with no HB edge (Full)
  RaceBufferReuse, ///< a nonblocking op's buffer accessed while in flight (Full)
  RaceChannelCell, ///< concurrent conflicting channel cell writes (Full)
};

const char* check_kind_name(CheckKind k);
const char* check_level_name(CheckLevel l);

/// Thrown on the first invariant violation. Fail-fast: the simulation state
/// that produced the violation is still intact in the throwing thread, so a
/// debugger or the test harness sees the exact admitting event.
class CheckError : public std::runtime_error {
 public:
  CheckError(CheckKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  CheckKind kind() const { return kind_; }

 private:
  CheckKind kind_;
};

/// Runtime protocol-invariant checker ("DcfaCheck").
///
/// One Checker is owned by each sim::Engine and shared by every rank in that
/// cluster. All hooks run while their caller holds the simulation run token
/// (exactly one process executes at a time), so the shadow state needs no
/// locking and stays deterministic.
///
/// The checker deliberately speaks in plain integers (ranks, keys, tags,
/// sequence numbers) so the sim layer keeps zero knowledge of the mpi/ib
/// types that call into it.
class Checker {
 public:
  /// Parse a DCFA_CHECK value; throws std::invalid_argument on junk.
  static CheckLevel parse_level(const std::string& s);
  /// Level from the DCFA_CHECK environment variable. Unset means Cheap:
  /// checking is on by default and tests inherit it without opting in.
  static CheckLevel level_from_env();

  explicit Checker(CheckLevel level);

  CheckLevel level() const { return level_; }
  bool on() const { return level_ != CheckLevel::Off; }
  bool full() const { return level_ == CheckLevel::Full; }

  /// Number of invariant evaluations performed (for "the checker actually
  /// ran" assertions in tests).
  std::uint64_t events() const { return events_; }
  /// Number of violations raised. The first one throws, so this is 0 or 1
  /// unless a test swallows CheckError and keeps driving.
  std::uint64_t violations() const { return violations_; }

  /// Replay token of the schedule this cluster runs under (empty under Fifo
  /// ordering). When set, every violation report carries a
  /// " [schedule=<token>]" suffix so a failure found by exploration ships
  /// its own reproduction recipe.
  void set_schedule_token(std::string token) {
    schedule_token_ = std::move(token);
  }
  const std::string& schedule_token() const { return schedule_token_; }

  // --- per-(rank, peer, comm, tag) sequence ledgers ---------------------

  /// A send-side sequence id was assigned on `rank`'s channel to `peer`.
  void send_seq_assigned(int rank, int peer, std::uint32_t comm, int tag,
                         std::uint64_t seq);
  /// A receive got bound to an expected sequence id on `rank`'s channel
  /// from `peer` (posted-before-arrival or deferred-queue assignment).
  void recv_seq_assigned(int rank, int peer, std::uint32_t comm, int tag,
                         std::uint64_t seq);
  /// `rank` accepted a data-bearing packet (eager or RTS) from `src` after
  /// duplicate filtering. Ring order equals send order, so accepted seqs
  /// advance a per-channel watermark; a hole is only legal if the missing
  /// seq was claimed by a receiver-first rendezvous (packet_claimed), whose
  /// data arrives by RDMA write instead of a ring packet.
  void packet_accepted(int rank, int src, std::uint32_t comm, int tag,
                       std::uint64_t seq);
  /// `rank` claimed `seq` on the channel from `src` for a receiver-first
  /// rendezvous (RTR sent): the seq is admitted out of arrival order, ahead
  /// of ring packets still in flight. Claims must be unique per channel.
  void packet_claimed(int rank, int src, std::uint32_t comm, int tag,
                      std::uint64_t seq);

  // --- eager ring credit accounting -------------------------------------

  /// `rank` emitted eager packet number `sent` (post-increment value) to
  /// `peer` with `in_flight` packets outstanding against `cap` ring slots.
  void packet_emitted(int rank, int peer, std::uint64_t sent,
                      std::uint64_t in_flight, std::uint64_t cap);
  /// `rank` consumed a ring slot from `peer`; `consumed` is the new total.
  void packet_consumed(int rank, int peer, std::uint64_t consumed);
  /// `rank` wrote credit `value` toward `peer` (RDMA into peer's cell).
  void credit_written(int rank, int peer, std::uint64_t value);
  /// `rank` read credit `value` from its local cell for `peer`.
  void credit_read(int rank, int peer, std::uint64_t value);

  // --- MR lifecycle ------------------------------------------------------

  /// `owner` namespaces the key: each ib::Hca allocates lkeys from its own
  /// counter, so the same numeric key names different MRs on different
  /// ranks of a cluster. Callers pass the MR's protection domain (available
  /// at registration, dereg, post, and cache-hit time alike).
  void mr_registered(const void* owner, std::uint64_t lkey,
                     std::uint64_t rkey, std::uint64_t addr,
                     std::uint64_t len);
  void mr_deregistered(const void* owner, std::uint64_t lkey,
                       std::uint64_t rkey);
  /// A work request referenced `key` (an lkey or rkey) over
  /// [addr, addr+len). len == 0 skips the bounds check.
  void mr_used(const void* owner, std::uint64_t key, std::uint64_t addr,
               std::uint64_t len);

  // --- connection epochs --------------------------------------------------

  /// `rank`'s connection to `peer` moved to `epoch` (reconnect completed).
  /// Also resets the credit/sequence ledgers for that direction: the ring
  /// restarts from zero on the new connection.
  void epoch_advanced(int rank, int peer, std::uint32_t epoch);
  /// `rank` admitted a packet from `src` carrying `pkt_epoch` while the
  /// endpoint is at `ep_epoch`. The receive fence must have filtered any
  /// mismatch before this point.
  void packet_epoch(int rank, int src, std::uint32_t pkt_epoch,
                    std::uint32_t ep_epoch);

  // --- collective tag windows and schedule stages -------------------------

  /// A collective schedule started on `rank`/`comm` occupying tag-window
  /// slot `window_slot` with `stages` total stages. Returns a checker id
  /// for the later stage/finish hooks.
  std::uint64_t coll_started(int rank, std::uint32_t comm, int window_slot,
                             std::size_t stages);
  void stage_started(std::uint64_t check_id, std::size_t stage);
  void coll_finished(std::uint64_t check_id);
  /// Schedule abandoned by fault handling: releases the window slot without
  /// requiring all stages to have run.
  void coll_failed(std::uint64_t check_id);

  // --- rank-failure / revocation ledgers ----------------------------------

  /// `rank` adopted the failure of `failed` into its local failure set.
  /// Each (rank, failed) adoption must happen at most once (the fail-epoch
  /// cursor makes replays a bug), and a rank must never blame itself.
  void rank_failed(int rank, int failed);
  /// `rank` marked communicator `comm` revoked. Idempotent at the engine
  /// level, so the checker too sees each (rank, comm) pair at most once.
  void comm_revoked(int rank, std::uint32_t comm);

  // --- RMA windows: exposure registry, epoch machine, locks, flushes -------
  //
  // Shadow ledgers for the one-sided subsystem (docs/rma.md). Exposures are
  // the remote-rkey side: every region a rank advertises for RMA (window or
  // persistent channel) registers here, and at Full every remote access is
  // re-validated against the *target's* exposure set — the cross-rank bounds
  // check the origin-side argument validation cannot substitute for. The
  // epoch machine audits, per (origin rank, window): fence/lock mode
  // exclusivity, lock compatibility across origins, and flush ordering
  // (no epoch may close while ops are still pending).

  /// `rank` exposed [addr, addr+len) for remote one-sided access under
  /// rank-local exposure id `id`.
  void rma_exposed(int rank, std::uint64_t id, std::uint64_t addr,
                   std::uint64_t len);
  void rma_unexposed(int rank, std::uint64_t id);
  /// Origin `rank` posted a remote access (RDMA write/read) hitting
  /// [addr, addr+len) in `target`'s memory. Full re-validates containment
  /// in one of the target's live exposures.
  void rma_remote_access(int rank, int target, std::uint64_t addr,
                         std::uint64_t len);

  /// `rank` completed a fence on window `win` (called after quiescing, so
  /// no op may still be pending). Opens/continues the fence epoch; illegal
  /// while passive-target locks are held.
  void win_fence(int rank, std::uint64_t win);
  /// `rank` was *granted* a shared/exclusive lock on `target`'s side of
  /// `win`. Checks the lock-compatibility matrix against every holder.
  void win_lock(int rank, std::uint64_t win, int target, bool exclusive);
  void win_unlock(int rank, std::uint64_t win, int target);
  /// lock_all is shared-mode on every target (MPI semantics).
  void win_lock_all(int rank, std::uint64_t win, int nranks);
  void win_unlock_all(int rank, std::uint64_t win);
  /// `rank` issued put/get/accumulate on `win` toward `target`: requires an
  /// open access epoch covering that target, and counts as pending until
  /// rma_completed.
  void rma_op(int rank, std::uint64_t win, int target);
  void rma_completed(int rank, std::uint64_t win, int target);
  /// `rank` finished a flush toward `target` (engine must have drained
  /// first): requires a passive epoch on that target and zero pending ops.
  void rma_flushed(int rank, std::uint64_t win, int target);
  /// Window freed: every epoch must be closed and every op flushed.
  void win_freed(int rank, std::uint64_t win);

  // --- DcfaRace: happens-before race detection (Full only) -----------------
  //
  // A vector-clock engine derives happens-before edges from the sync events
  // the runtime already reports (matched send/recv pairs, RMA lock handoffs,
  // channel doorbell arrivals, agreement decisions) and checks *tracked
  // accesses* — window targets, in-flight nonblocking buffers, channel
  // payload cells — for concurrent conflicting access. docs/checking.md has
  // the full edge table. Every hook below is a no-op unless full().

  /// How a tracked access touches its range. Accum is read-modify-write
  /// that the runtime promises to apply atomically per element, so
  /// Accum/Accum pairs never conflict while Accum/Read and Accum/Write do.
  enum class AccessOp { Read, Write, Accum };

  /// Open a tracked access: `actor` begins op on [addr, addr+len) in
  /// `owner`'s address space (owner == actor for local buffers). Checks the
  /// new access against every tracked access to an overlapping range and
  /// raises `kind` if one conflicts without a happens-before edge.
  /// `site` is a static description used in the report ("put", "isend
  /// buffer", ...). Returns an id for race_end, 0 when not tracking.
  std::uint64_t race_begin(CheckKind kind, int owner, int actor,
                           std::uint64_t addr, std::uint64_t len, AccessOp op,
                           const char* site);
  /// Close a tracked access: the operation completed locally at `actor`, so
  /// later accesses that observe this completion (via any HB edge) are
  /// ordered after it.
  void race_end(std::uint64_t id);

  /// `rank` published channel-post number `n` (doorbell write toward cell
  /// `cell`): releases everything `rank` did so far to whoever waits for
  /// arrival `n` or later on that cell.
  void channel_posted(int rank, std::uint64_t cell, std::uint64_t n);
  /// `rank` observed arrival count >= `n` on cell `cell`: acquires the
  /// posting side's history up to post `n`.
  void channel_waited(int rank, std::uint64_t cell, std::uint64_t n);

  /// `rank` contributed its vote to agreement round `seq` on `comm`.
  void agree_voted(int rank, std::uint32_t comm, std::uint64_t seq);
  /// `rank` observed the decision of agreement round `seq` on `comm`:
  /// acquires every voter's history (agreement is a full barrier).
  void agree_decided(int rank, std::uint32_t comm, std::uint64_t seq);

  // --- wire-format helpers ------------------------------------------------

  /// Raise a WireBounds violation (used by mpi/wire.hpp when a packed copy
  /// would overrun its buffer). Always fatal regardless of level: a wire
  /// overrun is memory corruption, not a protocol anomaly.
  [[noreturn]] static void wire_bounds_violation(const std::string& what);

 private:
  struct ChannelKey {
    int rank;
    int peer;
    std::uint32_t comm;
    int tag;
    bool operator<(const ChannelKey& o) const {
      if (rank != o.rank) return rank < o.rank;
      if (peer != o.peer) return peer < o.peer;
      if (comm != o.comm) return comm < o.comm;
      return tag < o.tag;
    }
  };
  struct PairKey {
    int rank;
    int peer;
    bool operator<(const PairKey& o) const {
      if (rank != o.rank) return rank < o.rank;
      return peer < o.peer;
    }
  };
  struct CreditState {
    std::uint64_t consumed = 0;        // packets this rank consumed from peer
    std::uint64_t written = 0;         // last credit value written to peer
    std::uint64_t read = 0;            // last credit value read for peer
    std::uint64_t emitted = 0;         // packets emitted toward peer
    std::uint32_t epoch = 0;           // connection epoch these ledgers track
  };
  struct MrState {
    std::uint64_t addr = 0;
    std::uint64_t len = 0;
    bool live = false;
  };
  struct CollState {
    int rank = -1;
    std::uint32_t comm = 0;
    int window_slot = -1;
    std::size_t stages = 0;
    std::size_t next_stage = 0;
    bool live = false;
  };

  [[noreturn]] void violate(CheckKind kind, const std::string& what);
  void count() { ++events_; }
  void check_seq(std::map<ChannelKey, std::uint64_t>& ledger,
                 const char* role, int rank, int peer, std::uint32_t comm,
                 int tag, std::uint64_t seq);

  // --- happens-before engine (Full only) ----------------------------------
  struct RaceAccess {
    CheckKind kind = CheckKind::RaceRmaWindow;
    int owner = -1;             // rank whose memory holds the range
    int actor = -1;             // rank performing the access
    std::uint64_t addr = 0;
    std::uint64_t len = 0;
    AccessOp op = AccessOp::Read;
    bool open = true;
    std::uint64_t close_time = 0;  // actor's own clock component at close
    const char* site = "";
  };
  VClock& clock(int rank);
  /// rank's clock ticks, then its history merges into the edge named `key`.
  void hb_release(int rank, std::uint64_t key);
  /// The edge named `key` merges into rank's clock (erased if `consume`).
  void hb_acquire(int rank, std::uint64_t key, bool consume);
  static std::uint64_t hb_key(std::uint64_t tag, std::uint64_t a,
                              std::uint64_t b, std::uint64_t c,
                              std::uint64_t d);
  bool race_conflicts(const RaceAccess& a, CheckKind kind, int owner,
                      int actor, std::uint64_t addr, std::uint64_t len,
                      AccessOp op) const;
  [[noreturn]] void report_race(const RaceAccess& prior, CheckKind kind,
                                int owner, int actor, std::uint64_t addr,
                                std::uint64_t len, AccessOp op,
                                const char* site);
  void prune_owner(std::vector<std::uint64_t>& ids);

  CheckLevel level_;
  std::uint64_t events_ = 0;
  std::uint64_t violations_ = 0;
  std::string schedule_token_;

  // Receiver-side admission: `next` is the contiguous watermark (everything
  // below it was admitted); `claimed` holds receiver-first seqs admitted
  // ahead of the watermark, absorbed as the ring catches up.
  struct AcceptState {
    std::uint64_t next = 0;
    std::set<std::uint64_t> claimed;
  };

  std::map<ChannelKey, std::uint64_t> send_seq_;    // last assigned send seq
  std::map<ChannelKey, std::uint64_t> recv_seq_;    // last assigned recv seq
  std::map<ChannelKey, AcceptState> accepted_;
  std::map<PairKey, CreditState> credit_;
  std::map<PairKey, std::uint32_t> epoch_;
  // Keyed by (protection domain, key): key counters are per-Hca, so the
  // same numeric key legitimately recurs across ranks. Within one PD keys
  // are monotonic and never reused (ib::Hca hands out next_key_++), so a
  // dead key stays in the map forever as a tombstone.
  std::map<std::pair<const void*, std::uint64_t>, MrState> mrs_;
  // (rank, comm, slot) -> check_id; ranks share the checker but each has
  // its own independent copy of the rotating window.
  std::map<std::tuple<int, std::uint32_t, int>, std::uint64_t> window_;
  std::vector<CollState> colls_;
  std::set<std::pair<int, int>> failures_seen_;           // (rank, failed)
  std::set<std::pair<int, std::uint32_t>> revoked_seen_;  // (rank, comm)

  // --- RMA shadow state -----------------------------------------------------
  struct Exposure {
    std::uint64_t addr = 0;
    std::uint64_t len = 0;
  };
  struct RmaEpochState {
    bool fence_open = false;   // a fence ran; fence-mode ops are legal
    bool lock_all = false;
    int lock_all_n = 0;        // targets covered by the open lock_all epoch
    std::set<int> locks;       // targets this origin holds a lock on
    std::map<int, std::uint64_t> pending;  // un-flushed ops per target
    std::uint64_t pending_total = 0;
  };
  struct RmaLockHolders {
    int exclusive = -1;        // origin holding the exclusive lock, or -1
    std::set<int> shared;      // origins holding shared locks
  };
  RmaEpochState& rma_state(int rank, std::uint64_t win) {
    return rma_state_[{rank, win}];
  }

  // (rank, exposure id) -> region; bounds lookups scan one rank's exposures.
  std::map<std::pair<int, std::uint64_t>, Exposure> rma_exposures_;
  std::map<std::pair<int, std::uint64_t>, RmaEpochState> rma_state_;
  std::map<std::pair<std::uint64_t, int>, RmaLockHolders> rma_locks_;

  // --- happens-before / race-ledger state (populated only at Full) ---------
  std::vector<VClock> clocks_;                  // one logical clock per rank
  std::map<std::uint64_t, VClock> hb_sync_;     // keyed release/acquire edges
  // Channel doorbell edges: (cell address, post index) -> releasing clock.
  // A waiter for arrival n acquires (and retires) every entry <= n.
  std::map<std::pair<std::uint64_t, std::uint64_t>, VClock> chan_sync_;
  std::map<std::uint64_t, RaceAccess> race_accesses_;       // id -> access
  std::map<int, std::vector<std::uint64_t>> race_by_owner_; // owner -> ids
  std::uint64_t race_next_id_ = 0;
};

}  // namespace dcfa::sim
