#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dcfa::sim {

/// Timeline recorder producing Chrome trace-event JSON ("catapult" format,
/// loadable in chrome://tracing or https://ui.perfetto.dev). Components emit
/// spans and instant markers against the virtual clock; each track (CPU
/// core, DMA engine, wire, delegation process) appears as its own row.
///
/// Tracing is off unless a Tracer is installed (Tracer::install), so the
/// hot paths pay one branch when disabled. The MPI Runtime wires itself up
/// when RunConfig::trace_path is set.
class Tracer {
 public:
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// A span of [start, end) on `track` (e.g. "rank0", "node1.dma").
  void span(const std::string& track, const std::string& name, Time start,
            Time end);
  /// A zero-duration marker.
  void instant(const std::string& track, const std::string& name, Time at);
  /// A numeric counter sample (rendered as a graph row).
  void counter(const std::string& track, const std::string& series, Time at,
               double value);

  /// Serialise everything recorded so far as Chrome trace JSON.
  std::string to_json() const;
  /// Write to_json() to `path`.
  void write(const std::string& path) const;

  std::size_t events() const { return events_.size(); }

  /// Process-wide current tracer (nullptr = tracing off). Not owned.
  static Tracer* current() { return current_; }
  static void install(Tracer* tracer) { current_ = tracer; }

 private:
  struct Event {
    char phase;  // 'X' complete span, 'i' instant, 'C' counter
    std::string track;
    std::string name;
    Time start;
    Time duration;
    double value;
  };

  /// Stable small integer per track name (Chrome "tid").
  int track_id(const std::string& track);

  std::vector<Event> events_;
  std::vector<std::string> tracks_;
  static Tracer* current_;
};

/// Convenience: record a span on the current tracer if one is installed.
inline void trace_span(const std::string& track, const std::string& name,
                       Time start, Time end) {
  if (Tracer* t = Tracer::current()) t->span(track, name, start, end);
}

inline void trace_instant(const std::string& track, const std::string& name,
                          Time at) {
  if (Tracer* t = Tracer::current()) t->instant(track, name, at);
}

}  // namespace dcfa::sim
