#include "sim/log.hpp"

#include <cstdlib>

namespace dcfa::sim {

namespace {
LogLevel g_level = [] {
  if (const char* env = std::getenv("DCFA_SIM_LOG")) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 3) return static_cast<LogLevel>(v);
  }
  return LogLevel::Off;
}();
}  // namespace

LogLevel Log::level() { return g_level; }
void Log::set_level(LogLevel lv) { g_level = lv; }

}  // namespace dcfa::sim
