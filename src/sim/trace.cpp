#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace dcfa::sim {

Tracer* Tracer::current_ = nullptr;

int Tracer::track_id(const std::string& track) {
  auto it = std::find(tracks_.begin(), tracks_.end(), track);
  if (it != tracks_.end()) return static_cast<int>(it - tracks_.begin());
  tracks_.push_back(track);
  return static_cast<int>(tracks_.size()) - 1;
}

void Tracer::span(const std::string& track, const std::string& name,
                  Time start, Time end) {
  events_.push_back(
      Event{'X', track, name, start, end > start ? end - start : 0, 0});
}

void Tracer::instant(const std::string& track, const std::string& name,
                     Time at) {
  events_.push_back(Event{'i', track, name, at, 0, 0});
}

void Tracer::counter(const std::string& track, const std::string& series,
                     Time at, double value) {
  events_.push_back(Event{'C', track, series, at, 0, value});
}

namespace {
/// Escape a string for JSON output.
std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string Tracer::to_json() const {
  // Timestamps in Chrome traces are microseconds (floating point allowed);
  // the virtual clock is nanoseconds.
  std::string out = "{\"traceEvents\":[\n";
  // Track name metadata.
  Tracer* self = const_cast<Tracer*>(this);
  bool first = true;
  std::vector<std::string> tracks;
  for (const Event& e : events_) {
    if (std::find(tracks.begin(), tracks.end(), e.track) == tracks.end()) {
      tracks.push_back(e.track);
    }
  }
  char buf[256];
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                  i, esc(tracks[i]).c_str());
    if (!first) out += ",\n";
    out += buf;
    first = false;
  }
  auto tid_of = [&](const std::string& track) {
    return std::find(tracks.begin(), tracks.end(), track) - tracks.begin();
  };
  for (const Event& e : events_) {
    if (!first) out += ",\n";
    first = false;
    const double ts = static_cast<double>(e.start) / 1e3;
    switch (e.phase) {
      case 'X':
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"X\",\"pid\":1,\"tid\":%zd,\"ts\":%.3f,"
                      "\"dur\":%.3f,\"name\":\"%s\"}",
                      tid_of(e.track), ts,
                      static_cast<double>(e.duration) / 1e3,
                      esc(e.name).c_str());
        break;
      case 'i':
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"i\",\"pid\":1,\"tid\":%zd,\"ts\":%.3f,"
                      "\"s\":\"t\",\"name\":\"%s\"}",
                      tid_of(e.track), ts, esc(e.name).c_str());
        break;
      case 'C':
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"C\",\"pid\":1,\"tid\":%zd,\"ts\":%.3f,"
                      "\"name\":\"%s\",\"args\":{\"value\":%g}}",
                      tid_of(e.track), ts, esc(e.name).c_str(), e.value);
        break;
      default:
        continue;
    }
    out += buf;
  }
  (void)self;
  out += "\n]}\n";
  return out;
}

void Tracer::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("Tracer::write: cannot open " + path);
  const std::string json = to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

}  // namespace dcfa::sim
