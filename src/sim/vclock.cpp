#include "sim/vclock.hpp"

#include <sstream>

namespace dcfa::sim {

std::string VClock::str() const {
  std::ostringstream os;
  os << '<';
  bool first = true;
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (c_[i] == 0) continue;
    if (!first) os << ' ';
    os << i << ':' << c_[i];
    first = false;
  }
  os << '>';
  return os.str();
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace dcfa::sim
