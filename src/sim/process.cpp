#include "sim/process.hpp"

#include <stdexcept>

#include "sim/engine.hpp"

namespace dcfa::sim {

Process::Process(Engine& engine, std::string name,
                 std::function<void(Process&)> body)
    : engine_(engine), name_(std::move(name)), body_(std::move(body)) {}

Process::~Process() {
  {
    std::unique_lock lk(mu_);
    if (state_ != State::Done && thread_.joinable()) {
      // The engine is being torn down with this process still parked. Hand it
      // a poisoned token so the thread can unwind via an exception.
      state_ = State::Done;  // signals abandon to the thread loop
      token_with_process_ = true;
      cv_.notify_all();
    }
  }
  if (thread_.joinable()) thread_.join();
}

Time Process::now() const { return engine_.now(); }

void Process::start() {
  state_ = State::Runnable;
  thread_ = std::thread([this] {
    {
      // Wait for the first resume.
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return token_with_process_; });
      if (state_ == State::Done) {  // abandoned before first run
        token_with_process_ = false;
        cv_.notify_all();
        return;
      }
      state_ = State::Running;
    }
    try {
      body_(*this);
    } catch (const AbandonedProcess&) {
      // Engine torn down while we were parked; just unwind.
    } catch (...) {
      // Remember the failure; Engine::run() rethrows it to the caller.
      error_ = std::current_exception();
      // The engine thread is parked in resume() until we hand the token
      // back below, so this write is ordered before its next loop check.
      engine_.process_failed_ = true;
    }
    std::unique_lock lk(mu_);
    state_ = State::Done;
    token_with_process_ = false;
    cv_.notify_all();
  });
}

void Process::resume() {
  std::unique_lock lk(mu_);
  if (state_ == State::Done) return;  // finished before a stale wake-up fired
  token_with_process_ = true;
  state_ = State::Running;
  cv_.notify_all();
  // Wait for the process to park again or finish.
  cv_.wait(lk, [this] { return !token_with_process_; });
}

void Process::park() {
  std::unique_lock lk(mu_);
  state_ = State::Blocked;
  token_with_process_ = false;
  cv_.notify_all();
  cv_.wait(lk, [this] { return token_with_process_; });
  if (state_ == State::Done) {
    throw AbandonedProcess{};
  }
  state_ = State::Running;
}

void Process::wait(Time d) {
  if (d < 0) throw std::logic_error("Process::wait: negative duration");
  engine_.schedule_after(d, [this] { resume(); });
  park();
}

void Process::wait_on(Condition& cond) {
  cond.waiters_.push_back(this);
  park();
}

Condition::Condition(Engine& engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

void Condition::notify_all() {
  if (waiters_.empty()) return;
  auto woken = std::move(waiters_);
  waiters_.clear();
  for (Process* p : woken) {
    engine_.schedule_after(0, [p] { p->resume(); });
  }
}

}  // namespace dcfa::sim
