#include "sim/process.hpp"

#include <stdexcept>

#include "sim/engine.hpp"

namespace dcfa::sim {

thread_local Process* Process::tl_current_ = nullptr;

Process* Process::current() { return tl_current_; }

Process::Process(Engine& engine, std::string name,
                 std::function<void(Process&)> body, std::size_t id)
    : engine_(engine), name_(std::move(name)), body_(std::move(body)),
      id_(id) {}

Process::~Process() {
  if (fiber_) {
    if (fiber_->started() && !fiber_->done()) {
      // The engine is being torn down with this fiber still parked inside
      // its body. Resume it one last time with the abandon flag set so
      // park() throws AbandonedProcess and the fiber stack unwinds its
      // destructors before the mapping is released. The resume must run on
      // the fiber's pinned worker (sanitizer stack bookkeeping).
      abandoned_ = true;
      engine_.run_resume(*this);
    }
    return;  // never-started fibers hold no frames; ~Fiber unmaps
  }
  {
    std::unique_lock lk(mu_);
    if (state_ != State::Done && thread_.joinable()) {
      // Thread backend: hand the parked thread a poisoned token so it can
      // unwind via an exception.
      state_ = State::Done;  // signals abandon to the thread loop
      token_with_process_ = true;
      cv_.notify_all();
    }
  }
  if (thread_.joinable()) thread_.join();
}

Time Process::now() const { return engine_.now(); }

void Process::run_body() {
  try {
    body_(*this);
  } catch (const AbandonedProcess&) {
    // Engine torn down while we were parked; just unwind.
  } catch (...) {
    // Remember the failure; Engine::run() rethrows it to the caller. The
    // engine is blocked until we hand control back, so this write is
    // ordered before its next loop check.
    error_ = std::current_exception();
    engine_.process_failed_ = true;
  }
  state_ = State::Done;
}

void Process::start() {
  state_ = State::Runnable;
  if (engine_.sched_config().backend == SchedConfig::Backend::Fiber) {
    fiber_ = std::make_unique<Fiber>([this] { run_body(); },
                                     engine_.sched_config().stack_bytes);
    return;
  }
  thread_ = std::thread([this] {
    tl_current_ = this;  // this thread runs exactly one process body
    {
      // Wait for the first resume.
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return token_with_process_; });
      if (state_ == State::Done) {  // abandoned before first run
        token_with_process_ = false;
        cv_.notify_all();
        return;
      }
      state_ = State::Running;
    }
    run_body();
    std::unique_lock lk(mu_);
    token_with_process_ = false;
    cv_.notify_all();
  });
}

void Process::resume() {
  if (fiber_backend()) {
    if (state_ == State::Done) return;  // finished before a stale wake-up
    state_ = State::Running;
    engine_.run_resume(*this);
    if (state_ == State::Done) finish_cleanup();
    return;
  }
  {
    std::unique_lock lk(mu_);
    if (state_ == State::Done) return;  // finished before a stale wake-up
    token_with_process_ = true;
    state_ = State::Running;
    cv_.notify_all();
    // Wait for the process to park again or finish.
    cv_.wait(lk, [this] { return !token_with_process_; });
  }
  if (state_ == State::Done) finish_cleanup();
}

void Process::park() {
  if (fiber_backend()) {
    state_ = State::Blocked;
    fiber_->yield();
    if (abandoned_) throw AbandonedProcess{};
    state_ = State::Running;
    return;
  }
  std::unique_lock lk(mu_);
  state_ = State::Blocked;
  token_with_process_ = false;
  cv_.notify_all();
  cv_.wait(lk, [this] { return token_with_process_; });
  if (state_ == State::Done) {
    throw AbandonedProcess{};
  }
  state_ = State::Running;
}

void Process::finish_cleanup() {
  // Release the execution context and the body closure the moment the body
  // returns: at thousands of ranks the stacks and captured state are the
  // dominant memory, and keeping them until teardown is an O(all ranks)
  // cost the scheduler is designed to avoid.
  if (thread_.joinable()) thread_.join();
  fiber_.reset();
  body_ = nullptr;
  engine_.note_process_finished();
}

void Process::wait(Time d) {
  if (d < 0) throw std::logic_error("Process::wait: negative duration");
  engine_.schedule_after(d, [this] { resume(); });
  park();
}

void Process::wait_on(Condition& cond) {
  cond.waiters_.push_back(this);
  park();
}

Condition::Condition(Engine& engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

void Condition::notify_all() {
  if (waiters_.empty()) return;
  auto woken = std::move(waiters_);
  waiters_.clear();
  // One engine event per waiter (never a direct resume): under explore
  // ordering each wakeup draws its own priority, so the scheduler can
  // legally run the woken processes in any order — this is the main
  // source of interleaving choice points the seed sweep permutes.
  for (Process* p : woken) {
    engine_.schedule_after(0, [p] { p->resume(); });
  }
}

}  // namespace dcfa::sim
