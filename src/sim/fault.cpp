#include "sim/fault.hpp"

#include <cstdlib>
#include <stdexcept>

namespace dcfa::sim {

namespace {

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("fault spec: " + what);
}

// Every parse error names the exact `key=value` token that offended, so a
// long spec string with one typo is debuggable from the exception alone.
[[noreturn]] void bad_token(const std::string& item, const std::string& why) {
  bad_spec("bad token '" + item + "': " + why);
}

double parse_prob(const std::string& item, const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    bad_token(item, "wants a probability in [0,1]");
  }
  return p;
}

std::uint64_t parse_u64(const std::string& item, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    bad_token(item, "wants a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

// Plus-separated list ("2+5+7") — commas already delimit spec tokens.
std::vector<std::uint64_t> parse_u64_list(const std::string& item,
                                          const std::string& value) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t sep = value.find('+', pos);
    if (sep == std::string::npos) sep = value.size();
    const std::string part = value.substr(pos, sep - pos);
    pos = sep + 1;
    if (part.empty()) bad_token(item, "wants a +-separated integer list");
    out.push_back(parse_u64(item, part));
    if (sep == value.size()) break;
  }
  if (out.empty()) bad_token(item, "wants a +-separated integer list");
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

FaultInjector::Spec FaultInjector::Spec::parse(const std::string& text) {
  Spec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t sep = text.find_first_of(",;", pos);
    if (sep == std::string::npos) sep = text.size();
    const std::string item = trim(text.substr(pos, sep - pos));
    pos = sep + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      bad_token(item, "expected key=value");
    }
    const std::string key = trim(item.substr(0, eq));
    const std::string value = trim(item.substr(eq + 1));
    if (key == "drop_wc") {
      spec.drop_wc = parse_prob(item, value);
    } else if (key == "err_wc") {
      spec.err_wc = parse_prob(item, value);
    } else if (key == "delay_dma") {
      spec.delay_dma = parse_prob(item, value);
    } else if (key == "cmd_fail") {
      spec.cmd_fail = parse_prob(item, value);
    } else if (key == "cmd_drop") {
      spec.cmd_drop = parse_prob(item, value);
    } else if (key == "qp_fatal") {
      spec.qp_fatal = parse_prob(item, value);
    } else if (key == "delegate_crash") {
      spec.delegate_crash = parse_prob(item, value);
    } else if (key == "delegate_restart_ns") {
      spec.delegate_restart_ns = static_cast<Time>(parse_u64(item, value));
    } else if (key == "rank_kill") {
      for (std::uint64_t r : parse_u64_list(item, value)) {
        spec.rank_kill.push_back(static_cast<int>(r));
      }
    } else if (key == "rank_kill_at_ns") {
      for (std::uint64_t t : parse_u64_list(item, value)) {
        spec.rank_kill_at_ns.push_back(static_cast<Time>(t));
      }
    } else if (key == "delay_dma_ns") {
      spec.delay_dma_ns = static_cast<Time>(parse_u64(item, value));
    } else if (key == "compute_delay") {
      spec.compute_delay = parse_prob(item, value);
    } else if (key == "compute_delay_ns") {
      spec.compute_delay_ns = static_cast<Time>(parse_u64(item, value));
    } else if (key == "compute_delay_max") {
      spec.compute_delay_max = parse_u64(item, value);
    } else if (key == "compute_delay_skip") {
      spec.compute_delay_skip = parse_u64(item, value);
    } else if (key == "credit_slots") {
      spec.credit_slots = static_cast<int>(parse_u64(item, value));
    } else if (key == "drop_wc_max") {
      spec.drop_wc_max = parse_u64(item, value);
    } else if (key == "drop_wc_skip") {
      spec.drop_wc_skip = parse_u64(item, value);
    } else if (key == "err_wc_max") {
      spec.err_wc_max = parse_u64(item, value);
    } else if (key == "err_wc_skip") {
      spec.err_wc_skip = parse_u64(item, value);
    } else if (key == "delay_dma_max") {
      spec.delay_dma_max = parse_u64(item, value);
    } else if (key == "delay_dma_skip") {
      spec.delay_dma_skip = parse_u64(item, value);
    } else if (key == "cmd_fail_max") {
      spec.cmd_fail_max = parse_u64(item, value);
    } else if (key == "cmd_fail_skip") {
      spec.cmd_fail_skip = parse_u64(item, value);
    } else if (key == "cmd_drop_max") {
      spec.cmd_drop_max = parse_u64(item, value);
    } else if (key == "cmd_drop_skip") {
      spec.cmd_drop_skip = parse_u64(item, value);
    } else if (key == "qp_fatal_max") {
      spec.qp_fatal_max = parse_u64(item, value);
    } else if (key == "qp_fatal_skip") {
      spec.qp_fatal_skip = parse_u64(item, value);
    } else if (key == "delegate_crash_max") {
      spec.delegate_crash_max = parse_u64(item, value);
    } else if (key == "delegate_crash_skip") {
      spec.delegate_crash_skip = parse_u64(item, value);
    } else if (key == "cmd_op") {
      if (value == "any") {
        spec.cmd_filter_any = true;
      } else if (value == "reg_mr") {
        spec.cmd_filter_any = false;
        spec.cmd_filter = CmdOpClass::RegMr;
      } else if (value == "offload") {
        spec.cmd_filter_any = false;
        spec.cmd_filter = CmdOpClass::Offload;
      } else if (value == "create") {
        spec.cmd_filter_any = false;
        spec.cmd_filter = CmdOpClass::Create;
      } else {
        bad_token(item, "wants any|reg_mr|offload|create");
      }
    } else {
      bad_token(item, "unknown key '" + key + "'");
    }
  }
  return spec;
}

FaultInjector::WcFate FaultInjector::wc_fate() {
  // Severity order: Fatal beats Error beats Drop. A fatal WR wedges the
  // whole QP, an erred WR moves no data, a dropped one moves data but loses
  // the CQE; when several roll true the most severe wins.
  if (spec_.qp_fatal > 0.0) {
    const std::uint64_t idx = qp_fatal_seen_++;
    if (idx >= spec_.qp_fatal_skip &&
        counters_.qp_fatal < spec_.qp_fatal_max &&
        rng_.chance(spec_.qp_fatal)) {
      ++counters_.qp_fatal;
      return WcFate::Fatal;
    }
  }
  if (spec_.err_wc > 0.0) {
    const std::uint64_t idx = err_seen_++;
    if (idx >= spec_.err_wc_skip && counters_.wc_errored < spec_.err_wc_max &&
        rng_.chance(spec_.err_wc)) {
      ++counters_.wc_errored;
      return WcFate::Error;
    }
  }
  if (spec_.drop_wc > 0.0) {
    const std::uint64_t idx = drop_seen_++;
    if (idx >= spec_.drop_wc_skip && counters_.wc_dropped < spec_.drop_wc_max &&
        rng_.chance(spec_.drop_wc)) {
      ++counters_.wc_dropped;
      return WcFate::Drop;
    }
  }
  return WcFate::Deliver;
}

Time FaultInjector::dma_delay() {
  if (spec_.delay_dma <= 0.0) return 0;
  const std::uint64_t idx = delay_seen_++;
  if (idx >= spec_.delay_dma_skip &&
      counters_.dma_delayed < spec_.delay_dma_max &&
      rng_.chance(spec_.delay_dma)) {
    ++counters_.dma_delayed;
    return spec_.delay_dma_ns;
  }
  return 0;
}

Time FaultInjector::compute_jitter() {
  if (spec_.compute_delay <= 0.0) return 0;
  const std::uint64_t idx = compute_seen_++;
  if (idx >= spec_.compute_delay_skip &&
      counters_.compute_delayed < spec_.compute_delay_max &&
      rng_.chance(spec_.compute_delay)) {
    ++counters_.compute_delayed;
    return spec_.compute_delay_ns;
  }
  return 0;
}

FaultInjector::CmdFate FaultInjector::cmd_fate(CmdOpClass cls) {
  if (!spec_.cmd_filter_any && cls != spec_.cmd_filter) return CmdFate::Ok;
  // A crash is the most severe CMD fate and is checked first; the delegate
  // itself keeps swallowing requests while down, so one Crash verdict
  // covers the whole outage.
  if (spec_.delegate_crash > 0.0) {
    const std::uint64_t idx = delegate_crash_seen_++;
    if (idx >= spec_.delegate_crash_skip &&
        counters_.delegate_crashes < spec_.delegate_crash_max &&
        rng_.chance(spec_.delegate_crash)) {
      ++counters_.delegate_crashes;
      return CmdFate::Crash;
    }
  }
  if (spec_.cmd_drop > 0.0) {
    const std::uint64_t idx = cmd_drop_seen_++;
    if (idx >= spec_.cmd_drop_skip &&
        counters_.cmd_dropped < spec_.cmd_drop_max &&
        rng_.chance(spec_.cmd_drop)) {
      ++counters_.cmd_dropped;
      return CmdFate::Drop;
    }
  }
  if (spec_.cmd_fail > 0.0) {
    const std::uint64_t idx = cmd_fail_seen_++;
    if (idx >= spec_.cmd_fail_skip &&
        counters_.cmd_failed < spec_.cmd_fail_max &&
        rng_.chance(spec_.cmd_fail)) {
      ++counters_.cmd_failed;
      return CmdFate::Fail;
    }
  }
  return CmdFate::Ok;
}

}  // namespace dcfa::sim
