#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/time.hpp"

namespace dcfa::sim {

class Engine;
class Condition;

/// Internal exception used to unwind a parked process thread when its engine
/// is destroyed before the process body finished. Never escapes the library.
struct AbandonedProcess {};

/// A cooperative simulated process backed by an OS thread.
///
/// The engine resumes a process by handing it the "run token"; the process
/// gives it back whenever it blocks in wait() / wait_on(). Only one process
/// (or the engine itself) ever holds the token, which makes the simulation
/// single-threaded in effect and fully deterministic.
class Process {
 public:
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  Engine& engine() { return engine_; }
  Time now() const;

  /// Advance virtual time by `d` (models computation or fixed overheads).
  void wait(Time d);

  /// Block until `cond` is notified. Callers typically loop:
  ///   while (!predicate()) wait_on(cond);
  void wait_on(Condition& cond);

  /// True once the body has returned.
  bool finished() const { return state_ == State::Done; }

  /// Exception that escaped the body, if any (rethrown by Engine::run()).
  std::exception_ptr error() const { return error_; }

 private:
  friend class Engine;
  friend class Condition;

  enum class State { Created, Runnable, Running, Blocked, Done };

  Process(Engine& engine, std::string name,
          std::function<void(Process&)> body);

  void start();
  /// Engine-side: hand the token to this process and wait for it back.
  void resume();
  /// Process-side: give the token back to the engine.
  void park();

  Engine& engine_;
  std::string name_;
  std::function<void(Process&)> body_;
  std::thread thread_;

  std::mutex mu_;
  std::condition_variable cv_;
  State state_ = State::Created;
  bool token_with_process_ = false;
  std::exception_ptr error_;
};

/// A waitable condition in virtual time. notify_all() schedules a wake-up of
/// every current waiter at the current virtual time; waiters re-check their
/// predicates on resume (spurious wake-ups are allowed and expected).
class Condition {
 public:
  explicit Condition(Engine& engine, std::string name = {});

  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  /// Wake every process currently blocked in wait_on(*this).
  void notify_all();

  const std::string& name() const { return name_; }

 private:
  friend class Process;

  Engine& engine_;
  std::string name_;
  std::vector<Process*> waiters_;
};

}  // namespace dcfa::sim
