#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/time.hpp"

namespace dcfa::sim {

class Engine;
class Condition;

/// Internal exception used to unwind a parked process when its engine is
/// destroyed before the process body finished. Never escapes the library.
struct AbandonedProcess {};

/// A cooperative simulated process.
///
/// The engine resumes a process by handing it the "run token"; the process
/// gives it back whenever it blocks in wait() / wait_on(). Only one process
/// (or the engine itself) ever holds the token, which makes the simulation
/// single-threaded in effect and fully deterministic.
///
/// Two interchangeable backends carry the resumable context (SchedConfig):
/// a stackful fiber (default — thousands of ranks cost lazily-paged stack
/// mappings, not OS threads), or one OS thread per process with a
/// mutex/cv token handshake (ThreadSanitizer runs, DCFA_SIM_SCHED=thread).
/// The backend is invisible above this API: event order, traces and Stats
/// are byte-identical across backends and fiber-pool sizes.
///
/// Schedule exploration (DCFA_SIM_SCHED=explore) needs no cooperation from
/// this layer, and that is a load-bearing property: *every* way a process
/// can block or become runnable — wait() timers, wait_on() wakeups,
/// spawn-time first resumes — funnels through Engine::schedule_at, so
/// permuting same-time event priorities in the engine's queue explores
/// every interleaving decision there is. Nothing in Process or Condition
/// may ever resume a context directly without going through an engine
/// event, or that decision would escape the explored (and replayed)
/// schedule.
class Process {
 public:
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  Engine& engine() { return engine_; }
  Time now() const;

  /// Advance virtual time by `d` (models computation or fixed overheads).
  void wait(Time d);

  /// Block until `cond` is notified. Callers typically loop:
  ///   while (!predicate()) wait_on(cond);
  void wait_on(Condition& cond);

  /// True once the body has returned.
  bool finished() const { return state_ == State::Done; }

  /// The process whose body the calling thread is currently executing, or
  /// nullptr outside any process body. Replaces "one OS thread per rank"
  /// assumptions: with the fiber backend many ranks share a thread, so
  /// per-rank ambient state must key off the process, not the thread.
  static Process* current();

  /// One ambient pointer slot per process, for layers that need "process
  /// globals" (the C API keeps its per-rank environment here). The process
  /// does not own what it points to.
  void set_ambient(void* p) { ambient_ = p; }
  void* ambient() const { return ambient_; }

  /// Exception that escaped the body, if any (rethrown by Engine::run()).
  std::exception_ptr error() const { return error_; }

 private:
  friend class Engine;
  friend class Condition;

  enum class State { Created, Runnable, Running, Blocked, Done };

  Process(Engine& engine, std::string name, std::function<void(Process&)> body,
          std::size_t id);

  void start();
  /// Engine-side: hand the token to this process and wait for it back.
  void resume();
  /// Process-side: give the token back to the engine.
  void park();
  /// Body wrapper shared by both backends (error capture, Done transition).
  void run_body();
  /// Engine-side, once per process after the Done transition: release the
  /// execution context (fiber stack mapping / joined OS thread) and the
  /// body closure eagerly, so a finished rank stops costing memory long
  /// before teardown. The Process shell (name, error) survives for
  /// diagnostics.
  void finish_cleanup();

  bool fiber_backend() const { return fiber_ != nullptr; }

  /// Maintained on whichever OS thread executes the body: the thread
  /// backend sets it once at thread start; the fiber backend saves/restores
  /// it around every resume (Engine::run_resume).
  static thread_local Process* tl_current_;

  Engine& engine_;
  std::string name_;
  std::function<void(Process&)> body_;
  const std::size_t id_;  ///< spawn index; pins the fiber to one pool worker
  State state_ = State::Created;
  bool abandoned_ = false;  ///< teardown unwind flag (fiber backend)
  void* ambient_ = nullptr;
  std::exception_ptr error_;

  // Fiber backend. No locking: the engine thread and the (pinned) pool
  // worker hand control back and forth through FiberPool::run_on, whose
  // mutex orders every access.
  std::unique_ptr<Fiber> fiber_;

  // Thread backend.
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool token_with_process_ = false;
};

/// A waitable condition in virtual time. notify_all() schedules a wake-up of
/// every current waiter at the current virtual time; waiters re-check their
/// predicates on resume (spurious wake-ups are allowed and expected).
class Condition {
 public:
  explicit Condition(Engine& engine, std::string name = {});

  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  /// Wake every process currently blocked in wait_on(*this).
  void notify_all();

  const std::string& name() const { return name_; }

 private:
  friend class Process;

  Engine& engine_;
  std::string name_;
  std::vector<Process*> waiters_;
};

}  // namespace dcfa::sim
