#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dcfa::sim {

/// Seeded, deterministic fault-injection oracle. Components consult it at
/// their hazard points (the HCA before completing a work request, the DCFA
/// host delegate before executing a CMD, the eager ring when computing free
/// slots); it rolls one shared RNG and answers "what goes wrong here, if
/// anything". Because the simulation executes events in a deterministic
/// order, the same spec + seed reproduces the exact same fault pattern —
/// which is what makes fault runs replayable and the recovery tests exact.
///
/// The spec is a comma/semicolon-separated `key=value` string, e.g.
///   "drop_wc=0.1"                    drop 10% of faultable completions
///   "err_wc=1,err_wc_max=1"          error exactly the first faultable WR
///   "err_wc=1,err_wc_skip=2,err_wc_max=1"   ... the third one instead
///   "cmd_fail=1,cmd_op=offload"      fail every offload-MR CMD verb
///   "cmd_drop=1,cmd_drop_max=1"      swallow one CMD request (timeout path)
///   "delay_dma=0.2,delay_dma_ns=2000"  late DMA start on 20% of transfers
///   "credit_slots=2"                 squeeze the eager ring to 2 credits
/// Full grammar in docs/faults.md.
class FaultInjector {
 public:
  /// What happens to one faultable work request at the HCA.
  enum class WcFate {
    Deliver,  ///< normal: data moves, CQE delivered
    Drop,     ///< data moves, but the completion is lost (silent CQE loss)
    Error,    ///< nothing moves; an error CQE is delivered after the wire RTT
    Fatal,    ///< like Error, but the QP wedges in QpState::Error for good
  };

  /// What happens to one CMD-channel request at the host delegate.
  enum class CmdFate {
    Ok,     ///< executed normally
    Fail,   ///< not executed; a CmdStatus::Failed reply is sent
    Drop,   ///< not executed; no reply ever sent (client must time out)
    Crash,  ///< the whole delegate dies: this and every later request is
            ///< swallowed until (optionally) it restarts
  };

  /// Coarse classification of CMD ops for the `cmd_op=` filter. The caller
  /// (dcfa layer) maps its op codes onto these so sim/ stays dependency-free.
  enum class CmdOpClass { Other, RegMr, Offload, Create };

  struct Spec {
    // Per-hazard injection probabilities in [0, 1]. 0 = hazard disabled.
    double drop_wc = 0.0;    ///< P(lose a faultable completion)
    double err_wc = 0.0;     ///< P(error a faultable work request)
    double delay_dma = 0.0;  ///< P(delay a DMA/wire transfer start)
    double cmd_fail = 0.0;   ///< P(CMD verb replies Failed)
    double cmd_drop = 0.0;   ///< P(CMD request swallowed, no reply)
    /// P(one compute step straggles): OS noise / page-fault style jitter.
    /// Consulted by workloads that model per-rank compute (the traffic
    /// generator's soak scenarios), not by the protocol layers.
    double compute_delay = 0.0;

    // Fatal faults: these kill a resource instead of one operation. The
    // recovery subsystem (engine reconnect / proxy failover) is what makes
    // them survivable; arming either one also arms the peer-liveness
    // heartbeat in mpi::Engine.
    double qp_fatal = 0.0;        ///< P(faultable WR wedges its QP in Error)
    double delegate_crash = 0.0;  ///< P(a CMD request kills the delegate)

    /// If > 0, a crashed delegate restarts this many ns after the crash;
    /// 0 means it stays dead (forcing the proxy failover path).
    Time delegate_restart_ns = 0;

    /// Permanent process death: `rank_kill=2+5` kills world ranks 2 and 5
    /// outright (the whole rank, not just its delegate — nothing restarts).
    /// `rank_kill_at_ns=80000+120000` gives each victim its own virtual
    /// death time (a single value applies to all victims; default 0 = die
    /// at setup). Unlike every probabilistic key above this is exact by
    /// construction: the survivors' detection/recovery path is what the
    /// seeded tests pin down.
    std::vector<int> rank_kill;
    std::vector<Time> rank_kill_at_ns;

    /// Added latency for each delayed DMA start.
    Time delay_dma_ns = nanoseconds(2000);

    /// Added latency for each straggling compute step.
    Time compute_delay_ns = microseconds(50);

    /// Cap on usable eager-ring credits per peer (0 = no squeeze). Values
    /// below the ring depth force credit exhaustion under bursts.
    int credit_slots = 0;

    /// Deterministic targeting: skip the first `_skip` candidates of a kind,
    /// stop injecting after `_max` injections of that kind. With the
    /// probability at 1 these select exact victims ("err the 3rd faultable
    /// WR") without any RNG sensitivity.
    std::uint64_t drop_wc_max = UINT64_MAX;
    std::uint64_t drop_wc_skip = 0;
    std::uint64_t err_wc_max = UINT64_MAX;
    std::uint64_t err_wc_skip = 0;
    std::uint64_t delay_dma_max = UINT64_MAX;
    std::uint64_t delay_dma_skip = 0;
    std::uint64_t compute_delay_max = UINT64_MAX;
    std::uint64_t compute_delay_skip = 0;
    std::uint64_t cmd_fail_max = UINT64_MAX;
    std::uint64_t cmd_fail_skip = 0;
    std::uint64_t cmd_drop_max = UINT64_MAX;
    std::uint64_t cmd_drop_skip = 0;
    std::uint64_t qp_fatal_max = UINT64_MAX;
    std::uint64_t qp_fatal_skip = 0;
    std::uint64_t delegate_crash_max = UINT64_MAX;
    std::uint64_t delegate_crash_skip = 0;

    /// Restrict CMD faults to one op class: any | reg_mr | offload | create.
    CmdOpClass cmd_filter = CmdOpClass::Other;
    bool cmd_filter_any = true;

    /// True when any hazard can actually fire.
    bool armed() const {
      return drop_wc > 0.0 || err_wc > 0.0 || delay_dma > 0.0 ||
             cmd_fail > 0.0 || cmd_drop > 0.0 || compute_delay > 0.0 ||
             credit_slots > 0 || fatal_armed();
    }

    /// True when a *fatal* hazard (QP wedge / delegate crash / rank kill)
    /// can fire. The engine arms its peer-liveness heartbeat only in this
    /// case, so transient-fault specs keep their exact PR 1 event schedule.
    bool fatal_armed() const {
      return qp_fatal > 0.0 || delegate_crash > 0.0 || !rank_kill.empty();
    }

    /// Scheduled death time of `rank`, or -1 when it is not a victim.
    Time kill_time_of(int rank) const {
      for (std::size_t i = 0; i < rank_kill.size(); ++i) {
        if (rank_kill[i] != rank) continue;
        if (rank_kill_at_ns.empty()) return 0;
        return i < rank_kill_at_ns.size() ? rank_kill_at_ns[i]
                                          : rank_kill_at_ns.back();
      }
      return -1;
    }

    /// Parse the spec grammar; throws std::invalid_argument on unknown keys
    /// or malformed values. Empty string = all hazards off.
    static Spec parse(const std::string& text);
  };

  struct Counters {
    std::uint64_t wc_dropped = 0;
    std::uint64_t wc_errored = 0;
    std::uint64_t dma_delayed = 0;
    std::uint64_t compute_delayed = 0;
    std::uint64_t cmd_failed = 0;
    std::uint64_t cmd_dropped = 0;
    std::uint64_t qp_fatal = 0;
    std::uint64_t delegate_crashes = 0;
    std::uint64_t rank_kills = 0;
  };

  FaultInjector(const Spec& spec, std::uint64_t seed)
      : spec_(spec), rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  bool armed() const { return spec_.armed(); }
  const Spec& spec() const { return spec_; }
  const Counters& counters() const { return counters_; }

  /// Decide the fate of one faultable work request (called once per such WR,
  /// in posting order). Error wins over Drop when both roll true.
  WcFate wc_fate();

  /// Extra latency to add before this DMA transfer starts (0 most times).
  Time dma_delay();

  /// Extra latency to add to this compute step (0 most times). Workload
  /// harnesses consult it once per modelled compute quantum so OS-noise
  /// stragglers ride the same seeded oracle as the protocol hazards.
  Time compute_jitter();

  /// Decide the fate of one CMD request of the given class.
  CmdFate cmd_fate(CmdOpClass cls);

  /// Record that a scheduled rank kill fired (bookkeeping only; the kill
  /// itself is exact, driven by Spec::rank_kill / kill_time_of).
  void note_rank_kill() { ++counters_.rank_kills; }

  /// Eager-ring credit squeeze: usable credits per peer, given the ring's
  /// natural depth. Returns `ring_slots` untouched when no squeeze is set.
  int credit_cap(int ring_slots) const {
    if (spec_.credit_slots <= 0) return ring_slots;
    return spec_.credit_slots < ring_slots ? spec_.credit_slots : ring_slots;
  }

 private:
  Spec spec_;
  Rng rng_;
  Counters counters_;
  // Per-kind candidate counts, for the _skip windows.
  std::uint64_t err_seen_ = 0;
  std::uint64_t drop_seen_ = 0;
  std::uint64_t delay_seen_ = 0;
  std::uint64_t compute_seen_ = 0;
  std::uint64_t cmd_fail_seen_ = 0;
  std::uint64_t cmd_drop_seen_ = 0;
  std::uint64_t qp_fatal_seen_ = 0;
  std::uint64_t delegate_crash_seen_ = 0;
};

}  // namespace dcfa::sim
