#pragma once

// Stackful-fiber backend for sim::Process (docs/simulator.md).
//
// A Fiber is a resumable execution context over ucontext with its own
// mmap'd stack: a guard page at the low end, the rest lazily paged, so
// thousands of simulated ranks cost virtual address space instead of OS
// threads. The FiberPool multiplexes fibers over a small set of worker
// threads: every fiber is pinned to one worker (slot % workers) and the
// resuming thread blocks until the fiber parks again, so the pool size
// changes *where* a fiber runs but never *when* — the engine's event order,
// and therefore every trace and Stats bag, is identical for any pool size
// (tests/test_scale.cpp proves it).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <ucontext.h>
#include <vector>

namespace dcfa::sim {

/// Scheduler configuration for one sim::Engine, resolved from the
/// environment once at engine construction:
///   DCFA_SIM_SCHED     fiber | thread | explore. Default fiber — except
///                      under ThreadSanitizer, whose runtime does not model
///                      ucontext switches and always gets thread. `explore`
///                      keeps the default context backend and switches the
///                      event *ordering* to randomized priorities (below).
///   DCFA_SIM_THREADS   worker threads multiplexing the fibers; 0 (the
///                      default) runs fibers inline on the engine thread.
///   DCFA_SIM_STACK_KB  virtual stack size per fiber (default 512). Only
///                      touched pages cost RSS.
///   DCFA_SIM_SEED      explore-mode seed (decimal, default 0).
///   DCFA_SIM_SCHEDULE  a replay token ("x1:<hex seed>") as printed in a
///                      violation report: forces explore mode with exactly
///                      that seed, deterministically reproducing the run
///                      that emitted it. Overrides DCFA_SIM_SEED.
///
/// Ordering policies (docs/simulator.md):
///   Fifo    — events at equal virtual time run in schedule order (the
///             historical deterministic default).
///   Explore — events at equal virtual time run in an order drawn from
///             splitmix64(seed, event-seq): a PCT-style randomized-priority
///             schedule over the logically-concurrent event set. Virtual
///             time is never reordered, so timing metrics are undistorted;
///             each seed is one reproducible interleaving.
struct SchedConfig {
  enum class Backend { Fiber, Thread };
  enum class Order { Fifo, Explore };
  Backend backend = Backend::Fiber;
  Order order = Order::Fifo;
  std::uint64_t seed = 0;
  unsigned threads = 0;
  std::size_t stack_bytes = 512 * 1024;

  bool explore() const { return order == Order::Explore; }

  /// The compact replay token naming this schedule ("x1:<hex seed>"; the
  /// "x1" tags the priority algorithm so a token can never silently replay
  /// under a different scheme). Empty under Fifo ordering.
  std::string schedule_token() const;
  /// Parse a replay token back into an explore config (backend/threads/
  /// stack keep their defaults). Throws std::invalid_argument on junk.
  static SchedConfig from_token(const std::string& token);

  static SchedConfig from_env();
};

/// One resumable context. resume() and yield() must pair on the same OS
/// thread for any given fiber (the FiberPool's pinning guarantees it);
/// sanitizer stack bookkeeping and ucontext both require this.
class Fiber {
 public:
  Fiber(std::function<void()> body, std::size_t stack_bytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch the calling thread into the fiber; returns when the fiber
  /// yields or its body returns.
  void resume();
  /// Called from inside the body: switch back to the resumer.
  void yield();
  /// True once the body has returned. A done fiber must not be resumed.
  bool done() const { return done_; }
  bool started() const { return started_; }

 private:
  static void trampoline();
  void enter();

  std::function<void()> body_;
  void* map_ = nullptr;  ///< mmap base (guard page first)
  std::size_t map_bytes_ = 0;
  void* stack_base_ = nullptr;  ///< usable stack (above the guard page)
  std::size_t stack_size_ = 0;
  bool started_ = false;
  bool done_ = false;
  ucontext_t self_{};
  ucontext_t return_ctx_{};
  // ASan fiber-switch bookkeeping (__sanitizer_*_switch_fiber protocol):
  // the resumer's fake-stack handle, the fiber's own handle across yields,
  // and the stack we most recently arrived from (switched back to on yield).
  void* resumer_fake_stack_ = nullptr;
  void* own_fake_stack_ = nullptr;
  const void* from_stack_bottom_ = nullptr;
  std::size_t from_stack_size_ = 0;
};

/// Pinned worker threads for fiber execution. run_on() blocks the caller
/// until `fn` (which resumes a fiber and returns when it parks) completes,
/// so exactly one simulated context ever runs at a time regardless of the
/// pool size — concurrency here buys stack/TLS isolation, not parallelism.
class FiberPool {
 public:
  explicit FiberPool(unsigned threads);
  ~FiberPool();

  FiberPool(const FiberPool&) = delete;
  FiberPool& operator=(const FiberPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }
  /// Run `fn` to completion on worker (slot % size()); with zero workers
  /// it runs inline on the calling thread.
  void run_on(std::size_t slot, const std::function<void()>& fn);

 private:
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    const std::function<void()>* job = nullptr;
    bool job_done = false;
    bool stop = false;
    std::thread thread;
  };
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace dcfa::sim
