// dcfa-lint: allow-file(raw-post) -- baseline latency app measured below the MPI layer
#include "apps/pingpong.hpp"

#include <cstring>

namespace dcfa::apps {

using mpi::RankCtx;

PingPongResult pingpong_blocking(mpi::RunConfig config, std::size_t bytes,
                                 int iters, int warmup) {
  config.nprocs = 2;
  PingPongResult result;
  mpi::run_mpi(std::move(config), [&, bytes, iters, warmup](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer buf = comm.alloc(std::max<std::size_t>(bytes, 1));
    const int peer = 1 - ctx.rank;
    sim::Time start = 0;
    for (int i = 0; i < warmup + iters; ++i) {
      if (i == warmup && ctx.rank == 0) start = ctx.proc.now();
      if (ctx.rank == 0) {
        comm.send_bytes(buf, 0, bytes, peer, 1);
        comm.recv_bytes(buf, 0, bytes, peer, 1);
      } else {
        comm.recv_bytes(buf, 0, bytes, peer, 1);
        comm.send_bytes(buf, 0, bytes, peer, 1);
      }
    }
    if (ctx.rank == 0) {
      result.round_trip = (ctx.proc.now() - start) / iters;
      result.bandwidth_gbps =
          result.round_trip > 0
              ? static_cast<double>(2 * bytes) / result.round_trip
              : 0.0;
    }
    comm.free(buf);
  });
  return result;
}

PingPongResult pingpong_nonblocking(mpi::RunConfig config, std::size_t bytes,
                                    int iters, int warmup) {
  config.nprocs = 2;
  PingPongResult result;
  mpi::run_mpi(std::move(config), [&, bytes, iters, warmup](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer sbuf = comm.alloc(std::max<std::size_t>(bytes, 1));
    mem::Buffer rbuf = comm.alloc(std::max<std::size_t>(bytes, 1));
    const int peer = 1 - ctx.rank;
    comm.barrier();
    sim::Time start = 0;
    for (int i = 0; i < warmup + iters; ++i) {
      if (i == warmup && ctx.rank == 0) start = ctx.proc.now();
      mpi::Request reqs[2];
      reqs[0] = comm.irecv(rbuf, 0, bytes, mpi::type_byte(), peer, 1);
      reqs[1] = comm.isend(sbuf, 0, bytes, mpi::type_byte(), peer, 1);
      comm.waitall(reqs);
    }
    comm.barrier();
    if (ctx.rank == 0) {
      result.round_trip = (ctx.proc.now() - start) / iters;
      // Per-direction bandwidth: each exchange moves `bytes` each way
      // concurrently, so the achieved rate per direction is bytes / time.
      result.bandwidth_gbps =
          result.round_trip > 0
              ? static_cast<double>(bytes) / result.round_trip
              : 0.0;
    }
    comm.free(sbuf);
    comm.free(rbuf);
  });
  return result;
}

PingPongResult raw_rdma_pingpong(const RawRdmaConfig& config,
                                 std::size_t bytes, int iters, int warmup) {
  // Two nodes, no MPI: node 0 writes `bytes` into node 1's buffer, node 1
  // echoes. The writer of each direction owns a buffer in `src_domain`, the
  // target buffer is in `dst_domain` — the four combinations of Figure 5.
  sim::Engine engine;
  ib::Fabric fabric(engine, config.platform);
  mem::NodeMemory mem0(0), mem1(1);
  pcie::PciePort pcie0(engine, mem0, config.platform);
  pcie::PciePort pcie1(engine, mem1, config.platform);
  ib::Hca& hca0 = fabric.add_hca(mem0, pcie0);
  ib::Hca& hca1 = fabric.add_hca(mem1, pcie1);

  // Payload area plus an 8-byte iteration marker the poller watches.
  const std::size_t area = bytes + 8;
  PingPongResult result;

  struct Side {
    mem::Buffer src, dst;
    ib::ProtectionDomain* pd;
    ib::MemoryRegion *src_mr, *dst_mr;
    ib::CompletionQueue* cq;
    ib::QueuePair* qp;
  };
  Side sides[2];
  mem::NodeMemory* mems[2] = {&mem0, &mem1};
  ib::Hca* hcas[2] = {&hca0, &hca1};
  for (int s = 0; s < 2; ++s) {
    Side& sd = sides[s];
    sd.src = mems[s]->alloc(config.src_domain, area, 4096);
    sd.dst = mems[s]->alloc(config.dst_domain, area, 4096);
    sd.pd = hcas[s]->alloc_pd();
    sd.src_mr = hcas[s]->reg_mr(sd.pd, sd.src.domain(), sd.src.addr(), area,
                                ib::kLocalWrite);
    sd.dst_mr = hcas[s]->reg_mr(sd.pd, sd.dst.domain(), sd.dst.addr(), area,
                                ib::kLocalWrite | ib::kRemoteWrite);
    sd.cq = hcas[s]->create_cq(64);
    sd.qp = hcas[s]->create_qp(sd.pd, sd.cq, sd.cq);
  }
  hca0.connect(sides[0].qp, hca1.lid(), sides[1].qp->qpn());
  hca1.connect(sides[1].qp, hca0.lid(), sides[0].qp->qpn());

  sim::Condition landed0(engine, "pp.landed0"), landed1(engine, "pp.landed1");
  hca0.add_remote_write_observer([&] { landed0.notify_all(); });
  hca1.add_remote_write_observer([&] { landed1.notify_all(); });

  auto marker = [area](Side& sd) {
    std::uint64_t v = 0;
    std::memcpy(&v, sd.dst.data() + area - 8, 8);
    return v;
  };
  auto post_write = [&](int s, std::uint64_t iter) {
    Side& sd = sides[s];
    std::memcpy(sd.src.data() + area - 8, &iter, 8);
    ib::SendWr wr;
    wr.opcode = ib::Opcode::RdmaWrite;
    wr.signaled = false;
    wr.sg_list = {{sd.src.addr(), static_cast<std::uint32_t>(area),
                   sd.src_mr->lkey()}};
    wr.remote_addr = sides[1 - s].dst.addr();
    wr.rkey = sides[1 - s].dst_mr->rkey();
    hcas[s]->post_send(sd.qp, std::move(wr));
  };

  sim::Time start = 0;
  engine.spawn("writer", [&](sim::Process& proc) {
    const sim::Time post_cost = config.src_domain == mem::Domain::PhiGddr
                                    ? config.platform.phi_post_overhead
                                    : config.platform.host_post_overhead;
    for (int i = 1; i <= warmup + iters; ++i) {
      if (i == warmup + 1) start = proc.now();
      proc.wait(post_cost);
      post_write(0, static_cast<std::uint64_t>(i));
      while (marker(sides[0]) < static_cast<std::uint64_t>(i)) {
        proc.wait_on(landed0);
      }
    }
    result.round_trip = (proc.now() - start) / iters;
    result.bandwidth_gbps =
        result.round_trip > 0
            ? static_cast<double>(2 * bytes) / result.round_trip
            : 0.0;
  });
  engine.spawn("echoer", [&](sim::Process& proc) {
    const sim::Time post_cost = config.src_domain == mem::Domain::PhiGddr
                                    ? config.platform.phi_post_overhead
                                    : config.platform.host_post_overhead;
    for (int i = 1; i <= warmup + iters; ++i) {
      while (marker(sides[1]) < static_cast<std::uint64_t>(i)) {
        proc.wait_on(landed1);
      }
      proc.wait(post_cost);
      post_write(1, static_cast<std::uint64_t>(i));
    }
  });
  engine.run();
  return result;
}

}  // namespace dcfa::apps
