#include "apps/commonly.hpp"

#include <cstring>

namespace dcfa::apps {

using mpi::RankCtx;

namespace {
std::size_t page_round_up(std::size_t v) {
  const std::size_t page = mem::AddressSpace::kPage;
  return (v + page - 1) / page * page;
}
}  // namespace

CommOnlyResult comm_only_direct(mpi::RunConfig config, std::size_t bytes,
                                int iters, int warmup) {
  config.nprocs = 2;
  CommOnlyResult result;
  mpi::run_mpi(std::move(config), [&, bytes, iters, warmup](RankCtx& ctx) {
    auto& comm = ctx.world;
    const std::size_t cap = std::max<std::size_t>(bytes, 1);
    mem::Buffer sbuf = comm.alloc(cap, 4096);
    mem::Buffer rbuf = comm.alloc(cap, 4096);
    const int peer = 1 - ctx.rank;
    comm.barrier();
    sim::Time start = 0;
    for (int i = 0; i < warmup + iters; ++i) {
      if (i == warmup) {
        comm.barrier();
        if (ctx.rank == 0) start = ctx.proc.now();
      }
      // The computing data stays in co-processor memory; refresh one byte to
      // model "only transfer necessary data" producing new content.
      sbuf.data()[0] = static_cast<std::byte>(i);
      mpi::Request reqs[2];
      reqs[0] = comm.irecv(rbuf, 0, bytes, mpi::type_byte(), peer, 3);
      reqs[1] = comm.isend(sbuf, 0, bytes, mpi::type_byte(), peer, 3);
      comm.waitall(reqs);
    }
    comm.barrier();
    if (ctx.rank == 0) {
      result.per_iteration = (ctx.proc.now() - start) / iters;
    }
    comm.free(sbuf);
    comm.free(rbuf);
  });
  // Per-iteration accounting.
  result.mpi_bytes_sent = bytes;
  result.mpi_bytes_received = bytes;
  return result;
}

CommOnlyResult comm_only_offload(mpi::RunConfig config, std::size_t bytes,
                                 int iters, int warmup, bool double_buffer) {
  config.mode = mpi::MpiMode::HostMpi;
  config.nprocs = 2;
  CommOnlyResult result;
  mpi::run_mpi(std::move(config), [&, bytes, iters, warmup,
                                   double_buffer](RankCtx& ctx) {
    auto& comm = ctx.world;
    offload::Engine& off = *ctx.offload;
    // Persistent, page-aligned buffers sized to a 4 KiB multiple — the
    // paper's optimisation list. Offload initialisation (buffer allocation)
    // stays out of the timed loop.
    const std::size_t cap = page_round_up(std::max<std::size_t>(bytes, 1));
    mem::Buffer host_send = comm.alloc(cap, 4096);   // staged out of the card
    mem::Buffer host_recv = comm.alloc(cap, 4096);   // staged onto the card
    mem::Buffer card_send = off.alloc_card_buffer(cap);
    mem::Buffer card_recv = off.alloc_card_buffer(cap);
    const int peer = 1 - ctx.rank;
    comm.barrier();
    sim::Time start = 0;
    for (int i = 0; i < warmup + iters; ++i) {
      if (i == warmup) {
        comm.barrier();
        if (ctx.rank == 0) start = ctx.proc.now();
      }
      card_send.data()[0] = static_cast<std::byte>(i);  // fresh card data
      if (double_buffer) {
        // Copy-out overlaps the posting of the receive; copy-in overlaps
        // the tail of the exchange ("overlap offloading data transfer and
        // MPI communication using the double buffer method").
        auto out_sig = off.transfer_out_async(card_send, 0, host_send, 0, cap);
        mpi::Request rr =
            comm.irecv(host_recv, 0, bytes, mpi::type_byte(), peer, 9);
        off.wait(*out_sig);
        mpi::Request sr =
            comm.isend(host_send, 0, bytes, mpi::type_byte(), peer, 9);
        comm.wait(rr);
        auto in_sig = off.transfer_in_async(host_recv, 0, card_recv, 0, cap);
        comm.wait(sr);
        off.wait(*in_sig);
      } else {
        off.transfer_out(card_send, 0, host_send, 0, cap);
        mpi::Request reqs[2];
        reqs[0] = comm.irecv(host_recv, 0, bytes, mpi::type_byte(), peer, 9);
        reqs[1] = comm.isend(host_send, 0, bytes, mpi::type_byte(), peer, 9);
        comm.waitall(reqs);
        off.transfer_in(host_recv, 0, card_recv, 0, cap);
      }
    }
    comm.barrier();
    if (ctx.rank == 0) {
      result.per_iteration = (ctx.proc.now() - start) / iters;
    }
    comm.free(host_send);
    comm.free(host_recv);
    off.free_card_buffer(card_send);
    off.free_card_buffer(card_recv);
  });
  result.offload_bytes_in = bytes;
  result.offload_bytes_out = bytes;
  result.mpi_bytes_sent = bytes;
  result.mpi_bytes_received = bytes;
  return result;
}

}  // namespace dcfa::apps
