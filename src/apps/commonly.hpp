#pragma once

#include "mpi/runtime.hpp"

namespace dcfa::apps {

/// The communication-only application of the paper's second experiment
/// (Figure 10, Table II): two ranks repeatedly exchange X bytes of fresh
/// data. Under DCFA-MPI the data lives on the co-processor and only the MPI
/// exchange happens; under 'Intel MPI on Xeon + offload' every iteration
/// must copy the payload onto the card and back (Table II: Copy In X +
/// Copy Out X) around the host-side MPI exchange (Send X + Receive X).
struct CommOnlyResult {
  sim::Time per_iteration = 0;
  /// Table II accounting, measured not asserted.
  std::uint64_t offload_bytes_in = 0;
  std::uint64_t offload_bytes_out = 0;
  std::uint64_t mpi_bytes_sent = 0;
  std::uint64_t mpi_bytes_received = 0;
};

/// Ranks on the co-processor (DCFA-MPI / 'Intel MPI on Xeon Phi' modes):
/// non-blocking exchange of `bytes` per iteration, nothing else.
CommOnlyResult comm_only_direct(mpi::RunConfig config, std::size_t bytes,
                                int iters = 50, int warmup = 5);

/// 'Intel MPI on Xeon + offload' mode, with all four of the paper's
/// optimisations: offload init out of the loop, persistent card buffers,
/// 4 KiB-aligned transfers, and double buffering that overlaps the
/// offload_transfer with the host MPI exchange.
CommOnlyResult comm_only_offload(mpi::RunConfig config, std::size_t bytes,
                                 int iters = 50, int warmup = 5,
                                 bool double_buffer = true);

}  // namespace dcfa::apps
