#include "apps/stencil.hpp"

#include <cstring>
#include <vector>

#include "compute/compute.hpp"

namespace dcfa::apps {

using mpi::RankCtx;

const char* stencil_system_name(StencilSystem sys) {
  switch (sys) {
    case StencilSystem::DcfaPhi: return "DCFA-MPI";
    case StencilSystem::IntelPhi: return "Intel MPI on Xeon Phi";
    case StencilSystem::HostOffload: return "Intel MPI on Xeon + offload";
  }
  return "?";
}

namespace {

constexpr int kTagUp = 11;    ///< halo travelling towards lower ranks
constexpr int kTagDown = 12;  ///< halo travelling towards higher ranks

double initial_value(int gi, int gj) {
  return static_cast<double>((gi * 31 + gj * 17) % 97) / 97.0;
}

struct Partition {
  int first_row;  ///< first owned interior row (global index)
  int rows;       ///< owned interior rows
};

Partition partition(int n, int nprocs, int rank) {
  const int interior = n - 2;
  const int base = interior / nprocs;
  const int extra = interior % nprocs;
  Partition p;
  p.rows = base + (rank < extra ? 1 : 0);
  p.first_row = 1 + rank * base + std::min(rank, extra);
  return p;
}

/// Initialise a local block of `rows`+2 ghost rows by `n` columns.
void init_block(double* a, int n, const Partition& p) {
  for (int li = 0; li < p.rows + 2; ++li) {
    const int gi = p.first_row - 1 + li;
    for (int j = 0; j < n; ++j) {
      a[li * n + j] = initial_value(gi, j);
    }
  }
}

/// One Jacobi sweep over the owned rows: b = relax(a). Ghost rows of `a`
/// must be current. Fixed global side columns are copied through.
void sweep(const double* a, double* b, int n, int rows) {
  for (int li = 1; li <= rows; ++li) {
    b[li * n + 0] = a[li * n + 0];
    b[li * n + (n - 1)] = a[li * n + (n - 1)];
    for (int j = 1; j < n - 1; ++j) {
      b[li * n + j] = 0.2 * (a[li * n + j] + a[(li - 1) * n + j] +
                             a[(li + 1) * n + j] + a[li * n + j - 1] +
                             a[li * n + j + 1]);
    }
  }
}

double block_sum(const double* a, int n, int rows) {
  double s = 0;
  for (int li = 1; li <= rows; ++li) {
    for (int j = 0; j < n; ++j) s += a[li * n + j];
  }
  return s;
}

}  // namespace

StencilResult run_stencil(StencilSystem sys, const StencilConfig& config) {
  mpi::RunConfig rc;
  rc.platform = config.platform;
  rc.nprocs = config.nprocs;
  switch (sys) {
    case StencilSystem::DcfaPhi: rc.mode = mpi::MpiMode::DcfaPhi; break;
    case StencilSystem::IntelPhi: rc.mode = mpi::MpiMode::IntelPhi; break;
    case StencilSystem::HostOffload: rc.mode = mpi::MpiMode::HostMpi; break;
  }

  const int n = config.n;
  const std::size_t row_bytes = static_cast<std::size_t>(n) * sizeof(double);
  StencilResult result;
  result.mpi_bytes = config.nprocs > 1 ? row_bytes : 0;
  result.offload_bytes =
      (sys == StencilSystem::HostOffload && config.nprocs > 1) ? 2 * row_bytes
                                                               : 0;

  mpi::run_mpi(rc, [&, n](RankCtx& ctx) {
    auto& comm = ctx.world;
    const Partition p = partition(n, ctx.nprocs, ctx.rank);
    const int rows = p.rows;
    const std::size_t block_bytes =
        static_cast<std::size_t>(rows + 2) * row_bytes;
    const std::uint64_t points =
        static_cast<std::uint64_t>(rows) * (n - 2);
    const int up = ctx.rank > 0 ? ctx.rank - 1 : -1;
    const int down = ctx.rank < ctx.nprocs - 1 ? ctx.rank + 1 : -1;

    // Two card-resident planes (A: current, B: next).
    const bool offload_mode = sys == StencilSystem::HostOffload;
    mem::Buffer plane_a, plane_b;
    offload::Engine* off = ctx.offload;
    if (offload_mode) {
      plane_a = off->alloc_card_buffer(block_bytes);
      plane_b = off->alloc_card_buffer(block_bytes);
    } else {
      plane_a = comm.alloc(block_bytes, 4096);
      plane_b = comm.alloc(block_bytes, 4096);
    }
    auto* a = reinterpret_cast<double*>(plane_a.data());
    auto* b = reinterpret_cast<double*>(plane_b.data());
    init_block(a, n, p);
    init_block(b, n, p);

    // Host staging for halos in offload mode ("only transfer necessary
    // data" — everything else persists on the card).
    mem::Buffer stage_up_out, stage_down_out, stage_up_in, stage_down_in;
    if (offload_mode) {
      stage_up_out = comm.alloc(row_bytes, 4096);
      stage_down_out = comm.alloc(row_bytes, 4096);
      stage_up_in = comm.alloc(row_bytes, 4096);
      stage_down_in = comm.alloc(row_bytes, 4096);
    }

    // Which plane is current on the card (kernel swaps each iteration).
    bool a_is_current = true;
    auto cur = [&]() { return a_is_current ? plane_a : plane_b; };
    auto curp = [&]() { return a_is_current ? a : b; };
    auto nxtp = [&]() { return a_is_current ? b : a; };

    const sim::Time compute_time = compute::parallel_time(
        ctx.platform, compute::Cpu::Phi, points, config.threads);

    comm.barrier();
    const sim::Time start = ctx.proc.now();
    for (int it = 0; it < config.iterations; ++it) {
      // --- Halo exchange --------------------------------------------------
      if (offload_mode) {
        // Copy the boundary rows off the card, exchange on the host, push
        // the fresh ghosts back down (Table II/III offloading data).
        if (up >= 0) off->transfer_out(cur(), row_bytes, stage_up_out, 0,
                                       row_bytes);
        if (down >= 0) off->transfer_out(cur(), rows * row_bytes,
                                         stage_down_out, 0, row_bytes);
        std::vector<mpi::Request> reqs;
        if (up >= 0) {
          reqs.push_back(comm.irecv(stage_up_in, 0, row_bytes,
                                    mpi::type_byte(), up, kTagDown));
          reqs.push_back(comm.isend(stage_up_out, 0, row_bytes,
                                    mpi::type_byte(), up, kTagUp));
        }
        if (down >= 0) {
          reqs.push_back(comm.irecv(stage_down_in, 0, row_bytes,
                                    mpi::type_byte(), down, kTagUp));
          reqs.push_back(comm.isend(stage_down_out, 0, row_bytes,
                                    mpi::type_byte(), down, kTagDown));
        }
        comm.waitall(reqs);
        if (up >= 0) off->transfer_in(stage_up_in, 0, cur(), 0, row_bytes);
        if (down >= 0) off->transfer_in(stage_down_in, 0, cur(),
                                        (rows + 1) * row_bytes, row_bytes);
      } else {
        std::vector<mpi::Request> reqs;
        if (up >= 0) {
          reqs.push_back(comm.irecv(cur(), 0, row_bytes, mpi::type_byte(),
                                    up, kTagDown));
          reqs.push_back(comm.isend(cur(), row_bytes, row_bytes,
                                    mpi::type_byte(), up, kTagUp));
        }
        if (down >= 0) {
          reqs.push_back(comm.irecv(cur(), (rows + 1) * row_bytes, row_bytes,
                                    mpi::type_byte(), down, kTagUp));
          reqs.push_back(comm.isend(cur(), rows * row_bytes, row_bytes,
                                    mpi::type_byte(), down, kTagDown));
        }
        comm.waitall(reqs);
      }

      // --- Compute ----------------------------------------------------------
      if (offload_mode) {
        off->run_region(config.threads, compute_time, [&] {
          if (config.real_compute) sweep(curp(), nxtp(), n, rows);
          a_is_current = !a_is_current;
        });
      } else {
        ctx.proc.wait(compute_time);
        if (config.real_compute) sweep(curp(), nxtp(), n, rows);
        a_is_current = !a_is_current;
      }
    }
    comm.barrier();
    if (ctx.rank == 0) result.total = ctx.proc.now() - start;

    // --- Checksum (untimed) ---------------------------------------------------
    if (config.real_compute) {
      double local = block_sum(curp(), n, rows);
      mem::Buffer in = comm.alloc(sizeof(double));
      mem::Buffer out = comm.alloc(sizeof(double));
      std::memcpy(in.data(), &local, sizeof local);
      comm.allreduce(in, 0, out, 0, 1, mpi::type_double(), mpi::Op::Sum);
      if (ctx.rank == 0) {
        std::memcpy(&result.checksum, out.data(), sizeof(double));
      }
      comm.free(in);
      comm.free(out);
    }

    if (offload_mode) {
      off->free_card_buffer(plane_a);
      off->free_card_buffer(plane_b);
      comm.free(stage_up_out);
      comm.free(stage_down_out);
      comm.free(stage_up_in);
      comm.free(stage_down_in);
    } else {
      comm.free(plane_a);
      comm.free(plane_b);
    }
  });
  return result;
}

StencilResult run_stencil_serial(const StencilConfig& config) {
  StencilConfig serial = config;
  serial.nprocs = 1;
  serial.threads = 1;
  return run_stencil(StencilSystem::DcfaPhi, serial);
}

}  // namespace dcfa::apps
