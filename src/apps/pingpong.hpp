#pragma once

#include "mpi/runtime.hpp"

namespace dcfa::apps {

/// Latency/bandwidth probe between ranks 0 and 1 (the measurement behind
/// Figures 7, 8 and 9).
struct PingPongResult {
  sim::Time round_trip = 0;      ///< average RTT per iteration
  double bandwidth_gbps = 0.0;   ///< bytes * 2 / RTT (paper's convention:
                                 ///< "calculated using the round trip
                                 ///< latency of MPI blocking communication")
};

/// Blocking ping-pong: rank 0 sends `bytes`, rank 1 echoes. `iters`
/// measured iterations after `warmup` unmeasured ones.
PingPongResult pingpong_blocking(mpi::RunConfig config, std::size_t bytes,
                                 int iters = 20, int warmup = 3);

/// Non-blocking exchange (MPI_Isend + MPI_Irecv + waitall both sides), the
/// measurement of Figures 7/8. Reported time is per full exchange.
PingPongResult pingpong_nonblocking(mpi::RunConfig config, std::size_t bytes,
                                    int iters = 20, int warmup = 3);

/// Raw InfiniBand RDMA-write ping-pong between two *verbs* endpoints with
/// buffers placed in the given domains (Figure 5: host->host, host->phi,
/// phi->host, phi->phi). No MPI involved.
struct RawRdmaConfig {
  mem::Domain src_domain = mem::Domain::HostDram;
  mem::Domain dst_domain = mem::Domain::HostDram;
  sim::Platform platform{};
};
PingPongResult raw_rdma_pingpong(const RawRdmaConfig& config,
                                 std::size_t bytes, int iters = 20,
                                 int warmup = 3);

}  // namespace dcfa::apps
