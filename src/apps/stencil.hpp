#pragma once

#include "mpi/runtime.hpp"

namespace dcfa::apps {

/// The five-point stencil of the paper's third experiment (Figures 11/12,
/// Table III): a Jacobi sweep over an n x n grid of doubles, row-block
/// decomposed across MPI processes, OpenMP-parallel within each process.
/// The paper's instance: n = 1282 (12 MB of doubles), 100 iterations,
/// 10 KB halo rows exchanged per iteration.
enum class StencilSystem {
  DcfaPhi,      ///< DCFA-MPI: compute and MPI both on the co-processor
  IntelPhi,     ///< 'Intel MPI on Xeon Phi' mode: same placement, proxy comms
  HostOffload,  ///< 'Intel MPI on Xeon + offload': host ranks, card compute,
                ///< per-iteration halo copy-in/copy-out over PCIe
};

const char* stencil_system_name(StencilSystem sys);

struct StencilConfig {
  int n = 1282;          ///< grid edge (boundary included)
  int iterations = 100;
  int nprocs = 1;
  int threads = 1;       ///< OpenMP team per process
  /// Run the arithmetic for real (tests/examples) or only charge the
  /// modelled time (benches — the timing does not depend on the values).
  bool real_compute = true;
  sim::Platform platform{};
};

struct StencilResult {
  sim::Time total = 0;            ///< wall time of the iteration loop
  double checksum = 0.0;          ///< sum over the final grid (real_compute)
  std::uint64_t mpi_bytes = 0;    ///< Table III: MPI bytes sent per process
                                  ///< per iteration (interior processes)
  std::uint64_t offload_bytes = 0;///< Table III: bytes copied in+out per
                                  ///< iteration (HostOffload only)
};

StencilResult run_stencil(StencilSystem sys, const StencilConfig& config);

/// Serial (1 process, 1 thread, no MPI) reference on the co-processor —
/// the denominator of Figure 12's speed-ups.
StencilResult run_stencil_serial(const StencilConfig& config);

}  // namespace dcfa::apps
