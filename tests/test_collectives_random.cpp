// Randomized reference-checked sweep of the collectives engine
// (docs/collectives.md): every algorithm the selection layer can pick is
// also forced explicitly, over communicator sizes 1..13 (prime, power-of-
// two and in-between), counts that are zero, tiny, and not divisible by
// the communicator size, all reduction ops and arithmetic datatypes — each
// checked element-for-element against a sequentially computed reference.
//
// Values are drawn from {-2,-1,0,1,2} so Sum and Prod stay exactly
// representable in float/double no matter how a segmented algorithm
// reassociates the combines (|partial| <= 2^13 << 2^24).
//
// Also pins boundary behaviour: the eager/rendezvous switch at exactly
// eager_threshold(), the selector crossovers one byte either side of the
// knobs, and the segment-count edge where pipelining kicks in.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <vector>

#include "mpi/runtime.hpp"

using namespace dcfa;
using namespace dcfa::mpi;

namespace {

RunConfig dcfa_cfg(int nprocs) {
  RunConfig cfg;
  cfg.mode = MpiMode::DcfaPhi;
  cfg.nprocs = nprocs;
  return cfg;
}

constexpr std::uint64_t kSeed = 0xdcfa'c011'ec71'0e5ull;

template <typename T>
T combine1(Op op, T a, T b) {
  switch (op) {
    case Op::Sum: return a + b;
    case Op::Prod: return a * b;
    case Op::Max: return std::max(a, b);
    case Op::Min: return std::min(a, b);
  }
  return a;
}

/// Per-rank input vectors, drawn from {-2,..,2} (exact in every dtype).
template <typename T>
std::vector<std::vector<T>> draw_inputs(std::mt19937_64& rng, int nprocs,
                                        std::size_t count) {
  std::uniform_int_distribution<int> val(-2, 2);
  std::vector<std::vector<T>> in(nprocs, std::vector<T>(count));
  for (auto& v : in) {
    for (auto& x : v) x = static_cast<T>(val(rng));
  }
  return in;
}

/// Sequential left-to-right reference reduction over ranks.
template <typename T>
std::vector<T> reference_reduce(const std::vector<std::vector<T>>& in,
                                Op op) {
  std::vector<T> out = in[0];
  for (std::size_t r = 1; r < in.size(); ++r) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = combine1(op, out[i], in[r][i]);
    }
  }
  return out;
}

template <typename T>
void put_vec(mem::Buffer& buf, const std::vector<T>& v) {
  if (!v.empty()) std::memcpy(buf.data(), v.data(), v.size() * sizeof(T));
}

template <typename T>
std::vector<T> get_vec(const mem::Buffer& buf, std::size_t n) {
  std::vector<T> v(n);
  if (n) std::memcpy(v.data(), buf.data(), n * sizeof(T));
  return v;
}

/// One forced-algorithm allreduce run, checked on every rank. Returns the
/// result bytes of rank 0 (for the determinism digest).
template <typename T>
std::vector<T> allreduce_trial(int nprocs, std::size_t count, Op op,
                               const Datatype& dt, const std::string& algo,
                               std::uint64_t seg,
                               const std::vector<std::vector<T>>& in) {
  RunConfig cfg = dcfa_cfg(nprocs);
  cfg.engine_options.coll.allreduce = algo;
  cfg.engine_options.coll.segment_bytes = seg;
  const std::vector<T> expect = reference_reduce(in, op);
  std::vector<T> rank0(count);
  run_mpi(cfg, [&](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer ib = comm.alloc(std::max<std::size_t>(count * sizeof(T), 1));
    mem::Buffer ob = comm.alloc(std::max<std::size_t>(count * sizeof(T), 1));
    put_vec(ib, in[comm.rank()]);
    comm.allreduce(ib, 0, ob, 0, count, dt, op);
    const auto got = get_vec<T>(ob, count);
    EXPECT_EQ(got, expect) << "algo=" << algo << " P=" << nprocs
                           << " count=" << count << " rank=" << comm.rank();
    if (comm.rank() == 0) rank0 = got;
    comm.free(ib);
    comm.free(ob);
  });
  return rank0;
}

struct TypeCase {
  const Datatype& (*dt)();
};

}  // namespace

// ---------------------------------------------------------------------------
// Allreduce: every algorithm x comm sizes 1..13 x randomized trials
// ---------------------------------------------------------------------------

class AllreduceAlgoSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(AllreduceAlgoSweep, MatchesSequentialReference) {
  const std::string algo = GetParam();
  std::mt19937_64 rng(kSeed);
  // Counts: empty, single, prime (never divisible by P>1), mid-size, and
  // one that splits into blocks crossing the forced segment size.
  const std::size_t counts[] = {0, 1, 13, 1000, 4097};
  const Op ops[] = {Op::Sum, Op::Prod, Op::Max, Op::Min};
  for (int nprocs = 1; nprocs <= 13; ++nprocs) {
    const std::size_t count = counts[rng() % std::size(counts)];
    const Op op = ops[rng() % std::size(ops)];
    // Tiny forced segment: even mid-size counts span many segments, so the
    // pipelined paths run their multi-segment schedule.
    const std::uint64_t seg = (rng() % 2) ? 512 : 4096;
    switch (rng() % 4) {
      case 0: {
        auto in = draw_inputs<int>(rng, nprocs, count);
        allreduce_trial<int>(nprocs, count, op, type_int(), algo, seg, in);
        break;
      }
      case 1: {
        auto in = draw_inputs<std::int64_t>(rng, nprocs, count);
        allreduce_trial<std::int64_t>(nprocs, count, op, type_int64(), algo,
                                      seg, in);
        break;
      }
      case 2: {
        auto in = draw_inputs<float>(rng, nprocs, count);
        allreduce_trial<float>(nprocs, count, op, type_float(), algo, seg,
                               in);
        break;
      }
      default: {
        auto in = draw_inputs<double>(rng, nprocs, count);
        allreduce_trial<double>(nprocs, count, op, type_double(), algo, seg,
                                in);
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Engine, AllreduceAlgoSweep,
                         ::testing::Values("auto", "binomial", "rd", "ring",
                                           "rab"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Bcast: both algorithms, every root, random payloads
// ---------------------------------------------------------------------------

class BcastAlgoSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(BcastAlgoSweep, DeliversRootPayloadToAllRanks) {
  const std::string algo = GetParam();
  std::mt19937_64 rng(kSeed + 1);
  for (int nprocs = 1; nprocs <= 13; ++nprocs) {
    const std::size_t counts[] = {0, 1, 13, 4097};
    const std::size_t count = counts[rng() % std::size(counts)];
    auto in = draw_inputs<double>(rng, 1, count);
    const int root = static_cast<int>(rng() % nprocs);
    RunConfig cfg = dcfa_cfg(nprocs);
    cfg.engine_options.coll.bcast = algo;
    cfg.engine_options.coll.segment_bytes = 512;
    run_mpi(cfg, [&](RankCtx& ctx) {
      auto& comm = ctx.world;
      mem::Buffer buf =
          comm.alloc(std::max<std::size_t>(count * sizeof(double), 1));
      if (comm.rank() == root) put_vec(buf, in[0]);
      comm.bcast(buf, 0, count, type_double(), root);
      EXPECT_EQ(get_vec<double>(buf, count), in[0])
          << "algo=" << algo << " P=" << nprocs << " root=" << root
          << " rank=" << comm.rank();
      comm.free(buf);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Engine, BcastAlgoSweep,
                         ::testing::Values("auto", "binomial", "scatter_ag"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Allgather: ring and recursive doubling (falls back to ring off-pow2)
// ---------------------------------------------------------------------------

class AllgatherAlgoSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(AllgatherAlgoSweep, ConcatenatesAllContributions) {
  const std::string algo = GetParam();
  std::mt19937_64 rng(kSeed + 2);
  for (int nprocs = 1; nprocs <= 13; ++nprocs) {
    const std::size_t counts[] = {0, 1, 130, 1001};
    const std::size_t count = counts[rng() % std::size(counts)];
    auto in = draw_inputs<int>(rng, nprocs, count);
    std::vector<int> expect;
    for (const auto& v : in) expect.insert(expect.end(), v.begin(), v.end());
    RunConfig cfg = dcfa_cfg(nprocs);
    cfg.engine_options.coll.allgather = algo;
    cfg.engine_options.coll.segment_bytes = 512;
    run_mpi(cfg, [&](RankCtx& ctx) {
      auto& comm = ctx.world;
      const std::size_t total = count * comm.size();
      mem::Buffer ib =
          comm.alloc(std::max<std::size_t>(count * sizeof(int), 1));
      mem::Buffer ob =
          comm.alloc(std::max<std::size_t>(total * sizeof(int), 1));
      put_vec(ib, in[comm.rank()]);
      comm.allgather(ib, 0, count, type_int(), ob, 0);
      EXPECT_EQ(get_vec<int>(ob, total), expect)
          << "algo=" << algo << " P=" << nprocs << " rank=" << comm.rank();
      comm.free(ib);
      comm.free(ob);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Engine, AllgatherAlgoSweep,
                         ::testing::Values("auto", "ring", "rd"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Reduce_scatter_block
// ---------------------------------------------------------------------------

TEST(ReduceScatterBlock, EachRankGetsItsReducedBlock) {
  std::mt19937_64 rng(kSeed + 3);
  for (int nprocs = 1; nprocs <= 13; ++nprocs) {
    for (std::size_t recvcount : {std::size_t{0}, std::size_t{1},
                                  std::size_t{257}}) {
      const std::size_t total = recvcount * nprocs;
      auto in = draw_inputs<double>(rng, nprocs, total);
      const auto expect = reference_reduce(in, Op::Sum);
      RunConfig cfg = dcfa_cfg(nprocs);
      cfg.engine_options.coll.segment_bytes = 512;
      run_mpi(cfg, [&](RankCtx& ctx) {
        auto& comm = ctx.world;
        mem::Buffer ib =
            comm.alloc(std::max<std::size_t>(total * sizeof(double), 1));
        mem::Buffer ob =
            comm.alloc(std::max<std::size_t>(recvcount * sizeof(double), 1));
        put_vec(ib, in[comm.rank()]);
        comm.reduce_scatter_block(ib, 0, ob, 0, recvcount, type_double(),
                                  Op::Sum);
        const std::vector<double> want(
            expect.begin() + comm.rank() * recvcount,
            expect.begin() + (comm.rank() + 1) * recvcount);
        EXPECT_EQ(get_vec<double>(ob, recvcount), want)
            << "P=" << nprocs << " rank=" << comm.rank();
        comm.free(ib);
        comm.free(ob);
      });
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism: same seed => byte-identical results
// ---------------------------------------------------------------------------

TEST(CollectivesDeterminism, SameSeedSameBytes) {
  auto digest = [] {
    std::mt19937_64 rng(kSeed + 4);
    std::vector<double> all;
    for (const char* algo : {"rd", "ring", "rab"}) {
      for (int nprocs : {3, 8, 13}) {
        auto in = draw_inputs<double>(rng, nprocs, 513);
        auto r = allreduce_trial<double>(nprocs, 513, Op::Sum, type_double(),
                                         algo, 512, in);
        all.insert(all.end(), r.begin(), r.end());
      }
    }
    return all;
  };
  const auto first = digest();
  const auto second = digest();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_TRUE(std::memcmp(first.data(), second.data(),
                          first.size() * sizeof(double)) == 0);
}

// ---------------------------------------------------------------------------
// Boundaries: eager threshold, selector crossovers, segment-count edges
// ---------------------------------------------------------------------------

namespace {

/// Rank-0 engine stats of one 2-rank send of `bytes` bytes.
Engine::Stats p2p_stats(std::size_t bytes) {
  RunConfig cfg = dcfa_cfg(2);
  Runtime rt(cfg);
  rt.run([&](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer buf = comm.alloc(std::max<std::size_t>(bytes, 1));
    if (comm.rank() == 0) {
      comm.send(buf, 0, bytes, type_byte(), 1, 7);
    } else {
      comm.recv(buf, 0, bytes, type_byte(), 0, 7);
    }
    comm.free(buf);
  });
  return rt.rank_stats()[0];
}

/// Rank-0 stats of one allreduce of `bytes` bytes with the given knobs.
Engine::Stats allreduce_stats(std::size_t bytes, CollOverrides coll,
                              int nprocs = 4) {
  RunConfig cfg = dcfa_cfg(nprocs);
  cfg.engine_options.coll = std::move(coll);
  Runtime rt(cfg);
  const std::size_t n = bytes / sizeof(double);
  rt.run([&](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer ib = comm.alloc(std::max<std::size_t>(bytes, 1));
    mem::Buffer ob = comm.alloc(std::max<std::size_t>(bytes, 1));
    std::memset(ib.data(), 0, bytes);
    comm.allreduce(ib, 0, ob, 0, n, type_double(), Op::Sum);
    comm.free(ib);
    comm.free(ob);
  });
  return rt.rank_stats()[0];
}

}  // namespace

TEST(CollectiveBoundaries, EagerThresholdExact) {
  RunConfig cfg = dcfa_cfg(2);
  const std::uint64_t thr = cfg.platform.eager_threshold;
  // One byte below: eager. At the threshold (strict <): rendezvous.
  const Engine::Stats below = p2p_stats(thr - 1);
  EXPECT_EQ(below.eager_sends, 1u);
  EXPECT_EQ(below.rndv_sends, 0u);
  const Engine::Stats at = p2p_stats(thr);
  EXPECT_EQ(at.eager_sends, 0u);
  EXPECT_EQ(at.rndv_sends, 1u);
}

TEST(CollectiveBoundaries, AllreduceSmallMaxCrossover) {
  CollOverrides coll;
  coll.allreduce_small_max = 4096;
  coll.allreduce_ring_min = 1 << 20;
  // One element below the knob: recursive doubling. At the knob (strict <):
  // the next tier (Rabenseifner).
  const Engine::Stats below = allreduce_stats(4096 - sizeof(double), coll);
  EXPECT_EQ(below.coll_allreduce_rd, 1u);
  EXPECT_EQ(below.coll_allreduce_rab, 0u);
  const Engine::Stats at = allreduce_stats(4096, coll);
  EXPECT_EQ(at.coll_allreduce_rd, 0u);
  EXPECT_EQ(at.coll_allreduce_rab, 1u);
}

TEST(CollectiveBoundaries, AllreduceRingMinCrossover) {
  CollOverrides coll;
  coll.allreduce_small_max = 64;
  coll.allreduce_ring_min = 65536;
  const Engine::Stats below = allreduce_stats(65536 - sizeof(double), coll);
  EXPECT_EQ(below.coll_allreduce_rab, 1u);
  EXPECT_EQ(below.coll_allreduce_ring, 0u);
  const Engine::Stats at = allreduce_stats(65536, coll);
  EXPECT_EQ(at.coll_allreduce_rab, 0u);
  EXPECT_EQ(at.coll_allreduce_ring, 1u);
}

TEST(CollectiveBoundaries, BcastLargeMinCrossover) {
  auto bcast_stats = [](std::size_t bytes, CollOverrides coll) {
    RunConfig cfg = dcfa_cfg(4);
    cfg.engine_options.coll = std::move(coll);
    Runtime rt(cfg);
    rt.run([&](RankCtx& ctx) {
      auto& comm = ctx.world;
      mem::Buffer buf = comm.alloc(std::max<std::size_t>(bytes, 1));
      comm.bcast(buf, 0, bytes, type_byte(), 0);
      comm.free(buf);
    });
    return rt.rank_stats()[0];
  };
  CollOverrides coll;
  coll.bcast_large_min = 32768;
  const Engine::Stats below = bcast_stats(32767, coll);
  EXPECT_EQ(below.coll_bcast_binomial, 1u);
  EXPECT_EQ(below.coll_bcast_scatter_ag, 0u);
  const Engine::Stats at = bcast_stats(32768, coll);
  EXPECT_EQ(at.coll_bcast_binomial, 0u);
  EXPECT_EQ(at.coll_bcast_scatter_ag, 1u);
}

TEST(CollectiveBoundaries, SegmentCountEdge) {
  // Ring allreduce at P=4 over n bytes: each of the 3+3 pipelined steps
  // moves one P-th of the vector in seg-sized segments, counted on both
  // the sending and receiving side of each step.
  CollOverrides coll;
  coll.allreduce = "ring";
  coll.segment_bytes = 1024;
  // Block = exactly one segment: 6 steps x (1 out + 1 in) = 12.
  const Engine::Stats one = allreduce_stats(4 * 1024, coll);
  EXPECT_EQ(one.coll_segments, 12u);
  // One element more per block: every block needs a second segment.
  const Engine::Stats two = allreduce_stats(4 * 1024 + 4 * sizeof(double),
                                            coll);
  EXPECT_EQ(two.coll_segments, 24u);
}
