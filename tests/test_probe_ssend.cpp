// Tests for MPI_Probe/Iprobe and synchronous-mode sends (MPI_Ssend).

#include <gtest/gtest.h>

#include <cstring>

#include "mpi/runtime.hpp"

using namespace dcfa;
using namespace dcfa::mpi;

namespace {
RunConfig dcfa_cfg(int nprocs = 2) {
  RunConfig cfg;
  cfg.mode = MpiMode::DcfaPhi;
  cfg.nprocs = nprocs;
  return cfg;
}
}  // namespace

TEST(Probe, SeesEnvelopeBeforeReceiving) {
  run_mpi(dcfa_cfg(), [](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer buf = comm.alloc(4096);
    if (ctx.rank == 1) {
      buf.data()[0] = std::byte{0x5A};
      comm.send(buf, 0, 777, type_byte(), 0, 42);
    } else {
      Status env = comm.probe(1, 42);
      EXPECT_EQ(env.source, 1);
      EXPECT_EQ(env.tag, 42);
      EXPECT_EQ(env.bytes, 777u);
      // Size the receive from the probed envelope (the classic pattern).
      Status st = comm.recv(buf, 0, env.bytes, type_byte(), env.source,
                            env.tag);
      EXPECT_EQ(st.bytes, 777u);
      EXPECT_EQ(buf.data()[0], std::byte{0x5A});
    }
    comm.barrier();
    comm.free(buf);
  });
}

TEST(Probe, SeesRendezvousEnvelope) {
  run_mpi(dcfa_cfg(), [](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer buf = comm.alloc(64 * 1024);
    if (ctx.rank == 1) {
      comm.send(buf, 0, 64 * 1024, type_byte(), 0, 9);
    } else {
      Status env = comm.probe(kAnySource, kAnyTag);
      EXPECT_EQ(env.source, 1);
      EXPECT_EQ(env.tag, 9);
      EXPECT_EQ(env.bytes, 64u * 1024);
      comm.recv(buf, 0, env.bytes, type_byte(), env.source, env.tag);
    }
    comm.barrier();
    comm.free(buf);
  });
}

TEST(Probe, IprobeDoesNotConsume) {
  run_mpi(dcfa_cfg(), [](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer buf = comm.alloc(64);
    if (ctx.rank == 1) {
      comm.send(buf, 0, 64, type_byte(), 0, 3);
      comm.barrier();
    } else {
      EXPECT_FALSE(comm.iprobe(1, 4).has_value());  // wrong tag
      // Wait for the packet.
      while (!comm.iprobe(1, 3)) ctx.proc.wait(sim::microseconds(2));
      // Probing twice still reports it (non-destructive).
      EXPECT_TRUE(comm.iprobe(1, 3).has_value());
      EXPECT_TRUE(comm.iprobe(kAnySource, 3).has_value());
      comm.barrier();
      comm.recv(buf, 0, 64, type_byte(), 1, 3);
    }
    comm.free(buf);
  });
}

TEST(Probe, IgnoresInternalCollectiveTraffic) {
  run_mpi(dcfa_cfg(3), [](RankCtx& ctx) {
    auto& comm = ctx.world;
    comm.barrier();
    // Whatever barrier packets are buffered, a wildcard probe must not see
    // them.
    EXPECT_FALSE(comm.iprobe(kAnySource, kAnyTag).has_value());
  });
}

TEST(Ssend, SmallSyncSendTakesRendezvous) {
  RunConfig cfg = dcfa_cfg();
  Runtime rt(cfg);
  rt.run([](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer buf = comm.alloc(64);
    if (ctx.rank == 0) {
      comm.ssend(buf, 0, 64, type_byte(), 1, 1);  // tiny, but rendezvous
    } else {
      ctx.proc.wait(sim::microseconds(200));
      comm.recv(buf, 0, 64, type_byte(), 0, 1);
    }
    comm.free(buf);
  });
  EXPECT_EQ(rt.rank_stats()[0].eager_sends, 0u);
  EXPECT_EQ(rt.rank_stats()[0].rndv_sends, 1u);
}

TEST(Ssend, CompletionImpliesReceiveMatched) {
  // The defining MPI_Ssend property: the send cannot complete before the
  // matching receive is posted.
  run_mpi(dcfa_cfg(), [](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer buf = comm.alloc(64);
    const sim::Time recv_post_time = sim::milliseconds(3);
    if (ctx.rank == 0) {
      comm.ssend(buf, 0, 64, type_byte(), 1, 1);
      EXPECT_GE(ctx.proc.now(), recv_post_time);
    } else {
      ctx.proc.wait(recv_post_time);
      comm.recv(buf, 0, 64, type_byte(), 0, 1);
    }
    comm.free(buf);
  });
}

TEST(Ssend, PlainEagerSendCompletesBeforeReceive) {
  // Contrast with Ssend: a small standard-mode send is buffered and
  // completes locally long before the late receive.
  run_mpi(dcfa_cfg(), [](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer buf = comm.alloc(64);
    if (ctx.rank == 0) {
      comm.send(buf, 0, 64, type_byte(), 1, 1);
      EXPECT_LT(ctx.proc.now(), sim::milliseconds(1));
    } else {
      ctx.proc.wait(sim::milliseconds(3));
      comm.recv(buf, 0, 64, type_byte(), 0, 1);
    }
    comm.free(buf);
  });
}

TEST(Ssend, LargeSyncSendDeliversData) {
  run_mpi(dcfa_cfg(), [](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer buf = comm.alloc(128 * 1024);
    if (ctx.rank == 0) {
      std::memset(buf.data(), 0x77, buf.size());
      comm.ssend(buf, 0, buf.size(), type_byte(), 1, 1);
    } else {
      Status st = comm.recv(buf, 0, buf.size(), type_byte(), 0, 1);
      EXPECT_EQ(st.bytes, 128u * 1024);
      EXPECT_EQ(buf.data()[100000], std::byte{0x77});
    }
    comm.free(buf);
  });
}
