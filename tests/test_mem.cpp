// Unit tests for the simulated memory: allocation, alignment, address
// resolution, domain isolation, capacity accounting.

#include <gtest/gtest.h>

#include "mem/memory.hpp"

using namespace dcfa::mem;

TEST(AddressSpace, AllocatesAlignedDistinctRegions) {
  AddressSpace space(0, Domain::HostDram, 1 << 20);
  Buffer a = space.alloc(100, 64);
  Buffer b = space.alloc(100, 4096);
  EXPECT_NE(a.addr(), b.addr());
  EXPECT_EQ(a.addr() % 64, 0u);
  EXPECT_EQ(b.addr() % 4096, 0u);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.domain(), Domain::HostDram);
  EXPECT_EQ(a.node(), 0);
}

TEST(AddressSpace, ZeroInitialised) {
  AddressSpace space(0, Domain::PhiGddr, 1 << 20);
  Buffer b = space.alloc(4096);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b.data()[i], std::byte{0});
  }
}

TEST(AddressSpace, ResolveReturnsBackingStorage) {
  AddressSpace space(0, Domain::HostDram, 1 << 20);
  Buffer b = space.alloc(256);
  b.data()[17] = std::byte{0xAB};
  std::byte* p = space.resolve(b.addr() + 17, 1);
  EXPECT_EQ(*p, std::byte{0xAB});
}

TEST(AddressSpace, ResolveRejectsOutOfBoundsWindows) {
  AddressSpace space(0, Domain::HostDram, 1 << 20);
  Buffer b = space.alloc(256);
  EXPECT_NO_THROW(space.resolve(b.addr(), 256));
  EXPECT_THROW(space.resolve(b.addr(), 257), BadAddress);
  EXPECT_THROW(space.resolve(b.addr() + 200, 100), BadAddress);
  EXPECT_THROW(space.resolve(b.addr() - 1, 1), BadAddress);
  EXPECT_THROW(space.resolve(0xdeadbeef, 1), BadAddress);
}

TEST(AddressSpace, ContainsMatchesResolve) {
  AddressSpace space(0, Domain::HostDram, 1 << 20);
  Buffer b = space.alloc(128);
  EXPECT_TRUE(space.contains(b.addr(), 128));
  EXPECT_TRUE(space.contains(b.addr() + 64, 64));
  EXPECT_FALSE(space.contains(b.addr(), 129));
  EXPECT_FALSE(space.contains(b.addr() + 120, 16));
}

TEST(AddressSpace, FreeInvalidatesResolution) {
  AddressSpace space(0, Domain::HostDram, 1 << 20);
  Buffer b = space.alloc(128);
  space.free(b);
  EXPECT_THROW(space.resolve(b.addr(), 1), BadAddress);
  EXPECT_THROW(space.free(b), BadAddress);
  EXPECT_EQ(space.bytes_in_use(), 0u);
}

TEST(AddressSpace, CapacityEnforced) {
  // The Phi has no demand paging: exhausting GDDR must fail loudly.
  AddressSpace space(0, Domain::PhiGddr, 1000);
  Buffer a = space.alloc(600);
  EXPECT_THROW(space.alloc(600), OutOfMemory);
  space.free(a);
  EXPECT_NO_THROW(space.alloc(600));
}

TEST(AddressSpace, RejectsBadArguments) {
  AddressSpace space(0, Domain::HostDram, 1 << 20);
  EXPECT_THROW(space.alloc(0), std::invalid_argument);
  EXPECT_THROW(space.alloc(16, 3), std::invalid_argument);  // not power of 2
  EXPECT_THROW(space.alloc(16, 0), std::invalid_argument);
}

TEST(AddressSpace, GuardGapsBetweenAllocations) {
  AddressSpace space(0, Domain::HostDram, 1 << 20);
  Buffer a = space.alloc(64);
  Buffer b = space.alloc(64);
  // A window running off the end of `a` must fault rather than bleed into
  // `b` (catches off-by-one DMA descriptors).
  EXPECT_GT(b.addr(), a.end());
  EXPECT_THROW(space.resolve(a.addr() + 32, 64), BadAddress);
}

TEST(NodeMemory, DomainsAreIsolated) {
  NodeMemory node(3);
  Buffer h = node.alloc(Domain::HostDram, 128);
  Buffer p = node.alloc(Domain::PhiGddr, 128);
  EXPECT_NE(h.addr(), p.addr());
  // A host address never resolves in the GDDR space and vice versa.
  EXPECT_THROW(node.space(Domain::PhiGddr).resolve(h.addr(), 1), BadAddress);
  EXPECT_THROW(node.space(Domain::HostDram).resolve(p.addr(), 1), BadAddress);
}

TEST(NodeMemory, DistinctNodesHaveDistinctAddressBases) {
  NodeMemory n0(0), n1(1);
  Buffer a = n0.alloc(Domain::HostDram, 64);
  // Node 0's address must not resolve on node 1 even accidentally.
  EXPECT_THROW(n1.space(Domain::HostDram).resolve(a.addr(), 1), BadAddress);
}

TEST(NodeMemory, ManyAllocationsStayDisjoint) {
  NodeMemory node(0);
  std::vector<Buffer> bufs;
  for (int i = 0; i < 200; ++i) {
    bufs.push_back(node.alloc(Domain::HostDram, 1 + (i * 37) % 5000));
  }
  for (std::size_t i = 1; i < bufs.size(); ++i) {
    EXPECT_GE(bufs[i].addr(), bufs[i - 1].end());
  }
  EXPECT_EQ(node.space(Domain::HostDram).live_allocations(), 200u);
}
