// Determinism of fault-injected runs: the injector draws from its own
// seeded RNG and the simulation executes events in a fixed order, so the
// same spec + seed + program must reproduce the exact same fault pattern —
// identical recovery counters, identical virtual time, and a byte-identical
// trace file. This is what makes a fault run a replayable artifact instead
// of a flaky one.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "mpi/runtime.hpp"
#include "sim/fault.hpp"

using namespace dcfa;
using namespace dcfa::mpi;

namespace {

constexpr std::size_t kBytes = 512;
constexpr int kIters = 64;

/// The acceptance workload: a 64-iteration eager pingpong under 10% CQE
/// loss, seed 42, with a retry timer short enough that lost completions are
/// recovered by retransmission rather than by waiting out the credit.
RunConfig pingpong_cfg(const std::string& trace_path) {
  RunConfig cfg;
  cfg.mode = MpiMode::DcfaPhi;
  cfg.nprocs = 2;
  cfg.fault_spec = "drop_wc=0.1";
  cfg.fault_seed = 42;
  cfg.engine_options.retry_timeout = sim::microseconds(2);
  cfg.trace_path = trace_path;
  return cfg;
}

struct RunResult {
  Engine::Stats s0, s1;
  sim::FaultInjector::Counters injected;
  sim::Time elapsed = 0;
  std::string trace;
};

RunResult run_pingpong(const std::string& trace_path) {
  std::remove(trace_path.c_str());
  RunResult out;
  Runtime rt(pingpong_cfg(trace_path));
  rt.run([&](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer buf = comm.alloc(kBytes);
    for (int i = 0; i < kIters; ++i) {
      if (ctx.rank == 0) {
        std::memset(buf.data(), i & 0xff, kBytes);
        comm.send(buf, 0, kBytes, type_byte(), 1, 1);
        comm.recv(buf, 0, kBytes, type_byte(), 1, 1);
        EXPECT_EQ(buf.data()[kBytes - 1],
                  static_cast<std::byte>((i + 1) & 0xff));
      } else {
        comm.recv(buf, 0, kBytes, type_byte(), 0, 1);
        EXPECT_EQ(buf.data()[0], static_cast<std::byte>(i & 0xff));
        std::memset(buf.data(), (i + 1) & 0xff, kBytes);
        comm.send(buf, 0, kBytes, type_byte(), 0, 1);
      }
    }
    comm.free(buf);
  });
  out.s0 = rt.rank_stats()[0];
  out.s1 = rt.rank_stats()[1];
  out.injected = rt.faults()->counters();
  out.elapsed = rt.elapsed();
  std::ifstream in(trace_path);
  EXPECT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  out.trace = ss.str();
  return out;
}

void expect_stats_equal(const Engine::Stats& a, const Engine::Stats& b) {
  EXPECT_EQ(a.eager_sends, b.eager_sends);
  EXPECT_EQ(a.rndv_sends, b.rndv_sends);
  EXPECT_EQ(a.packets_rx, b.packets_rx);
  EXPECT_EQ(a.credits_sent, b.credits_sent);
  EXPECT_EQ(a.tx_stalls, b.tx_stalls);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.wc_errors, b.wc_errors);
  EXPECT_EQ(a.wc_timeouts, b.wc_timeouts);
  EXPECT_EQ(a.credit_acked, b.credit_acked);
  EXPECT_EQ(a.dup_packets_dropped, b.dup_packets_dropped);
  EXPECT_EQ(a.data_op_retries, b.data_op_retries);
  EXPECT_EQ(a.retry_exhausted, b.retry_exhausted);
  EXPECT_EQ(a.offload_fallbacks, b.offload_fallbacks);
  EXPECT_EQ(a.cmd_retries, b.cmd_retries);
  EXPECT_EQ(a.cmd_timeouts, b.cmd_timeouts);
}

}  // namespace

TEST(FaultDeterminism, SameSeedReproducesCountersTimeAndTrace) {
  auto a = run_pingpong("/tmp/dcfa_fault_det_a.json");
  auto b = run_pingpong("/tmp/dcfa_fault_det_b.json");

  // The workload actually exercised recovery: some completions were lost
  // and repaired (acceptance scenario of the fault-injection layer).
  EXPECT_GT(a.injected.wc_dropped, 0u);
  EXPECT_GT(a.s0.retransmits + a.s0.credit_acked, 0u);
  EXPECT_EQ(a.s0.retry_exhausted, 0u);
  EXPECT_EQ(a.s1.retry_exhausted, 0u);

  // Byte-for-byte reproducibility across the two runs.
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.injected.wc_dropped, b.injected.wc_dropped);
  EXPECT_EQ(a.injected.wc_errored, b.injected.wc_errored);
  EXPECT_EQ(a.injected.dma_delayed, b.injected.dma_delayed);
  EXPECT_EQ(a.injected.cmd_failed, b.injected.cmd_failed);
  EXPECT_EQ(a.injected.cmd_dropped, b.injected.cmd_dropped);
  expect_stats_equal(a.s0, b.s0);
  expect_stats_equal(a.s1, b.s1);
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  // The trace records the fault counters as Perfetto counter tracks.
  EXPECT_NE(a.trace.find(".faults"), std::string::npos);
  EXPECT_NE(a.trace.find("retransmits"), std::string::npos);
}

TEST(FaultDeterminism, DifferentSeedStillRecoversCorrectly) {
  // A different seed shifts which completions get dropped; whatever the
  // pattern, recovery must still deliver every byte exactly once.
  RunConfig cfg;
  cfg.mode = MpiMode::DcfaPhi;
  cfg.nprocs = 2;
  cfg.fault_spec = "drop_wc=0.1";
  cfg.fault_seed = 7;
  cfg.engine_options.retry_timeout = sim::microseconds(2);
  Runtime rt(cfg);
  rt.run([&](RankCtx& ctx) {
    auto& comm = ctx.world;
    mem::Buffer buf = comm.alloc(kBytes);
    for (int i = 0; i < kIters; ++i) {
      if (ctx.rank == 0) {
        std::memset(buf.data(), i & 0xff, kBytes);
        comm.send(buf, 0, kBytes, type_byte(), 1, 1);
      } else {
        comm.recv(buf, 0, kBytes, type_byte(), 0, 1);
        EXPECT_EQ(buf.data()[kBytes / 2], static_cast<std::byte>(i & 0xff));
      }
    }
    comm.free(buf);
  });
  EXPECT_EQ(rt.rank_stats()[1].packets_rx,
            static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(rt.rank_stats()[0].retry_exhausted, 0u);
}
