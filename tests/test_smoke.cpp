// End-to-end smoke tests: the full stack (sim engine -> PCIe -> HCA -> DCFA
// -> MPI) exercised through tiny programs in every mode.

#include <gtest/gtest.h>

#include <cstring>

#include "mpi/runtime.hpp"

using namespace dcfa;
using namespace dcfa::mpi;

namespace {

void fill_pattern(mem::Buffer& buf, std::uint8_t seed) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf.data()[i] = static_cast<std::byte>((seed + i * 7) & 0xff);
  }
}

bool check_pattern(const mem::Buffer& buf, std::size_t len,
                   std::uint8_t seed) {
  for (std::size_t i = 0; i < len; ++i) {
    if (buf.data()[i] != static_cast<std::byte>((seed + i * 7) & 0xff)) {
      return false;
    }
  }
  return true;
}

class SmokeAllModes : public ::testing::TestWithParam<MpiMode> {};

TEST_P(SmokeAllModes, PingPongSmallAndLarge) {
  for (std::size_t bytes : {4ul, 512ul, 8192ul, 262144ul}) {
    RunConfig cfg;
    cfg.mode = GetParam();
    cfg.nprocs = 2;
    bool ok0 = false, ok1 = false;
    run_mpi(cfg, [&, bytes](RankCtx& ctx) {
      auto& comm = ctx.world;
      mem::Buffer buf = comm.alloc(bytes);
      if (ctx.rank == 0) {
        fill_pattern(buf, 3);
        comm.send_bytes(buf, 0, bytes, 1, 7);
        Status st = comm.recv_bytes(buf, 0, bytes, 1, 8);
        EXPECT_EQ(st.bytes, bytes);
        EXPECT_EQ(st.source, 1);
        EXPECT_EQ(st.tag, 8);
        ok0 = check_pattern(buf, bytes, 42);
      } else {
        Status st = comm.recv_bytes(buf, 0, bytes, 0, 7);
        EXPECT_EQ(st.bytes, bytes);
        ok1 = check_pattern(buf, bytes, 3);
        fill_pattern(buf, 42);
        comm.send_bytes(buf, 0, bytes, 0, 8);
      }
      comm.free(buf);
    });
    EXPECT_TRUE(ok0) << "mode=" << mode_name(GetParam()) << " bytes=" << bytes;
    EXPECT_TRUE(ok1) << "mode=" << mode_name(GetParam()) << " bytes=" << bytes;
  }
}

TEST_P(SmokeAllModes, CollectivesFourRanks) {
  RunConfig cfg;
  cfg.mode = GetParam();
  cfg.nprocs = 4;
  run_mpi(cfg, [&](RankCtx& ctx) {
    auto& comm = ctx.world;
    // allreduce of rank ids
    mem::Buffer in = comm.alloc(sizeof(double));
    mem::Buffer out = comm.alloc(sizeof(double));
    double v = ctx.rank + 1.0;
    std::memcpy(in.data(), &v, sizeof v);
    comm.allreduce(in, 0, out, 0, 1, type_double(), Op::Sum);
    double sum = 0;
    std::memcpy(&sum, out.data(), sizeof sum);
    EXPECT_DOUBLE_EQ(sum, 10.0);
    comm.barrier();
    comm.free(in);
    comm.free(out);
  });
}

INSTANTIATE_TEST_SUITE_P(AllModes, SmokeAllModes,
                         ::testing::Values(MpiMode::DcfaPhi,
                                           MpiMode::DcfaPhiNoOffload,
                                           MpiMode::IntelPhi,
                                           MpiMode::HostMpi),
                         [](const auto& info) {
                           switch (info.param) {
                             case MpiMode::DcfaPhi: return "DcfaPhi";
                             case MpiMode::DcfaPhiNoOffload:
                               return "DcfaPhiNoOffload";
                             case MpiMode::IntelPhi: return "IntelPhi";
                             case MpiMode::HostMpi: return "HostMpi";
                           }
                           return "unknown";
                         });

}  // namespace
